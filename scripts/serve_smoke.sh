#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the simulation service: boot
# smrsim in -serve-only mode on an ephemeral port, submit a scenario,
# require the SSE stream to end in a `done` event, resubmit the same
# scenario and require identical Merkle roots (determinism), shut the
# service down gracefully, then verify the persisted ledger offline
# with ledgercheck.
#
# Usage: scripts/serve_smoke.sh [WORKDIR]   (default: serve-smoke-out)
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=${1:-serve-smoke-out}
rm -rf "$workdir"
mkdir -p "$workdir"

go build -o "$workdir/smrsim" ./cmd/smrsim
go build -o "$workdir/ledgercheck" ./cmd/ledgercheck

"$workdir/smrsim" -serve-only -serve 127.0.0.1:0 -serve-workers 2 \
  -artifact-dir "$workdir/artifacts" \
  > "$workdir/serve.log" 2> "$workdir/serve.err" &
pid=$!
cleanup() {
  kill -TERM "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
}
trap cleanup EXIT

# The service prints "smrsim: listening on ADDR" to stdout; poll for it.
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^smrsim: listening on //p' "$workdir/serve.log" | head -n 1)
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "serve_smoke: server never reported its address" >&2
  cat "$workdir/serve.err" >&2
  exit 1
fi
echo "serve_smoke: service at $addr"

scenario='{"engine":"smapreduce","seed":7,"workers":8,"jobs":[{"bench":"terasort","input_gb":4,"reduces":8}],"chaos":"crash tt3 @20; rejoin tt3 @60"}'

submit() {
  curl -sf -X POST "http://$addr/runs" -d "$scenario" \
    | sed -n 's/.*"id": "\([^"]*\)".*/\1/p'
}

run1=$(submit)
[ -n "$run1" ] || { echo "serve_smoke: first submission failed" >&2; exit 1; }
echo "serve_smoke: submitted $run1"

# The SSE stream stays open until the run's terminal event seals it,
# so a bounded curl reading to EOF is the "watch it live" assertion.
curl -sf --max-time 60 "http://$addr/runs/$run1/events" > "$workdir/stream.sse"
last_event=$(grep '^event: ' "$workdir/stream.sse" | tail -n 1)
if [ "$last_event" != "event: done" ]; then
  echo "serve_smoke: stream did not end in done (got: $last_event)" >&2
  exit 1
fi
grep -q '^event: telemetry' "$workdir/stream.sse" || {
  echo "serve_smoke: stream carried no telemetry events" >&2; exit 1; }
grep -q '^event: progress' "$workdir/stream.sse" || {
  echo "serve_smoke: stream carried no progress events" >&2; exit 1; }
echo "serve_smoke: stream sealed with done ($(grep -c '^event: ' "$workdir/stream.sse") events)"

# Resubmit the identical scenario: the ledger must record identical
# Merkle roots for both runs (artifacts reproduce bit-for-bit).
run2=$(submit)
curl -sf --max-time 60 "http://$addr/runs/$run2/events" > /dev/null
roots=$(curl -sf "http://$addr/ledger" | sed -n 's/.*"merkle_root": "\([^"]*\)".*/\1/p' | sort -u | wc -l)
if [ "$roots" != 1 ]; then
  echo "serve_smoke: identical scenarios produced $roots distinct Merkle roots" >&2
  exit 1
fi
echo "serve_smoke: determinism holds ($run1 and $run2 share one Merkle root)"

curl -sf "http://$addr/runs/$run1/stats" > "$workdir/stats.json"
grep -q '"engine": "SMapReduce"' "$workdir/stats.json" || {
  echo "serve_smoke: stats artifact malformed" >&2; exit 1; }

# Graceful shutdown: SIGTERM drains and exits cleanly.
kill -TERM "$pid"
wait "$pid"
trap - EXIT

"$workdir/ledgercheck" "$workdir/artifacts/ledger.jsonl"
echo "serve_smoke: OK"
