package smapreduce_test

import (
	"testing"

	smapreduce "smapreduce"
)

func TestFacadeJobBuilder(t *testing.T) {
	j := smapreduce.Job("terasort", 1024, 8)
	if j.Name != "terasort" || j.InputMB != 1024 || j.Reduces != 8 {
		t.Fatalf("Job() = %+v", j)
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeJobPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown benchmark did not panic")
		}
	}()
	smapreduce.Job("not-a-benchmark", 1, 1)
}

func TestFacadeBenchmarks(t *testing.T) {
	names := smapreduce.Benchmarks()
	if len(names) < 10 {
		t.Fatalf("only %d benchmarks", len(names))
	}
}

func TestFacadeRunSmallJob(t *testing.T) {
	cluster := smapreduce.DefaultCluster()
	cluster.Workers = 4
	cluster.Net.Nodes = 4
	res, err := smapreduce.Run(smapreduce.SMapReduce,
		smapreduce.Options{Cluster: cluster}, smapreduce.Job("grep", 1024, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 || !res.Jobs[0].Finished() {
		t.Fatal("facade run incomplete")
	}
}

func TestFacadeEngineConstants(t *testing.T) {
	if smapreduce.HadoopV1.String() != "HadoopV1" ||
		smapreduce.YARN.String() != "YARN" ||
		smapreduce.SMapReduce.String() != "SMapReduce" {
		t.Fatal("engine constants mismapped")
	}
}
