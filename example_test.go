package smapreduce_test

import (
	"fmt"

	smapreduce "smapreduce"
)

// ExampleRun simulates one small HistogramRating job on the SMapReduce
// engine and inspects the outcome. Virtual times are deterministic for
// a fixed seed; here we print structural facts that hold across
// calibration changes.
func ExampleRun() {
	cluster := smapreduce.DefaultCluster()
	cluster.Workers = 4
	cluster.Net.Nodes = 4
	res, err := smapreduce.Run(smapreduce.SMapReduce,
		smapreduce.Options{Cluster: cluster},
		smapreduce.Job("histogram-ratings", 2048, 8))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	j := res.Jobs[0]
	fmt.Println("finished:", j.Finished())
	fmt.Println("maps:", j.NumMaps(), "reduces:", j.NumReduces())
	fmt.Println("barrier before finish:", j.BarrierAt < j.FinishedAt)
	// Output:
	// finished: true
	// maps: 16 reduces: 8
	// barrier before finish: true
}

// ExampleJob shows the spec builder for a named PUMA benchmark.
func ExampleJob() {
	spec := smapreduce.Job("terasort", 100<<10, 30)
	fmt.Println(spec.Name, spec.Reduces, spec.Profile.Class())
	// Output:
	// terasort 30 reduce-heavy
}
