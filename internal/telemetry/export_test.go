package telemetry

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteFilePicksFormatByExtension pins the shared CLI export
// helper: .csv (any case) means CSV, everything else means JSONL.
func TestWriteFilePicksFormatByExtension(t *testing.T) {
	col := NewCollector(8)
	col.Register("v", func() float64 { return 7 })
	col.Tick(1)

	dir := t.TempDir()
	cases := []struct {
		file string
		csv  bool
	}{
		{"out.csv", true},
		{"out.CSV", true},
		{"out.Csv", true},
		{"out.jsonl", false},
		{"out.json", false},
		{"out", false},
	}
	for _, tc := range cases {
		path := filepath.Join(dir, tc.file)
		if err := WriteFile(col, path); err != nil {
			t.Fatalf("WriteFile(%s): %v", tc.file, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got := string(data)
		if tc.csv {
			if got != "t,v\n1,7\n" {
				t.Errorf("%s: CSV = %q", tc.file, got)
			}
		} else if !strings.Contains(got, `{"series":"v"`) {
			t.Errorf("%s: not JSONL: %q", tc.file, got)
		}
	}
}

func TestWriteFileBadPath(t *testing.T) {
	col := NewCollector(8)
	if err := WriteFile(col, filepath.Join(t.TempDir(), "no", "such", "dir.csv")); err == nil {
		t.Fatal("expected error for unwritable path")
	}
}

// TestWritePrometheus pins the /metrics rendering: one gauge per
// series, smr_ prefix, sanitised names, newest sample as the value.
func TestWritePrometheus(t *testing.T) {
	col := NewCollector(8)
	vals := map[string]float64{"slotmgr/map-target": 3, "cluster.running maps": 12}
	col.Register("slotmgr/map-target", func() float64 { return vals["slotmgr/map-target"] })
	col.Register("cluster.running maps", func() float64 { return vals["cluster.running maps"] })
	col.Tick(1)
	vals["slotmgr/map-target"] = 5
	col.Tick(2)

	var b strings.Builder
	if err := col.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE smr_slotmgr_map_target gauge\nsmr_slotmgr_map_target 5\n",
		"# TYPE smr_cluster_running_maps gauge\nsmr_cluster_running_maps 12\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusNonFinite(t *testing.T) {
	col := NewCollector(8)
	col.Register("f", func() float64 { return math.NaN() })
	col.Register("g", func() float64 { return math.Inf(1) })
	col.Tick(1)
	var b strings.Builder
	if err := col.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "smr_f NaN\n") || !strings.Contains(b.String(), "smr_g +Inf\n") {
		t.Errorf("non-finite rendering wrong:\n%s", b.String())
	}
}

// TestCollectorConcurrentTickAndExport exercises the serve-mode access
// pattern under the race detector: one goroutine ticking, another
// reading every export.
func TestCollectorConcurrentTickAndExport(t *testing.T) {
	col := NewCollector(64)
	col.Register("v", func() float64 { return 1 })
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			col.Tick(float64(i))
			if i == 100 {
				col.Register("late", func() float64 { return 2 })
			}
		}
	}()
	var sink strings.Builder
	for i := 0; i < 50; i++ {
		col.Table()
		_ = col.WritePrometheus(&sink)
		_ = col.WriteJSONL(&sink)
		col.Names()
		col.Ticks()
	}
	<-done
}
