package telemetry

// Streaming subscription layer: the push-based counterpart to the
// Collector's pull exports. A Subscription receives one TickSample per
// Tick — every registered series' value at that instant — over a
// buffered channel, which is how the serve mode forwards live
// telemetry into a run's SSE stream without the simulation goroutine
// ever blocking on a slow consumer.
//
// Delivery is best-effort by design: when a subscriber's channel is
// full the sample is dropped and counted, never waited on. The
// simulation's determinism therefore cannot depend on who is
// listening — subscribers observe the run, they do not pace it.

// TickSample is one Tick's snapshot across all registered series,
// row-aligned like every other collector export: Names[i] sampled
// Values[i] at virtual time T. Both slices are private copies the
// receiver may retain.
type TickSample struct {
	// Seq is the tick ordinal (1 for the first Tick after subscribing
	// from an empty collector); gaps in a subscriber's observed
	// sequence reveal drops.
	Seq int
	// T is the virtual sample time.
	T float64
	// Names lists the series names in registration order.
	Names []string
	// Values holds the sampled value per series, aligned with Names.
	Values []float64
}

// Subscription is one live feed of TickSamples. Receive from C;
// Cancel when done (C is then closed after any buffered samples are
// drained by the receiver).
type Subscription struct {
	// C delivers one TickSample per Tick, minus drops. Closed by
	// Cancel, and by Collector.Reset.
	C <-chan TickSample

	c       *Collector
	ch      chan TickSample
	dropped int
	closed  bool
}

// Subscribe attaches a streaming subscriber whose channel buffers up
// to buf samples (non-positive means 256). Samples that arrive while
// the buffer is full are dropped, not waited for — see Dropped.
func (c *Collector) Subscribe(buf int) *Subscription {
	if buf <= 0 {
		buf = 256
	}
	sub := &Subscription{c: c, ch: make(chan TickSample, buf)}
	sub.C = sub.ch
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subs = append(c.subs, sub)
	return sub
}

// Cancel detaches the subscription and closes its channel. Safe to
// call more than once, and safe concurrently with Tick.
func (s *Subscription) Cancel() {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	s.c.cancelLocked(s)
}

// Dropped returns how many samples were discarded because the
// subscriber's buffer was full.
func (s *Subscription) Dropped() int {
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	return s.dropped
}

// cancelLocked removes sub from the collector and closes its channel.
// Caller holds c.mu.
func (c *Collector) cancelLocked(sub *Subscription) {
	if sub.closed {
		return
	}
	sub.closed = true
	close(sub.ch)
	for i, s := range c.subs {
		if s == sub {
			c.subs = append(c.subs[:i], c.subs[i+1:]...)
			break
		}
	}
}

// publishLocked fans one tick's snapshot out to every subscriber.
// Caller holds c.mu; the snapshot slices are built once and shared by
// value — TickSample slices are never mutated after publication.
func (c *Collector) publishLocked(now float64) {
	if len(c.subs) == 0 {
		return
	}
	names := make([]string, len(c.probes))
	values := make([]float64, len(c.probes))
	for i, p := range c.probes {
		names[i] = p.s.name
		values[i] = p.s.Last().V
	}
	sample := TickSample{Seq: c.ticks, T: now, Names: names, Values: values}
	for _, sub := range c.subs {
		select {
		case sub.ch <- sample:
		default:
			sub.dropped++
		}
	}
}

// closeSubsLocked cancels every subscription — Reset's path, so a
// pooled collector never leaks feeds (or their forwarding goroutines)
// across runs. Caller holds c.mu.
func (c *Collector) closeSubsLocked() {
	for len(c.subs) > 0 {
		c.cancelLocked(c.subs[len(c.subs)-1])
	}
}
