package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesRingEviction(t *testing.T) {
	col := NewCollector(4)
	k := 0.0
	s := col.Register("counter", func() float64 { k++; return k })
	for i := 0; i < 10; i++ {
		col.Tick(float64(i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", s.Dropped())
	}
	pts := s.Points()
	for i, p := range pts {
		wantT := float64(6 + i)
		wantV := float64(7 + i)
		if p.T != wantT || p.V != wantV {
			t.Fatalf("point %d = (%v,%v), want (%v,%v)", i, p.T, p.V, wantT, wantV)
		}
	}
	if last := s.Last(); last.T != 9 || last.V != 10 {
		t.Fatalf("Last = %+v, want (9,10)", last)
	}
}

func TestSeriesAppendOutOfOrderPanics(t *testing.T) {
	s := NewSeries("x", 8)
	s.Append(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order append")
		}
	}()
	s.Append(4, 1)
}

// TestRegisterAfterTickBackfills pins the late-registration contract:
// a series registered mid-run gets NaN samples at every earlier tick
// instant, so it stays row-aligned with the rest.
func TestRegisterAfterTickBackfills(t *testing.T) {
	col := NewCollector(8)
	a := col.Register("a", func() float64 { return 1 })
	col.Tick(2)
	col.Tick(4)
	b := col.Register("b", func() float64 { return 9 })
	col.Tick(6)

	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("lens = %d/%d, want 3/3", a.Len(), b.Len())
	}
	for i := 0; i < 3; i++ {
		if at, bt := a.At(i).T, b.At(i).T; at != bt {
			t.Fatalf("row %d misaligned: t=%v vs %v", i, at, bt)
		}
	}
	if !math.IsNaN(b.At(0).V) || !math.IsNaN(b.At(1).V) {
		t.Fatalf("backfill not NaN: %v, %v", b.At(0).V, b.At(1).V)
	}
	if b.At(2).V != 9 {
		t.Fatalf("post-registration sample = %v, want 9", b.At(2).V)
	}

	// The wide table stays rectangular across the registration.
	tbl := col.Table()
	if len(tbl.Columns) != 3 || len(tbl.Rows) != 3 {
		t.Fatalf("table %dx%d, want 3x3", len(tbl.Columns), len(tbl.Rows))
	}
}

// TestRegisterBackfillAfterEviction registers late when the tick ring
// has already wrapped; the backfill must cover exactly the retained
// window.
func TestRegisterBackfillAfterEviction(t *testing.T) {
	col := NewCollector(4)
	a := col.Register("a", func() float64 { return 1 })
	for i := 0; i < 10; i++ {
		col.Tick(float64(i))
	}
	b := col.Register("b", func() float64 { return 2 })
	if b.Len() != a.Len() {
		t.Fatalf("late series len = %d, want %d", b.Len(), a.Len())
	}
	for i := 0; i < b.Len(); i++ {
		if a.At(i).T != b.At(i).T {
			t.Fatalf("row %d misaligned after eviction", i)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	col := NewCollector(8)
	col.Register("a", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate series name")
		}
	}()
	col.Register("a", func() float64 { return 1 })
}

func TestCollectorTableAligned(t *testing.T) {
	col := NewCollector(16)
	col.Register("a", func() float64 { return 1 })
	col.Register("b", func() float64 { return 2 })
	for i := 0; i < 3; i++ {
		col.Tick(float64(i) * 2)
	}
	tbl := col.Table()
	wantCols := []string{"t", "a", "b"}
	if len(tbl.Columns) != len(wantCols) {
		t.Fatalf("columns = %v, want %v", tbl.Columns, wantCols)
	}
	for i, c := range wantCols {
		if tbl.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", tbl.Columns, wantCols)
		}
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	if tbl.Rows[1][0] != "2" || tbl.Rows[1][1] != "1" || tbl.Rows[1][2] != "2" {
		t.Fatalf("row 1 = %v", tbl.Rows[1])
	}
}

func TestWriteJSONLNonFiniteAsNull(t *testing.T) {
	col := NewCollector(8)
	vals := []float64{1.5, math.NaN(), math.Inf(1)}
	i := 0
	col.Register("f", func() float64 { v := vals[i]; i++; return v })
	for k := range vals {
		col.Tick(float64(k))
	}
	var b strings.Builder
	if err := col.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), b.String())
	}
	want := []string{
		`{"series":"f","t":0,"v":1.5}`,
		`{"series":"f","t":1,"v":null}`,
		`{"series":"f","t":2,"v":null}`,
	}
	for k, line := range lines {
		if line != want[k] {
			t.Fatalf("line %d = %s, want %s", k, line, want[k])
		}
	}
}

func TestWriteCSV(t *testing.T) {
	col := NewCollector(8)
	col.Register("v", func() float64 { return 7 })
	col.Tick(1)
	var b strings.Builder
	if err := col.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), "t,v\n1,7\n"; got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestInvariantsDisabledIsNil(t *testing.T) {
	prev := SetInvariantsEnabled(false)
	defer SetInvariantsEnabled(prev)
	if v := NewInvariants(); v != nil {
		t.Fatal("NewInvariants should return nil when disabled")
	}
	// Every check must be a no-op on the nil receiver.
	var v *Invariants
	v.CheckSlotTargets(0, 99, 99, 1, 1)
	v.CheckMapLaunch(0, 99, 1)
	v.CheckReduceLaunch(0, 99, 1)
	v.CheckCounters(0, -1, -1, -1)
	v.CheckSample(-1)
	v.CheckEventAppend(-1, 99, 1)
}

func TestInvariantsEnabledInTests(t *testing.T) {
	// Test binaries end in .test, so detection should have fired.
	if !InvariantsEnabled() {
		t.Fatal("invariants should auto-enable inside test binaries")
	}
	if NewInvariants() == nil {
		t.Fatal("NewInvariants should be active inside test binaries")
	}
}

// expectPanic runs fn and fails the test unless it panics with a
// message containing want.
func expectPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want it to contain %q", r, want)
		}
	}()
	fn()
}

func TestInvariantViolationsPanic(t *testing.T) {
	prev := SetInvariantsEnabled(true)
	defer SetInvariantsEnabled(prev)

	expectPanic(t, "map target", func() {
		NewInvariants().CheckSlotTargets(3, 0, 2, 16, 6)
	})
	expectPanic(t, "map target", func() {
		NewInvariants().CheckSlotTargets(3, 17, 2, 16, 6)
	})
	expectPanic(t, "reduce target", func() {
		NewInvariants().CheckSlotTargets(3, 4, 7, 16, 6)
	})
	expectPanic(t, "beyond target", func() {
		NewInvariants().CheckMapLaunch(1, 5, 4)
	})
	expectPanic(t, "beyond target", func() {
		NewInvariants().CheckReduceLaunch(1, 3, 2)
	})
	expectPanic(t, "counters regressed", func() {
		v := NewInvariants()
		v.CheckCounters(0, 10, 10, 10)
		v.CheckCounters(0, 9, 10, 10)
	})
	expectPanic(t, "sample at", func() {
		v := NewInvariants()
		v.CheckSample(10)
		v.CheckSample(9)
	})
	expectPanic(t, "exceeds limit", func() {
		NewInvariants().CheckEventAppend(0, 5, 4)
	})
	expectPanic(t, "event at", func() {
		v := NewInvariants()
		v.CheckEventAppend(10, 1, 8)
		v.CheckEventAppend(9, 2, 8)
	})

	// The happy path must not panic.
	v := NewInvariants()
	v.CheckSlotTargets(0, 1, 1, 16, 6)
	v.CheckSlotTargets(0, 16, 6, 16, 6)
	v.CheckMapLaunch(0, 4, 4)
	v.CheckReduceLaunch(0, 2, 2)
	v.CheckCounters(0, 1, 2, 3)
	v.CheckCounters(0, 1, 2, 3)
	v.CheckCounters(0, 2, 3, 4)
	v.CheckSample(1)
	v.CheckSample(1)
	v.CheckSample(2)
	v.CheckEventAppend(1, 1, 8)
	v.CheckEventAppend(1, 2, 8)
}
