package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteFile exports the collector to path, picking the format from the
// file extension (case-insensitive): CSV for .csv, JSONL otherwise.
func WriteFile(col *Collector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.EqualFold(filepath.Ext(path), ".csv") {
		err = col.WriteCSV(f)
	} else {
		err = col.WriteJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WritePrometheus renders the newest sample of every series in the
// Prometheus text exposition format, one gauge per series named
// smr_<series> with characters outside [a-zA-Z0-9_] folded to '_'.
// Non-finite values keep their text spellings (NaN, +Inf), which the
// format admits.
func (c *Collector) WritePrometheus(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, p := range c.probes {
		if p.s.Len() == 0 {
			continue
		}
		name := promName(p.s.name)
		if _, err := fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n",
			name, name, formatValue(p.s.Last().V)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// promName maps a series name to a valid Prometheus metric name.
func promName(series string) string {
	var b strings.Builder
	b.Grow(len(series) + 4)
	b.WriteString("smr_")
	for _, r := range series {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
