package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
)

// WriteFile exports the collector to path, picking the format from the
// file extension (case-insensitive): CSV for .csv, JSONL otherwise.
func WriteFile(col *Collector, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.EqualFold(filepath.Ext(path), ".csv") {
		err = col.WriteCSV(f)
	} else {
		err = col.WriteJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WritePrometheus renders the newest sample of every series in the
// Prometheus text exposition format, one gauge per series named
// smr_<series> with characters outside [a-zA-Z0-9_] folded to '_',
// each preceded by its # HELP and # TYPE metadata lines. A constant
// smr_build_info gauge carries the module version and platform as
// labels, the convention dashboards join on. Non-finite values keep
// their text spellings (NaN, +Inf), which the format admits.
func (c *Collector) WritePrometheus(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw,
		"# HELP smr_build_info Build metadata of the serving binary (value is always 1).\n"+
			"# TYPE smr_build_info gauge\n"+
			"smr_build_info{version=%q,goversion=%q,goos=%q,goarch=%q} 1\n",
		BuildVersion(), runtime.Version(), runtime.GOOS, runtime.GOARCH); err != nil {
		return err
	}
	for _, p := range c.probes {
		if p.s.Len() == 0 {
			continue
		}
		name := promName(p.s.name)
		if _, err := fmt.Fprintf(bw, "# HELP %s Newest sample of telemetry series %q.\n# TYPE %s gauge\n%s %s\n",
			name, p.s.name, name, name, formatValue(p.s.Last().V)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BuildVersion reports the main module's version as recorded in the
// binary's build info: a tag for released builds, a pseudo-version for
// module builds, "devel" when built from a source tree.
func BuildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// promName maps a series name to a valid Prometheus metric name.
func promName(series string) string {
	var b strings.Builder
	b.Grow(len(series) + 4)
	b.WriteString("smr_")
	for _, r := range series {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
