package telemetry

import (
	"strings"
	"testing"
)

// TestSubscribeDeliversTickSamples pins the streaming contract: one
// row-aligned sample per Tick, names in registration order, values
// matching the probes at that instant.
func TestSubscribeDeliversTickSamples(t *testing.T) {
	col := NewCollector(16)
	v := 1.0
	col.Register("a", func() float64 { return v })
	col.Register("b", func() float64 { return 2 * v })

	sub := col.Subscribe(8)
	col.Tick(1)
	v = 5
	col.Tick(2)
	sub.Cancel()

	var got []TickSample
	for s := range sub.C {
		got = append(got, s)
	}
	if len(got) != 2 {
		t.Fatalf("received %d samples, want 2", len(got))
	}
	if got[0].Seq != 1 || got[0].T != 1 || got[1].Seq != 2 || got[1].T != 2 {
		t.Errorf("seq/t wrong: %+v", got)
	}
	for i, s := range got {
		if len(s.Names) != 2 || s.Names[0] != "a" || s.Names[1] != "b" {
			t.Fatalf("sample %d names = %v", i, s.Names)
		}
	}
	if got[0].Values[0] != 1 || got[0].Values[1] != 2 {
		t.Errorf("first sample values = %v", got[0].Values)
	}
	if got[1].Values[0] != 5 || got[1].Values[1] != 10 {
		t.Errorf("second sample values = %v", got[1].Values)
	}
	if d := sub.Dropped(); d != 0 {
		t.Errorf("Dropped = %d, want 0", d)
	}
}

// TestSubscribeDropsWhenFull pins the non-blocking guarantee: a full
// subscriber buffer sheds samples (counted, with visible sequence
// gaps) instead of stalling Tick.
func TestSubscribeDropsWhenFull(t *testing.T) {
	col := NewCollector(16)
	col.Register("x", func() float64 { return 1 })
	sub := col.Subscribe(2)
	for i := 1; i <= 5; i++ {
		col.Tick(float64(i))
	}
	if d := sub.Dropped(); d != 3 {
		t.Errorf("Dropped = %d, want 3", d)
	}
	sub.Cancel()
	var seqs []int
	for s := range sub.C {
		seqs = append(seqs, s.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Errorf("retained seqs = %v, want [1 2]", seqs)
	}
}

// TestSubscriptionCancelIsIdempotent also checks that a cancelled
// subscriber stops receiving while others continue.
func TestSubscriptionCancelIsIdempotent(t *testing.T) {
	col := NewCollector(16)
	col.Register("x", func() float64 { return 1 })
	a := col.Subscribe(8)
	b := col.Subscribe(8)
	col.Tick(1)
	a.Cancel()
	a.Cancel() // must not panic or double-close
	col.Tick(2)
	b.Cancel()

	na := 0
	for range a.C {
		na++
	}
	nb := 0
	for range b.C {
		nb++
	}
	if na != 1 || nb != 2 {
		t.Errorf("a received %d, b received %d; want 1 and 2", na, nb)
	}
}

// TestResetCancelsSubscriptions: a pooled collector must not leak live
// feeds across runs — Reset closes every subscriber channel.
func TestResetCancelsSubscriptions(t *testing.T) {
	col := NewCollector(16)
	col.Register("x", func() float64 { return 1 })
	sub := col.Subscribe(8)
	col.Tick(1)
	col.Reset()
	n := 0
	for range sub.C {
		n++
	}
	if n != 1 {
		t.Errorf("received %d samples before close, want 1", n)
	}
	// A post-reset tick must not reach (or panic on) the dead sub.
	col.Register("y", func() float64 { return 2 })
	col.Tick(1)
}

// TestWritePrometheusBuildInfo pins the smr_build_info metric and the
// HELP/TYPE metadata lines the satellite adds.
func TestWritePrometheusBuildInfo(t *testing.T) {
	col := NewCollector(8)
	col.Register("v", func() float64 { return 7 })
	col.Tick(1)
	var b strings.Builder
	if err := col.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP smr_build_info ",
		"# TYPE smr_build_info gauge\n",
		"smr_build_info{version=",
		"goos=",
		"# HELP smr_v ",
		"# TYPE smr_v gauge\nsmr_v 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if BuildVersion() == "" {
		t.Error("BuildVersion is empty")
	}
}
