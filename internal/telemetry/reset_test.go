package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestCollectorResetMatchesFresh(t *testing.T) {
	drive := func(c *Collector) string {
		x := 0.0
		c.Register("x", func() float64 { x++; return x })
		c.Tick(1)
		c.Tick(2)
		c.Register("late", func() float64 { return 7 }) // NaN-backfilled
		c.Tick(3)
		var b strings.Builder
		if err := c.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	reused := NewCollector(16)
	drive(reused)
	reused.Reset()
	want := drive(NewCollector(16))
	got := drive(reused)
	if want != got {
		t.Fatalf("reset collector diverges from fresh:\nfresh:\n%s\nreused:\n%s", want, got)
	}
}

func TestCollectorResetClearsState(t *testing.T) {
	c := NewCollector(8)
	s := c.Register("a", func() float64 { return 1 })
	c.Tick(1)
	c.Reset()
	if c.Ticks() != 0 {
		t.Fatalf("Ticks = %d after Reset", c.Ticks())
	}
	if got := c.Names(); len(got) != 0 {
		t.Fatalf("Names = %v after Reset", got)
	}
	if c.Get("a") != nil {
		t.Fatal("series still registered after Reset")
	}
	// Re-registering the old name is legal (no duplicate panic) and
	// recycles the retired ring buffer.
	s2 := c.Register("a", func() float64 { return 2 })
	if s2 != s {
		t.Fatal("Register did not recycle the retired series")
	}
	if s2.Len() != 0 || s2.Dropped() != 0 {
		t.Fatalf("recycled series not empty: len=%d dropped=%d", s2.Len(), s2.Dropped())
	}
	// Time may restart from zero: the old lastT watermark must be gone.
	c.Tick(0.5)
	if s2.Len() != 1 || s2.Last().V != 2 {
		t.Fatalf("recycled series sample: len=%d last=%v", s2.Len(), s2.Last())
	}
}

func TestCollectorResetBackfillAfterReuse(t *testing.T) {
	c := NewCollector(8)
	c.Register("a", func() float64 { return 1 })
	c.Tick(1)
	c.Tick(2)
	c.Reset()
	c.Register("b", func() float64 { return 3 })
	c.Tick(10)
	// A series registered after the post-reset tick backfills only the
	// new epoch's instants.
	late := c.Register("late", func() float64 { return 4 })
	if late.Len() != 1 || !math.IsNaN(late.At(0).V) || late.At(0).T != 10 {
		t.Fatalf("late backfill after Reset: len=%d first=%v", late.Len(), late.At(0))
	}
}
