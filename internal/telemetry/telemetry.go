// Package telemetry provides the tick-sampled time-series layer the
// runtime exposes for inspection: a Collector of named probe series
// sampled on the cluster's progress cadence, ring-buffered so long
// runs stay bounded, exportable as JSONL or CSV, plus the runtime
// invariant checker (invariants.go) built on the same observation
// points.
//
// The collector is pull-based: components register probe closures once
// during setup, and every Tick samples all of them at the same virtual
// instant. All series therefore stay row-aligned — equal lengths, equal
// timestamps — which makes the wide-table exports trivially correct.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"

	"smapreduce/internal/metrics"
)

// DefaultCapacity is the per-series ring capacity used when the caller
// passes a non-positive capacity to NewCollector. At the default 2 s
// sampling cadence it retains over four virtual hours.
const DefaultCapacity = 8192

// Series is a fixed-capacity ring buffer of time samples. Once full,
// each append evicts the oldest sample and counts it in Dropped.
// Timestamps must be non-decreasing; Append panics otherwise, because
// an out-of-order sample always indicates a probe wiring bug.
type Series struct {
	name    string
	buf     []metrics.Point
	head    int // index of the oldest retained sample
	n       int
	dropped int
	lastT   float64
	primed  bool
}

// NewSeries returns an empty ring series with the given capacity
// (non-positive means DefaultCapacity).
func NewSeries(name string, capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Series{name: name, buf: make([]metrics.Point, capacity)}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Len returns the number of retained samples.
func (s *Series) Len() int { return s.n }

// Cap returns the ring capacity.
func (s *Series) Cap() int { return len(s.buf) }

// Dropped returns how many old samples the ring has evicted.
func (s *Series) Dropped() int { return s.dropped }

// Append records one sample. Panics if t precedes the previous sample.
func (s *Series) Append(t, v float64) {
	if s.primed && t < s.lastT {
		panic(fmt.Sprintf("telemetry: series %q sample at %v before last %v", s.name, t, s.lastT))
	}
	s.lastT, s.primed = t, true
	if s.n == len(s.buf) {
		s.buf[s.head] = metrics.Point{T: t, V: v}
		s.head = (s.head + 1) % len(s.buf)
		s.dropped++
		return
	}
	s.buf[(s.head+s.n)%len(s.buf)] = metrics.Point{T: t, V: v}
	s.n++
}

// At returns the i-th oldest retained sample, 0 <= i < Len.
func (s *Series) At(i int) metrics.Point {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("telemetry: series %q index %d out of range [0,%d)", s.name, i, s.n))
	}
	return s.buf[(s.head+i)%len(s.buf)]
}

// Last returns the newest sample, or a zero Point when empty.
func (s *Series) Last() metrics.Point {
	if s.n == 0 {
		return metrics.Point{}
	}
	return s.At(s.n - 1)
}

// Points returns the retained samples oldest-first, as a copy the
// caller may keep across further appends.
func (s *Series) Points() []metrics.Point {
	out := make([]metrics.Point, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.At(i)
	}
	return out
}

// reset empties the series for reuse under a new name, keeping the
// ring buffer. Stale samples beyond the (now zero) length are
// unreachable through the accessors, so they are left in place.
func (s *Series) reset(name string) {
	s.name = name
	s.head, s.n, s.dropped = 0, 0, 0
	s.lastT, s.primed = 0, false
}

// probe pairs a registered series with the closure that samples it.
type probe struct {
	s  *Series
	fn func() float64
}

// Collector samples a set of named probes on every Tick. Late
// registration (after ticks have already run) backfills the new series
// with NaN samples at the earlier tick instants, so all series always
// stay row-aligned.
//
// Collector methods are safe for concurrent use (the serve mode reads
// exports while the simulation goroutine ticks). Series handles
// obtained from Register or Get are not independently synchronised:
// read them through the Collector's exports, or only once ticking has
// stopped.
type Collector struct {
	mu       sync.Mutex
	capacity int
	probes   []probe
	byName   map[string]*Series
	times    *Series // tick instants, for late-registration backfill
	ticks    int
	free     []*Series // retired rings recycled by Register after Reset
	subs     []*Subscription
}

// NewCollector returns an empty collector whose series each retain up
// to capacity samples (non-positive means DefaultCapacity).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Collector{
		capacity: capacity,
		byName:   make(map[string]*Series),
		times:    NewSeries("t", capacity),
	}
}

// Register adds a named probe and returns its series. A series
// registered after ticks have already run is backfilled with NaN at
// every retained tick instant, keeping all series row-aligned. Panics
// on a duplicate name.
func (c *Collector) Register(name string, fn func() float64) *Series {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byName[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate series %q", name))
	}
	var s *Series
	if n := len(c.free); n > 0 {
		s = c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		s.reset(name)
	} else {
		s = NewSeries(name, c.capacity)
	}
	for i := 0; i < c.times.Len(); i++ {
		s.Append(c.times.At(i).T, math.NaN())
	}
	c.byName[name] = s
	c.probes = append(c.probes, probe{s: s, fn: fn})
	return s
}

// Reset discards every registered probe and all retained samples so a
// pooled worker can recycle the collector across consecutive runs. The
// probe closures are dropped (they close over the previous run's
// cluster), but their ring buffers move to a free list that Register
// consumes, so a reset-and-re-register cycle performs no large
// allocations. A reset collector is observationally identical to a
// fresh NewCollector with the same capacity.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range c.probes {
		c.free = append(c.free, p.s)
	}
	c.probes = c.probes[:0]
	clear(c.byName)
	c.times.reset("t")
	c.ticks = 0
	c.closeSubsLocked()
}

// Tick samples every registered probe at virtual time now.
func (c *Collector) Tick(now float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticks++
	c.times.Append(now, 0)
	for _, p := range c.probes {
		p.s.Append(now, p.fn())
	}
	c.publishLocked(now)
}

// Ticks returns how many times Tick has run.
func (c *Collector) Ticks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ticks
}

// Names returns the series names in registration order.
func (c *Collector) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.probes))
	for i, p := range c.probes {
		out[i] = p.s.name
	}
	return out
}

// Get returns the named series, or nil if not registered.
func (c *Collector) Get(name string) *Series {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byName[name]
}

// Table renders the retained samples as a wide table: one row per
// tick, a "t" column plus one column per series. All series are
// row-aligned by construction.
func (c *Collector) Table() *metrics.Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.table()
}

func (c *Collector) table() *metrics.Table {
	cols := make([]string, 0, len(c.probes)+1)
	cols = append(cols, "t")
	for _, p := range c.probes {
		cols = append(cols, p.s.name)
	}
	t := metrics.NewTable("telemetry", cols...)
	if len(c.probes) == 0 {
		return t
	}
	first := c.probes[0].s
	for i := 0; i < first.Len(); i++ {
		row := make([]string, 0, len(cols))
		row = append(row, formatValue(first.At(i).T))
		for _, p := range c.probes {
			row = append(row, formatValue(p.s.At(i).V))
		}
		t.AddRow(row...)
	}
	return t
}

// WriteCSV writes the wide table as CSV.
func (c *Collector) WriteCSV(w io.Writer) error {
	_, err := io.WriteString(w, c.Table().CSV())
	return err
}

// WriteJSONL writes one JSON object per retained sample, grouped by
// series and time-ordered within each:
//
//	{"series":"slotmgr/map-target","t":42,"v":3}
//
// Non-finite values (the balance factor is NaN before any map output
// and +Inf for map-only jobs) are emitted as null, since JSON cannot
// encode them.
func (c *Collector) WriteJSONL(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, p := range c.probes {
		name := strconv.Quote(p.s.name)
		for i := 0; i < p.s.Len(); i++ {
			pt := p.s.At(i)
			if _, err := fmt.Fprintf(bw, "{\"series\":%s,\"t\":%s,\"v\":%s}\n",
				name, jsonNumber(pt.T), jsonNumber(pt.V)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// jsonNumber formats v as a JSON value, mapping non-finite to null.
func jsonNumber(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatValue renders a float for the table/CSV exports. Non-finite
// values keep their Go spelling (NaN, +Inf), which plotting tools
// commonly accept as missing data.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
