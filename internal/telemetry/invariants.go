package telemetry

import (
	"fmt"
	"os"
	"strings"
)

// Runtime invariant checking is on inside test binaries (so every test
// run doubles as a trajectory-level oracle) and whenever
// SMR_INVARIANTS=1 is set; otherwise NewInvariants returns nil and
// every check compiles down to a nil-receiver no-op, adding a single
// predictable branch to the instrumented paths.
var invariantsOn = detectInvariants()

func detectInvariants() bool {
	if os.Getenv("SMR_INVARIANTS") == "1" {
		return true
	}
	exe := os.Args[0]
	return strings.HasSuffix(exe, ".test") || strings.HasSuffix(exe, ".test.exe")
}

// InvariantsEnabled reports whether invariant checking is active.
func InvariantsEnabled() bool { return invariantsOn }

// SetInvariantsEnabled overrides the detection (tests) and returns the
// previous setting so callers can restore it.
func SetInvariantsEnabled(on bool) bool {
	prev := invariantsOn
	invariantsOn = on
	return prev
}

// Invariants checks runtime properties that must hold on every
// trajectory, panicking with the offending context on violation:
//
//   - slot targets applied to a tracker stay within [1, Max*Slots];
//   - a task launch never exceeds the tracker's slot target (lazy
//     shrinking may leave running > target, but then nothing launches);
//   - per-tracker cumulative done counters never decrease;
//   - event and sample timestamps are monotone;
//   - the event log never grows beyond its limit.
//
// All methods are no-ops on the nil receiver.
type Invariants struct {
	lastEventAt  float64
	eventSeen    bool
	lastSampleAt float64
	sampleSeen   bool
	counters     map[int][3]float64 // tracker -> {inMB, outMB, shufMB}
}

// NewInvariants returns a checker, or nil when checking is disabled.
func NewInvariants() *Invariants {
	if !invariantsOn {
		return nil
	}
	return &Invariants{counters: make(map[int][3]float64)}
}

// CheckSlotTargets validates a slot-change command applied to tracker.
func (v *Invariants) CheckSlotTargets(tracker, maps, reduces, maxMaps, maxReduces int) {
	if v == nil {
		return
	}
	if maps < 1 || maps > maxMaps {
		panic(fmt.Sprintf("telemetry: invariant violated: tracker %d map target %d outside [1,%d]",
			tracker, maps, maxMaps))
	}
	if reduces < 1 || reduces > maxReduces {
		panic(fmt.Sprintf("telemetry: invariant violated: tracker %d reduce target %d outside [1,%d]",
			tracker, reduces, maxReduces))
	}
}

// CheckMapLaunch validates the occupancy right after a map launch.
func (v *Invariants) CheckMapLaunch(tracker, running, target int) {
	if v == nil {
		return
	}
	if running > target {
		panic(fmt.Sprintf("telemetry: invariant violated: tracker %d launched map #%d beyond target %d",
			tracker, running, target))
	}
}

// CheckReduceLaunch validates the occupancy right after a reduce launch.
func (v *Invariants) CheckReduceLaunch(tracker, running, target int) {
	if v == nil {
		return
	}
	if running > target {
		panic(fmt.Sprintf("telemetry: invariant violated: tracker %d launched reduce #%d beyond target %d",
			tracker, running, target))
	}
}

// CheckLaunchTracker validates that the tracker receiving a task launch
// is actually eligible for work: not failed, not draining, not inside a
// heartbeat-loss window, not blacklisted, not on probation.
func (v *Invariants) CheckLaunchTracker(tracker int, failed, draining, hbLost, blacklisted, probation bool) {
	if v == nil {
		return
	}
	if failed || draining || hbLost || blacklisted || probation {
		panic(fmt.Sprintf("telemetry: invariant violated: task launched on ineligible tracker %d (failed=%v draining=%v hbLost=%v blacklisted=%v probation=%v)",
			tracker, failed, draining, hbLost, blacklisted, probation))
	}
}

// CheckRecover validates a tracker rejoin: a crashed tracker must come
// back with zero pre-crash task state (its slots were emptied by the
// failure path; anything still attached would be ghost work).
func (v *Invariants) CheckRecover(tracker, runningMaps, runningReduces int) {
	if v == nil {
		return
	}
	if runningMaps != 0 || runningReduces != 0 {
		panic(fmt.Sprintf("telemetry: invariant violated: tracker %d rejoined holding %d maps / %d reduces",
			tracker, runningMaps, runningReduces))
	}
}

// CheckCounters validates that a tracker's cumulative done counters
// have not decreased since the previous check.
func (v *Invariants) CheckCounters(tracker int, inMB, outMB, shufMB float64) {
	if v == nil {
		return
	}
	last := v.counters[tracker]
	if inMB < last[0] || outMB < last[1] || shufMB < last[2] {
		panic(fmt.Sprintf("telemetry: invariant violated: tracker %d counters regressed: in %v->%v out %v->%v shuffle %v->%v",
			tracker, last[0], inMB, last[1], outMB, last[2], shufMB))
	}
	v.counters[tracker] = [3]float64{inMB, outMB, shufMB}
}

// CheckSample validates that sampler timestamps are monotone.
func (v *Invariants) CheckSample(at float64) {
	if v == nil {
		return
	}
	if v.sampleSeen && at < v.lastSampleAt {
		panic(fmt.Sprintf("telemetry: invariant violated: sample at %v before previous %v", at, v.lastSampleAt))
	}
	v.lastSampleAt, v.sampleSeen = at, true
}

// CheckEventAppend validates the event log right after an append:
// bounded length and monotone timestamps.
func (v *Invariants) CheckEventAppend(at float64, length, limit int) {
	if v == nil {
		return
	}
	if length > limit {
		panic(fmt.Sprintf("telemetry: invariant violated: event log length %d exceeds limit %d", length, limit))
	}
	if v.eventSeen && at < v.lastEventAt {
		panic(fmt.Sprintf("telemetry: invariant violated: event at %v before previous %v", at, v.lastEventAt))
	}
	v.lastEventAt, v.eventSeen = at, true
}
