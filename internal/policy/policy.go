// Package policy implements capacity policies for the multi-tenant
// runtime (mr.CapacityPolicy): weighted fair share, capacity queues
// with guarantees and elasticity, and a game-theoretic allocator that
// computes the proportional-fairness equilibrium each control period
// (after Gianniti et al., arXiv:1701.04763).
//
// All three are pure allocators: configuration is fixed at
// construction, Allocate keeps no state between calls, and every
// tie-break is by tenant name — so one policy instance can be shared
// across fleet workers without perturbing the byte-identical event
// logs the repo guarantees.
package policy

import (
	"fmt"
	"math"
	"sort"

	"smapreduce/internal/mr"
)

// DefaultInterval is the rebalance period used when Options.Interval
// is zero — the same 5 s cadence as the paper's slot manager.
const DefaultInterval = 5.0

// Tenant configures one known tenant. Tenants not listed here receive
// Weight 1 and no guarantee when they appear at runtime.
type Tenant struct {
	Name string
	// Weight scales the tenant's share under FairShare and
	// GameTheoretic. Zero means 1.
	Weight float64
	// Guarantee is the fraction of total capacity reserved for the
	// tenant under CapacityQueue (Hadoop's yarn.scheduler.capacity.*
	// queue capacity). Ignored by the other policies.
	Guarantee float64
}

// Options configures a policy.
type Options struct {
	// Interval is the rebalance period in virtual seconds; 0 means
	// DefaultInterval.
	Interval float64
	// Tenants lists known tenants with weights/guarantees.
	Tenants []Tenant
}

type config struct {
	interval   float64
	weights    map[string]float64
	guarantees map[string]float64
}

func newConfig(o Options) (config, error) {
	c := config{
		interval:   o.Interval,
		weights:    make(map[string]float64, len(o.Tenants)),
		guarantees: make(map[string]float64, len(o.Tenants)),
	}
	if c.interval == 0 {
		c.interval = DefaultInterval
	}
	if c.interval <= 0 {
		return config{}, fmt.Errorf("policy: interval %v must be positive", o.Interval)
	}
	sum := 0.0
	for _, t := range o.Tenants {
		if t.Name == "" {
			return config{}, fmt.Errorf("policy: tenant with empty name")
		}
		if _, dup := c.weights[t.Name]; dup {
			return config{}, fmt.Errorf("policy: duplicate tenant %q", t.Name)
		}
		w := t.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 {
			return config{}, fmt.Errorf("policy: tenant %q weight %v must be positive", t.Name, t.Weight)
		}
		if t.Guarantee < 0 || t.Guarantee > 1 {
			return config{}, fmt.Errorf("policy: tenant %q guarantee %v must be in [0,1]", t.Name, t.Guarantee)
		}
		c.weights[t.Name] = w
		c.guarantees[t.Name] = t.Guarantee
		sum += t.Guarantee
	}
	if sum > 1+1e-9 {
		return config{}, fmt.Errorf("policy: guarantees sum to %v, must be <= 1", sum)
	}
	return c, nil
}

func (c config) weight(name string) float64 {
	if w, ok := c.weights[name]; ok {
		return w
	}
	return 1
}

// uncappedAll lifts every cap — used when total capacity covers total
// demand, so caps would only throttle arrivals between ticks.
func uncappedAll(tenants []mr.TenantSnapshot, reason string) []mr.TenantAllocation {
	out := make([]mr.TenantAllocation, len(tenants))
	for i, t := range tenants {
		out[i] = mr.TenantAllocation{Tenant: t.Tenant, TaskCap: -1, Share: 0, Reason: reason}
	}
	return out
}

// totalDemand sums tenant demands.
func totalDemand(tenants []mr.TenantSnapshot) int {
	d := 0
	for _, t := range tenants {
		d += t.Demand
	}
	return d
}

// waterFill computes the weighted max-min allocation of capacity over
// demand-capped tenants: repeatedly split the remaining capacity in
// proportion to the unfrozen tenants' weights, freezing every tenant
// whose demand is met. Deterministic for identical inputs; the result
// is the continuous allocation in task units, aligned with tenants.
func waterFill(capacity float64, tenants []mr.TenantSnapshot, weight func(string) float64) []float64 {
	alloc := make([]float64, len(tenants))
	frozen := make([]bool, len(tenants))
	remaining := capacity
	for {
		sumW := 0.0
		for i, t := range tenants {
			if !frozen[i] && t.Demand > 0 {
				sumW += weight(t.Tenant)
			}
		}
		if sumW <= 0 || remaining <= 1e-12 {
			return alloc
		}
		progressed := false
		for i, t := range tenants {
			if frozen[i] || t.Demand <= 0 {
				continue
			}
			fair := alloc[i] + remaining*weight(t.Tenant)/sumW
			if fair >= float64(t.Demand)-1e-12 {
				remaining -= float64(t.Demand) - alloc[i]
				alloc[i] = float64(t.Demand)
				frozen[i] = true
				progressed = true
			}
		}
		if !progressed {
			// No tenant saturates: split the remainder by weight and stop.
			for i, t := range tenants {
				if !frozen[i] && t.Demand > 0 {
					alloc[i] += remaining * weight(t.Tenant) / sumW
				}
			}
			return alloc
		}
	}
}

// roundCaps turns a continuous allocation into integer task caps that
// sum to min(total, rounded sum) using largest-remainder apportionment
// with tenant-name tie-breaks, then guarantees every tenant with
// demand and a positive continuous share at least one slot (taking the
// unit from the largest cap) so integer rounding cannot starve a
// tenant its continuous allocation did not.
func roundCaps(total int, tenants []mr.TenantSnapshot, alloc []float64) []int {
	caps := make([]int, len(alloc))
	units := 0
	for i, a := range alloc {
		caps[i] = int(math.Floor(a + 1e-9))
		units += caps[i]
	}
	spare := total - units
	if spare > 0 {
		type frac struct {
			i int
			f float64
		}
		fr := make([]frac, 0, len(alloc))
		for i, a := range alloc {
			if f := a - math.Floor(a+1e-9); f > 1e-9 {
				fr = append(fr, frac{i, f})
			}
		}
		sort.Slice(fr, func(a, b int) bool {
			if fr[a].f != fr[b].f {
				return fr[a].f > fr[b].f
			}
			return tenants[fr[a].i].Tenant < tenants[fr[b].i].Tenant
		})
		for _, f := range fr {
			if spare == 0 {
				break
			}
			caps[f.i]++
			spare--
		}
	}
	// Anti-starvation: a tenant entitled to a sliver must not round to
	// zero while another tenant holds more than one slot.
	for i := range caps {
		if caps[i] > 0 || tenants[i].Demand <= 0 || alloc[i] <= 1e-9 {
			continue
		}
		donor, donorCap := -1, 1
		for k := range caps {
			if caps[k] > donorCap || (caps[k] == donorCap && donor >= 0 && tenants[k].Tenant < tenants[donor].Tenant) {
				donor, donorCap = k, caps[k]
			}
		}
		if donor >= 0 && caps[donor] > 1 {
			caps[donor]--
			caps[i]++
		}
	}
	return caps
}

// allocations assembles the result rows from integer caps.
func allocations(total int, tenants []mr.TenantSnapshot, caps []int, reason string) []mr.TenantAllocation {
	out := make([]mr.TenantAllocation, len(tenants))
	for i, t := range tenants {
		share := 0.0
		if total > 0 {
			share = float64(caps[i]) / float64(total)
		}
		out[i] = mr.TenantAllocation{Tenant: t.Tenant, TaskCap: caps[i], Share: share, Reason: reason}
	}
	return out
}

// FairShare divides capacity by weighted max-min fairness: every
// tenant receives capacity in proportion to its weight, demand-capped,
// with unused shares redistributed (water-filling). When capacity
// covers total demand all caps are lifted.
type FairShare struct{ cfg config }

// NewFairShare builds a weighted fair-share policy.
func NewFairShare(o Options) (*FairShare, error) {
	cfg, err := newConfig(o)
	if err != nil {
		return nil, err
	}
	return &FairShare{cfg: cfg}, nil
}

// Name implements mr.CapacityPolicy.
func (p *FairShare) Name() string { return "fair-share" }

// Interval implements mr.CapacityPolicy.
func (p *FairShare) Interval() float64 { return p.cfg.interval }

// Allocate implements mr.CapacityPolicy.
func (p *FairShare) Allocate(now float64, total int, tenants []mr.TenantSnapshot) []mr.TenantAllocation {
	if totalDemand(tenants) <= total {
		return uncappedAll(tenants, "slack")
	}
	alloc := waterFill(float64(total), tenants, p.cfg.weight)
	caps := roundCaps(total, tenants, alloc)
	return allocations(total, tenants, caps, "water-fill")
}

// CapacityQueue mirrors Hadoop's Capacity Scheduler: each configured
// tenant owns a guaranteed fraction of the cluster, and capacity
// beyond the guarantees (or left idle by tenants under their
// guarantee) is lent out by weighted max-min over the tenants with
// unmet demand — guarantees with elasticity.
type CapacityQueue struct{ cfg config }

// NewCapacityQueue builds a capacity-queue policy.
func NewCapacityQueue(o Options) (*CapacityQueue, error) {
	cfg, err := newConfig(o)
	if err != nil {
		return nil, err
	}
	return &CapacityQueue{cfg: cfg}, nil
}

// Name implements mr.CapacityPolicy.
func (p *CapacityQueue) Name() string { return "capacity-queue" }

// Interval implements mr.CapacityPolicy.
func (p *CapacityQueue) Interval() float64 { return p.cfg.interval }

// Allocate implements mr.CapacityPolicy.
func (p *CapacityQueue) Allocate(now float64, total int, tenants []mr.TenantSnapshot) []mr.TenantAllocation {
	if totalDemand(tenants) <= total {
		return uncappedAll(tenants, "slack")
	}
	// Phase 1: serve each tenant's guarantee, demand-capped.
	alloc := make([]float64, len(tenants))
	used := 0.0
	for i, t := range tenants {
		g := p.cfg.guarantees[t.Tenant] * float64(total)
		if g > float64(t.Demand) {
			g = float64(t.Demand)
		}
		alloc[i] = g
		used += g
	}
	// Phase 2: lend the leftover to unmet demand by weighted max-min.
	leftover := float64(total) - used
	if leftover > 0 {
		residual := make([]mr.TenantSnapshot, len(tenants))
		for i, t := range tenants {
			residual[i] = t
			residual[i].Demand = t.Demand - int(math.Floor(alloc[i]+1e-9))
			if residual[i].Demand < 0 {
				residual[i].Demand = 0
			}
		}
		extra := waterFill(leftover, residual, p.cfg.weight)
		for i := range alloc {
			alloc[i] += extra[i]
		}
	}
	caps := roundCaps(total, tenants, alloc)
	return allocations(total, tenants, caps, "guaranteed+elastic")
}

// GameTheoretic computes the proportional-fairness equilibrium each
// control period: the allocation maximising Σᵢ wᵢ·log(1+aᵢ) subject to
// Σᵢ aᵢ ≤ total and 0 ≤ aᵢ ≤ demandᵢ. This is the Nash bargaining
// solution of the slot-division game (no tenant can gain without a
// larger weighted loss elsewhere), the runtime analogue of the
// game-theoretic capacity allocator of Gianniti et al.
// (arXiv:1701.04763). The KKT conditions give aᵢ = clamp(wᵢ/λ − 1, 0,
// dᵢ) for a shadow price λ found by deterministic bisection.
type GameTheoretic struct{ cfg config }

// NewGameTheoretic builds a game-theoretic proportional-fairness policy.
func NewGameTheoretic(o Options) (*GameTheoretic, error) {
	cfg, err := newConfig(o)
	if err != nil {
		return nil, err
	}
	return &GameTheoretic{cfg: cfg}, nil
}

// Name implements mr.CapacityPolicy.
func (p *GameTheoretic) Name() string { return "game-theoretic" }

// Interval implements mr.CapacityPolicy.
func (p *GameTheoretic) Interval() float64 { return p.cfg.interval }

// Allocate implements mr.CapacityPolicy.
func (p *GameTheoretic) Allocate(now float64, total int, tenants []mr.TenantSnapshot) []mr.TenantAllocation {
	if totalDemand(tenants) <= total {
		return uncappedAll(tenants, "slack")
	}
	// a(λ) = Σ clamp(wᵢ/λ − 1, 0, dᵢ) is non-increasing in λ. Bisect λ
	// between ~0 (everyone at demand; infeasible here since demand >
	// total) and max wᵢ (everyone at 0).
	alloc := make([]float64, len(tenants))
	fill := func(lambda float64) float64 {
		sum := 0.0
		for i, t := range tenants {
			a := p.cfg.weight(t.Tenant)/lambda - 1
			if a < 0 {
				a = 0
			}
			if a > float64(t.Demand) {
				a = float64(t.Demand)
			}
			alloc[i] = a
			sum += a
		}
		return sum
	}
	lo, hi := 1e-12, 0.0
	for _, t := range tenants {
		if w := p.cfg.weight(t.Tenant); w > hi {
			hi = w
		}
	}
	if hi <= 0 {
		hi = 1
	}
	for iter := 0; iter < 64; iter++ {
		mid := (lo + hi) / 2
		if fill(mid) > float64(total) {
			lo = mid
		} else {
			hi = mid
		}
	}
	fill(hi) // final allocation at the feasible shadow price
	caps := roundCaps(total, tenants, alloc)
	return allocations(total, tenants, caps, "nash")
}

var (
	_ mr.CapacityPolicy = (*FairShare)(nil)
	_ mr.CapacityPolicy = (*CapacityQueue)(nil)
	_ mr.CapacityPolicy = (*GameTheoretic)(nil)
)
