package policy

import (
	"reflect"
	"testing"

	"smapreduce/internal/mr"
)

func snaps(demands map[string]int) []mr.TenantSnapshot {
	// Build snapshots in tenant-name order, matching the runtime.
	names := make([]string, 0, len(demands))
	for n := range demands {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for k := i; k > 0 && names[k] < names[k-1]; k-- {
			names[k], names[k-1] = names[k-1], names[k]
		}
	}
	out := make([]mr.TenantSnapshot, len(names))
	for i, n := range names {
		out[i] = mr.TenantSnapshot{Tenant: n, Demand: demands[n], Cap: -1}
	}
	return out
}

func capsOf(t *testing.T, allocs []mr.TenantAllocation) map[string]int {
	t.Helper()
	out := make(map[string]int, len(allocs))
	for _, a := range allocs {
		out[a.Tenant] = a.TaskCap
	}
	return out
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{Interval: -1},
		{Tenants: []Tenant{{Name: ""}}},
		{Tenants: []Tenant{{Name: "a"}, {Name: "a"}}},
		{Tenants: []Tenant{{Name: "a", Weight: -2}}},
		{Tenants: []Tenant{{Name: "a", Guarantee: 1.5}}},
		{Tenants: []Tenant{{Name: "a", Guarantee: -0.1}}},
		{Tenants: []Tenant{{Name: "a", Guarantee: 0.6}, {Name: "b", Guarantee: 0.6}}},
	}
	for i, o := range bad {
		if _, err := NewFairShare(o); err == nil {
			t.Errorf("case %d: NewFairShare accepted invalid options %+v", i, o)
		}
	}
	p, err := NewFairShare(Options{})
	if err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
	if p.Interval() != DefaultInterval {
		t.Errorf("default interval = %v, want %v", p.Interval(), DefaultInterval)
	}
	if p.Name() != "fair-share" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestSlackLiftsAllCaps(t *testing.T) {
	policies := []mr.CapacityPolicy{
		mustFairShare(t, Options{}),
		mustCapacityQueue(t, Options{}),
		mustGameTheoretic(t, Options{}),
	}
	tenants := snaps(map[string]int{"a": 3, "b": 4})
	for _, p := range policies {
		allocs := p.Allocate(0, 10, tenants) // demand 7 <= total 10
		for _, a := range allocs {
			if a.TaskCap >= 0 {
				t.Errorf("%s: tenant %s capped at %d under slack, want uncapped", p.Name(), a.Tenant, a.TaskCap)
			}
			if a.Reason != "slack" {
				t.Errorf("%s: reason = %q, want slack", p.Name(), a.Reason)
			}
		}
	}
}

func TestFairShareEqualWeights(t *testing.T) {
	p := mustFairShare(t, Options{})
	got := capsOf(t, p.Allocate(0, 10, snaps(map[string]int{"a": 20, "b": 20})))
	want := map[string]int{"a": 5, "b": 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("caps = %v, want %v", got, want)
	}
}

func TestFairShareWeights(t *testing.T) {
	p := mustFairShare(t, Options{Tenants: []Tenant{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}}})
	got := capsOf(t, p.Allocate(0, 12, snaps(map[string]int{"a": 20, "b": 20})))
	want := map[string]int{"a": 9, "b": 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("caps = %v, want %v", got, want)
	}
}

func TestFairShareRedistributesUnusedShare(t *testing.T) {
	// a only wants 2 of its fair 5; the surplus flows to b.
	p := mustFairShare(t, Options{})
	got := capsOf(t, p.Allocate(0, 10, snaps(map[string]int{"a": 2, "b": 20})))
	want := map[string]int{"a": 2, "b": 8}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("caps = %v, want %v", got, want)
	}
}

func TestFairShareAntiStarvation(t *testing.T) {
	// b's continuous share rounds to zero; it must still get one slot.
	p := mustFairShare(t, Options{Tenants: []Tenant{{Name: "a", Weight: 100}, {Name: "b", Weight: 1}}})
	got := capsOf(t, p.Allocate(0, 4, snaps(map[string]int{"a": 10, "b": 10})))
	if got["b"] < 1 {
		t.Errorf("caps = %v: tenant b starved", got)
	}
	if got["a"]+got["b"] != 4 {
		t.Errorf("caps = %v: sum != total", got)
	}
}

func TestFairShareSharesSumToOne(t *testing.T) {
	p := mustFairShare(t, Options{})
	allocs := p.Allocate(0, 7, snaps(map[string]int{"a": 9, "b": 9, "c": 9}))
	sum := 0.0
	for _, a := range allocs {
		if a.TaskCap < 0 {
			t.Fatalf("unexpected uncapped tenant %s", a.Tenant)
		}
		sum += a.Share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %v, want 1", sum)
	}
}

func TestCapacityQueueGuarantees(t *testing.T) {
	p := mustCapacityQueue(t, Options{Tenants: []Tenant{
		{Name: "a", Guarantee: 0.7},
		{Name: "b", Guarantee: 0.1},
	}})
	got := capsOf(t, p.Allocate(0, 10, snaps(map[string]int{"a": 20, "b": 20})))
	if got["a"] < 7 {
		t.Errorf("caps = %v: tenant a below its 70%% guarantee", got)
	}
	if got["b"] < 1 {
		t.Errorf("caps = %v: tenant b below its 10%% guarantee", got)
	}
	if got["a"]+got["b"] != 10 {
		t.Errorf("caps = %v: sum != total", got)
	}
}

func TestCapacityQueueElasticity(t *testing.T) {
	// a is guaranteed 80% but only wants 2; the idle guarantee is lent
	// to b rather than held back.
	p := mustCapacityQueue(t, Options{Tenants: []Tenant{
		{Name: "a", Guarantee: 0.8},
		{Name: "b", Guarantee: 0.2},
	}})
	got := capsOf(t, p.Allocate(0, 10, snaps(map[string]int{"a": 2, "b": 20})))
	want := map[string]int{"a": 2, "b": 8}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("caps = %v, want %v", got, want)
	}
}

func TestGameTheoreticEqualSplit(t *testing.T) {
	p := mustGameTheoretic(t, Options{})
	got := capsOf(t, p.Allocate(0, 10, snaps(map[string]int{"a": 20, "b": 20})))
	want := map[string]int{"a": 5, "b": 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("caps = %v, want %v", got, want)
	}
}

func TestGameTheoreticWeights(t *testing.T) {
	// KKT: aᵢ = wᵢ/λ − 1. With w = (3, 1) and total 10: 4/λ − 2 = 10,
	// so 1/λ = 3 and the equilibrium is a = (8, 2).
	p := mustGameTheoretic(t, Options{Tenants: []Tenant{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}}})
	got := capsOf(t, p.Allocate(0, 10, snaps(map[string]int{"a": 20, "b": 20})))
	want := map[string]int{"a": 8, "b": 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("caps = %v, want %v", got, want)
	}
}

func TestGameTheoreticDemandClamp(t *testing.T) {
	// a saturates at its demand of 3; the rest of the pool flows to b.
	p := mustGameTheoretic(t, Options{})
	got := capsOf(t, p.Allocate(0, 10, snaps(map[string]int{"a": 3, "b": 20})))
	want := map[string]int{"a": 3, "b": 7}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("caps = %v, want %v", got, want)
	}
}

func TestAllocateDeterministic(t *testing.T) {
	// Same inputs, two separate policy instances, repeated calls: the
	// allocation must be bit-identical every time, or fleet workers
	// sharing a policy would diverge.
	tenants := snaps(map[string]int{"a": 13, "b": 7, "c": 21, "d": 4})
	opts := Options{Tenants: []Tenant{{Name: "a", Weight: 2}, {Name: "c", Weight: 0.5}}}
	build := []func() mr.CapacityPolicy{
		func() mr.CapacityPolicy { return mustFairShare(t, opts) },
		func() mr.CapacityPolicy { return mustCapacityQueue(t, opts) },
		func() mr.CapacityPolicy { return mustGameTheoretic(t, opts) },
	}
	for _, mk := range build {
		p1, p2 := mk(), mk()
		ref := p1.Allocate(5, 9, tenants)
		for i := 0; i < 10; i++ {
			if got := p2.Allocate(5, 9, tenants); !reflect.DeepEqual(got, ref) {
				t.Fatalf("%s: call %d diverged:\n got %v\nwant %v", p1.Name(), i, got, ref)
			}
		}
	}
}

func TestCapsNeverExceedTotal(t *testing.T) {
	cases := []map[string]int{
		{"a": 100},
		{"a": 1, "b": 1, "c": 100},
		{"a": 50, "b": 50, "c": 50, "d": 50, "e": 50},
	}
	policies := []mr.CapacityPolicy{
		mustFairShare(t, Options{}),
		mustCapacityQueue(t, Options{Tenants: []Tenant{{Name: "a", Guarantee: 0.5}}}),
		mustGameTheoretic(t, Options{}),
	}
	for _, demands := range cases {
		for _, p := range policies {
			for _, total := range []int{1, 3, 16, 97} {
				allocs := p.Allocate(0, total, snaps(demands))
				sum := 0
				capped := false
				for _, a := range allocs {
					if a.TaskCap >= 0 {
						capped = true
						sum += a.TaskCap
					}
				}
				if capped && sum > total {
					t.Errorf("%s total=%d demands=%v: caps sum %d > total", p.Name(), total, demands, sum)
				}
			}
		}
	}
}

func mustFairShare(t *testing.T, o Options) *FairShare {
	t.Helper()
	p, err := NewFairShare(o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustCapacityQueue(t *testing.T, o Options) *CapacityQueue {
	t.Helper()
	p, err := NewCapacityQueue(o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustGameTheoretic(t *testing.T, o Options) *GameTheoretic {
	t.Helper()
	p, err := NewGameTheoretic(o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
