package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("Mean([1 2 3]) != 2")
	}
	if !almost(Sum([]float64{1.5, 2.5}), 4) {
		t.Fatal("Sum")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max not infinite")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-sample stddev != 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(got, 2) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile != 0")
	}
	if Percentile([]float64{9}, 75) != 9 {
		t.Fatal("single percentile")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile reordered its input")
	}
}

func TestEWMASeedAndDecay(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatal("fresh EWMA not zero")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first observation did not seed: %v", e.Value())
	}
	e.Observe(20)
	if !almost(e.Value(), 15) {
		t.Fatalf("EWMA = %v, want 15", e.Value())
	}
	e.Reset()
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewEWMA(%v) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatal("N mismatch")
	}
	if !almost(w.Mean(), Mean(xs)) {
		t.Fatalf("Welford mean %v != %v", w.Mean(), Mean(xs))
	}
	if !almost(w.StdDev(), StdDev(xs)) {
		t.Fatalf("Welford stddev %v != %v", w.StdDev(), StdDev(xs))
	}
	var one Welford
	one.Add(3)
	if one.Variance() != 0 {
		t.Fatal("single-sample variance != 0")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp")
	}
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 || ClampInt(2, 0, 3) != 2 {
		t.Fatal("ClampInt")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []int8, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := Percentile(xs, pa), Percentile(xs, pb)
		return va <= vb+1e-9 && va >= Min(xs)-1e-9 && vb <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Welford mean always equals the direct mean.
func TestQuickWelfordMean(t *testing.T) {
	f := func(raw []int16) bool {
		var w Welford
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			w.Add(xs[i])
		}
		return math.Abs(w.Mean()-Mean(xs)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1, 2.5, 5, 7.5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.N() != 9 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Bucket(0) != 2 { // 0, 1
		t.Fatalf("bucket0 = %d", h.Bucket(0))
	}
	if h.Bucket(1) != 1 || h.Bucket(2) != 1 || h.Bucket(3) != 1 || h.Bucket(4) != 1 {
		t.Fatalf("buckets = %v", []int{h.Bucket(1), h.Bucket(2), h.Bucket(3), h.Bucket(4)})
	}
	if h.under != 1 || h.over != 2 {
		t.Fatalf("under/over = %d/%d", h.under, h.over)
	}
	if h.Min() != -1 || h.Max() != 42 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 2 {
		t.Fatalf("median = %v", q)
	}
	if q := h.Quantile(0.95); math.Abs(q-95) > 2 {
		t.Fatalf("p95 = %v", q)
	}
	if h.Quantile(0) > 1 {
		t.Fatalf("q0 = %v", h.Quantile(0))
	}
	empty := NewHistogram(0, 1, 4)
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile != 0")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.Add(0.5)
	h.Add(0.6)
	h.Add(3.5)
	s := h.String()
	if !strings.Contains(s, "n=3") {
		t.Fatalf("render = %q", s)
	}
	if !strings.ContainsRune(s, '█') {
		t.Fatalf("no full block for the modal bucket: %q", s)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(1, 1, 4) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad histogram did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: bucket counts plus under/over always sum to N, and the
// quantile function is monotone.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(raw []int16) bool {
		h := NewHistogram(-100, 100, 20)
		for _, r := range raw {
			h.Add(float64(r) / 50)
		}
		total := h.under + h.over
		for i := 0; i < 20; i++ {
			total += h.Bucket(i)
		}
		if total != h.N() {
			return false
		}
		return h.Quantile(0.25) <= h.Quantile(0.75)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// ulps returns the distance between a and b in representable float64
// steps (0 = identical, 1 = adjacent).
func ulps(a, b float64) uint64 {
	if a == b {
		return 0
	}
	if math.IsNaN(a) || math.IsNaN(b) || math.Signbit(a) != math.Signbit(b) {
		return math.MaxUint64
	}
	ai, bi := math.Float64bits(a), math.Float64bits(b)
	if ai > bi {
		return ai - bi
	}
	return bi - ai
}

// TestWelfordMergeMatchesTwoPass pins Merge's accuracy: for split
// accumulators over benign data, the merged mean and std must land
// within 1 ulp of a naive two-pass reference over the concatenation.
func TestWelfordMergeMatchesTwoPass(t *testing.T) {
	datasets := map[string][]float64{
		"integers":      {1, 2, 3, 4, 5, 6, 7, 8},
		"makespans":     {81.8125, 86.59375, 73.25, 60.5, 92.5, 65.25},
		"constant":      {5, 5, 5, 5, 5},
		"single-each":   {3, 11},
		"mixed-magnit.": {0.125, 1024, 7.5, 0.0625, 96},
	}
	for name, xs := range datasets {
		// Two-pass reference: exact mean then centered second moment.
		mean := Mean(xs)
		m2 := 0.0
		for _, x := range xs {
			d := x - mean
			m2 += d * d
		}
		std := math.Sqrt(m2 / float64(len(xs)))

		for cut := 1; cut < len(xs); cut++ {
			var a, b Welford
			for _, x := range xs[:cut] {
				a.Add(x)
			}
			for _, x := range xs[cut:] {
				b.Add(x)
			}
			a.Merge(&b)
			if a.N() != len(xs) {
				t.Fatalf("%s cut %d: merged n = %d, want %d", name, cut, a.N(), len(xs))
			}
			if d := ulps(a.Mean(), mean); d > 1 {
				t.Errorf("%s cut %d: merged mean %v is %d ulps from two-pass %v", name, cut, a.Mean(), d, mean)
			}
			if d := ulps(a.StdDev(), std); d > 1 {
				t.Errorf("%s cut %d: merged std %v is %d ulps from two-pass %v", name, cut, a.StdDev(), d, std)
			}
		}
	}
}

// TestWelfordMergeEmptySides checks both identity cases: merging an
// empty accumulator in, and merging into an empty accumulator.
func TestWelfordMergeEmptySides(t *testing.T) {
	var a, empty Welford
	for _, x := range []float64{2, 4, 6} {
		a.Add(x)
	}
	before := a
	a.Merge(&empty)
	if a != before {
		t.Error("merging an empty accumulator changed the receiver")
	}
	var dst Welford
	dst.Merge(&a)
	if dst != a {
		t.Error("merging into an empty accumulator did not copy")
	}
}
