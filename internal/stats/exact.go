// Exact, mergeable accumulators for sharded runs.
//
// PR 3 made per-run reductions deterministic by fixing the summation
// order (mr's sumAscending sorts before adding, so float results do not
// depend on map iteration order). A sharded fleet needs something
// stronger: the partition of samples across workers is decided by a
// work-stealing scheduler, so no *ordering* discipline can make
// per-shard float sums recombine identically. ExactSum removes the
// dependence on order altogether by accumulating the mathematically
// exact sum and rounding exactly once on read — merge of shards equals
// single sequential accumulation bit-for-bit, for every partition.
package stats

import (
	"fmt"
	"math"
	"math/big"
)

// exactPrec is the mantissa precision of the exact accumulator. The
// sum of finite float64 values spans at most ~2098 bits (from the
// largest exponent down to the smallest subnormal); the extra headroom
// absorbs carry growth for up to ~2^100 additions, so every
// intermediate Add is exact (never rounded).
const exactPrec = 2200

// ExactSum accumulates float64 values with no rounding error: the
// running sum is held exactly, so the result of Sum is the true sum
// correctly rounded once, independent of addition order or of how the
// values were partitioned across merged shards. The zero value is an
// empty sum. Inputs must be finite; Add panics on NaN or ±Inf, which
// in this codebase always indicates an uninitialised sample reaching
// an accumulator. An ExactSum must not be copied after first use.
type ExactSum struct {
	acc *big.Float
	tmp *big.Float // scratch for Add, reused to avoid per-Add allocation
}

// Add folds x into the sum exactly.
func (e *ExactSum) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		panic(fmt.Sprintf("stats: ExactSum.Add(%v): non-finite sample", x))
	}
	if x == 0 {
		return
	}
	if e.acc == nil {
		e.acc = new(big.Float).SetPrec(exactPrec)
		e.tmp = new(big.Float)
	}
	e.acc.Add(e.acc, e.tmp.SetFloat64(x))
}

// Merge folds the other sum in exactly. Merging in any order, or
// merging shards that split the samples any way at all, yields the
// same exact total.
func (e *ExactSum) Merge(o *ExactSum) {
	if o.acc == nil {
		return
	}
	if e.acc == nil {
		e.acc = new(big.Float).SetPrec(exactPrec)
		e.tmp = new(big.Float)
	}
	e.acc.Add(e.acc, o.acc)
}

// Sum returns the accumulated total, rounded (to nearest even) exactly
// once from the exact value. An empty sum is 0.
func (e *ExactSum) Sum() float64 {
	if e.acc == nil {
		return 0
	}
	f, _ := e.acc.Float64()
	return f
}

// Reset empties the sum, retaining the allocated accumulator.
func (e *ExactSum) Reset() {
	if e.acc != nil {
		e.acc.SetInt64(0).SetPrec(exactPrec)
	}
}

// Acc is a mergeable count/sum/min/max accumulator built on ExactSum:
// the streaming reduction every fleet shard keeps, cheap enough to
// update per sample and exact under any merge order. The zero value is
// empty and ready to use; use by pointer, do not copy after first use.
type Acc struct {
	n        int
	sum      ExactSum
	min, max float64
}

// Add folds one sample in.
func (a *Acc) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	a.sum.Add(x)
}

// Merge folds the other accumulator in. Merge is commutative and
// associative with bit-exact results: merging shards in any grouping
// equals accumulating all samples sequentially into one Acc.
func (a *Acc) Merge(o *Acc) {
	if o.n == 0 {
		return
	}
	if a.n == 0 {
		a.min, a.max = o.min, o.max
	} else {
		if o.min < a.min {
			a.min = o.min
		}
		if o.max > a.max {
			a.max = o.max
		}
	}
	a.n += o.n
	a.sum.Merge(&o.sum)
}

// N returns the sample count.
func (a *Acc) N() int { return a.n }

// Sum returns the exact sample sum, correctly rounded.
func (a *Acc) Sum() float64 { return a.sum.Sum() }

// Mean returns the sample mean, or 0 when empty.
func (a *Acc) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum.Sum() / float64(a.n)
}

// Min returns the smallest sample, +Inf when empty (matching Min).
func (a *Acc) Min() float64 {
	if a.n == 0 {
		return math.Inf(1)
	}
	return a.min
}

// Max returns the largest sample, −Inf when empty (matching Max).
func (a *Acc) Max() float64 {
	if a.n == 0 {
		return math.Inf(-1)
	}
	return a.max
}

// Reset empties the accumulator, retaining allocations.
func (a *Acc) Reset() {
	a.n = 0
	a.min, a.max = 0, 0
	a.sum.Reset()
}
