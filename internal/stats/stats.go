// Package stats provides the small numeric helpers shared by the
// metrics recorders, the slot manager and the experiment harnesses.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It copies xs, so the input is
// not reordered. Empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// EWMA is an exponentially weighted moving average. The zero value has
// no observations; the first Observe seeds it directly.
type EWMA struct {
	alpha float64
	value float64
	n     int
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]. Higher
// alpha weighs recent observations more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Observe folds x into the average.
func (e *EWMA) Observe(x float64) {
	if e.n == 0 {
		e.value = x
	} else {
		e.value = e.alpha*x + (1-e.alpha)*e.value
	}
	e.n++
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() float64 { return e.value }

// Count returns the number of observations folded in.
func (e *EWMA) Count() int { return e.n }

// Reset discards all observations.
func (e *EWMA) Reset() { e.value, e.n = 0, 0 }

// Welford accumulates running mean/variance without storing samples.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge folds the other accumulator in using the parallel-variance
// combination of Chan, Golub & LeVeque. Unlike Acc and Histogram the
// result is not bit-identical to sequential accumulation (the running
// mean is inherently order-dependent in float arithmetic); it is the
// statistically exact combination up to rounding, which is why the
// fleet's byte-compared outputs are built on Acc/Histogram instead.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampInt bounds x to [lo, hi].
func ClampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
