package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram accumulates samples into fixed-width buckets over a range
// chosen at construction, with open-ended under/overflow buckets. It
// renders compactly for terminal reports (job latency distributions,
// task durations). Histograms of identical geometry merge exactly
// (bucket counts are integers and the sum is an ExactSum), so sharded
// accumulation recombines bit-identically to sequential accumulation.
// Samples must be finite; Add panics on NaN/±Inf via ExactSum.
type Histogram struct {
	lo, hi  float64
	buckets []int
	under   int
	over    int
	n       int
	sum     ExactSum
	min     float64
	max     float64
}

// NewHistogram builds a histogram of `buckets` equal cells over
// [lo, hi). It panics on a degenerate range or zero buckets: histogram
// geometry is static configuration.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if !(hi > lo) || buckets <= 0 {
		panic(fmt.Sprintf("stats: NewHistogram(%v, %v, %d) invalid", lo, hi, buckets))
	}
	return &Histogram{
		lo: lo, hi: hi,
		buckets: make([]int, buckets),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// Add folds one sample in.
func (h *Histogram) Add(x float64) {
	h.n++
	h.sum.Add(x)
	h.min = math.Min(h.min, x)
	h.max = math.Max(h.max, x)
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		idx := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if idx == len(h.buckets) { // x == hi-ε rounding guard
			idx--
		}
		h.buckets[idx]++
	}
}

// N returns the sample count.
func (h *Histogram) N() int { return h.n }

// Mean returns the sample mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum.Sum() / float64(h.n)
}

// Merge folds the other histogram in. Both must have identical
// geometry (range and bucket count); Merge panics otherwise, because
// resampling between geometries would silently blur the distribution.
// Merge is commutative and associative with bit-exact results.
func (h *Histogram) Merge(o *Histogram) {
	if o.lo != h.lo || o.hi != h.hi || len(o.buckets) != len(h.buckets) {
		panic(fmt.Sprintf("stats: Merge of mismatched histograms [%v,%v)x%d vs [%v,%v)x%d",
			h.lo, h.hi, len(h.buckets), o.lo, o.hi, len(o.buckets)))
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.under += o.under
	h.over += o.over
	h.n += o.n
	h.sum.Merge(&o.sum)
	h.min = math.Min(h.min, o.min)
	h.max = math.Max(h.max, o.max)
}

// Min returns the smallest sample (+Inf when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest sample (−Inf when empty).
func (h *Histogram) Max() float64 { return h.max }

// Bucket returns the count of cell i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the containing bucket. Out-of-range mass is clamped to the
// range edges. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	q = Clamp(q, 0, 1)
	target := q * float64(h.n)
	acc := float64(h.under)
	if target <= acc {
		return h.lo
	}
	width := (h.hi - h.lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		next := acc + float64(c)
		if target <= next && c > 0 {
			frac := (target - acc) / float64(c)
			return h.lo + (float64(i)+frac)*width
		}
		acc = next
	}
	return h.hi
}

// String renders a one-line block chart of the distribution.
func (h *Histogram) String() string {
	maxC := 0
	for _, c := range h.buckets {
		if c > maxC {
			maxC = c
		}
	}
	ramp := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, c := range h.buckets {
		idx := 0
		if maxC > 0 && c > 0 {
			idx = 1 + int(float64(c)/float64(maxC)*float64(len(ramp)-2))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
		}
		b.WriteRune(ramp[idx])
	}
	return fmt.Sprintf("[%s] n=%d mean=%.3g", b.String(), h.n, h.Mean())
}
