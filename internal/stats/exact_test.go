package stats

import (
	"math"
	"testing"
)

// adversarial returns a sample stream engineered so naive float64
// summation depends on order: huge/tiny magnitude swings with
// cancellation, plus a seeded pseudo-random tail. Any accumulator that
// rounds per-add will disagree with itself across partitions on this
// input; ExactSum must not.
func adversarial(n int) []float64 {
	xs := make([]float64, 0, n)
	base := []float64{1e16, 1.0, -1e16, 0.1, 3.14159e8, -2.5e-13, 1e300 / 1e280, -7.25}
	state := uint64(0x9e3779b97f4a7c15)
	for len(xs) < n {
		for _, b := range base {
			// splitmix-style perturbation, deterministic.
			state += 0x9e3779b97f4a7c15
			z := state
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			u := float64(z^(z>>31)) / (1 << 64)
			xs = append(xs, b*(0.5+u))
		}
	}
	return xs[:n]
}

func bitsEqual(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: got %v (%#x), want %v (%#x)", name, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

func TestExactSumOrderIndependent(t *testing.T) {
	xs := adversarial(1000)
	var fwd, rev ExactSum
	for _, x := range xs {
		fwd.Add(x)
	}
	for i := len(xs) - 1; i >= 0; i-- {
		rev.Add(xs[i])
	}
	bitsEqual(t, "forward vs reverse", fwd.Sum(), rev.Sum())

	// And the naive float64 sum *does* differ on this stream, or the
	// test would prove nothing.
	f, r := 0.0, 0.0
	for _, x := range xs {
		f += x
	}
	for i := len(xs) - 1; i >= 0; i-- {
		r += xs[i]
	}
	if math.Float64bits(f) == math.Float64bits(r) {
		t.Fatalf("adversarial stream is not adversarial: naive sums agree (%v)", f)
	}
}

func TestExactSumMergeEqualsSequential(t *testing.T) {
	xs := adversarial(999)
	var seq ExactSum
	for _, x := range xs {
		seq.Add(x)
	}
	// Every contiguous 3-way partition must recombine bit-identically,
	// in both merge orders (commutativity) and groupings
	// (associativity).
	for _, cut := range [][2]int{{1, 2}, {100, 500}, {333, 666}, {0, 999}, {999, 999}} {
		a, b, c := xs[:cut[0]], xs[cut[0]:cut[1]], xs[cut[1]:]
		sum := func(part []float64) *ExactSum {
			var e ExactSum
			for _, x := range part {
				e.Add(x)
			}
			return &e
		}
		// ((a+b)+c)
		m1 := sum(a)
		m1.Merge(sum(b))
		m1.Merge(sum(c))
		// (a+(b+c))
		m2 := sum(b)
		m2.Merge(sum(c))
		m3 := sum(a)
		m3.Merge(m2)
		// (c+b)+a — commuted
		m4 := sum(c)
		m4.Merge(sum(b))
		m4.Merge(sum(a))
		bitsEqual(t, "left-assoc merge vs sequential", m1.Sum(), seq.Sum())
		bitsEqual(t, "right-assoc merge vs sequential", m3.Sum(), seq.Sum())
		bitsEqual(t, "commuted merge vs sequential", m4.Sum(), seq.Sum())
	}
}

func TestExactSumZeroAndEmpty(t *testing.T) {
	var e ExactSum
	if e.Sum() != 0 {
		t.Fatalf("empty sum = %v", e.Sum())
	}
	var o ExactSum
	e.Merge(&o) // merging two empties stays empty
	if e.Sum() != 0 {
		t.Fatalf("merged empty sum = %v", e.Sum())
	}
	e.Add(0)
	if e.Sum() != 0 {
		t.Fatalf("sum of zero = %v", e.Sum())
	}
	e.Add(2.5)
	e.Reset()
	if e.Sum() != 0 {
		t.Fatalf("after Reset sum = %v", e.Sum())
	}
	e.Add(1.25)
	bitsEqual(t, "reuse after Reset", e.Sum(), 1.25)
}

func TestExactSumPanicsOnNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Add(%v) did not panic", bad)
				}
			}()
			var e ExactSum
			e.Add(bad)
		}()
	}
}

func TestAccMergeEqualsSequential(t *testing.T) {
	xs := adversarial(500)
	var seq Acc
	for _, x := range xs {
		seq.Add(x)
	}
	shards := make([]*Acc, 7)
	for i := range shards {
		shards[i] = &Acc{}
	}
	for i, x := range xs {
		shards[i%7].Add(x)
	}
	// Merge in a scrambled order to exercise commutativity.
	var m Acc
	for _, i := range []int{4, 0, 6, 2, 5, 1, 3} {
		m.Merge(shards[i])
	}
	if m.N() != seq.N() {
		t.Fatalf("N = %d, want %d", m.N(), seq.N())
	}
	bitsEqual(t, "Sum", m.Sum(), seq.Sum())
	bitsEqual(t, "Mean", m.Mean(), seq.Mean())
	bitsEqual(t, "Min", m.Min(), seq.Min())
	bitsEqual(t, "Max", m.Max(), seq.Max())
}

func TestAccEmptyAndReset(t *testing.T) {
	var a Acc
	if a.N() != 0 || a.Sum() != 0 || a.Mean() != 0 {
		t.Fatalf("zero Acc not empty: %d %v %v", a.N(), a.Sum(), a.Mean())
	}
	if !math.IsInf(a.Min(), 1) || !math.IsInf(a.Max(), -1) {
		t.Fatalf("empty Min/Max = %v/%v, want +Inf/-Inf", a.Min(), a.Max())
	}
	var b Acc
	a.Merge(&b) // empty into empty
	if a.N() != 0 {
		t.Fatal("merge of empties not empty")
	}
	b.Add(3)
	a.Merge(&b) // non-empty into empty adopts min/max
	if a.N() != 1 || a.Min() != 3 || a.Max() != 3 {
		t.Fatalf("merge into empty: n=%d min=%v max=%v", a.N(), a.Min(), a.Max())
	}
	var c Acc
	a.Merge(&c) // empty into non-empty is a no-op
	if a.N() != 1 {
		t.Fatal("merge of empty changed n")
	}
	a.Reset()
	if a.N() != 0 || a.Sum() != 0 {
		t.Fatalf("after Reset: n=%d sum=%v", a.N(), a.Sum())
	}
}

func TestHistogramMergeEqualsSequential(t *testing.T) {
	xs := adversarial(800)
	// Scale samples into a modest range plus deliberate under/overflow.
	for i := range xs {
		xs[i] = math.Mod(math.Abs(xs[i]), 150) - 10 // spills below 0 and above 100
	}
	seq := NewHistogram(0, 100, 20)
	for _, x := range xs {
		seq.Add(x)
	}
	parts := []*Histogram{NewHistogram(0, 100, 20), NewHistogram(0, 100, 20), NewHistogram(0, 100, 20)}
	for i, x := range xs {
		parts[i%3].Add(x)
	}
	m := NewHistogram(0, 100, 20)
	for _, i := range []int{2, 0, 1} {
		m.Merge(parts[i])
	}
	if m.N() != seq.N() {
		t.Fatalf("N = %d, want %d", m.N(), seq.N())
	}
	for i := 0; i < 20; i++ {
		if m.Bucket(i) != seq.Bucket(i) {
			t.Fatalf("bucket %d = %d, want %d", i, m.Bucket(i), seq.Bucket(i))
		}
	}
	bitsEqual(t, "Mean", m.Mean(), seq.Mean())
	bitsEqual(t, "Min", m.Min(), seq.Min())
	bitsEqual(t, "Max", m.Max(), seq.Max())
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		bitsEqual(t, "Quantile", m.Quantile(q), seq.Quantile(q))
	}
	if m.String() != seq.String() {
		t.Fatalf("String mismatch:\n%s\n%s", m.String(), seq.String())
	}
}

func TestHistogramMergeGeometryMismatchPanics(t *testing.T) {
	cases := []*Histogram{
		NewHistogram(0, 99, 20),  // different hi
		NewHistogram(1, 100, 20), // different lo
		NewHistogram(0, 100, 21), // different buckets
	}
	for i, o := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: mismatched Merge did not panic", i)
				}
			}()
			NewHistogram(0, 100, 20).Merge(o)
		}()
	}
}

func TestWelfordMerge(t *testing.T) {
	xs := adversarial(600)
	var seq Welford
	for _, x := range xs {
		seq.Add(x)
	}
	var a, b Welford
	for i, x := range xs {
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != seq.N() {
		t.Fatalf("N = %d, want %d", a.N(), seq.N())
	}
	// Chan et al. is exact in real arithmetic but not bit-exact in
	// floats; compare with a tight relative tolerance.
	relClose := func(name string, got, want float64) {
		t.Helper()
		scale := math.Max(math.Abs(want), 1)
		if math.Abs(got-want) > 1e-9*scale {
			t.Fatalf("%s: got %v, want %v", name, got, want)
		}
	}
	relClose("Mean", a.Mean(), seq.Mean())
	relClose("Variance", a.Variance(), seq.Variance())

	// Empty-merge edge cases.
	var e1, e2 Welford
	e1.Merge(&e2)
	if e1.N() != 0 {
		t.Fatal("merge of empties not empty")
	}
	e1.Merge(&seq)
	if e1.N() != seq.N() || e1.Mean() != seq.Mean() {
		t.Fatal("merge into empty did not adopt state")
	}
	before := e1.N()
	e1.Merge(&e2)
	if e1.N() != before {
		t.Fatal("merge of empty changed state")
	}
}

func TestHistogramMergeEmptyIsIdentity(t *testing.T) {
	// Empty-side merges must be exact identities in both directions:
	// fleet shards that saw no samples recombine with busy shards, and
	// the result must be byte-identical to the busy shard alone.
	mk := func() *Histogram { return NewHistogram(0, 100, 10) }
	same := func(name string, a, b *Histogram) {
		t.Helper()
		if a.N() != b.N() {
			t.Fatalf("%s: N = %d, want %d", name, a.N(), b.N())
		}
		for i := 0; i < 10; i++ {
			if a.Bucket(i) != b.Bucket(i) {
				t.Fatalf("%s: bucket %d = %d, want %d", name, i, a.Bucket(i), b.Bucket(i))
			}
		}
		bitsEqual(t, name+" Mean", a.Mean(), b.Mean())
		bitsEqual(t, name+" Min", a.Min(), b.Min())
		bitsEqual(t, name+" Max", a.Max(), b.Max())
		bitsEqual(t, name+" p50", a.Quantile(0.5), b.Quantile(0.5))
		if a.String() != b.String() {
			t.Fatalf("%s: String mismatch:\n%s\n%s", name, a, b)
		}
	}

	// Empty into empty stays empty.
	e := mk()
	e.Merge(mk())
	same("empty+empty", e, mk())
	if e.Min() != math.Inf(1) || e.Max() != math.Inf(-1) {
		t.Fatalf("empty merge perturbed min/max: %v/%v", e.Min(), e.Max())
	}

	// Busy shard unchanged by an empty right side (with under/overflow
	// mass, which Merge also carries).
	busy, want := mk(), mk()
	for _, x := range []float64{-5, 3, 42, 42, 99.5, 130} {
		busy.Add(x)
		want.Add(x)
	}
	busy.Merge(mk())
	same("busy+empty", busy, want)

	// Empty left side adopts the busy shard exactly.
	adopt := mk()
	adopt.Merge(want)
	same("empty+busy", adopt, want)
}
