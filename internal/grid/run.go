package grid

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"smapreduce/internal/arrival"
	"smapreduce/internal/chaos"
	"smapreduce/internal/core"
	"smapreduce/internal/experiments"
	"smapreduce/internal/mr"
	"smapreduce/internal/par"
	"smapreduce/internal/policy"
)

// Artifact names inside a run directory.
const (
	// SpecFile is the canonicalised spec the run executes; resume and
	// validate read it back.
	SpecFile = "spec.json"
	// JournalFile is the per-cell completion journal: one JSON line per
	// finished cell, appended and synced as cells complete. Line order
	// reflects completion order (worker-dependent); line content is a
	// pure function of the cell.
	JournalFile = "journal.jsonl"
	// GridJSON, GridCSV and AnalysisTables are the final artifacts,
	// written only when every cell has completed.
	GridJSON       = "grid.json"
	GridCSV        = "grid.csv"
	AnalysisTables = "analysis/tables.md"
	// RunLog receives human-oriented progress lines (wall-clock
	// timestamps included, so it is excluded from byte-compare
	// guarantees).
	RunLog = "logs/run.log"
)

// ErrInterrupted reports a sweep stopped by RunOptions.Stopping (or
// StopAfter) before every cell completed. The journal holds every cell
// that finished; Run on the same directory resumes the rest.
var ErrInterrupted = errors.New("grid: sweep interrupted; journaled cells are preserved, resume to continue")

// CellRecord is one completed cell as journaled: its identity plus
// every repeat's metrics. The JSON encoding of a CellRecord is the
// "per-seed result bytes" the determinism suite byte-compares across
// worker counts and scheduler backends.
type CellRecord struct {
	Key      string    `json:"key"`
	Engine   string    `json:"engine"`
	Workload string    `json:"workload"`
	Scale    string    `json:"scale"`
	Seed     uint64    `json:"seed"`
	Repeats  []Metrics `json:"repeats"`
}

// RunOptions configures a sweep over one spec into one directory.
type RunOptions struct {
	// Spec is the validated grid spec.
	Spec *Spec
	// Dir is the run directory. It must exist; Run creates the journal
	// and artifact files inside it.
	Dir string
	// Workers is the cell-level parallelism; non-positive means
	// par.Workers() (GOMAXPROCS, overridable via SMR_WORKERS).
	Workers int
	// Stopping, when non-nil, is polled between cells; once it reports
	// true no new cell starts, in-flight cells finish and are
	// journaled, and Run returns ErrInterrupted. The SIGINT hook.
	Stopping func() bool
	// StopAfter, when positive, interrupts the sweep after this many
	// newly journaled cells — the deterministic interruption the resume
	// tests drive.
	StopAfter int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// Result is a completed sweep.
type Result struct {
	// Cells is the expanded cell list in canonical order.
	Cells []Cell
	// Records holds one record per cell, index-aligned with Cells.
	Records []CellRecord
	// Resumed counts cells skipped because the journal already held
	// them; Ran counts cells executed by this call.
	Resumed, Ran int
}

// Run executes the spec's cells in parallel, journaling each completed
// cell, and writes the final artifacts (grid.json, grid.csv, analysis
// tables) once all cells are done. If the directory already holds a
// journal for this spec, journaled cells are skipped — an interrupted
// sweep resumes with no recomputation — and because every repeat's
// seed is a pure function of (cell key, repeat), the final artifacts
// are byte-identical to an uninterrupted sweep's at any worker count.
func Run(opts RunOptions) (*Result, error) {
	spec := opts.Spec
	cells := Expand(spec)
	res := &Result{Cells: cells, Records: make([]CellRecord, len(cells))}

	byKey := make(map[string]int, len(cells))
	for i, c := range cells {
		byKey[c.Key] = i
	}
	done := make([]atomic.Bool, len(cells))
	journalPath := filepath.Join(opts.Dir, JournalFile)
	prior, err := loadJournal(journalPath, spec, cells, byKey)
	if err != nil {
		return nil, err
	}
	for key, rec := range prior {
		i := byKey[key]
		res.Records[i] = rec
		done[i].Store(true)
		res.Resumed++
	}

	pending := make([]int, 0, len(cells)-res.Resumed)
	for i := range cells {
		if !done[i].Load() {
			pending = append(pending, i)
		}
	}

	jf, err := os.OpenFile(journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("grid: opening journal: %w", err)
	}
	defer jf.Close()

	workers := opts.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	if workers > len(pending) && len(pending) > 0 {
		workers = len(pending)
	}
	subs := make([]*mr.SimState, workers)
	for w := range subs {
		subs[w] = mr.NewSimState()
	}

	var (
		mu        sync.Mutex // journal file + log writer + ran counter
		ran       int
		stopped   atomic.Bool
		startWall = time.Now()
	)
	stop := func() bool {
		if stopped.Load() {
			return true
		}
		if opts.Stopping != nil && opts.Stopping() {
			stopped.Store(true)
			return true
		}
		return false
	}
	err = par.ForNUntil(len(pending), workers, stop, func(worker, pi int) error {
		cell := cells[pending[pi]]
		cellStart := time.Now()
		rec, err := runCell(cell, spec, subs[worker])
		if err != nil {
			return err
		}
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("grid: encoding journal record %s: %w", cell.Key, err)
		}
		mu.Lock()
		defer mu.Unlock()
		if _, err := jf.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("grid: appending journal: %w", err)
		}
		// Sync per cell: a crash mid-sweep must not lose completed
		// cells, or resume would silently recompute (correct but slow)
		// — or worse, read a torn final line. Torn lines are detected
		// and rejected by loadJournal.
		if err := jf.Sync(); err != nil {
			return fmt.Errorf("grid: syncing journal: %w", err)
		}
		res.Records[cell.Index] = rec
		done[cell.Index].Store(true)
		ran++
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "[%7.3fs] cell %d/%d %s done in %s (%d repeats)\n",
				time.Since(startWall).Seconds(), res.Resumed+ran, len(cells), cell.Key,
				time.Since(cellStart).Round(time.Millisecond), len(rec.Repeats))
		}
		if opts.StopAfter > 0 && ran >= opts.StopAfter {
			stopped.Store(true)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Ran = ran
	for i := range done {
		if !done[i].Load() {
			return res, fmt.Errorf("%w (%d/%d cells journaled in %s)",
				ErrInterrupted, res.Resumed+ran, len(cells), opts.Dir)
		}
	}
	if err := writeArtifacts(opts.Dir, spec, res); err != nil {
		return nil, err
	}
	if opts.Log != nil {
		fmt.Fprintf(opts.Log, "[%7.3fs] sweep complete: %d cells (%d resumed, %d ran), artifacts in %s\n",
			time.Since(startWall).Seconds(), len(cells), res.Resumed, res.Ran, opts.Dir)
	}
	return res, nil
}

// loadJournal reads a journal back into per-cell records, validating
// every line against the spec: unknown cell keys, duplicate cells and
// wrong repeat counts mean the journal belongs to a different spec and
// resuming over it would corrupt the sweep. A torn final line (crash
// mid-append) is rejected with instructions rather than silently
// dropped: truncation is the user's call.
func loadJournal(path string, spec *Spec, cells []Cell, byKey map[string]int) (map[string]CellRecord, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("grid: opening journal: %w", err)
	}
	defer f.Close()
	recs := make(map[string]CellRecord)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		var rec CellRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("grid: journal %s:%d: %v (torn or foreign line; delete the journal to restart the sweep)", path, line, err)
		}
		i, ok := byKey[rec.Key]
		if !ok {
			return nil, fmt.Errorf("grid: journal %s:%d: cell %q is not in this spec's grid", path, line, rec.Key)
		}
		if _, dup := recs[rec.Key]; dup {
			return nil, fmt.Errorf("grid: journal %s:%d: cell %q journaled twice", path, line, rec.Key)
		}
		if len(rec.Repeats) != spec.Repeats {
			return nil, fmt.Errorf("grid: journal %s:%d: cell %q has %d repeats, spec wants %d", path, line, rec.Key, len(rec.Repeats), spec.Repeats)
		}
		if want := cellRecordHeader(&cells[i]); rec.Engine != want.Engine || rec.Workload != want.Workload || rec.Scale != want.Scale || rec.Seed != want.Seed {
			return nil, fmt.Errorf("grid: journal %s:%d: cell %q axes disagree with its key", path, line, rec.Key)
		}
		recs[rec.Key] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("grid: reading journal: %w", err)
	}
	return recs, nil
}

// cellRecordHeader builds the identity part of a cell's record.
func cellRecordHeader(cell *Cell) CellRecord {
	return CellRecord{
		Key:      cell.Key,
		Engine:   cell.Engine.String(),
		Workload: cell.Workload.Name,
		Scale:    cell.Scale.Name,
		Seed:     cell.Seed,
	}
}

// runCell executes every repeat of one cell on the worker's recycled
// substrate and returns the completed record.
func runCell(cell Cell, spec *Spec, st *mr.SimState) (CellRecord, error) {
	rec := cellRecordHeader(&cell)
	rec.Repeats = make([]Metrics, spec.Repeats)
	for rep := 0; rep < spec.Repeats; rep++ {
		m, err := runRepeat(cell, rep, st)
		if err != nil {
			return CellRecord{}, fmt.Errorf("grid: cell %s repeat %d: %w", cell.Key, rep, err)
		}
		rec.Repeats[rep] = m
	}
	return rec, nil
}

// runRepeat executes one repeat: a fresh cluster at the cell's scale,
// seeded purely from (cell key, repeat), running the cell's workload
// under the cell's engine (and chaos schedule, if any).
func runRepeat(cell Cell, rep int, st *mr.SimState) (Metrics, error) {
	seed := RepeatSeed(cell.Key, rep)
	ecfg := experiments.Config{
		Scale:   cell.Scale.InputScale,
		Workers: cell.Scale.Workers,
		Seed:    seed,
	}
	opts := core.Options{
		Cluster: ecfg.ClusterConfig(),
		Sim:     st,
		Tenants: policyTenants(cell.Workload.Tenants),
	}
	if cell.Workload.Chaos != "" {
		sched, err := chaos.ParseSchedule(cell.Workload.Chaos)
		if err != nil {
			return Metrics{}, err // unreachable for validated specs
		}
		opts.Prepare = func(c *mr.Cluster) error { return sched.Apply(c) }
	}
	var specs []mr.JobSpec
	if cell.Workload.Arrivals != nil {
		src, err := arrival.New(scaleArrivals(*cell.Workload.Arrivals, cell.Scale.InputScale), arrival.RNG(seed))
		if err != nil {
			return Metrics{}, err
		}
		opts.Arrivals = src
	} else {
		var err error
		if specs, err = buildJobs(ecfg, cell.Workload.Jobs); err != nil {
			return Metrics{}, err
		}
	}
	res, err := core.Run(cell.Engine, opts, specs...)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{
		Jobs:      len(res.Jobs),
		MakespanS: res.LastFinish(),
		MeanExecS: res.MeanExecutionTime(),
		P50S:      res.LatencyPercentile(50),
		P99S:      res.LatencyPercentile(99),
		SLOMisses: res.SLOMisses(),
		Decisions: len(res.Decisions),
	}
	for _, j := range res.Jobs {
		if j.Finished() {
			m.Completed++
		}
	}
	return m, nil
}

// buildJobs materialises a closed workload's specs through the
// experiments cell adapter (shared input-size arithmetic with the
// figure harnesses). Job names get an index suffix so multi-job
// workloads stay distinguishable in event logs.
func buildJobs(ecfg experiments.Config, jobs []Job) ([]mr.JobSpec, error) {
	specs := make([]mr.JobSpec, len(jobs))
	for i, j := range jobs {
		s, err := ecfg.CellSpec(j.Benchmark, j.InputGB, j.Reduces)
		if err != nil {
			return nil, err
		}
		s.Name = fmt.Sprintf("%s-%d", j.Benchmark, i+1)
		s.SubmitAt = j.SubmitAt
		s.Tenant = j.Tenant
		s.SLOSeconds = j.SLOSeconds
		specs[i] = s
	}
	return specs, nil
}

// scaleArrivals applies the scale axis to an open workload: input
// sizes stretch with InputScale, rates and horizons stay put — the
// same semantics as the closed workloads' input_gb scaling.
func scaleArrivals(cfg arrival.Config, inputScale float64) arrival.Config {
	tenants := make([]arrival.Tenant, len(cfg.Tenants))
	copy(tenants, cfg.Tenants)
	for i := range tenants {
		tenants[i].InputMBMin *= inputScale
		tenants[i].InputMBMax *= inputScale
	}
	cfg.Tenants = tenants
	return cfg
}

// policyTenants converts spec tenants to the capacity-policy form.
func policyTenants(ts []Tenant) []policy.Tenant {
	if len(ts) == 0 {
		return nil
	}
	out := make([]policy.Tenant, len(ts))
	for i, t := range ts {
		out[i] = policy.Tenant{Name: t.Name, Weight: t.Weight, Guarantee: t.Guarantee}
	}
	return out
}
