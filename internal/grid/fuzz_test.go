package grid

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseGridSpec fuzzes the spec parser. Accepted specs must
// canonicalise to a fixed point (ParseSpec(Canonical()) reproduces
// Canonical() byte-for-byte), expand to duplicate-free cell keys, and
// derive stable repeat seeds; everything else must be rejected with an
// error, never a panic. The checked-in corpus under
// testdata/fuzz/FuzzParseGridSpec seeds both sides.
func FuzzParseGridSpec(f *testing.F) {
	f.Add(minimalSpec)
	f.Add(tinySpec)
	f.Add(`{}`)
	f.Add(`{"name": "x", "repeats": 1, "seeds": [0], "engines": ["yarn"], "scales": [{"name": "s", "workers": 1, "input_scale": 1e-3}], "workloads": [{"name": "w", "jobs": [{"benchmark": "grep", "input_gb": 0.5, "reduces": 1}]}]}`)
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec([]byte(text))
		if err != nil {
			return
		}
		c1 := s.Canonical()
		s2, err := ParseSpec(c1)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ninput: %q\ncanonical: %s", err, text, c1)
		}
		if c2 := s2.Canonical(); !bytes.Equal(c1, c2) {
			t.Fatalf("canonicalisation is not a fixed point for %q:\n%s\nvs\n%s", text, c1, c2)
		}
		cells := Expand(s)
		keys := make(map[string]bool, len(cells))
		for _, c := range cells {
			if strings.Count(c.Key, "/") != 3 {
				t.Fatalf("cell key %q does not split into 4 parts", c.Key)
			}
			if keys[c.Key] {
				t.Fatalf("duplicate cell key %q from a validated spec", c.Key)
			}
			keys[c.Key] = true
			if RepeatSeed(c.Key, 0) != RepeatSeed(c.Key, 0) {
				t.Fatalf("RepeatSeed unstable for %q", c.Key)
			}
		}
	})
}
