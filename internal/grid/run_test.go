package grid

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// tinySpec is a fast four-cell grid for run-loop tests.
const tinySpec = `{
  "name": "tiny",
  "repeats": 2,
  "seeds": [1, 2],
  "engines": ["hadoop", "smr"],
  "scales": [{"name": "w4", "workers": 4, "input_scale": 0.25}],
  "workloads": [{"name": "one-grep", "jobs": [{"benchmark": "grep", "input_gb": 1, "reduces": 2}]}]
}`

// runTiny sweeps tinySpec into a fresh temp dir and returns both.
func runTiny(t *testing.T, opts RunOptions) (*Result, string) {
	t.Helper()
	if opts.Spec == nil {
		opts.Spec = mustSpec(t, tinySpec)
	}
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res, opts.Dir
}

func readArtifact(t *testing.T, dir, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatalf("reading %s: %v", name, err)
	}
	return data
}

func TestRunProducesValidArtifacts(t *testing.T) {
	spec := mustSpec(t, tinySpec)
	res, dir := runTiny(t, RunOptions{Spec: spec})
	if res.Resumed != 0 || res.Ran != 4 {
		t.Errorf("fresh sweep: resumed %d, ran %d; want 0, 4", res.Resumed, res.Ran)
	}
	for i, rec := range res.Records {
		if rec.Key != res.Cells[i].Key {
			t.Errorf("record %d keyed %q, cell is %q", i, rec.Key, res.Cells[i].Key)
		}
		if len(rec.Repeats) != spec.Repeats {
			t.Errorf("cell %s: %d repeats, want %d", rec.Key, len(rec.Repeats), spec.Repeats)
		}
		for rep, m := range rec.Repeats {
			if m.Jobs != 1 || m.Completed != 1 || m.MakespanS <= 0 {
				t.Errorf("cell %s repeat %d: implausible metrics %+v", rec.Key, rep, m)
			}
		}
	}
	if err := ValidateCSV(spec, readArtifact(t, dir, GridCSV)); err != nil {
		t.Errorf("fresh sweep CSV invalid: %v", err)
	}
	for _, name := range []string{GridJSON, AnalysisTables, JournalFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}
}

// TestRunIdempotent reruns a finished directory: everything resumes
// from the journal and the artifacts are rewritten byte-identically.
func TestRunIdempotent(t *testing.T) {
	spec := mustSpec(t, tinySpec)
	_, dir := runTiny(t, RunOptions{Spec: spec})
	before := readArtifact(t, dir, GridCSV)
	res, _ := runTiny(t, RunOptions{Spec: spec, Dir: dir})
	if res.Resumed != 4 || res.Ran != 0 {
		t.Errorf("rerun: resumed %d, ran %d; want 4, 0", res.Resumed, res.Ran)
	}
	if after := readArtifact(t, dir, GridCSV); string(before) != string(after) {
		t.Error("rerun changed grid.csv")
	}
}

// TestRunRejectsForeignJournal covers the journal validation paths: a
// journal from a different grid, a duplicated line, a wrong repeat
// count and a torn final line must all refuse to resume.
func TestRunRejectsForeignJournal(t *testing.T) {
	spec := mustSpec(t, tinySpec)
	_, dir := runTiny(t, RunOptions{Spec: spec})
	journal := readArtifact(t, dir, JournalFile)

	// Seeds [3, 4] shares no cells with [1, 2]; repeats 3 disagrees
	// with the journaled records' 2.
	otherSeeds := mustSpec(t, tinySpec)
	otherSeeds.Seeds = []uint64{3, 4}
	otherRepeats := mustSpec(t, tinySpec)
	otherRepeats.Repeats = 3

	cases := map[string]struct {
		spec    *Spec
		journal []byte
	}{
		"unknown cell":   {otherSeeds, journal},
		"repeat count":   {otherRepeats, journal},
		"duplicate cell": {spec, append(append([]byte{}, journal...), journal...)},
		"torn line":      {spec, journal[:len(journal)-3]},
	}

	for name, tc := range cases {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, JournalFile), tc.journal, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(RunOptions{Spec: tc.spec, Dir: dir}); err == nil {
			t.Errorf("%s: resume over a bad journal succeeded", name)
		}
	}
}

// TestRunStopAfter pins the deterministic-interruption contract:
// exactly StopAfter new cells journal (plus any already in flight),
// Run reports ErrInterrupted, and the final artifacts are not written.
func TestRunStopAfter(t *testing.T) {
	spec := mustSpec(t, tinySpec)
	dir := t.TempDir()
	res, err := Run(RunOptions{Spec: spec, Dir: dir, Workers: 1, StopAfter: 2})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if res.Ran != 2 {
		t.Errorf("ran %d cells before stopping, want 2 (single worker)", res.Ran)
	}
	if _, statErr := os.Stat(filepath.Join(dir, GridCSV)); !errors.Is(statErr, os.ErrNotExist) {
		t.Errorf("interrupted sweep wrote %s", GridCSV)
	}
}

// TestRunStopping covers the cooperative-stop hook (the SIGINT path):
// a predicate that trips immediately lets no cell start.
func TestRunStopping(t *testing.T) {
	spec := mustSpec(t, tinySpec)
	res, err := Run(RunOptions{Spec: spec, Dir: t.TempDir(), Stopping: func() bool { return true }})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if res.Ran != 0 {
		t.Errorf("ran %d cells under an immediate stop, want 0", res.Ran)
	}
}
