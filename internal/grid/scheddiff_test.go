package grid

import (
	"encoding/json"
	"runtime"
	"testing"
)

// This file is the grid determinism matrix: for every smoke-grid cell,
// the per-seed result bytes (the JSON-encoded CellRecord — exactly
// what the journal stores) must be identical across worker counts
// (1 vs GOMAXPROCS) and across scheduler backends (heap-only
// SMR_HEAP_SCHED=1 vs the timing wheel), extending the per-layer
// differential pins to grid execution.

// recordBytes sweeps the smoke grid and returns cellKey → journal-line
// bytes for every cell.
func recordBytes(t *testing.T, workers int) map[string]string {
	t.Helper()
	spec := mustSpec(t, readSmokeSpec(t))
	res, err := Run(RunOptions{Spec: spec, Dir: t.TempDir(), Workers: workers})
	if err != nil {
		t.Fatalf("sweep with %d workers: %v", workers, err)
	}
	out := make(map[string]string, len(res.Records))
	for _, rec := range res.Records {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		out[rec.Key] = string(line)
	}
	return out
}

func diffRecords(t *testing.T, label string, base, other map[string]string) {
	t.Helper()
	if len(base) != len(other) {
		t.Fatalf("%s: %d cells vs %d", label, len(other), len(base))
	}
	for key, want := range base {
		if got := other[key]; got != want {
			t.Errorf("%s: cell %s diverged:\n got %s\nwant %s", label, key, got, want)
		}
	}
}

func TestGridDeterminismAcrossWorkerCounts(t *testing.T) {
	serial := recordBytes(t, 1)
	parallel := recordBytes(t, runtime.GOMAXPROCS(0))
	diffRecords(t, "workers 1 vs GOMAXPROCS", serial, parallel)
}

func TestGridDeterminismAcrossSchedulers(t *testing.T) {
	wheel := recordBytes(t, 2)
	t.Setenv("SMR_HEAP_SCHED", "1")
	heap := recordBytes(t, 2)
	diffRecords(t, "wheel vs heap scheduler", wheel, heap)
}

// TestGridDeterminismEnvWorkers covers the SMR_WORKERS override used
// by CI and the Makefile: it must select parallelism without touching
// results.
func TestGridDeterminismEnvWorkers(t *testing.T) {
	serial := recordBytes(t, 1)
	t.Setenv("SMR_WORKERS", "3")
	env := recordBytes(t, 0) // 0 = resolve via par.Workers() → SMR_WORKERS
	diffRecords(t, "explicit 1 vs SMR_WORKERS=3", serial, env)
}
