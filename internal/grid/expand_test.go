package grid

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// readSmokeSpec loads the checked-in CI smoke grid, which doubles as
// the reference spec for the determinism and resume suites.
func readSmokeSpec(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "experiments", "smoke.json"))
	if err != nil {
		t.Fatalf("reading experiments/smoke.json: %v", err)
	}
	return string(data)
}

// TestExpandOrder pins the documented expansion contract: engines
// outermost, then workloads, then scales, seeds innermost, cell keys
// "engine/workload/scale/seed", indexes dense.
func TestExpandOrder(t *testing.T) {
	s := mustSpec(t, `{
	  "name": "order",
	  "repeats": 1,
	  "seeds": [1, 2],
	  "engines": ["hadoop", "smr"],
	  "scales": [{"name": "a", "workers": 2, "input_scale": 1}, {"name": "b", "workers": 4, "input_scale": 1}],
	  "workloads": [
	    {"name": "w1", "jobs": [{"benchmark": "grep", "input_gb": 1, "reduces": 1}]},
	    {"name": "w2", "jobs": [{"benchmark": "terasort", "input_gb": 1, "reduces": 1}]}
	  ]
	}`)
	want := []string{
		"HadoopV1/w1/a/1", "HadoopV1/w1/a/2", "HadoopV1/w1/b/1", "HadoopV1/w1/b/2",
		"HadoopV1/w2/a/1", "HadoopV1/w2/a/2", "HadoopV1/w2/b/1", "HadoopV1/w2/b/2",
		"SMapReduce/w1/a/1", "SMapReduce/w1/a/2", "SMapReduce/w1/b/1", "SMapReduce/w1/b/2",
		"SMapReduce/w2/a/1", "SMapReduce/w2/a/2", "SMapReduce/w2/b/1", "SMapReduce/w2/b/2",
	}
	cells := Expand(s)
	got := make([]string, len(cells))
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %s: Index = %d, want %d", c.Key, c.Index, i)
		}
		got[i] = c.Key
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("expansion order:\n got %v\nwant %v", got, want)
	}
}

// TestExpandSharesAxes checks cells point into the spec's axis slices
// rather than copies, so chaos/arrival configs are not duplicated per
// cell.
func TestExpandSharesAxes(t *testing.T) {
	s := mustSpec(t, minimalSpec)
	c := Expand(s)[0]
	if c.Workload != &s.Workloads[0] || c.Scale != &s.Scales[0] {
		t.Error("cells do not point into the spec's axis slices")
	}
}

// TestRepeatSeed pins the seeding rule: a pure function of (cell key,
// repeat index) — stable across calls, distinct across repeats, and
// sensitive to every part of the key.
func TestRepeatSeed(t *testing.T) {
	const key = "SMapReduce/fig3-grep/w8/1"
	seen := make(map[uint64]string)
	for rep := 0; rep < 8; rep++ {
		a, b := RepeatSeed(key, rep), RepeatSeed(key, rep)
		if a != b {
			t.Fatalf("RepeatSeed(%q, %d) unstable: %d vs %d", key, rep, a, b)
		}
		if prev, dup := seen[a]; dup {
			t.Errorf("repeat %d collides with %s", rep, prev)
		}
		seen[a] = key
	}
	for _, other := range []string{
		"HadoopV1/fig3-grep/w8/1",  // engine differs
		"SMapReduce/open-mix/w8/1", // workload differs
		"SMapReduce/fig3-grep/w4/1",
		"SMapReduce/fig3-grep/w8/2",
	} {
		if RepeatSeed(other, 0) == RepeatSeed(key, 0) {
			t.Errorf("keys %q and %q share repeat-0 seed", other, key)
		}
	}
}

func TestMetricsValue(t *testing.T) {
	m := Metrics{Jobs: 1, Completed: 2, MakespanS: 3, MeanExecS: 4, P50S: 5, P99S: 6, SLOMisses: 7, Decisions: 8}
	for i, name := range MetricNames {
		if got, want := m.Value(name), float64(i+1); got != want {
			t.Errorf("Value(%q) = %v, want %v", name, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Value on an unknown metric did not panic")
		}
	}()
	m.Value("walltime")
}
