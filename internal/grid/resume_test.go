package grid

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestResumeByteIdentical is the resume-correctness satellite: run the
// smoke grid, interrupt after K journaled cells, resume, and
// byte-compare every final artifact against an uninterrupted run of
// the same spec. The log is excluded (wall-clock timestamps); spec,
// CSV, JSON and analysis tables must match exactly.
func TestResumeByteIdentical(t *testing.T) {
	spec := mustSpec(t, readSmokeSpec(t))

	baseline := t.TempDir()
	if _, err := Run(RunOptions{Spec: spec, Dir: baseline}); err != nil {
		t.Fatalf("uninterrupted sweep: %v", err)
	}

	for _, k := range []int{1, 5} {
		dir := t.TempDir()
		res, err := Run(RunOptions{Spec: spec, Dir: dir, Workers: 2, StopAfter: k})
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("StopAfter=%d: err = %v, want ErrInterrupted", k, err)
		}
		if res.Ran < k || res.Ran >= len(res.Cells) {
			t.Fatalf("StopAfter=%d: ran %d of %d cells; interruption did not bite", k, res.Ran, len(res.Cells))
		}
		res2, err := Run(RunOptions{Spec: spec, Dir: dir, Workers: 2})
		if err != nil {
			t.Fatalf("resume after StopAfter=%d: %v", k, err)
		}
		if res2.Resumed != res.Ran || res2.Resumed+res2.Ran != len(res.Cells) {
			t.Errorf("resume after StopAfter=%d: resumed %d, ran %d; journal held %d of %d",
				k, res2.Resumed, res2.Ran, res.Ran, len(res.Cells))
		}
		for _, name := range []string{GridCSV, GridJSON, AnalysisTables} {
			want := readArtifact(t, baseline, name)
			got := readArtifact(t, dir, name)
			if string(got) != string(want) {
				t.Errorf("StopAfter=%d: %s differs from the uninterrupted sweep", k, name)
			}
		}
	}
}

// TestResumeSurvivesLostArtifacts checks a rerun regenerates final
// artifacts from the journal alone.
func TestResumeSurvivesLostArtifacts(t *testing.T) {
	spec := mustSpec(t, tinySpec)
	_, dir := runTiny(t, RunOptions{Spec: spec})
	want := readArtifact(t, dir, GridCSV)
	if err := os.Remove(filepath.Join(dir, GridCSV)); err != nil {
		t.Fatal(err)
	}
	res, _ := runTiny(t, RunOptions{Spec: spec, Dir: dir})
	if res.Ran != 0 {
		t.Errorf("regeneration recomputed %d cells", res.Ran)
	}
	if got := readArtifact(t, dir, GridCSV); string(got) != string(want) {
		t.Error("regenerated grid.csv differs")
	}
}
