// Package grid is the declarative experiment-grid harness: a JSON
// spec declares axes — engines × workloads × scales × seeds, with
// independent repeats per cell — that expand into a deterministic cell
// list executed in parallel on internal/par workers with per-worker
// simulation-substrate reuse (the internal/fleet idiom). Results land
// in a timestamped output directory as a per-cell completion journal
// (so an interrupted sweep resumes by skipping journaled cells), a
// validated CSV, a full-fidelity grid.json and generated markdown
// comparison tables.
//
// Two properties carry the repo's reproducibility guarantees onto the
// grid:
//
//   - Every repeat's seed is a pure function of (cell key, repeat
//     index), so a cell's result does not depend on which worker ran
//     it, how many workers ran the sweep, or whether the sweep was
//     interrupted and resumed.
//
//   - Specs are canonicalised: ParseSpec(s.Canonical()) reproduces
//     Canonical() byte-for-byte, engine names and chaos schedules
//     included, so a spec checked into a run directory is a stable
//     artifact the resume and validate paths can trust.
package grid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"regexp"

	"smapreduce/internal/arrival"
	"smapreduce/internal/chaos"
	"smapreduce/internal/cli"
	"smapreduce/internal/puma"
)

// Spec declares an experiment grid. Cells are the cross product
// engines × workloads × scales × seeds; each cell runs Repeats times
// with independently derived seeds (see RepeatSeed).
type Spec struct {
	// Name identifies the grid (safe-name charset: letters, digits,
	// '.', '_', '-').
	Name string `json:"name"`
	// Repeats is the number of independent runs per cell, each with its
	// own derived seed. Must be positive.
	Repeats int `json:"repeats"`
	// Seeds are the base seeds of the seed axis. Must be non-empty and
	// duplicate-free.
	Seeds []uint64 `json:"seeds"`
	// Engines names the compared systems (any name internal/cli's
	// ParseEngine accepts); canonicalised to core.Engine.String() form.
	Engines []string `json:"engines"`
	// Scales is the cluster-geometry axis.
	Scales []Scale `json:"scales"`
	// Workloads is the workload axis.
	Workloads []Workload `json:"workloads"`
}

// Scale is one point on the cluster-geometry axis.
type Scale struct {
	// Name identifies the scale in cell keys and output rows.
	Name string `json:"name"`
	// Workers is the task-tracker count. Must be positive.
	Workers int `json:"workers"`
	// InputScale multiplies every workload's input sizes (jobs'
	// input_gb and arrival tenants' input bounds). Must be positive.
	InputScale float64 `json:"input_scale"`
}

// Workload is one point on the workload axis: either a fixed job list
// (the figure-harness shape: single jobs, staggered multi-job mixes)
// or an open arrival process, optionally under a chaos schedule.
type Workload struct {
	// Name identifies the workload in cell keys and output rows.
	Name string `json:"name"`
	// Jobs is the closed-workload job list. Exactly one of Jobs and
	// Arrivals must be set.
	Jobs []Job `json:"jobs,omitempty"`
	// Arrivals is the open-workload arrival process (tenant mixes,
	// Poisson/diurnal rates, horizons — arrival.Config's schema).
	Arrivals *arrival.Config `json:"arrivals,omitempty"`
	// Chaos is a fault schedule in internal/chaos's text format,
	// applied to every cell of this workload; canonicalised to
	// chaos.Schedule.String() form. Fault targets must be valid for
	// every scale's worker count.
	Chaos string `json:"chaos,omitempty"`
	// Tenants configures capacity-policy weights and guarantees for
	// the capacity engines (ignored by the paper's three engines).
	Tenants []Tenant `json:"tenants,omitempty"`
}

// Job is one fixed job in a closed workload.
type Job struct {
	// Benchmark is a PUMA profile name.
	Benchmark string `json:"benchmark"`
	// InputGB is the input size in GB before the scale axis's
	// InputScale multiplier. Must be positive and finite.
	InputGB float64 `json:"input_gb"`
	// Reduces is the reduce task count. Must be positive.
	Reduces int `json:"reduces"`
	// SubmitAt is the virtual submission time in seconds.
	SubmitAt float64 `json:"submit_at,omitempty"`
	// Tenant names the queue the job bills to (capacity policies).
	Tenant string `json:"tenant,omitempty"`
	// SLOSeconds is the job's latency objective (0 = none).
	SLOSeconds float64 `json:"slo_seconds,omitempty"`
}

// Tenant configures one tenant for the capacity engines.
type Tenant struct {
	Name string `json:"name"`
	// Weight scales the tenant's share (FairShare, GameTheoretic);
	// 0 means 1.
	Weight float64 `json:"weight,omitempty"`
	// Guarantee is the capacity fraction reserved under CapacityQueue,
	// in [0,1]; guarantees must sum to at most 1.
	Guarantee float64 `json:"guarantee,omitempty"`
}

// safeName restricts axis names to characters that survive cell keys,
// file names and CSV rows unquoted.
var safeName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// ParseSpec decodes a JSON grid spec, rejecting unknown fields, and
// validates and canonicalises it (engine names to their core.Engine
// form, chaos schedules to their chaos.Schedule.String() form).
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("grid: parsing spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("grid: parsing spec: trailing data after the spec object")
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// validate checks the spec and rewrites engine names and chaos
// schedules to canonical form in place.
func (s *Spec) validate() error {
	if !safeName.MatchString(s.Name) {
		return fmt.Errorf("grid: spec name %q invalid (want %s)", s.Name, safeName)
	}
	if s.Repeats <= 0 {
		return fmt.Errorf("grid: repeats = %d, must be positive", s.Repeats)
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("grid: seeds axis is empty")
	}
	seen := make(map[uint64]bool, len(s.Seeds))
	for _, sd := range s.Seeds {
		if seen[sd] {
			return fmt.Errorf("grid: duplicate seed %d", sd)
		}
		seen[sd] = true
	}
	if len(s.Engines) == 0 {
		return fmt.Errorf("grid: engines axis is empty")
	}
	engines := make(map[string]bool, len(s.Engines))
	for i, name := range s.Engines {
		e, err := cli.ParseEngine(name)
		if err != nil {
			return fmt.Errorf("grid: engines[%d]: %w", i, err)
		}
		canon := e.String()
		if engines[canon] {
			return fmt.Errorf("grid: duplicate engine %s", canon)
		}
		engines[canon] = true
		s.Engines[i] = canon
	}
	if len(s.Scales) == 0 {
		return fmt.Errorf("grid: scales axis is empty")
	}
	scales := make(map[string]bool, len(s.Scales))
	for i, sc := range s.Scales {
		switch {
		case !safeName.MatchString(sc.Name):
			return fmt.Errorf("grid: scales[%d]: name %q invalid (want %s)", i, sc.Name, safeName)
		case scales[sc.Name]:
			return fmt.Errorf("grid: duplicate scale %q", sc.Name)
		case sc.Workers <= 0:
			return fmt.Errorf("grid: scale %s: workers = %d, must be positive", sc.Name, sc.Workers)
		case sc.InputScale <= 0 || math.IsInf(sc.InputScale, 0):
			return fmt.Errorf("grid: scale %s: input_scale = %v, must be positive and finite", sc.Name, sc.InputScale)
		}
		scales[sc.Name] = true
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("grid: workloads axis is empty")
	}
	workloads := make(map[string]bool, len(s.Workloads))
	for i := range s.Workloads {
		w := &s.Workloads[i]
		if !safeName.MatchString(w.Name) {
			return fmt.Errorf("grid: workloads[%d]: name %q invalid (want %s)", i, w.Name, safeName)
		}
		if workloads[w.Name] {
			return fmt.Errorf("grid: duplicate workload %q", w.Name)
		}
		workloads[w.Name] = true
		if err := w.validate(s.Scales); err != nil {
			return fmt.Errorf("grid: workload %s: %w", w.Name, err)
		}
	}
	return nil
}

// validate checks one workload against every scale and canonicalises
// its chaos schedule in place.
func (w *Workload) validate(scales []Scale) error {
	switch {
	case len(w.Jobs) == 0 && w.Arrivals == nil:
		return fmt.Errorf("neither jobs nor arrivals set")
	case len(w.Jobs) > 0 && w.Arrivals != nil:
		return fmt.Errorf("both jobs and arrivals set; want exactly one")
	}
	for i, j := range w.Jobs {
		if err := j.validate(); err != nil {
			return fmt.Errorf("jobs[%d]: %w", i, err)
		}
	}
	if w.Arrivals != nil {
		if err := w.Arrivals.Validate(); err != nil {
			return err
		}
	}
	if w.Chaos != "" {
		sched, err := chaos.ParseSchedule(w.Chaos)
		if err != nil {
			return err
		}
		if len(sched.Faults) == 0 {
			return fmt.Errorf("chaos schedule is empty; omit the field instead")
		}
		// Fault targets must exist at every scale, so validate against
		// the smallest cluster the schedule will ever be applied to.
		for _, sc := range scales {
			if err := sched.Validate(sc.Workers); err != nil {
				return fmt.Errorf("at scale %s: %w", sc.Name, err)
			}
		}
		w.Chaos = sched.String()
	}
	names := make(map[string]bool, len(w.Tenants))
	sumGuarantee := 0.0
	for i, t := range w.Tenants {
		switch {
		case t.Name == "":
			return fmt.Errorf("tenants[%d]: empty name", i)
		case names[t.Name]:
			return fmt.Errorf("duplicate tenant %q", t.Name)
		case t.Weight < 0 || math.IsNaN(t.Weight) || math.IsInf(t.Weight, 0):
			return fmt.Errorf("tenant %s: weight = %v, must be >= 0 and finite", t.Name, t.Weight)
		case t.Guarantee < 0 || t.Guarantee > 1 || math.IsNaN(t.Guarantee):
			return fmt.Errorf("tenant %s: guarantee = %v, must be in [0,1]", t.Name, t.Guarantee)
		}
		names[t.Name] = true
		sumGuarantee += t.Guarantee
	}
	if sumGuarantee > 1+1e-9 {
		return fmt.Errorf("tenant guarantees sum to %v, must be <= 1", sumGuarantee)
	}
	return nil
}

// validate checks one job entry.
func (j Job) validate() error {
	if _, err := puma.Get(j.Benchmark); err != nil {
		return err
	}
	switch {
	case j.InputGB <= 0 || math.IsInf(j.InputGB, 0):
		return fmt.Errorf("input_gb = %v, must be positive and finite", j.InputGB)
	case j.Reduces <= 0:
		return fmt.Errorf("reduces = %d, must be positive", j.Reduces)
	case j.SubmitAt < 0 || math.IsNaN(j.SubmitAt) || math.IsInf(j.SubmitAt, 0):
		return fmt.Errorf("submit_at = %v, must be >= 0 and finite", j.SubmitAt)
	case j.SLOSeconds < 0 || math.IsNaN(j.SLOSeconds) || math.IsInf(j.SLOSeconds, 0):
		return fmt.Errorf("slo_seconds = %v, must be >= 0 and finite", j.SLOSeconds)
	}
	return nil
}

// Canonical renders the spec in its canonical JSON form: indented,
// fixed field order, canonical engine names and chaos text, trailing
// newline. ParseSpec(s.Canonical()) reproduces these bytes exactly —
// the fixed point the fuzzer pins.
func (s *Spec) Canonical() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Spec contains only marshalable fields; Validate rejected
		// non-finite floats, the one runtime marshal error source.
		panic(fmt.Sprintf("grid: canonicalising spec: %v", err))
	}
	return append(b, '\n')
}
