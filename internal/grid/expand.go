package grid

import (
	"fmt"
	"hash/fnv"

	"smapreduce/internal/core"
	"smapreduce/internal/sim"

	// cli is the one ParseEngine authority; expand only converts names
	// the spec already canonicalised.
	"smapreduce/internal/cli"
)

// Cell is one point of the expanded grid.
type Cell struct {
	// Index is the cell's position in expansion order.
	Index int
	// Key is the canonical cell identity "engine/workload/scale/seed".
	// Repeat seeds, the journal and the resume path all key on it.
	Key string
	// Engine is the resolved engine of the cell's engine-axis name.
	Engine core.Engine
	// Workload and Scale point into the spec's axes.
	Workload *Workload
	Scale    *Scale
	// Seed is the cell's base seed from the seed axis. Runs do not use
	// it directly — each repeat derives its own seed via RepeatSeed —
	// but it names the cell.
	Seed uint64
}

// Expand lists the spec's cells in their canonical order — a fixed
// cross product with engines outermost, then workloads, then scales,
// and seeds innermost:
//
//	for engine { for workload { for scale { for seed { cell } } } }
//
// The order is part of the output contract: grid.json, the CSV and the
// analysis tables all list cells in exactly this order, for any worker
// count and across interrupted-and-resumed sweeps.
func Expand(s *Spec) []Cell {
	cells := make([]Cell, 0, len(s.Engines)*len(s.Workloads)*len(s.Scales)*len(s.Seeds))
	for _, name := range s.Engines {
		engine, err := cli.ParseEngine(name)
		if err != nil {
			// The spec was validated; a bad engine here is programmer error.
			panic(fmt.Sprintf("grid: expanding unvalidated spec: %v", err))
		}
		for wi := range s.Workloads {
			for si := range s.Scales {
				for _, seed := range s.Seeds {
					w, sc := &s.Workloads[wi], &s.Scales[si]
					cells = append(cells, Cell{
						Index:    len(cells),
						Key:      CellKey(name, w.Name, sc.Name, seed),
						Engine:   engine,
						Workload: w,
						Scale:    sc,
						Seed:     seed,
					})
				}
			}
		}
	}
	return cells
}

// CellKey renders the canonical cell identity. Axis names never
// contain '/', so the key parses back unambiguously.
func CellKey(engine, workload, scale string, seed uint64) string {
	return fmt.Sprintf("%s/%s/%s/%d", engine, workload, scale, seed)
}

// RepeatSeed derives the simulation seed for one repeat of one cell: a
// pure function of (cell key, repeat index) and nothing else. Worker
// count, execution order and resume history cannot reach it, which is
// what makes grid results byte-identical across all of them. The cell
// key hashes through FNV-64a into a splitmix stream forked per repeat,
// so repeats of one cell are mutually independent and cells whose keys
// differ anywhere draw unrelated streams.
func RepeatSeed(cellKey string, repeat int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(cellKey))
	return sim.NewRand(h.Sum64()).Fork(uint64(repeat)).Uint64()
}

// Metrics is one repeat's measured outcome. The fields mirror what the
// figure harnesses and the multi-tenant shoot-out report, so any grid
// cell can stand in for a paper-evaluation cell.
type Metrics struct {
	// Jobs and Completed count submitted and finished jobs.
	Jobs      int `json:"jobs"`
	Completed int `json:"completed"`
	// MakespanS is the finish time of the last job, seconds.
	MakespanS float64 `json:"makespan_s"`
	// MeanExecS is the mean per-job execution time (submission to
	// finish), seconds.
	MeanExecS float64 `json:"mean_exec_s"`
	// P50S/P99S are per-job latency percentiles, seconds.
	P50S float64 `json:"p50_s"`
	P99S float64 `json:"p99_s"`
	// SLOMisses counts jobs that finished past their latency objective.
	SLOMisses int `json:"slo_misses"`
	// Decisions counts slot-manager decisions (SMapReduce only).
	Decisions int `json:"decisions"`
}

// MetricNames lists the per-cell metrics in CSV row order. The CSV
// contract — row count = cells × metrics — counts against this list.
var MetricNames = []string{
	"jobs", "completed", "makespan_s", "mean_exec_s", "p50_s", "p99_s", "slo_misses", "decisions",
}

// Value returns the named metric as a float64 for aggregation.
func (m Metrics) Value(name string) float64 {
	switch name {
	case "jobs":
		return float64(m.Jobs)
	case "completed":
		return float64(m.Completed)
	case "makespan_s":
		return m.MakespanS
	case "mean_exec_s":
		return m.MeanExecS
	case "p50_s":
		return m.P50S
	case "p99_s":
		return m.P99S
	case "slo_misses":
		return float64(m.SLOMisses)
	case "decisions":
		return float64(m.Decisions)
	}
	panic(fmt.Sprintf("grid: unknown metric %q", name))
}
