package grid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"smapreduce/internal/stats"
)

// Aggregate is one metric's summary over a group of repeats: mean/std
// via Welford, min/max via the exact accumulator.
type Aggregate struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// aggregateMetric folds one metric of a repeat list. Accumulation
// order is the repeat order — fixed — so the result is deterministic.
func aggregateMetric(repeats []Metrics, name string) Aggregate {
	var w stats.Welford
	var acc stats.Acc
	for _, m := range repeats {
		v := m.Value(name)
		w.Add(v)
		acc.Add(v)
	}
	return Aggregate{N: w.N(), Mean: w.Mean(), Std: w.StdDev(), Min: acc.Min(), Max: acc.Max()}
}

// aggregates summarises every metric of a repeat list in MetricNames
// order.
func aggregates(repeats []Metrics) map[string]Aggregate {
	out := make(map[string]Aggregate, len(MetricNames))
	for _, name := range MetricNames {
		out[name] = aggregateMetric(repeats, name)
	}
	return out
}

// gridJSON is the grid.json document: the spec plus every cell with
// its raw repeats and aggregates, in canonical cell order.
type gridJSON struct {
	Spec  *Spec          `json:"spec"`
	Cells []gridJSONCell `json:"cells"`
}

type gridJSONCell struct {
	CellRecord
	Aggregates map[string]Aggregate `json:"aggregates"`
}

// writeArtifacts renders the final outputs from the completed records.
// Everything here is a pure function of (spec, records), and records
// are pure functions of their cells — which is why an interrupted and
// resumed sweep reproduces an uninterrupted sweep's artifacts
// byte-for-byte.
func writeArtifacts(dir string, spec *Spec, res *Result) error {
	doc := gridJSON{Spec: spec, Cells: make([]gridJSONCell, len(res.Records))}
	for i, rec := range res.Records {
		doc.Cells[i] = gridJSONCell{CellRecord: rec, Aggregates: aggregates(rec.Repeats)}
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("grid: encoding grid.json: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, GridJSON), append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("grid: writing grid.json: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, GridCSV), CSV(res), 0o644); err != nil {
		return fmt.Errorf("grid: writing grid.csv: %w", err)
	}
	tablesPath := filepath.Join(dir, AnalysisTables)
	if err := os.MkdirAll(filepath.Dir(tablesPath), 0o755); err != nil {
		return fmt.Errorf("grid: creating analysis dir: %w", err)
	}
	if err := os.WriteFile(tablesPath, AnalysisMarkdown(spec, res), 0o644); err != nil {
		return fmt.Errorf("grid: writing analysis tables: %w", err)
	}
	return nil
}

// csvHeader is the grid.csv column schema the validator enforces.
var csvHeader = []string{"engine", "workload", "scale", "seed", "metric", "n", "mean", "std", "min", "max"}

// num renders a float for CSV: shortest decimal that re-parses to the
// identical value, so the CSV is both exact and deterministic.
func num(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CSV renders the result as one row per (cell, metric), cells in
// canonical order, metrics in MetricNames order — exactly
// len(cells) × len(MetricNames) data rows.
func CSV(res *Result) []byte {
	var b bytes.Buffer
	b.WriteString(strings.Join(csvHeader, ","))
	b.WriteByte('\n')
	for _, rec := range res.Records {
		for _, name := range MetricNames {
			a := aggregateMetric(rec.Repeats, name)
			fmt.Fprintf(&b, "%s,%s,%s,%d,%s,%d,%s,%s,%s,%s\n",
				rec.Engine, rec.Workload, rec.Scale, rec.Seed, name,
				a.N, num(a.Mean), num(a.Std), num(a.Min), num(a.Max))
		}
	}
	return b.Bytes()
}

// ValidateCSV checks a grid.csv against its spec: exact column schema,
// parseable and finite values, internal consistency (std ≥ 0,
// min ≤ mean ≤ max, n = repeats), row count = cells × metrics, and
// full coverage — every (cell, metric) pair exactly once.
func ValidateCSV(spec *Spec, data []byte) error {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != strings.Join(csvHeader, ",") {
		return fmt.Errorf("grid: csv: bad header (want %q)", strings.Join(csvHeader, ","))
	}
	if lines[len(lines)-1] != "" {
		return fmt.Errorf("grid: csv: missing trailing newline")
	}
	rows := lines[1 : len(lines)-1]
	cells := Expand(spec)
	if want := len(cells) * len(MetricNames); len(rows) != want {
		return fmt.Errorf("grid: csv: %d data rows, want cells × metrics = %d × %d = %d",
			len(rows), len(cells), len(MetricNames), want)
	}
	metricOK := make(map[string]bool, len(MetricNames))
	for _, m := range MetricNames {
		metricOK[m] = true
	}
	cellIdx := make(map[string]int, len(cells))
	for i, c := range cells {
		cellIdx[c.Key] = i
	}
	seen := make(map[string]bool, len(rows))
	for i, row := range rows {
		line := i + 2 // 1-based, after the header
		f := strings.Split(row, ",")
		if len(f) != len(csvHeader) {
			return fmt.Errorf("grid: csv:%d: %d columns, want %d", line, len(f), len(csvHeader))
		}
		seed, err := strconv.ParseUint(f[3], 10, 64)
		if err != nil {
			return fmt.Errorf("grid: csv:%d: bad seed %q", line, f[3])
		}
		key := CellKey(f[0], f[1], f[2], seed)
		if _, ok := cellIdx[key]; !ok {
			return fmt.Errorf("grid: csv:%d: cell %q is not in the spec's grid", line, key)
		}
		if !metricOK[f[4]] {
			return fmt.Errorf("grid: csv:%d: unknown metric %q", line, f[4])
		}
		pair := key + "/" + f[4]
		if seen[pair] {
			return fmt.Errorf("grid: csv:%d: duplicate row for %s", line, pair)
		}
		seen[pair] = true
		n, err := strconv.Atoi(f[5])
		if err != nil || n != spec.Repeats {
			return fmt.Errorf("grid: csv:%d: n = %q, want repeats = %d", line, f[5], spec.Repeats)
		}
		vals := make([]float64, 4)
		for vi, col := range f[6:] {
			v, err := strconv.ParseFloat(col, 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("grid: csv:%d: %s = %q, want a finite number", line, csvHeader[6+vi], col)
			}
			vals[vi] = v
		}
		mean, std, min, max := vals[0], vals[1], vals[2], vals[3]
		if std < 0 {
			return fmt.Errorf("grid: csv:%d: std = %v, must be >= 0", line, std)
		}
		// mean is a float fold; it may land an ulp outside [min, max].
		slack := 1e-9 * math.Max(1, math.Abs(mean))
		if min > mean+slack || mean > max+slack {
			return fmt.Errorf("grid: csv:%d: min/mean/max out of order: %v / %v / %v", line, min, mean, max)
		}
	}
	return nil
}

// AnalysisMarkdown renders engine-comparison tables: one table per
// (workload, scale) with a row per engine, pooling every seed's
// repeats. Pure function of (spec, records) — byte-stable across
// worker counts and resume.
func AnalysisMarkdown(spec *Spec, res *Result) []byte {
	// Shown metrics: the comparison-relevant subset, full data in the CSV.
	shown := []string{"makespan_s", "mean_exec_s", "p50_s", "p99_s", "slo_misses"}
	var b bytes.Buffer
	fmt.Fprintf(&b, "# Grid analysis — %s\n", spec.Name)
	fmt.Fprintf(&b, "\n%d engines × %d workloads × %d scales × %d seeds, %d repeats per cell (%d cells).\n",
		len(spec.Engines), len(spec.Workloads), len(spec.Scales), len(spec.Seeds), spec.Repeats, len(res.Records))
	fmt.Fprintf(&b, "Values are mean ± std pooled over seeds and repeats; the full per-cell data is in %s.\n", GridCSV)

	// Group records once: records are in canonical order (engine
	// outermost), so scanning per (workload, scale, engine) just
	// filters.
	for _, w := range spec.Workloads {
		for _, sc := range spec.Scales {
			fmt.Fprintf(&b, "\n## %s @ %s (%d workers, input ×%s)\n\n", w.Name, sc.Name, sc.Workers, num(sc.InputScale))
			b.WriteString("| engine |")
			for _, m := range shown {
				fmt.Fprintf(&b, " %s |", m)
			}
			b.WriteString("\n|---|")
			for range shown {
				b.WriteString("---|")
			}
			b.WriteByte('\n')
			for _, eng := range spec.Engines {
				var pooled []Metrics
				for _, rec := range res.Records {
					if rec.Engine == eng && rec.Workload == w.Name && rec.Scale == sc.Name {
						pooled = append(pooled, rec.Repeats...)
					}
				}
				fmt.Fprintf(&b, "| %s |", eng)
				for _, m := range shown {
					a := aggregateMetric(pooled, m)
					fmt.Fprintf(&b, " %.4g ± %.2g |", a.Mean, a.Std)
				}
				b.WriteByte('\n')
			}
		}
	}
	return b.Bytes()
}
