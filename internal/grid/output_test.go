package grid

import (
	"math"
	"strings"
	"testing"
)

func TestAggregateMetricMatchesNaive(t *testing.T) {
	repeats := []Metrics{
		{MakespanS: 10}, {MakespanS: 12}, {MakespanS: 9.5}, {MakespanS: 11.25},
	}
	a := aggregateMetric(repeats, "makespan_s")
	if a.N != 4 || a.Min != 9.5 || a.Max != 12 {
		t.Errorf("n/min/max = %d/%v/%v, want 4/9.5/12", a.N, a.Min, a.Max)
	}
	mean := (10 + 12 + 9.5 + 11.25) / 4
	if math.Abs(a.Mean-mean) > 1e-12 {
		t.Errorf("mean = %v, want %v", a.Mean, mean)
	}
	var m2 float64
	for _, m := range repeats {
		d := m.MakespanS - mean
		m2 += d * d
	}
	if want := math.Sqrt(m2 / 4); math.Abs(a.Std-want) > 1e-12 {
		t.Errorf("std = %v, want %v", a.Std, want)
	}
}

// fakeResult builds a spec-consistent Result without running anything,
// so CSV/validator tests are instant.
func fakeResult(t *testing.T, spec *Spec) *Result {
	t.Helper()
	cells := Expand(spec)
	res := &Result{Cells: cells, Records: make([]CellRecord, len(cells))}
	for i := range cells {
		rec := cellRecordHeader(&cells[i])
		rec.Repeats = make([]Metrics, spec.Repeats)
		for rep := range rec.Repeats {
			rec.Repeats[rep] = Metrics{
				Jobs: 1, Completed: 1,
				MakespanS: float64(10*i + rep + 1), MeanExecS: float64(i + 1),
				P50S: 1, P99S: 2,
			}
		}
		res.Records[i] = rec
	}
	return res
}

func TestValidateCSVAcceptsGenerated(t *testing.T) {
	spec := mustSpec(t, tinySpec)
	if err := ValidateCSV(spec, CSV(fakeResult(t, spec))); err != nil {
		t.Errorf("generated CSV rejected: %v", err)
	}
}

func TestValidateCSVRejects(t *testing.T) {
	spec := mustSpec(t, tinySpec)
	good := string(CSV(fakeResult(t, spec)))
	lines := strings.SplitAfter(good, "\n") // keeps the \n on each line
	missingRow := strings.Join(lines[:3], "") + strings.Join(lines[4:], "")
	mutate := func(old, new string) string {
		t.Helper()
		s := strings.Replace(good, old, new, 1)
		if s == good {
			t.Fatalf("mutation %q not applied", old)
		}
		return s
	}
	cases := map[string]string{
		"bad header":       mutate("engine,workload", "engine,load"),
		"missing newline":  strings.TrimSuffix(good, "\n"),
		"missing row":      missingRow,
		"extra row":        good + lines[1],
		"short row":        mutate("HadoopV1,one-grep,w4,1,jobs", "HadoopV1,one-grep,w4,1"),
		"bad seed":         mutate("w4,1,jobs", "w4,one,jobs"),
		"foreign cell":     mutate("HadoopV1,one-grep,w4,1,jobs", "HadoopV1,one-grep,w4,9,jobs"),
		"unknown metric":   mutate("jobs", "walltime"),
		"duplicate pair":   strings.Replace(good, lines[2], lines[1], 1),
		"wrong n":          mutate("jobs,2,", "jobs,3,"),
		"non-finite value": mutate("makespan_s,2,1.5,", "makespan_s,2,NaN,"),
		"unparsable value": mutate("makespan_s,2,1.5,", "makespan_s,2,fast,"),
		"negative std":     mutate(",0.5,1,2\n", ",-0.5,1,2\n"),
		"mean above max":   mutate("makespan_s,2,1.5,0.5,1,2", "makespan_s,2,5,0.5,1,2"),
	}
	for name, text := range cases {
		if err := ValidateCSV(spec, []byte(text)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, text)
		}
	}
}

func TestAnalysisMarkdown(t *testing.T) {
	spec := mustSpec(t, tinySpec)
	md := string(AnalysisMarkdown(spec, fakeResult(t, spec)))
	for _, want := range []string{
		"# Grid analysis — tiny",
		"## one-grep @ w4 (4 workers, input ×0.25)",
		"| HadoopV1 |", "| SMapReduce |",
		"makespan_s", "±",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("analysis markdown missing %q:\n%s", want, md)
		}
	}
}
