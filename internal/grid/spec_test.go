package grid

import (
	"bytes"
	"strings"
	"testing"
)

// minimalSpec is the smallest valid grid, in non-canonical form
// (lowercase engine alias, unnormalised chaos text) so tests can watch
// canonicalisation work.
const minimalSpec = `{
  "name": "mini",
  "repeats": 1,
  "seeds": [7],
  "engines": ["smr"],
  "scales": [{"name": "tiny", "workers": 4, "input_scale": 0.25}],
  "workloads": [{"name": "one-grep", "jobs": [{"benchmark": "grep", "input_gb": 1, "reduces": 2}]}]
}`

func mustSpec(t *testing.T, text string) *Spec {
	t.Helper()
	s, err := ParseSpec([]byte(text))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	return s
}

func TestParseSpecCanonicalises(t *testing.T) {
	s := mustSpec(t, minimalSpec)
	if got := s.Engines[0]; got != "SMapReduce" {
		t.Errorf("engine alias not canonicalised: %q", got)
	}
	chaosy := strings.Replace(minimalSpec, `"jobs":`, `"chaos": "crash tt1 @2e1; rejoin tt1 @40", "jobs":`, 1)
	s = mustSpec(t, chaosy)
	if got, want := s.Workloads[0].Chaos, "crash tt1 @20\nrejoin tt1 @40\n"; got != want {
		t.Errorf("chaos not canonicalised: %q, want %q", got, want)
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	for name, text := range map[string]string{
		"minimal": minimalSpec,
		"smoke":   readSmokeSpec(t),
	} {
		s := mustSpec(t, text)
		c1 := s.Canonical()
		s2, err := ParseSpec(c1)
		if err != nil {
			t.Fatalf("%s: canonical form rejected: %v", name, err)
		}
		if c2 := s2.Canonical(); !bytes.Equal(c1, c2) {
			t.Errorf("%s: canonicalisation is not a fixed point:\n%s\nvs\n%s", name, c1, c2)
		}
	}
}

// TestParseSpecRejects is the validation contract: unknown fields,
// empty axes, non-positive repeats and scales, duplicate axis entries
// (the source of duplicate cell keys) and malformed members all fail
// with a diagnostic.
func TestParseSpecRejects(t *testing.T) {
	mutate := func(old, new string) string {
		t.Helper()
		s := strings.Replace(minimalSpec, old, new, 1)
		if s == minimalSpec {
			t.Fatalf("mutation %q not applied", old)
		}
		return s
	}
	cases := map[string]string{
		"unknown top-level field": mutate(`"name": "mini"`, `"name": "mini", "shards": 3`),
		"unknown scale field":     mutate(`"workers": 4`, `"workers": 4, "nodes": 4`),
		"unknown job field":       mutate(`"input_gb": 1`, `"input_gb": 1, "size": 2`),
		"trailing data":           minimalSpec + `{"second": true}`,
		"bad name":                mutate(`"name": "mini"`, `"name": "has space"`),
		"zero repeats":            mutate(`"repeats": 1`, `"repeats": 0`),
		"negative repeats":        mutate(`"repeats": 1`, `"repeats": -2`),
		"empty seeds":             mutate(`"seeds": [7]`, `"seeds": []`),
		"duplicate seeds":         mutate(`"seeds": [7]`, `"seeds": [7, 7]`),
		"empty engines":           mutate(`"engines": ["smr"]`, `"engines": []`),
		"unknown engine":          mutate(`"engines": ["smr"]`, `"engines": ["spark"]`),
		"duplicate engines":       mutate(`"engines": ["smr"]`, `"engines": ["smr", "SMapReduce"]`),
		"empty scales":            mutate(`"scales": [{"name": "tiny", "workers": 4, "input_scale": 0.25}]`, `"scales": []`),
		"zero workers":            mutate(`"workers": 4`, `"workers": 0`),
		"zero input_scale":        mutate(`"input_scale": 0.25`, `"input_scale": 0`),
		"negative input_scale":    mutate(`"input_scale": 0.25`, `"input_scale": -1`),
		"duplicate scales": mutate(`"scales": [{"name": "tiny", "workers": 4, "input_scale": 0.25}]`,
			`"scales": [{"name": "tiny", "workers": 4, "input_scale": 0.25}, {"name": "tiny", "workers": 8, "input_scale": 1}]`),
		"empty workloads":                     mutate(`"workloads": [{"name": "one-grep", "jobs": [{"benchmark": "grep", "input_gb": 1, "reduces": 2}]}]`, `"workloads": []`),
		"workload both kinds":                 mutate(`"jobs":`, `"arrivals": {"horizon": 10, "tenants": [{"name": "t", "benchmarks": ["grep"], "mean_interarrival": 5, "input_mb_min": 1, "input_mb_max": 2, "reduces": 1}]}, "jobs":`),
		"workload no kind":                    mutate(`"jobs": [{"benchmark": "grep", "input_gb": 1, "reduces": 2}]`, `"jobs": []`),
		"unknown benchmark":                   mutate(`"benchmark": "grep"`, `"benchmark": "sort-of-grep"`),
		"zero input_gb":                       mutate(`"input_gb": 1`, `"input_gb": 0`),
		"zero reduces":                        mutate(`"reduces": 2`, `"reduces": 0`),
		"negative submit":                     mutate(`"reduces": 2`, `"reduces": 2, "submit_at": -1`),
		"bad chaos":                           mutate(`"jobs":`, `"chaos": "explode tt0 @1", "jobs":`),
		"empty chaos":                         mutate(`"jobs":`, `"chaos": "# nothing", "jobs":`),
		"chaos target outside smallest scale": mutate(`"jobs":`, `"chaos": "crash tt4 @1", "jobs":`),
		"tenant dup":                          mutate(`"jobs":`, `"tenants": [{"name": "a"}, {"name": "a"}], "jobs":`),
		"tenant guarantees":                   mutate(`"jobs":`, `"tenants": [{"name": "a", "guarantee": 0.7}, {"name": "b", "guarantee": 0.6}], "jobs":`),
		"not json":                            `engines: [smr]`,
	}
	for name, text := range cases {
		if _, err := ParseSpec([]byte(text)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, text)
		}
	}
}
