package puma

import (
	"bufio"
	"fmt"
	"io"

	"smapreduce/internal/sim"
)

// Synthetic dataset generators for the real-engine examples and the
// pumagen CLI. Streams are deterministic per seed.

// vocabulary is a small word pool; GenText skews draws toward the low
// indices for a Zipf-ish frequency profile so downstream word counts
// have interesting shapes.
var vocabulary = []string{
	"the", "of", "and", "to", "data", "map", "reduce", "cluster", "slot",
	"task", "shuffle", "barrier", "tracker", "node", "network", "disk",
	"memory", "thrashing", "throughput", "hadoop", "yarn", "runtime",
	"dynamic", "allocation", "resource", "workload", "benchmark",
}

// GenText writes lines of wordsPerLine pseudo-words to w.
func GenText(w io.Writer, seed uint64, lines, wordsPerLine int) error {
	if lines < 0 || wordsPerLine <= 0 {
		return fmt.Errorf("puma: GenText lines=%d words=%d invalid", lines, wordsPerLine)
	}
	rng := sim.NewRand(seed)
	bw := bufio.NewWriter(w)
	for i := 0; i < lines; i++ {
		for j := 0; j < wordsPerLine; j++ {
			if j > 0 {
				if _, err := bw.WriteString(" "); err != nil {
					return err
				}
			}
			// Square the uniform draw to favour common words.
			u := rng.Float64()
			idx := int(u * u * float64(len(vocabulary)))
			if idx >= len(vocabulary) {
				idx = len(vocabulary) - 1
			}
			if _, err := bw.WriteString(vocabulary[idx]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// GenRatings writes "movieNNNN<TAB>rating" lines to w, ratings uniform
// in 1..5 over the given movie population.
func GenRatings(w io.Writer, seed uint64, lines, movies int) error {
	if lines < 0 || movies <= 0 {
		return fmt.Errorf("puma: GenRatings lines=%d movies=%d invalid", lines, movies)
	}
	rng := sim.NewRand(seed)
	bw := bufio.NewWriter(w)
	for i := 0; i < lines; i++ {
		if _, err := fmt.Fprintf(bw, "movie%04d\t%d\n", rng.Intn(movies), 1+rng.Intn(5)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// GenEdges writes "src dst" directed-edge lines over a vertex
// population, for the adjacency-list job. Self-loops are skipped and
// regenerated, so exactly `lines` edges are emitted.
func GenEdges(w io.Writer, seed uint64, lines, vertices int) error {
	if lines < 0 || vertices < 2 {
		return fmt.Errorf("puma: GenEdges lines=%d vertices=%d invalid", lines, vertices)
	}
	rng := sim.NewRand(seed)
	bw := bufio.NewWriter(w)
	for i := 0; i < lines; i++ {
		src := rng.Intn(vertices)
		dst := rng.Intn(vertices)
		for dst == src {
			dst = rng.Intn(vertices)
		}
		if _, err := fmt.Fprintf(bw, "v%d v%d\n", src, dst); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// GenPoints writes "x,y" 2-D points to w, drawn around k cluster
// centres laid out on a circle — input for the k-means example job.
func GenPoints(w io.Writer, seed uint64, points, k int) error {
	if points < 0 || k <= 0 {
		return fmt.Errorf("puma: GenPoints points=%d k=%d invalid", points, k)
	}
	rng := sim.NewRand(seed)
	bw := bufio.NewWriter(w)
	for i := 0; i < points; i++ {
		c := rng.Intn(k)
		// Centres at (10c, 10c); noise in [-2, 2).
		x := float64(10*c) + 4*rng.Float64() - 2
		y := float64(10*c) + 4*rng.Float64() - 2
		if _, err := fmt.Fprintf(bw, "%.3f,%.3f\n", x, y); err != nil {
			return err
		}
	}
	return bw.Flush()
}
