package puma

import (
	"strings"
	"testing"
)

func TestGenTextDeterministicAndShaped(t *testing.T) {
	var a, b strings.Builder
	if err := GenText(&a, 7, 100, 8); err != nil {
		t.Fatal(err)
	}
	if err := GenText(&b, 7, 100, 8); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different corpora")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 100 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		if len(strings.Fields(l)) != 8 {
			t.Fatalf("line has %d words: %q", len(strings.Fields(l)), l)
		}
	}
	// Common words dominate (the Zipf skew).
	counts := map[string]int{}
	for _, w := range strings.Fields(a.String()) {
		counts[w]++
	}
	if counts["the"] <= counts["benchmark"] {
		t.Fatalf("skew missing: the=%d benchmark=%d", counts["the"], counts["benchmark"])
	}
}

func TestGenTextRejectsBadArgs(t *testing.T) {
	var b strings.Builder
	if err := GenText(&b, 1, -1, 8); err == nil {
		t.Fatal("negative lines accepted")
	}
	if err := GenText(&b, 1, 10, 0); err == nil {
		t.Fatal("zero words accepted")
	}
}

func TestGenRatingsFormat(t *testing.T) {
	var b strings.Builder
	if err := GenRatings(&b, 3, 50, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 50 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		parts := strings.Split(l, "\t")
		if len(parts) != 2 || !strings.HasPrefix(parts[0], "movie") {
			t.Fatalf("bad line %q", l)
		}
		if parts[1] < "1" || parts[1] > "5" {
			t.Fatalf("rating out of range: %q", l)
		}
	}
	if err := GenRatings(&b, 1, 5, 0); err == nil {
		t.Fatal("zero movies accepted")
	}
}

func TestGenEdgesNoSelfLoops(t *testing.T) {
	var b strings.Builder
	if err := GenEdges(&b, 5, 200, 8); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 200 {
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		f := strings.Fields(l)
		if len(f) != 2 || f[0] == f[1] {
			t.Fatalf("bad edge %q", l)
		}
	}
	if err := GenEdges(&b, 1, 5, 1); err == nil {
		t.Fatal("single-vertex graph accepted")
	}
}

func TestGenPointsClustered(t *testing.T) {
	var b strings.Builder
	if err := GenPoints(&b, 11, 300, 3); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 300 {
		t.Fatalf("points = %d", len(lines))
	}
	for _, l := range lines {
		if !strings.Contains(l, ",") {
			t.Fatalf("bad point %q", l)
		}
	}
	if err := GenPoints(&b, 1, 10, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}
