package puma

import (
	"testing"
)

func TestAllProfilesValid(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestRegistryNonEmpty(t *testing.T) {
	if len(All()) < 10 {
		t.Fatalf("registry has %d profiles, want the PUMA suite (>= 10)", len(All()))
	}
}

func TestGetKnownAndUnknown(t *testing.T) {
	p, err := Get("terasort")
	if err != nil || p.Name != "terasort" {
		t.Fatalf("Get(terasort) = %+v, %v", p, err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("Get(nope) succeeded")
	}
}

func TestMustGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet(nope) did not panic")
		}
	}()
	MustGet("nope")
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, want := range []string{"grep", "terasort", "inverted-index", "histogram-ratings", "histogram-movies", "term-vector", "wordcount"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("benchmark %q missing from registry", want)
		}
	}
}

func TestPaperClassification(t *testing.T) {
	// The classes the paper's narrative assigns.
	cases := map[string]Class{
		"grep":                  MapHeavy,
		"histogram-ratings":     MapHeavy,
		"histogram-movies":      MapHeavy,
		"classification":        MapHeavy,
		"wordcount":             MapHeavy, // tiny post-combine shuffle
		"term-vector":           Medium,
		"inverted-index":        Medium,
		"sequence-count":        Medium,
		"terasort":              ReduceHeavy,
		"ranked-inverted-index": ReduceHeavy,
		"self-join":             ReduceHeavy,
	}
	for name, want := range cases {
		if got := MustGet(name).Class(); got != want {
			t.Errorf("%s classified %v, want %v (shuffle ratio %v)", name, got, want, MustGet(name).ShuffleRatio())
		}
	}
}

func TestMapHeavyThrashLaterThanReduceHeavy(t *testing.T) {
	// §II-B: "map-heavy jobs have a higher thrashing point than
	// reduce-heavy jobs".
	if MustGet("grep").MapPeakSlots <= MustGet("terasort").MapPeakSlots {
		t.Fatal("grep must thrash later than terasort")
	}
	if MustGet("histogram-ratings").MapPeakSlots <= MustGet("ranked-inverted-index").MapPeakSlots {
		t.Fatal("histogram-ratings must thrash later than ranked-inverted-index")
	}
}

func TestShuffleRatioIncludesCombiner(t *testing.T) {
	wc := MustGet("wordcount")
	if wc.ShuffleRatio() >= wc.MapOutputRatio {
		t.Fatal("combiner did not reduce wordcount's shuffle ratio")
	}
}

func TestClassString(t *testing.T) {
	if MapHeavy.String() != "map-heavy" || Medium.String() != "medium" || ReduceHeavy.String() != "reduce-heavy" {
		t.Fatal("Class strings")
	}
	if Class(7).String() == "" {
		t.Fatal("unknown class empty")
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	good := MustGet("grep")
	mutations := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.MapCPUPerMB = 0 },
		func(p *Profile) { p.MapOutputRatio = -1 },
		func(p *Profile) { p.CombineRatio = 0 },
		func(p *Profile) { p.CombineRatio = 1.5 },
		func(p *Profile) { p.SortCPUPerMB = -1 },
		func(p *Profile) { p.MapFootprintMB = 0 },
		func(p *Profile) { p.MapPeakSlots = 0.5 },
		func(p *Profile) { p.MergeCPUPerMB = -1 },
		func(p *Profile) { p.ReduceCPUPerMB = -1 },
		func(p *Profile) { p.OutputRatio = -1 },
		func(p *Profile) { p.ReduceFootprint = 0 },
		func(p *Profile) { p.FetcherWeight = -1 },
	}
	for i, mutate := range mutations {
		p := good
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("mutation %d passed validation", i)
		}
	}
}

func TestGetReturnsCopy(t *testing.T) {
	p := MustGet("grep")
	p.MapCPUPerMB = 999
	if MustGet("grep").MapCPUPerMB == 999 {
		t.Fatal("Get returned a shared mutable profile")
	}
}
