// Package puma encodes the workloads of the Purdue MapReduce Benchmarks
// Suite (PUMA, Ahmad et al. 2012) as resource-shape profiles for the
// simulated runtime.
//
// The paper's figures depend on each benchmark's *shape* — how much CPU
// a map task burns per MB of input, how much intermediate data it emits
// (map-heavy vs reduce-heavy), and where its per-node thrashing point
// sits — not on the literal movie-ratings or Wikipedia bytes. A Profile
// captures exactly those shapes; sizes are chosen per experiment.
//
// Calibration notes (all rates are per 2.53 GHz core, CoreSpeed = 1):
//   - MapCPUPerMB 0.05 ⇒ a lone map task streams 20 MB/s, typical for a
//     Hadoop-1 JVM doing line splitting plus a cheap map function.
//   - MapPeakSlots is the per-node slot count where Fig. 1's curve
//     peaks; resource.PressureForPeak converts it to a pressure value.
//     Map-heavy scans peak late (7–8), sort-like jobs early (4–5),
//     matching the paper's observation.
//   - ShuffleRatio = MapOutputRatio × CombineRatio is the fraction of
//     input bytes that crosses the network; it drives the map-heavy /
//     reduce-heavy classification exactly as §II-A2 describes.
package puma

import (
	"fmt"
	"sort"
)

// Class is the paper's job taxonomy.
type Class int

const (
	// MapHeavy jobs shuffle a tiny fraction of their input (Grep, the
	// histogram jobs): the shuffle trivially keeps up with the maps.
	MapHeavy Class = iota
	// Medium jobs shuffle a moderate fraction (InvertedIndex,
	// TermVector): balance depends on the slot configuration.
	Medium
	// ReduceHeavy jobs shuffle roughly their whole input (Terasort,
	// RankedInvertedIndex): the shuffle lags the maps.
	ReduceHeavy
)

func (c Class) String() string {
	switch c {
	case MapHeavy:
		return "map-heavy"
	case Medium:
		return "medium"
	case ReduceHeavy:
		return "reduce-heavy"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Profile is the resource shape of one benchmark.
type Profile struct {
	Name string

	// Map side.
	MapCPUPerMB    float64 // core-seconds per MB of map input (read+parse+map)
	MapOutputRatio float64 // map output bytes / input bytes, before combine
	CombineRatio   float64 // fraction of map output surviving the combiner (1 = none)
	SortCPUPerMB   float64 // core-seconds per MB of (pre-combine) map output for sort/spill
	MapFootprintMB float64 // resident memory per running map task (JVM heap + buffers)
	MapPeakSlots   float64 // per-node slot count at the thrashing point (Fig. 1 peak)

	// Reduce side.
	MergeCPUPerMB    float64 // core-seconds per MB of shuffled data for the reduce-side merge sort
	ReduceCPUPerMB   float64 // core-seconds per MB of shuffled data for the reduce function
	OutputRatio      float64 // final output bytes / shuffled bytes
	ReduceFootprint  float64 // resident MB per running reduce task
	FetcherWeight    float64 // thread weight one shuffling reducer adds to its node
	FetcherPressure  float64 // contention pressure one shuffling reducer adds
	ReducePeakFactor float64 // reserved for reduce-side thrashing studies (≥1)
}

// ShuffleRatio returns the fraction of input bytes crossing the network.
func (p Profile) ShuffleRatio() float64 { return p.MapOutputRatio * p.CombineRatio }

// Class classifies the profile with the thresholds the paper implies.
func (p Profile) Class() Class {
	switch r := p.ShuffleRatio(); {
	case r < 0.05:
		return MapHeavy
	case r < 0.55:
		return Medium
	default:
		return ReduceHeavy
	}
}

// Validate reports the first problem with the profile, or nil.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("puma: profile has empty name")
	case p.MapCPUPerMB <= 0:
		return fmt.Errorf("puma: %s: MapCPUPerMB must be positive", p.Name)
	case p.MapOutputRatio < 0:
		return fmt.Errorf("puma: %s: MapOutputRatio must be >= 0", p.Name)
	case p.CombineRatio <= 0 || p.CombineRatio > 1:
		return fmt.Errorf("puma: %s: CombineRatio must be in (0,1]", p.Name)
	case p.SortCPUPerMB < 0:
		return fmt.Errorf("puma: %s: SortCPUPerMB must be >= 0", p.Name)
	case p.MapFootprintMB <= 0:
		return fmt.Errorf("puma: %s: MapFootprintMB must be positive", p.Name)
	case p.MapPeakSlots < 1:
		return fmt.Errorf("puma: %s: MapPeakSlots must be >= 1", p.Name)
	case p.MergeCPUPerMB < 0 || p.ReduceCPUPerMB < 0:
		return fmt.Errorf("puma: %s: reduce CPU costs must be >= 0", p.Name)
	case p.OutputRatio < 0:
		return fmt.Errorf("puma: %s: OutputRatio must be >= 0", p.Name)
	case p.ReduceFootprint <= 0:
		return fmt.Errorf("puma: %s: ReduceFootprint must be positive", p.Name)
	case p.FetcherWeight < 0 || p.FetcherPressure < 0:
		return fmt.Errorf("puma: %s: fetcher weight/pressure must be >= 0", p.Name)
	}
	return nil
}

// profiles is the registry. Costs follow the calibration notes above.
var profiles = map[string]Profile{
	"grep": {
		Name:        "grep",
		MapCPUPerMB: 0.050, MapOutputRatio: 0.001, CombineRatio: 1, SortCPUPerMB: 0.01,
		MapFootprintMB: 700, MapPeakSlots: 9,
		MergeCPUPerMB: 0.02, ReduceCPUPerMB: 0.02, OutputRatio: 1,
		ReduceFootprint: 600, FetcherWeight: 0.3, FetcherPressure: 0.02, ReducePeakFactor: 1,
	},
	"histogram-ratings": {
		Name:        "histogram-ratings",
		MapCPUPerMB: 0.070, MapOutputRatio: 0.0008, CombineRatio: 1, SortCPUPerMB: 0.01,
		MapFootprintMB: 750, MapPeakSlots: 9,
		MergeCPUPerMB: 0.02, ReduceCPUPerMB: 0.02, OutputRatio: 1,
		ReduceFootprint: 600, FetcherWeight: 0.3, FetcherPressure: 0.02, ReducePeakFactor: 1,
	},
	"histogram-movies": {
		Name:        "histogram-movies",
		MapCPUPerMB: 0.075, MapOutputRatio: 0.0008, CombineRatio: 1, SortCPUPerMB: 0.01,
		MapFootprintMB: 750, MapPeakSlots: 9,
		MergeCPUPerMB: 0.02, ReduceCPUPerMB: 0.02, OutputRatio: 1,
		ReduceFootprint: 600, FetcherWeight: 0.3, FetcherPressure: 0.02, ReducePeakFactor: 1,
	},
	"classification": {
		Name:        "classification",
		MapCPUPerMB: 0.120, MapOutputRatio: 0.008, CombineRatio: 1, SortCPUPerMB: 0.015,
		MapFootprintMB: 900, MapPeakSlots: 8,
		MergeCPUPerMB: 0.02, ReduceCPUPerMB: 0.03, OutputRatio: 1,
		ReduceFootprint: 700, FetcherWeight: 0.3, FetcherPressure: 0.02, ReducePeakFactor: 1,
	},
	"kmeans": {
		Name:        "kmeans",
		MapCPUPerMB: 0.150, MapOutputRatio: 0.04, CombineRatio: 1, SortCPUPerMB: 0.02,
		MapFootprintMB: 1000, MapPeakSlots: 7,
		MergeCPUPerMB: 0.03, ReduceCPUPerMB: 0.50, OutputRatio: 0.5,
		ReduceFootprint: 800, FetcherWeight: 0.3, FetcherPressure: 0.02, ReducePeakFactor: 1,
	},
	"wordcount": {
		Name:        "wordcount",
		MapCPUPerMB: 0.090, MapOutputRatio: 1.0, CombineRatio: 0.04, SortCPUPerMB: 0.030,
		MapFootprintMB: 900, MapPeakSlots: 6,
		MergeCPUPerMB: 0.03, ReduceCPUPerMB: 0.05, OutputRatio: 0.8,
		ReduceFootprint: 700, FetcherWeight: 0.3, FetcherPressure: 0.02, ReducePeakFactor: 1,
	},
	"term-vector": {
		Name:        "term-vector",
		MapCPUPerMB: 0.100, MapOutputRatio: 0.60, CombineRatio: 0.25, SortCPUPerMB: 0.035,
		MapFootprintMB: 1000, MapPeakSlots: 6,
		MergeCPUPerMB: 0.04, ReduceCPUPerMB: 0.06, OutputRatio: 0.3,
		ReduceFootprint: 900, FetcherWeight: 0.35, FetcherPressure: 0.025, ReducePeakFactor: 1,
	},
	"inverted-index": {
		Name:        "inverted-index",
		MapCPUPerMB: 0.090, MapOutputRatio: 0.35, CombineRatio: 1, SortCPUPerMB: 0.035,
		MapFootprintMB: 1100, MapPeakSlots: 5.5,
		MergeCPUPerMB: 0.04, ReduceCPUPerMB: 0.08, OutputRatio: 0.6,
		ReduceFootprint: 1000, FetcherWeight: 0.4, FetcherPressure: 0.03, ReducePeakFactor: 1,
	},
	"sequence-count": {
		Name:        "sequence-count",
		MapCPUPerMB: 0.110, MapOutputRatio: 1.1, CombineRatio: 0.35, SortCPUPerMB: 0.04,
		MapFootprintMB: 1100, MapPeakSlots: 5.5,
		MergeCPUPerMB: 0.045, ReduceCPUPerMB: 0.08, OutputRatio: 0.6,
		ReduceFootprint: 1000, FetcherWeight: 0.4, FetcherPressure: 0.03, ReducePeakFactor: 1,
	},
	"self-join": {
		Name:        "self-join",
		MapCPUPerMB: 0.060, MapOutputRatio: 0.9, CombineRatio: 1, SortCPUPerMB: 0.04,
		MapFootprintMB: 1200, MapPeakSlots: 5,
		MergeCPUPerMB: 0.05, ReduceCPUPerMB: 0.07, OutputRatio: 0.9,
		ReduceFootprint: 1100, FetcherWeight: 0.45, FetcherPressure: 0.035, ReducePeakFactor: 1,
	},
	"adjacency-list": {
		Name:        "adjacency-list",
		MapCPUPerMB: 0.080, MapOutputRatio: 0.75, CombineRatio: 1, SortCPUPerMB: 0.045,
		MapFootprintMB: 1200, MapPeakSlots: 5,
		MergeCPUPerMB: 0.05, ReduceCPUPerMB: 0.09, OutputRatio: 0.8,
		ReduceFootprint: 1100, FetcherWeight: 0.45, FetcherPressure: 0.035, ReducePeakFactor: 1,
	},
	"ranked-inverted-index": {
		Name:        "ranked-inverted-index",
		MapCPUPerMB: 0.035, MapOutputRatio: 1.0, CombineRatio: 1, SortCPUPerMB: 0.030,
		MapFootprintMB: 1300, MapPeakSlots: 4.5,
		MergeCPUPerMB: 0.05, ReduceCPUPerMB: 0.09, OutputRatio: 0.9,
		ReduceFootprint: 1200, FetcherWeight: 0.5, FetcherPressure: 0.04, ReducePeakFactor: 1,
	},
	"terasort": {
		Name:        "terasort",
		MapCPUPerMB: 0.045, MapOutputRatio: 1.0, CombineRatio: 1, SortCPUPerMB: 0.05,
		MapFootprintMB: 1400, MapPeakSlots: 4.5,
		MergeCPUPerMB: 0.05, ReduceCPUPerMB: 0.05, OutputRatio: 1,
		ReduceFootprint: 1300, FetcherWeight: 0.5, FetcherPressure: 0.04, ReducePeakFactor: 1,
	},
}

// Get returns the named profile. Unknown names return an error listing
// the registry, since callers are usually translating a CLI flag.
func Get(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("puma: unknown benchmark %q (known: %v)", name, Names())
	}
	return p, nil
}

// MustGet is Get for static experiment tables; it panics on error.
func MustGet(name string) Profile {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns the registered benchmark names in sorted order.
func Names() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every profile, sorted by name.
func All() []Profile {
	all := make([]Profile, 0, len(profiles))
	for _, n := range Names() {
		all = append(all, profiles[n])
	}
	return all
}
