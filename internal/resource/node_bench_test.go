package resource

import "testing"

// BenchmarkAddRemove measures activity churn with rate recompute, the
// inner loop of every simulated task phase transition.
func BenchmarkAddRemove(b *testing.B) {
	n := NewNode(0, DefaultSpec())
	for i := 0; i < 8; i++ {
		n.Add(&Activity{Kind: CPU, Remaining: 1e9, Weight: 1, Pressure: 0.1, FootprintMB: 800})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := &Activity{Kind: CPU, Remaining: 1, Weight: 1, Pressure: 0.1, FootprintMB: 800}
		n.Add(a)
		n.Remove(a)
	}
}

// BenchmarkThroughputCurve measures the analytic Fig.-1 curve used by
// calibration and tests.
func BenchmarkThroughputCurve(b *testing.B) {
	n := NewNode(0, DefaultSpec())
	for i := 0; i < b.N; i++ {
		_ = n.ThroughputCurve(i%16+1, 0.1, 800)
	}
}
