package resource

import (
	"math"
	"testing"
)

// Service scaling is the node's fault-injection hook (internal/chaos
// slow-node faults): factors in (0,1] multiply the delivered CPU and
// disk service rates, leaving the calibration curves (ThroughputCurve,
// PeakSlots) untouched.

func TestServiceScaleThrottlesCPU(t *testing.T) {
	n := NewNode(0, testSpec())
	a := &Activity{Kind: CPU, Remaining: 10, Weight: 1, Pressure: 0.01, FootprintMB: 100, Label: "t"}
	n.Add(a)
	base := a.Rate()
	n.SetServiceScale(0.5, 1)
	if math.Abs(a.Rate()-base*0.5) > 1e-12 {
		t.Fatalf("half cpu: rate = %v, want %v", a.Rate(), base*0.5)
	}
	cpu, disk := n.ServiceScale()
	if cpu != 0.5 || disk != 1 {
		t.Fatalf("ServiceScale = %v/%v, want 0.5/1", cpu, disk)
	}
	n.SetServiceScale(1, 1)
	if a.Rate() != base {
		t.Fatalf("restored rate = %v, want %v", a.Rate(), base)
	}
}

func TestServiceScaleThrottlesDisk(t *testing.T) {
	n := NewNode(0, testSpec())
	a := &Activity{Kind: Disk, Remaining: 100, Weight: 1, Label: "d"}
	n.Add(a)
	base := a.Rate()
	n.SetServiceScale(1, 0.25)
	if math.Abs(a.Rate()-base*0.25) > 1e-12 {
		t.Fatalf("quarter disk: rate = %v, want %v", a.Rate(), base*0.25)
	}
	n.SetServiceScale(1, 1)
	if a.Rate() != base {
		t.Fatalf("restored rate = %v, want %v", a.Rate(), base)
	}
}

func TestServiceScaleLeavesCalibrationCurveAlone(t *testing.T) {
	n := NewNode(0, testSpec())
	baseCurve := n.ThroughputCurve(4, 0.05, 200)
	basePeak := n.PeakSlots(0.05, 200, 16)
	n.SetServiceScale(0.5, 0.5)
	if curve := n.ThroughputCurve(4, 0.05, 200); curve != baseCurve {
		t.Fatalf("ThroughputCurve changed under degradation: %v, want %v", curve, baseCurve)
	}
	if peak := n.PeakSlots(0.05, 200, 16); peak != basePeak {
		t.Fatalf("PeakSlots changed under degradation: %d, want %d", peak, basePeak)
	}
}

func TestSetServiceScalePanicsOnBadArgs(t *testing.T) {
	n := NewNode(0, testSpec())
	cases := [][2]float64{{0, 1}, {1, 0}, {-0.5, 1}, {1, 1.5}, {math.NaN(), 1}, {1, math.NaN()}}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d (%v): no panic", i, c)
				}
			}()
			n.SetServiceScale(c[0], c[1])
		}()
	}
}
