package resource

import (
	"math"
	"testing"
	"testing/quick"
)

func testSpec() Spec {
	s := DefaultSpec()
	return s
}

func TestSpecValidate(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("DefaultSpec invalid: %v", err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Cores = 0 },
		func(s *Spec) { s.CoreSpeed = 0 },
		func(s *Spec) { s.RAMMB = 0 },
		func(s *Spec) { s.ReservedMB = -1 },
		func(s *Spec) { s.ReservedMB = s.RAMMB },
		func(s *Spec) { s.DiskMBps = 0 },
		func(s *Spec) { s.Beta = 0.5 },
		func(s *Spec) { s.PagingK = -1 },
	}
	for i, mutate := range bad {
		s := DefaultSpec()
		mutate(&s)
		if s.Validate() == nil {
			t.Fatalf("case %d: invalid spec passed validation: %+v", i, s)
		}
	}
}

func TestNewNodePanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewNode with bad spec did not panic")
		}
	}()
	NewNode(0, Spec{})
}

func TestSingleCPUActivityRate(t *testing.T) {
	n := NewNode(0, testSpec())
	a := &Activity{Kind: CPU, Remaining: 10, Weight: 1, Pressure: 0.01, FootprintMB: 100, Label: "t"}
	n.Add(a)
	// One task, negligible pressure: rate ≈ CoreSpeed.
	if math.Abs(a.Rate()-1.0) > 0.01 {
		t.Fatalf("rate = %v, want ≈1.0", a.Rate())
	}
	n.Remove(a)
	if a.Rate() != 0 || n.Len() != 0 {
		t.Fatal("Remove did not clear")
	}
}

func TestCPUSharingIsEqual(t *testing.T) {
	n := NewNode(0, testSpec())
	var acts []*Activity
	for i := 0; i < 4; i++ {
		a := &Activity{Kind: CPU, Remaining: 10, Weight: 1, Pressure: 0.05, FootprintMB: 100}
		n.Add(a)
		acts = append(acts, a)
	}
	for _, a := range acts {
		if math.Abs(a.Rate()-acts[0].Rate()) > 1e-12 {
			t.Fatal("unequal CPU shares")
		}
	}
	total := 4 * acts[0].Rate()
	if math.Abs(total-n.CPUThroughput()) > 1e-9 {
		t.Fatalf("shares (%v) do not sum to throughput (%v)", total, n.CPUThroughput())
	}
}

func TestThroughputRisesThenFalls(t *testing.T) {
	// The defining Fig. 1 property: with calibrated pressure the
	// throughput curve peaks at the intended slot count.
	n := NewNode(0, testSpec())
	for _, peak := range []int{4, 6, 8} {
		pi := PressureForPeak(float64(peak), testSpec().Beta)
		got := n.PeakSlots(pi, 500, 16)
		if got < peak-1 || got > peak+1 {
			t.Fatalf("peak slots = %d, want ≈%d", got, peak)
		}
		// Strictly lower beyond the peak.
		atPeak := n.ThroughputCurve(got, pi, 500)
		beyond := n.ThroughputCurve(got+3, pi, 500)
		if beyond >= atPeak {
			t.Fatalf("no thrashing: Θ(%d)=%v >= Θ(%d)=%v", got+3, beyond, got, atPeak)
		}
		// Rising before the peak.
		if n.ThroughputCurve(1, pi, 500) >= atPeak {
			t.Fatal("curve not rising before peak")
		}
	}
}

func TestPagingCollapse(t *testing.T) {
	n := NewNode(0, testSpec())
	avail := testSpec().RAMMB - testSpec().ReservedMB
	fits := n.ThroughputCurve(4, 0.01, avail/8)
	over := n.ThroughputCurve(4, 0.01, avail/2) // 2× overcommitted
	if over >= fits/2 {
		t.Fatalf("paging collapse too weak: fits=%v over=%v", fits, over)
	}
}

func TestCoreBound(t *testing.T) {
	spec := testSpec()
	spec.Cores = 2
	n := NewNode(0, spec)
	// With negligible pressure, throughput saturates at Cores.
	two := n.ThroughputCurve(2, 0.001, 10)
	four := n.ThroughputCurve(4, 0.001, 10)
	if four > two*1.01 {
		t.Fatalf("throughput exceeded core bound: 2→%v 4→%v", two, four)
	}
}

func TestDiskSharing(t *testing.T) {
	n := NewNode(0, testSpec())
	d1 := &Activity{Kind: Disk, Remaining: 100, Weight: 1}
	d2 := &Activity{Kind: Disk, Remaining: 100, Weight: 1}
	n.Add(d1)
	if math.Abs(d1.Rate()-testSpec().DiskMBps) > 1e-9 {
		t.Fatalf("sole disk rate = %v, want %v", d1.Rate(), testSpec().DiskMBps)
	}
	n.Add(d2)
	if math.Abs(d1.Rate()-testSpec().DiskMBps/2) > 1e-9 {
		t.Fatalf("shared disk rate = %v, want %v", d1.Rate(), testSpec().DiskMBps/2)
	}
}

func TestPhantomDegradesCPU(t *testing.T) {
	n := NewNode(0, testSpec())
	c := &Activity{Kind: CPU, Remaining: 10, Weight: 1, Pressure: 0.1}
	n.Add(c)
	before := c.Rate()
	ph := &Activity{Kind: Phantom, Weight: 0.5, Pressure: 0.3, FootprintMB: 1000, Label: "fetcher"}
	n.Add(ph)
	if ph.Rate() != 0 {
		t.Fatal("phantom has a rate")
	}
	if c.Rate() >= before {
		t.Fatalf("phantom pressure did not degrade CPU: %v -> %v", before, c.Rate())
	}
	n.Remove(ph)
	if math.Abs(c.Rate()-before) > 1e-9 {
		t.Fatal("removing phantom did not restore rate")
	}
}

func TestDoubleAddPanics(t *testing.T) {
	n := NewNode(0, testSpec())
	a := &Activity{Kind: CPU, Remaining: 1, Weight: 1}
	n.Add(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double Add did not panic")
		}
	}()
	n.Add(a)
}

func TestRemoveForeignIsNoop(t *testing.T) {
	n1 := NewNode(0, testSpec())
	n2 := NewNode(1, testSpec())
	a := &Activity{Kind: CPU, Remaining: 1, Weight: 1}
	n1.Add(a)
	n2.Remove(a) // must not panic or detach
	if a.Rate() == 0 {
		t.Fatal("foreign Remove detached the activity")
	}
	n1.Remove(a)
}

func TestNegativeFieldsPanics(t *testing.T) {
	n := NewNode(0, testSpec())
	cases := []*Activity{
		{Kind: CPU, Remaining: -1, Weight: 1},
		{Kind: CPU, Remaining: 1, Weight: -1},
		{Kind: CPU, Remaining: 1, Weight: 1, Pressure: -1},
		{Kind: CPU, Remaining: 1, Weight: 1, FootprintMB: -1},
	}
	for i, a := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: bad activity did not panic", i)
				}
			}()
			n.Add(a)
		}()
	}
}

func TestAggregatesResetWhenEmpty(t *testing.T) {
	n := NewNode(0, testSpec())
	for i := 0; i < 100; i++ {
		a := &Activity{Kind: CPU, Remaining: 1, Weight: 1, Pressure: 0.1, FootprintMB: 33.3}
		n.Add(a)
		n.Remove(a)
	}
	if n.Threads() != 0 || n.PressureLevel() != 0 || n.FootprintMB() != 0 {
		t.Fatalf("aggregates drifted: w=%v p=%v f=%v", n.Threads(), n.PressureLevel(), n.FootprintMB())
	}
}

func TestPressureForPeakPanics(t *testing.T) {
	for _, f := range []func(){
		func() { PressureForPeak(0, 6) },
		func() { PressureForPeak(5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("PressureForPeak with bad args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestKindString(t *testing.T) {
	if CPU.String() != "cpu" || Disk.String() != "disk" || Phantom.String() != "phantom" {
		t.Fatal("Kind.String")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind empty string")
	}
}

// Property: rates are non-negative and CPU shares always sum to the
// node throughput, for arbitrary activity mixes.
func TestQuickConservation(t *testing.T) {
	f := func(kinds []uint8) bool {
		n := NewNode(0, testSpec())
		var acts []*Activity
		for i, k := range kinds {
			if len(acts) > 40 {
				break
			}
			a := &Activity{
				Kind:        Kind(k % 3),
				Remaining:   float64(i%7) + 1,
				Weight:      float64(k%4) / 2,
				Pressure:    float64(k%5) / 25,
				FootprintMB: float64(k%11) * 50,
			}
			n.Add(a)
			acts = append(acts, a)
		}
		sum := 0.0
		for _, a := range acts {
			if a.Rate() < 0 {
				return false
			}
			if a.Kind == CPU {
				sum += a.Rate()
			}
		}
		return math.Abs(sum-n.CPUThroughput()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: efficiency is monotonically non-increasing in pressure.
func TestQuickEfficiencyMonotone(t *testing.T) {
	n := NewNode(0, testSpec())
	f := func(a, b uint16) bool {
		pa, pb := float64(a)/1000, float64(b)/1000
		if pa > pb {
			pa, pb = pb, pa
		}
		return n.efficiencyAt(pa, 0) >= n.efficiencyAt(pb, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
