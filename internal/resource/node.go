// Package resource models the compute resources of one worker node in
// the simulated cluster: CPU cores under processor sharing with a
// multiprogramming (thrashing) penalty, a shared disk, and memory
// accounting with a paging-collapse term.
//
// The model is fluid: at any instant every registered activity has a
// rate (work units per second). Rates change only when the activity set
// changes, so the simulation recomputes them on membership events and
// integrates linearly in between.
//
// Thrashing model. A node running a set of task threads delivers total
// CPU throughput
//
//	Θ = CoreSpeed · min(nCPU, Cores) · contention(P) · paging(mem)
//
// where P = Σ pressure_i over all threads (each job type contributes a
// calibrated per-task pressure capturing its disk/GC/memory-bandwidth
// appetite), contention(P) = 1 / (1 + P^Beta), and paging(mem) decays
// exponentially once resident footprints exceed usable RAM. For a
// single job with per-task pressure π this yields the classic rise-
// then-fall throughput curve of Fig. 1 with its peak near
// n* = (Beta−1)^(−1/Beta) / π.
package resource

import (
	"fmt"
	"math"
)

// Kind classifies what an activity consumes.
type Kind int

const (
	// CPU activities consume an equal share of the node's effective
	// CPU throughput. Remaining work is in core-seconds.
	CPU Kind = iota
	// Disk activities consume an equal share of disk bandwidth.
	// Remaining work is in MB.
	Disk
	// Phantom activities consume no CPU or disk share but still count
	// toward the multiprogramming level, pressure and memory footprint.
	// Shuffle fetcher threads are phantoms: their payload moves through
	// netsim, but their thread weight degrades the node.
	Phantom
)

func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case Disk:
		return "disk"
	case Phantom:
		return "phantom"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Spec describes the hardware of one node. The defaults (see
// DefaultSpec) mirror the paper's workbench machines.
type Spec struct {
	Cores      int     // schedulable cores
	CoreSpeed  float64 // CPU work units (core-seconds) retired per second per core; 1.0 by construction
	RAMMB      float64 // physical memory
	ReservedMB float64 // OS + DataNode + TaskTracker daemons
	DiskMBps   float64 // aggregate disk bandwidth
	Beta       float64 // contention curve exponent (sharpness of the thrashing knee)
	PagingK    float64 // paging collapse severity once footprints exceed RAM
	// ContentionScale multiplies task pressure on this node: a machine
	// with fewer cores or less memory bandwidth feels the same task mix
	// as proportionally more contention, moving its thrashing point
	// earlier. 1.0 is the reference (paper workbench) machine.
	ContentionScale float64
}

// DefaultSpec models one paper workbench node: 4×quad-core 2.53 GHz,
// 32 GB DDR3, a local SATA disk array, GbE NIC (network lives in
// netsim). CoreSpeed is 1.0 so CPU work is measured in core-seconds.
func DefaultSpec() Spec {
	return Spec{
		Cores:           16,
		CoreSpeed:       1.0,
		RAMMB:           32 * 1024,
		ReservedMB:      4 * 1024,
		DiskMBps:        300,
		Beta:            6,
		PagingK:         8,
		ContentionScale: 1,
	}
}

// Validate reports the first problem with the spec, or nil.
func (s Spec) Validate() error {
	switch {
	case s.Cores <= 0:
		return fmt.Errorf("resource: Cores = %d, must be positive", s.Cores)
	case s.CoreSpeed <= 0:
		return fmt.Errorf("resource: CoreSpeed = %v, must be positive", s.CoreSpeed)
	case s.RAMMB <= 0:
		return fmt.Errorf("resource: RAMMB = %v, must be positive", s.RAMMB)
	case s.ReservedMB < 0 || s.ReservedMB >= s.RAMMB:
		return fmt.Errorf("resource: ReservedMB = %v, must be in [0, RAMMB)", s.ReservedMB)
	case s.DiskMBps <= 0:
		return fmt.Errorf("resource: DiskMBps = %v, must be positive", s.DiskMBps)
	case s.Beta < 1:
		return fmt.Errorf("resource: Beta = %v, must be >= 1", s.Beta)
	case s.PagingK < 0:
		return fmt.Errorf("resource: PagingK = %v, must be >= 0", s.PagingK)
	case s.ContentionScale <= 0:
		return fmt.Errorf("resource: ContentionScale = %v, must be positive", s.ContentionScale)
	}
	return nil
}

// Activity is one resource-consuming piece of work on a node.
// Create it with fields set, then register via Node.Add.
type Activity struct {
	Kind        Kind
	Remaining   float64 // core-seconds (CPU) or MB (Disk); ignored for Phantom
	Weight      float64 // thread weight toward the multiprogramming level (usually 1, fetchers <1)
	Pressure    float64 // contention pressure contribution (job-calibrated)
	FootprintMB float64 // resident memory while active
	Label       string  // diagnostics

	node *Node
	rate float64
}

// Rate returns the activity's current work rate, valid until the next
// membership change on its node. Zero for unregistered activities.
func (a *Activity) Rate() float64 { return a.rate }

// Node tracks the activity set of one worker and computes fluid rates.
type Node struct {
	spec Spec
	id   int

	acts map[*Activity]struct{}

	// Cached aggregates, maintained incrementally.
	nCPU, nDisk int
	weight      float64
	pressure    float64
	footprintMB float64

	// Transient service-rate degradation (fault injection): effective
	// CPU throughput and disk bandwidth are multiplied by these factors.
	// 1.0 is the healthy node; a failing disk or a thermally throttled
	// CPU scales its factor down mid-run.
	cpuScale  float64
	diskScale float64

	// onChange, when set, runs after every membership change has
	// recomputed rates. The mr runtime uses it to mark the node's fluid
	// ops dirty instead of re-reading every op in the cluster.
	onChange func()
}

// NewNode builds a node from spec. Invalid specs panic: node specs are
// static configuration, so failing fast at construction is correct.
func NewNode(id int, spec Spec) *Node {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &Node{spec: spec, id: id, acts: make(map[*Activity]struct{}), cpuScale: 1, diskScale: 1}
}

// ID returns the node's cluster-wide identifier.
func (n *Node) ID() int { return n.id }

// SetChangeHook registers fn to run after every Add or Remove, once the
// node's activity rates have been recomputed. Pass nil to disable.
func (n *Node) SetChangeHook(fn func()) { n.onChange = fn }

// Spec returns the node's hardware description.
func (n *Node) Spec() Spec { return n.spec }

// Len reports how many activities are registered.
func (n *Node) Len() int { return len(n.acts) }

// ActiveCPU reports how many CPU activities are registered.
func (n *Node) ActiveCPU() int { return n.nCPU }

// Threads returns the current multiprogramming level (sum of weights).
func (n *Node) Threads() float64 { return n.weight }

// PressureLevel returns the current total contention pressure.
func (n *Node) PressureLevel() float64 { return n.pressure }

// FootprintMB returns the total resident memory of active work.
func (n *Node) FootprintMB() float64 { return n.footprintMB }

// Add registers a and recomputes rates for every activity on the node.
// Adding the same activity twice or an activity owned elsewhere panics.
func (n *Node) Add(a *Activity) {
	if a.node != nil {
		panic(fmt.Sprintf("resource: activity %q already registered", a.Label))
	}
	if a.Kind != Phantom && a.Remaining < 0 {
		panic(fmt.Sprintf("resource: activity %q has negative remaining work", a.Label))
	}
	if a.Weight < 0 || a.Pressure < 0 || a.FootprintMB < 0 {
		panic(fmt.Sprintf("resource: activity %q has negative weight/pressure/footprint", a.Label))
	}
	a.node = n
	n.acts[a] = struct{}{}
	switch a.Kind {
	case CPU:
		n.nCPU++
	case Disk:
		n.nDisk++
	}
	n.weight += a.Weight
	n.pressure += a.Pressure
	n.footprintMB += a.FootprintMB
	n.recompute()
	if n.onChange != nil {
		n.onChange()
	}
}

// Remove unregisters a and recomputes remaining rates. Removing an
// activity that is not on this node is a no-op, so teardown paths can
// remove unconditionally.
func (n *Node) Remove(a *Activity) {
	if a.node != n {
		return
	}
	delete(n.acts, a)
	a.node = nil
	a.rate = 0
	switch a.Kind {
	case CPU:
		n.nCPU--
	case Disk:
		n.nDisk--
	}
	n.weight -= a.Weight
	n.pressure -= a.Pressure
	n.footprintMB -= a.FootprintMB
	// Guard against drift from float accumulation on empty nodes.
	if len(n.acts) == 0 {
		n.weight, n.pressure, n.footprintMB = 0, 0, 0
	}
	n.recompute()
	if n.onChange != nil {
		n.onChange()
	}
}

// Efficiency returns the combined contention×paging factor at the
// node's current load, in (0, 1].
func (n *Node) Efficiency() float64 {
	return n.efficiencyAt(n.pressure, n.footprintMB)
}

func (n *Node) efficiencyAt(pressure, footprintMB float64) float64 {
	contention := 1 / (1 + math.Pow(pressure*n.spec.ContentionScale, n.spec.Beta))
	avail := n.spec.RAMMB - n.spec.ReservedMB
	over := (footprintMB - avail) / avail
	paging := 1.0
	if over > 0 {
		paging = math.Exp(-n.spec.PagingK * over)
	}
	return contention * paging
}

// CPUThroughput returns the node's total effective CPU throughput
// (core-seconds per second) at the current load.
func (n *Node) CPUThroughput() float64 {
	if n.nCPU == 0 {
		return 0
	}
	parallel := float64(n.nCPU)
	if parallel > float64(n.spec.Cores) {
		parallel = float64(n.spec.Cores)
	}
	return n.spec.CoreSpeed * parallel * n.Efficiency() * n.cpuScale
}

// SetServiceScale applies a transient service-rate degradation: cpu
// scales the node's effective CPU throughput, disk its disk bandwidth.
// Both must be in (0, 1] — a fully dead node is a tracker failure, not
// a degradation. Rates recompute immediately and the change hook fires
// so bound fluid ops reschedule.
func (n *Node) SetServiceScale(cpu, disk float64) {
	if !(cpu > 0 && cpu <= 1) || !(disk > 0 && disk <= 1) { // negated form rejects NaN too
		panic(fmt.Sprintf("resource: SetServiceScale(%v, %v): scales must be in (0,1]", cpu, disk))
	}
	if cpu == n.cpuScale && disk == n.diskScale {
		return
	}
	n.cpuScale, n.diskScale = cpu, disk
	n.recompute()
	if n.onChange != nil {
		n.onChange()
	}
}

// ServiceScale returns the node's current (cpu, disk) degradation
// factors; (1, 1) when healthy.
func (n *Node) ServiceScale() (cpu, disk float64) { return n.cpuScale, n.diskScale }

// Utilisation returns the fraction of the node's nominal peak CPU
// throughput (Cores × CoreSpeed) currently being delivered, in [0, 1].
// Contention and paging push effective throughput below nominal, so a
// thrashing node reads as *less* utilised — exactly the signal the
// paper's Fig. 1 curves plot.
func (n *Node) Utilisation() float64 {
	return n.CPUThroughput() / (float64(n.spec.Cores) * n.spec.CoreSpeed)
}

// ThroughputCurve predicts the total CPU throughput the node would
// deliver running exactly k identical tasks with the given per-task
// pressure and footprint. This is the analytic curve of Fig. 1 and is
// used by tests and the thrashing-point calibration.
func (n *Node) ThroughputCurve(k int, perTaskPressure, perTaskFootprintMB float64) float64 {
	if k <= 0 {
		return 0
	}
	parallel := float64(k)
	if parallel > float64(n.spec.Cores) {
		parallel = float64(n.spec.Cores)
	}
	eff := n.efficiencyAt(float64(k)*perTaskPressure, float64(k)*perTaskFootprintMB)
	return n.spec.CoreSpeed * parallel * eff
}

// PeakSlots returns the slot count (1..max) maximising ThroughputCurve
// for a task with the given pressure and footprint.
func (n *Node) PeakSlots(perTaskPressure, perTaskFootprintMB float64, max int) int {
	best, bestv := 1, 0.0
	for k := 1; k <= max; k++ {
		v := n.ThroughputCurve(k, perTaskPressure, perTaskFootprintMB)
		if v > bestv {
			best, bestv = k, v
		}
	}
	return best
}

// recompute refreshes every activity's rate from the current load.
func (n *Node) recompute() {
	cpuShare := 0.0
	if n.nCPU > 0 {
		cpuShare = n.CPUThroughput() / float64(n.nCPU)
	}
	diskShare := 0.0
	if n.nDisk > 0 {
		diskShare = n.spec.DiskMBps * n.diskScale / float64(n.nDisk)
	}
	for a := range n.acts {
		switch a.Kind {
		case CPU:
			a.rate = cpuShare
		case Disk:
			a.rate = diskShare
		case Phantom:
			a.rate = 0
		}
	}
}

// PressureForPeak returns the per-task pressure that places the
// single-job thrashing point (peak of the throughput curve) at
// peakSlots under exponent beta: π = (beta−1)^(−1/beta) / peakSlots.
// Job profiles are calibrated with this helper.
func PressureForPeak(peakSlots float64, beta float64) float64 {
	if peakSlots <= 0 {
		panic(fmt.Sprintf("resource: peakSlots %v must be positive", peakSlots))
	}
	if beta <= 1 {
		panic(fmt.Sprintf("resource: beta %v must be > 1", beta))
	}
	return math.Pow(beta-1, -1/beta) / peakSlots
}
