package par

import "testing"

// BenchmarkForDispatch measures pure dispatch overhead: n no-op
// iterations, so the cost is entirely channel handoff. The buffered
// work channel (capacity = workers) lets the dispatcher run a round
// ahead instead of performing a synchronous rendezvous per index.
func BenchmarkForDispatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := For(4096, func(int) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
