package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForRunsAll(t *testing.T) {
	var ran atomic.Int64
	if err := For(100, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d iterations, want 100", ran.Load())
	}
}

func TestForLowestIndexErrorWins(t *testing.T) {
	// Errors injected at two indices: the lower one must be reported,
	// no matter which goroutine finishes first. The high-index failure
	// returns instantly while the low-index one is delayed behind real
	// work, biasing the race toward the wrong answer if selection were
	// first-wins. Workers are pinned to 4 so the concurrent path runs
	// even when GOMAXPROCS is 1.
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for trial := 0; trial < 20; trial++ {
		err := ForN(64, 4, func(_, i int) error {
			switch i {
			case 3:
				// Busy work so index 3 reports after index 60.
				s := 0.0
				for k := 0; k < 100000; k++ {
					s += float64(k)
				}
				if s < 0 {
					return fmt.Errorf("unreachable")
				}
				return errLow
			case 60:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got %v, want error from lowest index", trial, err)
		}
	}
}

func TestForSerialPath(t *testing.T) {
	// n = 1 exercises the serial fallback, which stops at the first
	// error (lowest index by construction).
	want := errors.New("boom")
	if err := For(1, func(i int) error { return want }); !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
}

func TestForNWorkerIdentity(t *testing.T) {
	// Each worker id must be owned by exactly one goroutine, so
	// unsynchronised per-worker counters indexed by worker id are safe
	// and their sum accounts for every iteration. Run under -race this
	// also proves the ownership claim.
	const n, workers = 500, 4
	counts := make([]int64, workers)
	if err := ForN(n, workers, func(worker, i int) error {
		if worker < 0 || worker >= workers {
			return fmt.Errorf("worker id %d out of range", worker)
		}
		counts[worker]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("worker counts sum to %d, want %d", total, n)
	}
}

func TestForNSerialWorkerZero(t *testing.T) {
	// workers=1 routes everything through worker id 0 on the caller's
	// goroutine.
	if err := ForN(10, 1, func(worker, i int) error {
		if worker != 0 {
			return fmt.Errorf("serial path got worker %d", worker)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersEnvOverride(t *testing.T) {
	t.Setenv("SMR_WORKERS", "3")
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d with SMR_WORKERS=3", got)
	}
	t.Setenv("SMR_WORKERS", "0") // non-positive: ignored
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d with SMR_WORKERS=0, want >=1", got)
	}
	t.Setenv("SMR_WORKERS", "nope") // unparsable: ignored
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d with junk SMR_WORKERS, want >=1", got)
	}
}

func TestForHonoursWorkersEnv(t *testing.T) {
	// With SMR_WORKERS=2 a 100-wide For must still run every index.
	t.Setenv("SMR_WORKERS", "2")
	var ran atomic.Int64
	if err := For(100, func(i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("ran %d iterations, want 100", ran.Load())
	}
}

func TestForNUntilNeverStop(t *testing.T) {
	// A nil predicate and an always-false predicate both run everything.
	for _, stop := range []func() bool{nil, func() bool { return false }} {
		var ran atomic.Int64
		if err := ForNUntil(50, 4, stop, func(_, i int) error {
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if ran.Load() != 50 {
			t.Fatalf("ran %d iterations, want 50", ran.Load())
		}
	}
}

func TestForNUntilImmediateStop(t *testing.T) {
	// A predicate that is already true lets nothing start, on both the
	// serial and the concurrent path, and reports no error.
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForNUntil(50, workers, func() bool { return true }, func(_, i int) error {
			ran.Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: ran %d iterations after an immediate stop", workers, ran.Load())
		}
	}
}

func TestForNUntilStopsEarly(t *testing.T) {
	// Tripping the predicate from inside an iteration bounds how much
	// more can run: the dispatcher buffers at most one round ahead, so
	// after the trip at most (iterations already dispatched) finish —
	// never all n. Every index that does run, runs exactly once.
	const n = 10000
	for _, workers := range []int{1, 4} {
		var stopped atomic.Bool
		var ran atomic.Int64
		seen := make([]atomic.Int32, n)
		err := ForNUntil(n, workers, stopped.Load, func(_, i int) error {
			seen[i].Add(1)
			if ran.Add(1) == 5 {
				stopped.Store(true)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := ran.Load(); got < 5 || got == n {
			t.Errorf("workers=%d: ran %d of %d iterations; want >=5 and < n", workers, got, n)
		}
		for i := range seen {
			if c := seen[i].Load(); c > 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForNUntilErrorBeatsStop(t *testing.T) {
	// An error from an iteration that ran is reported even if the sweep
	// also stopped.
	want := errors.New("boom")
	var stopped atomic.Bool
	err := ForNUntil(100, 2, stopped.Load, func(_, i int) error {
		if i == 0 {
			stopped.Store(true)
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
}
