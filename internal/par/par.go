// Package par provides the shared worker-pool parallel-for used by the
// experiment harnesses and the fleet runner. Each simulation owns its
// cluster, clock and RNG, so independent runs parallelise perfectly;
// callers write results to pre-sized slices indexed by i, keeping
// output order deterministic regardless of scheduling.
//
// The worker count defaults to GOMAXPROCS and can be overridden by the
// SMR_WORKERS environment variable (or an explicit count via ForN) —
// useful for pinning benchmarks to a worker count and for scaling
// curves on machines whose core count differs from the target.
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
)

// Workers returns the default worker count: the value of the
// SMR_WORKERS environment variable when set to a positive integer,
// otherwise GOMAXPROCS. It is read per call, so tests can flip the
// override with t.Setenv.
func Workers() int {
	if s := os.Getenv("SMR_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for i in [0, n) across Workers() workers. When several
// iterations fail, the error from the lowest index is returned —
// deterministic regardless of which goroutine reported first.
func For(n int, fn func(i int) error) error {
	return ForN(n, 0, func(_, i int) error { return fn(i) })
}

// ForN is For with an explicit worker count (non-positive means
// Workers()) and the worker's identity passed to fn. Worker ids are
// dense in [0, workers); each id is owned by exactly one goroutine for
// the whole call, so fn may keep per-worker state (scratch arenas,
// pooled simulation substrate) in a slice indexed by worker without
// synchronisation.
func ForN(n, workers int, fn func(worker, i int) error) error {
	return ForNUntil(n, workers, nil, fn)
}

// ForNUntil is ForN with a stop predicate for resumable sweeps: stop
// is polled before each iteration is handed to a worker, and once it
// reports true no further iterations start — in-flight iterations
// finish normally and their results stand. Skipped iterations are not
// an error; the caller knows which iterations ran by what fn recorded
// (a journal, a result slice). stop may be called concurrently from
// every worker and must be safe for that; nil means never stop.
func ForNUntil(n, workers int, stop func() bool, fn func(worker, i int) error) error {
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if stop != nil && stop() {
				return nil
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		errIdx = -1
		minErr error
	)
	// One buffer slot per worker: the dispatcher stays a full round
	// ahead, so a worker finishing an iteration dequeues the next index
	// immediately instead of blocking on a rendezvous with the
	// dispatcher goroutine.
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range next {
				// Re-check on the worker side too: the dispatcher runs a
				// full round ahead, and a buffered index should not start
				// after the stop — only genuinely in-flight work finishes.
				if stop != nil && stop() {
					continue
				}
				if err := fn(worker, i); err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, minErr = i, err
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		if stop != nil && stop() {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return minErr
}
