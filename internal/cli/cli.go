// Package cli holds the option parsing and cluster assembly shared by
// the command-line tools, so smrsim/smrbench/localrun stay thin and the
// translation from flags to configurations is tested once.
package cli

import (
	"fmt"
	"os"
	"strings"

	"smapreduce/internal/arrival"
	"smapreduce/internal/core"
	"smapreduce/internal/mr"
	"smapreduce/internal/policy"
	"smapreduce/internal/puma"
	"smapreduce/internal/resource"
)

// ParseEngine maps a user-facing engine name to the core engine.
func ParseEngine(name string) (core.Engine, error) {
	switch strings.ToLower(name) {
	case "hadoopv1", "v1", "hadoop":
		return core.EngineHadoopV1, nil
	case "yarn":
		return core.EngineYARN, nil
	case "smapreduce", "smr":
		return core.EngineSMapReduce, nil
	case "fairshare", "fair-share":
		return core.EngineFairShare, nil
	case "capacityqueue", "capacity-queue", "capqueue":
		return core.EngineCapacityQueue, nil
	case "gametheoretic", "game-theoretic", "game":
		return core.EngineGameTheoretic, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (hadoopv1 | yarn | smapreduce | fairshare | capacityqueue | gametheoretic)", name)
	}
}

// BuildArrivals parses an open-arrival configuration: the argument is
// a file path when one is readable, otherwise inline JSON (mirroring
// the -chaos flag's convention).
func BuildArrivals(spec string) (arrival.Config, error) {
	data := []byte(spec)
	if b, err := os.ReadFile(spec); err == nil {
		data = b
	}
	cfg, err := arrival.ParseConfig(data)
	if err != nil {
		return arrival.Config{}, fmt.Errorf("arrival config %q: %w", spec, err)
	}
	return cfg, nil
}

// PolicyTenants derives the capacity-policy tenant list from an
// arrival configuration: names carry over, Priority becomes the
// fair-share weight (minimum 1), and capacity-queue guarantees split
// the cluster evenly across the declared tenants.
func PolicyTenants(cfg arrival.Config) []policy.Tenant {
	out := make([]policy.Tenant, len(cfg.Tenants))
	for i, t := range cfg.Tenants {
		w := float64(t.Priority)
		if w < 1 {
			w = 1
		}
		out[i] = policy.Tenant{
			Name:      t.Name,
			Weight:    w,
			Guarantee: 1 / float64(len(cfg.Tenants)),
		}
	}
	return out
}

// BuildCapacityPolicy returns the allocator implied by a capacity
// engine, configured for the given tenants, or nil for the paper's
// slot engines (which run without per-tenant caps).
func BuildCapacityPolicy(engine core.Engine, tenants []policy.Tenant) (mr.CapacityPolicy, error) {
	opts := policy.Options{Tenants: tenants}
	switch engine {
	case core.EngineFairShare:
		return policy.NewFairShare(opts)
	case core.EngineCapacityQueue:
		return policy.NewCapacityQueue(opts)
	case core.EngineGameTheoretic:
		return policy.NewGameTheoretic(opts)
	default:
		return nil, nil
	}
}

// ParseScheduler maps a scheduler name to the runtime kind.
func ParseScheduler(name string) (mr.SchedulerKind, error) {
	switch strings.ToLower(name) {
	case "fifo":
		return mr.FIFO, nil
	case "fair":
		return mr.Fair, nil
	case "priority":
		return mr.Priority, nil
	default:
		return 0, fmt.Errorf("unknown scheduler %q (fifo | fair | priority)", name)
	}
}

// ClusterOptions carries the cluster-shaping flags of the CLIs.
type ClusterOptions struct {
	Workers     int
	MapSlots    int
	ReduceSlots int
	Seed        uint64
	Scheduler   string
	Speculate   bool
	SlowNodes   int // last N nodes at half speed with doubled contention
}

// BuildCluster turns the options into a validated cluster config.
func BuildCluster(o ClusterOptions) (mr.Config, error) {
	cfg := mr.DefaultConfig()
	if o.Workers > 0 {
		cfg.Workers = o.Workers
		cfg.Net.Nodes = o.Workers
	}
	if o.MapSlots > 0 {
		cfg.MapSlots = o.MapSlots
		if cfg.MaxMapSlots < o.MapSlots {
			cfg.MaxMapSlots = o.MapSlots
		}
	}
	if o.ReduceSlots > 0 {
		cfg.ReduceSlots = o.ReduceSlots
		if cfg.MaxReduceSlots < o.ReduceSlots {
			cfg.MaxReduceSlots = o.ReduceSlots
		}
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	cfg.Speculation = o.Speculate
	if o.Scheduler != "" {
		kind, err := ParseScheduler(o.Scheduler)
		if err != nil {
			return mr.Config{}, err
		}
		cfg.Scheduler = kind
	}
	if o.SlowNodes > 0 {
		if o.SlowNodes >= cfg.Workers {
			return mr.Config{}, fmt.Errorf("slow-nodes %d must leave at least one full-speed worker", o.SlowNodes)
		}
		specs := make([]resource.Spec, cfg.Workers)
		for i := range specs {
			specs[i] = cfg.NodeSpec
			if i >= cfg.Workers-o.SlowNodes {
				specs[i].CoreSpeed *= 0.5
				specs[i].ContentionScale *= 2
			}
		}
		cfg.NodeSpecs = specs
	}
	if err := cfg.Validate(); err != nil {
		return mr.Config{}, err
	}
	return cfg, nil
}

// BuildJobs creates n identical job specs of a named benchmark,
// submitted stagger seconds apart.
func BuildJobs(bench string, inputGB float64, reduces, n int, stagger float64) ([]mr.JobSpec, error) {
	profile, err := puma.Get(bench)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("job count %d must be positive", n)
	}
	specs := make([]mr.JobSpec, n)
	for i := range specs {
		specs[i] = mr.JobSpec{
			Name:     fmt.Sprintf("%s-%d", bench, i+1),
			Profile:  profile,
			InputMB:  inputGB * 1024,
			Reduces:  reduces,
			SubmitAt: float64(i) * stagger,
		}
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}
