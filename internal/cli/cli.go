// Package cli holds the option parsing and cluster assembly shared by
// the command-line tools, so smrsim/smrbench/localrun stay thin and the
// translation from flags to configurations is tested once.
package cli

import (
	"fmt"
	"strings"

	"smapreduce/internal/core"
	"smapreduce/internal/mr"
	"smapreduce/internal/puma"
	"smapreduce/internal/resource"
)

// ParseEngine maps a user-facing engine name to the core engine.
func ParseEngine(name string) (core.Engine, error) {
	switch strings.ToLower(name) {
	case "hadoopv1", "v1", "hadoop":
		return core.EngineHadoopV1, nil
	case "yarn":
		return core.EngineYARN, nil
	case "smapreduce", "smr":
		return core.EngineSMapReduce, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (hadoopv1 | yarn | smapreduce)", name)
	}
}

// ParseScheduler maps a scheduler name to the runtime kind.
func ParseScheduler(name string) (mr.SchedulerKind, error) {
	switch strings.ToLower(name) {
	case "fifo":
		return mr.FIFO, nil
	case "fair":
		return mr.Fair, nil
	case "priority":
		return mr.Priority, nil
	default:
		return 0, fmt.Errorf("unknown scheduler %q (fifo | fair | priority)", name)
	}
}

// ClusterOptions carries the cluster-shaping flags of the CLIs.
type ClusterOptions struct {
	Workers     int
	MapSlots    int
	ReduceSlots int
	Seed        uint64
	Scheduler   string
	Speculate   bool
	SlowNodes   int // last N nodes at half speed with doubled contention
}

// BuildCluster turns the options into a validated cluster config.
func BuildCluster(o ClusterOptions) (mr.Config, error) {
	cfg := mr.DefaultConfig()
	if o.Workers > 0 {
		cfg.Workers = o.Workers
		cfg.Net.Nodes = o.Workers
	}
	if o.MapSlots > 0 {
		cfg.MapSlots = o.MapSlots
		if cfg.MaxMapSlots < o.MapSlots {
			cfg.MaxMapSlots = o.MapSlots
		}
	}
	if o.ReduceSlots > 0 {
		cfg.ReduceSlots = o.ReduceSlots
		if cfg.MaxReduceSlots < o.ReduceSlots {
			cfg.MaxReduceSlots = o.ReduceSlots
		}
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	cfg.Speculation = o.Speculate
	if o.Scheduler != "" {
		kind, err := ParseScheduler(o.Scheduler)
		if err != nil {
			return mr.Config{}, err
		}
		cfg.Scheduler = kind
	}
	if o.SlowNodes > 0 {
		if o.SlowNodes >= cfg.Workers {
			return mr.Config{}, fmt.Errorf("slow-nodes %d must leave at least one full-speed worker", o.SlowNodes)
		}
		specs := make([]resource.Spec, cfg.Workers)
		for i := range specs {
			specs[i] = cfg.NodeSpec
			if i >= cfg.Workers-o.SlowNodes {
				specs[i].CoreSpeed *= 0.5
				specs[i].ContentionScale *= 2
			}
		}
		cfg.NodeSpecs = specs
	}
	if err := cfg.Validate(); err != nil {
		return mr.Config{}, err
	}
	return cfg, nil
}

// BuildJobs creates n identical job specs of a named benchmark,
// submitted stagger seconds apart.
func BuildJobs(bench string, inputGB float64, reduces, n int, stagger float64) ([]mr.JobSpec, error) {
	profile, err := puma.Get(bench)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("job count %d must be positive", n)
	}
	specs := make([]mr.JobSpec, n)
	for i := range specs {
		specs[i] = mr.JobSpec{
			Name:     fmt.Sprintf("%s-%d", bench, i+1),
			Profile:  profile,
			InputMB:  inputGB * 1024,
			Reduces:  reduces,
			SubmitAt: float64(i) * stagger,
		}
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return specs, nil
}
