package cli

import (
	"testing"

	"smapreduce/internal/core"
	"smapreduce/internal/mr"
)

func TestParseEngine(t *testing.T) {
	cases := map[string]core.Engine{
		"hadoopv1": core.EngineHadoopV1, "v1": core.EngineHadoopV1, "Hadoop": core.EngineHadoopV1,
		"yarn": core.EngineYARN, "YARN": core.EngineYARN,
		"smapreduce": core.EngineSMapReduce, "SMR": core.EngineSMapReduce,
	}
	for in, want := range cases {
		got, err := ParseEngine(in)
		if err != nil || got != want {
			t.Fatalf("ParseEngine(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseEngine("spark"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestParseEngineCapacityNames(t *testing.T) {
	cases := map[string]core.Engine{
		"fairshare": core.EngineFairShare, "fair-share": core.EngineFairShare,
		"capacityqueue": core.EngineCapacityQueue, "capqueue": core.EngineCapacityQueue,
		"GameTheoretic": core.EngineGameTheoretic, "game": core.EngineGameTheoretic,
	}
	for in, want := range cases {
		got, err := ParseEngine(in)
		if err != nil || got != want {
			t.Fatalf("ParseEngine(%q) = %v, %v", in, got, err)
		}
	}
}

func TestBuildArrivalsInlineAndErrors(t *testing.T) {
	cfg, err := BuildArrivals(`{"horizon": 600, "tenants": [
		{"name": "a", "benchmarks": ["grep"], "mean_interarrival": 60,
		 "input_mb_min": 100, "input_mb_max": 200, "reduces": 4, "priority": 3}]}`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Horizon != 600 || len(cfg.Tenants) != 1 || cfg.Tenants[0].Name != "a" {
		t.Fatalf("parsed config wrong: %+v", cfg)
	}
	if _, err := BuildArrivals("/no/such/file.json"); err == nil {
		t.Fatal("unreadable path accepted as valid JSON")
	}
	if _, err := BuildArrivals(`{"tenants": []}`); err == nil {
		t.Fatal("empty tenant list accepted")
	}
}

func TestPolicyTenantsFromArrivals(t *testing.T) {
	cfg, err := BuildArrivals(`{"horizon": 600, "tenants": [
		{"name": "a", "benchmarks": ["grep"], "mean_interarrival": 60,
		 "input_mb_min": 100, "input_mb_max": 200, "reduces": 4, "priority": 3},
		{"name": "b", "benchmarks": ["terasort"], "mean_interarrival": 60,
		 "input_mb_min": 100, "input_mb_max": 200, "reduces": 4}]}`)
	if err != nil {
		t.Fatal(err)
	}
	ts := PolicyTenants(cfg)
	if len(ts) != 2 {
		t.Fatalf("tenants = %d", len(ts))
	}
	if ts[0].Weight != 3 || ts[1].Weight != 1 {
		t.Fatalf("priority->weight mapping wrong: %+v", ts)
	}
	if ts[0].Guarantee != 0.5 || ts[1].Guarantee != 0.5 {
		t.Fatalf("guarantees not split evenly: %+v", ts)
	}
	// The derived list must construct every capacity policy.
	for _, engine := range core.CapacityEngines() {
		p, err := BuildCapacityPolicy(engine, ts)
		if err != nil || p == nil {
			t.Fatalf("BuildCapacityPolicy(%v) = %v, %v", engine, p, err)
		}
	}
	if p, err := BuildCapacityPolicy(core.EngineSMapReduce, ts); err != nil || p != nil {
		t.Fatalf("slot engine should get no capacity policy, got %v, %v", p, err)
	}
}

func TestParseScheduler(t *testing.T) {
	if k, err := ParseScheduler("FIFO"); err != nil || k != mr.FIFO {
		t.Fatalf("fifo: %v %v", k, err)
	}
	if k, err := ParseScheduler("fair"); err != nil || k != mr.Fair {
		t.Fatalf("fair: %v %v", k, err)
	}
	if _, err := ParseScheduler("lottery"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestBuildClusterDefaultsAndOverrides(t *testing.T) {
	cfg, err := BuildCluster(ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	def := mr.DefaultConfig()
	if cfg.Workers != def.Workers || cfg.MapSlots != def.MapSlots {
		t.Fatalf("zero options changed defaults: %+v", cfg)
	}
	cfg, err = BuildCluster(ClusterOptions{Workers: 8, MapSlots: 20, ReduceSlots: 8, Seed: 9, Scheduler: "fair", Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 8 || cfg.MapSlots != 20 || cfg.MaxMapSlots != 20 ||
		cfg.ReduceSlots != 8 || cfg.MaxReduceSlots != 8 ||
		cfg.Seed != 9 || cfg.Scheduler != mr.Fair || !cfg.Speculation {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildClusterSlowNodes(t *testing.T) {
	cfg, err := BuildCluster(ClusterOptions{Workers: 4, SlowNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.NodeSpecs) != 4 {
		t.Fatalf("node specs = %d", len(cfg.NodeSpecs))
	}
	if cfg.NodeSpecs[0].CoreSpeed != cfg.NodeSpec.CoreSpeed {
		t.Fatal("fast node altered")
	}
	if cfg.NodeSpecs[3].CoreSpeed >= cfg.NodeSpec.CoreSpeed {
		t.Fatal("slow node not slowed")
	}
	if _, err := BuildCluster(ClusterOptions{Workers: 4, SlowNodes: 4}); err == nil {
		t.Fatal("all-slow cluster accepted")
	}
}

func TestBuildClusterRejectsBadScheduler(t *testing.T) {
	if _, err := BuildCluster(ClusterOptions{Scheduler: "bogus"}); err == nil {
		t.Fatal("bad scheduler accepted")
	}
}

func TestBuildJobs(t *testing.T) {
	specs, err := BuildJobs("grep", 10, 8, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("specs = %d", len(specs))
	}
	for i, s := range specs {
		if s.InputMB != 10*1024 || s.Reduces != 8 {
			t.Fatalf("spec %d: %+v", i, s)
		}
		if s.SubmitAt != float64(i)*5 {
			t.Fatalf("stagger wrong at %d: %v", i, s.SubmitAt)
		}
	}
	if _, err := BuildJobs("nope", 10, 8, 1, 0); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := BuildJobs("grep", 10, 8, 0, 0); err == nil {
		t.Fatal("zero jobs accepted")
	}
	if _, err := BuildJobs("grep", -1, 8, 1, 0); err == nil {
		t.Fatal("negative size accepted")
	}
}
