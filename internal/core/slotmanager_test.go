package core

import (
	"math"
	"strings"
	"testing"

	"smapreduce/internal/mr"
	"smapreduce/internal/puma"
	"smapreduce/internal/resource"
)

// smallCluster returns a 4-worker Dynamic-policy config for fast tests.
func smallCluster() mr.Config {
	cfg := mr.DefaultConfig()
	cfg.Workers = 4
	cfg.Net.Nodes = 4
	cfg.Policy = mr.Dynamic
	return cfg
}

func job(bench string, inputMB float64, reduces int) mr.JobSpec {
	return mr.JobSpec{Name: bench, Profile: puma.MustGet(bench), InputMB: inputMB, Reduces: reduces}
}

// runManaged runs one job on a small cluster under a fresh slot manager
// and returns the finished job plus the manager.
func runManaged(t *testing.T, smCfg SlotManagerConfig, spec mr.JobSpec) (*mr.Job, *SlotManager) {
	t.Helper()
	c := mr.MustNewCluster(smallCluster())
	m, err := NewSlotManager(smCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetController(m); err != nil {
		t.Fatal(err)
	}
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return jobs[0], m
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultSlotManagerConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	mutations := []func(*SlotManagerConfig){
		func(c *SlotManagerConfig) { c.Interval = -1 },
		func(c *SlotManagerConfig) { c.SlowStartFraction = 2 },
		func(c *SlotManagerConfig) { c.LowerBound = -1 },
		func(c *SlotManagerConfig) { c.UpperBound = c.LowerBound / 2 },
		func(c *SlotManagerConfig) { c.StabilizeDelay = -1 },
		func(c *SlotManagerConfig) { c.RateWindow = -1 },
		func(c *SlotManagerConfig) { c.SuspectConfirmations = -1 },
		func(c *SlotManagerConfig) { c.TailShufflePerReduceMB = -1 },
	}
	for i, mutate := range mutations {
		cfg := DefaultSlotManagerConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d passed validation", i)
		}
	}
}

func TestZeroConfigGetsPaperDefaults(t *testing.T) {
	m := MustNewSlotManager(SlotManagerConfig{})
	d := DefaultSlotManagerConfig()
	if m.cfg.Interval != d.Interval || m.cfg.SlowStartFraction != d.SlowStartFraction ||
		m.cfg.UpperBound != d.UpperBound || m.cfg.RateWindow != d.RateWindow {
		t.Fatalf("zero config not defaulted: %+v", m.cfg)
	}
	// The zero value must be the full algorithm, not an ablation.
	if m.cfg.DisableThrashDetection || m.cfg.DisableSlowStart || m.cfg.DisableTailBoost {
		t.Fatal("zero config disabled a feature")
	}
}

func TestNewSlotManagerRejectsInvalid(t *testing.T) {
	if _, err := NewSlotManager(SlotManagerConfig{Interval: -5}); err == nil {
		t.Fatal("invalid config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewSlotManager did not panic")
		}
	}()
	MustNewSlotManager(SlotManagerConfig{Interval: -5})
}

func TestMapHeavyJobGrowsMapSlots(t *testing.T) {
	j, m := runManaged(t, SlotManagerConfig{}, job("grep", 16*1024, 8))
	if !j.Finished() {
		t.Fatal("unfinished")
	}
	grew := false
	for _, d := range m.Decisions() {
		if d.MapTarget > smallCluster().MapSlots && strings.Contains(d.Reason, "map-heavy") {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("map-heavy job never grew map slots: %+v", m.Decisions())
	}
}

func TestManagedBeatsStaticOnMapHeavy(t *testing.T) {
	static := mr.MustNewCluster(func() mr.Config {
		c := smallCluster()
		c.Policy = mr.HadoopV1
		return c
	}())
	sj, err := static.Run(job("grep", 16*1024, 8))
	if err != nil {
		t.Fatal(err)
	}
	dj, _ := runManaged(t, SlotManagerConfig{}, job("grep", 16*1024, 8))
	if dj.ExecutionTime() >= sj[0].ExecutionTime() {
		t.Fatalf("managed (%v) not faster than static (%v)", dj.ExecutionTime(), sj[0].ExecutionTime())
	}
}

func TestThrashingDetectionCapsGrowth(t *testing.T) {
	// grep's per-node peak is 9; the manager must not push past it by
	// more than the detection lag (one step).
	_, m := runManaged(t, SlotManagerConfig{}, job("grep", 32*1024, 8))
	maxTarget := 0
	for _, d := range m.Decisions() {
		if d.MapTarget > maxTarget {
			maxTarget = d.MapTarget
		}
	}
	if maxTarget > int(puma.MustGet("grep").MapPeakSlots)+1 {
		t.Fatalf("map target reached %d, beyond grep's thrashing point", maxTarget)
	}
}

func TestThrashingRollbackLogged(t *testing.T) {
	// With a ceiling-free run long enough to overshoot, detection must
	// roll the target back and log the confirmation.
	_, m := runManaged(t, SlotManagerConfig{StabilizeDelay: 6, Interval: 3}, job("histogram-movies", 48*1024, 8))
	confirmed := false
	for _, d := range m.Decisions() {
		if strings.Contains(d.Reason, "thrashing confirmed") {
			confirmed = true
		}
	}
	if !confirmed {
		t.Skip("thrashing never confirmed in this configuration; growth stopped by balance instead")
	}
	if m.ceiling == 0 {
		t.Fatal("confirmation did not set a ceiling")
	}
}

func TestDisableThrashDetectionOvershoots(t *testing.T) {
	withDet, mDet := runManaged(t, SlotManagerConfig{}, job("histogram-movies", 32*1024, 8))
	without, mNo := runManaged(t, SlotManagerConfig{DisableThrashDetection: true}, job("histogram-movies", 32*1024, 8))
	maxT := func(m *SlotManager) int {
		mx := 0
		for _, d := range m.Decisions() {
			if d.MapTarget > mx {
				mx = d.MapTarget
			}
		}
		return mx
	}
	if maxT(mNo) <= maxT(mDet) {
		t.Fatalf("no-detection run did not overshoot: %d vs %d", maxT(mNo), maxT(mDet))
	}
	// Fig. 7's headline: without detection the job gets slower.
	if without.MapTime() <= withDet.MapTime() {
		t.Fatalf("no-detection map time %v not worse than %v", without.MapTime(), withDet.MapTime())
	}
}

func TestSlowStartDelaysFirstDecision(t *testing.T) {
	_, m := runManaged(t, SlotManagerConfig{}, job("grep", 16*1024, 8))
	if len(m.Decisions()) == 0 {
		t.Fatal("no decisions at all")
	}
	first := m.Decisions()[0].At
	_, mNo := runManaged(t, SlotManagerConfig{DisableSlowStart: true}, job("grep", 16*1024, 8))
	if len(mNo.Decisions()) == 0 {
		t.Fatal("no decisions without slow start")
	}
	firstNo := mNo.Decisions()[0].At
	if firstNo > first {
		t.Fatalf("slow-start run decided earlier (%v) than non-slow-start (%v)", first, firstNo)
	}
}

func TestTailStretchReleasesMapSlots(t *testing.T) {
	_, m := runManaged(t, SlotManagerConfig{}, job("terasort", 8*1024, 8))
	sawTail := false
	for _, d := range m.Decisions() {
		if strings.Contains(d.Reason, "tail") {
			sawTail = true
			if d.MapTarget > m.maxMaps {
				t.Fatalf("tail grew map slots: %+v", d)
			}
		}
	}
	if !sawTail {
		t.Fatal("no tail-stretch decision observed")
	}
}

func TestTailBoostOnlyForSmallShuffle(t *testing.T) {
	// grep shuffles almost nothing: the tail may boost reduce slots.
	_, mSmall := runManaged(t, SlotManagerConfig{}, job("grep", 16*1024, 8))
	boosted := false
	for _, d := range mSmall.Decisions() {
		if strings.Contains(d.Reason, "boosting reduce") {
			boosted = true
		}
	}
	if !boosted {
		t.Fatal("small-shuffle job never boosted reduce slots in the tail")
	}
	// terasort shuffles everything: the guard must hold reduce slots.
	_, mBig := runManaged(t, SlotManagerConfig{}, job("terasort", 8*1024, 8))
	for _, d := range mBig.Decisions() {
		if strings.Contains(d.Reason, "boosting reduce") {
			t.Fatalf("large-shuffle job boosted reduce slots: %+v", d)
		}
	}
}

func TestDisableTailBoost(t *testing.T) {
	_, m := runManaged(t, SlotManagerConfig{DisableTailBoost: true}, job("grep", 16*1024, 8))
	for _, d := range m.Decisions() {
		if strings.Contains(d.Reason, "boosting reduce") {
			t.Fatalf("tail boost fired while disabled: %+v", d)
		}
	}
}

func TestBalanceFactorEdgeCases(t *testing.T) {
	m := MustNewSlotManager(SlotManagerConfig{})
	// A job with no reducers at all is trivially map-heavy → +Inf.
	if f := m.balanceFactorFrom(mr.Stats{FrontTotalReduces: 0}, 100); !math.IsInf(f, 1) {
		t.Fatalf("f = %v, want +Inf", f)
	}
	// No output rate yet → NaN (no signal, hold position).
	if f := m.balanceFactorFrom(mr.Stats{FrontTotalReduces: 30}, 0); !math.IsNaN(f) {
		t.Fatalf("f = %v, want NaN", f)
	}
	// Front job's reducers not launched yet → NaN (no signal).
	if f := m.balanceFactorFrom(mr.Stats{FrontTotalReduces: 30, FrontRunningReduces: 0}, 100); !math.IsNaN(f) {
		t.Fatalf("f = %v, want NaN", f)
	}
	// Normal case: Rm = (15/30)·100 = 50, Rs = 200 → f = 4.
	s := mr.Stats{FrontTotalReduces: 30, FrontRunningReduces: 15, PotentialShuffleMBps: 200}
	if f := m.balanceFactorFrom(s, 100); math.Abs(f-4) > 1e-9 {
		t.Fatalf("f = %v, want 4", f)
	}
	// Measured shuffle above the potential estimate wins.
	s.ShuffleMBps = 300
	if f := m.balanceFactorFrom(s, 100); math.Abs(f-6) > 1e-9 {
		t.Fatalf("f = %v, want 6", f)
	}
}

func TestWindowRates(t *testing.T) {
	m := MustNewSlotManager(SlotManagerConfig{RateWindow: 10})
	r1, _, _ := m.windowRates(mr.Stats{Now: 0, MapInputProcessedMB: 0})
	if r1 != 0 {
		t.Fatalf("first sample rate = %v, want 0", r1)
	}
	r2, _, _ := m.windowRates(mr.Stats{Now: 5, MapInputProcessedMB: 50})
	if math.Abs(r2-10) > 1e-9 {
		t.Fatalf("rate = %v, want 10", r2)
	}
	// Old samples roll out of the window.
	for i := 1; i <= 10; i++ {
		m.windowRates(mr.Stats{Now: 5 + float64(i)*5, MapInputProcessedMB: 50 + float64(i)*100})
	}
	r, _, _ := m.windowRates(mr.Stats{Now: 60, MapInputProcessedMB: 1150})
	if math.Abs(r-20) > 1.0 {
		t.Fatalf("windowed rate = %v, want ≈20", r)
	}
	if len(m.samples) > 5 {
		t.Fatalf("window retained %d samples, expected pruning", len(m.samples))
	}
}

func TestDecisionsRecordTargets(t *testing.T) {
	_, m := runManaged(t, SlotManagerConfig{}, job("grep", 16*1024, 8))
	for _, d := range m.Decisions() {
		if d.MapTarget < 1 || d.ReduceTarget < 1 {
			t.Fatalf("decision with non-positive target: %+v", d)
		}
		if d.At < 0 {
			t.Fatalf("decision with negative time: %+v", d)
		}
		if d.Reason == "" {
			t.Fatalf("decision without reason: %+v", d)
		}
	}
	if m.MapTarget() < 1 || m.ReduceTarget() < 1 {
		t.Fatal("manager targets invalid after run")
	}
}

func TestMultiJobResetsLearning(t *testing.T) {
	c := mr.MustNewCluster(smallCluster())
	m := MustNewSlotManager(SlotManagerConfig{})
	if err := c.SetController(m); err != nil {
		t.Fatal(err)
	}
	specs := []mr.JobSpec{
		{Name: "g1", Profile: puma.MustGet("grep"), InputMB: 8 * 1024, Reduces: 4, SubmitAt: 0},
		{Name: "t2", Profile: puma.MustGet("terasort"), InputMB: 4 * 1024, Reduces: 4, SubmitAt: 5},
	}
	jobs, err := c.Run(specs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !j.Finished() {
			t.Fatalf("job %s unfinished", j.Spec.Name)
		}
	}
	// The manager must have tracked the head job transition.
	if m.headJob != jobs[1].ID {
		t.Fatalf("headJob = %d, want %d", m.headJob, jobs[1].ID)
	}
}

func TestEngineStrings(t *testing.T) {
	if EngineHadoopV1.String() != "HadoopV1" || EngineYARN.String() != "YARN" || EngineSMapReduce.String() != "SMapReduce" {
		t.Fatal("engine strings")
	}
	if Engine(9).String() == "" {
		t.Fatal("unknown engine empty")
	}
	if len(Engines()) != 3 {
		t.Fatal("Engines() must list all three systems")
	}
}

func TestRunUnknownEngine(t *testing.T) {
	if _, err := Run(Engine(42), Options{}, job("grep", 1024, 4)); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestRunBaselinesHaveNoDecisions(t *testing.T) {
	cfg := smallCluster()
	cfg.Policy = mr.HadoopV1 // overridden by engine anyway
	for _, e := range []Engine{EngineHadoopV1, EngineYARN} {
		res, err := Run(e, Options{Cluster: cfg}, job("grep", 2048, 4))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Decisions) != 0 {
			t.Fatalf("%v produced slot decisions", e)
		}
	}
}

func TestRunSMapReduceOnDefaults(t *testing.T) {
	res, err := Run(EngineSMapReduce, Options{Cluster: smallCluster()}, job("grep", 4096, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 || !res.Jobs[0].Finished() {
		t.Fatal("run incomplete")
	}
}

func TestResultAggregates(t *testing.T) {
	cfg := smallCluster()
	specs := []mr.JobSpec{
		{Name: "a", Profile: puma.MustGet("grep"), InputMB: 1024, Reduces: 4, SubmitAt: 0},
		{Name: "b", Profile: puma.MustGet("grep"), InputMB: 1024, Reduces: 4, SubmitAt: 5},
	}
	res, err := Run(EngineSMapReduce, Options{Cluster: cfg}, specs...)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanExecutionTime() <= 0 {
		t.Fatalf("mean exec = %v", res.MeanExecutionTime())
	}
	last := res.LastFinish()
	for _, j := range res.Jobs {
		if j.FinishedAt > last {
			t.Fatalf("LastFinish %v before job end %v", last, j.FinishedAt)
		}
	}
}

func TestRunRejectsBadSlotManagerConfig(t *testing.T) {
	_, err := Run(EngineSMapReduce, Options{SlotManager: SlotManagerConfig{Interval: -1}}, job("grep", 1024, 4))
	if err == nil {
		t.Fatal("bad slot manager config accepted")
	}
}

func TestScaleForNode(t *testing.T) {
	cfg := smallCluster()
	specs := make([]resource.Spec, cfg.Workers)
	for i := range specs {
		specs[i] = resource.DefaultSpec()
	}
	specs[0].Cores = 32 // 2x the mean-ish
	specs[3].Cores = 8  // 0.5x
	cfg.NodeSpecs = specs
	c := mr.MustNewCluster(cfg)
	m := MustNewSlotManager(SlotManagerConfig{PerNodeScaling: true})

	// Mean capacity = (32+16+16+8)/4 = 18.
	maps, reduces := m.scaleForNode(c, 0, 6, 2)
	if maps != 11 || reduces != 4 { // 6*32/18=10.67→11, 2*32/18=3.56→4
		t.Fatalf("big node scaled to %d/%d", maps, reduces)
	}
	maps, reduces = m.scaleForNode(c, 3, 6, 2)
	if maps != 3 || reduces != 1 { // 6*8/18=2.67→3, 2*8/18=0.89→1
		t.Fatalf("small node scaled to %d/%d", maps, reduces)
	}
	// Scaling never drops below one slot.
	maps, reduces = m.scaleForNode(c, 3, 1, 1)
	if maps < 1 || reduces < 1 {
		t.Fatalf("scaled below 1: %d/%d", maps, reduces)
	}
}

func TestPerNodeScalingAppliesDistinctTargets(t *testing.T) {
	cfg := smallCluster()
	specs := make([]resource.Spec, cfg.Workers)
	for i := range specs {
		specs[i] = resource.DefaultSpec()
		if i >= 2 {
			specs[i].Cores = 8
			specs[i].ContentionScale = 2
		}
	}
	cfg.NodeSpecs = specs
	c := mr.MustNewCluster(cfg)
	m := MustNewSlotManager(SlotManagerConfig{PerNodeScaling: true})
	if err := c.SetController(m); err != nil {
		t.Fatal(err)
	}
	// Drive one decision directly and inspect the per-tracker table.
	m.mapTarget, m.reduceTarget = 3, 2
	m.maxMaps, m.maxReduces = 16, 6
	m.setTargets(c, mr.Stats{Now: 1}, 6, 2, 1.5, "test")
	fastM, _ := c.JobTracker().SetDesiredSlotsProbe(0)
	slowM, _ := c.JobTracker().SetDesiredSlotsProbe(2)
	if fastM <= slowM {
		t.Fatalf("fast node target (%d) not above slow node (%d)", fastM, slowM)
	}
	// The cluster still completes a job under distinct targets.
	jobs, err := c.Run(job("grep", 8*1024, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("unfinished")
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{At: 12.5, MapTarget: 4, ReduceTarget: 2, Factor: 1.25, Reason: "x"}
	s := d.String()
	for _, want := range []string{"12.5", "maps=4", "reduces=2", "f=1.25", "x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("decision render %q missing %q", s, want)
		}
	}
	inf := Decision{Factor: math.Inf(1)}
	if !strings.Contains(inf.String(), "f=+Inf") {
		t.Fatalf("inf render: %q", inf.String())
	}
	nan := Decision{Factor: math.NaN()}
	if !strings.Contains(nan.String(), "f=-") {
		t.Fatalf("nan render: %q", nan.String())
	}
}
