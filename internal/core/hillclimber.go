package core

import (
	"fmt"

	"smapreduce/internal/mr"
)

// HillClimber is a model-free baseline controller: it ignores the
// paper's balance factor and the map/reduce barrier entirely and
// simply hill-climbs the map slot count on measured aggregate map
// throughput — additive increase while throughput rises, step back
// when it falls.
//
// It exists to quantify what the paper's model buys: on map-heavy jobs
// pure hill climbing finds the same thrashing point, but on
// reduce-heavy jobs it keeps pushing map throughput that the shuffle
// cannot absorb, inflating the post-barrier tail that SMapReduce's
// balance factor exists to avoid.
type HillClimber struct {
	// Interval between decisions, seconds (default 5).
	Period float64
	// Window over which throughput is measured (default 24 s).
	Window float64

	target       int
	maxMaps      int
	reduceTarget int
	lastRate     float64
	lastDir      int
	samples      []hcSample
	decisions    []Decision
}

type hcSample struct{ t, inMB float64 }

// NewHillClimber returns a hill climber with default tuning.
func NewHillClimber() *HillClimber {
	return &HillClimber{Period: 5, Window: 24}
}

// Interval implements mr.Controller.
func (h *HillClimber) Interval() float64 { return h.Period }

// Decisions returns the decision log.
func (h *HillClimber) Decisions() []Decision { return h.decisions }

// Tick implements mr.Controller.
func (h *HillClimber) Tick(c *mr.Cluster) {
	s := c.Snapshot()
	if h.target == 0 {
		cfg := c.Config()
		h.target = cfg.MapSlots
		h.reduceTarget = cfg.ReduceSlots
		h.maxMaps = cfg.MaxMapSlots
	}
	if s.HeadJobID < 0 {
		return
	}

	h.samples = append(h.samples, hcSample{t: s.Now, inMB: s.MapInputProcessedMB})
	cut := s.Now - h.Window
	for len(h.samples) > 2 && h.samples[1].t <= cut {
		h.samples = h.samples[1:]
	}
	old := h.samples[0]
	dt := s.Now - old.t
	if dt <= 0 {
		return
	}
	rate := (s.MapInputProcessedMB - old.inMB) / dt
	if rate <= 0 {
		return
	}
	defer func() { h.lastRate = rate }()

	if h.lastRate == 0 {
		h.set(c, s, h.target+1, "first sample: probe upward")
		return
	}
	switch {
	case h.lastDir > 0 && rate < h.lastRate*0.98:
		// The last increase hurt: step back.
		if h.target > 1 {
			h.set(c, s, h.target-1, "throughput fell: step back")
		} else {
			h.lastDir = 0
		}
	case rate >= h.lastRate*0.98:
		if h.target < h.maxMaps {
			h.set(c, s, h.target+1, "throughput holding: probe upward")
		}
	default:
		h.lastDir = 0
	}
}

// set pushes a new uniform map target.
func (h *HillClimber) set(c *mr.Cluster, s mr.Stats, target int, reason string) {
	h.lastDir = 0
	if target > h.target {
		h.lastDir = 1
	} else if target < h.target {
		h.lastDir = -1
	}
	h.target = target
	jt := c.JobTracker()
	for _, tt := range c.Trackers() {
		jt.SetDesiredSlots(tt.ID(), target, h.reduceTarget)
	}
	h.decisions = append(h.decisions, Decision{
		At: s.Now, MapTarget: target, ReduceTarget: h.reduceTarget,
		Reason: fmt.Sprintf("hill-climb: %s", reason),
	})
}

// RunWithController executes jobs under the Dynamic policy with an
// arbitrary controller — the harness used to compare SMapReduce's slot
// manager against alternative control laws.
func RunWithController(ctrl mr.Controller, cluster mr.Config, specs ...mr.JobSpec) ([]*mr.Job, error) {
	cluster.Policy = mr.Dynamic
	c, err := mr.NewCluster(cluster)
	if err != nil {
		return nil, err
	}
	if err := c.SetController(ctrl); err != nil {
		return nil, err
	}
	return c.Run(specs...)
}
