package core

import (
	"fmt"

	"smapreduce/internal/mr"
	"smapreduce/internal/stats"
	"smapreduce/internal/telemetry"
	"smapreduce/internal/trace"
)

// Engine selects which of the three evaluated systems runs a workload.
type Engine int

const (
	// EngineHadoopV1 is the static-slot baseline.
	EngineHadoopV1 Engine = iota
	// EngineYARN is the container baseline with map priority.
	EngineYARN
	// EngineSMapReduce is HadoopV1 plus the dynamic slot manager.
	EngineSMapReduce
)

func (e Engine) String() string {
	switch e {
	case EngineHadoopV1:
		return "HadoopV1"
	case EngineYARN:
		return "YARN"
	case EngineSMapReduce:
		return "SMapReduce"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Engines lists the three systems in the order the paper plots them.
func Engines() []Engine {
	return []Engine{EngineHadoopV1, EngineYARN, EngineSMapReduce}
}

// Options configures a Run.
type Options struct {
	// Cluster is the base cluster configuration; its Policy field is
	// overridden by the chosen engine. Zero value means mr.DefaultConfig.
	Cluster mr.Config
	// SlotManager tunes the SMapReduce controller; ignored for the
	// baselines. Zero value means paper defaults.
	SlotManager SlotManagerConfig
	// Trace, when non-nil, receives runtime trace lines.
	Trace func(format string, args ...any)
	// Telemetry, when non-nil, receives the cluster's probe series
	// (and, on SMapReduce, the slot manager's) sampled over the run.
	Telemetry *telemetry.Collector
	// Tracer, when non-nil, records span/instant traces of the run
	// (task lifecycles, slot-manager decisions, flows by verbosity).
	Tracer *trace.Tracer
	// Sim, when non-nil, supplies recycled simulation substrate (event
	// arena, fabric) the cluster is built on instead of fresh
	// allocations — the fleet runner's per-worker reuse hook. See
	// mr.SimState for the aliasing rules.
	Sim *mr.SimState
	// Events, when true, attaches the structured event log; it is
	// returned on Result.Events.
	Events bool
}

// Result is the outcome of running a workload on one engine.
type Result struct {
	Engine Engine
	Jobs   []*mr.Job
	// Decisions is the slot manager's log (SMapReduce only).
	Decisions []Decision
	// Audits carries the full-input audit record behind each decision,
	// index-aligned with Decisions (SMapReduce only).
	Audits []AuditRecord
	// Events is the structured event log, non-nil when Options.Events
	// was set.
	Events *mr.EventLog
	// Cluster is the cluster the run executed on, for post-run
	// inspection (Snapshot, reports). When the run used Options.Sim,
	// the cluster's substrate is recycled by the *next* run on that
	// SimState — finish reading before starting another run.
	Cluster *mr.Cluster
}

// Run executes the given jobs on the chosen engine and returns the
// completed jobs with their timing milestones.
func Run(engine Engine, opts Options, specs ...mr.JobSpec) (*Result, error) {
	cfg := opts.Cluster
	if cfg.Workers == 0 { // zero value: adopt defaults
		cfg = mr.DefaultConfig()
	}
	switch engine {
	case EngineHadoopV1:
		cfg.Policy = mr.HadoopV1
	case EngineYARN:
		cfg.Policy = mr.YARN
	case EngineSMapReduce:
		cfg.Policy = mr.Dynamic
	default:
		return nil, fmt.Errorf("core: unknown engine %v", engine)
	}

	c, err := mr.NewClusterReusing(cfg, opts.Sim)
	if err != nil {
		return nil, err
	}
	c.Trace = opts.Trace

	res := &Result{Engine: engine, Cluster: c}
	if opts.Events {
		res.Events = c.EnableEventLog(0)
	}
	var mgr *SlotManager
	if engine == EngineSMapReduce {
		mgr, err = NewSlotManager(opts.SlotManager)
		if err != nil {
			return nil, err
		}
		if err := c.SetController(mgr); err != nil {
			return nil, err
		}
	}
	if opts.Telemetry != nil {
		c.EnableTelemetry(opts.Telemetry)
		if mgr != nil {
			mgr.RegisterTelemetry(opts.Telemetry)
		}
	}
	if opts.Tracer.Enabled() {
		c.EnableTracing(opts.Tracer)
		if mgr != nil {
			mgr.AttachTracer(opts.Tracer)
		}
	}

	jobs, err := c.Run(specs...)
	if err != nil {
		return nil, err
	}
	res.Jobs = jobs
	if mgr != nil {
		res.Decisions = mgr.Decisions()
		res.Audits = mgr.Explain()
	}
	return res, nil
}

// MeanExecutionTime averages execution time over the result's jobs.
func (r *Result) MeanExecutionTime() float64 {
	times := make([]float64, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		times = append(times, j.ExecutionTime())
	}
	return stats.Mean(times)
}

// LastFinish returns the completion time of the last job to finish.
func (r *Result) LastFinish() float64 {
	last := 0.0
	for _, j := range r.Jobs {
		if j.FinishedAt > last {
			last = j.FinishedAt
		}
	}
	return last
}
