package core

import (
	"fmt"

	"smapreduce/internal/mr"
	"smapreduce/internal/policy"
	"smapreduce/internal/stats"
	"smapreduce/internal/telemetry"
	"smapreduce/internal/trace"
)

// Engine selects which of the three evaluated systems runs a workload.
type Engine int

const (
	// EngineHadoopV1 is the static-slot baseline.
	EngineHadoopV1 Engine = iota
	// EngineYARN is the container baseline with map priority.
	EngineYARN
	// EngineSMapReduce is HadoopV1 plus the dynamic slot manager.
	EngineSMapReduce
	// EngineFairShare is HadoopV1 slots plus the weighted fair-share
	// capacity policy dividing task capacity among tenants.
	EngineFairShare
	// EngineCapacityQueue is HadoopV1 slots plus capacity queues:
	// per-tenant guarantees with elastic lending.
	EngineCapacityQueue
	// EngineGameTheoretic is HadoopV1 slots plus the per-control-period
	// proportional-fairness (Nash bargaining) allocator.
	EngineGameTheoretic
)

func (e Engine) String() string {
	switch e {
	case EngineHadoopV1:
		return "HadoopV1"
	case EngineYARN:
		return "YARN"
	case EngineSMapReduce:
		return "SMapReduce"
	case EngineFairShare:
		return "FairShare"
	case EngineCapacityQueue:
		return "CapacityQueue"
	case EngineGameTheoretic:
		return "GameTheoretic"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Engines lists the three systems in the order the paper plots them.
func Engines() []Engine {
	return []Engine{EngineHadoopV1, EngineYARN, EngineSMapReduce}
}

// CapacityEngines lists the multi-tenant capacity engines in shoot-out
// order.
func CapacityEngines() []Engine {
	return []Engine{EngineFairShare, EngineCapacityQueue, EngineGameTheoretic}
}

// Options configures a Run.
type Options struct {
	// Cluster is the base cluster configuration; its Policy field is
	// overridden by the chosen engine. Zero value means mr.DefaultConfig.
	Cluster mr.Config
	// SlotManager tunes the SMapReduce controller; ignored for the
	// baselines. Zero value means paper defaults.
	SlotManager SlotManagerConfig
	// Trace, when non-nil, receives runtime trace lines.
	Trace func(format string, args ...any)
	// Telemetry, when non-nil, receives the cluster's probe series
	// (and, on SMapReduce, the slot manager's) sampled over the run.
	Telemetry *telemetry.Collector
	// Tracer, when non-nil, records span/instant traces of the run
	// (task lifecycles, slot-manager decisions, flows by verbosity).
	Tracer *trace.Tracer
	// Sim, when non-nil, supplies recycled simulation substrate (event
	// arena, fabric) the cluster is built on instead of fresh
	// allocations — the fleet runner's per-worker reuse hook. See
	// mr.SimState for the aliasing rules.
	Sim *mr.SimState
	// Events, when true, attaches the structured event log; it is
	// returned on Result.Events.
	Events bool
	// Capacity attaches a multi-tenant capacity policy to the run. The
	// capacity engines build their own policy when this is nil; for the
	// other engines nil means no capacity management (the legacy
	// single-tenant behaviour).
	Capacity mr.CapacityPolicy
	// Tenants configures per-tenant weights and guarantees for the
	// policies the capacity engines build. Ignored when Capacity is set.
	Tenants []policy.Tenant
	// Arrivals, when non-nil, replaces the fixed spec list with an open
	// arrival process: jobs are pulled from the source as virtual time
	// advances. Run must then be called with no specs.
	Arrivals mr.ArrivalSource
	// Prepare, when non-nil, runs on the fully assembled cluster —
	// controller, capacity policy, telemetry, tracing and event log
	// already attached — just before the workload starts. The serve
	// mode uses it to arm chaos schedules and the progress hook; a
	// returned error aborts the run.
	Prepare func(c *mr.Cluster) error
}

// Result is the outcome of running a workload on one engine.
type Result struct {
	Engine Engine
	Jobs   []*mr.Job
	// Decisions is the slot manager's log (SMapReduce only).
	Decisions []Decision
	// Audits carries the full-input audit record behind each decision,
	// index-aligned with Decisions (SMapReduce only).
	Audits []AuditRecord
	// Events is the structured event log, non-nil when Options.Events
	// was set.
	Events *mr.EventLog
	// Cluster is the cluster the run executed on, for post-run
	// inspection (Snapshot, reports). When the run used Options.Sim,
	// the cluster's substrate is recycled by the *next* run on that
	// SimState — finish reading before starting another run.
	Cluster *mr.Cluster
	// Capacity is the applied capacity decision log, non-empty when a
	// capacity policy was attached.
	Capacity []mr.CapacityDecision
}

// Run executes the given jobs on the chosen engine and returns the
// completed jobs with their timing milestones.
func Run(engine Engine, opts Options, specs ...mr.JobSpec) (*Result, error) {
	cfg := opts.Cluster
	if cfg.Workers == 0 { // zero value: adopt defaults
		cfg = mr.DefaultConfig()
	}
	capacity := opts.Capacity
	switch engine {
	case EngineHadoopV1:
		cfg.Policy = mr.HadoopV1
	case EngineYARN:
		cfg.Policy = mr.YARN
	case EngineSMapReduce:
		cfg.Policy = mr.Dynamic
	case EngineFairShare, EngineCapacityQueue, EngineGameTheoretic:
		// Capacity engines divide tenant caps on top of static slots, so
		// the shoot-out isolates the allocation policy from the slot
		// mechanics.
		cfg.Policy = mr.HadoopV1
		if capacity == nil {
			var err error
			popts := policy.Options{Tenants: opts.Tenants}
			switch engine {
			case EngineFairShare:
				capacity, err = policy.NewFairShare(popts)
			case EngineCapacityQueue:
				capacity, err = policy.NewCapacityQueue(popts)
			default:
				capacity, err = policy.NewGameTheoretic(popts)
			}
			if err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("core: unknown engine %v", engine)
	}

	c, err := mr.NewClusterReusing(cfg, opts.Sim)
	if err != nil {
		return nil, err
	}
	c.Trace = opts.Trace

	res := &Result{Engine: engine, Cluster: c}
	if opts.Events {
		res.Events = c.EnableEventLog(0)
	}
	if capacity != nil {
		if err := c.SetCapacityPolicy(capacity); err != nil {
			return nil, err
		}
	}
	var mgr *SlotManager
	if engine == EngineSMapReduce {
		mgr, err = NewSlotManager(opts.SlotManager)
		if err != nil {
			return nil, err
		}
		if err := c.SetController(mgr); err != nil {
			return nil, err
		}
	}
	if opts.Telemetry != nil {
		c.EnableTelemetry(opts.Telemetry)
		if mgr != nil {
			mgr.RegisterTelemetry(opts.Telemetry)
		}
	}
	if opts.Tracer.Enabled() {
		c.EnableTracing(opts.Tracer)
		if mgr != nil {
			mgr.AttachTracer(opts.Tracer)
		}
	}

	if opts.Prepare != nil {
		if err := opts.Prepare(c); err != nil {
			return nil, err
		}
	}

	var jobs []*mr.Job
	if opts.Arrivals != nil {
		if len(specs) > 0 {
			return nil, fmt.Errorf("core: both Arrivals and %d fixed specs given", len(specs))
		}
		jobs, err = c.RunArrivals(opts.Arrivals)
	} else {
		jobs, err = c.Run(specs...)
	}
	if err != nil {
		return nil, err
	}
	res.Jobs = jobs
	if mgr != nil {
		res.Decisions = mgr.Decisions()
		res.Audits = mgr.Explain()
	}
	if capacity != nil {
		res.Capacity = c.CapacityDecisions()
	}
	return res, nil
}

// MeanExecutionTime averages execution time over the result's jobs.
func (r *Result) MeanExecutionTime() float64 {
	times := make([]float64, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		times = append(times, j.ExecutionTime())
	}
	return stats.Mean(times)
}

// LastFinish returns the completion time of the last job to finish.
func (r *Result) LastFinish() float64 {
	last := 0.0
	for _, j := range r.Jobs {
		if j.FinishedAt > last {
			last = j.FinishedAt
		}
	}
	return last
}

// LatencyPercentile returns the p-th percentile (0..100) of per-job
// latency — submission to finish — over the result's jobs.
func (r *Result) LatencyPercentile(p float64) float64 {
	times := make([]float64, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		times = append(times, j.ExecutionTime())
	}
	return stats.Percentile(times, p)
}

// SLOMisses counts jobs that finished past their latency objective.
// Jobs without an SLO never miss.
func (r *Result) SLOMisses() int {
	n := 0
	for _, j := range r.Jobs {
		if j.SLOMissed() {
			n++
		}
	}
	return n
}
