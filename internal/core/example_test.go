package core_test

import (
	"fmt"

	"smapreduce/internal/core"
	"smapreduce/internal/mr"
	"smapreduce/internal/puma"
)

// ExampleRun compares the three engines on one workload and prints the
// structural outcome (virtual times vary with calibration; the ordering
// of engines and the presence of slot decisions are the stable facts).
func ExampleRun() {
	cluster := mr.DefaultConfig()
	cluster.Workers = 4
	cluster.Net.Nodes = 4
	spec := mr.JobSpec{
		Name:    "histogram-ratings",
		Profile: puma.MustGet("histogram-ratings"),
		InputMB: 8 << 10,
		Reduces: 8,
	}
	var v1, smr float64
	for _, engine := range core.Engines() {
		res, err := core.Run(engine, core.Options{Cluster: cluster}, spec)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		switch engine {
		case core.EngineHadoopV1:
			v1 = res.Jobs[0].ExecutionTime()
		case core.EngineSMapReduce:
			smr = res.Jobs[0].ExecutionTime()
			fmt.Println("slot decisions made:", len(res.Decisions) > 0)
		}
	}
	fmt.Println("SMapReduce faster than HadoopV1:", smr < v1)
	// Output:
	// slot decisions made: true
	// SMapReduce faster than HadoopV1: true
}
