package core

import (
	"fmt"
	"os"
	"reflect"
	"testing"

	"smapreduce/internal/mr"
	"smapreduce/internal/puma"
)

// jobMilestones is the externally observable outcome of one job; the
// pooled and unpooled runs must agree on every field exactly.
type jobMilestones struct {
	Name                string
	Submitted           float64
	Started             float64
	BarrierAt           float64
	FinishedAt          float64
	ShuffledMB          float64
	SpeculativeLaunched int
	SpeculativeWins     int
}

func runPoolVerify(t *testing.T, noPool bool, inputMB float64, jobs int) ([]jobMilestones, []Decision, []AuditRecord) {
	t.Helper()
	cfg := mr.DefaultConfig()
	cfg.Seed = 11
	cfg.OutputReplication = 2
	cfg.NoPooling = noPool
	names := puma.Names()
	specs := make([]mr.JobSpec, 0, jobs)
	for i := 0; i < jobs; i++ {
		name := names[i%len(names)]
		specs = append(specs, mr.JobSpec{
			Name:     name,
			Profile:  puma.MustGet(name),
			InputMB:  inputMB,
			Reduces:  4,
			SubmitAt: float64(i) * 2,
		})
	}
	res, err := Run(EngineSMapReduce, Options{Cluster: cfg}, specs...)
	if err != nil {
		t.Fatalf("Run (noPool=%v): %v", noPool, err)
	}
	ms := make([]jobMilestones, len(res.Jobs))
	for i, j := range res.Jobs {
		ms[i] = jobMilestones{
			Name:                j.Spec.Name,
			Submitted:           j.Submitted,
			Started:             j.Started,
			BarrierAt:           j.BarrierAt,
			FinishedAt:          j.FinishedAt,
			ShuffledMB:          j.ShuffledMB,
			SpeculativeLaunched: j.SpeculativeLaunched,
			SpeculativeWins:     j.SpeculativeWins,
		}
	}
	return ms, res.Decisions, res.Audits
}

// TestPoolVerifyDifferential runs the full SMapReduce engine — slot
// manager, decision log and audit trail included — with object pooling
// on and off, and requires bit-identical output. This is the engine-
// level counterpart of mr's pooled-vs-unpooled test: any reuse bug that
// perturbs timing shifts a heartbeat, which shifts a slot decision,
// which diverges the audit log.
//
// SMR_POOL_VERIFY=1 arms the figure-scale variant (the Figure 4-sized
// workload); the default keeps the short-mode cost small.
func TestPoolVerifyDifferential(t *testing.T) {
	inputMB, jobs := 1024.0, 3
	if os.Getenv("SMR_POOL_VERIFY") == "1" {
		inputMB, jobs = 10240.0, 6
	} else if testing.Short() {
		inputMB, jobs = 512.0, 2
	}

	pMs, pDec, pAud := runPoolVerify(t, false, inputMB, jobs)
	uMs, uDec, uAud := runPoolVerify(t, true, inputMB, jobs)

	if !reflect.DeepEqual(pMs, uMs) {
		t.Fatalf("job milestones diverge:\npooled   %+v\nunpooled %+v", pMs, uMs)
	}
	// Decision.Factor and several audit floats are legitimately NaN
	// (thrash/tail decisions), and NaN != NaN breaks DeepEqual on
	// identical logs. Both structs are flat value types, so the %+v
	// rendering — shortest round-trip floats, "NaN" for NaN — is an
	// exact, NaN-tolerant equality.
	if p, u := fmt.Sprintf("%+v", pDec), fmt.Sprintf("%+v", uDec); p != u {
		t.Fatalf("decision logs diverge (%d vs %d entries):\npooled   %s\nunpooled %s",
			len(pDec), len(uDec), p, u)
	}
	if p, u := fmt.Sprintf("%+v", pAud), fmt.Sprintf("%+v", uAud); p != u {
		t.Fatalf("audit records diverge (%d vs %d entries):\npooled   %s\nunpooled %s",
			len(pAud), len(uAud), p, u)
	}
	if len(pDec) == 0 {
		t.Fatal("workload produced no slot decisions; differential is vacuous")
	}
}
