package core

import (
	"fmt"
	"math"
	"strings"
)

// Decision reason vocabulary. These strings are the stable contract
// the CLIs, tests and the audit trail key on; change them only with a
// deliberate schema bump (see DESIGN.md trace schema).
const (
	ReasonMapHeavy    = "map-heavy: shuffle ahead of maps"
	ReasonReduceHeavy = "reduce-heavy: shuffle lagging"
	ReasonTailRelease = "tail: releasing map slots"
	ReasonTailBoost   = "tail: small shuffle, boosting reduce slots"
	// ReasonThrashingPrefix starts every thrashing-confirmation reason;
	// the full string carries the rolled-back slot count.
	ReasonThrashingPrefix = "thrashing confirmed at "
)

// ReasonThrashing renders the thrashing-confirmation reason for the
// slot count the manager is rolling back from.
func ReasonThrashing(mapSlots int) string {
	return fmt.Sprintf("%s%d map slots", ReasonThrashingPrefix, mapSlots)
}

// AuditRecord carries the complete inputs and outputs of one
// setTargets decision, so any slot move can be replayed and explained
// after the run: the windowed rates the balance factor was computed
// from, the factor itself against its bounds, the thrashing-detector
// state, and the job progress snapshot the manager saw.
type AuditRecord struct {
	At float64

	// Targets before and after the decision.
	PrevMapTarget    int
	PrevReduceTarget int
	MapTarget        int
	ReduceTarget     int

	// The decision itself.
	Factor float64 // balance factor f (NaN for thrash/tail decisions)
	Reason string

	// Windowed rates (MB/s) feeding the balance factor.
	InRate   float64 // map input processing rate Rt proxy
	OutRate  float64 // map output production rate Rt
	ShufRate float64 // shuffle movement rate over the window

	// Instantaneous shuffle signals from the cluster snapshot.
	ShuffleMBps          float64
	PotentialShuffleMBps float64

	// Config bounds the factor was judged against.
	LowerBound float64
	UpperBound float64

	// Thrashing-detector state at decision time.
	Suspects int
	Ceiling  int
	InTail   bool

	// Job progress snapshot.
	DoneMaps            int
	TotalMaps           int
	PendingMaps         int
	RunningMaps         int
	FrontJob            int
	FrontRunningReduces int
	FrontTotalReduces   int
}

// Decision projects the record onto the compact Decision log entry it
// accompanies; the two are recorded by the same setTargets call, so
// Explain()[i].Decision() == Decisions()[i].
func (a AuditRecord) Decision() Decision {
	return Decision{At: a.At, MapTarget: a.MapTarget, ReduceTarget: a.ReduceTarget,
		Factor: a.Factor, Reason: a.Reason}
}

// String renders the record as the multi-line block the -explain flag
// prints: the decision line followed by indented input lines.
func (a AuditRecord) String() string {
	var b strings.Builder
	b.WriteString(a.Decision().String())
	fmt.Fprintf(&b, "\n    targets %d/%d -> %d/%d  bounds [%.2f,%.2f]",
		a.PrevMapTarget, a.PrevReduceTarget, a.MapTarget, a.ReduceTarget,
		a.LowerBound, a.UpperBound)
	fmt.Fprintf(&b, "\n    window  in=%.1f out=%.1f shuf=%.1f MB/s  shuffle now=%.1f potential=%.1f MB/s",
		a.InRate, a.OutRate, a.ShufRate, a.ShuffleMBps, a.PotentialShuffleMBps)
	fmt.Fprintf(&b, "\n    state   suspects=%d ceiling=%d tail=%v  maps done=%d/%d pending=%d running=%d  front=j%d reduces=%d/%d",
		a.Suspects, a.Ceiling, a.InTail, a.DoneMaps, a.TotalMaps, a.PendingMaps,
		a.RunningMaps, a.FrontJob, a.FrontRunningReduces, a.FrontTotalReduces)
	b.WriteByte('\n')
	return b.String()
}

// Explain returns a copy of the audit trail: one record per logged
// Decision, index-aligned with Decisions().
func (m *SlotManager) Explain() []AuditRecord {
	out := make([]AuditRecord, len(m.audits))
	copy(out, m.audits)
	return out
}

// verifyAudit asserts the invariant Explain and Decisions promise:
// index-aligned, and each record reproduces its decision. Used by
// tests; cheap enough to run anywhere.
func verifyAudit(m *SlotManager) error {
	ds, as := m.Decisions(), m.Explain()
	if len(ds) != len(as) {
		return fmt.Errorf("core: %d decisions but %d audit records", len(ds), len(as))
	}
	for i := range ds {
		got := as[i].Decision()
		if got.At != ds[i].At || got.MapTarget != ds[i].MapTarget ||
			got.ReduceTarget != ds[i].ReduceTarget || got.Reason != ds[i].Reason ||
			!(got.Factor == ds[i].Factor || (math.IsNaN(got.Factor) && math.IsNaN(ds[i].Factor))) {
			return fmt.Errorf("core: audit %d %+v does not reproduce decision %+v", i, got, ds[i])
		}
	}
	return nil
}
