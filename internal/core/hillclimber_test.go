package core

import (
	"strings"
	"testing"

	"smapreduce/internal/mr"
)

func runHC(t *testing.T, spec mr.JobSpec) (*mr.Job, *HillClimber) {
	t.Helper()
	hc := NewHillClimber()
	jobs, err := RunWithController(hc, smallCluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return jobs[0], hc
}

func TestHillClimberCompletesAndDecides(t *testing.T) {
	j, hc := runHC(t, job("grep", 16*1024, 8))
	if !j.Finished() {
		t.Fatal("unfinished")
	}
	if len(hc.Decisions()) == 0 {
		t.Fatal("hill climber never moved")
	}
	for _, d := range hc.Decisions() {
		if !strings.HasPrefix(d.Reason, "hill-climb") {
			t.Fatalf("foreign decision: %+v", d)
		}
		if d.MapTarget < 1 {
			t.Fatalf("bad target: %+v", d)
		}
	}
}

func TestHillClimberMatchesManagerOnMapHeavy(t *testing.T) {
	// On a map-heavy job the barrier plays no role, so model-free hill
	// climbing should be competitive with the full slot manager.
	hcJob, _ := runHC(t, job("grep", 24*1024, 8))
	smrJob, _ := runManaged(t, SlotManagerConfig{}, job("grep", 24*1024, 8))
	if hcJob.ExecutionTime() > 1.25*smrJob.ExecutionTime() {
		t.Fatalf("hill climber (%v) far behind manager (%v) on map-heavy",
			hcJob.ExecutionTime(), smrJob.ExecutionTime())
	}
}

func TestHillClimberLosesOnReduceHeavy(t *testing.T) {
	// On a reduce-heavy job the climber chases map throughput the
	// shuffle cannot absorb; the balance-factor manager must not lose
	// to it, and typically wins on the post-barrier tail.
	hcJob, _ := runHC(t, job("terasort", 12*1024, 8))
	smrJob, _ := runManaged(t, SlotManagerConfig{}, job("terasort", 12*1024, 8))
	if smrJob.ExecutionTime() > 1.05*hcJob.ExecutionTime() {
		t.Fatalf("manager (%v) lost to hill climber (%v) on reduce-heavy",
			smrJob.ExecutionTime(), hcJob.ExecutionTime())
	}
}

func TestRunWithControllerValidates(t *testing.T) {
	if _, err := RunWithController(NewHillClimber(), smallCluster()); err == nil {
		t.Fatal("no jobs accepted")
	}
	bad := smallCluster()
	bad.Workers = -1
	if _, err := RunWithController(NewHillClimber(), bad, job("grep", 1024, 4)); err == nil {
		t.Fatal("bad cluster accepted")
	}
}
