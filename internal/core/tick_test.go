package core

import (
	"strings"
	"testing"

	"smapreduce/internal/mr"
)

// tickHarness builds a Dynamic cluster plus a defaulted manager whose
// bounds are initialised, ready for synthetic-stats ticks.
func tickHarness(t *testing.T) (*mr.Cluster, *SlotManager) {
	t.Helper()
	c := mr.MustNewCluster(smallCluster())
	m := MustNewSlotManager(SlotManagerConfig{})
	// Initialise cluster-derived bounds with a first no-op tick.
	m.tick(c, mr.Stats{Now: 0, HeadJobID: -1})
	return c, m
}

// frontStats builds a plausible front-stretch snapshot.
func frontStats(now, outRate, potential float64, runningReduces int) mr.Stats {
	return mr.Stats{
		Now:                  now,
		HeadJobID:            1,
		FrontJobID:           1,
		FrontJobName:         "synthetic",
		TotalMaps:            100,
		DoneMaps:             30,
		PendingMaps:          40,
		RunningMaps:          12,
		FrontTotalReduces:    8,
		FrontRunningReduces:  runningReduces,
		TotalReduces:         8,
		RunningReduces:       runningReduces,
		MapInputMBps:         outRate,
		MapInputProcessedMB:  outRate * now,
		MapOutputProducedMB:  outRate * now,
		PotentialShuffleMBps: potential,
		ShufflePerReduceMB:   1024,
	}
}

func TestTickIncrementsWhenMapHeavy(t *testing.T) {
	c, m := tickHarness(t)
	start := m.MapTarget()
	// Two ticks build the rate window; the second is stable and sees a
	// hugely underused shuffle (f ≫ upper).
	m.tick(c, frontStats(20, 100, 5000, 8))
	m.tick(c, frontStats(40, 100, 5000, 8))
	if m.MapTarget() != start+1 {
		t.Fatalf("map target = %d, want %d", m.MapTarget(), start+1)
	}
	if len(m.Decisions()) != 1 || !strings.Contains(m.Decisions()[0].Reason, "map-heavy") {
		t.Fatalf("decisions = %+v", m.Decisions())
	}
}

func TestTickDecrementsWhenReduceHeavy(t *testing.T) {
	c, m := tickHarness(t)
	start := m.MapTarget()
	m.tick(c, frontStats(20, 1000, 100, 8))
	m.tick(c, frontStats(40, 1000, 100, 8))
	if m.MapTarget() != start-1 {
		t.Fatalf("map target = %d, want %d", m.MapTarget(), start-1)
	}
	if !strings.Contains(m.Decisions()[0].Reason, "reduce-heavy") {
		t.Fatalf("reason = %q", m.Decisions()[0].Reason)
	}
}

func TestTickHoldsWhenBalanced(t *testing.T) {
	c, m := tickHarness(t)
	start := m.MapTarget()
	// f ≈ 1: inside the band.
	m.tick(c, frontStats(20, 500, 500, 8))
	m.tick(c, frontStats(40, 500, 500, 8))
	if m.MapTarget() != start || len(m.Decisions()) != 0 {
		t.Fatalf("balanced state moved: %d, %+v", m.MapTarget(), m.Decisions())
	}
}

func TestTickSlowStartGate(t *testing.T) {
	c, m := tickHarness(t)
	s := frontStats(20, 100, 5000, 8)
	s.DoneMaps = 5 // below 10% of 100
	m.tick(c, s)
	s2 := frontStats(40, 100, 5000, 8)
	s2.DoneMaps = 5
	m.tick(c, s2)
	if len(m.Decisions()) != 0 {
		t.Fatalf("decided before slow start: %+v", m.Decisions())
	}
}

func TestTickStabilizeGate(t *testing.T) {
	c, m := tickHarness(t)
	m.tick(c, frontStats(20, 100, 5000, 8))
	m.tick(c, frontStats(40, 100, 5000, 8)) // change at t=40
	n := len(m.Decisions())
	// Within StabilizeDelay of the change: no further move.
	m.tick(c, frontStats(45, 100, 5000, 8))
	if len(m.Decisions()) != n {
		t.Fatalf("changed during stabilisation: %+v", m.Decisions())
	}
	// Past the delay it moves again.
	m.tick(c, frontStats(55, 100, 5000, 8))
	if len(m.Decisions()) != n+1 {
		t.Fatalf("no change after stabilisation: %+v", m.Decisions())
	}
}

func TestTickSaturationGuard(t *testing.T) {
	c, m := tickHarness(t)
	s := frontStats(20, 100, 5000, 8)
	s.FrontRunningReduces = 0 // f = NaN would hold; make f computable
	s.FrontRunningReduces = 1 // Rm = 100/8 → f = 400 ≫ upper
	s.ShuffleMBps = 4900      // ≥ 0.85 × potential: pipeline saturated
	m.tick(c, s)
	s2 := s
	s2.Now = 40
	s2.MapInputProcessedMB = 100 * 40
	s2.MapOutputProducedMB = 100 * 40
	m.tick(c, s2)
	if len(m.Decisions()) != 0 {
		t.Fatalf("grew into a saturated shuffle: %+v", m.Decisions())
	}
}

func TestTickCeilingBlocksGrowth(t *testing.T) {
	c, m := tickHarness(t)
	// Establish the front job first (the job transition resets
	// learning, including any ceiling), then pin the ceiling.
	m.tick(c, frontStats(20, 100, 5000, 8))
	m.ceiling = m.MapTarget()
	m.tick(c, frontStats(40, 100, 5000, 8))
	m.tick(c, frontStats(60, 100, 5000, 8))
	if len(m.Decisions()) != 0 {
		t.Fatalf("grew past the thrashing ceiling: %+v", m.Decisions())
	}
}

func TestTickTailReleasesAndBoosts(t *testing.T) {
	c, m := tickHarness(t)
	s := frontStats(20, 100, 5000, 8)
	s.PendingMaps = 0
	s.RunningMaps = 2
	s.ShufflePerReduceMB = 50 // small shuffle → boost
	m.tick(c, s)
	if len(m.Decisions()) != 1 {
		t.Fatalf("tail made %d decisions", len(m.Decisions()))
	}
	d := m.Decisions()[0]
	if !strings.Contains(d.Reason, "boosting reduce") {
		t.Fatalf("reason = %q", d.Reason)
	}
	if d.MapTarget != 1 { // ceil(2/4 workers) = 1
		t.Fatalf("tail map target = %d, want 1", d.MapTarget)
	}
	if d.ReduceTarget != smallCluster().MaxReduceSlots {
		t.Fatalf("tail reduce target = %d, want max", d.ReduceTarget)
	}
}

func TestTickTailGuardLargeShuffle(t *testing.T) {
	c, m := tickHarness(t)
	s := frontStats(20, 100, 5000, 8)
	s.PendingMaps = 0
	s.RunningMaps = 2
	s.ShufflePerReduceMB = 4096 // large shuffle → no boost
	m.tick(c, s)
	if len(m.Decisions()) != 1 {
		t.Fatalf("tail made %d decisions", len(m.Decisions()))
	}
	if m.Decisions()[0].ReduceTarget != smallCluster().ReduceSlots {
		t.Fatalf("large-shuffle tail boosted reduces: %+v", m.Decisions()[0])
	}
}

func TestTickNoSignalHolds(t *testing.T) {
	c, m := tickHarness(t)
	// Front job has no running reducers: f is NaN, nothing moves.
	m.tick(c, frontStats(20, 100, 0, 0))
	m.tick(c, frontStats(40, 100, 0, 0))
	if len(m.Decisions()) != 0 {
		t.Fatalf("moved without a signal: %+v", m.Decisions())
	}
}

func TestTickEmptyQueueIsNoop(t *testing.T) {
	c, m := tickHarness(t)
	m.tick(c, mr.Stats{Now: 50, HeadJobID: -1})
	if len(m.Decisions()) != 0 {
		t.Fatal("decided with an empty queue")
	}
}
