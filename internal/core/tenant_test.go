package core

import (
	"reflect"
	"testing"

	"smapreduce/internal/arrival"
	"smapreduce/internal/mr"
	"smapreduce/internal/policy"
)

func tenantArrivals(seed uint64, loadFactor float64) mr.ArrivalSource {
	cfg := arrival.Config{
		Horizon:    600,
		LoadFactor: loadFactor,
		Tenants: []arrival.Tenant{
			{Name: "analytics", Benchmarks: []string{"grep", "wordcount"},
				MeanInterarrival: 90, InputMBMin: 256, InputMBMax: 768, Reduces: 4, SLOSeconds: 240},
			{Name: "etl", Benchmarks: []string{"terasort"},
				MeanInterarrival: 150, InputMBMin: 512, InputMBMax: 512, Reduces: 4},
		},
	}
	src, err := arrival.New(cfg, arrival.RNG(seed))
	if err != nil {
		panic(err)
	}
	return src
}

func TestCapacityEngineNames(t *testing.T) {
	want := map[Engine]string{
		EngineFairShare:     "FairShare",
		EngineCapacityQueue: "CapacityQueue",
		EngineGameTheoretic: "GameTheoretic",
	}
	engines := CapacityEngines()
	if len(engines) != 3 {
		t.Fatalf("CapacityEngines() = %v", engines)
	}
	for _, e := range engines {
		if e.String() != want[e] {
			t.Errorf("engine %d String = %q, want %q", e, e, want[e])
		}
	}
}

func TestCapacityEnginesRunOpenArrivals(t *testing.T) {
	cfg := mr.DefaultConfig()
	cfg.Workers = 4
	cfg.Net.Nodes = 4
	for _, engine := range CapacityEngines() {
		res, err := Run(engine, Options{
			Cluster:  cfg,
			Arrivals: tenantArrivals(cfg.Seed, 1),
			Tenants:  []policy.Tenant{{Name: "analytics", Weight: 2}, {Name: "etl", Guarantee: 0.3}},
			Events:   true,
		})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if len(res.Jobs) == 0 {
			t.Fatalf("%v: no jobs admitted", engine)
		}
		for _, j := range res.Jobs {
			if !j.Finished() {
				t.Fatalf("%v: job %s unfinished", engine, j.Spec.Name)
			}
		}
		if len(res.Capacity) == 0 {
			t.Fatalf("%v: no capacity decisions recorded", engine)
		}
		if res.SLOMisses() < 0 || res.SLOMisses() > len(res.Jobs) {
			t.Fatalf("%v: SLOMisses out of range", engine)
		}
		p50, p99 := res.LatencyPercentile(50), res.LatencyPercentile(99)
		if !(p50 > 0 && p99 >= p50) {
			t.Fatalf("%v: latency percentiles p50=%v p99=%v", engine, p50, p99)
		}
	}
}

func TestCapacityEngineDeterministic(t *testing.T) {
	cfg := mr.DefaultConfig()
	cfg.Workers = 4
	cfg.Net.Nodes = 4
	run := func() ([]mr.CapacityDecision, float64) {
		res, err := Run(EngineFairShare, Options{Cluster: cfg, Arrivals: tenantArrivals(cfg.Seed, 2)})
		if err != nil {
			t.Fatal(err)
		}
		return res.Capacity, res.LastFinish()
	}
	caps1, fin1 := run()
	caps2, fin2 := run()
	if fin1 != fin2 {
		t.Fatalf("finish times diverged: %v vs %v", fin1, fin2)
	}
	if !reflect.DeepEqual(caps1, caps2) {
		t.Fatal("capacity decision logs diverged between identical runs")
	}
}

func TestArrivalsAndSpecsMutuallyExclusive(t *testing.T) {
	cfg := mr.DefaultConfig()
	cfg.Workers = 4
	cfg.Net.Nodes = 4
	_, err := Run(EngineHadoopV1, Options{Cluster: cfg, Arrivals: tenantArrivals(1, 1)}, job("grep", 512, 4))
	if err == nil {
		t.Fatal("Run accepted both Arrivals and fixed specs")
	}
}

func TestExplicitCapacityOnBaselineEngine(t *testing.T) {
	// A capacity policy composes with any engine, including the dynamic
	// slot manager.
	cfg := mr.DefaultConfig()
	cfg.Workers = 4
	cfg.Net.Nodes = 4
	p, err := policy.NewFairShare(policy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(EngineSMapReduce, Options{Cluster: cfg, Capacity: p, Arrivals: tenantArrivals(cfg.Seed, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Capacity) == 0 {
		t.Fatal("no capacity decisions on SMapReduce engine with explicit policy")
	}
	if len(res.Decisions) == 0 {
		t.Fatal("slot manager decisions missing — capacity policy displaced the controller")
	}
}
