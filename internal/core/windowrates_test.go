package core

import (
	"math"
	"testing"

	"smapreduce/internal/mr"
)

// counterStats builds the minimal Stats windowRates consumes: the
// cumulative counters at one instant.
func counterStats(now, mb float64) mr.Stats {
	return mr.Stats{Now: now, MapInputProcessedMB: mb, MapOutputProducedMB: mb, ShuffleMovedMB: mb}
}

// TestWindowRatesIdleGapPruned reproduces the stale-anchor bug: after
// an idle gap (no ticks while the queue is empty between staggered
// jobs) the window's oldest sample used to stay anchored hours in the
// past, so the first post-gap rates were diluted by the dead time. The
// window span must stay within ~2× RateWindow so rates recover on the
// next sample.
func TestWindowRatesIdleGapPruned(t *testing.T) {
	m := MustNewSlotManager(SlotManagerConfig{})
	w := m.cfg.RateWindow

	// 20 MB/s for 100 s of ticks every 5 s.
	for now := 0.0; now <= 100; now += 5 {
		m.windowRates(counterStats(now, 20*now))
	}
	mbAtGap := 20.0 * 100

	// Idle gap: counters frozen, no ticks, until one hour later.
	in, _, _ := m.windowRates(counterStats(3600, mbAtGap))
	if in != 0 {
		t.Fatalf("first post-gap rate = %v, want 0 (window re-anchored)", in)
	}
	if span := 3600 - m.samples[0].t; span > 2*w {
		t.Fatalf("window span %v exceeds 2×RateWindow (%v) after the gap", span, 2*w)
	}

	// Work resumes at 20 MB/s: the very next tick must see it, not a
	// rate diluted across the hour of idleness (old behaviour: ~0.03).
	in, _, _ = m.windowRates(counterStats(3605, mbAtGap+100))
	if math.Abs(in-20) > 1e-9 {
		t.Fatalf("post-gap rate = %v, want 20 MB/s", in)
	}
}

// TestWindowRatesSteadyStateUnchanged pins the pre-fix behaviour for
// gap-free runs: continuous ticking never trips the re-anchor path.
func TestWindowRatesSteadyStateUnchanged(t *testing.T) {
	m := MustNewSlotManager(SlotManagerConfig{})
	var in float64
	for now := 0.0; now <= 300; now += 5 {
		in, _, _ = m.windowRates(counterStats(now, 20*now))
	}
	if math.Abs(in-20) > 1e-9 {
		t.Fatalf("steady-state rate = %v, want 20 MB/s", in)
	}
	// The window keeps one sample spanning RateWindow, as before.
	if span := 300 - m.samples[0].t; span > 2*m.cfg.RateWindow {
		t.Fatalf("steady-state window span %v too wide", span)
	}
}

func TestDecisionsReturnsCopy(t *testing.T) {
	m := MustNewSlotManager(SlotManagerConfig{})
	m.decisions = append(m.decisions, Decision{At: 1, MapTarget: 3, Reason: "grow"})
	snap := m.Decisions()
	snap[0].Reason = "mutated"
	if m.decisions[0].Reason != "grow" {
		t.Fatal("mutating the returned slice changed the manager's log")
	}
	m.decisions = append(m.decisions, Decision{At: 2, MapTarget: 4, Reason: "grow again"})
	if len(snap) != 1 || snap[0].At != 1 {
		t.Fatalf("snapshot changed under later appends: %+v", snap)
	}
}

// TestWindowRatesCounterRegressionResets pins the fault-discontinuity
// guard: a tracker crash unwinds committed work, so cumulative
// counters can drop below earlier samples. The window must restart at
// the current sample — never emit a negative rate — and resume clean
// differencing from the new baseline on the next tick.
func TestWindowRatesCounterRegressionResets(t *testing.T) {
	m := MustNewSlotManager(SlotManagerConfig{})
	for now := 0.0; now <= 50; now += 5 {
		m.windowRates(counterStats(now, 20*now))
	}
	// Crash at t=55: 300 MB of committed map output is requeued.
	in, out, shuf := m.windowRates(counterStats(55, 20*50-300))
	if in < 0 || out < 0 || shuf < 0 {
		t.Fatalf("negative rates after counter regression: %v %v %v", in, out, shuf)
	}
	if len(m.samples) != 1 {
		t.Fatalf("window not re-anchored after regression: %d samples", len(m.samples))
	}
	if m.suspects != 0 {
		t.Fatalf("suspicion state survived the reset: %d", m.suspects)
	}
	if m.lastChangeAt != 55 {
		t.Fatalf("stabilize timer not re-based: lastChangeAt = %v, want 55", m.lastChangeAt)
	}
	// Recovery proceeds at 20 MB/s from the new baseline.
	in, _, _ = m.windowRates(counterStats(60, 20*50-300+100))
	if math.Abs(in-20) > 1e-9 {
		t.Fatalf("post-reset rate = %v, want 20 MB/s", in)
	}
}
