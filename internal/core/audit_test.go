package core

import (
	"math"
	"strings"
	"testing"

	"smapreduce/internal/mr"
	"smapreduce/internal/trace"
)

// TestDecisionStringRendering pins the Decision.String contract the
// CLIs print, across the factor's three shapes (finite, +Inf, NaN).
func TestDecisionStringRendering(t *testing.T) {
	cases := []struct {
		d    Decision
		want string
	}{
		{Decision{At: 12.5, MapTarget: 4, ReduceTarget: 2, Factor: 1.25, Reason: "x"},
			"[    12.5] maps=4 reduces=2 f=1.25  x"},
		{Decision{At: 0, MapTarget: 1, ReduceTarget: 1, Factor: math.Inf(1), Reason: ReasonMapHeavy},
			"[     0.0] maps=1 reduces=1 f=+Inf  " + ReasonMapHeavy},
		{Decision{At: 100, MapTarget: 3, ReduceTarget: 8, Factor: math.NaN(), Reason: ReasonTailBoost},
			"[   100.0] maps=3 reduces=8 f=-  " + ReasonTailBoost},
	}
	for _, tc := range cases {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

// TestReasonConstantsMatchVocabulary pins the reason strings the rest
// of the repo greps for (tests, examples, the -explain renderer).
func TestReasonConstantsMatchVocabulary(t *testing.T) {
	if ReasonMapHeavy != "map-heavy: shuffle ahead of maps" {
		t.Errorf("ReasonMapHeavy = %q", ReasonMapHeavy)
	}
	if ReasonReduceHeavy != "reduce-heavy: shuffle lagging" {
		t.Errorf("ReasonReduceHeavy = %q", ReasonReduceHeavy)
	}
	if ReasonTailRelease != "tail: releasing map slots" {
		t.Errorf("ReasonTailRelease = %q", ReasonTailRelease)
	}
	if ReasonTailBoost != "tail: small shuffle, boosting reduce slots" {
		t.Errorf("ReasonTailBoost = %q", ReasonTailBoost)
	}
	if got := ReasonThrashing(5); got != "thrashing confirmed at 5 map slots" {
		t.Errorf("ReasonThrashing(5) = %q", got)
	}
	if !strings.HasPrefix(ReasonThrashing(3), ReasonThrashingPrefix) {
		t.Errorf("ReasonThrashing misses its own prefix")
	}
}

// driveAllReasons pushes one manager through synthetic stats that
// exercise every reason the decision vocabulary contains: map-heavy
// growth, suspected and confirmed thrashing, reduce-heavy shrink, and
// both tail-stretch variants.
func driveAllReasons(t *testing.T, m *SlotManager, c *mr.Cluster) {
	t.Helper()
	// Synthetic front-stretch feed with a consistent cumulative counter
	// (windowRates differences it, so jumps would fake rates).
	cum, last := 0.0, 0.0
	step := func(now, rate, potential float64) mr.Stats {
		cum += (now - last) * rate
		last = now
		s := frontStats(now, rate, potential, 8)
		s.MapInputProcessedMB = cum
		s.MapOutputProducedMB = cum
		return s
	}

	// Map-heavy: shuffle has huge headroom; the second tick has a full
	// window (the first has dt=0) and grows the target 3 -> 4.
	m.tick(c, step(20, 100, 5000))
	m.tick(c, step(40, 100, 5000))

	// Thrashing: after the increase the windowed rate sinks below the
	// 100 MB/s recorded at 3 slots; two stable observations confirm and
	// roll back to 3. (Growth is also blocked while suspected, so the
	// still-high f does not interfere.)
	m.tick(c, step(60, 40, 5000))
	m.tick(c, step(80, 40, 5000))
	if m.ceiling == 0 {
		t.Fatalf("thrashing never confirmed; decisions: %+v", m.Decisions())
	}

	// Reduce-heavy: the achievable shuffle collapses under the map
	// output rate (f = 30/1000), shrinking 3 -> 2.
	m.tick(c, step(120, 1000, 30))

	// Tail, large shuffle: pending maps done, release map slots only.
	tail := step(160, 0, 0)
	tail.PendingMaps = 0
	tail.RunningMaps = 1
	tail.ShufflePerReduceMB = 100000
	m.tick(c, tail)

	// Tail, small shuffle: boost reduce slots to the max.
	tail2 := step(180, 0, 0)
	tail2.PendingMaps = 0
	tail2.RunningMaps = 1
	tail2.ShufflePerReduceMB = 10
	m.tick(c, tail2)
}

// TestReasonVocabularyRoundTripsThroughExplain drives every decision
// path and asserts (a) the emitted reasons are exactly the stable
// vocabulary, (b) Explain is index-aligned with Decisions and each
// audit record reproduces its decision, and (c) the audit inputs match
// what the manager saw (factor vs bounds, window rates, thrash state).
func TestReasonVocabularyRoundTripsThroughExplain(t *testing.T) {
	c, m := tickHarness(t)
	driveAllReasons(t, m, c)

	ds, as := m.Decisions(), m.Explain()
	if err := verifyAudit(m); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i, d := range ds {
		a := as[i]
		switch {
		case d.Reason == ReasonMapHeavy:
			seen["map-heavy"] = true
			if !(a.Factor > a.UpperBound) {
				t.Errorf("map-heavy audit: f=%v not above upper bound %v", a.Factor, a.UpperBound)
			}
			if a.MapTarget != a.PrevMapTarget+1 {
				t.Errorf("map-heavy audit: %d -> %d, want +1", a.PrevMapTarget, a.MapTarget)
			}
		case d.Reason == ReasonReduceHeavy:
			seen["reduce-heavy"] = true
			if !(a.Factor < a.LowerBound) {
				t.Errorf("reduce-heavy audit: f=%v not below lower bound %v", a.Factor, a.LowerBound)
			}
			if a.MapTarget != a.PrevMapTarget-1 {
				t.Errorf("reduce-heavy audit: %d -> %d, want -1", a.PrevMapTarget, a.MapTarget)
			}
		case strings.HasPrefix(d.Reason, ReasonThrashingPrefix):
			seen["thrashing"] = true
			if d.Reason != ReasonThrashing(a.PrevMapTarget) {
				t.Errorf("thrashing reason %q does not name the rolled-back count %d",
					d.Reason, a.PrevMapTarget)
			}
			if a.Suspects < 2 {
				t.Errorf("thrashing audit lost the confirmation count: suspects=%d", a.Suspects)
			}
			if a.Ceiling != a.MapTarget {
				t.Errorf("thrashing audit ceiling=%d, target=%d", a.Ceiling, a.MapTarget)
			}
		case d.Reason == ReasonTailRelease:
			seen["tail-release"] = true
			if !a.InTail || a.PendingMaps != 0 {
				t.Errorf("tail-release audit: inTail=%v pending=%d", a.InTail, a.PendingMaps)
			}
		case d.Reason == ReasonTailBoost:
			seen["tail-boost"] = true
			if !a.InTail {
				t.Errorf("tail-boost audit not marked inTail")
			}
			if a.ReduceTarget <= a.PrevReduceTarget {
				t.Errorf("tail-boost audit: reduces %d -> %d, want growth",
					a.PrevReduceTarget, a.ReduceTarget)
			}
		default:
			t.Errorf("decision %d has unknown reason %q", i, d.Reason)
		}
	}
	for _, want := range []string{"map-heavy", "reduce-heavy", "thrashing", "tail-release", "tail-boost"} {
		if !seen[want] {
			t.Errorf("vocabulary path %q never exercised; decisions: %+v", want, ds)
		}
	}
}

// TestExplainReturnsCopy mirrors the Decisions aliasing guarantee.
func TestExplainReturnsCopy(t *testing.T) {
	c, m := tickHarness(t)
	m.tick(c, frontStats(20, 100, 5000, 8))
	m.tick(c, frontStats(40, 100, 5000, 8))
	a := m.Explain()
	if len(a) != 1 {
		t.Fatalf("explain len = %d, want 1", len(a))
	}
	a[0].Reason = "mutated"
	if m.Explain()[0].Reason == "mutated" {
		t.Fatal("Explain aliases internal storage")
	}
}

// TestAuditRecordString smoke-checks the -explain rendering carries
// the decision line plus the inputs.
func TestAuditRecordString(t *testing.T) {
	c, m := tickHarness(t)
	m.tick(c, frontStats(20, 100, 5000, 8))
	m.tick(c, frontStats(40, 100, 5000, 8))
	s := m.Explain()[0].String()
	for _, want := range []string{ReasonMapHeavy, "bounds [0.80,1.30]", "window", "suspects=0"} {
		if !strings.Contains(s, want) {
			t.Errorf("audit string missing %q:\n%s", want, s)
		}
	}
}

// TestManagerEmitsDecisionInstants asserts every setTargets decision
// lands on the controller track as an instant whose args reproduce the
// targets, alongside thrash and tail instants.
func TestManagerEmitsDecisionInstants(t *testing.T) {
	c, m := tickHarness(t)
	tr := trace.New(trace.Options{})
	m.AttachTracer(tr)
	driveAllReasons(t, m, c)
	// Every decision must have produced at least one instant; thrash
	// suspicion and tail conversion add more.
	if tr.Len() < len(m.Decisions())+2 {
		t.Fatalf("trace has %d events for %d decisions", tr.Len(), len(m.Decisions()))
	}
	sum := tr.Summary()
	for _, cat := range []string{"decision", "thrash", "tail"} {
		if !strings.Contains(sum, cat) {
			t.Errorf("trace summary missing category %q:\n%s", cat, sum)
		}
	}
}
