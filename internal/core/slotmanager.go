// Package core implements the paper's contribution: the SMapReduce
// slot manager, a runtime controller that retunes the number of map and
// reduce working slots on every task tracker to maximise cluster
// resource utilisation around the map/reduce synchronisation barrier.
//
// The algorithm follows §III–IV of the paper:
//
//   - Slow start: no decisions until a fraction (default 10%) of the
//     map tasks have finished reporting statistics.
//   - Balance (front stretch): compare the achievable shuffle rate Rs
//     against the map output rate of one reduce partition,
//     Rm = (n/N)·Rt. If f = Rs/Rm exceeds the upper bound the job is
//     map-heavy and map slots grow by one; below the lower bound it is
//     reduce-heavy and map slots shrink by one; in between the system
//     is in the Balanced State and nothing changes.
//   - Thrashing detection: the per-slot map processing rate is recorded
//     for every slot count. After an increase, once the rate has had
//     StabilizeDelay seconds to settle, a drop below the previous slot
//     count's rate marks the state "suspected"; consecutive suspected
//     observations confirm thrashing, the increase is rolled back and
//     a ceiling is remembered.
//   - Tail stretch: when no map tasks remain pending, map slots are
//     released and — only if the job's shuffle volume per reducer is
//     small — reduce slots are boosted to finish the tail faster.
//
// The manager plugs into the runtime as an mr.Controller and talks to
// trackers exclusively through the job tracker's desired-slot table,
// which trackers pick up in their next heartbeat (command-in-heartbeat,
// §III-C) and apply lazily (§III-D).
package core

import (
	"fmt"
	"math"

	"smapreduce/internal/mr"
	"smapreduce/internal/stats"
	"smapreduce/internal/telemetry"
	"smapreduce/internal/trace"
)

// SlotManagerConfig tunes the slot manager. Zero values are replaced by
// the paper's defaults in NewSlotManager.
type SlotManagerConfig struct {
	// Interval between decisions, seconds. The paper's manager runs
	// "after every time period" long enough for all trackers to have
	// heartbeated; with 1 s heartbeats 5 s is comfortable.
	Interval float64

	// SlowStartFraction of map tasks that must finish before the first
	// decision (paper default 10%).
	SlowStartFraction float64

	// Balance-factor bounds (§IV-A3). Between them the system is
	// considered balanced.
	LowerBound float64
	UpperBound float64

	// StabilizeDelay is how long after a slot change the map rate is
	// left out of thrashing judgements (§IV-A2, "grow gradually to a
	// stable range").
	StabilizeDelay float64

	// RateWindow is the sliding window over which the manager computes
	// map and shuffle rates from the cumulative work counters. It must
	// span at least a couple of map waves, because within one wave the
	// instantaneous rate swings between full speed (map phase) and near
	// zero (sort/spill phase).
	RateWindow float64

	// SuspectConfirmations is how many consecutive suspected-thrashing
	// observations confirm thrashing (§IV-A2 gives the system "another
	// chance"; 2 matches the paper).
	SuspectConfirmations int

	// TailShufflePerReduceMB is the "small shuffle" threshold under
	// which the tail stretch may add reduce slots (§III-B3).
	TailShufflePerReduceMB float64

	// Ablation switches (Fig. 7), named so the zero value is the
	// paper's full algorithm.
	DisableThrashDetection bool
	DisableSlowStart       bool
	DisableTailBoost       bool

	// PerNodeScaling scales each tracker's slot targets by its node's
	// compute capacity relative to the cluster mean — the natural
	// extension of the paper's uniform targets to the heterogeneous
	// clusters its future-work section names. Off by default (the
	// paper's homogeneous behaviour).
	PerNodeScaling bool
}

// DefaultSlotManagerConfig returns the paper's settings.
func DefaultSlotManagerConfig() SlotManagerConfig {
	return SlotManagerConfig{
		Interval:               5,
		SlowStartFraction:      0.10,
		LowerBound:             0.80,
		UpperBound:             1.30,
		StabilizeDelay:         10,
		RateWindow:             24,
		SuspectConfirmations:   2,
		TailShufflePerReduceMB: 256,
	}
}

// Validate reports the first problem with the config, or nil.
func (c SlotManagerConfig) Validate() error {
	switch {
	case c.Interval <= 0:
		return fmt.Errorf("core: Interval = %v, must be positive", c.Interval)
	case c.SlowStartFraction < 0 || c.SlowStartFraction > 1:
		return fmt.Errorf("core: SlowStartFraction = %v, must be in [0,1]", c.SlowStartFraction)
	case c.LowerBound <= 0 || c.UpperBound < c.LowerBound:
		return fmt.Errorf("core: bounds [%v,%v] invalid", c.LowerBound, c.UpperBound)
	case c.StabilizeDelay < 0:
		return fmt.Errorf("core: StabilizeDelay = %v, must be >= 0", c.StabilizeDelay)
	case c.RateWindow <= 0:
		return fmt.Errorf("core: RateWindow = %v, must be positive", c.RateWindow)
	case c.SuspectConfirmations < 1:
		return fmt.Errorf("core: SuspectConfirmations = %d, must be >= 1", c.SuspectConfirmations)
	case c.TailShufflePerReduceMB < 0:
		return fmt.Errorf("core: TailShufflePerReduceMB = %v, must be >= 0", c.TailShufflePerReduceMB)
	}
	return nil
}

// Decision records one slot-manager action, for tracing and tests.
type Decision struct {
	At           float64
	MapTarget    int
	ReduceTarget int
	Factor       float64 // balance factor f at decision time (may be +Inf or NaN)
	Reason       string
}

// String renders the decision the way the CLIs and examples print it.
func (d Decision) String() string {
	f := "-"
	switch {
	case math.IsInf(d.Factor, 1):
		f = "+Inf"
	case !math.IsNaN(d.Factor):
		f = fmt.Sprintf("%.2f", d.Factor)
	}
	return fmt.Sprintf("[%8.1f] maps=%d reduces=%d f=%s  %s",
		d.At, d.MapTarget, d.ReduceTarget, f, d.Reason)
}

// SlotManager implements mr.Controller.
type SlotManager struct {
	cfg SlotManagerConfig

	// Cluster bounds, learned from the cluster config on first tick.
	initMaps, initReduces int
	maxMaps, maxReduces   int

	mapTarget    int
	reduceTarget int

	headJob      int
	headProfile  string
	lastChangeAt float64
	lastDir      int // +1 grew, -1 shrank, 0 steady

	// Stable aggregate map processing rate (EWMA) observed at each map
	// slot count, for thrashing detection: the aggregate rate rises
	// with the slot count until the thrashing point, then falls.
	ratesBySlots map[int]*stats.EWMA
	suspects     int
	ceiling      int // max map slots allowed after confirmed thrashing (0 = none)
	inTail       bool

	// Sliding window of cumulative counters for rate computation.
	samples []rateSample

	// lastWindow caches the most recent windowed rates for debugging.
	lastWindow struct{ inRate, outRate, shufRate float64 }

	// lastFactor is the balance factor f of the most recent
	// front-stretch tick (NaN until one happens), exposed to telemetry.
	lastFactor float64

	decisions []Decision

	// audits holds one full-input record per decision, index-aligned
	// with decisions (see AuditRecord).
	audits []AuditRecord

	// tr, when attached, receives decision/thrash/tail instants on the
	// controller track. Nil when tracing is off.
	tr *trace.Tracer
}

// rateSample is one tick's cumulative counter snapshot.
type rateSample struct {
	t, inMB, outMB, shufMB float64
}

// windowRates differences the cumulative counters over the configured
// window. Returns zeros until two samples exist.
func (m *SlotManager) windowRates(s mr.Stats) (inRate, outRate, shufRate float64) {
	// Fault discontinuity: a tracker crash discards in-flight work and
	// re-queues committed maps, so the cumulative counters can regress
	// below earlier samples. Differencing across the drop would yield
	// negative rates, poisoning the balance factor and the thrashing
	// ledger with phantom slowdowns and making the targets oscillate.
	// Restart the window at the current sample, forget the suspicion
	// state (rates under recovery say nothing about slot counts), and
	// reset the stabilize timer so the estimator settles before the
	// next judgement.
	if n := len(m.samples); n > 0 {
		last := m.samples[n-1]
		if s.MapInputProcessedMB < last.inMB || s.MapOutputProducedMB < last.outMB ||
			s.ShuffleMovedMB < last.shufMB {
			m.samples = m.samples[:0]
			m.suspects = 0
			m.lastChangeAt = s.Now
		}
	}
	m.samples = append(m.samples, rateSample{
		t: s.Now, inMB: s.MapInputProcessedMB, outMB: s.MapOutputProducedMB, shufMB: s.ShuffleMovedMB,
	})
	// Drop samples older than the window, always keeping one that
	// spans it so the window length stays close to RateWindow.
	cut := s.Now - m.cfg.RateWindow
	for len(m.samples) > 2 && m.samples[1].t <= cut {
		m.samples = m.samples[1:]
	}
	// After an idle gap (the queue drains between staggered jobs, so no
	// ticks ran) samples[0] can be arbitrarily stale; a window spanning
	// hours of zero progress would dilute the first post-gap rates and
	// misfire the balance factor. Re-anchor so the span never exceeds
	// ~2× the window, at worst collapsing to the current sample (one
	// tick of zero rates, then a clean window).
	for len(m.samples) > 1 && s.Now-m.samples[0].t > 2*m.cfg.RateWindow {
		m.samples = m.samples[1:]
	}
	old := m.samples[0]
	dt := s.Now - old.t
	if dt <= 0 {
		return 0, 0, 0
	}
	inRate = (s.MapInputProcessedMB - old.inMB) / dt
	outRate = (s.MapOutputProducedMB - old.outMB) / dt
	shufRate = (s.ShuffleMovedMB - old.shufMB) / dt
	// The regression guard above re-anchors on counter drops, so rates
	// here are non-negative up to float noise; clamp that noise away
	// rather than letting a -1e-16 rate flip a comparison downstream.
	inRate = math.Max(inRate, 0)
	outRate = math.Max(outRate, 0)
	shufRate = math.Max(shufRate, 0)
	m.lastWindow.inRate, m.lastWindow.outRate, m.lastWindow.shufRate = inRate, outRate, shufRate
	return inRate, outRate, shufRate
}

// NewSlotManager builds a manager; zero-valued cfg fields take paper
// defaults, and an invalid cfg returns an error.
func NewSlotManager(cfg SlotManagerConfig) (*SlotManager, error) {
	d := DefaultSlotManagerConfig()
	if cfg.Interval == 0 {
		cfg.Interval = d.Interval
	}
	if cfg.SlowStartFraction == 0 {
		cfg.SlowStartFraction = d.SlowStartFraction
	}
	if cfg.LowerBound == 0 {
		cfg.LowerBound = d.LowerBound
	}
	if cfg.UpperBound == 0 {
		cfg.UpperBound = d.UpperBound
	}
	if cfg.StabilizeDelay == 0 {
		cfg.StabilizeDelay = d.StabilizeDelay
	}
	if cfg.RateWindow == 0 {
		cfg.RateWindow = d.RateWindow
	}
	if cfg.SuspectConfirmations == 0 {
		cfg.SuspectConfirmations = d.SuspectConfirmations
	}
	if cfg.TailShufflePerReduceMB == 0 {
		cfg.TailShufflePerReduceMB = d.TailShufflePerReduceMB
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SlotManager{cfg: cfg, headJob: -1, ratesBySlots: make(map[int]*stats.EWMA), lastFactor: math.NaN()}, nil
}

// MustNewSlotManager is NewSlotManager for static setup.
func MustNewSlotManager(cfg SlotManagerConfig) *SlotManager {
	m, err := NewSlotManager(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Interval implements mr.Controller.
func (m *SlotManager) Interval() float64 { return m.cfg.Interval }

// Decisions returns a copy of the decision log (for traces, tests and
// examples); the manager keeps appending to its internal slice, so an
// alias could mutate under a caller holding it across further ticks.
func (m *SlotManager) Decisions() []Decision {
	out := make([]Decision, len(m.decisions))
	copy(out, m.decisions)
	return out
}

// AttachTracer points the manager's decision instants at tr. Call
// before the cluster runs; a nil tr keeps tracing off.
func (m *SlotManager) AttachTracer(tr *trace.Tracer) {
	m.tr = tr
	if tr.Enabled() {
		tr.SetTrackName(trace.PIDController, "slot manager")
	}
}

// MapTarget returns the current cluster-wide map slot target.
func (m *SlotManager) MapTarget() int { return m.mapTarget }

// ReduceTarget returns the current cluster-wide reduce slot target.
func (m *SlotManager) ReduceTarget() int { return m.reduceTarget }

// Tick implements mr.Controller: one decision period.
func (m *SlotManager) Tick(c *mr.Cluster) {
	m.tick(c, c.Snapshot())
}

// tick is the decision core, separated from the snapshot so tests can
// drive it with synthetic statistics.
func (m *SlotManager) tick(c *mr.Cluster, s mr.Stats) {
	cfg := c.Config()
	if m.mapTarget == 0 {
		m.initMaps, m.initReduces = cfg.MapSlots, cfg.ReduceSlots
		m.maxMaps, m.maxReduces = cfg.MaxMapSlots, cfg.MaxReduceSlots
		m.mapTarget, m.reduceTarget = m.initMaps, m.initReduces
	}

	if s.HeadJobID < 0 {
		return // nothing queued
	}
	// Per-workload learning follows the job whose maps are running (the
	// front-stretch job), not the FIFO head: with queued jobs the head
	// can be deep in its reduce tail while the next job's maps define
	// the thrashing landscape. Learning (rate history, thrashing
	// ceiling) persists across same-profile jobs — the landscape they
	// define is the same — and resets when the workload changes.
	if s.FrontJobID >= 0 && s.FrontJobID != m.headJob {
		m.headJob = s.FrontJobID
		if s.FrontJobName != m.headProfile {
			m.resetForJob(s.FrontJobName, s.Now)
		}
	}

	// Always fold the counters into the sliding window so rates are
	// ready the moment the slow-start gate opens.
	inRate, outRate, _ := m.windowRates(s)

	// Slow start (§IV-A1): wait until enough maps have reported.
	if !m.cfg.DisableSlowStart && s.TotalMaps > 0 &&
		float64(s.DoneMaps) < m.cfg.SlowStartFraction*float64(s.TotalMaps) {
		return
	}

	// Tail stretch (§III-B3): no pending maps — convert slots.
	if s.PendingMaps == 0 {
		m.tailStretch(c, s)
		return
	}
	m.inTail = false

	// Front stretch: record rates, detect thrashing, balance.
	stable := s.Now-m.lastChangeAt >= m.cfg.StabilizeDelay
	if stable && s.RunningMaps > 0 && inRate > 0 {
		e, ok := m.ratesBySlots[m.mapTarget]
		if !ok {
			e = stats.NewEWMA(0.4)
			m.ratesBySlots[m.mapTarget] = e
		}
		e.Observe(inRate)

		if debugRecord != nil {
			prevV := -1.0
			if prev, ok := m.ratesBySlots[m.mapTarget-1]; ok {
				prevV = prev.Value()
			}
			debugRecord(s.Now, m.mapTarget, e.Value(), prevV, m.lastDir)
		}
		// Thrashing check: the aggregate map rate at the current slot
		// count is compared against the recorded rate one count lower.
		// This runs continuously, not only right after an increase —
		// with concurrent jobs the background load changes and a slot
		// count that was fine for one front stretch can be deep in
		// thrashing territory for the next.
		if !m.cfg.DisableThrashDetection && m.mapTarget > 1 {
			if prev, ok := m.ratesBySlots[m.mapTarget-1]; ok && prev.Count() > 0 && e.Count() > 0 {
				if e.Value() < prev.Value() {
					m.suspects++
					if m.tr.Enabled() {
						m.tr.Instant(s.Now, trace.PIDController, "thrash", "thrash-suspect",
							trace.Num("map-slots", float64(m.mapTarget)),
							trace.Num("rate", e.Value()), trace.Num("prev-rate", prev.Value()),
							trace.Num("suspects", float64(m.suspects)))
					}
					if m.suspects >= m.cfg.SuspectConfirmations {
						m.confirmThrashing(c, s)
						return
					}
				} else {
					m.suspects = 0
				}
			}
		}
	}

	if debugTick != nil {
		debugTick(m, s)
	}
	f := m.balanceFactorFrom(s, outRate)
	m.lastFactor = f
	switch {
	case f > m.cfg.UpperBound:
		// Map-heavy: shuffle has headroom, push the maps — unless a
		// confirmed thrashing ceiling or the configured max stops us.
		if !stable {
			return
		}
		// Saturation guard: when the measured shuffle rate already
		// fills the achievable pipeline, faster maps only deepen the
		// backlog (this arises with queued jobs whose reducers hold all
		// reduce slots: the front job's own n is 0, inflating f).
		if s.PotentialShuffleMBps > 0 && s.ShuffleMBps >= 0.85*s.PotentialShuffleMBps {
			return
		}
		if !m.cfg.DisableThrashDetection && m.suspects > 0 {
			// Suspected thrashing: the paper gives the system "another
			// chance" rather than growing further (§IV-A2). A falling
			// map rate also inflates f, so growing here would feed the
			// very thrashing being investigated.
			return
		}
		next := m.mapTarget + 1
		if m.ceiling > 0 && next > m.ceiling {
			return
		}
		if next > m.maxMaps {
			return
		}
		m.setTargets(c, s, next, m.reduceTarget, f, ReasonMapHeavy)
	case f < m.cfg.LowerBound:
		if !stable {
			return
		}
		if m.mapTarget <= 1 {
			return
		}
		m.setTargets(c, s, m.mapTarget-1, m.reduceTarget, f, ReasonReduceHeavy)
	default:
		// Balanced State (or f is NaN — no signal): leave the slots alone.
	}
}

// debugTick, when set by tests, observes every front-stretch tick.
var debugTick func(*SlotManager, mr.Stats)

// debugRecord observes every stable-rate recording (tests only).
var debugRecord func(now float64, target int, cur, prev float64, lastDir int)

// balanceFactorFrom computes f = Rs / Rm (§IV-A3) given the windowed
// total map output rate Rt. Rm uses the front-stretch job's running
// reduce count — with concurrent jobs, only that job's partitions are
// being produced, so other jobs' tail reducers must not dilute the
// ratio. Returns +Inf when no partition output rate exists yet
// (trivially map-heavy).
func (m *SlotManager) balanceFactorFrom(s mr.Stats, rt float64) float64 {
	if rt <= 1e-9 {
		// No map output measured yet: nothing to balance against.
		return math.NaN()
	}
	if s.FrontTotalReduces == 0 {
		// A job with no reducers is trivially map-heavy.
		return math.Inf(1)
	}
	if s.FrontRunningReduces == 0 {
		// The front job's reducers have not launched (earlier jobs may
		// hold every reduce slot): there is no shuffle to balance yet,
		// and neither growing nor shrinking is justified.
		return math.NaN()
	}
	rm := float64(s.FrontRunningReduces) / float64(s.FrontTotalReduces) * rt
	rs := s.PotentialShuffleMBps
	if s.ShuffleMBps > rs {
		rs = s.ShuffleMBps
	}
	return rs / rm
}

// confirmThrashing rolls back the last increase and pins the ceiling.
func (m *SlotManager) confirmThrashing(c *mr.Cluster, s mr.Stats) {
	m.ceiling = m.mapTarget - 1
	if m.ceiling < 1 {
		m.ceiling = 1
	}
	// setTargets runs before the suspect counter resets so the audit
	// record captures the confirmation count that triggered the rollback.
	m.setTargets(c, s, m.ceiling, m.reduceTarget, math.NaN(), ReasonThrashing(m.ceiling+1))
	m.suspects = 0
	if m.tr.Enabled() {
		m.tr.Instant(s.Now, trace.PIDController, "thrash", "thrash-confirmed",
			trace.Num("ceiling", float64(m.ceiling)))
	}
}

// tailStretch releases map slots and, for small-shuffle jobs, boosts
// reduce slots (§III-B3).
func (m *SlotManager) tailStretch(c *mr.Cluster, s mr.Stats) {
	// Keep enough map slots for the stragglers still running, at least 1.
	perNode := (s.RunningMaps + c.Config().Workers - 1) / c.Config().Workers
	if perNode < 1 {
		perNode = 1
	}
	if perNode > m.mapTarget {
		perNode = m.mapTarget // never grow maps in the tail
	}
	reduces := m.reduceTarget
	reason := ReasonTailRelease
	if !m.cfg.DisableTailBoost && s.ShufflePerReduceMB > 0 && s.ShufflePerReduceMB < m.cfg.TailShufflePerReduceMB {
		reduces = m.maxReduces
		reason = ReasonTailBoost
	}
	if perNode == m.mapTarget && reduces == m.reduceTarget {
		return
	}
	if !m.inTail && m.tr.Enabled() {
		m.tr.Instant(s.Now, trace.PIDController, "tail", "tail-stretch",
			trace.Num("running-maps", float64(s.RunningMaps)),
			trace.Num("shuffle-per-reduce-MB", s.ShufflePerReduceMB))
	}
	m.inTail = true
	m.setTargets(c, s, perNode, reduces, math.NaN(), reason)
}

// setTargets pushes new uniform targets to every tracker and logs the
// decision, with a full-input audit record alongside it.
func (m *SlotManager) setTargets(c *mr.Cluster, s mr.Stats, maps, reduces int, f float64, reason string) {
	prevMaps, prevReduces := m.mapTarget, m.reduceTarget
	m.lastDir = 0
	if maps > m.mapTarget {
		m.lastDir = 1
	} else if maps < m.mapTarget {
		m.lastDir = -1
	}
	m.mapTarget, m.reduceTarget = maps, reduces
	m.lastChangeAt = s.Now
	jt := c.JobTracker()
	for _, tt := range c.Trackers() {
		tm, tr := maps, reduces
		if m.cfg.PerNodeScaling {
			tm, tr = m.scaleForNode(c, tt.ID(), maps, reduces)
		}
		jt.SetDesiredSlots(tt.ID(), tm, tr)
	}
	m.decisions = append(m.decisions, Decision{
		At: s.Now, MapTarget: maps, ReduceTarget: reduces, Factor: f, Reason: reason,
	})
	m.audits = append(m.audits, AuditRecord{
		At:               s.Now,
		PrevMapTarget:    prevMaps,
		PrevReduceTarget: prevReduces,
		MapTarget:        maps,
		ReduceTarget:     reduces,
		Factor:           f,
		Reason:           reason,
		InRate:           m.lastWindow.inRate,
		OutRate:          m.lastWindow.outRate,
		ShufRate:         m.lastWindow.shufRate,

		ShuffleMBps:          s.ShuffleMBps,
		PotentialShuffleMBps: s.PotentialShuffleMBps,
		LowerBound:           m.cfg.LowerBound,
		UpperBound:           m.cfg.UpperBound,

		Suspects: m.suspects,
		Ceiling:  m.ceiling,
		InTail:   m.inTail,

		DoneMaps:            s.DoneMaps,
		TotalMaps:           s.TotalMaps,
		PendingMaps:         s.PendingMaps,
		RunningMaps:         s.RunningMaps,
		FrontJob:            s.FrontJobID,
		FrontRunningReduces: s.FrontRunningReduces,
		FrontTotalReduces:   s.FrontTotalReduces,
	})
	if m.tr.Enabled() {
		m.tr.Instant(s.Now, trace.PIDController, "decision", reason,
			trace.Num("maps", float64(maps)), trace.Num("reduces", float64(reduces)),
			trace.Num("prev-maps", float64(prevMaps)), trace.Num("prev-reduces", float64(prevReduces)),
			trace.Num("f", f),
			trace.Num("out-MBps", m.lastWindow.outRate), trace.Num("shuffle-MBps", s.ShuffleMBps))
	}
}

// scaleForNode adjusts uniform targets by the node's compute capacity
// relative to the cluster mean, rounding half-up and never below 1.
func (m *SlotManager) scaleForNode(c *mr.Cluster, node, maps, reduces int) (int, int) {
	capacity := func(i int) float64 {
		spec := c.NodeSpecOf(i)
		return float64(spec.Cores) * spec.CoreSpeed
	}
	mean := 0.0
	n := len(c.Trackers())
	for i := 0; i < n; i++ {
		mean += capacity(i)
	}
	mean /= float64(n)
	factor := capacity(node) / mean
	scale := func(v int) int {
		s := int(float64(v)*factor + 0.5)
		if s < 1 {
			s = 1
		}
		return s
	}
	return scale(maps), scale(reduces)
}

// resetForJob clears per-workload learning when the front job's
// profile changes. Slot targets persist — the next job starts from
// wherever the previous one left the cluster, then adapts.
func (m *SlotManager) resetForJob(profile string, now float64) {
	m.headProfile = profile
	m.ratesBySlots = make(map[int]*stats.EWMA)
	m.suspects = 0
	m.ceiling = 0
	m.lastDir = 0
	m.inTail = false
	// A fresh job has seen no slot change, so the stabilize delay does
	// not apply: the manager may act on its first informed tick. The
	// slow-start gate is what protects the early decisions (§IV-A1).
	m.lastChangeAt = now - m.cfg.StabilizeDelay
	m.samples = nil
	m.lastFactor = math.NaN()
}

// RegisterTelemetry registers the manager's decision-state series on
// col: slot targets, windowed rates, the balance factor f and the
// thrashing-detector state. Call before the cluster runs.
func (m *SlotManager) RegisterTelemetry(col *telemetry.Collector) {
	col.Register("slotmgr/map-target", func() float64 { return float64(m.mapTarget) })
	col.Register("slotmgr/reduce-target", func() float64 { return float64(m.reduceTarget) })
	col.Register("slotmgr/in-MBps", func() float64 { return m.lastWindow.inRate })
	col.Register("slotmgr/out-MBps", func() float64 { return m.lastWindow.outRate })
	col.Register("slotmgr/shuffle-MBps", func() float64 { return m.lastWindow.shufRate })
	col.Register("slotmgr/balance-f", func() float64 { return m.lastFactor })
	col.Register("slotmgr/suspects", func() float64 { return float64(m.suspects) })
	col.Register("slotmgr/ceiling", func() float64 { return float64(m.ceiling) })
	col.Register("slotmgr/in-tail", func() float64 {
		if m.inTail {
			return 1
		}
		return 0
	})
}
