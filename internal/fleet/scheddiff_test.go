package fleet

import (
	"runtime"
	"testing"

	"smapreduce/internal/core"
)

// TestFleetHeapSchedDifferential pins the scheduler backend across the
// fleet: the same fleet seed run on the timing wheel and in heap-only
// mode (Cluster.HeapSched, flowing into every per-cluster config) must
// produce byte-identical per-cluster artefacts and merged totals, at
// workers=1 and workers=GOMAXPROCS, for both the closed-workload and
// the open-arrival multi-tenant shapes.
func TestFleetHeapSchedDifferential(t *testing.T) {
	const clusters = 8
	shapes := []struct {
		name string
		mk   func(workers int, heapSched bool) Config
	}{
		{"closed", func(workers int, heapSched bool) Config {
			cfg := testConfig(clusters, workers)
			cfg.Cluster.HeapSched = heapSched
			return cfg
		}},
		{"open-arrivals", func(workers int, heapSched bool) Config {
			cfg := testConfig(clusters, workers)
			cfg.Engine = core.EngineFairShare
			cfg.Specs = nil
			cfg.Arrivals = testArrivals
			cfg.Cluster.HeapSched = heapSched
			return cfg
		}},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
				wOut, wRes := artifacts(t, shape.mk(w, false))
				hOut, hRes := artifacts(t, shape.mk(w, true))
				for i := range wOut {
					if wOut[i] != hOut[i] {
						t.Fatalf("workers=%d: cluster %d artefacts diverge between wheel and heap-only scheduler (%d vs %d bytes)",
							w, i, len(wOut[i]), len(hOut[i]))
					}
				}
				if got, want := mergedBits(hRes), mergedBits(wRes); got != want {
					t.Fatalf("workers=%d: merged result diverges between wheel and heap-only scheduler:\n%s\n%s", w, got, want)
				}
			}
		})
	}
}
