package fleet

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"smapreduce/internal/arrival"
	"smapreduce/internal/core"
	"smapreduce/internal/mr"
	"smapreduce/internal/policy"
	"smapreduce/internal/puma"
	"smapreduce/internal/sim"
	"smapreduce/internal/stats"
)

// testSpecs is a small deterministic workload so the suite stays fast
// under -race: one modest job per cluster, profile rotated by index.
func testSpecs(i int, rng *sim.Rand) []mr.JobSpec {
	names := []string{"grep", "terasort"}
	return []mr.JobSpec{{
		Name:    fmt.Sprintf("c%d", i),
		Profile: puma.MustGet(names[i%len(names)]),
		InputMB: 256 + float64(rng.Intn(3))*128,
		Reduces: 4,
	}}
}

func testConfig(clusters, workers int) Config {
	base := DefaultClusterConfig()
	base.Workers = 4
	return Config{
		Clusters: clusters,
		Workers:  workers,
		Seed:     0xfee7,
		Engine:   core.EngineSMapReduce,
		Cluster:  base,
		Specs:    testSpecs,
	}
}

// artifacts runs a fleet and returns the per-cluster byte artefacts
// (event-log JSONL + Stats + job milestones, indexed by cluster) plus
// the merged Result.
func artifacts(t *testing.T, cfg Config) ([]string, *Result) {
	t.Helper()
	out := make([]string, cfg.Clusters)
	cfg.CollectEvents = true
	cfg.PerCluster = func(o ClusterOut) {
		var b strings.Builder
		if err := o.Result.Events.WriteJSONL(&b); err != nil {
			panic(err)
		}
		fmt.Fprintf(&b, "%+v\n", o.Result.Cluster.Snapshot())
		for _, j := range o.Result.Jobs {
			fmt.Fprintf(&b, "%s %v %v %v %v\n", j.Spec.Name, j.Submitted, j.Started, j.BarrierAt, j.FinishedAt)
		}
		fmt.Fprintf(&b, "seed %#x\n", o.Seed)
		out[o.Index] = b.String()
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out, res
}

// mergedBits captures every merged scalar bit-exactly for comparison
// across worker counts.
func mergedBits(r *Result) string {
	f := func(v float64) uint64 { return math.Float64bits(v) }
	return fmt.Sprintf("%d %d %d %x %x %x %x %x %x %x %x %x %x %s %s",
		r.Jobs, r.Completed, r.Decisions,
		f(r.Makespan.Sum()), f(r.Makespan.Min()), f(r.Makespan.Max()),
		f(r.JobExec.Sum()), f(r.JobExec.Min()), f(r.JobExec.Max()),
		f(r.MapTime.Sum()), f(r.ReduceTime.Sum()),
		f(r.MakespanHist.Mean()), f(r.JobExecHist.Mean()),
		r.MakespanHist, r.JobExecHist)
}

// TestFleetDeterminismAcrossWorkerCounts is the tentpole invariant: a
// given fleet seed produces byte-identical per-cluster event logs,
// Stats and merged totals regardless of worker count or scheduling
// order — workers=1 ≡ workers=N ≡ workers=GOMAXPROCS.
func TestFleetDeterminismAcrossWorkerCounts(t *testing.T) {
	const clusters = 12
	refOut, refRes := artifacts(t, testConfig(clusters, 1))
	counts := []int{4, runtime.GOMAXPROCS(0)}
	for _, w := range counts {
		out, res := artifacts(t, testConfig(clusters, w))
		for i := range refOut {
			if out[i] != refOut[i] {
				t.Fatalf("workers=%d: cluster %d artefacts diverge from workers=1 (%d vs %d bytes)",
					w, i, len(out[i]), len(refOut[i]))
			}
		}
		if got, want := mergedBits(res), mergedBits(refRes); got != want {
			t.Fatalf("workers=%d: merged result diverges from workers=1:\n%s\n%s", w, got, want)
		}
		if res.Workers != min(w, clusters) {
			t.Fatalf("Workers = %d, want %d", res.Workers, min(w, clusters))
		}
	}
}

// testArrivals builds cluster i's open arrival stream: two tenants
// with Poisson arrivals (one diurnal), pure in the provided rng stream.
func testArrivals(i int, rng *sim.Rand) mr.ArrivalSource {
	src, err := arrival.New(arrival.Config{
		Horizon:       400,
		Diurnal:       0.4,
		DiurnalPeriod: 300,
		Tenants: []arrival.Tenant{
			{Name: "analytics", Benchmarks: []string{"grep", "wordcount"},
				MeanInterarrival: 120, InputMBMin: 256, InputMBMax: 512, Reduces: 4, SLOSeconds: 200},
			{Name: "etl", Benchmarks: []string{"terasort"},
				MeanInterarrival: 200, InputMBMin: 384, InputMBMax: 384, Reduces: 4},
		},
	}, rng)
	if err != nil {
		panic(err)
	}
	return src
}

// TestFleetDeterminismOpenArrivals extends the tentpole invariant to
// open-arrival multi-tenant fleets: jobs submitted mid-simulation from
// seeded arrival streams, with a shared capacity policy rebalancing
// tenant caps, must still produce byte-identical per-cluster artefacts
// at workers=1 and workers=GOMAXPROCS.
func TestFleetDeterminismOpenArrivals(t *testing.T) {
	const clusters = 8
	mk := func(workers int) Config {
		cfg := testConfig(clusters, workers)
		cfg.Engine = core.EngineFairShare
		cfg.Specs = nil
		cfg.Arrivals = testArrivals
		return cfg
	}
	refOut, refRes := artifacts(t, mk(1))
	jobs := 0
	for _, a := range refOut {
		jobs += strings.Count(a, "job-submitted")
	}
	if jobs == 0 {
		t.Fatal("open-arrival fleet submitted no jobs")
	}
	for _, w := range []int{3, runtime.GOMAXPROCS(0)} {
		out, res := artifacts(t, mk(w))
		for i := range refOut {
			if out[i] != refOut[i] {
				t.Fatalf("workers=%d: cluster %d open-arrival artefacts diverge from workers=1 (%d vs %d bytes)",
					w, i, len(out[i]), len(refOut[i]))
			}
		}
		if got, want := mergedBits(res), mergedBits(refRes); got != want {
			t.Fatalf("workers=%d: merged open-arrival result diverges:\n%s\n%s", w, got, want)
		}
	}
}

// TestFleetSharedCapacityPolicy pins the stateless-policy contract: one
// explicitly shared policy instance across all workers must match a
// fleet where the policy is attached per engine default.
func TestFleetSharedCapacityPolicy(t *testing.T) {
	p, err := policy.NewFairShare(policy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(6, 3)
	cfg.Engine = core.EngineHadoopV1
	cfg.Specs = nil
	cfg.Arrivals = testArrivals
	cfg.Capacity = p
	shared, _ := artifacts(t, cfg)

	cfg2 := testConfig(6, 1)
	cfg2.Engine = core.EngineFairShare
	cfg2.Specs = nil
	cfg2.Arrivals = testArrivals
	perRun, _ := artifacts(t, cfg2)
	for i := range shared {
		if shared[i] != perRun[i] {
			t.Fatalf("cluster %d: shared policy instance diverges from per-run instances", i)
		}
	}
}

// TestFleetReuseDifferential pins substrate reuse against the NoReuse
// path: recycling arenas/fabrics across runs must not change a single
// byte of any cluster's output.
func TestFleetReuseDifferential(t *testing.T) {
	cfg := testConfig(8, 3)
	reused, _ := artifacts(t, cfg)
	cfg.NoReuse = true
	fresh, _ := artifacts(t, cfg)
	for i := range fresh {
		if reused[i] != fresh[i] {
			t.Fatalf("cluster %d: reused-substrate artefacts diverge from fresh-substrate run", i)
		}
	}
}

// TestFleetSeedSensitivity guards against a degenerate seed plan: a
// different fleet seed must actually change per-cluster outputs.
func TestFleetSeedSensitivity(t *testing.T) {
	cfg := testConfig(3, 2)
	a, _ := artifacts(t, cfg)
	cfg.Seed++
	b, _ := artifacts(t, cfg)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("changing the fleet seed changed no cluster's artefacts")
	}
	if ClusterSeed(1, 0) == ClusterSeed(1, 1) || ClusterSeed(1, 0) == ClusterSeed(2, 0) {
		t.Fatal("ClusterSeed collisions across index/seed")
	}
}

// TestFleetMergedStats sanity-checks the merged accumulators against
// the per-cluster artefact stream.
func TestFleetMergedStats(t *testing.T) {
	cfg := testConfig(6, 2)
	var makespans []float64
	var mu chan struct{} // buffered-1 channel as a mutex without sync import
	mu = make(chan struct{}, 1)
	cfg.PerCluster = func(o ClusterOut) {
		mu <- struct{}{}
		makespans = append(makespans, o.Result.LastFinish())
		<-mu
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 6 || res.Makespan.N() != 6 || res.MakespanHist.N() != 6 {
		t.Fatalf("merged counts: clusters=%d acc=%d hist=%d", res.Clusters, res.Makespan.N(), res.MakespanHist.N())
	}
	if res.Jobs != 6 || res.Completed != 6 {
		t.Fatalf("jobs=%d completed=%d, want 6/6", res.Jobs, res.Completed)
	}
	if res.Decisions == 0 {
		t.Fatal("SMapReduce fleet recorded no slot decisions")
	}
	var want stats.Acc
	for _, m := range makespans {
		want.Add(m)
	}
	if math.Float64bits(want.Sum()) != math.Float64bits(res.Makespan.Sum()) {
		t.Fatalf("merged makespan sum %v != per-cluster sum %v", res.Makespan.Sum(), want.Sum())
	}
	if res.MapTime.N() == 0 || res.ReduceTime.N() == 0 || res.JobExec.Mean() <= 0 {
		t.Fatalf("phase accumulators empty: map=%d reduce=%d exec=%v",
			res.MapTime.N(), res.ReduceTime.N(), res.JobExec.Mean())
	}
	if s := res.Summary(); !strings.Contains(s, "6 clusters") || !strings.Contains(s, "makespan") {
		t.Fatalf("Summary missing fields:\n%s", s)
	}
}

// TestFleetDefaults exercises the default cluster config, spec
// generator and worker count.
func TestFleetDefaults(t *testing.T) {
	if testing.Short() {
		// Default specs run up to 2 GB jobs; keep them out of -short.
		t.Skip("default-workload fleet is slow for -short")
	}
	res, err := Run(Config{Clusters: 3, Seed: 9, Engine: core.EngineHadoopV1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs < 3 {
		t.Fatalf("default specs produced %d jobs for 3 clusters", res.Jobs)
	}
	if res.Decisions != 0 {
		t.Fatal("HadoopV1 fleet recorded slot decisions")
	}
}

func TestFleetErrors(t *testing.T) {
	if _, err := Run(Config{Clusters: 0}); err == nil {
		t.Fatal("Clusters=0 did not error")
	}
	// An invalid engine fails inside core.Run; the lowest-index cluster
	// error must surface with fleet context.
	cfg := testConfig(3, 2)
	cfg.Engine = core.Engine(99)
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "fleet: cluster 0") {
		t.Fatalf("engine error not wrapped with fleet context: %v", err)
	}
	// A broken per-cluster config likewise.
	cfg = testConfig(2, 1)
	cfg.Cluster.Workers = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid cluster config did not error")
	}
}

func TestDefaultSpecsDeterministic(t *testing.T) {
	for i := 0; i < 50; i++ {
		seed := ClusterSeed(77, i)
		a := DefaultSpecs(i, sim.NewRand(seed).Fork(2))
		b := DefaultSpecs(i, sim.NewRand(seed).Fork(2))
		if len(a) != len(b) {
			t.Fatalf("cluster %d: spec counts differ", i)
		}
		for k := range a {
			if a[k].Name != b[k].Name || a[k].InputMB != b[k].InputMB || a[k].SubmitAt != b[k].SubmitAt {
				t.Fatalf("cluster %d spec %d differs between identical streams", i, k)
			}
			if err := a[k].Validate(); err != nil {
				t.Fatalf("cluster %d spec %d invalid: %v", i, k, err)
			}
		}
	}
}
