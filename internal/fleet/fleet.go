// Package fleet runs many independent cluster simulations — a fleet of
// tenant clusters — across a pool of workers with near-linear core
// scaling, the ROADMAP's sharded-simulation item.
//
// Three properties make the fleet more than a parallel loop:
//
//   - Per-worker substrate reuse. Each worker owns one mr.SimState
//     (event arena + fabric with its flow pool), reset between
//     consecutive runs, so steady-state fleet execution performs no
//     large allocations per cluster — PR 4's zero-alloc property
//     extended across runs, in the style of per-core workers with
//     phased reconciliation.
//
//   - Streaming merge. Workers fold each finished cluster into local
//     mergeable accumulators (stats.Acc, stats.Histogram) that combine
//     once at the end, so memory stays O(workers), not O(fleet).
//
//   - Determinism. Cluster i's seed is a pure function of the fleet
//     seed and i; reset substrate is observationally identical to
//     fresh substrate; and the merged accumulators are exact
//     (order-independent), so which worker ran which cluster — decided
//     by work-stealing — cannot leak into any result. A fleet run with
//     workers=1 is byte-identical to one with workers=N, per-cluster
//     event logs, Stats and merged totals alike. The test suite pins
//     this invariant.
package fleet

import (
	"fmt"
	"math"

	"smapreduce/internal/arrival"
	"smapreduce/internal/core"
	"smapreduce/internal/mr"
	"smapreduce/internal/par"
	"smapreduce/internal/puma"
	"smapreduce/internal/sim"
	"smapreduce/internal/stats"
)

// Defaults for the merged distributions' geometry. Histograms only
// merge over identical geometry, so these are fleet-level, not
// per-worker, choices.
const (
	// DefaultHistMax bounds the makespan/execution-time histograms'
	// range [0, DefaultHistMax) seconds; later samples land in the
	// overflow bucket (still counted in mean/quantiles' mass).
	DefaultHistMax = 4096
	// DefaultHistBuckets is the cell count at default geometry: 32 s
	// resolution over the default range.
	DefaultHistBuckets = 128
)

// Config describes a fleet run.
type Config struct {
	// Clusters is the fleet size. Must be positive.
	Clusters int
	// Workers is the worker-pool size; non-positive means par.Workers()
	// (GOMAXPROCS, overridable via SMR_WORKERS).
	Workers int
	// Seed is the fleet seed. Cluster i runs with seed
	// ClusterSeed(Seed, i), a pure function of (Seed, i).
	Seed uint64
	// Engine selects the evaluated system for every cluster.
	Engine core.Engine
	// Cluster is the per-tenant base configuration; its Seed is
	// overridden per cluster. The zero value means DefaultClusterConfig.
	Cluster mr.Config
	// SlotManager tunes the SMapReduce controller (ignored for the
	// baselines); zero means paper defaults.
	SlotManager core.SlotManagerConfig
	// Specs generates cluster i's workload. rng is derived from the
	// cluster's seed, so the workload is reproducible per cluster
	// regardless of worker count. Nil means DefaultSpecs.
	Specs func(i int, rng *sim.Rand) []mr.JobSpec
	// Arrivals, when non-nil, replaces Specs with an open arrival
	// process per cluster: the source is built fresh for cluster i from
	// the cluster's dedicated arrival stream (arrival fork of its
	// derived seed), so the stream is pure in (Seed, i) and identical
	// for every worker count.
	Arrivals func(i int, rng *sim.Rand) mr.ArrivalSource
	// Capacity attaches a multi-tenant capacity policy to every
	// cluster. One instance is shared fleet-wide, which is safe exactly
	// because mr.CapacityPolicy implementations must be stateless.
	Capacity mr.CapacityPolicy

	// CollectEvents attaches a structured event log to every cluster,
	// delivered through PerCluster. Off by default: the log is the one
	// per-cluster artefact whose size scales with the run.
	CollectEvents bool
	// PerCluster, when non-nil, receives every finished cluster's
	// artefacts. It is called on the worker goroutine that ran the
	// cluster, concurrently with other workers' callbacks and in no
	// particular index order, so it must be safe for concurrent use
	// (writing to out[o.Index] of a pre-sized slice is the canonical
	// pattern). The Result's cluster substrate is recycled for the
	// worker's next run: do not retain o.Result past the call.
	PerCluster func(o ClusterOut)

	// NoReuse builds fresh substrate for every cluster instead of
	// recycling the worker's SimState — the reuse-vs-fresh differential
	// verifier's knob, and a measuring stick for what the reuse path
	// saves.
	NoReuse bool

	// HistMax/HistBuckets override the merged histograms' geometry
	// ([0, HistMax) split into HistBuckets cells); non-positive values
	// take the defaults.
	HistMax     float64
	HistBuckets int
}

// ClusterOut is one finished cluster's artefacts, delivered to the
// PerCluster callback. Valid only during the call (see Config.PerCluster).
type ClusterOut struct {
	// Index is the cluster's fleet index in [0, Clusters).
	Index int
	// Seed is the cluster's derived seed.
	Seed uint64
	// Result is the engine run result: jobs, slot-manager decisions,
	// the event log (when CollectEvents) and the cluster itself for
	// Snapshot/report access.
	Result *core.Result
}

// Result is the merged outcome of a fleet run. The accumulators are
// exact: identical for every worker count and work partition.
type Result struct {
	Clusters int
	Workers  int
	Engine   core.Engine
	Seed     uint64

	// Jobs and Completed count submitted and finished jobs fleet-wide.
	Jobs      int
	Completed int
	// Decisions counts slot-manager decisions (SMapReduce only).
	Decisions int
	// SLOMisses counts completed jobs that finished past their latency
	// objective, fleet-wide.
	SLOMisses int

	// Makespan aggregates each cluster's last job finish time.
	Makespan     stats.Acc
	MakespanHist *stats.Histogram
	// JobExec aggregates per-job execution time (submission to
	// completion) over completed jobs.
	JobExec     stats.Acc
	JobExecHist *stats.Histogram
	// MapTime/ReduceTime aggregate the paper's per-job phase times over
	// completed jobs.
	MapTime    stats.Acc
	ReduceTime stats.Acc
}

// ClusterSeed derives cluster i's seed from the fleet seed: an
// independent splitmix stream per cluster, pure in (fleetSeed, i).
func ClusterSeed(fleetSeed uint64, i int) uint64 {
	return sim.NewRand(fleetSeed).Fork(uint64(i)).Uint64()
}

// DefaultClusterConfig is the per-tenant base configuration: the
// paper's cluster at half scale (8 task trackers), small enough that a
// fleet of thousands stays interactive.
func DefaultClusterConfig() mr.Config {
	cfg := mr.DefaultConfig()
	cfg.Workers = 8
	return cfg
}

// DefaultSpecs models a small tenant: one or two PUMA jobs with a
// seed-derived benchmark mix and input size. Pure in (i, rng stream).
func DefaultSpecs(i int, rng *sim.Rand) []mr.JobSpec {
	names := []string{"grep", "terasort", "histogram-ratings", "wordcount", "inverted-index"}
	mk := func(n int) mr.JobSpec {
		name := names[rng.Intn(len(names))]
		return mr.JobSpec{
			Name:    fmt.Sprintf("c%d-j%d-%s", i, n, name),
			Profile: puma.MustGet(name),
			InputMB: float64(512 + rng.Intn(4)*512), // 0.5–2 GB
			Reduces: 4,
		}
	}
	specs := []mr.JobSpec{mk(0)}
	if rng.Intn(4) == 0 { // every ~4th tenant runs a second, staggered job
		second := mk(1)
		second.SubmitAt = 10 + 10*rng.Float64()
		specs = append(specs, second)
	}
	return specs
}

// shard is one worker's private state: recycled substrate plus the
// local accumulators the final merge combines. Only the owning worker
// goroutine touches a shard until ForN returns.
type shard struct {
	sim *mr.SimState

	jobs, completed, decisions, sloMisses int

	makespan, jobExec         stats.Acc
	mapTime, reduceTime       stats.Acc
	makespanHist, jobExecHist *stats.Histogram
}

// Run executes the fleet and returns the merged result.
func Run(cfg Config) (*Result, error) {
	if cfg.Clusters <= 0 {
		return nil, fmt.Errorf("fleet: Clusters = %d, must be positive", cfg.Clusters)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	if workers > cfg.Clusters {
		workers = cfg.Clusters
	}
	base := cfg.Cluster
	if base.Workers == 0 {
		base = DefaultClusterConfig()
	}
	specs := cfg.Specs
	if specs == nil {
		specs = DefaultSpecs
	}
	histMax := cfg.HistMax
	if histMax <= 0 {
		histMax = DefaultHistMax
	}
	histBuckets := cfg.HistBuckets
	if histBuckets <= 0 {
		histBuckets = DefaultHistBuckets
	}

	shards := make([]*shard, workers)
	for w := range shards {
		shards[w] = &shard{
			sim:          mr.NewSimState(),
			makespanHist: stats.NewHistogram(0, histMax, histBuckets),
			jobExecHist:  stats.NewHistogram(0, histMax, histBuckets),
		}
	}
	err := par.ForN(cfg.Clusters, workers, func(worker, i int) error {
		return shards[worker].runOne(&cfg, base, specs, i)
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Clusters:     cfg.Clusters,
		Workers:      workers,
		Engine:       cfg.Engine,
		Seed:         cfg.Seed,
		MakespanHist: stats.NewHistogram(0, histMax, histBuckets),
		JobExecHist:  stats.NewHistogram(0, histMax, histBuckets),
	}
	// Merge order is fixed (worker index) for tidiness, but the
	// accumulators are exact, so any order would produce identical
	// bits — the property that makes the merged result independent of
	// the work-stealing partition.
	for _, sh := range shards {
		res.Jobs += sh.jobs
		res.Completed += sh.completed
		res.Decisions += sh.decisions
		res.SLOMisses += sh.sloMisses
		res.Makespan.Merge(&sh.makespan)
		res.JobExec.Merge(&sh.jobExec)
		res.MapTime.Merge(&sh.mapTime)
		res.ReduceTime.Merge(&sh.reduceTime)
		res.MakespanHist.Merge(sh.makespanHist)
		res.JobExecHist.Merge(sh.jobExecHist)
	}
	return res, nil
}

// runOne executes cluster i on this shard and folds its results in.
func (sh *shard) runOne(cfg *Config, base mr.Config, specs func(int, *sim.Rand) []mr.JobSpec, i int) error {
	seed := ClusterSeed(cfg.Seed, i)
	ccfg := base
	ccfg.Seed = seed
	st := sh.sim
	if cfg.NoReuse {
		st = nil
	}
	// The spec stream forks tag 2: the cluster itself consumes forks 0
	// (runtime noise) and 1 (DFS layout) of the same seed, and open
	// arrival streams fork 3 (arrival.RNG).
	opts := core.Options{
		Cluster:     ccfg,
		SlotManager: cfg.SlotManager,
		Sim:         st,
		Events:      cfg.CollectEvents,
		Capacity:    cfg.Capacity,
	}
	var jobSpecs []mr.JobSpec
	if cfg.Arrivals != nil {
		opts.Arrivals = cfg.Arrivals(i, arrival.RNG(seed))
	} else {
		jobSpecs = specs(i, sim.NewRand(seed).Fork(2))
	}
	res, err := core.Run(cfg.Engine, opts, jobSpecs...)
	if err != nil {
		return fmt.Errorf("fleet: cluster %d (seed %#x): %w", i, seed, err)
	}

	last := res.LastFinish()
	sh.makespan.Add(last)
	sh.makespanHist.Add(last)
	for _, j := range res.Jobs {
		sh.jobs++
		if !j.Finished() {
			continue
		}
		sh.completed++
		if j.SLOMissed() {
			sh.sloMisses++
		}
		sh.jobExec.Add(j.ExecutionTime())
		sh.jobExecHist.Add(j.ExecutionTime())
		if mt := j.MapTime(); !math.IsNaN(mt) {
			sh.mapTime.Add(mt)
		}
		if rt := j.ReduceTime(); !math.IsNaN(rt) {
			sh.reduceTime.Add(rt)
		}
	}
	sh.decisions += len(res.Decisions)
	if cfg.PerCluster != nil {
		cfg.PerCluster(ClusterOut{Index: i, Seed: seed, Result: res})
	}
	return nil
}

// Summary renders the merged result for terminal output.
func (r *Result) Summary() string {
	return fmt.Sprintf(
		"fleet: %d clusters on %d workers, engine %s, seed %#x\n"+
			"  jobs:      %d submitted, %d completed, %d slot decisions, %d SLO misses\n"+
			"  makespan:  mean %.1fs  p50 %.1fs  p99 %.1fs  max %.1fs\n"+
			"             %s\n"+
			"  job exec:  mean %.1fs  p50 %.1fs  p99 %.1fs  max %.1fs\n"+
			"             %s\n"+
			"  map time:  mean %.1fs   reduce time: mean %.1fs",
		r.Clusters, r.Workers, r.Engine, r.Seed,
		r.Jobs, r.Completed, r.Decisions, r.SLOMisses,
		r.Makespan.Mean(), r.MakespanHist.Quantile(0.5), r.MakespanHist.Quantile(0.99), r.Makespan.Max(),
		r.MakespanHist,
		r.JobExec.Mean(), r.JobExecHist.Quantile(0.5), r.JobExecHist.Quantile(0.99), r.JobExec.Max(),
		r.JobExecHist,
		r.MapTime.Mean(), r.ReduceTime.Mean(),
	)
}
