// Package arrival generates open job streams for the multi-tenant
// runtime: seeded Poisson arrivals with diurnal rate modulation, mixed
// PUMA tenant profiles, long-running service streams alongside batch,
// and trace replay. Sources implement mr.ArrivalSource and draw every
// random bit from seeded splitmix streams — never the wall clock or
// the global RNG — so open-arrival runs stay byte-identical across
// fleet worker counts.
package arrival

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"smapreduce/internal/mr"
	"smapreduce/internal/puma"
	"smapreduce/internal/sim"
)

// RNGFork is the stream fork reserved for arrival generation. The
// cluster runtime owns fork 0 (task noise), the DFS fork 1, fleet spec
// generation fork 2; arrivals draw from fork 3 of the same cluster
// seed so attaching an arrival source never shifts existing streams.
const RNGFork = 3

// RNG derives the dedicated arrival stream for a cluster seed.
func RNG(clusterSeed uint64) *sim.Rand {
	return sim.NewRand(clusterSeed).Fork(RNGFork)
}

// Tenant describes one tenant's submission behaviour.
type Tenant struct {
	// Name is the tenant identity carried on every generated JobSpec.
	Name string `json:"name"`
	// Benchmarks are PUMA profile names drawn uniformly per job.
	Benchmarks []string `json:"benchmarks"`
	// MeanInterarrival is the mean gap between submissions in virtual
	// seconds — the inverse Poisson rate. For Service tenants it is the
	// exact, deterministic period.
	MeanInterarrival float64 `json:"mean_interarrival"`
	// InputMBMin/InputMBMax bound the per-job input size, drawn
	// uniformly. Equal values pin the size.
	InputMBMin float64 `json:"input_mb_min"`
	InputMBMax float64 `json:"input_mb_max"`
	// Reduces is the reduce task count per job.
	Reduces int `json:"reduces"`
	// SLOSeconds is the per-job latency objective (0 = none).
	SLOSeconds float64 `json:"slo_seconds"`
	// Priority is carried onto the specs (Priority scheduler only).
	Priority int `json:"priority,omitempty"`
	// MaxJobs caps this tenant's submissions (0 = no per-tenant cap).
	MaxJobs int `json:"max_jobs,omitempty"`
	// Service marks a long-running service stream: submissions at an
	// exact MeanInterarrival cadence, exempt from diurnal modulation —
	// the always-on ingest/compaction load batch tenants compete with.
	Service bool `json:"service,omitempty"`
}

// Config describes one arrival process.
type Config struct {
	// Horizon stops generation at this virtual time (0 = unbounded; then
	// MaxJobs must bound the stream).
	Horizon float64 `json:"horizon"`
	// MaxJobs caps total submissions across tenants (0 = unbounded).
	MaxJobs int `json:"max_jobs,omitempty"`
	// LoadFactor scales every non-service tenant's arrival rate — the
	// offered-load knob experiments sweep. 0 means 1.
	LoadFactor float64 `json:"load_factor,omitempty"`
	// Diurnal is the depth of sinusoidal rate modulation in [0,1):
	// rate(t) = base·(1 + Diurnal·sin(2πt/DiurnalPeriod)). 0 disables.
	Diurnal float64 `json:"diurnal,omitempty"`
	// DiurnalPeriod is the modulation period in virtual seconds
	// (default 86400 when Diurnal > 0).
	DiurnalPeriod float64 `json:"diurnal_period,omitempty"`
	// Tenants lists the competing tenants.
	Tenants []Tenant `json:"tenants"`
}

// Validate reports the first problem with the config, or nil.
func (c Config) Validate() error {
	switch {
	case c.Horizon < 0:
		return fmt.Errorf("arrival: Horizon = %v, must be >= 0", c.Horizon)
	case c.MaxJobs < 0:
		return fmt.Errorf("arrival: MaxJobs = %d, must be >= 0", c.MaxJobs)
	case c.Horizon == 0 && c.MaxJobs == 0:
		return fmt.Errorf("arrival: unbounded stream: set Horizon or MaxJobs")
	case c.LoadFactor < 0:
		return fmt.Errorf("arrival: LoadFactor = %v, must be >= 0", c.LoadFactor)
	case c.Diurnal < 0 || c.Diurnal >= 1:
		return fmt.Errorf("arrival: Diurnal = %v, must be in [0,1)", c.Diurnal)
	case c.DiurnalPeriod < 0:
		return fmt.Errorf("arrival: DiurnalPeriod = %v, must be >= 0", c.DiurnalPeriod)
	case c.Diurnal > 0 && c.DiurnalPeriod == 0 && defaultDiurnalPeriod <= 0:
		return fmt.Errorf("arrival: unreachable")
	case len(c.Tenants) == 0:
		return fmt.Errorf("arrival: no tenants")
	}
	seen := make(map[string]bool, len(c.Tenants))
	for i, t := range c.Tenants {
		switch {
		case t.Name == "":
			return fmt.Errorf("arrival: tenant %d has empty name", i)
		case seen[t.Name]:
			return fmt.Errorf("arrival: duplicate tenant %q", t.Name)
		case t.MeanInterarrival <= 0:
			return fmt.Errorf("arrival: tenant %s: MeanInterarrival = %v, must be positive", t.Name, t.MeanInterarrival)
		case len(t.Benchmarks) == 0:
			return fmt.Errorf("arrival: tenant %s: no benchmarks", t.Name)
		case t.InputMBMin <= 0 || t.InputMBMax < t.InputMBMin:
			return fmt.Errorf("arrival: tenant %s: input range [%v,%v] invalid", t.Name, t.InputMBMin, t.InputMBMax)
		case t.Reduces <= 0:
			return fmt.Errorf("arrival: tenant %s: Reduces = %d, must be positive", t.Name, t.Reduces)
		case t.SLOSeconds < 0:
			return fmt.Errorf("arrival: tenant %s: SLOSeconds = %v, must be >= 0", t.Name, t.SLOSeconds)
		case t.MaxJobs < 0:
			return fmt.Errorf("arrival: tenant %s: MaxJobs = %d, must be >= 0", t.Name, t.MaxJobs)
		}
		seen[t.Name] = true
		for _, b := range t.Benchmarks {
			if _, err := puma.Get(b); err != nil {
				return fmt.Errorf("arrival: tenant %s: %w", t.Name, err)
			}
		}
	}
	return nil
}

const defaultDiurnalPeriod = 86400.0

// ParseConfig decodes a JSON arrival config and validates it. Unknown
// fields are rejected so typos fail loudly.
func ParseConfig(data []byte) (Config, error) {
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("arrival: parsing config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// tenantStream generates one tenant's submissions lazily.
type tenantStream struct {
	cfg      Tenant
	index    int
	rng      *sim.Rand
	profiles []puma.Profile
	rate     float64 // effective base arrival rate (jobs/s)
	seq      int     // jobs emitted
	nextAt   float64 // staged next arrival time
	done     bool
}

// Source is a deterministic multi-tenant arrival process implementing
// mr.ArrivalSource: per-tenant Poisson (or exact service cadence)
// streams with optional diurnal thinning, merged in time order with
// tenant-index tie-breaks.
type Source struct {
	cfg     Config
	streams []*tenantStream
	emitted int
}

// New builds a source. rng should be the dedicated arrival stream —
// RNG(clusterSeed) — or any seeded fork reserved for arrivals; each
// tenant forks its own child so tenant streams are independent.
func New(cfg Config, rng *sim.Rand) (*Source, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.LoadFactor == 0 {
		cfg.LoadFactor = 1
	}
	if cfg.Diurnal > 0 && cfg.DiurnalPeriod == 0 {
		cfg.DiurnalPeriod = defaultDiurnalPeriod
	}
	s := &Source{cfg: cfg}
	for i, t := range cfg.Tenants {
		ts := &tenantStream{
			cfg:   t,
			index: i,
			rng:   rng.Fork(uint64(i)),
			rate:  1 / t.MeanInterarrival,
		}
		if !t.Service {
			ts.rate *= cfg.LoadFactor
		}
		for _, b := range t.Benchmarks {
			p, err := puma.Get(b)
			if err != nil {
				return nil, err // unreachable after Validate
			}
			ts.profiles = append(ts.profiles, p)
		}
		ts.advance(&cfg, 0)
		s.streams = append(s.streams, ts)
	}
	return s, nil
}

// advance stages the stream's next arrival time after "from", or marks
// the stream done when it crosses the horizon or its job cap.
func (ts *tenantStream) advance(cfg *Config, from float64) {
	if ts.cfg.MaxJobs > 0 && ts.seq >= ts.cfg.MaxJobs {
		ts.done = true
		return
	}
	t := from
	if ts.cfg.Service {
		// Exact cadence, first submission one period in.
		t += ts.cfg.MeanInterarrival
	} else {
		// Poisson via exponential gaps; diurnal modulation by
		// Lewis-Shedler thinning against the peak rate.
		peak := ts.rate * (1 + cfg.Diurnal)
		for {
			u := ts.rng.Float64()
			t += -math.Log(1-u) / peak
			if cfg.Diurnal == 0 {
				break
			}
			inst := ts.rate * (1 + cfg.Diurnal*math.Sin(2*math.Pi*t/cfg.DiurnalPeriod))
			if ts.rng.Float64()*peak <= inst {
				break
			}
			if cfg.Horizon > 0 && t > cfg.Horizon {
				break // past the horizon; the check below retires the stream
			}
		}
	}
	if cfg.Horizon > 0 && t > cfg.Horizon {
		ts.done = true
		return
	}
	ts.nextAt = t
}

// spec materialises the staged arrival as a JobSpec.
func (ts *tenantStream) spec() mr.JobSpec {
	p := ts.profiles[0]
	if len(ts.profiles) > 1 {
		p = ts.profiles[ts.rng.Intn(len(ts.profiles))]
	}
	mb := ts.cfg.InputMBMin
	if ts.cfg.InputMBMax > ts.cfg.InputMBMin {
		mb += (ts.cfg.InputMBMax - ts.cfg.InputMBMin) * ts.rng.Float64()
	}
	ts.seq++
	return mr.JobSpec{
		Name:       fmt.Sprintf("%s/%s-%d", ts.cfg.Name, p.Name, ts.seq),
		Profile:    p,
		InputMB:    mb,
		Reduces:    ts.cfg.Reduces,
		SubmitAt:   ts.nextAt,
		Tenant:     ts.cfg.Name,
		SLOSeconds: ts.cfg.SLOSeconds,
		Priority:   ts.cfg.Priority,
	}
}

// Next implements mr.ArrivalSource: the earliest staged arrival across
// tenants, ties broken by tenant index.
func (s *Source) Next() (mr.JobSpec, float64, bool) {
	if s.cfg.MaxJobs > 0 && s.emitted >= s.cfg.MaxJobs {
		return mr.JobSpec{}, 0, false
	}
	var pick *tenantStream
	for _, ts := range s.streams {
		if ts.done {
			continue
		}
		if pick == nil || ts.nextAt < pick.nextAt {
			pick = ts
		}
	}
	if pick == nil {
		return mr.JobSpec{}, 0, false
	}
	at := pick.nextAt
	spec := pick.spec()
	pick.advance(&s.cfg, at)
	s.emitted++
	return spec, at, true
}

// Emitted reports how many jobs the source has produced so far.
func (s *Source) Emitted() int { return s.emitted }

// FromSpecs replays a fixed job list as an arrival stream, ordered by
// SubmitAt with original-index tie-breaks — the trace-driven source.
// The specs' SubmitAt fields are the arrival times.
func FromSpecs(specs []mr.JobSpec) mr.ArrivalSource {
	ordered := append([]mr.JobSpec(nil), specs...)
	sort.SliceStable(ordered, func(i, k int) bool { return ordered[i].SubmitAt < ordered[k].SubmitAt })
	return &replay{specs: ordered}
}

type replay struct {
	specs []mr.JobSpec
	pos   int
}

func (r *replay) Next() (mr.JobSpec, float64, bool) {
	if r.pos >= len(r.specs) {
		return mr.JobSpec{}, 0, false
	}
	spec := r.specs[r.pos]
	r.pos++
	return spec, spec.SubmitAt, true
}

var _ mr.ArrivalSource = (*Source)(nil)
