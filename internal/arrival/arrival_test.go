package arrival

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"smapreduce/internal/mr"
)

func twoTenantConfig() Config {
	return Config{
		Horizon: 2000,
		Tenants: []Tenant{
			{Name: "analytics", Benchmarks: []string{"wordcount", "grep"},
				MeanInterarrival: 60, InputMBMin: 256, InputMBMax: 1024, Reduces: 4, SLOSeconds: 300},
			{Name: "etl", Benchmarks: []string{"terasort"},
				MeanInterarrival: 120, InputMBMin: 512, InputMBMax: 512, Reduces: 8},
		},
	}
}

func drain(t *testing.T, s *Source) []mr.JobSpec {
	t.Helper()
	var out []mr.JobSpec
	for {
		spec, at, ok := s.Next()
		if !ok {
			return out
		}
		if at != spec.SubmitAt {
			t.Fatalf("arrival time %v != spec.SubmitAt %v", at, spec.SubmitAt)
		}
		out = append(out, spec)
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{},                    // unbounded, no tenants
		{Horizon: -1},         // negative horizon
		{Horizon: 100},        // no tenants
		{Horizon: 100, Diurnal: 1.2, Tenants: twoTenantConfig().Tenants},
		{Horizon: 100, Tenants: []Tenant{{Name: "", Benchmarks: []string{"grep"}, MeanInterarrival: 1, InputMBMin: 1, InputMBMax: 1, Reduces: 1}}},
		{Horizon: 100, Tenants: []Tenant{{Name: "a", Benchmarks: []string{"no-such-benchmark"}, MeanInterarrival: 1, InputMBMin: 1, InputMBMax: 1, Reduces: 1}}},
		{Horizon: 100, Tenants: []Tenant{{Name: "a", Benchmarks: []string{"grep"}, MeanInterarrival: 0, InputMBMin: 1, InputMBMax: 1, Reduces: 1}}},
		{Horizon: 100, Tenants: []Tenant{{Name: "a", Benchmarks: []string{"grep"}, MeanInterarrival: 1, InputMBMin: 4, InputMBMax: 2, Reduces: 1}}},
		{Horizon: 100, Tenants: []Tenant{{Name: "a", Benchmarks: []string{"grep"}, MeanInterarrival: 1, InputMBMin: 1, InputMBMax: 1, Reduces: 0}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
	if err := twoTenantConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestSourceDeterminism(t *testing.T) {
	// Two sources from the same seed must produce identical streams —
	// the property open-arrival fleet determinism rests on.
	cfg := twoTenantConfig()
	cfg.Diurnal = 0.5
	cfg.DiurnalPeriod = 600
	s1, err := New(cfg, RNG(42))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(cfg, RNG(42))
	if err != nil {
		t.Fatal(err)
	}
	a, b := drain(t, s1), drain(t, s2)
	if len(a) == 0 {
		t.Fatal("source produced no jobs")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	s3, err := New(cfg, RNG(43))
	if err != nil {
		t.Fatal(err)
	}
	if c := drain(t, s3); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestStreamProperties(t *testing.T) {
	cfg := twoTenantConfig()
	s, err := New(cfg, RNG(7))
	if err != nil {
		t.Fatal(err)
	}
	specs := drain(t, s)
	if len(specs) < 10 {
		t.Fatalf("only %d jobs over a 2000 s horizon", len(specs))
	}
	if s.Emitted() != len(specs) {
		t.Errorf("Emitted() = %d, want %d", s.Emitted(), len(specs))
	}
	last := 0.0
	perTenant := map[string]int{}
	for i, spec := range specs {
		if spec.SubmitAt < last {
			t.Fatalf("job %d out of order: %v after %v", i, spec.SubmitAt, last)
		}
		last = spec.SubmitAt
		if spec.SubmitAt > cfg.Horizon {
			t.Fatalf("job %d past horizon: %v", i, spec.SubmitAt)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		perTenant[spec.Tenant]++
		switch spec.Tenant {
		case "analytics":
			if spec.InputMB < 256 || spec.InputMB > 1024 {
				t.Errorf("job %d input %v outside [256,1024]", i, spec.InputMB)
			}
			if spec.SLOSeconds != 300 {
				t.Errorf("job %d SLO %v, want 300", i, spec.SLOSeconds)
			}
		case "etl":
			if spec.InputMB != 512 {
				t.Errorf("job %d input %v, want pinned 512", i, spec.InputMB)
			}
		default:
			t.Errorf("job %d has unknown tenant %q", i, spec.Tenant)
		}
	}
	if perTenant["analytics"] == 0 || perTenant["etl"] == 0 {
		t.Errorf("a tenant never submitted: %v", perTenant)
	}
}

func TestMaxJobsBoundsStream(t *testing.T) {
	cfg := twoTenantConfig()
	cfg.Horizon = 0
	cfg.MaxJobs = 25
	s, err := New(cfg, RNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(drain(t, s)); got != 25 {
		t.Errorf("emitted %d jobs, want exactly MaxJobs=25", got)
	}
}

func TestPerTenantMaxJobs(t *testing.T) {
	cfg := twoTenantConfig()
	cfg.Tenants[0].MaxJobs = 3
	s, err := New(cfg, RNG(1))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, spec := range drain(t, s) {
		if spec.Tenant == "analytics" {
			n++
		}
	}
	if n != 3 {
		t.Errorf("analytics submitted %d jobs, want 3", n)
	}
}

func TestServiceCadenceIsExact(t *testing.T) {
	cfg := Config{
		Horizon: 1000,
		Tenants: []Tenant{{Name: "ingest", Benchmarks: []string{"grep"},
			MeanInterarrival: 100, InputMBMin: 64, InputMBMax: 64, Reduces: 1, Service: true}},
	}
	s, err := New(cfg, RNG(9))
	if err != nil {
		t.Fatal(err)
	}
	specs := drain(t, s)
	if len(specs) != 10 {
		t.Fatalf("got %d service jobs over 1000 s at 100 s cadence, want 10", len(specs))
	}
	for i, spec := range specs {
		want := float64(i+1) * 100
		if math.Abs(spec.SubmitAt-want) > 1e-9 {
			t.Errorf("service job %d at %v, want %v", i, spec.SubmitAt, want)
		}
	}
}

func TestLoadFactorScalesRate(t *testing.T) {
	base := twoTenantConfig()
	s1, err := New(base, RNG(5))
	if err != nil {
		t.Fatal(err)
	}
	hot := base
	hot.LoadFactor = 3
	s2, err := New(hot, RNG(5))
	if err != nil {
		t.Fatal(err)
	}
	n1, n2 := len(drain(t, s1)), len(drain(t, s2))
	if n2 < 2*n1 {
		t.Errorf("load factor 3 produced %d jobs vs %d at baseline — rate not scaled", n2, n1)
	}
}

func TestDiurnalModulatesRate(t *testing.T) {
	// With deep modulation and the period matching the horizon, the
	// first half (sin > 0) must see more arrivals than the second.
	cfg := Config{
		Horizon:       10000,
		Diurnal:       0.9,
		DiurnalPeriod: 10000,
		Tenants: []Tenant{{Name: "a", Benchmarks: []string{"grep"},
			MeanInterarrival: 20, InputMBMin: 64, InputMBMax: 64, Reduces: 1}},
	}
	s, err := New(cfg, RNG(11))
	if err != nil {
		t.Fatal(err)
	}
	firstHalf, secondHalf := 0, 0
	for _, spec := range drain(t, s) {
		if spec.SubmitAt < cfg.Horizon/2 {
			firstHalf++
		} else {
			secondHalf++
		}
	}
	if firstHalf <= secondHalf {
		t.Errorf("diurnal peak half had %d arrivals vs trough half %d", firstHalf, secondHalf)
	}
}

func TestFromSpecsReplay(t *testing.T) {
	specs := []mr.JobSpec{
		{Name: "c", SubmitAt: 30},
		{Name: "a", SubmitAt: 10},
		{Name: "b", SubmitAt: 10},
	}
	src := FromSpecs(specs)
	var names []string
	for {
		spec, at, ok := src.Next()
		if !ok {
			break
		}
		if at != spec.SubmitAt {
			t.Fatalf("at %v != SubmitAt %v", at, spec.SubmitAt)
		}
		names = append(names, spec.Name)
	}
	// Ordered by SubmitAt, original order preserved on ties.
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(names, want) {
		t.Errorf("replay order %v, want %v", names, want)
	}
	// The input slice must not be reordered.
	if specs[0].Name != "c" {
		t.Error("FromSpecs mutated its input")
	}
}

func TestParseConfig(t *testing.T) {
	data, err := json.Marshal(twoTenantConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, twoTenantConfig()) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", cfg, twoTenantConfig())
	}
	if _, err := ParseConfig([]byte(`{"horizon": 100}`)); err == nil {
		t.Error("ParseConfig accepted a config with no tenants")
	}
	if _, err := ParseConfig([]byte(`not json`)); err == nil {
		t.Error("ParseConfig accepted malformed JSON")
	}
	if _, err := ParseConfig([]byte(`{"horzon": 100, "tenants": []}`)); err == nil {
		t.Error("ParseConfig accepted a misspelled field")
	}
}
