// Package localmr is a real, executing MapReduce engine for a single
// machine: goroutine worker pools run user map and reduce functions
// over in-memory records, with hash partitioning, per-partition sort,
// an optional combiner, and the same map→shuffle→reduce structure as
// the simulated runtime.
//
// Its distinguishing feature mirrors the paper's contribution: the map
// and reduce worker pools are resized at runtime by a pool manager
// (pool.go) that measures throughput, grows the pool while throughput
// rises, detects the thrashing point where more workers stop helping,
// and shrinks lazily — no worker is ever interrupted mid-task.
package localmr

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// KV is one key/value record.
type KV struct {
	Key, Value string
}

// Mapper transforms one input record into any number of intermediate
// records via emit. Implementations must be safe for concurrent use.
type Mapper func(key, value string, emit func(k, v string))

// Reducer folds all values of one key into any number of output
// records via emit. Implementations must be safe for concurrent use.
type Reducer func(key string, values []string, emit func(k, v string))

// Job describes one MapReduce computation.
type Job struct {
	Name    string
	Input   []KV
	Map     Mapper
	Reduce  Reducer
	Combine Reducer // optional map-side pre-aggregation

	// Partition overrides the default FNV hash partitioner. It must
	// return a value in [0, partitions) for every key; out-of-range
	// values fail the run. Range partitioners (sampled, as in TeraSort)
	// make the concatenation of per-partition outputs globally sorted.
	Partition func(key string, partitions int) int

	// GroupBy enables secondary sort: partitioning and reduce grouping
	// use GroupBy(key) while records inside a group are delivered in
	// full-key order. The canonical pattern is a composite key
	// "primary\x1Fsecondary" with GroupBy returning the primary part;
	// the reducer then sees each primary key once, with values ordered
	// by the secondary component. Nil means ordinary grouping by the
	// full key.
	GroupBy func(key string) string
}

// groupOf applies GroupBy or the identity.
func (j Job) groupOf(key string) string {
	if j.GroupBy == nil {
		return key
	}
	return j.GroupBy(key)
}

// partition routes a key through the job's partitioner.
func (j Job) partition(key string, partitions int) (int, error) {
	if j.Partition == nil {
		return partitionOf(key, partitions), nil
	}
	p := j.Partition(key, partitions)
	if p < 0 || p >= partitions {
		return 0, fmt.Errorf("localmr: partitioner returned %d for %q with %d partitions", p, key, partitions)
	}
	return p, nil
}

// Config tunes the engine.
type Config struct {
	// MapWorkers and ReduceWorkers size the pools; with Dynamic set
	// they are only the starting sizes.
	MapWorkers    int
	ReduceWorkers int
	// MaxWorkers bounds dynamic growth.
	MaxWorkers int
	// Partitions is the number of reduce partitions (the "reduce task
	// count"). Defaults to ReduceWorkers when zero.
	Partitions int
	// ChunkSize is records per map task. Defaults to 512.
	ChunkSize int
	// Dynamic enables the runtime pool manager.
	Dynamic bool
	// ManagerTasksPerDecision is how many completed tasks the pool
	// manager waits for between sizing decisions. Defaults to 8.
	ManagerTasksPerDecision int
}

// DefaultConfig returns a sensible local setup.
func DefaultConfig() Config {
	return Config{
		MapWorkers:    2,
		ReduceWorkers: 2,
		MaxWorkers:    16,
		ChunkSize:     512,
		Dynamic:       true,
	}
}

// Validate reports the first problem with the config, or nil.
func (c Config) Validate() error {
	switch {
	case c.MapWorkers <= 0:
		return fmt.Errorf("localmr: MapWorkers = %d, must be positive", c.MapWorkers)
	case c.ReduceWorkers <= 0:
		return fmt.Errorf("localmr: ReduceWorkers = %d, must be positive", c.ReduceWorkers)
	case c.MaxWorkers < c.MapWorkers || c.MaxWorkers < c.ReduceWorkers:
		return fmt.Errorf("localmr: MaxWorkers = %d below initial pool sizes", c.MaxWorkers)
	case c.Partitions < 0:
		return fmt.Errorf("localmr: Partitions = %d, must be >= 0", c.Partitions)
	case c.ChunkSize < 0:
		return fmt.Errorf("localmr: ChunkSize = %d, must be >= 0", c.ChunkSize)
	case c.ManagerTasksPerDecision < 0:
		return fmt.Errorf("localmr: ManagerTasksPerDecision = %d, must be >= 0", c.ManagerTasksPerDecision)
	}
	return nil
}

// Stats reports what the engine did.
type Stats struct {
	MapTasks       int
	ReduceTasks    int
	Intermediate   int // records entering the shuffle (post-combine)
	Output         int // records emitted by reducers
	MapPoolPeak    int
	ReducePoolPeak int
	PoolDecisions  []PoolDecision
}

// Result is the job output: pairs sorted by key (then value), plus the
// per-partition outputs (each sorted within itself — with a range
// partitioner their concatenation is the total order) and execution
// statistics.
type Result struct {
	Pairs       []KV
	ByPartition [][]KV
	Stats       Stats
}

// Run executes the job. The result is deterministic for a given job:
// output order is fully sorted and combiner application is per map
// task, regardless of worker counts or scheduling.
func Run(cfg Config, job Job) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if job.Map == nil || job.Reduce == nil {
		return nil, fmt.Errorf("localmr: job %q needs both Map and Reduce", job.Name)
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = cfg.ReduceWorkers
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = 512
	}
	if cfg.ManagerTasksPerDecision == 0 {
		cfg.ManagerTasksPerDecision = 8
	}

	res := &Result{}

	// ---- Map stage -----------------------------------------------------
	chunks := chunkInput(job.Input, cfg.ChunkSize)
	res.Stats.MapTasks = len(chunks)

	parts := make([][]KV, cfg.Partitions)
	var partMu sync.Mutex

	var runErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = err
		}
		errMu.Unlock()
	}

	mapPool := newPool("map", cfg.MapWorkers, cfg.MaxWorkers, cfg.Dynamic, cfg.ManagerTasksPerDecision)
	mapPool.run(len(chunks), func(i int) {
		defer func() {
			if r := recover(); r != nil {
				fail(fmt.Errorf("localmr: map task %d panicked: %v", i, r))
			}
		}()
		local := make([][]KV, cfg.Partitions)
		emit := func(k, v string) {
			p, err := job.partition(job.groupOf(k), cfg.Partitions)
			if err != nil {
				panic(err)
			}
			local[p] = append(local[p], KV{k, v})
		}
		for _, kv := range chunks[i] {
			job.Map(kv.Key, kv.Value, emit)
		}
		if job.Combine != nil {
			for p := range local {
				local[p] = combineBucket(local[p], job.Combine)
			}
		}
		partMu.Lock()
		for p := range local {
			parts[p] = append(parts[p], local[p]...)
		}
		partMu.Unlock()
	})
	if runErr != nil {
		return nil, runErr
	}
	res.Stats.MapPoolPeak = mapPool.peak()
	res.Stats.PoolDecisions = append(res.Stats.PoolDecisions, mapPool.decisions()...)
	for p := range parts {
		res.Stats.Intermediate += len(parts[p])
	}

	// ---- Barrier + reduce stage ----------------------------------------
	outs := make([][]KV, cfg.Partitions)
	res.Stats.ReduceTasks = cfg.Partitions
	reducePool := newPool("reduce", cfg.ReduceWorkers, cfg.MaxWorkers, cfg.Dynamic, cfg.ManagerTasksPerDecision)
	reducePool.run(cfg.Partitions, func(p int) {
		defer func() {
			if r := recover(); r != nil {
				fail(fmt.Errorf("localmr: reduce partition %d panicked: %v", p, r))
			}
		}()
		outs[p] = reducePartition(parts[p], job.Reduce, job.groupOf)
	})
	if runErr != nil {
		return nil, runErr
	}
	res.Stats.ReducePoolPeak = reducePool.peak()
	res.Stats.PoolDecisions = append(res.Stats.PoolDecisions, reducePool.decisions()...)

	res.ByPartition = outs
	for _, out := range outs {
		res.Pairs = append(res.Pairs, out...)
	}
	sortKVs(res.Pairs)
	res.Stats.Output = len(res.Pairs)
	return res, nil
}

// chunkInput slices the input into map tasks.
func chunkInput(in []KV, chunk int) [][]KV {
	if len(in) == 0 {
		return nil
	}
	var chunks [][]KV
	for start := 0; start < len(in); start += chunk {
		end := start + chunk
		if end > len(in) {
			end = len(in)
		}
		chunks = append(chunks, in[start:end])
	}
	return chunks
}

// partitionOf assigns a key to a reduce partition by FNV hash, the same
// scheme as Hadoop's default HashPartitioner.
func partitionOf(key string, partitions int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(partitions))
}

// combineBucket sorts one map task's bucket and applies the combiner
// per key group — exactly Hadoop's map-side combine semantics.
func combineBucket(kvs []KV, combine Reducer) []KV {
	if len(kvs) == 0 {
		return kvs
	}
	sortKVs(kvs)
	var out []KV
	emit := func(k, v string) { out = append(out, KV{k, v}) }
	forEachGroup(kvs, func(key string, values []string) {
		combine(key, values, emit)
	})
	return out
}

// reducePartition sorts a partition by full key, groups by groupOf and
// reduces. With the identity group function this is ordinary MapReduce
// grouping; with a GroupBy it is Hadoop's secondary sort: values of a
// group arrive ordered by the full composite key.
func reducePartition(kvs []KV, reduce Reducer, groupOf func(string) string) []KV {
	if len(kvs) == 0 {
		return nil
	}
	sorted := append([]KV(nil), kvs...)
	sortKVs(sorted)
	var out []KV
	emit := func(k, v string) { out = append(out, KV{k, v}) }
	for i := 0; i < len(sorted); {
		group := groupOf(sorted[i].Key)
		j := i
		var values []string
		for j < len(sorted) && groupOf(sorted[j].Key) == group {
			values = append(values, sorted[j].Value)
			j++
		}
		reduce(group, values, emit)
		i = j
	}
	return out
}

// forEachGroup walks full-key groups of a sorted slice (combiner path).
func forEachGroup(sorted []KV, fn func(key string, values []string)) {
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].Key == sorted[i].Key {
			j++
		}
		values := make([]string, 0, j-i)
		for _, kv := range sorted[i:j] {
			values = append(values, kv.Value)
		}
		fn(sorted[i].Key, values)
		i = j
	}
}

// sortKVs orders by key then value, the engine's canonical order.
func sortKVs(kvs []KV) {
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].Key != kvs[j].Key {
			return kvs[i].Key < kvs[j].Key
		}
		return kvs[i].Value < kvs[j].Value
	})
}
