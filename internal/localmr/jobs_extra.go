package localmr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file implements the remaining PUMA text benchmarks as real jobs
// for the local engine, plus Chain for the multi-stage patterns some of
// them need (ranked inverted index is PUMA's canonical two-stage job).

// TermVector builds the PUMA term-vector job: for each document, the
// terms whose frequency is at least minCount, ordered by descending
// frequency (ties by term).
func TermVector(docs map[string]string, minCount int) Job {
	return Job{
		Name:  "term-vector",
		Input: DocsInput(docs),
		Map: func(doc, body string, emit func(k, v string)) {
			counts := make(map[string]int)
			for _, w := range Tokenize(body) {
				counts[w]++
			}
			for w, n := range counts {
				if n >= minCount {
					emit(doc, fmt.Sprintf("%s:%d", w, n))
				}
			}
		},
		Reduce: func(doc string, pairs []string, emit func(k, v string)) {
			type tf struct {
				term  string
				count int
			}
			var vec []tf
			for _, p := range pairs {
				i := strings.LastIndexByte(p, ':')
				if i < 0 {
					continue
				}
				n, err := strconv.Atoi(p[i+1:])
				if err != nil {
					continue
				}
				vec = append(vec, tf{term: p[:i], count: n})
			}
			sort.Slice(vec, func(a, b int) bool {
				if vec[a].count != vec[b].count {
					return vec[a].count > vec[b].count
				}
				return vec[a].term < vec[b].term
			})
			parts := make([]string, len(vec))
			for i, t := range vec {
				parts[i] = fmt.Sprintf("%s:%d", t.term, t.count)
			}
			emit(doc, strings.Join(parts, " "))
		},
	}
}

// SequenceCount counts distinct word trigrams per document corpus —
// PUMA's sequence-count.
func SequenceCount(docs map[string]string) Job {
	return Job{
		Name:  "sequence-count",
		Input: DocsInput(docs),
		Map: func(_, body string, emit func(k, v string)) {
			words := Tokenize(body)
			for i := 0; i+2 < len(words); i++ {
				emit(words[i]+" "+words[i+1]+" "+words[i+2], "1")
			}
		},
		Combine: sumReducer,
		Reduce:  sumReducer,
	}
}

// SelfJoin reproduces PUMA's self-join: inputs are sorted k-element
// candidate lines ("a,b,c"); the job emits every (k+1)-element
// candidate supported by two k-candidates sharing a (k−1)-prefix.
func SelfJoin(candidates []string) Job {
	input := make([]KV, 0, len(candidates))
	for i, c := range candidates {
		input = append(input, KV{Key: strconv.Itoa(i), Value: c})
	}
	return Job{
		Name:  "self-join",
		Input: input,
		Map: func(_, line string, emit func(k, v string)) {
			elems := strings.Split(line, ",")
			if len(elems) < 2 {
				return
			}
			prefix := strings.Join(elems[:len(elems)-1], ",")
			emit(prefix, elems[len(elems)-1])
		},
		Reduce: func(prefix string, lasts []string, emit func(k, v string)) {
			uniq := make(map[string]bool)
			var tails []string
			for _, l := range lasts {
				if !uniq[l] {
					uniq[l] = true
					tails = append(tails, l)
				}
			}
			sort.Strings(tails)
			for i := 0; i < len(tails); i++ {
				for k := i + 1; k < len(tails); k++ {
					emit(prefix+","+tails[i], tails[k])
				}
			}
		},
	}
}

// AdjacencyList turns directed edges ("src dst" lines) into each
// vertex's sorted, de-duplicated out-neighbour list — PUMA's
// adjacency-list.
func AdjacencyList(edges string) Job {
	return Job{
		Name:  "adjacency-list",
		Input: LinesInput(edges),
		Map: func(_, line string, emit func(k, v string)) {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return
			}
			emit(fields[0], fields[1])
		},
		Reduce: func(src string, dsts []string, emit func(k, v string)) {
			uniq := make(map[string]bool)
			var out []string
			for _, d := range dsts {
				if !uniq[d] {
					uniq[d] = true
					out = append(out, d)
				}
			}
			sort.Strings(out)
			emit(src, strings.Join(out, ","))
		},
	}
}

// RankedInvertedIndexStage2 is the second stage of PUMA's
// ranked-inverted-index: it takes "word@doc → count" pairs (stage one
// is a per-document word count) and produces, per word, the documents
// ranked by descending count.
func RankedInvertedIndexStage2(counts []KV) Job {
	return Job{
		Name:  "ranked-inverted-index",
		Input: counts,
		Map: func(wordAtDoc, count string, emit func(k, v string)) {
			i := strings.LastIndexByte(wordAtDoc, '@')
			if i < 0 {
				return
			}
			emit(wordAtDoc[:i], count+"@"+wordAtDoc[i+1:])
		},
		Reduce: func(word string, postings []string, emit func(k, v string)) {
			type post struct {
				count int
				doc   string
			}
			var ps []post
			for _, p := range postings {
				i := strings.IndexByte(p, '@')
				if i < 0 {
					continue
				}
				n, err := strconv.Atoi(p[:i])
				if err != nil {
					continue
				}
				ps = append(ps, post{count: n, doc: p[i+1:]})
			}
			sort.Slice(ps, func(a, b int) bool {
				if ps[a].count != ps[b].count {
					return ps[a].count > ps[b].count
				}
				return ps[a].doc < ps[b].doc
			})
			parts := make([]string, len(ps))
			for i, p := range ps {
				parts[i] = fmt.Sprintf("%s:%d", p.doc, p.count)
			}
			emit(word, strings.Join(parts, " "))
		},
	}
}

// PerDocWordCount is stage one of the ranked inverted index: counts of
// every (word, doc) pair, keyed "word@doc".
func PerDocWordCount(docs map[string]string) Job {
	return Job{
		Name:  "per-doc-wordcount",
		Input: DocsInput(docs),
		Map: func(doc, body string, emit func(k, v string)) {
			for _, w := range Tokenize(body) {
				emit(w+"@"+doc, "1")
			}
		},
		Combine: sumReducer,
		Reduce:  sumReducer,
	}
}

// Chain runs jobs in sequence, feeding each stage's output pairs to the
// next stage builder — the standard pattern for multi-stage MapReduce
// programs. The builder receives the previous stage's sorted output.
func Chain(cfg Config, first Job, next ...func(prev []KV) Job) (*Result, error) {
	res, err := Run(cfg, first)
	if err != nil {
		return nil, fmt.Errorf("localmr: stage 1 (%s): %w", first.Name, err)
	}
	for i, build := range next {
		job := build(res.Pairs)
		stage, err := Run(cfg, job)
		if err != nil {
			return nil, fmt.Errorf("localmr: stage %d (%s): %w", i+2, job.Name, err)
		}
		// Accumulate stats across stages so callers see total work.
		stage.Stats.MapTasks += res.Stats.MapTasks
		stage.Stats.ReduceTasks += res.Stats.ReduceTasks
		stage.Stats.Intermediate += res.Stats.Intermediate
		stage.Stats.PoolDecisions = append(res.Stats.PoolDecisions, stage.Stats.PoolDecisions...)
		res = stage
	}
	return res, nil
}

// RankedInvertedIndex is the full two-stage PUMA job over a corpus.
func RankedInvertedIndex(cfg Config, docs map[string]string) (*Result, error) {
	return Chain(cfg, PerDocWordCount(docs), RankedInvertedIndexStage2)
}
