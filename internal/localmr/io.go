package localmr

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// LinesFromReader streams line records from r, keyed by line number —
// the io.Reader twin of LinesInput for file and pipe inputs. Empty
// lines are skipped. Lines are capped at 1 MiB, matching the typical
// record-size guard of a text input format.
func LinesFromReader(r io.Reader) ([]KV, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var kvs []KV
	n := 0
	for sc.Scan() {
		line := sc.Text()
		if line != "" {
			kvs = append(kvs, KV{Key: strconv.Itoa(n), Value: line})
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("localmr: reading input: %w", err)
	}
	return kvs, nil
}

// WriteOutput writes pairs as tab-separated "key<TAB>value" lines —
// the on-disk format of Hadoop's TextOutputFormat.
func WriteOutput(w io.Writer, pairs []KV) error {
	bw := bufio.NewWriter(w)
	for _, kv := range pairs {
		if _, err := fmt.Fprintf(bw, "%s\t%s\n", kv.Key, kv.Value); err != nil {
			return fmt.Errorf("localmr: writing output: %w", err)
		}
	}
	return bw.Flush()
}

// ReadOutput parses pairs written by WriteOutput, for chaining runs
// across process boundaries.
func ReadOutput(r io.Reader) ([]KV, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var kvs []KV
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		tab := -1
		for i := 0; i < len(line); i++ {
			if line[i] == '\t' {
				tab = i
				break
			}
		}
		if tab < 0 {
			return nil, fmt.Errorf("localmr: line %d has no tab separator", lineNo)
		}
		kvs = append(kvs, KV{Key: line[:tab], Value: line[tab+1:]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("localmr: reading pairs: %w", err)
	}
	return kvs, nil
}
