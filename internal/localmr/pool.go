package localmr

import (
	"sync"
	"time"
)

// PoolDecision records one dynamic sizing action, mirroring the slot
// manager's decision log in the simulated runtime.
type PoolDecision struct {
	Stage   string // "map" or "reduce"
	Workers int    // new worker target
	Reason  string
}

// pool is a work-stealing goroutine pool whose size can be retuned
// while it runs. Shrinking is lazy: a worker only exits after finishing
// its current task (the engine-level analogue of §III-D's lazy slot
// changing), and growth spawns fresh workers immediately.
//
// When dynamic, the pool hill-climbs its size on measured throughput:
// every tasksPerDecision completions it compares the completion rate
// against the previous window; while the rate keeps rising it grows,
// and when the rate drops after a growth step it has found the
// thrashing point — it steps back and pins a ceiling, exactly the
// suspected/confirmed scheme of §IV-A2 compressed to one confirmation
// (local pools are far less noisy than a 16-node cluster).
type pool struct {
	stage   string
	max     int
	dynamic bool
	perDec  int

	mu        sync.Mutex
	target    int
	alive     int
	peakSeen  int
	ceiling   int
	lastDir   int
	lastRate  float64
	lastDecAt time.Time
	doneCount int
	sinceDec  int
	log       []PoolDecision

	tasks chan int
	fn    func(int)
	wg    sync.WaitGroup
}

func newPool(stage string, workers, max int, dynamic bool, tasksPerDecision int) *pool {
	if max < workers {
		max = workers
	}
	return &pool{
		stage:   stage,
		max:     max,
		dynamic: dynamic,
		perDec:  tasksPerDecision,
		target:  workers,
	}
}

// run executes fn(i) for i in [0, n) on the pool and blocks until all
// tasks finish.
func (p *pool) run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	p.tasks = make(chan int)
	p.fn = fn
	p.wg.Add(n)
	p.lastDecAt = time.Now()

	p.mu.Lock()
	start := p.target
	if start > n {
		start = n
	}
	for i := 0; i < start; i++ {
		p.spawnLocked()
	}
	p.mu.Unlock()

	for i := 0; i < n; i++ {
		p.tasks <- i
	}
	close(p.tasks)
	p.wg.Wait()
}

// spawnLocked starts one worker. Caller holds p.mu.
func (p *pool) spawnLocked() {
	p.alive++
	if p.alive > p.peakSeen {
		p.peakSeen = p.alive
	}
	go p.worker()
}

func (p *pool) worker() {
	for i := range p.tasks {
		p.fn(i)
		if p.afterTask() {
			return // lazy shrink: exit only between tasks
		}
	}
}

// afterTask updates counters, possibly makes a sizing decision, and
// reports whether this worker should retire.
func (p *pool) afterTask() bool {
	p.wg.Done()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.doneCount++
	p.sinceDec++
	if p.dynamic && p.sinceDec >= p.perDec {
		p.decideLocked()
	}
	if p.alive > p.target {
		p.alive--
		return true
	}
	return false
}

// decideLocked is the hill-climbing step. Caller holds p.mu.
func (p *pool) decideLocked() {
	now := time.Now()
	elapsed := now.Sub(p.lastDecAt).Seconds()
	p.lastDecAt = now
	window := p.sinceDec
	p.sinceDec = 0
	if elapsed <= 0 {
		return
	}
	rate := float64(window) / elapsed

	defer func() { p.lastRate = rate }()

	if p.lastRate == 0 {
		// First window: try growing.
		p.growLocked("first throughput sample")
		return
	}
	switch {
	case p.lastDir > 0 && rate < p.lastRate*0.97:
		// Growth made us slower: thrashing point found.
		if p.target > 1 {
			p.target--
			p.ceiling = p.target
			p.lastDir = -1
			p.log = append(p.log, PoolDecision{p.stage, p.target, "thrashing: rolled back"})
		}
	case rate >= p.lastRate*0.97:
		p.growLocked("throughput rising")
	}
}

// growLocked raises the target by one if allowed and spawns the worker.
func (p *pool) growLocked(reason string) {
	if p.ceiling > 0 && p.target >= p.ceiling {
		p.lastDir = 0
		return
	}
	if p.target >= p.max {
		p.lastDir = 0
		return
	}
	p.target++
	p.lastDir = 1
	p.spawnLocked()
	p.log = append(p.log, PoolDecision{p.stage, p.target, reason})
}

// peak reports the highest concurrent worker count observed.
func (p *pool) peak() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peakSeen
}

// decisions returns the sizing log.
func (p *pool) decisions() []PoolDecision {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]PoolDecision(nil), p.log...)
}
