package localmr

import (
	"math"
	"strings"
	"testing"

	"smapreduce/internal/puma"
)

func TestParsePoints(t *testing.T) {
	pts, err := ParsePoints("1,2\n3.5, -4\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0] != (Point2{1, 2}) || pts[1] != (Point2{3.5, -4}) {
		t.Fatalf("pts = %v", pts)
	}
	if _, err := ParsePoints("nocomma"); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := ParsePoints("x,1"); err == nil {
		t.Fatal("bad float accepted")
	}
}

func TestKMeansConvergesOnSeparatedClusters(t *testing.T) {
	var b strings.Builder
	if err := puma.GenPoints(&b, 9, 600, 3); err != nil {
		t.Fatal(err)
	}
	pts, err := ParsePoints(b.String())
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMeans(staticConfig(), pts, 3, 25, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centres) != 3 {
		t.Fatalf("centres = %d", len(res.Centres))
	}
	if res.Iterations < 2 {
		t.Fatalf("converged suspiciously fast: %d iterations", res.Iterations)
	}
	// The generator places centres at (0,0), (10,10), (20,20); each
	// learned centre must be within 1.5 of one true centre, and all
	// true centres must be claimed.
	truth := []Point2{{0, 0}, {10, 10}, {20, 20}}
	claimed := make([]bool, 3)
	for _, c := range res.Centres {
		best, bestD := -1, math.Inf(1)
		for i, tr := range truth {
			d := math.Hypot(c.X-tr.X, c.Y-tr.Y)
			if d < bestD {
				best, bestD = i, d
			}
		}
		if bestD > 1.5 {
			t.Fatalf("centre %v too far from any truth (%v)", c, bestD)
		}
		claimed[best] = true
	}
	for i, ok := range claimed {
		if !ok {
			t.Fatalf("true centre %d unclaimed: %v", i, res.Centres)
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	pts := []Point2{{0, 0}, {1, 1}}
	if _, err := KMeans(staticConfig(), pts, 0, 5, 1e-6); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans(staticConfig(), pts, 3, 5, 1e-6); err == nil {
		t.Fatal("k > points accepted")
	}
	if _, err := KMeans(staticConfig(), pts, 1, 0, 1e-6); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	var b strings.Builder
	if err := puma.GenPoints(&b, 4, 200, 2); err != nil {
		t.Fatal(err)
	}
	pts, _ := ParsePoints(b.String())
	a, err := KMeans(staticConfig(), pts, 2, 10, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	c, err := KMeans(staticConfig(), pts, 2, 10, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Centres {
		if a.Centres[i] != c.Centres[i] {
			t.Fatal("kmeans not deterministic")
		}
	}
}
