package localmr

import (
	"sort"
)

// TeraSort is the real-engine counterpart of PUMA's terasort: a total-
// order sort. A sampled range partitioner routes keys so partition p's
// keys all precede partition p+1's; each reduce sorts its range; the
// concatenation of the per-partition outputs is the globally sorted
// dataset (Result.ByPartition).
//
// sampleEvery controls the partitioner's sample density: every n-th
// record's key is sampled to pick the range boundaries (TeraSort's
// input sampler). 1 samples everything.
func TeraSort(records []KV, partitions, sampleEvery int) Job {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	var samples []string
	for i := 0; i < len(records); i += sampleEvery {
		samples = append(samples, records[i].Key)
	}
	sort.Strings(samples)
	// Boundaries: partition p holds keys < boundary[p]; the last
	// partition is open-ended.
	boundaries := make([]string, 0, partitions-1)
	for p := 1; p < partitions; p++ {
		idx := p * len(samples) / partitions
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		boundaries = append(boundaries, samples[idx])
	}

	return Job{
		Name:  "terasort",
		Input: records,
		Map: func(k, v string, emit func(k, v string)) {
			emit(k, v) // identity map: the sort happens in the framework
		},
		Partition: func(key string, parts int) int {
			// First boundary greater than the key decides the range.
			p := sort.SearchStrings(boundaries, key)
			// SearchStrings returns the insertion point: keys equal to
			// a boundary belong to the next partition, keeping ranges
			// half-open and the order total.
			for p < len(boundaries) && boundaries[p] == key {
				p++
			}
			if p >= parts {
				p = parts - 1
			}
			return p
		},
		Reduce: func(key string, values []string, emit func(k, v string)) {
			for _, v := range values {
				emit(key, v)
			}
		},
	}
}
