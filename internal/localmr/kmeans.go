package localmr

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// K-means as iterative MapReduce — PUMA's kmeans benchmark, executing
// for real: every iteration is one job whose map phase assigns points
// to the nearest centre and whose reduce phase recomputes the centres.

// Point2 is a 2-D point.
type Point2 struct{ X, Y float64 }

// ParsePoints reads "x,y" lines into points.
func ParsePoints(lines string) ([]Point2, error) {
	var pts []Point2
	for i, line := range strings.Split(lines, "\n") {
		if line == "" {
			continue
		}
		comma := strings.IndexByte(line, ',')
		if comma < 0 {
			return nil, fmt.Errorf("localmr: point line %d has no comma: %q", i+1, line)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(line[:comma]), 64)
		if err != nil {
			return nil, fmt.Errorf("localmr: point line %d: %w", i+1, err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(line[comma+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("localmr: point line %d: %w", i+1, err)
		}
		pts = append(pts, Point2{x, y})
	}
	return pts, nil
}

// KMeansResult carries the converged centres and iteration trace.
type KMeansResult struct {
	Centres    []Point2
	Iterations int
	// Shift is the total centre movement of the final iteration.
	Shift float64
}

// farthestPointInit seeds centres deterministically: the first point,
// then repeatedly the point farthest from its nearest chosen centre —
// the greedy variant of k-means++ without randomness, which spreads
// the seeds across well-separated clusters.
func farthestPointInit(points []Point2, k int) []Point2 {
	centres := []Point2{points[0]}
	for len(centres) < k {
		var far Point2
		farD := -1.0
		for _, p := range points {
			nearest := math.Inf(1)
			for _, c := range centres {
				d := (p.X-c.X)*(p.X-c.X) + (p.Y-c.Y)*(p.Y-c.Y)
				if d < nearest {
					nearest = d
				}
			}
			if nearest > farD {
				farD = nearest
				far = p
			}
		}
		centres = append(centres, far)
	}
	return centres
}

// KMeans clusters points into k groups by Lloyd's algorithm, running
// each iteration as a MapReduce job on the engine. It stops after
// maxIters iterations or when the total centre movement falls below
// epsilon. Centres are seeded by deterministic farthest-point
// initialisation, so results are reproducible.
func KMeans(cfg Config, points []Point2, k, maxIters int, epsilon float64) (*KMeansResult, error) {
	if k <= 0 || k > len(points) {
		return nil, fmt.Errorf("localmr: kmeans k=%d with %d points", k, len(points))
	}
	if maxIters <= 0 {
		return nil, fmt.Errorf("localmr: kmeans maxIters=%d", maxIters)
	}

	input := make([]KV, len(points))
	for i, p := range points {
		input[i] = KV{Key: strconv.Itoa(i), Value: fmt.Sprintf("%g,%g", p.X, p.Y)}
	}
	centres := farthestPointInit(points, k)

	res := &KMeansResult{}
	for iter := 0; iter < maxIters; iter++ {
		snapshot := append([]Point2(nil), centres...)
		job := Job{
			Name:  fmt.Sprintf("kmeans-iter-%d", iter),
			Input: input,
			Map: func(_, v string, emit func(k, v string)) {
				comma := strings.IndexByte(v, ',')
				x, _ := strconv.ParseFloat(v[:comma], 64)
				y, _ := strconv.ParseFloat(v[comma+1:], 64)
				best, bestD := 0, math.Inf(1)
				for c, centre := range snapshot {
					d := (x-centre.X)*(x-centre.X) + (y-centre.Y)*(y-centre.Y)
					if d < bestD {
						best, bestD = c, d
					}
				}
				emit(strconv.Itoa(best), v)
			},
			Reduce: func(centre string, members []string, emit func(k, v string)) {
				var sx, sy float64
				for _, m := range members {
					comma := strings.IndexByte(m, ',')
					x, _ := strconv.ParseFloat(m[:comma], 64)
					y, _ := strconv.ParseFloat(m[comma+1:], 64)
					sx += x
					sy += y
				}
				n := float64(len(members))
				emit(centre, fmt.Sprintf("%g,%g", sx/n, sy/n))
			},
		}
		out, err := Run(cfg, job)
		if err != nil {
			return nil, fmt.Errorf("localmr: kmeans iteration %d: %w", iter, err)
		}
		next := append([]Point2(nil), centres...) // empty clusters keep their centre
		for _, kv := range out.Pairs {
			idx, err := strconv.Atoi(kv.Key)
			if err != nil || idx < 0 || idx >= k {
				return nil, fmt.Errorf("localmr: kmeans produced bad centre key %q", kv.Key)
			}
			comma := strings.IndexByte(kv.Value, ',')
			x, _ := strconv.ParseFloat(kv.Value[:comma], 64)
			y, _ := strconv.ParseFloat(kv.Value[comma+1:], 64)
			next[idx] = Point2{x, y}
		}
		shift := 0.0
		for i := range next {
			shift += math.Hypot(next[i].X-centres[i].X, next[i].Y-centres[i].Y)
		}
		centres = next
		res.Iterations = iter + 1
		res.Shift = shift
		if shift < epsilon {
			break
		}
	}
	res.Centres = centres
	return res, nil
}
