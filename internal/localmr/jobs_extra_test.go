package localmr

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestTermVector(t *testing.T) {
	docs := map[string]string{
		"d1": "apple apple apple banana banana cherry",
		"d2": "kiwi",
	}
	res := mustRun(t, staticConfig(), TermVector(docs, 2))
	got := pairsToMap(t, res.Pairs)
	if got["d1"] != "apple:3 banana:2" {
		t.Fatalf("d1 vector = %q, want \"apple:3 banana:2\"", got["d1"])
	}
	if _, ok := got["d2"]; ok {
		t.Fatal("d2 emitted despite no term reaching minCount")
	}
}

func TestTermVectorTieOrder(t *testing.T) {
	docs := map[string]string{"d": "zz zz aa aa"}
	res := mustRun(t, staticConfig(), TermVector(docs, 1))
	got := pairsToMap(t, res.Pairs)
	if got["d"] != "aa:2 zz:2" {
		t.Fatalf("tie order = %q, want alphabetical among equals", got["d"])
	}
}

func TestSequenceCount(t *testing.T) {
	docs := map[string]string{"d": "a b c a b c a"}
	// Trigrams: abc bca cab abc bca → "a b c":2, "b c a":2, "c a b":1.
	res := mustRun(t, staticConfig(), SequenceCount(docs))
	got := pairsToMap(t, res.Pairs)
	if got["a b c"] != "2" || got["b c a"] != "2" || got["c a b"] != "1" {
		t.Fatalf("trigram counts wrong: %v", got)
	}
}

func TestSelfJoin(t *testing.T) {
	// Candidates sharing prefix "a,b": tails c, d, e → pairs (c,d),
	// (c,e), (d,e) as "a,b,c"→d etc.
	cands := []string{"a,b,c", "a,b,d", "a,b,e", "x,y,z"}
	res := mustRun(t, staticConfig(), SelfJoin(cands))
	want := map[string][]string{
		"a,b,c": {"d", "e"},
		"a,b,d": {"e"},
	}
	byKey := make(map[string][]string)
	for _, kv := range res.Pairs {
		byKey[kv.Key] = append(byKey[kv.Key], kv.Value)
	}
	for k, vs := range want {
		if len(byKey[k]) != len(vs) {
			t.Fatalf("join[%s] = %v, want %v", k, byKey[k], vs)
		}
		for i := range vs {
			if byKey[k][i] != vs[i] {
				t.Fatalf("join[%s] = %v, want %v", k, byKey[k], vs)
			}
		}
	}
	if _, ok := byKey["x,y,z"]; ok {
		t.Fatal("lone candidate produced a join")
	}
}

func TestAdjacencyList(t *testing.T) {
	edges := "1 2\n1 3\n2 3\n1 2\nmalformed-line"
	res := mustRun(t, staticConfig(), AdjacencyList(edges))
	got := pairsToMap(t, res.Pairs)
	if got["1"] != "2,3" || got["2"] != "3" {
		t.Fatalf("adjacency = %v", got)
	}
}

func TestRankedInvertedIndexTwoStage(t *testing.T) {
	docs := map[string]string{
		"d1": "go go go rust",
		"d2": "go rust rust",
		"d3": "go",
	}
	res, err := RankedInvertedIndex(staticConfig(), docs)
	if err != nil {
		t.Fatal(err)
	}
	got := pairsToMap(t, res.Pairs)
	if got["go"] != "d1:3 d3:1 d2:1" && got["go"] != "d1:3 d2:1 d3:1" {
		// counts d1:3, d2:1, d3:1 — ties broken by doc name.
		t.Fatalf("ranked index for go = %q", got["go"])
	}
	if !strings.HasPrefix(got["rust"], "d2:2") {
		t.Fatalf("rust not led by d2:2: %q", got["rust"])
	}
	// Chain accumulates stats across both stages.
	if res.Stats.MapTasks == 0 || res.Stats.ReduceTasks <= staticConfig().Partitions {
		t.Fatalf("chained stats not accumulated: %+v", res.Stats)
	}
}

func TestRankedTieBreak(t *testing.T) {
	docs := map[string]string{"b-doc": "word", "a-doc": "word"}
	res, err := RankedInvertedIndex(staticConfig(), docs)
	if err != nil {
		t.Fatal(err)
	}
	got := pairsToMap(t, res.Pairs)
	if got["word"] != "a-doc:1 b-doc:1" {
		t.Fatalf("tie order = %q", got["word"])
	}
}

func TestChainErrorPropagates(t *testing.T) {
	bad := Job{Name: "broken"} // no Map/Reduce
	if _, err := Chain(staticConfig(), bad); err == nil {
		t.Fatal("stage-1 error not propagated")
	}
	good := WordCount("a b c")
	_, err := Chain(staticConfig(), good, func(prev []KV) Job {
		return Job{Name: "broken-2"}
	})
	if err == nil || !strings.Contains(err.Error(), "stage 2") {
		t.Fatalf("stage-2 error not propagated: %v", err)
	}
}

func TestChainSingleStageEqualsRun(t *testing.T) {
	direct := mustRun(t, staticConfig(), WordCount("x y x"))
	chained, err := Chain(staticConfig(), WordCount("x y x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Pairs) != len(chained.Pairs) {
		t.Fatal("single-stage chain differs from direct run")
	}
}

func TestSecondarySort(t *testing.T) {
	// Per-movie ratings delivered to the reducer in ascending rating
	// order via a composite key "movie\x1Frating".
	lines := []KV{
		{"0", "m1\x1F5"}, {"1", "m1\x1F1"}, {"2", "m1\x1F3"},
		{"3", "m2\x1F2"}, {"4", "m2\x1F4"},
	}
	job := Job{
		Name:  "secondary",
		Input: lines,
		Map: func(_, v string, emit func(k, v string)) {
			// v is already the composite key; carry the rating as value.
			emit(v, v[strings.IndexByte(v, '\x1F')+1:])
		},
		GroupBy: func(key string) string {
			return key[:strings.IndexByte(key, '\x1F')]
		},
		Reduce: func(movie string, ratings []string, emit func(k, v string)) {
			emit(movie, strings.Join(ratings, ","))
		},
	}
	res := mustRun(t, staticConfig(), job)
	got := pairsToMap(t, res.Pairs)
	if got["m1"] != "1,3,5" {
		t.Fatalf("m1 ratings = %q, want sorted 1,3,5", got["m1"])
	}
	if got["m2"] != "2,4" {
		t.Fatalf("m2 ratings = %q", got["m2"])
	}
}

func TestSecondarySortGroupPartitioning(t *testing.T) {
	// All composite keys of one group must land in one partition even
	// with many partitions, or the group would be split.
	var input []KV
	for i := 0; i < 50; i++ {
		input = append(input, KV{Key: strconv.Itoa(i), Value: "g\x1F" + strconv.Itoa(i)})
	}
	job := Job{
		Name:  "partcheck",
		Input: input,
		Map: func(_, v string, emit func(k, v string)) {
			emit(v, "1")
		},
		GroupBy: func(key string) string { return key[:strings.IndexByte(key, '\x1F')] },
		Reduce: func(g string, vals []string, emit func(k, v string)) {
			emit(g, strconv.Itoa(len(vals)))
		},
	}
	cfg := staticConfig()
	cfg.Partitions = 7
	res := mustRun(t, cfg, job)
	got := pairsToMap(t, res.Pairs)
	if got["g"] != "50" {
		t.Fatalf("group split across partitions: %v", got)
	}
}

func TestTeraSortTotalOrder(t *testing.T) {
	// Shuffled records; after TeraSort the concatenated partitions are
	// globally sorted.
	var records []KV
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%04d", (i*7919)%500) // deterministic shuffle
		records = append(records, KV{Key: key, Value: fmt.Sprintf("payload-%d", i)})
	}
	cfg := staticConfig()
	cfg.Partitions = 5
	res := mustRun(t, cfg, TeraSort(records, cfg.Partitions, 3))
	if len(res.ByPartition) != 5 {
		t.Fatalf("partitions = %d", len(res.ByPartition))
	}
	var concat []KV
	nonEmpty := 0
	for _, part := range res.ByPartition {
		if len(part) > 0 {
			nonEmpty++
		}
		concat = append(concat, part...)
	}
	if len(concat) != 500 {
		t.Fatalf("records out = %d", len(concat))
	}
	for i := 1; i < len(concat); i++ {
		if concat[i].Key < concat[i-1].Key {
			t.Fatalf("total order broken at %d: %q < %q", i, concat[i].Key, concat[i-1].Key)
		}
	}
	// The sampler must actually spread the load: most partitions hold data.
	if nonEmpty < 4 {
		t.Fatalf("range partitioner collapsed: %d non-empty partitions", nonEmpty)
	}
}

func TestCustomPartitionerOutOfRangeFails(t *testing.T) {
	job := WordCount("a b c")
	job.Partition = func(string, int) int { return 99 }
	if _, err := Run(staticConfig(), job); err == nil {
		t.Fatal("out-of-range partitioner accepted")
	}
}

func TestMapperPanicSurfacesAsError(t *testing.T) {
	job := Job{
		Name:  "boom",
		Input: LinesInput("a\nb"),
		Map: func(_, v string, emit func(k, v string)) {
			if v == "b" {
				panic("map exploded")
			}
			emit(v, "1")
		},
		Reduce: sumReducer,
	}
	_, err := Run(staticConfig(), job)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("mapper panic not surfaced: %v", err)
	}
}

func TestReducerPanicSurfacesAsError(t *testing.T) {
	job := WordCount("a b c")
	job.Reduce = func(key string, _ []string, _ func(k, v string)) {
		panic("reduce exploded: " + key)
	}
	_, err := Run(staticConfig(), job)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("reducer panic not surfaced: %v", err)
	}
}
