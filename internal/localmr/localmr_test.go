package localmr

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func staticConfig() Config {
	return Config{MapWorkers: 2, ReduceWorkers: 2, MaxWorkers: 4, Partitions: 3, ChunkSize: 4, Dynamic: false}
}

func mustRun(t *testing.T, cfg Config, job Job) *Result {
	t.Helper()
	res, err := Run(cfg, job)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func pairsToMap(t *testing.T, pairs []KV) map[string]string {
	t.Helper()
	m := make(map[string]string, len(pairs))
	for _, kv := range pairs {
		if _, dup := m[kv.Key]; dup {
			t.Fatalf("duplicate key %q in output", kv.Key)
		}
		m[kv.Key] = kv.Value
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []Config{
		{MapWorkers: 0, ReduceWorkers: 1, MaxWorkers: 1},
		{MapWorkers: 1, ReduceWorkers: 0, MaxWorkers: 1},
		{MapWorkers: 4, ReduceWorkers: 1, MaxWorkers: 2},
		{MapWorkers: 1, ReduceWorkers: 1, MaxWorkers: 1, Partitions: -1},
		{MapWorkers: 1, ReduceWorkers: 1, MaxWorkers: 1, ChunkSize: -1},
		{MapWorkers: 1, ReduceWorkers: 1, MaxWorkers: 1, ManagerTasksPerDecision: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d passed", i)
		}
	}
}

func TestRunRejectsIncompleteJob(t *testing.T) {
	if _, err := Run(staticConfig(), Job{Name: "x"}); err == nil {
		t.Fatal("job without map/reduce accepted")
	}
	if _, err := Run(Config{}, WordCount("a")); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestWordCountCorrect(t *testing.T) {
	text := "the quick brown fox\nthe lazy dog\nthe fox"
	res := mustRun(t, staticConfig(), WordCount(text))
	got := pairsToMap(t, res.Pairs)
	want := map[string]string{
		"the": "3", "quick": "1", "brown": "1", "fox": "2", "lazy": "1", "dog": "1",
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%s] = %s, want %s", k, got[k], v)
		}
	}
}

func TestOutputSorted(t *testing.T) {
	res := mustRun(t, staticConfig(), WordCount("b a c b a"))
	for i := 1; i < len(res.Pairs); i++ {
		if res.Pairs[i-1].Key > res.Pairs[i].Key {
			t.Fatalf("output unsorted at %d: %v", i, res.Pairs)
		}
	}
}

func TestCombinerMatchesNoCombiner(t *testing.T) {
	text := strings.Repeat("alpha beta beta gamma\n", 50)
	with := mustRun(t, staticConfig(), WordCount(text))
	job := WordCount(text)
	job.Combine = nil
	without := mustRun(t, staticConfig(), job)
	if len(with.Pairs) != len(without.Pairs) {
		t.Fatalf("combiner changed results: %d vs %d pairs", len(with.Pairs), len(without.Pairs))
	}
	for i := range with.Pairs {
		if with.Pairs[i] != without.Pairs[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, with.Pairs[i], without.Pairs[i])
		}
	}
	if with.Stats.Intermediate >= without.Stats.Intermediate {
		t.Fatalf("combiner did not shrink shuffle: %d vs %d",
			with.Stats.Intermediate, without.Stats.Intermediate)
	}
}

func TestGrep(t *testing.T) {
	text := "error: disk full\nok\nerror: cpu melted\nfine"
	res := mustRun(t, staticConfig(), Grep(text, "error"))
	if len(res.Pairs) != 2 {
		t.Fatalf("grep found %d lines, want 2: %v", len(res.Pairs), res.Pairs)
	}
	for _, kv := range res.Pairs {
		if !strings.Contains(kv.Value, "error") {
			t.Fatalf("non-matching line in output: %v", kv)
		}
	}
}

func TestInvertedIndex(t *testing.T) {
	docs := map[string]string{
		"d1": "apple banana",
		"d2": "banana cherry banana",
		"d3": "apple",
	}
	res := mustRun(t, staticConfig(), InvertedIndex(docs))
	got := pairsToMap(t, res.Pairs)
	want := map[string]string{
		"apple":  "d1,d3",
		"banana": "d1,d2",
		"cherry": "d2",
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("index[%s] = %s, want %s", k, got[k], v)
		}
	}
}

func TestHistogramRatings(t *testing.T) {
	lines := "m1\t5\nm2\t3\nm3\t5\nm4\t1\nbadline"
	res := mustRun(t, staticConfig(), HistogramRatings(lines))
	got := pairsToMap(t, res.Pairs)
	if got["5"] != "2" || got["3"] != "1" || got["1"] != "1" {
		t.Fatalf("histogram wrong: %v", got)
	}
}

func TestEmptyInput(t *testing.T) {
	res := mustRun(t, staticConfig(), WordCount(""))
	if len(res.Pairs) != 0 || res.Stats.MapTasks != 0 {
		t.Fatalf("empty input produced output: %+v", res)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	text := strings.Repeat("x y z w v u t s r q p\n", 200)
	var outputs [][]KV
	for _, workers := range []int{1, 2, 7} {
		cfg := staticConfig()
		cfg.MapWorkers, cfg.ReduceWorkers, cfg.MaxWorkers = workers, workers, workers
		res := mustRun(t, cfg, WordCount(text))
		outputs = append(outputs, res.Pairs)
	}
	for i := 1; i < len(outputs); i++ {
		if len(outputs[i]) != len(outputs[0]) {
			t.Fatal("worker count changed output size")
		}
		for j := range outputs[i] {
			if outputs[i][j] != outputs[0][j] {
				t.Fatalf("worker count changed output at %d", j)
			}
		}
	}
}

func TestPartitionCoverage(t *testing.T) {
	// Every key must land in [0, partitions) and identical keys in the
	// same partition.
	for _, parts := range []int{1, 2, 7, 32} {
		for _, key := range []string{"a", "b", "zebra", "", "日本語"} {
			p1 := partitionOf(key, parts)
			p2 := partitionOf(key, parts)
			if p1 != p2 || p1 < 0 || p1 >= parts {
				t.Fatalf("partitionOf(%q,%d) = %d/%d", key, parts, p1, p2)
			}
		}
	}
}

func TestDynamicPoolGrows(t *testing.T) {
	text := strings.Repeat("count these words again and again\n", 3000)
	cfg := Config{MapWorkers: 1, ReduceWorkers: 1, MaxWorkers: 8, Partitions: 8,
		ChunkSize: 64, Dynamic: true, ManagerTasksPerDecision: 4}
	res := mustRun(t, cfg, WordCount(text))
	if res.Stats.MapPoolPeak <= 1 {
		t.Fatalf("dynamic map pool never grew: peak %d", res.Stats.MapPoolPeak)
	}
	if len(res.Stats.PoolDecisions) == 0 {
		t.Fatal("no pool decisions logged")
	}
	got := pairsToMap(t, res.Pairs)
	if got["words"] != "3000" {
		t.Fatalf("dynamic run wrong: words=%s", got["words"])
	}
}

func TestDynamicRespectsMax(t *testing.T) {
	text := strings.Repeat("a b c d e f\n", 2000)
	cfg := Config{MapWorkers: 1, ReduceWorkers: 1, MaxWorkers: 3, Partitions: 4,
		ChunkSize: 16, Dynamic: true, ManagerTasksPerDecision: 2}
	res := mustRun(t, cfg, WordCount(text))
	if res.Stats.MapPoolPeak > 3 {
		t.Fatalf("pool exceeded max: %d", res.Stats.MapPoolPeak)
	}
}

func TestStatsAccounting(t *testing.T) {
	text := strings.Repeat("k v\n", 100)
	cfg := staticConfig()
	cfg.ChunkSize = 10
	res := mustRun(t, cfg, WordCount(text))
	if res.Stats.MapTasks != 10 {
		t.Fatalf("MapTasks = %d, want 10", res.Stats.MapTasks)
	}
	if res.Stats.ReduceTasks != cfg.Partitions {
		t.Fatalf("ReduceTasks = %d, want %d", res.Stats.ReduceTasks, cfg.Partitions)
	}
	if res.Stats.Output != len(res.Pairs) {
		t.Fatal("Output count mismatch")
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! 42 foo-bar")
	want := []string{"hello", "world", "42", "foo", "bar"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
}

func TestLinesInputSkipsEmpty(t *testing.T) {
	kvs := LinesInput("a\n\nb\n")
	if len(kvs) != 2 {
		t.Fatalf("LinesInput kept empty lines: %v", kvs)
	}
}

func TestSumReducerPanicsOnGarbage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sum reducer accepted garbage")
		}
	}()
	sumReducer("k", []string{"not-a-number"}, func(k, v string) {})
}

// Property: word counts from the engine equal a straightforward
// sequential count, for arbitrary word soups.
func TestQuickWordCountMatchesReference(t *testing.T) {
	f := func(wordsRaw []uint8) bool {
		var b strings.Builder
		ref := make(map[string]int)
		for i, w := range wordsRaw {
			word := fmt.Sprintf("w%d", w%17)
			ref[word]++
			b.WriteString(word)
			if i%5 == 4 {
				b.WriteByte('\n')
			} else {
				b.WriteByte(' ')
			}
		}
		res, err := Run(staticConfig(), WordCount(b.String()))
		if err != nil {
			return false
		}
		if len(res.Pairs) != len(ref) {
			return false
		}
		for _, kv := range res.Pairs {
			if strconv.Itoa(ref[kv.Key]) != kv.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: partitioning is a function (stable) and total across keys.
func TestQuickPartitionStable(t *testing.T) {
	f := func(key string, parts uint8) bool {
		p := int(parts%16) + 1
		v := partitionOf(key, p)
		return v >= 0 && v < p && v == partitionOf(key, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinesFromReader(t *testing.T) {
	kvs, err := LinesFromReader(strings.NewReader("a\n\nb\nc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 3 || kvs[0].Value != "a" || kvs[2].Value != "c" {
		t.Fatalf("kvs = %v", kvs)
	}
	// Line numbers count skipped empties.
	if kvs[1].Key != "2" {
		t.Fatalf("line numbering = %v", kvs)
	}
}

func TestWriteReadOutputRoundTrip(t *testing.T) {
	pairs := []KV{{"a", "1"}, {"key with space", "v\twith tab? no: value"}, {"z", ""}}
	var buf strings.Builder
	if err := WriteOutput(&buf, pairs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOutput(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pairs) {
		t.Fatalf("round trip lost pairs: %v", back)
	}
	if back[0] != pairs[0] || back[2] != pairs[2] {
		t.Fatalf("round trip mangled: %v", back)
	}
	// Values containing tabs split at the FIRST tab; keys survive.
	if back[1].Key != "key with space" {
		t.Fatalf("tabbed value broke key: %v", back[1])
	}
}

func TestReadOutputRejectsMalformed(t *testing.T) {
	if _, err := ReadOutput(strings.NewReader("no-tab-here\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestReaderPipelineEndToEnd(t *testing.T) {
	// Reader input → engine → writer output → reader again.
	kvs, err := LinesFromReader(strings.NewReader("x y\ny z\n"))
	if err != nil {
		t.Fatal(err)
	}
	job := Job{
		Name:  "wc",
		Input: kvs,
		Map: func(_, line string, emit func(k, v string)) {
			for _, w := range Tokenize(line) {
				emit(w, "1")
			}
		},
		Reduce: sumReducer,
	}
	res := mustRun(t, staticConfig(), job)
	var buf strings.Builder
	if err := WriteOutput(&buf, res.Pairs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOutput(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	m := pairsToMap(t, back)
	if m["y"] != "2" || m["x"] != "1" || m["z"] != "1" {
		t.Fatalf("pipeline result = %v", m)
	}
}
