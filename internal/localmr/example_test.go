package localmr_test

import (
	"fmt"
	"strings"

	"smapreduce/internal/localmr"
)

// ExampleRun counts words with the real in-process engine.
func ExampleRun() {
	job := localmr.WordCount("to be or not to be")
	res, err := localmr.Run(localmr.Config{
		MapWorkers: 2, ReduceWorkers: 2, MaxWorkers: 4, Partitions: 2,
	}, job)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, kv := range res.Pairs {
		fmt.Printf("%s=%s ", kv.Key, kv.Value)
	}
	fmt.Println()
	// Output:
	// be=2 not=1 or=1 to=2
}

// ExampleChain runs PUMA's two-stage ranked inverted index.
func ExampleChain() {
	docs := map[string]string{"a": "go go rust", "b": "go"}
	res, err := localmr.RankedInvertedIndex(localmr.Config{
		MapWorkers: 1, ReduceWorkers: 1, MaxWorkers: 2, Partitions: 2,
	}, docs)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, kv := range res.Pairs {
		fmt.Printf("%s -> %s\n", kv.Key, kv.Value)
	}
	// Output:
	// go -> a:2 b:1
	// rust -> a:1
}

// ExampleJob_secondarySort delivers each group's values pre-sorted by a
// secondary key using a composite key and GroupBy.
func ExampleJob_secondarySort() {
	sep := "\x1f"
	job := localmr.Job{
		Name: "per-user-events",
		Input: []localmr.KV{
			{Key: "0", Value: "alice" + sep + "2:login"},
			{Key: "1", Value: "alice" + sep + "1:signup"},
			{Key: "2", Value: "bob" + sep + "1:signup"},
		},
		Map: func(_, v string, emit func(k, v string)) {
			emit(v, v[strings.Index(v, sep)+1:])
		},
		GroupBy: func(key string) string { return key[:strings.Index(key, sep)] },
		Reduce: func(user string, events []string, emit func(k, v string)) {
			emit(user, strings.Join(events, ", "))
		},
	}
	res, err := localmr.Run(localmr.Config{MapWorkers: 1, ReduceWorkers: 1, MaxWorkers: 1, Partitions: 1}, job)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, kv := range res.Pairs {
		fmt.Printf("%s: %s\n", kv.Key, kv.Value)
	}
	// Output:
	// alice: 1:signup, 2:login
	// bob: 1:signup
}
