package localmr

import (
	"fmt"
	"strconv"
	"strings"
)

// LinesInput turns raw text into one KV per line, keyed by line number
// — the analogue of Hadoop's TextInputFormat.
func LinesInput(text string) []KV {
	lines := strings.Split(text, "\n")
	kvs := make([]KV, 0, len(lines))
	for i, line := range lines {
		if line == "" {
			continue
		}
		kvs = append(kvs, KV{Key: strconv.Itoa(i), Value: line})
	}
	return kvs
}

// DocsInput keys each document by its name, for jobs that need document
// identity (inverted index, term vector).
func DocsInput(docs map[string]string) []KV {
	kvs := make([]KV, 0, len(docs))
	for name, body := range docs {
		kvs = append(kvs, KV{Key: name, Value: body})
	}
	sortKVs(kvs)
	return kvs
}

// Tokenize splits text into lower-case word tokens, dropping
// punctuation — shared by the text-processing jobs.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !('a' <= r && r <= 'z' || '0' <= r && r <= '9')
	})
}

// WordCount builds the canonical word-count job over text lines.
func WordCount(text string) Job {
	return Job{
		Name:  "wordcount",
		Input: LinesInput(text),
		Map: func(_, line string, emit func(k, v string)) {
			for _, w := range Tokenize(line) {
				emit(w, "1")
			}
		},
		Combine: sumReducer,
		Reduce:  sumReducer,
	}
}

// sumReducer adds up integer values per key.
func sumReducer(key string, values []string, emit func(k, v string)) {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			// Malformed intermediate data is an engine bug, not user
			// input; surface it loudly.
			panic(fmt.Sprintf("localmr: sum reducer got non-integer %q for key %q", v, key))
		}
		total += n
	}
	emit(key, strconv.Itoa(total))
}

// Grep builds a distributed-grep job: lines containing the pattern are
// emitted keyed by line number.
func Grep(text, pattern string) Job {
	return Job{
		Name:  "grep",
		Input: LinesInput(text),
		Map: func(lineNo, line string, emit func(k, v string)) {
			if strings.Contains(line, pattern) {
				emit(lineNo, line)
			}
		},
		Reduce: func(key string, values []string, emit func(k, v string)) {
			for _, v := range values {
				emit(key, v)
			}
		},
	}
}

// InvertedIndex builds a document → posting-list job: each word maps to
// the sorted, de-duplicated list of documents containing it.
func InvertedIndex(docs map[string]string) Job {
	return Job{
		Name:  "inverted-index",
		Input: DocsInput(docs),
		Map: func(doc, body string, emit func(k, v string)) {
			seen := make(map[string]bool)
			for _, w := range Tokenize(body) {
				if !seen[w] {
					seen[w] = true
					emit(w, doc)
				}
			}
		},
		Reduce: func(word string, docs []string, emit func(k, v string)) {
			uniq := make(map[string]bool, len(docs))
			var list []string
			for _, d := range docs {
				if !uniq[d] {
					uniq[d] = true
					list = append(list, d)
				}
			}
			sortStrings(list)
			emit(word, strings.Join(list, ","))
		},
	}
}

// HistogramRatings mirrors PUMA's histogram-ratings: inputs are
// "movieID<TAB>rating" lines; output is the count per rating bucket.
func HistogramRatings(lines string) Job {
	return Job{
		Name:  "histogram-ratings",
		Input: LinesInput(lines),
		Map: func(_, line string, emit func(k, v string)) {
			fields := strings.Split(line, "\t")
			if len(fields) < 2 {
				return
			}
			emit(fields[1], "1")
		},
		Combine: sumReducer,
		Reduce:  sumReducer,
	}
}

// sortStrings is a tiny local sort to avoid importing sort twice in
// docs examples.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
