package localmr

import (
	"fmt"
	"strings"
	"testing"
)

// benchCorpus builds a deterministic text corpus of roughly n words.
func benchCorpus(n int) string {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(words[i%len(words)])
		if i%12 == 11 {
			b.WriteByte('\n')
		} else {
			b.WriteByte(' ')
		}
	}
	return b.String()
}

// BenchmarkWordCountWorkers measures real map/reduce parallelism across
// static pool sizes.
func BenchmarkWordCountWorkers(b *testing.B) {
	text := benchCorpus(200_000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := Config{MapWorkers: workers, ReduceWorkers: workers,
				MaxWorkers: workers, Partitions: workers, ChunkSize: 256}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg, WordCount(text)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWordCountDynamic measures the dynamic pool manager against a
// fixed pool of the same maximum size.
func BenchmarkWordCountDynamic(b *testing.B) {
	text := benchCorpus(200_000)
	for _, dynamic := range []bool{false, true} {
		name := "static"
		if dynamic {
			name = "dynamic"
		}
		b.Run(name, func(b *testing.B) {
			cfg := Config{MapWorkers: 2, ReduceWorkers: 2, MaxWorkers: 8,
				Partitions: 8, ChunkSize: 256, Dynamic: dynamic, ManagerTasksPerDecision: 8}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg, WordCount(text)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInvertedIndex measures the document-indexing job.
func BenchmarkInvertedIndex(b *testing.B) {
	docs := make(map[string]string, 64)
	for i := 0; i < 64; i++ {
		docs[fmt.Sprintf("doc-%02d", i)] = benchCorpus(2_000)
	}
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, InvertedIndex(docs)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankedInvertedIndex measures the two-stage chain.
func BenchmarkRankedInvertedIndex(b *testing.B) {
	docs := make(map[string]string, 32)
	for i := 0; i < 32; i++ {
		docs[fmt.Sprintf("doc-%02d", i)] = benchCorpus(1_000)
	}
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RankedInvertedIndex(cfg, docs); err != nil {
			b.Fatal(err)
		}
	}
}
