package mr

import (
	"bytes"
	"testing"

	"smapreduce/internal/puma"
)

// Regression tests for the sort-ordering sweep: every comparator that
// feeds map-iteration-ordered slices into sort.Slice must be a strict
// total order, or runs that are otherwise identical can emit different
// event logs depending on map iteration order.

func TestMapAttemptLessIsTotalOrder(t *testing.T) {
	j1, j2 := &Job{ID: 1}, &Job{ID: 2}
	orig := &mapTask{job: j1, id: 3}
	backup := &mapTask{job: j1, id: 3, backupOf: orig}
	other := &mapTask{job: j1, id: 4}
	otherJob := &mapTask{job: j2, id: 0}

	// The tie-prone case: an original and its speculative backup share
	// job and task id. The original must sort strictly first.
	if !mapAttemptLess(orig, backup) {
		t.Error("original does not precede its backup")
	}
	if mapAttemptLess(backup, orig) {
		t.Error("backup precedes its original")
	}
	// Irreflexive on every representative.
	for _, m := range []*mapTask{orig, backup, other, otherJob} {
		if mapAttemptLess(m, m) {
			t.Errorf("attempt %+v compares less than itself", m)
		}
	}
	// Job then task id ordering.
	if !mapAttemptLess(orig, other) || !mapAttemptLess(other, otherJob) {
		t.Error("job/task ordering broken")
	}
}

func TestReduceAttemptLessIsTotalOrder(t *testing.T) {
	j1, j2 := &Job{ID: 1}, &Job{ID: 2}
	a := &reduceTask{job: j1, partition: 0}
	b := &reduceTask{job: j1, partition: 5}
	c := &reduceTask{job: j2, partition: 0}
	if !reduceAttemptLess(a, b) || reduceAttemptLess(b, a) {
		t.Error("partition ordering broken")
	}
	if !reduceAttemptLess(b, c) {
		t.Error("job ordering broken")
	}
	if reduceAttemptLess(a, a) {
		t.Error("not irreflexive")
	}
}

func TestFailureEventLogByteIdenticalAcrossRuns(t *testing.T) {
	// End-to-end regression: a speculation-heavy run with a mid-wave
	// tracker failure repeatedly produces the same event log bytes.
	// The failure path sorts the dead tracker's running sets, which are
	// Go maps — iteration order varies between runs, so any tie left in
	// the comparators shows up as log divergence here.
	run := func() []byte {
		cfg := failureConfig()
		cfg.Speculation = true
		c := MustNewCluster(cfg)
		log := c.EnableEventLog(0)
		c.ScheduleFailure(3, 18)
		specs := []JobSpec{
			{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 4096, Reduces: 8},
			{Name: "g", Profile: puma.MustGet("grep"), InputMB: 2048, Reduces: 4, SubmitAt: 2},
		}
		jobs, err := c.Run(specs...)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			if !j.Finished() {
				t.Fatalf("job %s unfinished", j.Spec.Name)
			}
		}
		var buf bytes.Buffer
		if err := log.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := run()
	for i := 0; i < 4; i++ {
		if got := run(); !bytes.Equal(got, ref) {
			t.Fatalf("run %d produced a different event log", i)
		}
	}
}

func TestReduceReportTimesPopulated(t *testing.T) {
	// Reduce TaskReports used to carry zero start/finish times, which
	// made every finished reduce tie in SlowestTasks.
	j := runOne(t, smallConfig(), terasortJob(1024))
	rep := j.Report(MustNewCluster(smallConfig()))
	reduces := 0
	for _, tr := range rep.Tasks {
		if tr.Type != "reduce" || !tr.Done {
			continue
		}
		reduces++
		if !(tr.FinishedAt > tr.StartedAt && tr.StartedAt > 0) {
			t.Fatalf("reduce %d times not populated: started=%v finished=%v",
				tr.ID, tr.StartedAt, tr.FinishedAt)
		}
	}
	if reduces == 0 {
		t.Fatal("no finished reduces in report")
	}
}

func TestSlowestTasksDeterministicUnderTies(t *testing.T) {
	// Force start-time ties by hand and check the declared total order
	// (latest start first, then type, then id) holds regardless of the
	// input ordering.
	rep := &JobReport{Tasks: []TaskReport{
		{Type: "reduce", ID: 2, Tracker: 0, StartedAt: 10, Done: true},
		{Type: "map", ID: 7, Tracker: 1, StartedAt: 10, Done: true},
		{Type: "reduce", ID: 0, Tracker: 2, StartedAt: 10, Done: true},
		{Type: "map", ID: 1, Tracker: 0, StartedAt: 30, Done: true},
		{Type: "map", ID: 4, Tracker: 0, StartedAt: 10, Done: true},
	}}
	want := []struct {
		typ string
		id  int
	}{
		{"map", 1}, {"map", 4}, {"map", 7}, {"reduce", 0}, {"reduce", 2},
	}
	for trial := 0; trial < 4; trial++ {
		got := rep.SlowestTasks(5)
		for i, w := range want {
			if got[i].Type != w.typ || got[i].ID != w.id {
				t.Fatalf("trial %d position %d = %s/%d, want %s/%d",
					trial, i, got[i].Type, got[i].ID, w.typ, w.id)
			}
		}
		// Rotate the input so a lazily-ordered sort would be exposed.
		rep.Tasks = append(rep.Tasks[1:], rep.Tasks[0])
	}
}
