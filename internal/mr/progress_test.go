package mr

import (
	"testing"

	"smapreduce/internal/puma"
)

// TestProgressMilestones runs a small two-job workload with the
// progress hook attached and pins the milestone stream's shape: time
// and cumulative counters monotone, one submit/barrier/finish triple
// per job in causal order, samples interleaved throughout.
func TestProgressMilestones(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 4
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Progress
	c.SetOnProgress(func(p Progress) { snaps = append(snaps, p) })

	specs := []JobSpec{
		{Name: "j1", Profile: puma.MustGet("grep"), InputMB: 2048, Reduces: 2},
		{Name: "j2", Profile: puma.MustGet("terasort"), InputMB: 1024, Reduces: 2, SubmitAt: 30},
	}
	if _, err := c.Run(specs...); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots delivered")
	}

	counts := map[string]int{}
	lastT := -1.0
	lastFinished := 0
	for i, p := range snaps {
		counts[p.Milestone]++
		if p.At < lastT {
			t.Fatalf("snapshot %d: time went backwards (%v after %v)", i, p.At, lastT)
		}
		if p.JobsFinished < lastFinished {
			t.Fatalf("snapshot %d: JobsFinished regressed (%d after %d)", i, p.JobsFinished, lastFinished)
		}
		lastT, lastFinished = p.At, p.JobsFinished
		if p.JobsSubmitted < p.JobsFinished || p.JobsActive != p.JobsSubmitted-p.JobsFinished {
			t.Fatalf("snapshot %d: inconsistent counters %+v", i, p)
		}
		if p.MapPct < 0 || p.MapPct > 100 || p.ReducePct < 0 || p.ReducePct > 100 {
			t.Fatalf("snapshot %d: percentages out of range %+v", i, p)
		}
	}
	for _, m := range []string{MilestoneJobSubmit, MilestoneJobBarrier, MilestoneJobFinished} {
		if counts[m] != 2 {
			t.Errorf("milestone %q fired %d times, want 2", m, counts[m])
		}
	}
	if counts[MilestoneSample] == 0 {
		t.Error("no sample milestones delivered")
	}

	final := snaps[len(snaps)-1]
	if final.JobsFinished != 2 || final.MapPct != 100 || final.ReducePct != 100 {
		t.Errorf("final snapshot %+v, want 2 finished at 100%%", final)
	}

	// Lifecycle milestones carry the job name; samples do not.
	for i, p := range snaps {
		if p.Milestone == MilestoneSample && p.Job != "" {
			t.Fatalf("snapshot %d: sample carries job %q", i, p.Job)
		}
		if p.Milestone != MilestoneSample && p.Job == "" {
			t.Fatalf("snapshot %d: %s milestone without a job", i, p.Milestone)
		}
	}
}
