package mr

import (
	"fmt"
	"math"
)

// This file is the recovery half of the fault model (internal/chaos):
// tracker rejoin after a crash, transient heartbeat loss with
// blacklisting and probation, and mid-run node/link degradations. The
// destructive half (FailTracker and friends) lives in failure.go.

// RecoverTracker brings a previously failed tracker back at the current
// virtual time, reproducing Hadoop's re-registration semantics: the
// daemon restarts on the same node with an empty local disk, so
//
//   - any committed map output that lived there is gone — outputs some
//     reducer still needs re-execute elsewhere, the rest are marked
//     lost so later shuffle rebuilds do not fetch phantom bytes;
//   - rate windows restart fresh (the job tracker has no history for a
//     re-registered daemon) and slot targets re-seed to the configured
//     initial values;
//   - heartbeats resume immediately on the tracker's own cadence.
//
// Recovering an unknown, live, or draining tracker returns an error.
func (c *Cluster) RecoverTracker(id int) error {
	if id < 0 || id >= len(c.trackers) {
		return fmt.Errorf("mr: RecoverTracker(%d): no such tracker", id)
	}
	tt := c.trackers[id]
	if !tt.failed {
		return fmt.Errorf("mr: tracker %d is not failed", id)
	}
	if tt.draining {
		return fmt.Errorf("mr: tracker %d is draining", id)
	}
	c.Mutate(func() { c.recoverTracker(tt) })
	return nil
}

// ScheduleRecovery arranges RecoverTracker(id) at virtual time at. Call
// before Run. An inapplicable recovery (tracker alive at fire time) is
// logged as a fault error rather than panicking.
func (c *Cluster) ScheduleRecovery(id int, at float64) {
	c.clock.Schedule(at, fmt.Sprintf("rejoin tt%d", id), func() {
		c.faultErr(id, "rejoin", c.RecoverTracker(id))
	})
}

// recoverTracker does the work inside a mutation scope.
func (c *Cluster) recoverTracker(tt *TaskTracker) {
	now := c.clock.Now()
	// The failure path emptied the slots; a rejoin holding task state
	// would mean ghost work survived the crash.
	c.inv.CheckRecover(tt.id, len(tt.runningMaps), len(tt.runningReduces))
	tt.failed = false
	// A crash supersedes any in-progress heartbeat-loss incident: the
	// restarted daemon registers cleanly (its loss timers were cancelled
	// by stop()).
	tt.hbLost, tt.blacklisted, tt.probation = false, false, false

	// Fresh rate windows: EWMAs restart and the window anchors re-base
	// on the cumulative done counters, which survive the crash — they
	// are the job tracker's ledger, not the daemon's, and the
	// telemetry invariant requires them monotone.
	tt.mapInputRate.Reset()
	tt.mapOutputRate.Reset()
	tt.shuffleRate.Reset()
	tt.lastHB = now
	tt.lastMapInputMB = tt.mapInputDoneMB
	tt.lastMapOutputMB = tt.mapOutputDoneMB
	tt.lastShuffleMB = tt.shuffleDoneMB

	// Slot targets re-seed to the configured initial values, for the
	// runtime controller to retune from scratch.
	tt.mapTarget = c.cfg.MapSlots
	tt.reduceTarget = c.cfg.ReduceSlots
	c.jt.desiredMaps[tt.id] = c.cfg.MapSlots
	c.jt.desiredReduces[tt.id] = c.cfg.ReduceSlots

	c.emit(EvTrackerRejoin, "", "", tt.id, fmt.Sprintf("%d/%d", tt.mapTarget, tt.reduceTarget))
	if c.tracer.Enabled() {
		c.tracer.Instant(now, trackerPID(tt.id), "failure", "tracker-rejoin")
	}
	c.tracef("tracker %d rejoined", tt.id)

	// Empty disk: every output committed here before the crash is gone.
	// The failure path already re-queued the ones needed at crash time;
	// anything still pointing at this host is either newly needed again
	// (a later failure reset some reducer's fetch ledger) or marked
	// lost so shuffle rebuilds skip it. Queued-but-unfetched shares
	// from this host on not-yet-running reducers are dropped the same
	// way — the rejoined daemon serves no pre-crash bytes.
	for _, j := range c.jt.queue {
		for _, m := range j.maps {
			if m.state != TaskDone || m.outputHost != tt.id {
				continue
			}
			if c.outputStillNeeded(j, m) {
				c.requeueCommittedMap(j, m)
			} else {
				m.outputLost = true
			}
		}
		for _, r := range j.reduces {
			if r.state == TaskDone || r.state == TaskRunning {
				continue // running reducers were purged at crash time
			}
			r.pending[tt.id] = 0
			r.pendingMaps[tt.id] = nil
		}
	}

	// Heartbeats resume on the tracker's own cadence, first beat now —
	// unless the simulation already shut down.
	if !c.stopped {
		tt.hbEvent = c.clock.SchedulePeriodic(now, c.cfg.HeartbeatPeriod, tt.hbLabel, tt.hbFn)
	}
}

// BeginHeartbeatLoss silences tracker id for duration seconds: its
// heartbeats stop arriving at the job tracker while its running tasks
// keep executing (the daemon is alive, only the control channel is
// out). If the silence outlasts Config.BlacklistTimeout the job tracker
// blacklists the node; when heartbeats resume, a blacklisted tracker
// serves a probation of Config.ProbationPeriod doubled per accumulated
// incident before it receives new work again.
func (c *Cluster) BeginHeartbeatLoss(id int, duration float64) error {
	if id < 0 || id >= len(c.trackers) {
		return fmt.Errorf("mr: BeginHeartbeatLoss(%d): no such tracker", id)
	}
	if duration <= 0 || math.IsNaN(duration) || math.IsInf(duration, 0) {
		return fmt.Errorf("mr: BeginHeartbeatLoss(%d): duration %v must be positive and finite", id, duration)
	}
	tt := c.trackers[id]
	if tt.failed {
		return fmt.Errorf("mr: tracker %d is failed", id)
	}
	if tt.hbLost {
		return fmt.Errorf("mr: tracker %d already inside a heartbeat-loss window", id)
	}
	c.Mutate(func() { c.beginHeartbeatLoss(tt, duration) })
	return nil
}

// ScheduleHeartbeatLoss arranges BeginHeartbeatLoss(id, duration) at
// virtual time at. Call before Run. Inapplicable losses (tracker dead
// or already silent at fire time) are logged as fault errors.
func (c *Cluster) ScheduleHeartbeatLoss(id int, at, duration float64) {
	c.clock.Schedule(at, fmt.Sprintf("hbloss tt%d", id), func() {
		c.faultErr(id, "hbloss", c.BeginHeartbeatLoss(id, duration))
	})
}

func (c *Cluster) beginHeartbeatLoss(tt *TaskTracker, duration float64) {
	now := c.clock.Now()
	tt.hbLost = true
	c.clock.Cancel(tt.hbEvent)
	tt.hbEvent = 0
	c.emit(EvTrackerHBLost, "", "", tt.id, fmt.Sprintf("%v", duration))
	if c.tracer.Enabled() {
		c.tracer.Instant(now, trackerPID(tt.id), "failure", "hb-lost")
	}
	c.tracef("tracker %d heartbeats lost for %vs", tt.id, duration)

	// The job tracker's side: silence beyond the timeout blacklists the
	// node. The check fires only if the loss window is still open then.
	if duration > c.cfg.BlacklistTimeout {
		tt.blacklistCheck = c.clock.After(c.cfg.BlacklistTimeout, lazyLabel(&tt.blacklistLabel, "blacklist tt%d", tt.id), func() {
			c.Mutate(func() {
				tt.blacklistCheck = 0
				if tt.failed || !tt.hbLost || tt.blacklisted {
					return
				}
				tt.blacklisted = true
				tt.blacklistCount++
				c.emit(EvTrackerBlacklisted, "", "", tt.id, fmt.Sprintf("incident %d", tt.blacklistCount))
				if c.tracer.Enabled() {
					c.tracer.Instant(c.clock.Now(), trackerPID(tt.id), "failure", "blacklisted")
				}
				c.tracef("tracker %d blacklisted (incident %d)", tt.id, tt.blacklistCount)
			})
		})
	}
	tt.hbResume = c.clock.After(duration, lazyLabel(&tt.hbResumeLabel, "hb-resume tt%d", tt.id), func() {
		c.Mutate(func() { c.endHeartbeatLoss(tt) })
	})
}

// endHeartbeatLoss closes the loss window: heartbeats resume, and a
// blacklisted tracker converts its blacklist into a probation with
// exponential backoff over accumulated incidents.
func (c *Cluster) endHeartbeatLoss(tt *TaskTracker) {
	tt.hbResume = 0
	if tt.failed || !tt.hbLost {
		return // a crash (and possibly a rejoin) superseded the incident
	}
	now := c.clock.Now()
	tt.hbLost = false
	c.clock.Cancel(tt.blacklistCheck)
	tt.blacklistCheck = 0

	// Re-anchor the rate window on the far side of the silence so the
	// first beat back does not average across the gap.
	tt.lastHB = now
	tt.lastMapInputMB = tt.mapInputDoneMB + tt.inFlightMapInputMB()
	tt.lastMapOutputMB = tt.mapOutputDoneMB + tt.inFlightMapOutputMB()
	tt.lastShuffleMB = tt.shuffleDoneMB + tt.inFlightShuffleMB()

	c.emit(EvTrackerHBRestored, "", "", tt.id, "")
	if c.tracer.Enabled() {
		c.tracer.Instant(now, trackerPID(tt.id), "failure", "hb-restored")
	}
	c.tracef("tracker %d heartbeats restored", tt.id)

	if tt.blacklisted {
		tt.blacklisted = false
		tt.probation = true
		backoff := c.cfg.ProbationPeriod * math.Pow(2, float64(tt.blacklistCount-1))
		c.emit(EvTrackerProbation, "", "", tt.id, fmt.Sprintf("%v", backoff))
		if c.tracer.Enabled() {
			c.tracer.Instant(now, trackerPID(tt.id), "failure", "probation")
		}
		c.tracef("tracker %d on probation for %vs", tt.id, backoff)
		tt.probationEnd = c.clock.After(backoff, lazyLabel(&tt.probationLabel, "probation-end tt%d", tt.id), func() {
			c.Mutate(func() {
				tt.probationEnd = 0
				if tt.failed || !tt.probation {
					return
				}
				tt.probation = false
				c.emit(EvTrackerCleared, "", "", tt.id, "")
				if c.tracer.Enabled() {
					c.tracer.Instant(c.clock.Now(), trackerPID(tt.id), "failure", "probation-cleared")
				}
				c.tracef("tracker %d cleared from probation", tt.id)
				c.jt.assign(tt)
			})
		})
	}

	if !c.stopped {
		tt.hbEvent = c.clock.SchedulePeriodic(now, c.cfg.HeartbeatPeriod, tt.hbLabel, tt.hbFn)
	}
}

// ScheduleNodeDegrade scales node id's CPU and disk service rates by
// the given factors in (0, 1] during [at, at+duration) — a slow node:
// failing disk, thermal throttling, a noisy co-tenant stealing cycles.
// Unlike ScheduleSlowdown (which injects contention pressure and so
// also bends the thrashing curve), this scales the delivered service
// rates directly. Call before Run; invalid arguments panic immediately
// (static schedule errors, like ScheduleSlowdown).
func (c *Cluster) ScheduleNodeDegrade(id int, at, duration, cpuScale, diskScale float64) {
	if id < 0 || id >= len(c.nodes) {
		panic(fmt.Sprintf("mr: ScheduleNodeDegrade(%d): no such node", id))
	}
	if cpuScale <= 0 || cpuScale > 1 || diskScale <= 0 || diskScale > 1 {
		panic(fmt.Sprintf("mr: ScheduleNodeDegrade scales (%v, %v) must be in (0,1]", cpuScale, diskScale))
	}
	if duration <= 0 {
		panic(fmt.Sprintf("mr: ScheduleNodeDegrade duration %v must be positive", duration))
	}
	c.clock.Schedule(at, fmt.Sprintf("degrade node%d", id), func() {
		c.Mutate(func() { c.nodes[id].SetServiceScale(cpuScale, diskScale) })
		c.emit(EvNodeDegraded, "", "", id, fmt.Sprintf("cpu %v disk %v", cpuScale, diskScale))
		if c.tracer.Enabled() {
			c.tracer.Instant(c.clock.Now(), trackerPID(id), "failure", "node-degraded")
		}
		c.tracef("node %d degraded (cpu %v, disk %v)", id, cpuScale, diskScale)
		c.clock.After(duration, fmt.Sprintf("restore node%d", id), func() {
			c.Mutate(func() { c.nodes[id].SetServiceScale(1, 1) })
			c.emit(EvNodeRestored, "", "", id, "")
			if c.tracer.Enabled() {
				c.tracer.Instant(c.clock.Now(), trackerPID(id), "failure", "node-restored")
			}
			c.tracef("node %d restored", id)
		})
	})
}

// ScheduleLinkDegrade scales node id's fabric access links (egress and
// ingress capacity factors in [0, 1]; 0 severs the direction) during
// [at, at+duration). Flows crossing a severed link stall at rate zero
// and resume through the dirty-set resolver when the link is restored —
// reducers mid-fetch simply wait out the partition. Call before Run;
// invalid arguments panic immediately.
func (c *Cluster) ScheduleLinkDegrade(id int, at, duration, egressScale, ingressScale float64) {
	if id < 0 || id >= len(c.nodes) {
		panic(fmt.Sprintf("mr: ScheduleLinkDegrade(%d): no such node", id))
	}
	if egressScale < 0 || egressScale > 1 || ingressScale < 0 || ingressScale > 1 {
		panic(fmt.Sprintf("mr: ScheduleLinkDegrade scales (%v, %v) must be in [0,1]", egressScale, ingressScale))
	}
	if duration <= 0 {
		panic(fmt.Sprintf("mr: ScheduleLinkDegrade duration %v must be positive", duration))
	}
	c.clock.Schedule(at, fmt.Sprintf("degrade link%d", id), func() {
		c.Mutate(func() { c.fabric.SetNodeLinkScale(id, egressScale, ingressScale) })
		c.emit(EvLinkDegraded, "", "", id, fmt.Sprintf("egress %v ingress %v", egressScale, ingressScale))
		if c.tracer.Enabled() {
			c.tracer.Instant(c.clock.Now(), trackerPID(id), "failure", "link-degraded")
		}
		c.tracef("node %d links degraded (egress %v, ingress %v)", id, egressScale, ingressScale)
		c.clock.After(duration, fmt.Sprintf("restore link%d", id), func() {
			c.Mutate(func() { c.fabric.SetNodeLinkScale(id, 1, 1) })
			c.emit(EvLinkRestored, "", "", id, "")
			if c.tracer.Enabled() {
				c.tracer.Instant(c.clock.Now(), trackerPID(id), "failure", "link-restored")
			}
			c.tracef("node %d links restored", id)
		})
	})
}
