package mr

import "smapreduce/internal/trace"

// Progress milestone vocabulary: the Milestone values OnProgress
// observes. Lifecycle milestones fire once per transition with the
// job's name attached; MilestoneSample fires on the progress sampler's
// cadence with an empty Job.
const (
	MilestoneSample      = "sample"
	MilestoneJobSubmit   = "job-submitted"
	MilestoneJobBarrier  = "barrier-crossed"
	MilestoneJobFinished = "job-finished"
)

// Progress is one aggregate progress snapshot delivered to the
// OnProgress hook: where the run is at virtual time At, and which
// milestone triggered the callback. Counters are cumulative and
// non-decreasing over a run; the percentage fields average task-level
// completion over every admitted job (finished jobs count as 100), so
// they can dip when a new job arrives mid-run — At and the counters
// are the monotone signals.
type Progress struct {
	At        float64
	Milestone string
	Job       string // job name for lifecycle milestones, "" for samples

	JobsSubmitted int
	JobsFinished  int
	JobsActive    int

	MapPct    float64
	ReducePct float64
}

// SetOnProgress attaches the progress hook: fn receives a Progress
// snapshot at every job admission, map/reduce barrier crossing, job
// completion and sampler tick — the serve mode's live event stream.
// Call before Run. The callback runs on the simulation goroutine at
// milestone instants, so it must not block and must not mutate the
// cluster.
func (c *Cluster) SetOnProgress(fn func(Progress)) { c.onProgress = fn }

// progressMilestone builds the aggregate snapshot and delivers it to
// the hook and, when tracing, to the progress track as an instant —
// the span-stream view of the same milestones the SSE stream carries.
func (c *Cluster) progressMilestone(milestone, job string) {
	if c.onProgress == nil && !c.tracer.Enabled() {
		return
	}
	p := Progress{At: c.clock.Now(), Milestone: milestone, Job: job}
	for _, j := range c.jt.jobs {
		if j.Submitted < 0 {
			continue
		}
		p.JobsSubmitted++
		if j.Finished() {
			p.JobsFinished++
			p.MapPct += 100
			p.ReducePct += 100
			continue
		}
		p.JobsActive++
		p.MapPct += j.mapProgressPct()
		p.ReducePct += j.reduceProgressPct()
	}
	if p.JobsSubmitted > 0 {
		p.MapPct /= float64(p.JobsSubmitted)
		p.ReducePct /= float64(p.JobsSubmitted)
	}
	if milestone != MilestoneSample && c.tracer.Enabled() {
		name := milestone
		if job != "" {
			name += " " + job
		}
		c.tracer.Instant(p.At, trace.PIDProgress, "progress", name,
			trace.Num("jobs-finished", float64(p.JobsFinished)),
			trace.Num("map-pct", p.MapPct), trace.Num("reduce-pct", p.ReducePct))
	}
	if c.onProgress != nil {
		c.onProgress(p)
	}
}
