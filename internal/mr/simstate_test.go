package mr

import (
	"fmt"
	"strings"
	"testing"

	"smapreduce/internal/puma"
	"smapreduce/internal/telemetry"
	"smapreduce/internal/trace"
)

// runArtifacts executes one cluster run (optionally on reused
// substrate and recycled observers) and returns every byte-comparable
// artefact: event-log JSONL, Stats, telemetry JSONL and trace export.
func runArtifacts(t *testing.T, st *SimState, col *telemetry.Collector, tr *trace.Tracer, seed uint64) string {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = 6
	cfg.Seed = seed
	c, err := NewClusterReusing(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	log := c.EnableEventLog(0)
	c.EnableTelemetry(col)
	c.EnableTracing(tr)
	jobs, err := c.Run(
		JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 1024, Reduces: 4},
		JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 512, Reduces: 4, SubmitAt: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := log.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "%+v\n", c.Snapshot())
	for _, j := range jobs {
		fmt.Fprintf(&b, "%s %v %v %v %v\n", j.Spec.Name, j.Submitted, j.Started, j.BarrierAt, j.FinishedAt)
	}
	if err := col.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestSimStateReuseMatchesFresh is the two-runs-on-one-worker pin: a
// worker that recycles its SimState, telemetry collector and tracer
// across consecutive runs must produce byte-identical artefacts to a
// worker that builds everything fresh per run — for a repeated seed
// and for distinct seeds. This is the per-worker half of the fleet
// determinism invariant (workers=1 ≡ workers=N); the cross-worker half
// lives in internal/fleet.
func TestSimStateReuseMatchesFresh(t *testing.T) {
	seeds := []uint64{42, 42, 7} // repeat, then switch
	// Fresh-state reference: new substrate and observers per run.
	var want []string
	for _, seed := range seeds {
		want = append(want, runArtifacts(t, nil, telemetry.NewCollector(0), trace.New(trace.Options{}), seed))
	}
	// Pooled worker: one SimState, one collector, one tracer.
	st := NewSimState()
	col := telemetry.NewCollector(0)
	tr := trace.New(trace.Options{})
	for i, seed := range seeds {
		if i > 0 {
			col.Reset()
			tr.Reset()
		}
		got := runArtifacts(t, st, col, tr, seed)
		if got != want[i] {
			t.Fatalf("run %d (seed %d): reused-state artefacts diverge from fresh-state run (%d vs %d bytes)",
				i, seed, len(got), len(want[i]))
		}
	}
}

// TestSimStateLazyInit pins that a zero SimState allocates substrate on
// first use and then retains it.
func TestSimStateLazyInit(t *testing.T) {
	st := NewSimState()
	if st.clock != nil || st.fabric != nil {
		t.Fatal("zero SimState not empty")
	}
	cfg := DefaultConfig()
	cfg.Workers = 4
	if _, err := NewClusterReusing(cfg, st); err != nil {
		t.Fatal(err)
	}
	clock, fabric := st.clock, st.fabric
	if clock == nil || fabric == nil {
		t.Fatal("SimState not populated on first use")
	}
	if _, err := NewClusterReusing(cfg, st); err != nil {
		t.Fatal(err)
	}
	if st.clock != clock || st.fabric != fabric {
		t.Fatal("SimState reallocated substrate on reuse")
	}
}
