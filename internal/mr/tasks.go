package mr

import (
	"fmt"
	"strconv"

	"smapreduce/internal/dfs"
	"smapreduce/internal/resource"
)

// launchMap starts map task m on tracker tt. Caller must hold a
// mutation scope and have verified a free slot.
func (c *Cluster) launchMap(tt *TaskTracker, m *mapTask) {
	if m.state != TaskPending {
		panic(fmt.Sprintf("mr: launching map %s/%d in state %v", m.job.Spec.Name, m.id, m.state))
	}
	prof := m.job.Spec.Profile
	jit := c.rng.Jitter(c.cfg.Jitter)
	m.state = TaskRunning
	m.tracker = tt
	m.started = c.clock.Now()
	m.preCombineMB = m.split.SizeMB * prof.MapOutputRatio * jit
	m.shuffleMB = m.preCombineMB * prof.CombineRatio
	if c.cfg.CompressShuffle {
		// shuffleMB is what crosses disk and network: compressed bytes.
		m.shuffleMB *= c.cfg.CompressionRatio
	}
	tt.runningMaps[m] = struct{}{}
	c.tenantTaskStarted(m.job, true)
	if c.inv != nil && c.cfg.Policy != YARN {
		// Under YARN the memory pool, not mapTarget, bounds occupancy.
		c.inv.CheckMapLaunch(tt.id, len(tt.runningMaps), tt.mapTarget)
	}
	c.inv.CheckLaunchTracker(tt.id, tt.failed, tt.draining, tt.hbLost, tt.blacklisted, tt.probation)
	c.emit(EvTaskStarted, m.job.Spec.Name, fmt.Sprintf("map/%d", m.id), tt.id, "")
	c.traceMapBegin(tt, m)
	if m.job.Started < 0 {
		m.job.Started = c.clock.Now()
	}

	// Phase 0: stream the split (remotely if not local) while running
	// the map function. The phase completes when both finish.
	m.phase = 0
	m.pendingOps = 1
	m.cpuAct = &resource.Activity{
		Kind:        resource.CPU,
		Remaining:   1, // work is tracked by the op; the activity provides the rate
		Weight:      1,
		Pressure:    m.job.mapPressure,
		FootprintMB: prof.MapFootprintMB,
		Label:       fmt.Sprintf("map %s/%d", m.job.Spec.Name, m.id),
	}
	tt.node.Add(m.cpuAct)
	work := m.split.SizeMB * prof.MapCPUPerMB * c.rng.Jitter(c.cfg.Jitter)
	m.computeOp = c.addNodeOp(tt.id, work, m.cpuAct, func() {
		tt.node.Remove(m.cpuAct)
		m.cpuAct = nil
		m.computeOp = nil
		c.mapPhaseOpDone(m)
	})

	if host := c.nearestLiveHost(tt.id, m.split); host != tt.id {
		m.pendingOps++
		flow := c.newFlow(host, tt.id, m.split.SizeMB, 0,
			fmt.Sprintf("read %s/%d", m.job.Spec.Name, m.id))
		c.fabric.Add(flow)
		m.readFlow = flow
		m.readOp = c.addFlowOp(flow, flow.Label, m.split.SizeMB, func() {
			c.fabric.Remove(flow)
			m.readFlow = nil
			m.readOp = nil
			c.releaseFlow(flow)
			c.mapPhaseOpDone(m)
		})
	}
}

// nearestLiveHost is dfs.NearestHost restricted to live trackers; a
// split whose replicas are all on dead nodes is unrecoverable data
// loss, which the simulation treats as fatal.
func (c *Cluster) nearestLiveHost(node int, split dfs.Split) int {
	if h := c.fs.NearestHost(node, split); !c.trackers[h].failed {
		return h
	}
	rack := c.fs.Rack(node)
	best := -1
	for _, h := range split.Hosts {
		if c.trackers[h].failed {
			continue
		}
		if h == node {
			return h
		}
		if best < 0 || (c.fs.Rack(h) == rack && c.fs.Rack(best) != rack) {
			best = h
		}
	}
	if best < 0 {
		panic(fmt.Sprintf("mr: all replicas of %s/%d are on failed nodes", split.File, split.Index))
	}
	return best
}

// mapPhaseOpDone advances the map task when all ops of its current
// phase have retired.
func (c *Cluster) mapPhaseOpDone(m *mapTask) {
	m.pendingOps--
	if m.pendingOps > 0 {
		return
	}
	switch m.phase {
	case 0:
		c.startMapSpill(m)
	case 1:
		c.commitMap(m)
	default:
		panic(fmt.Sprintf("mr: map %s/%d finished unknown phase %d", m.job.Spec.Name, m.id, m.phase))
	}
}

// startMapSpill begins the sort-and-spill (plus combine) phase.
func (c *Cluster) startMapSpill(m *mapTask) {
	prof := m.job.Spec.Profile
	tt := m.tracker
	m.phase = 1
	m.pendingOps = 0

	sortWork := m.preCombineMB * prof.SortCPUPerMB
	if c.cfg.CompressShuffle {
		sortWork += m.preCombineMB * prof.CombineRatio * c.cfg.CompressCPUPerMB
	}
	if sortWork > 0 {
		m.pendingOps++
		m.cpuAct = &resource.Activity{
			Kind:        resource.CPU,
			Remaining:   1,
			Weight:      1,
			Pressure:    m.job.mapPressure,
			FootprintMB: prof.MapFootprintMB,
			Label:       fmt.Sprintf("sort %s/%d", m.job.Spec.Name, m.id),
		}
		tt.node.Add(m.cpuAct)
		m.sortOp = c.addNodeOp(tt.id, sortWork, m.cpuAct, func() {
			tt.node.Remove(m.cpuAct)
			m.cpuAct = nil
			m.sortOp = nil
			c.mapPhaseOpDone(m)
		})
	}
	if m.preCombineMB > 0 {
		m.pendingOps++
		m.diskAct = &resource.Activity{
			Kind:      resource.Disk,
			Remaining: 1,
			Weight:    0.2, // spill writers are mostly I/O wait
			Label:     fmt.Sprintf("spill %s/%d", m.job.Spec.Name, m.id),
		}
		tt.node.Add(m.diskAct)
		m.spillOp = c.addNodeOp(tt.id, m.preCombineMB, m.diskAct, func() {
			tt.node.Remove(m.diskAct)
			m.diskAct = nil
			m.spillOp = nil
			c.mapPhaseOpDone(m)
		})
	}
	if m.pendingOps == 0 {
		// Jobs that emit no map output (pure filters with no matches)
		// commit immediately.
		c.commitMap(m)
	}
}

// commitMap finalises a map attempt: frees the slot, resolves any
// speculative race, publishes the logical task's output for shuffling
// and fires the barrier when it is the last map.
func (c *Cluster) commitMap(m *mapTask) {
	tt := m.tracker
	logical := m.original()
	m.state = TaskDone
	delete(tt.runningMaps, m)
	c.tenantTaskStopped(m.job, true)
	if !c.resolveSpeculation(m) {
		// The sibling attempt committed first; this one is a duplicate.
		c.traceMapEnd(m, "duplicate")
		c.jt.taskFreed(tt)
		return
	}
	c.traceMapEnd(m, "done")

	// Record the winning attempt's results on the logical task, which
	// is what reducers, the barrier and failure recovery track.
	logical.state = TaskDone
	logical.outputHost = tt.id
	logical.outputLost = false // fresh commit supersedes any lost predecessor
	logical.finished = c.clock.Now()
	if logical.started == 0 && m.started > 0 {
		logical.started = m.started
	}
	logical.preCombineMB = m.preCombineMB
	logical.shuffleMB = m.shuffleMB
	j := logical.job
	j.mapsDone++
	j.ShuffledMB += logical.shuffleMB
	tt.mapInputDoneMB += logical.split.SizeMB
	tt.mapOutputDoneMB += logical.shuffleMB

	// Publish the output: each reducer owns its partition's share (the
	// weight vector is uniform unless the job declares skew). After a
	// re-execution, reducers that already received this map's output
	// (durable at their end) are skipped.
	if logical.shuffleMB > 0 && len(j.reduces) > 0 {
		for _, r := range j.reduces {
			if !r.got[logical.id] {
				c.deliverShare(r, tt.id, logical.shuffleMB*j.partWeights[r.partition], logical)
			}
		}
	}

	c.emit(EvTaskDone, j.Spec.Name, fmt.Sprintf("map/%d", logical.id), tt.id, "")
	if j.BarrierReached() {
		j.BarrierAt = c.clock.Now()
		c.emit(EvBarrier, j.Spec.Name, "", -1, "")
		c.traceBarrier(j)
		c.progressMilestone(MilestoneJobBarrier, j.Spec.Name)
		// Reducers blocked only on the barrier may now advance.
		for _, r := range j.reduces {
			if r.state == TaskRunning && r.phase == 0 {
				c.checkShuffleDone(r)
			}
		}
	}
	c.jt.taskFreed(tt)
	c.checkJobCompletion(j)
}

// deliverShare credits one map output partition share to a reducer.
// Local shares (map output on the reducer's own node) are read from
// disk during the merge and never cross the network, so they count as
// fetched immediately; remote shares either top up a live flow or wait
// in the pending queue for a free fetcher.
func (c *Cluster) deliverShare(r *reduceTask, src int, mb float64, m *mapTask) {
	if r.state == TaskDone {
		panic(fmt.Sprintf("mr: delivering to finished reducer %s/%d", r.job.Spec.Name, r.partition))
	}
	if r.state == TaskRunning && r.tracker.id == src {
		r.fetchedMB += mb
		r.got[m.id] = true
		return
	}
	if r.state == TaskRunning {
		if sf := r.flows[src]; sf != nil {
			c.topUpOp(sf.op, mb)
			c.fabric.TopUp(sf.flow, mb)
			r.flowMaps[src] = append(r.flowMaps[src], m)
			return
		}
		r.pending[src] += mb
		r.pendingMaps[src] = append(r.pendingMaps[src], m)
		c.activateFetches(r)
		return
	}
	// Not running yet: queue for launch time.
	r.pending[src] += mb
	r.pendingMaps[src] = append(r.pendingMaps[src], m)
}

// activateFetches starts transfers from pending sources until the
// reducer's fetcher threads are all busy.
func (c *Cluster) activateFetches(r *reduceTask) {
	for src := 0; r.nflows < c.cfg.Fetchers; src++ {
		if src >= c.cfg.Workers {
			return
		}
		mb := r.pending[src]
		if mb <= 0 || r.flows[src] != nil {
			continue
		}
		r.pending[src] = 0
		r.flowMaps[src] = r.pendingMaps[src]
		r.pendingMaps[src] = nil
		c.startFetch(r, src, mb)
	}
}

// startFetch opens one capped shuffle flow from src to the reducer.
// Fetches are the highest-volume op kind, so their labels come from a
// cached per-reducer prefix instead of a fresh format call each time.
func (c *Cluster) startFetch(r *reduceTask, src int, mb float64) {
	if r.fetchLabel == "" {
		r.fetchLabel = "shuffle " + r.job.Spec.Name + "/r" + strconv.Itoa(r.partition) + "<-"
	}
	flow := c.newFlow(src, r.tracker.id, mb, c.cfg.PerFetchMBps,
		r.fetchLabel+strconv.Itoa(src))
	c.fabric.Add(flow)
	sf := &shuffleFlow{flow: flow}
	tt := r.tracker
	sf.op = c.addFlowOp(flow, flow.Label, mb, func() {
		c.fabric.Remove(flow)
		r.flows[src] = nil
		r.nflows--
		for _, m := range r.flowMaps[src] {
			r.got[m.id] = true
		}
		r.flowMaps[src] = nil
		// total includes post-launch top-ups, so read it from the op
		// (still intact inside onDone) rather than the launch-time mb.
		moved := sf.op.total
		r.fetchedMB += moved
		tt.shuffleDoneMB += moved
		sf.op = nil
		sf.flow = nil
		c.releaseFlow(flow)
		c.activateFetches(r)
		c.checkShuffleDone(r)
	})
	r.flows[src] = sf
	r.nflows++
}

// launchReduce starts reduce task r on tracker tt.
func (c *Cluster) launchReduce(tt *TaskTracker, r *reduceTask) {
	if r.state != TaskPending {
		panic(fmt.Sprintf("mr: launching reduce %s/%d in state %v", r.job.Spec.Name, r.partition, r.state))
	}
	prof := r.job.Spec.Profile
	r.state = TaskRunning
	r.tracker = tt
	r.phase = 0
	r.started = c.clock.Now()
	tt.runningReduces[r] = struct{}{}
	c.tenantTaskStarted(r.job, false)
	if c.inv != nil && c.cfg.Policy != YARN {
		c.inv.CheckReduceLaunch(tt.id, len(tt.runningReduces), tt.reduceTarget)
	}
	c.inv.CheckLaunchTracker(tt.id, tt.failed, tt.draining, tt.hbLost, tt.blacklisted, tt.probation)
	c.emit(EvTaskStarted, r.job.Spec.Name, fmt.Sprintf("reduce/%d", r.partition), tt.id, "")
	c.traceReduceBegin(tt, r)
	if r.job.Started < 0 {
		r.job.Started = c.clock.Now()
	}

	// The shuffle infrastructure occupies the node: copier threads and
	// merge buffers, modelled as a phantom activity.
	r.phantom = &resource.Activity{
		Kind:        resource.Phantom,
		Weight:      prof.FetcherWeight * float64(c.cfg.Fetchers),
		Pressure:    prof.FetcherPressure,
		FootprintMB: prof.ReduceFootprint,
		Label:       fmt.Sprintf("fetch %s/r%d", r.job.Spec.Name, r.partition),
	}
	tt.node.Add(r.phantom)

	// Any shares committed before launch: local ones are already on
	// disk here, remote ones start fetching now.
	if mb := r.pending[tt.id]; mb > 0 || len(r.pendingMaps[tt.id]) > 0 {
		r.pending[tt.id] = 0
		for _, m := range r.pendingMaps[tt.id] {
			r.got[m.id] = true
		}
		r.pendingMaps[tt.id] = nil
		r.fetchedMB += mb
	}
	c.activateFetches(r)
	c.checkShuffleDone(r)
}

// checkShuffleDone advances a shuffling reducer past the barrier once
// every map has committed and every byte has been fetched.
func (c *Cluster) checkShuffleDone(r *reduceTask) {
	if r.state != TaskRunning || r.phase != 0 {
		return
	}
	if !r.job.BarrierReached() || !r.shuffleSettled() {
		return
	}
	r.tracker.node.Remove(r.phantom)
	r.phantom = nil
	c.startReduceSort(r)
}

// startReduceSort begins the reduce-side merge sort.
func (c *Cluster) startReduceSort(r *reduceTask) {
	prof := r.job.Spec.Profile
	tt := r.tracker
	r.phase = 1
	r.pendingOps = 0

	// With compression, fetchedMB is compressed bytes; merge and the
	// reduce function operate on the uncompressed volume.
	uncompressed := r.fetchedMB
	if c.cfg.CompressShuffle {
		uncompressed = r.fetchedMB / c.cfg.CompressionRatio
	}
	mergeWork := uncompressed * prof.MergeCPUPerMB
	if c.cfg.CompressShuffle {
		mergeWork += uncompressed * c.cfg.DecompressCPUPerMB
	}
	if mergeWork > 0 {
		r.pendingOps++
		r.cpuAct = &resource.Activity{
			Kind:        resource.CPU,
			Remaining:   1,
			Weight:      1,
			Pressure:    r.job.mapPressure,
			FootprintMB: prof.ReduceFootprint,
			Label:       fmt.Sprintf("rsort %s/r%d", r.job.Spec.Name, r.partition),
		}
		tt.node.Add(r.cpuAct)
		r.sortOp = c.addNodeOp(tt.id, mergeWork, r.cpuAct, func() {
			tt.node.Remove(r.cpuAct)
			r.cpuAct = nil
			r.sortOp = nil
			c.reducePhaseOpDone(r)
		})
	}
	if r.fetchedMB > 0 {
		r.pendingOps++
		r.diskAct = &resource.Activity{
			Kind:      resource.Disk,
			Remaining: 1,
			Weight:    0.2,
			Label:     fmt.Sprintf("rmerge %s/r%d", r.job.Spec.Name, r.partition),
		}
		tt.node.Add(r.diskAct)
		r.mergeOp = c.addNodeOp(tt.id, r.fetchedMB, r.diskAct, func() {
			tt.node.Remove(r.diskAct)
			r.diskAct = nil
			r.mergeOp = nil
			c.reducePhaseOpDone(r)
		})
	}
	if r.pendingOps == 0 {
		c.startReduceCompute(r)
	}
}

// reducePhaseOpDone advances the reducer when its phase ops retire.
func (c *Cluster) reducePhaseOpDone(r *reduceTask) {
	r.pendingOps--
	if r.pendingOps > 0 {
		return
	}
	switch r.phase {
	case 1:
		c.startReduceCompute(r)
	case 2:
		c.finishReduce(r)
	default:
		panic(fmt.Sprintf("mr: reduce %s/%d finished unknown phase %d", r.job.Spec.Name, r.partition, r.phase))
	}
}

// startReduceCompute begins the user reduce function and output write.
func (c *Cluster) startReduceCompute(r *reduceTask) {
	prof := r.job.Spec.Profile
	tt := r.tracker
	r.phase = 2
	r.pendingOps = 0

	redVolume := r.fetchedMB
	if c.cfg.CompressShuffle {
		redVolume = r.fetchedMB / c.cfg.CompressionRatio
	}
	redWork := redVolume * prof.ReduceCPUPerMB * c.rng.Jitter(c.cfg.Jitter)
	if redWork > 0 {
		r.pendingOps++
		r.cpuAct = &resource.Activity{
			Kind:        resource.CPU,
			Remaining:   1,
			Weight:      1,
			Pressure:    r.job.mapPressure,
			FootprintMB: prof.ReduceFootprint,
			Label:       fmt.Sprintf("reduce %s/r%d", r.job.Spec.Name, r.partition),
		}
		tt.node.Add(r.cpuAct)
		r.redOp = c.addNodeOp(tt.id, redWork, r.cpuAct, func() {
			tt.node.Remove(r.cpuAct)
			r.cpuAct = nil
			r.redOp = nil
			c.reducePhaseOpDone(r)
		})
	}
	outMB := redVolume * prof.OutputRatio
	if outMB > 0 {
		r.pendingOps++
		r.diskAct = &resource.Activity{
			Kind:      resource.Disk,
			Remaining: 1,
			Weight:    0.2,
			Label:     fmt.Sprintf("rout %s/r%d", r.job.Spec.Name, r.partition),
		}
		tt.node.Add(r.diskAct)
		r.writeOp = c.addNodeOp(tt.id, outMB, r.diskAct, func() {
			tt.node.Remove(r.diskAct)
			r.diskAct = nil
			r.writeOp = nil
			c.reducePhaseOpDone(r)
		})
		// HDFS write pipeline: each extra replica streams the output
		// over the fabric to another live node and lands on its disk.
		// The pipeline is fluid (not store-and-forward), so each hop is
		// an independent flow+disk pair gating task completion.
		for extra := 1; extra < c.cfg.OutputReplication; extra++ {
			target := c.pickReplicaTarget(tt.id, extra)
			if target < 0 {
				break // not enough live nodes; degrade like HDFS does
			}
			r.pendingOps++
			flow := c.newFlow(tt.id, target, outMB, 0,
				fmt.Sprintf("repl %s/r%d->%d", r.job.Spec.Name, r.partition, target))
			c.fabric.Add(flow)
			remoteDisk := &resource.Activity{Kind: resource.Disk, Remaining: 1, Weight: 0.2,
				Label: fmt.Sprintf("repl-disk %s/r%d@%d", r.job.Spec.Name, r.partition, target)}
			c.nodes[target].Add(remoteDisk)
			// The effective pipeline rate is min(network, remote disk);
			// model it as the flow gated by the remote disk via a cap
			// refresh is overkill — run the two ops in series-free
			// parallel and require both, which matches a fluid pipe
			// whose slower stage dominates.
			//
			// Each completion clears its own entry in the parallel pipe
			// slices (slot indices captured here), so teardown after a
			// failure only sees the pieces that are still live.
			flowSlot := len(r.pipeFlows)
			actSlot := len(r.pipeActs)
			opSlot := len(r.pipeOps)
			flowDone := false
			diskDone := false
			finish := func() {
				if flowDone && diskDone {
					c.reducePhaseOpDone(r)
				}
			}
			fOp := c.addFlowOp(flow, flow.Label, outMB, func() {
				c.fabric.Remove(flow)
				r.pipeFlows[flowSlot] = nil
				r.pipeOps[opSlot] = nil
				c.releaseFlow(flow)
				flowDone = true
				finish()
			})
			dOp := c.addNodeOp(target, outMB, remoteDisk, func() {
				c.nodes[target].Remove(remoteDisk)
				r.pipeActs[actSlot] = nil
				r.pipeOps[opSlot+1] = nil
				diskDone = true
				finish()
			})
			// Both ops gate completion but count as ONE pendingOp: the
			// pipeline finishes when its slower stage drains. Track the
			// pieces so a writer-side failure can tear them down.
			r.pipeFlows = append(r.pipeFlows, flow)
			r.pipeActs = append(r.pipeActs, remoteDisk)
			r.pipeNodes = append(r.pipeNodes, target)
			r.pipeOps = append(r.pipeOps, fOp, dOp)
		}
	}
	if r.pendingOps == 0 {
		c.finishReduce(r)
	}
}

// pickReplicaTarget chooses the extra-th replica node for an output
// written at node src: the HDFS policy's spirit — first extra replica
// off-node (and off-rack when possible), deterministic per (src, extra).
func (c *Cluster) pickReplicaTarget(src, extra int) int {
	n := c.cfg.Workers
	for probe := 1; probe < n; probe++ {
		cand := (src + extra*7 + probe - 1) % n
		if cand != src && !c.trackers[cand].failed {
			return cand
		}
	}
	return -1
}

// finishReduce retires the task and checks the job for completion.
func (c *Cluster) finishReduce(r *reduceTask) {
	tt := r.tracker
	r.state = TaskDone
	r.finished = c.clock.Now()
	delete(tt.runningReduces, r)
	c.tenantTaskStopped(r.job, false)
	r.job.reducesDone++
	c.traceReduceEnd(r, "done")
	c.emit(EvTaskDone, r.job.Spec.Name, fmt.Sprintf("reduce/%d", r.partition), tt.id, "")
	c.jt.taskFreed(tt)
	c.checkJobCompletion(r.job)
}

// checkJobCompletion records completion milestones and may stop the
// simulation once the last job drains.
func (c *Cluster) checkJobCompletion(j *Job) {
	if !j.Finished() || j.FinishedAt >= 0 {
		return
	}
	j.FinishedAt = c.clock.Now()
	j.Progress.Sample(c.clock.Now(), 100, 100)
	c.traceJobEnd(j)
	c.emit(EvJobFinished, j.Spec.Name, "", -1, "")
	c.progressMilestone(MilestoneJobFinished, j.Spec.Name)
	c.jt.retire(j)
	c.activeJobs--
	if c.activeJobs == 0 && c.jobsToSubmit == 0 {
		c.shutdown()
	}
}
