package mr

import (
	"fmt"
	"math"
	"strconv"

	"smapreduce/internal/trace"
)

// Speculative execution for map tasks, modelled on Hadoop's scheme:
// when a tracker has a free map slot and no pending work, the job
// tracker may clone the slowest-progressing running map onto it. The
// first attempt to commit wins; the loser is killed on the spot (its
// partial output is attempt-private, so nothing else unwinds).
//
// Reduce tasks are never speculated: a backup reducer would re-fetch
// its whole partition, which is why production Hadoop deployments
// commonly disable reduce speculation too.

// pickSpeculative selects a running map worth backing up for a free
// slot on tt, or nil. Scoring follows the LATE insight: compare
// progress *rates*, not absolute progress — late in a job every
// remaining task started recently, so absolute gaps never open, but a
// straggler's rate is low from its first second. A task qualifies when
// its rate falls below (1 − SpeculationGap) of its running peers' mean
// rate; among qualifiers the one with the longest estimated time to
// completion is cloned first. Caller must hold a mutation scope.
func (jt *JobTracker) pickSpeculative(tt *TaskTracker) *mapTask {
	cfg := jt.c.cfg
	now := jt.c.clock.Now()
	var candidate *mapTask
	longestETA := 0.0
	for _, j := range jt.jobOrder() {
		if jt.c.tenantAtCap(j) {
			continue // a backup attempt counts against the tenant's cap too
		}
		// Mean progress rate of running original attempts.
		sum, n := 0.0, 0
		for _, m := range j.maps {
			if m.state != TaskRunning || m.backupOf != nil {
				continue
			}
			if el := now - m.started; el > 0 {
				sum += m.progressFraction() / el
				n++
			}
		}
		if n < 2 {
			continue // nothing to compare against
		}
		meanRate := sum / float64(n)
		if meanRate <= 0 {
			continue
		}
		for _, m := range j.maps {
			if m.state != TaskRunning || m.backupOf != nil || m.backup != nil {
				continue
			}
			if m.tracker == tt {
				continue // a backup must run elsewhere
			}
			elapsed := now - m.started
			if elapsed < cfg.SpeculationMinRuntime {
				continue
			}
			rate := m.progressFraction() / elapsed
			if rate >= (1-cfg.SpeculationGap)*meanRate {
				continue
			}
			eta := math.Inf(1)
			if rate > 0 {
				eta = (1 - m.progressFraction()) / rate
			}
			if candidate == nil || eta > longestETA {
				longestETA = eta
				candidate = m
			}
		}
	}
	return candidate
}

// launchBackup clones original onto tt and starts it.
func (c *Cluster) launchBackup(tt *TaskTracker, original *mapTask) {
	if original.backup != nil || original.backupOf != nil {
		panic(fmt.Sprintf("mr: backup of %s/%d already exists or is itself a backup",
			original.job.Spec.Name, original.id))
	}
	clone := &mapTask{
		job:        original.job,
		id:         original.id,
		split:      original.split,
		outputHost: -1,
		backupOf:   original,
	}
	original.backup = clone
	original.job.SpeculativeLaunched++
	c.emit(EvSpeculative, original.job.Spec.Name, fmt.Sprintf("map/%d", original.id), tt.id, "")
	if c.tracer.Enabled() {
		c.tracer.Instant(c.clock.Now(), trackerPID(tt.id), "speculation", "speculative-backup",
			trace.Str("task", original.job.Spec.Name+"/map/"+strconv.Itoa(original.id)),
			trace.Num("original-tt", float64(original.tracker.id)))
	}
	c.tracef("speculative backup of map %s/%d on tt%d (original on tt%d at %.0f%%)",
		original.job.Spec.Name, original.id, tt.id, original.tracker.id,
		100*original.progressFraction())
	c.launchMap(tt, clone)
}

// resolveSpeculation is called when attempt m commits: it kills the
// losing sibling (if any) and reports whether this commit is the
// logical task's first (false means a duplicate that must be dropped —
// impossible by construction, but checked defensively).
func (c *Cluster) resolveSpeculation(m *mapTask) bool {
	orig := m.original()
	var loser *mapTask
	if m == orig {
		loser = orig.backup
	} else {
		loser = orig
		orig.job.SpeculativeWins++
		c.tracef("speculative backup of map %s/%d won", orig.job.Spec.Name, orig.id)
	}
	orig.backup = nil
	m.backupOf = nil
	if loser == nil {
		return true
	}
	switch loser.state {
	case TaskRunning:
		c.killAttempt(loser)
	case TaskDone:
		// The sibling committed first; our commit is a duplicate.
		return false
	}
	return true
}

// killAttempt tears down a running attempt without requeueing it.
func (c *Cluster) killAttempt(m *mapTask) {
	tt := m.tracker
	if m.cpuAct != nil {
		tt.node.Remove(m.cpuAct)
		m.cpuAct = nil
	}
	if m.diskAct != nil {
		tt.node.Remove(m.diskAct)
		m.diskAct = nil
	}
	if m.readFlow != nil {
		c.fabric.Remove(m.readFlow)
	}
	c.dropOp(m.computeOp)
	c.dropOp(m.readOp) // unbinds the read flow before it goes back to the pool
	c.dropOp(m.sortOp)
	c.dropOp(m.spillOp)
	if m.readFlow != nil {
		c.releaseFlow(m.readFlow)
		m.readFlow = nil
	}
	m.computeOp, m.readOp, m.sortOp, m.spillOp = nil, nil, nil, nil
	delete(tt.runningMaps, m)
	c.tenantTaskStopped(m.job, true)
	c.traceMapEnd(m, "killed")
	m.state = TaskDone // retired; the logical task's result came from the winner
	m.tracker = nil
	c.jt.taskFreed(tt)
}
