package mr

import (
	"testing"

	"smapreduce/internal/puma"
	"smapreduce/internal/resource"
)

// stragglerConfig builds a cluster where two nodes run at half speed,
// creating genuine stragglers for speculation to chase.
func stragglerConfig(speculate bool) Config {
	cfg := DefaultConfig()
	cfg.Workers = 8
	cfg.Net.Nodes = 8
	cfg.Speculation = speculate
	cfg.SpeculationMinRuntime = 3
	specs := make([]resource.Spec, cfg.Workers)
	for i := range specs {
		specs[i] = resource.DefaultSpec()
		if i >= 6 {
			specs[i].CoreSpeed = 0.4 // two crippled nodes
		}
	}
	cfg.NodeSpecs = specs
	return cfg
}

func TestSpeculationConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Speculation = true
	cfg.SpeculationGap = 0
	if cfg.Validate() == nil {
		t.Fatal("zero gap accepted")
	}
	cfg.SpeculationGap = 1.5
	if cfg.Validate() == nil {
		t.Fatal("gap > 1 accepted")
	}
	cfg.SpeculationGap = 0.2
	cfg.SpeculationMinRuntime = -1
	if cfg.Validate() == nil {
		t.Fatal("negative min runtime accepted")
	}
}

func TestSpeculationLaunchesAndWins(t *testing.T) {
	cfg := stragglerConfig(true)
	c := MustNewCluster(cfg)
	spec := JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 8192, Reduces: 8}
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	j := jobs[0]
	if !j.Finished() {
		t.Fatal("unfinished")
	}
	if j.SpeculativeLaunched == 0 {
		t.Fatal("no speculative attempts on a cluster with 2.5× stragglers")
	}
	if j.SpeculativeWins == 0 {
		t.Fatal("no speculative attempt ever won against a half-speed node")
	}
	if j.SpeculativeWins > j.SpeculativeLaunched {
		t.Fatalf("wins %d > launched %d", j.SpeculativeWins, j.SpeculativeLaunched)
	}
	if j.MapsDone() != j.NumMaps() {
		t.Fatalf("logical map accounting broken: %d/%d", j.MapsDone(), j.NumMaps())
	}
}

func TestSpeculationHelpsOnStragglers(t *testing.T) {
	spec := JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 8192, Reduces: 8}
	run := func(speculate bool) float64 {
		c := MustNewCluster(stragglerConfig(speculate))
		jobs, err := c.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return jobs[0].FinishedAt
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Fatalf("speculation (%v) did not beat no-speculation (%v) with stragglers", with, without)
	}
}

func TestSpeculationOffByDefault(t *testing.T) {
	cfg := stragglerConfig(false)
	c := MustNewCluster(cfg)
	spec := JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 4096, Reduces: 8}
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].SpeculativeLaunched != 0 {
		t.Fatal("speculation ran while disabled")
	}
}

func TestSpeculationNearNeutralOnHomogeneous(t *testing.T) {
	// Without stragglers the backup attempts rarely launch and never
	// dominate; end-to-end time must stay within a few percent.
	base := DefaultConfig()
	base.Workers = 8
	base.Net.Nodes = 8
	spec := JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 8192, Reduces: 8}
	run := func(speculate bool) float64 {
		cfg := base
		cfg.Speculation = speculate
		cfg.SpeculationMinRuntime = 3
		c := MustNewCluster(cfg)
		jobs, err := c.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return jobs[0].FinishedAt
	}
	without := run(false)
	with := run(true)
	if with > 1.05*without {
		t.Fatalf("speculation cost %v vs %v on a homogeneous cluster", with, without)
	}
}

func TestSpeculationSurvivesTrackerFailure(t *testing.T) {
	cfg := stragglerConfig(true)
	c := MustNewCluster(cfg)
	c.ScheduleFailure(6, 8) // kill a straggler node mid-run
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 4096, Reduces: 8}
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	j := jobs[0]
	if !j.Finished() || j.MapsDone() != j.NumMaps() {
		t.Fatalf("speculation + failure broke the run: %d/%d maps", j.MapsDone(), j.NumMaps())
	}
}

func TestSpeculationDeterministic(t *testing.T) {
	spec := JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 4096, Reduces: 8}
	run := func() float64 {
		c := MustNewCluster(stragglerConfig(true))
		jobs, err := c.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return jobs[0].FinishedAt
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("speculative runs diverged: %v vs %v", a, b)
	}
}
