package mr

import (
	"smapreduce/internal/netsim"
	"smapreduce/internal/sim"
)

// SimState bundles the allocation-heavy simulation substrate — the
// event arena and the network fabric (with its flow free list) — for
// reuse across consecutive cluster runs on one fleet worker. The first
// cluster built on a SimState allocates the substrate; every later one
// resets it in place, so steady-state fleet execution re-grows neither
// the event slab nor the per-link fabric state.
//
// What deliberately stays out: everything whose closures or objects
// are bound to a specific cluster. Fluid ops capture their owning
// *Cluster in their handler closures, telemetry probes close over
// trackers, and the DFS layout is seeded per run — none of that can
// cross clusters, so each run rebuilds it. The substrate kept here is
// exactly the part PR 4's pooling made allocation-free *within* a run,
// extended across runs.
//
// A SimState may serve one cluster at a time: building a new cluster
// on it resets the substrate under the previous one, so the caller
// must be completely done (including reads of event logs or stats)
// with the prior cluster first. The zero value is ready to use.
type SimState struct {
	clock  *sim.Clock
	fabric *netsim.Fabric
}

// NewSimState returns an empty SimState ready for its first cluster.
func NewSimState() *SimState { return &SimState{} }

// NewClusterReusing is NewCluster on recycled substrate: the state's
// clock and fabric are reset and adopted instead of freshly allocated
// (a nil st is exactly NewCluster). Reset substrate is observationally
// identical to fresh substrate — the reset paths restart every counter
// and generation — so a run on a reused SimState produces bit-identical
// results to a run on a fresh one; the fleet determinism suite pins
// this.
func NewClusterReusing(cfg Config, st *SimState) (*Cluster, error) {
	return newCluster(cfg, st)
}
