package mr

import (
	"fmt"
	"math"
	"sort"

	"smapreduce/internal/netsim"
	"smapreduce/internal/sim"
)

// fluidOp is one piece of rate-driven work: a CPU phase, a disk phase
// or a network flow. Between membership events its rate is constant, so
// progress integrates linearly and completion can be scheduled exactly.
//
// Ops are settled lazily: remaining work is integrated forward only
// when the op is read (fraction, movedMB), topped up, refreshed after a
// rate change, or completed. Because lastRate is updated at every rate
// change, integrating a long untouched span in one step is exact up to
// float rounding.
type fluidOp struct {
	label      string
	total      float64        // initial work, for progress fractions
	remaining  float64        // outstanding work as of lastSettle
	rateFn     func() float64 // reads the current fluid rate
	lastRate   float64
	lastSettle float64
	event      *sim.Event
	onDone     func() // runs inside the mutation scope that retired the op
	handler    func() // cached completion closure, reused across reschedules

	// Dirty-tracking state. An op is bound to the rate source that can
	// change its rate — a node's activity set (nodeID >= 0), a fabric
	// flow, or neither ("loose", arbitrary rateFn closures used by
	// tests) — and is marked dirty when that source changes. Loose ops
	// have no observable source, so they refresh on every Mutate.
	c         *Cluster
	pos       int // position in c.ops; -1 once removed
	dirty     bool
	nodeID    int // node binding; -1 when not node-bound
	nodeSlot  int // position in c.nodeOps[nodeID]
	flow      *netsim.Flow
	loose     bool
	looseSlot int // position in c.looseOps
}

// fraction reports completed work in [0,1], settling first so the
// value is current even between refreshes.
func (o *fluidOp) fraction() float64 {
	if o.c != nil && o.c.hasOp(o) {
		o.c.settleOp(o)
	}
	if o.total <= 0 {
		return 1
	}
	f := 1 - o.remaining/o.total
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// movedMB reports work completed so far in the op's own unit, settled
// to the current instant.
func (o *fluidOp) movedMB() float64 {
	if o.c != nil && o.c.hasOp(o) {
		o.c.settleOp(o)
	}
	return o.total - o.remaining
}

const opEpsilon = 1e-9

// Mutate brackets a state change to the fluid system. fn may add or
// remove activities, flows and ops, and may nest further Mutate calls;
// at the outermost exit every op whose rate inputs were touched is
// settled at its pre-change rate and refreshed (rates re-resolved,
// completion events rescheduled). Ops with provably untouched rate
// inputs keep their scheduled completion events and are not visited.
func (c *Cluster) Mutate(fn func()) {
	c.mutDepth++
	fn()
	c.mutDepth--
	if c.mutDepth == 0 {
		c.refreshDirty()
	}
}

// markOpDirty queues op for the refresh at the end of the current
// mutation scope. Idempotent per scope.
func (c *Cluster) markOpDirty(op *fluidOp) {
	if !op.dirty {
		op.dirty = true
		c.dirtyOps = append(c.dirtyOps, op)
	}
}

// markNodeOpsDirty marks every op whose rate derives from node id.
// Wired as the node's change hook: any activity membership change
// recomputes all activity rates on that node.
func (c *Cluster) markNodeOpsDirty(id int) {
	for _, op := range c.nodeOps[id] {
		c.markOpDirty(op)
	}
}

// newOp builds and registers an unbound op. Must be called inside
// Mutate. The caller binds it (node/flow/loose) before the scope ends.
func (c *Cluster) newOp(label string, work float64, rateFn func() float64, onDone func()) *fluidOp {
	if c.mutDepth == 0 {
		panic("mr: addOp outside Mutate")
	}
	if work < 0 || math.IsNaN(work) {
		panic(fmt.Sprintf("mr: op %q with invalid work %v", label, work))
	}
	op := &fluidOp{
		label:      label,
		total:      work,
		remaining:  work,
		rateFn:     rateFn,
		lastSettle: c.clock.Now(),
		onDone:     onDone,
		c:          c,
		nodeID:     -1,
	}
	op.handler = c.completionHandler(op)
	c.addToOps(op)
	c.markOpDirty(op) // new ops always need a first refresh
	return op
}

// addOp registers loose fluid work whose rate has no tracked source;
// it is re-read on every Mutate. Tests use it with closure rates.
func (c *Cluster) addOp(label string, work float64, rateFn func() float64, onDone func()) *fluidOp {
	op := c.newOp(label, work, rateFn, onDone)
	op.loose = true
	op.looseSlot = len(c.looseOps)
	c.looseOps = append(c.looseOps, op)
	return op
}

// addNodeOp registers fluid work whose rate derives from node id's
// activity rates (CPU and disk phases).
func (c *Cluster) addNodeOp(id int, label string, work float64, rateFn func() float64, onDone func()) *fluidOp {
	op := c.newOp(label, work, rateFn, onDone)
	op.nodeID = id
	op.nodeSlot = len(c.nodeOps[id])
	c.nodeOps[id] = append(c.nodeOps[id], op)
	return op
}

// addFlowOp registers fluid work driven by a fabric flow's rate.
func (c *Cluster) addFlowOp(flow *netsim.Flow, label string, work float64, onDone func()) *fluidOp {
	op := c.newOp(label, work, flow.Rate, onDone)
	op.flow = flow
	flow.Userdata = op
	return op
}

// The op set is an insertion-ordered slice (with swap-remove) rather
// than a map: refresh processes dirty ops in registration order, and
// that order assigns event sequence numbers, which break ties between
// same-instant completions. Map iteration order would make those ties —
// and any rng draws their handlers perform — nondeterministic. Each op
// carries its own slice position so membership tests and removal need
// no hashing.

func (c *Cluster) addToOps(op *fluidOp) {
	op.pos = len(c.ops)
	c.ops = append(c.ops, op)
}

func (c *Cluster) removeFromOps(op *fluidOp) {
	i := op.pos
	if i < 0 {
		return
	}
	last := len(c.ops) - 1
	c.ops[i] = c.ops[last]
	c.ops[i].pos = i
	c.ops[last] = nil
	c.ops = c.ops[:last]
	op.pos = -1
	c.unbindOp(op)
}

// unbindOp detaches an op from its dirty source.
func (c *Cluster) unbindOp(op *fluidOp) {
	switch {
	case op.nodeID >= 0:
		list := c.nodeOps[op.nodeID]
		last := len(list) - 1
		list[op.nodeSlot] = list[last]
		list[op.nodeSlot].nodeSlot = op.nodeSlot
		list[last] = nil
		c.nodeOps[op.nodeID] = list[:last]
		op.nodeID = -1
	case op.flow != nil:
		op.flow.Userdata = nil
		op.flow = nil
	case op.loose:
		last := len(c.looseOps) - 1
		c.looseOps[op.looseSlot] = c.looseOps[last]
		c.looseOps[op.looseSlot].looseSlot = op.looseSlot
		c.looseOps[last] = nil
		c.looseOps = c.looseOps[:last]
		op.loose = false
	}
}

func (c *Cluster) hasOp(op *fluidOp) bool {
	return op.pos >= 0
}

// dropOp unregisters an op without completing it (task teardown).
// Safe to call on already-retired ops.
func (c *Cluster) dropOp(op *fluidOp) {
	if op == nil {
		return
	}
	if !c.hasOp(op) {
		return
	}
	c.removeFromOps(op)
	c.clock.Cancel(op.event)
	op.event = nil
}

// topUpOp adds work to a live op (shuffle flows gain bytes when map
// outputs commit). Must be called inside Mutate. Progress so far is
// settled before the top-up so the new work extends from now.
func (c *Cluster) topUpOp(op *fluidOp, work float64) {
	if c.mutDepth == 0 {
		panic("mr: topUpOp outside Mutate")
	}
	if work < 0 {
		panic(fmt.Sprintf("mr: topUpOp %q with negative work %v", op.label, work))
	}
	if !c.hasOp(op) {
		panic(fmt.Sprintf("mr: topUpOp on retired op %q", op.label))
	}
	c.settleOp(op)
	op.total += work
	op.remaining += work
	c.markOpDirty(op) // completion moved out; reschedule at refresh
}

// settleOp integrates one op's progress up to now at its last computed
// rate. Idempotent within an instant.
func (c *Cluster) settleOp(op *fluidOp) {
	now := c.clock.Now()
	dt := now - op.lastSettle
	if dt > 0 && op.lastRate > 0 {
		op.remaining -= op.lastRate * dt
		if op.remaining < 0 {
			// A completion event at exactly this instant is still
			// queued; tolerate the epsilon and clamp.
			if op.remaining < -1e-6*math.Max(1, op.total) {
				panic(fmt.Sprintf("mr: op %q overshot by %v", op.label, -op.remaining))
			}
			op.remaining = 0
		}
	}
	op.lastSettle = now
}

// refreshDirty resolves fabric rates for perturbed components (which
// marks flow-bound ops whose rates changed), then settles and
// reschedules every dirty op. Ops that were not touched keep their
// completion events untouched — their scheduled times are still exact
// because their rates did not change.
func (c *Cluster) refreshDirty() {
	c.fabric.ResolveDirty()
	for _, op := range c.looseOps {
		c.markOpDirty(op)
	}
	if len(c.dirtyOps) == 0 {
		return
	}
	// Drop retired ops from the dirty list, then process in
	// registration order so event sequence numbers — the tie-break for
	// same-instant completions — are assigned deterministically.
	live := c.dirtyOps[:0]
	for _, op := range c.dirtyOps {
		op.dirty = false
		if c.hasOp(op) {
			live = append(live, op)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].pos < live[j].pos })
	now := c.clock.Now()
	for _, op := range live {
		c.settleOp(op)
		rate := op.rateFn()
		if math.IsNaN(rate) || rate < 0 {
			panic(fmt.Sprintf("mr: op %q has invalid rate %v", op.label, rate))
		}
		// Unchanged rate with a live event: the scheduled completion is
		// still exact, so skip the cancel/reschedule churn. This is the
		// common case for loose ops and node ops whose sibling count
		// changed without moving the share.
		if rate == op.lastRate && op.event != nil && !op.event.Cancelled() && op.remaining > opEpsilon {
			continue
		}
		op.lastRate = rate
		c.clock.Cancel(op.event)
		op.event = nil
		switch {
		case op.remaining <= opEpsilon:
			op.event = c.clock.Schedule(now, op.label, op.handler)
		case rate > 0:
			eta := op.remaining / rate
			if math.IsInf(eta, 1) {
				continue
			}
			op.event = c.clock.Schedule(now+eta, op.label, op.handler)
		}
	}
	c.dirtyOps = c.dirtyOps[:0]
}

// completionHandler retires the op and runs its continuation inside a
// fresh mutation scope.
func (c *Cluster) completionHandler(op *fluidOp) func() {
	return func() {
		if !c.hasOp(op) {
			return // dropped between scheduling and firing
		}
		op.event = nil // this event has fired; it no longer guards the op
		c.Mutate(func() {
			// Settle may leave a hair of work if rates fell since the
			// event was scheduled; in that case re-arm instead of
			// completing early.
			c.settleOp(op)
			if op.remaining > opEpsilon && op.lastRate > 0 {
				c.markOpDirty(op) // refreshDirty will reschedule
				return
			}
			op.remaining = 0
			c.removeFromOps(op)
			op.event = nil
			if op.onDone != nil {
				op.onDone()
			}
		})
	}
}
