package mr

import (
	"fmt"
	"math"

	"smapreduce/internal/sim"
)

// fluidOp is one piece of rate-driven work: a CPU phase, a disk phase
// or a network flow. Between membership events its rate is constant, so
// progress integrates linearly and completion can be scheduled exactly.
type fluidOp struct {
	label      string
	total      float64        // initial work, for progress fractions
	remaining  float64        // outstanding work
	rateFn     func() float64 // reads the current fluid rate
	lastRate   float64
	lastSettle float64
	event      *sim.Event
	onDone     func() // runs inside the mutation scope that retired the op
}

// fraction reports completed work in [0,1].
func (o *fluidOp) fraction() float64 {
	if o.total <= 0 {
		return 1
	}
	f := 1 - o.remaining/o.total
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

const opEpsilon = 1e-9

// Mutate brackets a state change to the fluid system: it settles all
// in-flight work at the current rates, applies fn (which may add or
// remove activities, flows and ops, and may nest further Mutate calls),
// then refreshes every op's rate and completion event once at the
// outermost level.
func (c *Cluster) Mutate(fn func()) {
	if c.mutDepth == 0 {
		c.settleAll()
	}
	c.mutDepth++
	fn()
	c.mutDepth--
	if c.mutDepth == 0 {
		c.refreshAll()
	}
}

// addOp registers new fluid work. Must be called inside Mutate.
func (c *Cluster) addOp(label string, work float64, rateFn func() float64, onDone func()) *fluidOp {
	if c.mutDepth == 0 {
		panic("mr: addOp outside Mutate")
	}
	if work < 0 || math.IsNaN(work) {
		panic(fmt.Sprintf("mr: op %q with invalid work %v", label, work))
	}
	op := &fluidOp{
		label:      label,
		total:      work,
		remaining:  work,
		rateFn:     rateFn,
		lastSettle: c.clock.Now(),
		onDone:     onDone,
	}
	c.addToOps(op)
	return op
}

// The op set is an insertion-ordered slice (with swap-remove) rather
// than a map: settle and refresh iterate it, and iteration order
// assigns event sequence numbers, which break ties between same-instant
// completions. Map iteration order would make those ties — and any rng
// draws their handlers perform — nondeterministic across runs.

func (c *Cluster) addToOps(op *fluidOp) {
	c.opPos[op] = len(c.ops)
	c.ops = append(c.ops, op)
}

func (c *Cluster) removeFromOps(op *fluidOp) {
	i, ok := c.opPos[op]
	if !ok {
		return
	}
	last := len(c.ops) - 1
	c.ops[i] = c.ops[last]
	c.opPos[c.ops[i]] = i
	c.ops[last] = nil
	c.ops = c.ops[:last]
	delete(c.opPos, op)
}

func (c *Cluster) hasOp(op *fluidOp) bool {
	_, ok := c.opPos[op]
	return ok
}

// dropOp unregisters an op without completing it (task teardown).
// Safe to call on already-retired ops.
func (c *Cluster) dropOp(op *fluidOp) {
	if op == nil {
		return
	}
	if !c.hasOp(op) {
		return
	}
	c.removeFromOps(op)
	c.clock.Cancel(op.event)
	op.event = nil
}

// topUpOp adds work to a live op (shuffle flows gain bytes when map
// outputs commit). Must be called inside Mutate.
func (c *Cluster) topUpOp(op *fluidOp, work float64) {
	if c.mutDepth == 0 {
		panic("mr: topUpOp outside Mutate")
	}
	if work < 0 {
		panic(fmt.Sprintf("mr: topUpOp %q with negative work %v", op.label, work))
	}
	if !c.hasOp(op) {
		panic(fmt.Sprintf("mr: topUpOp on retired op %q", op.label))
	}
	op.total += work
	op.remaining += work
}

// settleAll integrates every op's progress up to now at its last
// computed rate.
func (c *Cluster) settleAll() {
	now := c.clock.Now()
	for _, op := range c.ops {
		dt := now - op.lastSettle
		if dt > 0 && op.lastRate > 0 {
			op.remaining -= op.lastRate * dt
			if op.remaining < 0 {
				// A completion event at exactly this instant is still
				// queued; tolerate the epsilon and clamp.
				if op.remaining < -1e-6*math.Max(1, op.total) {
					panic(fmt.Sprintf("mr: op %q overshot by %v", op.label, -op.remaining))
				}
				op.remaining = 0
			}
		}
		op.lastSettle = now
	}
}

// refreshAll re-reads every op's rate and (re)schedules its completion.
func (c *Cluster) refreshAll() {
	c.fabric.Recompute()
	now := c.clock.Now()
	for _, op := range c.ops {
		rate := op.rateFn()
		if math.IsNaN(rate) || rate < 0 {
			panic(fmt.Sprintf("mr: op %q has invalid rate %v", op.label, rate))
		}
		// Unchanged rate with a live event: the scheduled completion is
		// still exact, so skip the cancel/reschedule churn. This is the
		// common case — most events perturb one node, not the cluster.
		if rate == op.lastRate && op.event != nil && !op.event.Cancelled() && op.remaining > opEpsilon {
			continue
		}
		op.lastRate = rate
		c.clock.Cancel(op.event)
		op.event = nil
		switch {
		case op.remaining <= opEpsilon:
			op.event = c.clock.Schedule(now, op.label, c.completionHandler(op))
		case rate > 0:
			eta := op.remaining / rate
			if math.IsInf(eta, 1) {
				continue
			}
			op.event = c.clock.Schedule(now+eta, op.label, c.completionHandler(op))
		}
	}
}

// completionHandler retires the op and runs its continuation inside a
// fresh mutation scope.
func (c *Cluster) completionHandler(op *fluidOp) func() {
	return func() {
		if !c.hasOp(op) {
			return // dropped between scheduling and firing
		}
		op.event = nil // this event has fired; it no longer guards the op
		c.Mutate(func() {
			// Settle may leave a hair of work if rates fell since the
			// event was scheduled; in that case re-arm instead of
			// completing early.
			if op.remaining > opEpsilon && op.lastRate > 0 {
				return // refreshAll will reschedule
			}
			op.remaining = 0
			c.removeFromOps(op)
			op.event = nil
			if op.onDone != nil {
				op.onDone()
			}
		})
	}
}
