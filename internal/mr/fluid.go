package mr

import (
	"fmt"
	"math"
	"slices"

	"smapreduce/internal/netsim"
	"smapreduce/internal/resource"
	"smapreduce/internal/sim"
)

// fluidOp is one piece of rate-driven work: a CPU phase, a disk phase
// or a network flow. Between membership events its rate is constant, so
// progress integrates linearly and completion can be scheduled exactly.
//
// Ops are settled lazily: remaining work is integrated forward only
// when the op is read (fraction, movedMB), topped up, refreshed after a
// rate change, or completed. Because lastRate is updated at every rate
// change, integrating a long untouched span in one step is exact up to
// float rounding.
//
// Ops are pool-recycled (see releaseOp): a retired op goes back to the
// cluster's free list with its fields reset, and its two completion
// closures — allocated once per object — ride along, so steady-state
// task churn creates no ops and no closures.
type fluidOp struct {
	label      string
	total      float64 // initial work, for progress fractions
	remaining  float64 // outstanding work as of lastSettle
	lastRate   float64
	lastSettle float64
	event      sim.EventRef
	onDone     func() // runs inside the mutation scope that retired the op
	handler    func() // cached completion closure, reused across reschedules
	complete   func() // cached Mutate body for handler, allocated once

	// Rate source. Exactly one of flow, act, rateFn is set: fabric
	// flows and node activities are bound directly (no per-op closure),
	// loose ops carry an arbitrary closure (tests).
	rateFn func() float64
	act    *resource.Activity
	flow   *netsim.Flow

	// Dirty-tracking state. An op is bound to the rate source that can
	// change its rate — a node's activity set (nodeID >= 0), a fabric
	// flow, or neither ("loose", arbitrary rateFn closures used by
	// tests) — and is marked dirty when that source changes. Loose ops
	// have no observable source, so they refresh on every Mutate.
	c         *Cluster
	pos       int // position in c.ops; -1 once removed
	dirty     bool
	nodeID    int // node binding; -1 when not node-bound
	nodeSlot  int // position in c.nodeOps[nodeID]
	loose     bool
	looseSlot int // position in c.looseOps
}

// currentRate reads the op's rate from its bound source.
func (o *fluidOp) currentRate() float64 {
	switch {
	case o.flow != nil:
		return o.flow.Rate()
	case o.act != nil:
		return o.act.Rate()
	default:
		return o.rateFn()
	}
}

// fraction reports completed work in [0,1], settling first so the
// value is current even between refreshes.
func (o *fluidOp) fraction() float64 {
	if o.c != nil && o.c.hasOp(o) {
		o.c.settleOp(o)
	}
	if o.total <= 0 {
		return 1
	}
	f := 1 - o.remaining/o.total
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// movedMB reports work completed so far in the op's own unit, settled
// to the current instant.
func (o *fluidOp) movedMB() float64 {
	if o.c != nil && o.c.hasOp(o) {
		o.c.settleOp(o)
	}
	return o.total - o.remaining
}

const opEpsilon = 1e-9

// Mutate brackets a state change to the fluid system. fn may add or
// remove activities, flows and ops, and may nest further Mutate calls;
// at the outermost exit every op whose rate inputs were touched is
// settled at its pre-change rate and refreshed (rates re-resolved,
// completion events rescheduled). Ops with provably untouched rate
// inputs keep their scheduled completion events and are not visited.
func (c *Cluster) Mutate(fn func()) {
	c.mutDepth++
	fn()
	c.mutDepth--
	if c.mutDepth == 0 {
		c.refreshDirty()
	}
}

// markOpDirty queues op for the refresh at the end of the current
// mutation scope. Idempotent per scope.
func (c *Cluster) markOpDirty(op *fluidOp) {
	if !op.dirty {
		op.dirty = true
		c.dirtyOps = append(c.dirtyOps, op)
	}
}

// markNodeOpsDirty marks every op whose rate derives from node id.
// Wired as the node's change hook: any activity membership change
// recomputes all activity rates on that node.
func (c *Cluster) markNodeOpsDirty(id int) {
	for _, op := range c.nodeOps[id] {
		c.markOpDirty(op)
	}
}

// bindHandlers allocates the op's two long-lived closures, once per
// arena object: handler is what completion events invoke, complete is
// the Mutate body it wraps. Allocating them here (not per schedule)
// keeps the event loop allocation-free.
func (c *Cluster) bindHandlers(op *fluidOp) {
	op.complete = func() {
		// Settle may leave a hair of work if rates fell since the
		// event was scheduled; in that case re-arm instead of
		// completing early.
		c.settleOp(op)
		if op.remaining > opEpsilon && op.lastRate > 0 {
			c.markOpDirty(op) // refreshDirty will reschedule
			return
		}
		op.remaining = 0
		c.removeFromOps(op)
		op.event = 0
		done := op.onDone
		if done != nil {
			done() // may read op fields (e.g. total); release comes after
		}
		c.releaseOp(op)
	}
	op.handler = func() {
		if !c.hasOp(op) {
			return // dropped between scheduling and firing
		}
		op.event = 0 // this event has fired; it no longer guards the op
		c.Mutate(op.complete)
	}
}

// newOp builds and registers an unbound op, recycling from the pool
// when possible. Must be called inside Mutate. The caller binds it
// (node/flow/loose) before the scope ends.
func (c *Cluster) newOp(label string, work float64, onDone func()) *fluidOp {
	if c.mutDepth == 0 {
		panic("mr: addOp outside Mutate")
	}
	if work < 0 || math.IsNaN(work) {
		panic(fmt.Sprintf("mr: op %q with invalid work %v", label, work))
	}
	var op *fluidOp
	if n := len(c.opPool); n > 0 {
		op = c.opPool[n-1]
		c.opPool[n-1] = nil
		c.opPool = c.opPool[:n-1]
	} else {
		op = &fluidOp{c: c}
		c.bindHandlers(op)
	}
	op.label = label
	op.total = work
	op.remaining = work
	op.lastRate = 0
	op.lastSettle = c.clock.Now()
	op.onDone = onDone
	op.nodeID = -1
	op.event = 0
	c.addToOps(op)
	c.markOpDirty(op) // new ops always need a first refresh
	return op
}

// releaseOp resets a retired op and returns it to the pool. Skipped
// when pooling is disabled, when the op is still registered, or when a
// stale reference to it sits in the dirty queue (rare teardown race —
// the GC takes those; recycling them would let refreshDirty touch the
// slot's next occupant).
func (c *Cluster) releaseOp(op *fluidOp) {
	if c.noPool || op.dirty || op.pos >= 0 {
		return
	}
	op.label = ""
	op.total = 0
	op.remaining = 0
	op.lastRate = 0
	op.lastSettle = 0
	op.event = 0
	op.onDone = nil
	op.rateFn = nil
	op.act = nil
	op.flow = nil
	op.loose = false
	op.nodeID = -1
	c.opPool = append(c.opPool, op)
}

// addOp registers loose fluid work whose rate has no tracked source;
// it is re-read on every Mutate. Tests use it with closure rates.
func (c *Cluster) addOp(label string, work float64, rateFn func() float64, onDone func()) *fluidOp {
	op := c.newOp(label, work, onDone)
	op.rateFn = rateFn
	op.loose = true
	op.looseSlot = len(c.looseOps)
	c.looseOps = append(c.looseOps, op)
	return op
}

// addNodeOp registers fluid work whose rate derives from act, one of
// node id's activities (CPU and disk phases). Binding the activity
// directly — instead of taking a rate closure — keeps task launch
// allocation-free; the op's label is the activity's.
func (c *Cluster) addNodeOp(id int, work float64, act *resource.Activity, onDone func()) *fluidOp {
	op := c.newOp(act.Label, work, onDone)
	op.act = act
	op.nodeID = id
	op.nodeSlot = len(c.nodeOps[id])
	c.nodeOps[id] = append(c.nodeOps[id], op)
	return op
}

// addFlowOp registers fluid work driven by a fabric flow's rate.
func (c *Cluster) addFlowOp(flow *netsim.Flow, label string, work float64, onDone func()) *fluidOp {
	op := c.newOp(label, work, onDone)
	op.flow = flow
	flow.Userdata = op
	return op
}

// The op set is an insertion-ordered slice (with swap-remove) rather
// than a map: refresh processes dirty ops in registration order, and
// that order assigns event sequence numbers, which break ties between
// same-instant completions. Map iteration order would make those ties —
// and any rng draws their handlers perform — nondeterministic. Each op
// carries its own slice position so membership tests and removal need
// no hashing.

func (c *Cluster) addToOps(op *fluidOp) {
	op.pos = len(c.ops)
	c.ops = append(c.ops, op)
}

func (c *Cluster) removeFromOps(op *fluidOp) {
	i := op.pos
	if i < 0 {
		return
	}
	last := len(c.ops) - 1
	c.ops[i] = c.ops[last]
	c.ops[i].pos = i
	c.ops[last] = nil
	c.ops = c.ops[:last]
	op.pos = -1
	c.unbindOp(op)
}

// unbindOp detaches an op from its dirty source.
func (c *Cluster) unbindOp(op *fluidOp) {
	switch {
	case op.nodeID >= 0:
		list := c.nodeOps[op.nodeID]
		last := len(list) - 1
		list[op.nodeSlot] = list[last]
		list[op.nodeSlot].nodeSlot = op.nodeSlot
		list[last] = nil
		c.nodeOps[op.nodeID] = list[:last]
		op.nodeID = -1
		op.act = nil
	case op.flow != nil:
		op.flow.Userdata = nil
		op.flow = nil
	case op.loose:
		last := len(c.looseOps) - 1
		c.looseOps[op.looseSlot] = c.looseOps[last]
		c.looseOps[op.looseSlot].looseSlot = op.looseSlot
		c.looseOps[last] = nil
		c.looseOps = c.looseOps[:last]
		op.loose = false
	}
}

func (c *Cluster) hasOp(op *fluidOp) bool {
	return op.pos >= 0
}

// dropOp unregisters an op without completing it (task teardown) and
// recycles it. Safe to call on nil and already-retired ops. Callers
// must clear their own pointers to the op afterwards: once released it
// may be reincarnated as unrelated work.
func (c *Cluster) dropOp(op *fluidOp) {
	if op == nil {
		return
	}
	if !c.hasOp(op) {
		return
	}
	c.removeFromOps(op)
	c.clock.Cancel(op.event)
	op.event = 0
	c.releaseOp(op)
}

// topUpOp adds work to a live op (shuffle flows gain bytes when map
// outputs commit). Must be called inside Mutate. Progress so far is
// settled before the top-up so the new work extends from now.
func (c *Cluster) topUpOp(op *fluidOp, work float64) {
	if c.mutDepth == 0 {
		panic("mr: topUpOp outside Mutate")
	}
	if work < 0 {
		panic(fmt.Sprintf("mr: topUpOp %q with negative work %v", op.label, work))
	}
	if !c.hasOp(op) {
		panic(fmt.Sprintf("mr: topUpOp on retired op %q", op.label))
	}
	c.settleOp(op)
	op.total += work
	op.remaining += work
	c.markOpDirty(op) // completion moved out; reschedule at refresh
}

// settleOp integrates one op's progress up to now at its last computed
// rate. Idempotent within an instant.
func (c *Cluster) settleOp(op *fluidOp) {
	now := c.clock.Now()
	dt := now - op.lastSettle
	if dt > 0 && op.lastRate > 0 {
		op.remaining -= op.lastRate * dt
		if op.remaining < 0 {
			// A completion event at exactly this instant is still
			// queued; tolerate the epsilon and clamp.
			if op.remaining < -1e-6*math.Max(1, op.total) {
				panic(fmt.Sprintf("mr: op %q overshot by %v", op.label, -op.remaining))
			}
			op.remaining = 0
		}
	}
	op.lastSettle = now
}

// refreshDirty resolves fabric rates for perturbed components (which
// marks flow-bound ops whose rates changed), then settles and
// reschedules every dirty op. Ops that were not touched keep their
// completion events untouched — their scheduled times are still exact
// because their rates did not change.
func (c *Cluster) refreshDirty() {
	c.fabric.ResolveDirty()
	for _, op := range c.looseOps {
		c.markOpDirty(op)
	}
	if len(c.dirtyOps) == 0 {
		return
	}
	// Drop retired ops from the dirty list, then process in
	// registration order so event sequence numbers — the tie-break for
	// same-instant completions — are assigned deterministically.
	live := c.dirtyOps[:0]
	for _, op := range c.dirtyOps {
		op.dirty = false
		if c.hasOp(op) {
			live = append(live, op)
		}
	}
	slices.SortFunc(live, func(a, b *fluidOp) int { return a.pos - b.pos })
	now := c.clock.Now()
	for _, op := range live {
		c.settleOp(op)
		rate := op.currentRate()
		if math.IsNaN(rate) || rate < 0 {
			panic(fmt.Sprintf("mr: op %q has invalid rate %v", op.label, rate))
		}
		// Unchanged rate with a live event: the scheduled completion is
		// still exact, so skip the reschedule churn. This is the common
		// case for loose ops and node ops whose sibling count changed
		// without moving the share.
		if rate == op.lastRate && c.clock.EventLive(op.event) && op.remaining > opEpsilon {
			continue
		}
		op.lastRate = rate
		var at float64
		switch {
		case op.remaining <= opEpsilon:
			at = now
		case rate > 0:
			eta := op.remaining / rate
			if math.IsInf(eta, 1) {
				c.clock.Cancel(op.event)
				op.event = 0
				continue
			}
			at = now + eta
		default:
			// Stalled: no event until the rate moves again.
			c.clock.Cancel(op.event)
			op.event = 0
			continue
		}
		if c.clock.EventLive(op.event) {
			op.event = c.clock.Reschedule(op.event, at)
		} else {
			op.event = c.clock.Schedule(at, op.label, op.handler)
		}
	}
	c.dirtyOps = c.dirtyOps[:0]
}
