package mr

import (
	"testing"

	"smapreduce/internal/puma"
)

// BenchmarkClusterRun measures a full simulated job end to end: ~80
// map tasks on 4 workers, all runtime machinery engaged.
func BenchmarkClusterRun(b *testing.B) {
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 10 * 1024, Reduces: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := MustNewCluster(smallConfig())
		if _, err := c.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterEvents isolates the event-processing cost the
// incremental settle/refresh machinery optimises: a full terasort run
// divided by its event count, reported as ns/event. Most events touch
// one node's activities or one reducer's flows, so the dirty-op refresh
// should stay near O(touched ops) rather than O(all ops).
func BenchmarkClusterEvents(b *testing.B) {
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 10 * 1024, Reduces: 8}
	b.ReportAllocs()
	events := int64(0)
	for i := 0; i < b.N; i++ {
		c := MustNewCluster(smallConfig())
		if _, err := c.Run(spec); err != nil {
			b.Fatal(err)
		}
		events += int64(c.clock.Fired())
	}
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	}
}

// BenchmarkSnapshot measures the stats snapshot the slot manager takes
// every tick.
func BenchmarkSnapshot(b *testing.B) {
	c := MustNewCluster(smallConfig())
	// Populate some state by running a job first.
	if _, err := c.Run(JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 1024, Reduces: 4}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Snapshot()
	}
}
