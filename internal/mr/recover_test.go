package mr

import (
	"math"
	"reflect"
	"testing"

	"smapreduce/internal/puma"
)

func TestRecoverTrackerValidation(t *testing.T) {
	c := MustNewCluster(failureConfig())
	if err := c.RecoverTracker(-1); err == nil {
		t.Fatal("negative id accepted")
	}
	if err := c.RecoverTracker(99); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if err := c.RecoverTracker(3); err == nil {
		t.Fatal("recovering a live tracker accepted")
	}
	if err := c.FailTracker(3); err != nil {
		t.Fatal(err)
	}
	if err := c.RecoverTracker(3); err != nil {
		t.Fatal(err)
	}
	tt := c.Trackers()[3]
	if tt.Failed() || tt.HeartbeatLost() || tt.Blacklisted() || tt.OnProbation() {
		t.Fatal("rejoined tracker not schedulable")
	}
	cfg := c.Config()
	if tt.MapSlots() != cfg.MapSlots || tt.ReduceSlots() != cfg.ReduceSlots {
		t.Fatalf("rejoined targets %d/%d, want re-seeded %d/%d",
			tt.MapSlots(), tt.ReduceSlots(), cfg.MapSlots, cfg.ReduceSlots)
	}
	if err := c.RecoverTracker(3); err == nil {
		t.Fatal("double recovery accepted")
	}
}

// TestRecoverRejoinDifferential is the recovery-path pin: a tracker
// that crashes and rejoins before it ever holds committed output (the
// job is submitted after the rejoin) must leave no trace — milestones,
// final Stats and the event log (minus the two fault events) match the
// fault-free run at full float precision.
//
// The rejoin time is chosen congruent to the tracker's heartbeat
// stagger offset (tracker 5 of 8, period 1.0 → offset 0.625) so the
// restarted heartbeat chain lands on the fault-free grid.
func TestRecoverRejoinDifferential(t *testing.T) {
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 2048, Reduces: 8, SubmitAt: 10}

	clean := MustNewCluster(failureConfig())
	cleanLog := clean.EnableEventLog(0)
	cleanJobs, err := clean.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	c := MustNewCluster(failureConfig())
	log := c.EnableEventLog(0)
	c.ScheduleFailure(5, 2.0)
	c.ScheduleRecovery(5, 4.625)
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	cj, j := cleanJobs[0], jobs[0]
	if j.Submitted != cj.Submitted || j.Started != cj.Started ||
		j.BarrierAt != cj.BarrierAt || j.FinishedAt != cj.FinishedAt ||
		j.ShuffledMB != cj.ShuffledMB {
		t.Fatalf("milestones diverge:\nclean   %v %v %v %v %v\nrecover %v %v %v %v %v",
			cj.Submitted, cj.Started, cj.BarrierAt, cj.FinishedAt, cj.ShuffledMB,
			j.Submitted, j.Started, j.BarrierAt, j.FinishedAt, j.ShuffledMB)
	}
	if !reflect.DeepEqual(clean.Snapshot(), c.Snapshot()) {
		t.Fatalf("final Stats diverge:\nclean   %+v\nrecover %+v", clean.Snapshot(), c.Snapshot())
	}

	// Event-by-event equality once the crash/rejoin pair is filtered out.
	events := make([]Event, 0, len(log.Events()))
	for _, e := range log.Events() {
		if e.Kind == EvTrackerDown || e.Kind == EvTrackerRejoin {
			continue
		}
		events = append(events, e)
	}
	cleanEvents := cleanLog.Events()
	if len(events) != len(cleanEvents) {
		t.Fatalf("event counts differ: clean %d, recover %d (after filtering fault events)",
			len(cleanEvents), len(events))
	}
	for i := range events {
		if events[i] != cleanEvents[i] {
			t.Fatalf("event %d diverges:\nclean   %+v\nrecover %+v", i, cleanEvents[i], events[i])
		}
	}
}

// TestRecoverMidRunRejoinWorks pins the useful half of recovery: a
// tracker crashing mid-run and rejoining later finishes the job, ends
// schedulable, and picks up new work after the rejoin.
func TestRecoverMidRunRejoinWorks(t *testing.T) {
	// 8 GB keeps the map phase busy well past the rejoin at t=30, so
	// the returning tracker has pending work to pick up.
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 8192, Reduces: 8}
	c := MustNewCluster(failureConfig())
	log := c.EnableEventLog(0)
	c.ScheduleFailure(5, 10)
	c.ScheduleRecovery(5, 30)
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("job did not finish across crash and rejoin")
	}
	if jobs[0].MapsDone() != jobs[0].NumMaps() || jobs[0].ReducesDone() != jobs[0].NumReduces() {
		t.Fatal("completion counts wrong after rejoin")
	}
	tt := c.Trackers()[5]
	if tt.Failed() {
		t.Fatal("tracker still failed after rejoin")
	}
	launchedAfterRejoin := false
	for _, e := range log.Events() {
		if e.Kind == EvTaskStarted && e.Tracker == 5 && e.At >= 30 {
			launchedAfterRejoin = true
		}
		if e.Kind == EvTaskStarted && e.Tracker == 5 && e.At >= 10 && e.At < 30 {
			t.Fatalf("task launched on dead tracker: %+v", e)
		}
	}
	if !launchedAfterRejoin {
		t.Fatal("rejoined tracker never received work")
	}
}

// TestScheduleFailureTwiceLogsFaultError pins the fix for the
// schedule-time crash: a second failure of the same tracker arriving
// through the clock must surface as a fault-error event, not a panic
// inside the clock callback.
func TestScheduleFailureTwiceLogsFaultError(t *testing.T) {
	spec := JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 1024, Reduces: 4}
	c := MustNewCluster(failureConfig())
	log := c.EnableEventLog(0)
	c.ScheduleFailure(3, 2)
	c.ScheduleFailure(3, 4) // tracker already dead when this fires
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("job unfinished")
	}
	if n := len(log.Filter(EvTrackerDown)); n != 1 {
		t.Fatalf("%d tracker-down events, want 1", n)
	}
	errs := log.Filter(EvFaultError)
	if len(errs) != 1 {
		t.Fatalf("%d fault-error events, want 1: %+v", len(errs), errs)
	}
	if errs[0].Tracker != 3 || errs[0].At != 4 {
		t.Fatalf("fault error misattributed: %+v", errs[0])
	}
}

func TestHeartbeatLossValidation(t *testing.T) {
	c := MustNewCluster(failureConfig())
	if err := c.BeginHeartbeatLoss(-1, 5); err == nil {
		t.Fatal("bad id accepted")
	}
	if err := c.BeginHeartbeatLoss(2, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
	if err := c.BeginHeartbeatLoss(2, math.Inf(1)); err == nil {
		t.Fatal("infinite duration accepted")
	}
	if err := c.FailTracker(4); err != nil {
		t.Fatal(err)
	}
	if err := c.BeginHeartbeatLoss(4, 5); err == nil {
		t.Fatal("heartbeat loss on failed tracker accepted")
	}
	if err := c.BeginHeartbeatLoss(2, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.BeginHeartbeatLoss(2, 5); err == nil {
		t.Fatal("nested heartbeat loss accepted")
	}
}

// findEvent returns the first event of the kind for the tracker at or
// after from, or fails the test.
func findEvent(t *testing.T, events []Event, kind EventKind, tracker int, from float64) Event {
	t.Helper()
	for _, e := range events {
		if e.Kind == kind && e.Tracker == tracker && e.At >= from {
			return e
		}
	}
	t.Fatalf("no %s event for tracker %d at/after %v", kind, tracker, from)
	return Event{}
}

// TestHeartbeatLossLifecycle drives the full state machine twice on
// one tracker: loss → blacklist (after BlacklistTimeout) → restore →
// probation → cleared, with the probation backoff doubling on the
// second incident. Default config: BlacklistTimeout 3, ProbationPeriod 5.
func TestHeartbeatLossLifecycle(t *testing.T) {
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 2048, Reduces: 8}
	c := MustNewCluster(failureConfig())
	cfg := c.Config()
	log := c.EnableEventLog(0)
	c.ScheduleHeartbeatLoss(2, 5, 6)  // blacklists at 8, restores at 11, probation to 16
	c.ScheduleHeartbeatLoss(2, 20, 6) // second incident: probation doubles to 10s, 26..36
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("job unfinished under heartbeat loss")
	}
	events := log.Events()

	for incident, at := range map[int]float64{1: 5.0, 2: 20.0} {
		lost := findEvent(t, events, EvTrackerHBLost, 2, at)
		if lost.At != at {
			t.Fatalf("incident %d: hb-lost at %v, want %v", incident, lost.At, at)
		}
		black := findEvent(t, events, EvTrackerBlacklisted, 2, at)
		if black.At != at+cfg.BlacklistTimeout {
			t.Fatalf("incident %d: blacklisted at %v, want %v", incident, black.At, at+cfg.BlacklistTimeout)
		}
		restored := findEvent(t, events, EvTrackerHBRestored, 2, at)
		if restored.At != at+6 {
			t.Fatalf("incident %d: restored at %v, want %v", incident, restored.At, at+6)
		}
		probation := findEvent(t, events, EvTrackerProbation, 2, at)
		if probation.At != restored.At {
			t.Fatalf("incident %d: probation at %v, want %v", incident, probation.At, restored.At)
		}
		backoff := cfg.ProbationPeriod * math.Pow(2, float64(incident-1))
		cleared := findEvent(t, events, EvTrackerCleared, 2, at)
		if cleared.At != restored.At+backoff {
			t.Fatalf("incident %d: cleared at %v, want %v (backoff %v)",
				incident, cleared.At, restored.At+backoff, backoff)
		}
		// No new work lands on the tracker anywhere inside the incident.
		for _, e := range events {
			if e.Kind == EvTaskStarted && e.Tracker == 2 && e.At >= at && e.At < cleared.At {
				t.Fatalf("incident %d: task launched during unavailability window: %+v", incident, e)
			}
		}
	}

	tt := c.Trackers()[2]
	if tt.HeartbeatLost() || tt.Blacklisted() || tt.OnProbation() {
		t.Fatal("tracker not fully recovered at end of run")
	}
}

// TestHeartbeatLossBelowTimeoutNoBlacklist: a short blip never
// blacklists and carries no probation.
func TestHeartbeatLossBelowTimeoutNoBlacklist(t *testing.T) {
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 2048, Reduces: 8}
	c := MustNewCluster(failureConfig())
	log := c.EnableEventLog(0)
	c.ScheduleHeartbeatLoss(6, 5, 2) // 2s < BlacklistTimeout 3s
	if _, err := c.Run(spec); err != nil {
		t.Fatal(err)
	}
	if n := len(log.Filter(EvTrackerBlacklisted)); n != 0 {
		t.Fatalf("short blip blacklisted the tracker (%d events)", n)
	}
	if n := len(log.Filter(EvTrackerProbation)); n != 0 {
		t.Fatalf("short blip produced probation (%d events)", n)
	}
	if len(log.Filter(EvTrackerHBLost)) != 1 || len(log.Filter(EvTrackerHBRestored)) != 1 {
		t.Fatal("loss window events missing")
	}
}

// TestCrashDuringHeartbeatLoss: a crash inside the loss window
// supersedes the incident — the resume timer is cancelled by stop(),
// and the rejoin registers cleanly with no leftover loss state.
func TestCrashDuringHeartbeatLoss(t *testing.T) {
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 2048, Reduces: 8}
	c := MustNewCluster(failureConfig())
	log := c.EnableEventLog(0)
	c.ScheduleHeartbeatLoss(4, 5, 10)
	c.ScheduleFailure(4, 8)   // mid-window crash
	c.ScheduleRecovery(4, 20) // rejoin after the window would have closed
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("job unfinished")
	}
	if n := len(log.Filter(EvTrackerHBRestored)); n != 0 {
		t.Fatalf("superseded loss window still emitted hb-restored (%d)", n)
	}
	tt := c.Trackers()[4]
	if tt.Failed() || tt.HeartbeatLost() || tt.Blacklisted() || tt.OnProbation() {
		t.Fatal("rejoin left stale fault state")
	}
}

func TestScheduleDegradePanicsOnBadArgs(t *testing.T) {
	c := MustNewCluster(failureConfig())
	cases := []func(){
		func() { c.ScheduleNodeDegrade(99, 1, 1, 0.5, 0.5) },
		func() { c.ScheduleNodeDegrade(1, 1, 1, 0, 0.5) },
		func() { c.ScheduleNodeDegrade(1, 1, 1, 0.5, 1.5) },
		func() { c.ScheduleNodeDegrade(1, 1, 0, 0.5, 0.5) },
		func() { c.ScheduleLinkDegrade(99, 1, 1, 0.5, 0.5) },
		func() { c.ScheduleLinkDegrade(1, 1, 1, -0.1, 0.5) },
		func() { c.ScheduleLinkDegrade(1, 1, 1, 0.5, 1.1) },
		func() { c.ScheduleLinkDegrade(1, 1, 0, 0.5, 0.5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic on invalid degrade args", i)
				}
			}()
			fn()
		}()
	}
}

// TestNodeDegradeSlowsWork: halving a node's service rates mid-run
// makes the job finish later than the clean run, and the degradation
// window is visible in the event log.
func TestNodeDegradeSlowsWork(t *testing.T) {
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 2048, Reduces: 8}
	clean := MustNewCluster(failureConfig())
	base, err := clean.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	c := MustNewCluster(failureConfig())
	log := c.EnableEventLog(0)
	c.ScheduleNodeDegrade(3, 2, 20, 0.25, 0.25)
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("job unfinished under degradation")
	}
	if jobs[0].FinishedAt <= base[0].FinishedAt {
		t.Fatalf("degraded run (%v) not slower than clean (%v)", jobs[0].FinishedAt, base[0].FinishedAt)
	}
	deg := findEvent(t, log.Events(), EvNodeDegraded, 3, 0)
	res := findEvent(t, log.Events(), EvNodeRestored, 3, 0)
	if deg.At != 2 || res.At != 22 {
		t.Fatalf("degradation window [%v, %v], want [2, 22]", deg.At, res.At)
	}
}

// TestLinkSeverStallsAndRecovers: fully severing a node's links
// mid-shuffle stalls its flows at rate zero; after restore the job
// still completes with full counts.
func TestLinkSeverStallsAndRecovers(t *testing.T) {
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 2048, Reduces: 8}
	c := MustNewCluster(failureConfig())
	log := c.EnableEventLog(0)
	c.ScheduleLinkDegrade(2, 14, 8, 0, 0) // full partition across the barrier region
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("job unfinished after partition healed")
	}
	if jobs[0].MapsDone() != jobs[0].NumMaps() || jobs[0].ReducesDone() != jobs[0].NumReduces() {
		t.Fatal("completion counts wrong after partition")
	}
	if len(log.Filter(EvLinkDegraded)) != 1 || len(log.Filter(EvLinkRestored)) != 1 {
		t.Fatal("partition events missing")
	}
}
