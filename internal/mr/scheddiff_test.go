package mr

import (
	"reflect"
	"testing"

	"smapreduce/internal/puma"
)

// schedDiffWorkload mirrors poolDiffWorkload but flips the event
// scheduler backend instead of the object pools: the same seeded
// straggler/failure workload runs once on the timing wheel and once in
// heap-only mode.
func schedDiffWorkload(t *testing.T, heapSched bool) ([]*Job, Stats, []Event) {
	t.Helper()
	cfg := stragglerConfig(true)
	cfg.Seed = 7
	cfg.OutputReplication = 2
	cfg.HeapSched = heapSched
	c := MustNewCluster(cfg)
	log := c.EnableEventLog(0)
	c.ScheduleFailure(5, 6.0)
	specs := []JobSpec{
		{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 2048, Reduces: 6},
		{Name: "grep", Profile: puma.MustGet("grep"), InputMB: 1024, Reduces: 4, SubmitAt: 3},
	}
	jobs, err := c.Run(specs...)
	if err != nil {
		t.Fatalf("Run (heapSched=%v): %v", heapSched, err)
	}
	return jobs, c.Snapshot(), log.Events()
}

// TestWheelVsHeapSchedDifferential is the scheduler correctness pin:
// the timing wheel stages events but the heap still arbitrates exact
// (at, seq) order, so wheel and heap-only runs of the same seeded
// workload must produce bit-identical milestones, stats and event
// logs. Any wheel placement, cascade, or periodic re-arm bug that
// perturbs firing order shows up as a divergence here.
func TestWheelVsHeapSchedDifferential(t *testing.T) {
	wJobs, wStats, wEvents := schedDiffWorkload(t, false)
	hJobs, hStats, hEvents := schedDiffWorkload(t, true)

	if len(wJobs) != len(hJobs) {
		t.Fatalf("job counts differ: wheel %d, heap %d", len(wJobs), len(hJobs))
	}
	for i := range wJobs {
		w, h := wJobs[i], hJobs[i]
		if w.Submitted != h.Submitted || w.Started != h.Started ||
			w.BarrierAt != h.BarrierAt || w.FinishedAt != h.FinishedAt ||
			w.ShuffledMB != h.ShuffledMB ||
			w.SpeculativeLaunched != h.SpeculativeLaunched ||
			w.SpeculativeWins != h.SpeculativeWins {
			t.Fatalf("job %s milestones diverge:\nwheel %+v %+v %+v %+v %v spec %d/%d\nheap  %+v %+v %+v %+v %v spec %d/%d",
				w.Spec.Name,
				w.Submitted, w.Started, w.BarrierAt, w.FinishedAt, w.ShuffledMB, w.SpeculativeLaunched, w.SpeculativeWins,
				h.Submitted, h.Started, h.BarrierAt, h.FinishedAt, h.ShuffledMB, h.SpeculativeLaunched, h.SpeculativeWins)
		}
	}
	if !reflect.DeepEqual(wStats, hStats) {
		t.Fatalf("final Stats diverge:\nwheel %+v\nheap  %+v", wStats, hStats)
	}
	if len(wEvents) != len(hEvents) {
		t.Fatalf("event counts differ: wheel %d, heap %d", len(wEvents), len(hEvents))
	}
	for i := range wEvents {
		if wEvents[i] != hEvents[i] {
			t.Fatalf("event %d diverges:\nwheel %+v\nheap  %+v", i, wEvents[i], hEvents[i])
		}
	}
}
