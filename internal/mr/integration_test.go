package mr

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"smapreduce/internal/puma"
	"smapreduce/internal/resource"
)

// TestQuickRandomWorkloadsComplete drives the whole runtime with
// randomised cluster shapes, policies and job mixes, asserting the
// invariants that must hold for every run:
//
//   - every job finishes with all tasks done;
//   - milestones are ordered (submit ≤ start < barrier ≤ finish);
//   - the shuffled volume matches the profile's expectation;
//   - no tracker is left holding tasks.
func TestQuickRandomWorkloadsComplete(t *testing.T) {
	benchNames := puma.Names()
	f := func(seed uint64, workersRaw, policyRaw, jobsRaw uint8, benchPick []uint8) bool {
		cfg := DefaultConfig()
		cfg.Workers = int(workersRaw%6) + 3 // 3..8
		cfg.Net.Nodes = cfg.Workers
		cfg.Seed = seed + 1
		switch policyRaw % 3 {
		case 0:
			cfg.Policy = HadoopV1
		case 1:
			cfg.Policy = YARN
		case 2:
			cfg.Policy = HadoopV1
			cfg.Scheduler = Fair
		}
		nJobs := int(jobsRaw%3) + 1
		specs := make([]JobSpec, 0, nJobs)
		for i := 0; i < nJobs; i++ {
			bench := benchNames[0]
			if len(benchPick) > 0 {
				bench = benchNames[int(benchPick[i%len(benchPick)])%len(benchNames)]
			}
			specs = append(specs, JobSpec{
				Name:     fmt.Sprintf("%s-%d", bench, i),
				Profile:  puma.MustGet(bench),
				InputMB:  float64(256 + 128*i),
				Reduces:  int(jobsRaw%5) + 2,
				SubmitAt: float64(i) * 2,
			})
		}
		c := MustNewCluster(cfg)
		jobs, err := c.Run(specs...)
		if err != nil {
			t.Logf("run failed: %v", err)
			return false
		}
		for _, j := range jobs {
			if !j.Finished() || j.MapsDone() != j.NumMaps() || j.ReducesDone() != j.NumReduces() {
				t.Logf("job %s incomplete", j.Spec.Name)
				return false
			}
			if !(j.Submitted <= j.Started && j.Started < j.BarrierAt && j.BarrierAt <= j.FinishedAt) {
				t.Logf("job %s milestones disordered: %v %v %v %v",
					j.Spec.Name, j.Submitted, j.Started, j.BarrierAt, j.FinishedAt)
				return false
			}
			want := j.Spec.InputMB * j.Spec.Profile.ShuffleRatio()
			if want > 1 && (j.ShuffledMB < want*0.8 || j.ShuffledMB > want*1.2) {
				t.Logf("job %s shuffled %v, want ≈%v", j.Spec.Name, j.ShuffledMB, want)
				return false
			}
		}
		for _, tt := range c.Trackers() {
			if tt.RunningMaps() != 0 || tt.RunningReduces() != 0 {
				t.Logf("tracker %d still busy", tt.ID())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDynamicPolicyCompletes stresses the Dynamic policy with a
// slot controller under random seeds.
func TestQuickDynamicPolicyCompletes(t *testing.T) {
	f := func(seed uint64, benchRaw uint8) bool {
		names := puma.Names()
		bench := names[int(benchRaw)%len(names)]
		cfg := DefaultConfig()
		cfg.Workers = 4
		cfg.Net.Nodes = 4
		cfg.Policy = Dynamic
		cfg.Seed = seed + 1
		c := MustNewCluster(cfg)
		if err := c.SetController(&jitterController{}); err != nil {
			return false
		}
		jobs, err := c.Run(JobSpec{
			Name: bench, Profile: puma.MustGet(bench), InputMB: 1024, Reduces: 4,
		})
		if err != nil {
			t.Logf("dynamic run failed: %v", err)
			return false
		}
		return jobs[0].Finished()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// jitterController wiggles slot targets adversarially every tick.
type jitterController struct{ n int }

func (j *jitterController) Interval() float64 { return 3 }
func (j *jitterController) Tick(c *Cluster) {
	j.n++
	maps := 1 + (j.n*3)%6
	reduces := 1 + j.n%3
	for _, tt := range c.Trackers() {
		c.JobTracker().SetDesiredSlots(tt.ID(), maps, reduces)
	}
}

// TestQuickFailureRecoveryInvariant injects a failure at a random time
// on a random tracker and asserts completion and conservation.
func TestQuickFailureRecoveryInvariant(t *testing.T) {
	f := func(seed uint64, whenRaw uint16, whoRaw uint8) bool {
		cfg := DefaultConfig()
		cfg.Workers = 6
		cfg.Net.Nodes = 6
		cfg.Seed = seed + 1
		c := MustNewCluster(cfg)
		c.ScheduleFailure(int(whoRaw)%6, float64(whenRaw%120)+1)
		jobs, err := c.Run(JobSpec{
			Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 1536, Reduces: 6,
		})
		if err != nil {
			t.Logf("failure run: %v", err)
			return false
		}
		j := jobs[0]
		if !j.Finished() || j.MapsDone() != j.NumMaps() {
			return false
		}
		want := j.Spec.InputMB * j.Spec.Profile.ShuffleRatio()
		return math.Abs(j.ShuffledMB-want) < want*0.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSpeculationInvariant runs speculative execution under random
// straggler placements and asserts logical-task conservation.
func TestQuickSpeculationInvariant(t *testing.T) {
	f := func(seed uint64, slowMask uint8) bool {
		cfg := DefaultConfig()
		cfg.Workers = 6
		cfg.Net.Nodes = 6
		cfg.Seed = seed + 1
		cfg.Speculation = true
		cfg.SpeculationMinRuntime = 2
		list := make([]resource.Spec, cfg.Workers)
		for i := range list {
			list[i] = resource.DefaultSpec()
			if slowMask&(1<<uint(i%8)) != 0 && i > 0 {
				list[i].CoreSpeed = 0.5
			}
		}
		cfg.NodeSpecs = list
		c := MustNewCluster(cfg)
		jobs, err := c.Run(JobSpec{
			Name: "g", Profile: puma.MustGet("grep"), InputMB: 2048, Reduces: 4,
		})
		if err != nil {
			t.Logf("speculative run: %v", err)
			return false
		}
		j := jobs[0]
		if !j.Finished() || j.MapsDone() != j.NumMaps() {
			return false
		}
		return j.SpeculativeWins <= j.SpeculativeLaunched
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickKitchenSink turns every runtime feature on at once —
// compression, 3x output replication, speculation, partition skew,
// fair scheduling, a heterogeneous cluster, a mid-run failure and a
// transient slowdown — and asserts the invariants still hold.
func TestQuickKitchenSink(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := DefaultConfig()
		cfg.Workers = 6
		cfg.Net.Nodes = 6
		cfg.Seed = seed + 1
		cfg.Scheduler = Fair
		cfg.Speculation = true
		cfg.SpeculationMinRuntime = 3
		cfg.CompressShuffle = true
		cfg.OutputReplication = 3
		specs := make([]resource.Spec, cfg.Workers)
		for i := range specs {
			specs[i] = resource.DefaultSpec()
			if i == 5 {
				specs[i].CoreSpeed = 0.6
				specs[i].ContentionScale = 1.5
			}
		}
		cfg.NodeSpecs = specs

		c := MustNewCluster(cfg)
		c.ScheduleFailure(1, 25)
		c.ScheduleSlowdown(2, 2.0, 10, 30)
		log := c.EnableEventLog(0)
		jobs, err := c.Run(
			JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 1536, Reduces: 6, PartitionSkew: 0.5},
			JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 1024, Reduces: 4, SubmitAt: 5},
		)
		if err != nil {
			t.Logf("kitchen sink run: %v", err)
			return false
		}
		for _, j := range jobs {
			if !j.Finished() || j.MapsDone() != j.NumMaps() || j.ReducesDone() != j.NumReduces() {
				t.Logf("job %s incomplete", j.Spec.Name)
				return false
			}
		}
		if len(log.Filter(EvTrackerDown)) != 1 {
			return false
		}
		for _, tt := range c.Trackers() {
			if tt.RunningMaps() != 0 || tt.RunningReduces() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
