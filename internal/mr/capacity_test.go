package mr

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"smapreduce/internal/puma"
)

// stubPolicy is a test capacity policy driven by a closure.
type stubPolicy struct {
	interval float64
	alloc    func(now float64, total int, tenants []TenantSnapshot) []TenantAllocation
}

func (p *stubPolicy) Name() string      { return "stub" }
func (p *stubPolicy) Interval() float64 { return p.interval }
func (p *stubPolicy) Allocate(now float64, total int, tenants []TenantSnapshot) []TenantAllocation {
	return p.alloc(now, total, tenants)
}

// specList replays a fixed spec list as an ArrivalSource.
type specList struct {
	specs []JobSpec
	pos   int
}

func (s *specList) Next() (JobSpec, float64, bool) {
	if s.pos >= len(s.specs) {
		return JobSpec{}, 0, false
	}
	spec := s.specs[s.pos]
	s.pos++
	return spec, spec.SubmitAt, true
}

func tenantJob(name, tenant string, inputMB float64) JobSpec {
	return JobSpec{Name: name, Profile: puma.MustGet("grep"), InputMB: inputMB, Reduces: 4, Tenant: tenant}
}

func TestTenantDefaultNormalization(t *testing.T) {
	c := MustNewCluster(smallConfig())
	log := c.EnableEventLog(0)
	jobs, err := c.Run(grepJob(512))
	if err != nil {
		t.Fatal(err)
	}
	if got := jobs[0].Tenant(); got != "default" {
		t.Errorf("empty tenant normalized to %q, want default", got)
	}
	if names := c.TenantNames(); len(names) != 1 || names[0] != "default" {
		t.Errorf("TenantNames = %v, want [default]", names)
	}
	// Backward compatibility: a tenant-less submission keeps the legacy
	// event detail, with no tenant mention.
	subs := log.Filter(EvJobSubmitted)
	if len(subs) != 1 || strings.Contains(subs[0].Detail, "tenant") {
		t.Errorf("legacy submit detail changed: %+v", subs)
	}
}

func TestSetCapacityPolicyValidation(t *testing.T) {
	c := MustNewCluster(smallConfig())
	bad := &stubPolicy{interval: 0}
	if err := c.SetCapacityPolicy(bad); err == nil {
		t.Fatal("zero-interval policy accepted")
	}
}

func TestCapacityCapsEnforced(t *testing.T) {
	// Cap tenant "a" at 2 concurrent attempts, leave "b" uncapped, and
	// replay the event log checking that no task for "a" ever starts
	// while 2 attempts are already running after the cap lands.
	c := MustNewCluster(smallConfig())
	log := c.EnableEventLog(0)
	err := c.SetCapacityPolicy(&stubPolicy{
		interval: 1,
		alloc: func(now float64, total int, tenants []TenantSnapshot) []TenantAllocation {
			out := make([]TenantAllocation, len(tenants))
			for i, ts := range tenants {
				cap := -1
				if ts.Tenant == "a" {
					cap = 2
				}
				out[i] = TenantAllocation{Tenant: ts.Tenant, TaskCap: cap, Reason: "stub"}
			}
			return out
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := c.Run(
		tenantJob("a1", "a", 2048),
		tenantJob("b1", "b", 2048),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !j.Finished() {
			t.Fatalf("job %s unfinished under caps", j.Spec.Name)
		}
	}

	tenantOf := map[string]string{"a1": "a", "b1": "b"}
	running := map[string]int{}
	runningMaps := map[string]int{}
	caps := map[string]int{}
	capViolations, launchesWhileCapped := 0, 0
	for _, e := range log.Events() {
		isMap := strings.HasPrefix(e.Task, "map/")
		switch e.Kind {
		case EvTenantCap:
			var name string
			var cap int
			if strings.HasSuffix(e.Detail, "=uncapped") {
				name = strings.TrimSuffix(e.Detail, "=uncapped")
				delete(caps, name)
				continue
			}
			val := ""
			name, val, _ = strings.Cut(e.Detail, "=")
			var err error
			if cap, err = strconv.Atoi(val); err != nil {
				t.Fatalf("unparseable tenant-cap detail %q", e.Detail)
			}
			caps[name] = cap
		case EvTaskStarted:
			tn := tenantOf[e.Job]
			if cap, ok := caps[tn]; ok {
				launchesWhileCapped++
				// The only sanctioned launch at or above the cap is the
				// deadlock-breaking map overshoot: one map while the
				// tenant runs no other map attempt.
				overshoot := isMap && running[tn] == cap && runningMaps[tn] == 0
				if running[tn] >= cap && !overshoot {
					capViolations++
				}
			}
			running[tn]++
			if isMap {
				runningMaps[tn]++
			}
		case EvTaskDone:
			running[tenantOf[e.Job]]--
			if isMap {
				runningMaps[tenantOf[e.Job]]--
			}
		}
	}
	if capViolations > 0 {
		t.Errorf("%d launches exceeded the tenant cap", capViolations)
	}
	if launchesWhileCapped == 0 {
		t.Error("cap never observed during a launch — test scenario too weak")
	}
	// All attempt counters must return to zero.
	for _, name := range c.TenantNames() {
		if n := c.TenantRunning(name); n != 0 {
			t.Errorf("tenant %s ends with %d running attempts", name, n)
		}
	}
	// The decision log records every tick with snapshots in name order.
	decs := c.CapacityDecisions()
	if len(decs) == 0 {
		t.Fatal("no capacity decisions logged")
	}
	for _, d := range decs {
		for i := 1; i < len(d.Tenants); i++ {
			if d.Tenants[i-1].Tenant >= d.Tenants[i].Tenant {
				t.Fatalf("decision snapshots out of order: %+v", d.Tenants)
			}
		}
		if d.Total <= 0 {
			t.Fatalf("decision with non-positive total: %+v", d)
		}
	}
}

func TestCapacityCapDeadlockBroken(t *testing.T) {
	// Regression: a cap smaller than a job's reduce count used to
	// deadlock the tenant against its own cap — reduces launched at the
	// slow-start threshold filled every cap unit, then sat at the
	// shuffle barrier waiting for maps the full cap refused to launch,
	// and the capacity tick kept the clock alive forever. The reserve
	// rule (reduces may not take the last unit while maps are pending)
	// plus the single-map overshoot must let this run terminate.
	cfg := smallConfig()
	cfg.ReduceSlowstart = 0.05
	c := MustNewCluster(cfg)
	err := c.SetCapacityPolicy(&stubPolicy{
		interval: 1,
		alloc: func(now float64, total int, tenants []TenantSnapshot) []TenantAllocation {
			out := make([]TenantAllocation, len(tenants))
			for i, ts := range tenants {
				out[i] = TenantAllocation{Tenant: ts.Tenant, TaskCap: 3, Reason: "stub"}
			}
			return out
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := tenantJob("a1", "a", 2048)
	spec.Reduces = 8 // more reduces than the cap of 3
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("job deadlocked under a cap smaller than its reduce count")
	}
	if n := c.TenantRunning("a"); n != 0 {
		t.Fatalf("tenant ends with %d running attempts", n)
	}
}

func TestCapacityEventsOnlyOnChange(t *testing.T) {
	// A constant allocation must emit exactly one cap event per capped
	// tenant, then one uncap event when the policy lifts it.
	c := MustNewCluster(smallConfig())
	log := c.EnableEventLog(0)
	calls := 0
	err := c.SetCapacityPolicy(&stubPolicy{
		interval: 2,
		alloc: func(now float64, total int, tenants []TenantSnapshot) []TenantAllocation {
			calls++
			cap := 3
			if calls > 3 {
				cap = -1 // lift after the third tick
			}
			out := make([]TenantAllocation, len(tenants))
			for i, ts := range tenants {
				out[i] = TenantAllocation{Tenant: ts.Tenant, TaskCap: cap, Reason: "stub"}
			}
			return out
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(tenantJob("a1", "a", 2048)); err != nil {
		t.Fatal(err)
	}
	if calls < 4 {
		t.Fatalf("only %d capacity ticks fired", calls)
	}
	evs := log.Filter(EvTenantCap)
	if len(evs) != 2 {
		t.Fatalf("EvTenantCap events = %+v, want exactly cap+uncap", evs)
	}
	if evs[0].Detail != "a=3" || evs[1].Detail != "a=uncapped" {
		t.Fatalf("cap event details = %q, %q", evs[0].Detail, evs[1].Detail)
	}
}

func TestRunArrivalsOpenStream(t *testing.T) {
	// Jobs arriving mid-run — including one arriving after earlier jobs
	// may already have finished — must all be admitted and finish.
	c := MustNewCluster(smallConfig())
	src := &specList{specs: []JobSpec{
		tenantJob("a1", "a", 512),
		withSubmitAt(tenantJob("b1", "b", 512), 40),
		withSubmitAt(tenantJob("a2", "a", 256), 400),
	}}
	jobs, err := c.RunArrivals(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("admitted %d jobs, want 3", len(jobs))
	}
	for _, j := range jobs {
		if !j.Finished() {
			t.Fatalf("job %s unfinished", j.Spec.Name)
		}
	}
	if jobs[2].Submitted < 400 {
		t.Errorf("late arrival submitted at %v, want >= 400", jobs[2].Submitted)
	}
	if names := c.TenantNames(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("TenantNames = %v", names)
	}
	// The cluster is single-shot.
	if _, err := c.RunArrivals(&specList{specs: []JobSpec{grepJob(64)}}); err == nil {
		t.Error("second RunArrivals accepted")
	}
	if _, err := c.Run(grepJob(64)); err == nil {
		t.Error("Run after RunArrivals accepted")
	}
	if _, err := c.Submit(grepJob(64)); err == nil {
		t.Error("Submit after shutdown accepted")
	}
}

func withSubmitAt(s JobSpec, at float64) JobSpec {
	s.SubmitAt = at
	return s
}

func TestRunArrivalsEmptySource(t *testing.T) {
	c := MustNewCluster(smallConfig())
	if _, err := c.RunArrivals(&specList{}); err == nil {
		t.Fatal("empty arrival source accepted")
	}
}

func TestRunArrivalsInvalidSpecPoisonsRun(t *testing.T) {
	// A malformed arrival reports an error but first drains the jobs
	// already admitted.
	c := MustNewCluster(smallConfig())
	src := &specList{specs: []JobSpec{
		tenantJob("ok", "a", 512),
		withSubmitAt(JobSpec{Name: "bad", Profile: puma.MustGet("grep"), InputMB: -1, Reduces: 1}, 10),
	}}
	jobs, err := c.RunArrivals(src)
	if err == nil {
		t.Fatal("invalid arrival did not error")
	}
	if len(jobs) != 1 || !jobs[0].Finished() {
		t.Fatalf("admitted jobs did not drain: %v", jobs)
	}
}

func TestRunArrivalsDeterministicEventLog(t *testing.T) {
	// Same cluster seed, same arrival list: the event logs must be
	// byte-identical, with a capacity policy in the loop.
	run := func() []byte {
		c := MustNewCluster(smallConfig())
		log := c.EnableEventLog(0)
		err := c.SetCapacityPolicy(&stubPolicy{
			interval: 3,
			alloc: func(now float64, total int, tenants []TenantSnapshot) []TenantAllocation {
				out := make([]TenantAllocation, len(tenants))
				for i, ts := range tenants {
					out[i] = TenantAllocation{Tenant: ts.Tenant, TaskCap: total / (len(tenants) + 1), Reason: "stub"}
				}
				return out
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		src := &specList{specs: []JobSpec{
			tenantJob("a1", "a", 1024),
			withSubmitAt(tenantJob("b1", "b", 1024), 5),
			withSubmitAt(tenantJob("a2", "a", 512), 30),
		}}
		if _, err := c.RunArrivals(src); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := log.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := run()
	for i := 0; i < 3; i++ {
		if got := run(); !bytes.Equal(got, ref) {
			t.Fatalf("run %d diverged from reference log", i)
		}
	}
}

func TestSLOMissed(t *testing.T) {
	spec := grepJob(512)
	spec.SLOSeconds = 0.001 // impossible
	j := runOne(t, smallConfig(), spec)
	if !j.SLOMissed() {
		t.Error("impossible SLO not missed")
	}
	spec.SLOSeconds = 1e9
	j = runOne(t, smallConfig(), spec)
	if j.SLOMissed() {
		t.Error("unbounded SLO reported missed")
	}
	spec.SLOSeconds = 0
	j = runOne(t, smallConfig(), spec)
	if j.SLOMissed() {
		t.Error("job without SLO reported missed")
	}
}
