package mr

import (
	"fmt"
	"sort"

	"smapreduce/internal/trace"
)

// Multi-tenant capacity management. A CapacityPolicy divides the
// cluster's task capacity among tenants each control period: the job
// tracker then refuses to launch tasks for a tenant whose running count
// has reached its cap. This is orthogonal to the slot Policy — caps
// compose with static slots, YARN containers and the dynamic slot
// manager alike (the policy decides how many tasks a tenant may run,
// the slot machinery decides where they run).

// TenantSnapshot is one tenant's state as presented to a capacity
// policy: identity, queue pressure and the currently applied cap.
type TenantSnapshot struct {
	Tenant string
	// ActiveJobs counts the tenant's unfinished admitted jobs.
	ActiveJobs int
	// RunningTasks counts the tenant's task attempts occupying slots.
	RunningTasks int
	// PendingTasks counts the tenant's launchable-but-unlaunched tasks
	// (pending maps plus pending reduces of admitted jobs).
	PendingTasks int
	// Demand = RunningTasks + PendingTasks: the most the tenant could
	// use right now.
	Demand int
	// Cap is the currently applied task cap, or -1 when uncapped.
	Cap int
}

// TenantAllocation is one tenant's share of a capacity decision.
type TenantAllocation struct {
	Tenant string
	// TaskCap is the maximum number of concurrently running task
	// attempts the tenant may hold cluster-wide. Negative lifts the cap.
	// Enforcement reserves the last unit for maps while maps are pending
	// and lets a single map overshoot a reduce-saturated cap, so a
	// tenant can never deadlock against its own cap (reduces waiting at
	// the shuffle barrier for maps the cap would refuse to launch).
	TaskCap int
	// Share is the fraction of total capacity the policy granted, for
	// explainability (what the integer cap was rounded from).
	Share float64
	// Reason explains the grant ("guaranteed", "water-fill", ...).
	Reason string
}

// CapacityDecision is one applied capacity tick, kept on the cluster's
// decision log so every rebalance stays explainable.
type CapacityDecision struct {
	At      float64
	Total   int // task capacity divided at this tick
	Tenants []TenantSnapshot
	Allocs  []TenantAllocation
}

// String renders the decision as one line per tenant.
func (d CapacityDecision) String() string {
	s := fmt.Sprintf("t=%.1f total=%d", d.At, d.Total)
	for _, a := range d.Allocs {
		s += fmt.Sprintf(" %s=%d(%.2f,%s)", a.Tenant, a.TaskCap, a.Share, a.Reason)
	}
	return s
}

// CapacityPolicy decides per-tenant task caps each control period.
// Implementations must be pure functions of their inputs and their own
// immutable configuration: Allocate may run concurrently for different
// clusters (the fleet runner shares one policy instance across
// workers), so it must not retain or mutate state between calls, and
// its output order must be deterministic for identical inputs.
type CapacityPolicy interface {
	// Name identifies the policy in logs and experiment tables.
	Name() string
	// Interval is the rebalance period in virtual seconds.
	Interval() float64
	// Allocate divides total task capacity among the given tenants
	// (sorted by name) and returns one allocation per tenant.
	Allocate(now float64, total int, tenants []TenantSnapshot) []TenantAllocation
}

// SetCapacityPolicy attaches a capacity policy to the cluster. Unlike
// SetController it composes with every slot Policy. Call before Run.
func (c *Cluster) SetCapacityPolicy(p CapacityPolicy) error {
	if p.Interval() <= 0 {
		return fmt.Errorf("mr: capacity policy %s interval %v must be positive", p.Name(), p.Interval())
	}
	c.capacity = p
	return nil
}

// CapacityDecisions returns a copy of the applied capacity decisions in
// tick order.
func (c *Cluster) CapacityDecisions() []CapacityDecision {
	out := make([]CapacityDecision, len(c.capLog))
	copy(out, c.capLog)
	return out
}

// TenantNames returns the tenants seen so far, sorted by name.
func (c *Cluster) TenantNames() []string {
	out := make([]string, len(c.tenantNames))
	copy(out, c.tenantNames)
	return out
}

// TenantRunning reports a tenant's currently running task attempts.
func (c *Cluster) TenantRunning(tenant string) int { return c.tenantRunning[tenant] }

// registerTenant records a job's tenant on first sight, keeping the
// name list sorted so snapshots and telemetry registration order never
// depend on submission interleaving across tenants.
func (c *Cluster) registerTenant(j *Job) {
	name := j.Tenant()
	if c.tenantRunning == nil {
		c.tenantRunning = make(map[string]int)
		c.tenantRunningMaps = make(map[string]int)
		c.tenantCaps = make(map[string]int)
	}
	if _, ok := c.tenantRunning[name]; ok {
		return
	}
	c.tenantRunning[name] = 0
	c.tenantRunningMaps[name] = 0
	i := sort.SearchStrings(c.tenantNames, name)
	c.tenantNames = append(c.tenantNames, "")
	copy(c.tenantNames[i+1:], c.tenantNames[i:])
	c.tenantNames[i] = name
	if c.telem != nil {
		// Register-after-Tick backfills earlier samples with NaN, so
		// tenants appearing mid-run slot into the existing table.
		tenant := name
		c.telem.Register("tenant/"+tenant+"/running-tasks", func() float64 {
			return float64(c.tenantRunning[tenant])
		})
		c.telem.Register("tenant/"+tenant+"/task-cap", func() float64 {
			cap, ok := c.tenantCaps[tenant]
			if !ok {
				return -1
			}
			return float64(cap)
		})
	}
}

// tenantAtCap reports whether launching one more task for j's tenant
// would exceed its cap. Uncapped tenants always schedule. This is the
// strict check used for optional work (speculative attempts); required
// map and reduce launches go through tenantMapBlocked and
// tenantReduceBlocked, which carve out the liveness exceptions below.
func (c *Cluster) tenantAtCap(j *Job) bool {
	if c.capacity == nil {
		return false
	}
	cap, ok := c.tenantCaps[j.Tenant()]
	if !ok {
		return false
	}
	return c.tenantRunning[j.Tenant()] >= cap
}

// tenantMapBlocked gates map launches. A cap saturated entirely by
// reduce attempts would deadlock the tenant against itself: the
// reduces sit at the shuffle barrier waiting for maps the cap refuses
// to launch (reachable even with the reduce-side reserve, e.g. when a
// tracker failure re-queues a completed map after the reduces have
// filled the cap). The carve-out lets one map overshoot the cap while
// the tenant has no running maps, which bounds the overshoot at one
// attempt and guarantees map progress.
func (c *Cluster) tenantMapBlocked(j *Job) bool {
	if !c.tenantAtCap(j) {
		return false
	}
	return c.tenantRunningMaps[j.Tenant()] > 0
}

// tenantReduceBlocked gates reduce launches: strict at the cap, and one
// unit short of it while the tenant still has pending maps — a reduce
// taking the last unit would wait at the shuffle barrier for maps that
// the full cap could then never launch.
func (c *Cluster) tenantReduceBlocked(j *Job) bool {
	if c.capacity == nil {
		return false
	}
	cap, ok := c.tenantCaps[j.Tenant()]
	if !ok {
		return false
	}
	running := c.tenantRunning[j.Tenant()]
	if running >= cap {
		return true
	}
	return running == cap-1 && c.tenantHasPendingMaps(j.Tenant())
}

// tenantHasPendingMaps reports whether any admitted job of the tenant
// still has unlaunched map tasks.
func (c *Cluster) tenantHasPendingMaps(tenant string) bool {
	for _, j := range c.jt.queue {
		if j.Tenant() == tenant && len(c.jt.pendingMaps[j]) > 0 {
			return true
		}
	}
	return false
}

// tenantTaskStarted / tenantTaskStopped maintain the per-tenant running
// counters at the same choke points that maintain the trackers' running
// sets, so the two views can never drift. isMap also maintains the
// map-attempt counter the deadlock carve-out in tenantMapBlocked reads.
func (c *Cluster) tenantTaskStarted(j *Job, isMap bool) {
	if c.tenantRunning != nil {
		c.tenantRunning[j.Tenant()]++
		if isMap {
			c.tenantRunningMaps[j.Tenant()]++
		}
	}
}

func (c *Cluster) tenantTaskStopped(j *Job, isMap bool) {
	if c.tenantRunning != nil {
		c.tenantRunning[j.Tenant()]--
		if isMap {
			c.tenantRunningMaps[j.Tenant()]--
		}
	}
}

// totalTaskCapacity is the task-slot capacity a capacity policy divides:
// the configured map+reduce slots of every schedulable tracker. The
// equivalent-slot view is used for YARN too, matching how the paper
// configures container memory ("equivalently able to run 3 map and
// 2 reduce containers").
func (c *Cluster) totalTaskCapacity() int {
	total := 0
	for _, tt := range c.trackers {
		if !tt.schedulable() {
			continue
		}
		if c.cfg.Policy == YARN {
			total += c.cfg.MapSlots + c.cfg.ReduceSlots
		} else {
			total += tt.mapTarget + tt.reduceTarget
		}
	}
	return total
}

// tenantSnapshots builds the policy input, one snapshot per known
// tenant in name order.
func (c *Cluster) tenantSnapshots() []TenantSnapshot {
	if len(c.tenantNames) == 0 {
		return nil
	}
	byTenant := make(map[string]*TenantSnapshot, len(c.tenantNames))
	snaps := make([]TenantSnapshot, len(c.tenantNames))
	for i, name := range c.tenantNames {
		cap, ok := c.tenantCaps[name]
		if !ok {
			cap = -1
		}
		snaps[i] = TenantSnapshot{Tenant: name, RunningTasks: c.tenantRunning[name], Cap: cap}
		byTenant[name] = &snaps[i]
	}
	for _, j := range c.jt.queue {
		s := byTenant[j.Tenant()]
		s.ActiveJobs++
		s.PendingTasks += len(c.jt.pendingMaps[j])
		for _, r := range j.reduces {
			if r.state == TaskPending {
				s.PendingTasks++
			}
		}
	}
	for i := range snaps {
		snaps[i].Demand = snaps[i].RunningTasks + snaps[i].PendingTasks
	}
	return snaps
}

// scheduleCapacity arms the periodic capacity tick; like the sampler
// and controller it is one self-re-arming periodic event (the policy
// interval is read once here), so steady-state rebalancing allocates
// nothing and shutdown's Cancel stops the chain.
func (c *Cluster) scheduleCapacity() {
	if c.capFn == nil {
		c.capFn = c.capTick
	}
	iv := c.capacity.Interval()
	c.capEvent = c.clock.SchedulePeriodic(c.clock.Now()+iv, iv, "capacity", c.capFn)
}

func (c *Cluster) capTick() {
	c.Mutate(func() { c.applyCapacity() })
	// The periodic event re-arms itself unless shutdown cancelled it.
}

// applyCapacity runs one rebalance: snapshot tenants, ask the policy,
// apply and log the caps, then kick assignment so raised caps take
// effect immediately rather than on the next heartbeat.
func (c *Cluster) applyCapacity() {
	tenants := c.tenantSnapshots()
	if len(tenants) == 0 {
		return
	}
	now := c.clock.Now()
	total := c.totalTaskCapacity()
	allocs := c.capacity.Allocate(now, total, tenants)
	// Defensive total order: a policy returning tenants in a different
	// order must not perturb the event log.
	sort.Slice(allocs, func(i, k int) bool { return allocs[i].Tenant < allocs[k].Tenant })
	changed := false
	for _, a := range allocs {
		old, had := c.tenantCaps[a.Tenant]
		if a.TaskCap < 0 {
			if had {
				delete(c.tenantCaps, a.Tenant)
				changed = true
				c.emit(EvTenantCap, "", "", -1, a.Tenant+"=uncapped")
			}
			continue
		}
		if had && old == a.TaskCap {
			continue
		}
		c.tenantCaps[a.Tenant] = a.TaskCap
		changed = true
		c.emit(EvTenantCap, "", "", -1, fmt.Sprintf("%s=%d", a.Tenant, a.TaskCap))
		if c.tracer.Enabled() {
			c.tracer.Instant(now, trace.PIDController, "capacity", "tenant-cap",
				trace.Str("tenant", a.Tenant), trace.Num("cap", float64(a.TaskCap)))
		}
	}
	c.capLog = append(c.capLog, CapacityDecision{At: now, Total: total, Tenants: tenants, Allocs: allocs})
	if changed {
		for _, tt := range c.trackers {
			c.jt.assign(tt)
		}
	}
}
