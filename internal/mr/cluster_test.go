package mr

import (
	"math"
	"testing"

	"smapreduce/internal/puma"
)

// smallConfig shrinks the cluster so unit tests run fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.Net.Nodes = 4
	return cfg
}

func runOne(t *testing.T, cfg Config, spec JobSpec) *Job {
	t.Helper()
	c := MustNewCluster(cfg)
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return jobs[0]
}

func grepJob(inputMB float64) JobSpec {
	return JobSpec{Name: "grep", Profile: puma.MustGet("grep"), InputMB: inputMB, Reduces: 8}
}

func terasortJob(inputMB float64) JobSpec {
	return JobSpec{Name: "terasort", Profile: puma.MustGet("terasort"), InputMB: inputMB, Reduces: 8}
}

func TestConfigValidateDefaults(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.MapSlots = 0 },
		func(c *Config) { c.ReduceSlots = 0 },
		func(c *Config) { c.MaxMapSlots = 1 },
		func(c *Config) { c.MaxReduceSlots = 0 },
		func(c *Config) { c.HeartbeatPeriod = 0 },
		func(c *Config) { c.SampleInterval = 0 },
		func(c *Config) { c.ReduceSlowstart = 1.5 },
		func(c *Config) { c.Fetchers = 0 },
		func(c *Config) { c.PerFetchMBps = 0 },
		func(c *Config) { c.Jitter = 1 },
		func(c *Config) { c.SlotChangePressure = -1 },
		func(c *Config) { c.StabilizeTime = -1 },
		func(c *Config) { c.Policy = YARN; c.MapContainerMB = 0 },
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d passed validation", i)
		}
	}
}

func TestJobSpecValidate(t *testing.T) {
	good := grepJob(100)
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec invalid: %v", err)
	}
	bad := []JobSpec{
		{Name: "", Profile: puma.MustGet("grep"), InputMB: 1, Reduces: 1},
		{Name: "x", Profile: puma.MustGet("grep"), InputMB: 0, Reduces: 1},
		{Name: "x", Profile: puma.MustGet("grep"), InputMB: 1, Reduces: 0},
		{Name: "x", Profile: puma.MustGet("grep"), InputMB: 1, Reduces: 1, SubmitAt: -1},
		{Name: "x", Profile: puma.Profile{}, InputMB: 1, Reduces: 1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("bad spec %d passed", i)
		}
	}
}

func TestSingleJobRunsToCompletion(t *testing.T) {
	j := runOne(t, smallConfig(), grepJob(1024))
	if !j.Finished() {
		t.Fatal("job did not finish")
	}
	if j.MapsDone() != j.NumMaps() || j.ReducesDone() != j.NumReduces() {
		t.Fatalf("task counts: maps %d/%d reduces %d/%d",
			j.MapsDone(), j.NumMaps(), j.ReducesDone(), j.NumReduces())
	}
	if j.NumMaps() != 8 { // 1024 MB / 128 MB blocks
		t.Fatalf("maps = %d, want 8", j.NumMaps())
	}
}

func TestMilestonesOrdered(t *testing.T) {
	j := runOne(t, smallConfig(), terasortJob(1024))
	if !(j.Submitted <= j.Started && j.Started < j.BarrierAt && j.BarrierAt < j.FinishedAt) {
		t.Fatalf("milestones out of order: sub=%v start=%v barrier=%v fin=%v",
			j.Submitted, j.Started, j.BarrierAt, j.FinishedAt)
	}
	if j.MapTime() <= 0 || j.ReduceTime() <= 0 || j.ExecutionTime() <= 0 {
		t.Fatalf("times: map=%v reduce=%v exec=%v", j.MapTime(), j.ReduceTime(), j.ExecutionTime())
	}
	if math.IsNaN(j.ThroughputMBps()) || j.ThroughputMBps() <= 0 {
		t.Fatalf("throughput = %v", j.ThroughputMBps())
	}
}

func TestShuffledVolumeMatchesProfile(t *testing.T) {
	spec := terasortJob(1024)
	j := runOne(t, smallConfig(), spec)
	want := spec.InputMB * spec.Profile.ShuffleRatio()
	// Jitter perturbs each map's output by ±8%; the sum stays close.
	if j.ShuffledMB < want*0.9 || j.ShuffledMB > want*1.1 {
		t.Fatalf("shuffled %v MB, want ≈%v", j.ShuffledMB, want)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := runOne(t, smallConfig(), terasortJob(512))
	b := runOne(t, smallConfig(), terasortJob(512))
	if a.FinishedAt != b.FinishedAt || a.BarrierAt != b.BarrierAt {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", a.BarrierAt, a.FinishedAt, b.BarrierAt, b.FinishedAt)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg2 := smallConfig()
	cfg2.Seed = 99
	a := runOne(t, smallConfig(), terasortJob(512))
	b := runOne(t, cfg2, terasortJob(512))
	if a.FinishedAt == b.FinishedAt {
		t.Fatal("different seeds produced identical finish times")
	}
}

func TestProgressCurvesMonotone(t *testing.T) {
	j := runOne(t, smallConfig(), grepJob(2048))
	for _, s := range []interface {
		Points() []struct{ T, V float64 }
	}{} {
		_ = s
	}
	prev := -1.0
	for _, p := range j.Progress.Total.Points() {
		if p.V < prev-1e-6 {
			t.Fatalf("total progress regressed to %v after %v", p.V, prev)
		}
		prev = p.V
	}
	if j.Progress.Total.Last().V != 200 {
		t.Fatalf("final progress %v, want 200", j.Progress.Total.Last().V)
	}
}

func TestMoreSlotsFinishFasterBelowThrash(t *testing.T) {
	cfg1 := smallConfig()
	cfg1.MapSlots = 1
	cfg3 := smallConfig()
	cfg3.MapSlots = 3
	slow := runOne(t, cfg1, grepJob(2048))
	fast := runOne(t, cfg3, grepJob(2048))
	if fast.MapTime() >= slow.MapTime() {
		t.Fatalf("3 slots (%v) not faster than 1 slot (%v)", fast.MapTime(), slow.MapTime())
	}
}

func TestThrashingSlowsMapHeavyJob(t *testing.T) {
	// Past the calibrated peak (grep ≈ 8), more slots hurt.
	atPeak := smallConfig()
	atPeak.MapSlots = 8
	atPeak.MaxMapSlots = 20
	over := smallConfig()
	over.MapSlots = 16
	over.MaxMapSlots = 20
	good := runOne(t, atPeak, grepJob(2048))
	bad := runOne(t, over, grepJob(2048))
	if bad.MapTime() <= good.MapTime() {
		t.Fatalf("thrashing config (%v) not slower than peak config (%v)", bad.MapTime(), good.MapTime())
	}
}

func TestRunErrors(t *testing.T) {
	c := MustNewCluster(smallConfig())
	if _, err := c.Run(); err == nil {
		t.Fatal("Run with no jobs succeeded")
	}
	if _, err := c.Run(JobSpec{Name: "bad"}); err == nil {
		t.Fatal("Run with invalid spec succeeded")
	}
	if _, err := c.Run(grepJob(256)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(grepJob(256)); err == nil {
		t.Fatal("second Run succeeded")
	}
}

func TestSetControllerRequiresDynamic(t *testing.T) {
	c := MustNewCluster(smallConfig())
	if err := c.SetController(nopController{}); err == nil {
		t.Fatal("controller attached under HadoopV1 policy")
	}
	cfg := smallConfig()
	cfg.Policy = Dynamic
	c2 := MustNewCluster(cfg)
	if err := c2.SetController(nopController{}); err != nil {
		t.Fatal(err)
	}
	if err := c2.SetController(badIntervalController{}); err == nil {
		t.Fatal("zero-interval controller accepted")
	}
}

type nopController struct{}

func (nopController) Interval() float64 { return 5 }
func (nopController) Tick(*Cluster)     {}

type badIntervalController struct{}

func (badIntervalController) Interval() float64 { return 0 }
func (badIntervalController) Tick(*Cluster)     {}

func TestPolicyString(t *testing.T) {
	if HadoopV1.String() != "hadoopv1" || YARN.String() != "yarn" || Dynamic.String() != "smapreduce" {
		t.Fatal("Policy strings")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy empty")
	}
	if TaskPending.String() != "pending" || TaskRunning.String() != "running" || TaskDone.String() != "done" {
		t.Fatal("TaskState strings")
	}
	if TaskState(9).String() == "" {
		t.Fatal("unknown state empty")
	}
}

func TestYARNRunsJob(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = YARN
	j := runOne(t, cfg, terasortJob(1024))
	if !j.Finished() {
		t.Fatal("YARN job did not finish")
	}
}

func TestYARNMapBurstBeatsV1OnMapHeavy(t *testing.T) {
	// YARN's fungible containers let maps use reduce-container memory
	// before reducers arrive, so map-heavy jobs finish their map phase
	// faster than under static V1 slots.
	v1 := runOne(t, smallConfig(), grepJob(4096))
	cfgY := smallConfig()
	cfgY.Policy = YARN
	yarn := runOne(t, cfgY, grepJob(4096))
	if yarn.MapTime() >= v1.MapTime() {
		t.Fatalf("YARN map time %v not better than V1 %v", yarn.MapTime(), v1.MapTime())
	}
}

func TestMultipleConcurrentJobs(t *testing.T) {
	c := MustNewCluster(smallConfig())
	specs := []JobSpec{
		{Name: "g1", Profile: puma.MustGet("grep"), InputMB: 512, Reduces: 4, SubmitAt: 0},
		{Name: "g2", Profile: puma.MustGet("grep"), InputMB: 512, Reduces: 4, SubmitAt: 5},
		{Name: "g3", Profile: puma.MustGet("grep"), InputMB: 512, Reduces: 4, SubmitAt: 10},
	}
	jobs, err := c.Run(specs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !j.Finished() {
			t.Fatalf("job %s unfinished", j.Spec.Name)
		}
	}
	// FIFO: earlier submissions never finish after strictly later ones
	// by a wide margin; at minimum the first job finishes first.
	if jobs[0].FinishedAt > jobs[2].FinishedAt {
		t.Fatalf("FIFO violated: first %v last %v", jobs[0].FinishedAt, jobs[2].FinishedAt)
	}
}

func TestSnapshotConsistency(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = Dynamic
	c := MustNewCluster(cfg)
	probe := &probeController{}
	if err := c.SetController(probe); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(terasortJob(2048)); err != nil {
		t.Fatal(err)
	}
	if probe.ticks == 0 {
		t.Fatal("controller never ticked")
	}
	for _, s := range probe.snaps {
		if s.RunningMaps < 0 || s.RunningMaps > cfg.Workers*cfg.MaxMapSlots {
			t.Fatalf("implausible running maps %d", s.RunningMaps)
		}
		if s.DoneMaps > s.TotalMaps || s.DoneReduces > s.TotalReduces {
			t.Fatalf("done exceeds total: %+v", s)
		}
		if len(s.Trackers) != cfg.Workers {
			t.Fatalf("tracker stats %d, want %d", len(s.Trackers), cfg.Workers)
		}
		if s.MapInputMBps < 0 || s.ShuffleMBps < 0 || s.PotentialShuffleMBps < 0 {
			t.Fatalf("negative rates: %+v", s)
		}
	}
}

type probeController struct {
	ticks int
	snaps []Stats
}

func (p *probeController) Interval() float64 { return 5 }
func (p *probeController) Tick(c *Cluster) {
	p.ticks++
	p.snaps = append(p.snaps, c.Snapshot())
}

func TestDesiredSlotsApplyOnHeartbeat(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = Dynamic
	c := MustNewCluster(cfg)
	ctrl := &raiseOnceController{target: 6}
	if err := c.SetController(ctrl); err != nil {
		t.Fatal(err)
	}
	j := runOne2(t, c, grepJob(4096))
	if !j.Finished() {
		t.Fatal("unfinished")
	}
	if !ctrl.sawApplied {
		t.Fatal("slot targets never reached the trackers")
	}
}

type raiseOnceController struct {
	target     int
	raised     bool
	sawApplied bool
}

func (r *raiseOnceController) Interval() float64 { return 3 }
func (r *raiseOnceController) Tick(c *Cluster) {
	if !r.raised {
		for _, tt := range c.Trackers() {
			c.JobTracker().SetDesiredSlots(tt.ID(), r.target, 2)
		}
		r.raised = true
		return
	}
	for _, tt := range c.Trackers() {
		if tt.MapSlots() == r.target {
			r.sawApplied = true
		}
	}
}

func runOne2(t *testing.T, c *Cluster, spec JobSpec) *Job {
	t.Helper()
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return jobs[0]
}

func TestSetDesiredSlotsClampsAndPanics(t *testing.T) {
	c := MustNewCluster(smallConfig())
	jt := c.JobTracker()
	jt.SetDesiredSlots(0, 100, 100)
	m, r := jt.desiredSlots(0)
	if m != c.cfg.MaxMapSlots || r != c.cfg.MaxReduceSlots {
		t.Fatalf("clamp failed: %d/%d", m, r)
	}
	for _, f := range []func(){
		func() { jt.SetDesiredSlots(-1, 2, 2) },
		func() { jt.SetDesiredSlots(0, 0, 2) },
		func() { jt.SetDesiredSlots(0, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad SetDesiredSlots did not panic")
				}
			}()
			f()
		}()
	}
}

func TestReduceSlowstartGatesLaunch(t *testing.T) {
	// With slowstart = 1.0 reduces launch only after every map commits,
	// so shuffle cannot overlap and reduce time grows.
	overlap := smallConfig()
	overlap.ReduceSlowstart = 0.05
	serial := smallConfig()
	serial.ReduceSlowstart = 1.0
	a := runOne(t, overlap, terasortJob(1024))
	b := runOne(t, serial, terasortJob(1024))
	if b.FinishedAt <= a.FinishedAt {
		t.Fatalf("serial shuffle (%v) not slower than overlapped (%v)", b.FinishedAt, a.FinishedAt)
	}
}

func TestMapHeavyVsReduceHeavyShape(t *testing.T) {
	// Reduce-heavy jobs spend proportionally longer after the barrier.
	g := runOne(t, smallConfig(), grepJob(2048))
	ts := runOne(t, smallConfig(), terasortJob(2048))
	gRatio := g.ReduceTime() / g.ExecutionTime()
	tsRatio := ts.ReduceTime() / ts.ExecutionTime()
	if tsRatio <= gRatio {
		t.Fatalf("terasort tail ratio %v not larger than grep %v", tsRatio, gRatio)
	}
}

func TestPartitionWeights(t *testing.T) {
	uniform := partitionWeights(4, 0)
	for _, w := range uniform {
		if math.Abs(w-0.25) > 1e-12 {
			t.Fatalf("uniform weights = %v", uniform)
		}
	}
	skewed := partitionWeights(4, 1)
	sum := 0.0
	for i := 1; i < len(skewed); i++ {
		if skewed[i] > skewed[i-1] {
			t.Fatalf("skewed weights not decreasing: %v", skewed)
		}
	}
	for _, w := range skewed {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum %v", sum)
	}
	if skewed[0] <= uniform[0] {
		t.Fatal("skew did not concentrate the first partition")
	}
}

func TestSkewSlowsReduceTail(t *testing.T) {
	base := terasortJob(2048)
	even := runOne(t, smallConfig(), base)
	skewed := base
	skewed.PartitionSkew = 1.0
	hot := runOne(t, smallConfig(), skewed)
	// Total shuffle volume is identical; the hot reducer serialises the
	// tail, so the skewed run must take longer end to end.
	if hot.FinishedAt <= even.FinishedAt {
		t.Fatalf("skewed run (%v) not slower than uniform (%v)", hot.FinishedAt, even.FinishedAt)
	}
	if math.Abs(hot.ShuffledMB-even.ShuffledMB) > even.ShuffledMB*0.05 {
		t.Fatalf("skew changed total shuffle volume: %v vs %v", hot.ShuffledMB, even.ShuffledMB)
	}
}

func TestSkewValidation(t *testing.T) {
	s := grepJob(100)
	s.PartitionSkew = -1
	if s.Validate() == nil {
		t.Fatal("negative skew accepted")
	}
	s.PartitionSkew = 9
	if s.Validate() == nil {
		t.Fatal("huge skew accepted")
	}
}

func TestSkewSurvivesFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 6
	cfg.Net.Nodes = 6
	c := MustNewCluster(cfg)
	c.ScheduleFailure(1, 15)
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 2048, Reduces: 6, PartitionSkew: 0.8}
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("skewed job did not survive failure")
	}
}

func TestCompressionValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.CompressShuffle = true
	cfg.CompressionRatio = 0
	if cfg.Validate() == nil {
		t.Fatal("zero ratio accepted")
	}
	cfg.CompressionRatio = 1.5
	if cfg.Validate() == nil {
		t.Fatal("ratio > 1 accepted")
	}
	cfg.CompressionRatio = 0.45
	cfg.CompressCPUPerMB = -1
	if cfg.Validate() == nil {
		t.Fatal("negative compress cost accepted")
	}
}

func TestCompressionShrinksShuffle(t *testing.T) {
	plain := runOne(t, smallConfig(), terasortJob(2048))
	cfg := smallConfig()
	cfg.CompressShuffle = true
	packed := runOne(t, cfg, terasortJob(2048))
	want := plain.ShuffledMB * cfg.CompressionRatio
	if math.Abs(packed.ShuffledMB-want) > want*0.05 {
		t.Fatalf("compressed shuffle %v, want ≈%v", packed.ShuffledMB, want)
	}
}

func TestCompressionHelpsShuffleBoundJob(t *testing.T) {
	// Terasort is network-bound in the reduce tail: compressing the
	// shuffle must shorten the job despite the extra CPU.
	plain := runOne(t, smallConfig(), terasortJob(4096))
	cfg := smallConfig()
	cfg.CompressShuffle = true
	packed := runOne(t, cfg, terasortJob(4096))
	if packed.FinishedAt >= plain.FinishedAt {
		t.Fatalf("compression (%v) did not help a shuffle-bound job (%v)", packed.FinishedAt, plain.FinishedAt)
	}
}

func TestCompressionNeutralOnMapHeavy(t *testing.T) {
	// Grep shuffles ~nothing: compression buys nothing and costs a
	// little CPU; the job must stay within a few percent.
	plain := runOne(t, smallConfig(), grepJob(4096))
	cfg := smallConfig()
	cfg.CompressShuffle = true
	packed := runOne(t, cfg, grepJob(4096))
	if packed.FinishedAt > 1.05*plain.FinishedAt {
		t.Fatalf("compression cost too much on map-heavy: %v vs %v", packed.FinishedAt, plain.FinishedAt)
	}
}

func TestOutputReplicationValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.OutputReplication = -1
	if cfg.Validate() == nil {
		t.Fatal("negative replication accepted")
	}
	cfg.OutputReplication = cfg.Workers + 1
	if cfg.Validate() == nil {
		t.Fatal("replication beyond cluster accepted")
	}
}

func TestOutputReplicationLengthensTail(t *testing.T) {
	// A write-dominated job: terasort's shape but with a near-identity
	// reduce function, so the output pipeline is the reduce tail's
	// critical path instead of hiding under reduce compute (a real
	// effect: with the default profile the pipelines fully overlap the
	// reduce CPU and replication is free — also asserted below).
	prof := puma.MustGet("terasort")
	prof.ReduceCPUPerMB = 0.003
	spec := JobSpec{Name: "tsw", Profile: prof, InputMB: 2048, Reduces: 8}
	r1 := runOne(t, smallConfig(), spec)
	cfg := smallConfig()
	cfg.OutputReplication = 3
	r3 := runOne(t, cfg, spec)
	if r3.ReduceTime() <= 1.2*r1.ReduceTime() {
		t.Fatalf("3x replication (%v) not well above 1x (%v) on a write-bound job",
			r3.ReduceTime(), r1.ReduceTime())
	}
	// The map phase is untouched.
	if math.Abs(r3.MapTime()-r1.MapTime()) > 0.05*r1.MapTime() {
		t.Fatalf("replication changed the map phase: %v vs %v", r3.MapTime(), r1.MapTime())
	}

	// With the unmodified profile the reduce CPU dominates and hides
	// the pipeline: replication must then be nearly free.
	d1 := runOne(t, smallConfig(), terasortJob(2048))
	cfg3 := smallConfig()
	cfg3.OutputReplication = 3
	d3 := runOne(t, cfg3, terasortJob(2048))
	if d3.FinishedAt > 1.1*d1.FinishedAt {
		t.Fatalf("replication visible despite compute overlap: %v vs %v", d3.FinishedAt, d1.FinishedAt)
	}
}

func TestOutputReplicationNeutralForTinyOutput(t *testing.T) {
	// Grep's final output is tiny: replication must cost ~nothing.
	r1 := runOne(t, smallConfig(), grepJob(2048))
	cfg := smallConfig()
	cfg.OutputReplication = 3
	r3 := runOne(t, cfg, grepJob(2048))
	if r3.FinishedAt > 1.05*r1.FinishedAt {
		t.Fatalf("replication hurt a tiny-output job: %v vs %v", r3.FinishedAt, r1.FinishedAt)
	}
}

func TestOutputReplicationSurvivesFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 6
	cfg.Net.Nodes = 6
	cfg.OutputReplication = 3
	c := MustNewCluster(cfg)
	c.ScheduleFailure(2, 20)
	jobs, err := c.Run(JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 2048, Reduces: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("replicated job did not survive failure")
	}
}

func TestYARNWithCompressionAndFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 6
	cfg.Net.Nodes = 6
	cfg.Policy = YARN
	cfg.CompressShuffle = true
	c := MustNewCluster(cfg)
	c.ScheduleFailure(4, 15)
	jobs, err := c.Run(JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 2048, Reduces: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("YARN job did not survive compression + failure")
	}
}

func TestYARNMultiJobFair(t *testing.T) {
	// YARN policy with the Fair scheduler ordering jobs: still correct.
	cfg := smallConfig()
	cfg.Policy = YARN
	cfg.Scheduler = Fair
	c := MustNewCluster(cfg)
	specs := []JobSpec{
		{Name: "a", Profile: puma.MustGet("grep"), InputMB: 1024, Reduces: 4},
		{Name: "b", Profile: puma.MustGet("wordcount"), InputMB: 1024, Reduces: 4, SubmitAt: 1},
	}
	jobs, err := c.Run(specs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !j.Finished() {
			t.Fatalf("job %s unfinished", j.Spec.Name)
		}
	}
}

func TestYARNSpeculation(t *testing.T) {
	cfg := stragglerConfig(true)
	cfg.Policy = YARN
	c := MustNewCluster(cfg)
	jobs, err := c.Run(JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 8192, Reduces: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() || jobs[0].SpeculativeLaunched == 0 {
		t.Fatalf("YARN speculation inert: launched=%d", jobs[0].SpeculativeLaunched)
	}
}
