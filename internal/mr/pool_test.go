package mr

import (
	"os"
	"reflect"
	"testing"

	"smapreduce/internal/puma"
)

// poolDiffWorkload is a seeded workload chosen to exercise every
// pooled teardown path: stragglers trigger speculation (killAttempt),
// the mid-run failure aborts maps and shuffling reducers (abortMap,
// abortReduce, the reducer-flow purge) and re-queues committed maps,
// and output replication exercises the write-pipeline flows.
func poolDiffWorkload(t *testing.T, noPool bool) ([]*Job, Stats, []Event) {
	t.Helper()
	cfg := stragglerConfig(true)
	cfg.Seed = 7
	cfg.OutputReplication = 2
	cfg.NoPooling = noPool
	c := MustNewCluster(cfg)
	log := c.EnableEventLog(0)
	c.ScheduleFailure(5, 6.0)
	specs := []JobSpec{
		{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 2048, Reduces: 6},
		{Name: "grep", Profile: puma.MustGet("grep"), InputMB: 1024, Reduces: 4, SubmitAt: 3},
	}
	jobs, err := c.Run(specs...)
	if err != nil {
		t.Fatalf("Run (noPool=%v): %v", noPool, err)
	}
	return jobs, c.Snapshot(), log.Events()
}

// TestPooledVsUnpooledDifferential is the pooling correctness pin: the
// same seeded workload run with recycling on and off must produce
// bit-identical milestones, stats and event logs. Any pooled object
// leaking state across reuse (a stale Userdata, an unreset counter, a
// mis-ordered release) shows up as a divergence here.
func TestPooledVsUnpooledDifferential(t *testing.T) {
	pJobs, pStats, pEvents := poolDiffWorkload(t, false)
	uJobs, uStats, uEvents := poolDiffWorkload(t, true)

	if len(pJobs) != len(uJobs) {
		t.Fatalf("job counts differ: pooled %d, unpooled %d", len(pJobs), len(uJobs))
	}
	for i := range pJobs {
		p, u := pJobs[i], uJobs[i]
		if p.Submitted != u.Submitted || p.Started != u.Started ||
			p.BarrierAt != u.BarrierAt || p.FinishedAt != u.FinishedAt ||
			p.ShuffledMB != u.ShuffledMB ||
			p.SpeculativeLaunched != u.SpeculativeLaunched ||
			p.SpeculativeWins != u.SpeculativeWins {
			t.Fatalf("job %s milestones diverge:\npooled   %+v %+v %+v %+v %v spec %d/%d\nunpooled %+v %+v %+v %+v %v spec %d/%d",
				p.Spec.Name,
				p.Submitted, p.Started, p.BarrierAt, p.FinishedAt, p.ShuffledMB, p.SpeculativeLaunched, p.SpeculativeWins,
				u.Submitted, u.Started, u.BarrierAt, u.FinishedAt, u.ShuffledMB, u.SpeculativeLaunched, u.SpeculativeWins)
		}
	}
	if !reflect.DeepEqual(pStats, uStats) {
		t.Fatalf("final Stats diverge:\npooled   %+v\nunpooled %+v", pStats, uStats)
	}
	if len(pEvents) != len(uEvents) {
		t.Fatalf("event counts differ: pooled %d, unpooled %d", len(pEvents), len(uEvents))
	}
	for i := range pEvents {
		if pEvents[i] != uEvents[i] {
			t.Fatalf("event %d diverges:\npooled   %+v\nunpooled %+v", i, pEvents[i], uEvents[i])
		}
	}
}

// TestHeartbeatZeroAlloc pins the steady-state heartbeat at zero
// allocations: an idle tracker's periodic exchange (rate sampling,
// empty assignment pass, in-place periodic re-arm) must recycle
// everything.
func TestHeartbeatZeroAlloc(t *testing.T) {
	c := MustNewCluster(DefaultConfig())
	tt := c.trackers[0]
	c.clock.SchedulePeriodic(0, c.cfg.HeartbeatPeriod, tt.hbLabel, tt.hbFn)
	// Warm up: grow the clock arena and EWMA state to steady shape.
	for i := 0; i < 64; i++ {
		c.clock.Step()
	}
	allocs := testing.AllocsPerRun(256, func() {
		c.clock.Step()
	})
	if allocs != 0 {
		t.Fatalf("idle heartbeat allocates %v allocs/op, want 0", allocs)
	}
}

// TestOpPoolRecycles pins the fluidOp free list: a completed op's
// object is handed back by the next acquisition, and NoPooling
// disables that.
func TestOpPoolRecycles(t *testing.T) {
	if os.Getenv("SMR_NO_POOL") == "1" {
		t.Skip("pooling disabled via SMR_NO_POOL")
	}
	c := MustNewCluster(DefaultConfig())
	var first *fluidOp
	c.Mutate(func() {
		first = c.addOp("a", 1, func() float64 { return 1 }, nil)
	})
	c.clock.RunUntilIdle(100)
	if len(c.opPool) != 1 {
		t.Fatalf("pool has %d ops after completion, want 1", len(c.opPool))
	}
	var second *fluidOp
	c.Mutate(func() {
		second = c.addOp("b", 1, func() float64 { return 1 }, nil)
	})
	if second != first {
		t.Fatal("pool did not recycle the completed op")
	}
	c.clock.RunUntilIdle(100)

	u := MustNewCluster(func() Config { cfg := DefaultConfig(); cfg.NoPooling = true; return cfg }())
	u.Mutate(func() {
		first = u.addOp("a", 1, func() float64 { return 1 }, nil)
	})
	u.clock.RunUntilIdle(100)
	if len(u.opPool) != 0 {
		t.Fatal("NoPooling cluster pooled an op")
	}
}
