package mr

import (
	"testing"

	"smapreduce/internal/puma"
)

// admitTestJob stages a file and admits a job outside Run, for direct
// scheduler unit tests.
func admitTestJob(t *testing.T, c *Cluster, name string, inputMB float64, reduces int) *Job {
	t.Helper()
	file, err := c.fs.Create("input/"+name, inputMB)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Name: name, Profile: puma.MustGet("grep"), InputMB: inputMB, Reduces: reduces}
	j := newJob(len(c.jt.jobs), spec, file, c.cfg.NodeSpec.Beta, c.cfg.Workers)
	c.Mutate(func() { c.jt.admit(j) })
	return j
}

func TestNextMapPrefersNodeLocal(t *testing.T) {
	c := MustNewCluster(smallConfig())
	j := admitTestJob(t, c, "a", 16*128, 4)
	for _, tt := range c.trackers {
		m := c.jt.nextMap(tt)
		if m == nil {
			t.Fatalf("no map for tracker %d", tt.id)
		}
		// With 16 blocks × 3 replicas over 4 nodes, every node holds
		// replicas, so the pick must be node-local.
		local := false
		for _, h := range m.split.Hosts {
			if h == tt.id {
				local = true
			}
		}
		if !local {
			t.Errorf("tracker %d got non-local split %v", tt.id, m.split.Hosts)
		}
		// Selected tasks leave the pending pool.
		for _, p := range c.jt.pendingMaps[j] {
			if p == m {
				t.Fatal("picked map still pending")
			}
		}
		m.state = TaskRunning // prevent re-pick via by-host index
	}
}

func TestNextMapFallsBackWhenNoLocal(t *testing.T) {
	cfg := smallConfig()
	cfg.DFS.Replication = 1
	c := MustNewCluster(cfg)
	admitTestJob(t, c, "a", 2*128, 4) // 2 blocks, 1 replica each
	// Drain all maps through one tracker: at most 2 picks, the second
	// (or both) possibly remote — but both must succeed.
	tt := c.trackers[0]
	got := 0
	for {
		m := c.jt.nextMap(tt)
		if m == nil {
			break
		}
		m.state = TaskRunning
		got++
	}
	if got != 2 {
		t.Fatalf("picked %d maps, want 2", got)
	}
}

func TestFIFOOrderAcrossJobs(t *testing.T) {
	c := MustNewCluster(smallConfig())
	a := admitTestJob(t, c, "a", 4*128, 4)
	b := admitTestJob(t, c, "b", 4*128, 4)
	// All of job a's maps are picked before any of job b's.
	tt := c.trackers[0]
	for i := 0; i < 4; i++ {
		m := c.jt.nextMap(tt)
		if m.job != a {
			t.Fatalf("pick %d came from job %s, want a", i, m.job.Spec.Name)
		}
		m.state = TaskRunning
	}
	if m := c.jt.nextMap(tt); m == nil || m.job != b {
		t.Fatal("job b not served after a drained")
	}
}

func TestFairOrderPrefersFewerRunning(t *testing.T) {
	cfg := smallConfig()
	cfg.Scheduler = Fair
	c := MustNewCluster(cfg)
	a := admitTestJob(t, c, "a", 4*128, 4)
	b := admitTestJob(t, c, "b", 4*128, 4)
	tt := c.trackers[0]
	// Give job a two running tasks; Fair must now pick from b.
	a.maps[0].state = TaskRunning
	a.maps[1].state = TaskRunning
	m := c.jt.nextMap(tt)
	if m == nil || m.job != b {
		t.Fatalf("fair scheduler picked from %v, want b", m.job.Spec.Name)
	}
}

func TestNextReduceSlowstartGate(t *testing.T) {
	c := MustNewCluster(smallConfig())
	j := admitTestJob(t, c, "a", 40*128, 4) // 40 maps, slowstart 5% → 2 maps
	tt := c.trackers[0]
	if r := c.jt.nextReduce(tt); r != nil {
		t.Fatal("reduce offered before slowstart")
	}
	j.mapsDone = 2
	if r := c.jt.nextReduce(tt); r == nil {
		t.Fatal("reduce not offered after slowstart")
	}
}

func TestReduceDemandExists(t *testing.T) {
	c := MustNewCluster(smallConfig())
	j := admitTestJob(t, c, "a", 40*128, 4)
	if c.jt.reduceDemandExists() {
		t.Fatal("demand before slowstart")
	}
	j.mapsDone = 5
	if !c.jt.reduceDemandExists() {
		t.Fatal("no demand after slowstart with pending reduces")
	}
	for _, r := range j.reduces {
		r.state = TaskRunning
	}
	if c.jt.reduceDemandExists() {
		t.Fatal("demand with all reduces running")
	}
}

func TestRequeueMapIsPickableAgain(t *testing.T) {
	c := MustNewCluster(smallConfig())
	j := admitTestJob(t, c, "a", 2*128, 4)
	tt := c.trackers[0]
	m := c.jt.nextMap(tt)
	m.state = TaskRunning
	// Abort and requeue: must come back from nextMap.
	m.state = TaskPending
	c.jt.requeueMap(j, m)
	seen := false
	for {
		p := c.jt.nextMap(tt)
		if p == nil {
			break
		}
		if p == m {
			seen = true
		}
		p.state = TaskRunning
	}
	if !seen {
		t.Fatal("requeued map never re-picked")
	}
}

func TestPendingCounts(t *testing.T) {
	c := MustNewCluster(smallConfig())
	admitTestJob(t, c, "a", 4*128, 6)
	if got := c.jt.PendingMapCount(); got != 4 {
		t.Fatalf("pending maps = %d, want 4", got)
	}
	if got := c.jt.PendingReduceCount(); got != 6 {
		t.Fatalf("pending reduces = %d, want 6", got)
	}
}

func TestRetireRemovesFromQueue(t *testing.T) {
	c := MustNewCluster(smallConfig())
	a := admitTestJob(t, c, "a", 2*128, 2)
	b := admitTestJob(t, c, "b", 2*128, 2)
	c.jt.retire(a)
	if len(c.jt.queue) != 1 || c.jt.queue[0] != b {
		t.Fatalf("queue after retire: %d entries", len(c.jt.queue))
	}
	c.jt.retire(a) // double retire is a no-op
	if len(c.jt.queue) != 1 {
		t.Fatal("double retire corrupted queue")
	}
}

func TestProgressFractionPhases(t *testing.T) {
	// White-box checks of the Hadoop-style progress arithmetic.
	m := &mapTask{state: TaskPending}
	if m.progressFraction() != 0 {
		t.Fatal("pending map progress != 0")
	}
	m.state = TaskDone
	if m.progressFraction() != 1 {
		t.Fatal("done map progress != 1")
	}
	m.state = TaskRunning
	m.phase = 0
	m.computeOp = &fluidOp{total: 10, remaining: 5}
	if got := m.progressFraction(); got != 0.85*0.5 {
		t.Fatalf("map compute progress = %v, want 0.425", got)
	}
	m.phase = 1
	m.sortOp = &fluidOp{total: 10, remaining: 10}
	if got := m.progressFraction(); got != 0.85 {
		t.Fatalf("map spill-start progress = %v, want 0.85", got)
	}

	r := &reduceTask{state: TaskRunning, phase: 1, job: &Job{Spec: JobSpec{InputMB: 100, Profile: puma.MustGet("terasort")}}}
	r.job.reduces = make([]*reduceTask, 4)
	r.sortOp = &fluidOp{total: 10, remaining: 0}
	if got := r.progressFraction(); got < 0.66 || got > 0.67 {
		t.Fatalf("reduce sort-done progress = %v, want ≈2/3", got)
	}
}
