package mr

import (
	"testing"

	"smapreduce/internal/puma"
)

// failureConfig uses a slightly larger cluster so one dead tracker
// leaves plenty of capacity.
func failureConfig() Config {
	cfg := DefaultConfig()
	cfg.Workers = 8
	cfg.Net.Nodes = 8
	return cfg
}

func runWithFailure(t *testing.T, spec JobSpec, failID int, failAt float64) (*Job, *Cluster) {
	t.Helper()
	c := MustNewCluster(failureConfig())
	c.ScheduleFailure(failID, failAt)
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatalf("Run with failure: %v", err)
	}
	return jobs[0], c
}

func TestFailTrackerValidation(t *testing.T) {
	c := MustNewCluster(failureConfig())
	if err := c.FailTracker(-1); err == nil {
		t.Fatal("negative id accepted")
	}
	if err := c.FailTracker(99); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if err := c.FailTracker(3); err != nil {
		t.Fatal(err)
	}
	if !c.Trackers()[3].Failed() {
		t.Fatal("tracker not marked failed")
	}
	if err := c.FailTracker(3); err == nil {
		t.Fatal("double failure accepted")
	}
}

func TestJobSurvivesEarlyFailure(t *testing.T) {
	// Kill a tracker while the first map wave is running.
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 4096, Reduces: 8}
	j, c := runWithFailure(t, spec, 2, 3.0)
	if !j.Finished() {
		t.Fatal("job did not survive the failure")
	}
	if j.MapsDone() != j.NumMaps() || j.ReducesDone() != j.NumReduces() {
		t.Fatalf("counts wrong after recovery: %d/%d maps, %d/%d reduces",
			j.MapsDone(), j.NumMaps(), j.ReducesDone(), j.NumReduces())
	}
	// The dead tracker must hold nothing.
	tt := c.Trackers()[2]
	if tt.RunningMaps() != 0 || tt.RunningReduces() != 0 {
		t.Fatal("dead tracker still holds tasks")
	}
}

func TestJobSurvivesMidShuffleFailure(t *testing.T) {
	// Kill a tracker once a good portion of maps have committed: their
	// outputs on that node are lost and must re-execute.
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 4096, Reduces: 8}
	noFail := MustNewCluster(failureConfig())
	base, err := noFail.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	failAt := base[0].BarrierAt * 0.7
	j, _ := runWithFailure(t, spec, 5, failAt)
	if !j.Finished() {
		t.Fatal("job did not finish after mid-shuffle failure")
	}
	// Losing a node mid-run costs time. Re-executed tasks redraw their
	// jittered costs, so allow a small tolerance, but a failure run
	// finishing meaningfully faster than a clean one is a bug.
	if j.FinishedAt < 0.95*base[0].FinishedAt {
		t.Fatalf("failure run finished at %v, well before clean run %v", j.FinishedAt, base[0].FinishedAt)
	}
}

func TestFailureAfterBarrierNoReexecutionNeeded(t *testing.T) {
	// Grep's shuffle is tiny: reducers have everything shortly after
	// the barrier, so a late failure must not resurrect map tasks.
	spec := JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 4096, Reduces: 8}
	noFail := MustNewCluster(failureConfig())
	base, err := noFail.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Fail just before the end, after the barrier.
	failAt := base[0].BarrierAt + 0.8*(base[0].FinishedAt-base[0].BarrierAt)
	j, _ := runWithFailure(t, spec, 1, failAt)
	if !j.Finished() {
		t.Fatal("unfinished")
	}
	if j.BarrierAt < 0 {
		t.Fatal("barrier was unwound although no reducer needed the lost outputs")
	}
}

func TestFailureDeterministic(t *testing.T) {
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 2048, Reduces: 8}
	a, _ := runWithFailure(t, spec, 4, 10)
	b, _ := runWithFailure(t, spec, 4, 10)
	if a.FinishedAt != b.FinishedAt {
		t.Fatalf("failure runs diverged: %v vs %v", a.FinishedAt, b.FinishedAt)
	}
}

func TestMultipleFailures(t *testing.T) {
	spec := JobSpec{Name: "ii", Profile: puma.MustGet("inverted-index"), InputMB: 4096, Reduces: 8}
	c := MustNewCluster(failureConfig())
	c.ScheduleFailure(0, 5)
	c.ScheduleFailure(7, 20)
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("job did not survive two failures")
	}
	alive := 0
	for _, tt := range c.Trackers() {
		if !tt.Failed() {
			alive++
		}
	}
	if alive != 6 {
		t.Fatalf("alive trackers = %d, want 6", alive)
	}
}

func TestFailureWithMultipleJobs(t *testing.T) {
	c := MustNewCluster(failureConfig())
	c.ScheduleFailure(3, 15)
	specs := []JobSpec{
		{Name: "a", Profile: puma.MustGet("grep"), InputMB: 2048, Reduces: 4, SubmitAt: 0},
		{Name: "b", Profile: puma.MustGet("terasort"), InputMB: 2048, Reduces: 4, SubmitAt: 5},
	}
	jobs, err := c.Run(specs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !j.Finished() {
			t.Fatalf("job %s unfinished", j.Spec.Name)
		}
	}
}

func TestFailedTrackerGetsNoWork(t *testing.T) {
	spec := JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 4096, Reduces: 8}
	c := MustNewCluster(failureConfig())
	c.ScheduleFailure(2, 2)
	// Watch the dead tracker throughout via a controller-style probe:
	// simplest is checking after the run that it ended empty and its
	// counters stopped advancing shortly after death.
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("unfinished")
	}
	tt := c.Trackers()[2]
	if tt.RunningMaps() != 0 || tt.RunningReduces() != 0 {
		t.Fatal("dead tracker holds tasks after run")
	}
}

func TestShuffledVolumeConsistentAfterReexecution(t *testing.T) {
	// ShuffledMB is decremented on loss and re-added on re-commit; the
	// final value must match the profile's expectation like a clean run.
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 2048, Reduces: 8}
	j, _ := runWithFailure(t, spec, 3, 12)
	want := spec.InputMB * spec.Profile.ShuffleRatio()
	if j.ShuffledMB < want*0.85 || j.ShuffledMB > want*1.15 {
		t.Fatalf("ShuffledMB = %v after recovery, want ≈%v", j.ShuffledMB, want)
	}
}

func TestDecommissionLosesNoWork(t *testing.T) {
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 4096, Reduces: 8}
	clean := MustNewCluster(failureConfig())
	base, err := clean.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	c := MustNewCluster(failureConfig())
	log := c.EnableEventLog(0)
	c.ScheduleDecommission(5, base[0].BarrierAt*0.5)
	jobs, err := c.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	j := jobs[0]
	if !j.Finished() {
		t.Fatal("unfinished after decommission")
	}
	// Graceful drain re-executes nothing.
	if n := len(log.Filter(EvRequeued)); n != 0 {
		t.Fatalf("decommission requeued %d tasks", n)
	}
	if len(log.Filter(EvTrackerDrain)) != 1 {
		t.Fatal("no drain event")
	}
	// Losing one of eight workers mid-run must cost less than a hard
	// failure would, and certainly not improve on the clean run by
	// more than jitter.
	if j.FinishedAt < 0.95*base[0].FinishedAt {
		t.Fatalf("drained run (%v) implausibly fast vs clean (%v)", j.FinishedAt, base[0].FinishedAt)
	}
	// The drained tracker must end empty and never pick up new work
	// after the drain point.
	tt := c.Trackers()[5]
	if tt.RunningMaps() != 0 || tt.RunningReduces() != 0 {
		t.Fatal("drained tracker still busy")
	}
	if !tt.Draining() || tt.Failed() {
		t.Fatal("drain state wrong")
	}
}

func TestDecommissionValidation(t *testing.T) {
	c := MustNewCluster(failureConfig())
	if err := c.DecommissionTracker(-1); err == nil {
		t.Fatal("bad id accepted")
	}
	if err := c.DecommissionTracker(2); err != nil {
		t.Fatal(err)
	}
	if err := c.DecommissionTracker(2); err == nil {
		t.Fatal("double drain accepted")
	}
	if err := c.FailTracker(3); err != nil {
		t.Fatal(err)
	}
	if err := c.DecommissionTracker(3); err == nil {
		t.Fatal("draining a failed tracker accepted")
	}
}

func TestDecommissionCheaperThanFailure(t *testing.T) {
	// A shuffle-heavy configuration where losing committed map outputs
	// genuinely hurts: 16 GB terasort with a full reduce wave. Small
	// configurations can mask the difference behind task-cost jitter.
	spec := JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 16 * 1024, Reduces: 16}
	clean := MustNewCluster(failureConfig())
	base, err := clean.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	at := base[0].BarrierAt * 0.6

	drained := MustNewCluster(failureConfig())
	drained.ScheduleDecommission(5, at)
	dj, err := drained.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	failed := MustNewCluster(failureConfig())
	failed.ScheduleFailure(5, at)
	fj, err := failed.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if dj[0].FinishedAt >= fj[0].FinishedAt {
		t.Fatalf("graceful drain (%v) not cheaper than hard failure (%v)", dj[0].FinishedAt, fj[0].FinishedAt)
	}
	// And the drain itself stays close to the clean run: no lost work,
	// only reduced capacity from the drain point on.
	if dj[0].FinishedAt > 1.6*base[0].FinishedAt {
		t.Fatalf("drain cost (%v vs clean %v) implausibly high", dj[0].FinishedAt, base[0].FinishedAt)
	}
}
