package mr

import (
	"encoding/json"
	"fmt"
	"io"
)

// EventKind labels one entry of the structured runtime event log.
type EventKind string

// The event vocabulary. Task-level kinds identify the task in the
// Task field as "<type>/<id>"; slot changes carry "maps/reduces" in
// Detail.
const (
	EvJobSubmitted EventKind = "job-submitted"
	EvTaskStarted  EventKind = "task-started"
	EvTaskDone     EventKind = "task-done"
	EvBarrier      EventKind = "barrier-crossed"
	EvJobFinished  EventKind = "job-finished"
	EvSlotChange   EventKind = "slot-change"
	EvTrackerDown  EventKind = "tracker-failed"
	EvSpeculative  EventKind = "speculative-launch"
	EvRequeued     EventKind = "task-requeued"
	EvTrackerDrain EventKind = "tracker-draining"

	// Fault-injection vocabulary (internal/chaos). Degradations carry
	// their parameters in Detail; EvFaultError records a fault that
	// could not be applied (e.g. crashing an already-dead tracker).
	EvTrackerRejoin      EventKind = "tracker-rejoined"
	EvTrackerHBLost      EventKind = "tracker-hb-lost"
	EvTrackerHBRestored  EventKind = "tracker-hb-restored"
	EvTrackerBlacklisted EventKind = "tracker-blacklisted"
	EvTrackerProbation   EventKind = "tracker-probation"
	EvTrackerCleared     EventKind = "tracker-cleared"
	// EvTenantCap records one tenant's task cap changing at a capacity
	// tick; Detail carries "tenant=cap" (or "tenant=uncapped").
	EvTenantCap EventKind = "tenant-cap"

	EvNodeDegraded       EventKind = "node-degraded"
	EvNodeRestored       EventKind = "node-restored"
	EvLinkDegraded       EventKind = "link-degraded"
	EvLinkRestored       EventKind = "link-restored"
	EvFaultError         EventKind = "fault-error"
)

// Event is one structured log entry. Tracker is -1 when not applicable.
type Event struct {
	At      float64   `json:"at"`
	Kind    EventKind `json:"kind"`
	Job     string    `json:"job,omitempty"`
	Task    string    `json:"task,omitempty"`
	Tracker int       `json:"tracker"`
	Detail  string    `json:"detail,omitempty"`
}

// EventLog collects structured events up to a cap; beyond it the oldest
// entries are dropped (the Dropped counter records how many), so a
// pathological run cannot exhaust memory.
type EventLog struct {
	limit   int
	events  []Event
	Dropped int
}

// EnableEventLog attaches a structured event log to the cluster and
// returns it. Call before Run. A limit of 0 uses a generous default.
func (c *Cluster) EnableEventLog(limit int) *EventLog {
	if limit <= 0 {
		limit = 1 << 18
	}
	c.events = &EventLog{limit: limit}
	return c.events
}

// emit appends an event if logging is enabled.
func (c *Cluster) emit(kind EventKind, job, task string, tracker int, detail string) {
	if c.events == nil {
		return
	}
	l := c.events
	if len(l.events) >= l.limit {
		// Drop the oldest half in one amortised move — at least one
		// entry, so tiny limits still evict.
		half := l.limit / 2
		if half < 1 {
			half = 1
		}
		n := copy(l.events, l.events[half:])
		l.events = l.events[:n]
		l.Dropped += half
	}
	l.events = append(l.events, Event{
		At: c.clock.Now(), Kind: kind, Job: job, Task: task, Tracker: tracker, Detail: detail,
	})
	if c.inv != nil {
		e := &l.events[len(l.events)-1]
		c.inv.CheckEventAppend(e.At, len(l.events), l.limit)
	}
}

// Events returns a copy of the collected events in emission order. The
// log compacts its storage in place on eviction, so handing out the
// internal slice would let retained snapshots mutate under the caller.
func (l *EventLog) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Filter returns the events of one kind, in order.
func (l *EventLog) Filter(kind EventKind) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSONL streams the log as one JSON object per line.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("mr: encoding event log: %w", err)
		}
	}
	return nil
}
