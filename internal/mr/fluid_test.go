package mr

import (
	"math"
	"testing"
)

// fluidHarness gives tests a cluster whose clock only carries the
// events they create.
func fluidHarness() *Cluster {
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.Net.Nodes = 2
	return MustNewCluster(cfg)
}

func TestOpCompletesAtExactTime(t *testing.T) {
	c := fluidHarness()
	done := -1.0
	c.Mutate(func() {
		c.addOp("x", 10, func() float64 { return 2 }, func() { done = c.clock.Now() })
	})
	c.clock.RunUntilIdle(100)
	if done != 5 {
		t.Fatalf("completed at %v, want 5", done)
	}
}

func TestOpRateChangeMidFlight(t *testing.T) {
	c := fluidHarness()
	rate := 2.0
	done := -1.0
	c.Mutate(func() {
		c.addOp("x", 10, func() float64 { return rate }, func() { done = c.clock.Now() })
	})
	// At t=2.5 (half done), halve the rate: the remaining 5 units take
	// 5 more seconds → completion at 7.5.
	c.clock.Schedule(2.5, "slow", func() {
		c.Mutate(func() { rate = 1 })
	})
	c.clock.RunUntilIdle(100)
	if math.Abs(done-7.5) > 1e-9 {
		t.Fatalf("completed at %v, want 7.5", done)
	}
}

func TestOpZeroRateStalls(t *testing.T) {
	c := fluidHarness()
	rate := 0.0
	done := -1.0
	c.Mutate(func() {
		c.addOp("x", 4, func() float64 { return rate }, func() { done = c.clock.Now() })
	})
	c.clock.Schedule(10, "start", func() {
		c.Mutate(func() { rate = 2 })
	})
	c.clock.RunUntilIdle(100)
	if math.Abs(done-12) > 1e-9 {
		t.Fatalf("completed at %v, want 12 (stalled until 10, then 2s of work)", done)
	}
}

func TestTopUpExtendsCompletion(t *testing.T) {
	c := fluidHarness()
	done := -1.0
	total := -1.0
	var op *fluidOp
	c.Mutate(func() {
		op = c.addOp("x", 10, func() float64 { return 2 }, func() {
			done = c.clock.Now()
			// Fields are intact during onDone; afterwards the op may be
			// reset and recycled by the pool.
			total = op.total
		})
	})
	c.clock.Schedule(2, "topup", func() {
		c.Mutate(func() { c.topUpOp(op, 6) })
	})
	c.clock.RunUntilIdle(100)
	// 10 + 6 = 16 units at rate 2 → 8 seconds.
	if math.Abs(done-8) > 1e-9 {
		t.Fatalf("completed at %v, want 8", done)
	}
	if total != 16 {
		t.Fatalf("total = %v, want 16", total)
	}
}

func TestDropOpCancels(t *testing.T) {
	c := fluidHarness()
	fired := false
	var op *fluidOp
	c.Mutate(func() {
		op = c.addOp("x", 10, func() float64 { return 2 }, func() { fired = true })
	})
	c.clock.Schedule(1, "drop", func() {
		c.Mutate(func() { c.dropOp(op) })
	})
	c.clock.RunUntilIdle(100)
	if fired {
		t.Fatal("dropped op completed")
	}
	// Dropping again is a no-op; dropping nil is a no-op.
	c.Mutate(func() { c.dropOp(op); c.dropOp(nil) })
}

func TestZeroWorkCompletesImmediately(t *testing.T) {
	c := fluidHarness()
	done := -1.0
	c.Mutate(func() {
		c.addOp("x", 0, func() float64 { return 0 }, func() { done = c.clock.Now() })
	})
	c.clock.RunUntilIdle(10)
	if done != 0 {
		t.Fatalf("zero-work op completed at %v, want 0", done)
	}
}

func TestAddOpOutsideMutatePanics(t *testing.T) {
	c := fluidHarness()
	defer func() {
		if recover() == nil {
			t.Fatal("addOp outside Mutate did not panic")
		}
	}()
	c.addOp("x", 1, func() float64 { return 1 }, nil)
}

func TestAddOpInvalidWorkPanics(t *testing.T) {
	c := fluidHarness()
	for _, w := range []float64{-1, math.NaN()} {
		w := w
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("addOp(%v) did not panic", w)
				}
			}()
			c.Mutate(func() { c.addOp("x", w, func() float64 { return 1 }, nil) })
		}()
	}
}

func TestTopUpErrors(t *testing.T) {
	c := fluidHarness()
	var op *fluidOp
	c.Mutate(func() {
		op = c.addOp("x", 1, func() float64 { return 1 }, nil)
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("topUp outside Mutate did not panic")
			}
		}()
		c.topUpOp(op, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative topUp did not panic")
			}
		}()
		c.Mutate(func() { c.topUpOp(op, -1) })
	}()
	c.Mutate(func() { c.dropOp(op) })
	defer func() {
		if recover() == nil {
			t.Fatal("topUp on retired op did not panic")
		}
	}()
	c.Mutate(func() { c.topUpOp(op, 1) })
}

func TestFractionBounds(t *testing.T) {
	op := &fluidOp{total: 10, remaining: 10}
	if op.fraction() != 0 {
		t.Fatalf("fraction = %v, want 0", op.fraction())
	}
	op.remaining = 5
	if op.fraction() != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", op.fraction())
	}
	op.remaining = 0
	if op.fraction() != 1 {
		t.Fatalf("fraction = %v, want 1", op.fraction())
	}
	op.remaining = -1 // clamped
	if op.fraction() != 1 {
		t.Fatal("overshoot not clamped")
	}
	zero := &fluidOp{}
	if zero.fraction() != 1 {
		t.Fatal("zero-total fraction != 1")
	}
}

func TestNestedMutateSettlesOnce(t *testing.T) {
	c := fluidHarness()
	var op *fluidOp
	c.Mutate(func() {
		op = c.addOp("x", 10, func() float64 { return 1 }, nil)
		c.Mutate(func() {
			// Nested scope: op must exist and be untouched.
			if !c.hasOp(op) {
				t.Fatal("op lost in nested mutate")
			}
		})
	})
	if op.lastRate != 1 {
		t.Fatalf("rate not refreshed at outer exit: %v", op.lastRate)
	}
}

func TestManyOpsShareAndComplete(t *testing.T) {
	// N ops with equal rates complete at staggered exact times.
	c := fluidHarness()
	var dones []float64
	c.Mutate(func() {
		for i := 1; i <= 5; i++ {
			i := i
			c.addOp("x", float64(i), func() float64 { return 1 }, func() {
				dones = append(dones, c.clock.Now())
			})
		}
	})
	c.clock.RunUntilIdle(100)
	if len(dones) != 5 {
		t.Fatalf("completed %d ops, want 5", len(dones))
	}
	for i, d := range dones {
		if math.Abs(d-float64(i+1)) > 1e-9 {
			t.Fatalf("op %d completed at %v, want %d", i, d, i+1)
		}
	}
}
