package mr

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"smapreduce/internal/dfs"
	"smapreduce/internal/stats"
)

// This file is the job-history view of a finished run — the runtime's
// answer to Hadoop's job history server. Reports are assembled from
// task state after completion and feed the examples, the CLI and the
// diagnosis of calibration changes.

// TaskReport summarises one logical task.
type TaskReport struct {
	Type       string // "map" or "reduce"
	ID         int
	Tracker    int     // node that ran the winning attempt (-1 if never ran)
	StartedAt  float64 // winning attempt's launch time
	FinishedAt float64 // commit/completion time (0 if unfinished)
	InputMB    float64 // split size (maps) or fetched volume (reduces)
	Done       bool
}

// JobReport is the per-job summary.
type JobReport struct {
	Name       string
	Submitted  float64
	Started    float64
	BarrierAt  float64
	FinishedAt float64

	MapTasks    int
	ReduceTasks int

	// Locality of map executions (by winning attempt).
	DataLocalMaps int
	RackLocalMaps int
	RemoteMaps    int

	// Speculation.
	SpeculativeLaunched int
	SpeculativeWins     int

	// Per-node task spread: how many map tasks each tracker executed.
	MapsPerNode []int

	Tasks []TaskReport
}

// Report builds the job-history view. It is valid on finished and
// unfinished jobs alike (unfinished tasks appear with Done = false).
// The dfs parameter supplies rack topology for locality classification.
func (j *Job) Report(c *Cluster) *JobReport {
	r := &JobReport{
		Name:                j.Spec.Name,
		Submitted:           j.Submitted,
		Started:             j.Started,
		BarrierAt:           j.BarrierAt,
		FinishedAt:          j.FinishedAt,
		MapTasks:            len(j.maps),
		ReduceTasks:         len(j.reduces),
		SpeculativeLaunched: j.SpeculativeLaunched,
		SpeculativeWins:     j.SpeculativeWins,
		MapsPerNode:         make([]int, c.cfg.Workers),
	}
	for _, m := range j.maps {
		tr := TaskReport{Type: "map", ID: m.id, Tracker: -1, InputMB: m.split.SizeMB, Done: m.state == TaskDone}
		if m.outputHost >= 0 {
			tr.Tracker = m.outputHost
			tr.StartedAt = m.started
			tr.FinishedAt = m.finished
			r.MapsPerNode[m.outputHost]++
			switch c.fs.LocalityOf(m.outputHost, m.split) {
			case dfs.Local:
				r.DataLocalMaps++
			case dfs.RackLocal:
				r.RackLocalMaps++
			default:
				r.RemoteMaps++
			}
		}
		r.Tasks = append(r.Tasks, tr)
	}
	for _, rd := range j.reduces {
		tr := TaskReport{Type: "reduce", ID: rd.partition, Tracker: -1, InputMB: rd.fetchedMB, Done: rd.state == TaskDone}
		if rd.tracker != nil {
			tr.Tracker = rd.tracker.id
			tr.StartedAt = rd.started
			tr.FinishedAt = rd.finished
		}
		r.Tasks = append(r.Tasks, tr)
	}
	return r
}

// MapDurationHistogram buckets finished map task durations into a
// 20-cell histogram spanning the observed range — the job-history view
// that makes stragglers and wave structure visible at a glance.
func (r *JobReport) MapDurationHistogram() *stats.Histogram {
	lo, hi := math.Inf(1), math.Inf(-1)
	var durations []float64
	for _, t := range r.Tasks {
		if t.Type != "map" || !t.Done || t.FinishedAt <= t.StartedAt {
			continue
		}
		d := t.FinishedAt - t.StartedAt
		durations = append(durations, d)
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	if len(durations) == 0 {
		return stats.NewHistogram(0, 1, 20)
	}
	if hi <= lo {
		hi = lo + 1
	}
	h := stats.NewHistogram(lo, hi*1.0001, 20)
	for _, d := range durations {
		h.Add(d)
	}
	return h
}

// LocalityFraction reports the share of executed maps that ran
// data-local, in [0,1]. NaN if no map has run.
func (r *JobReport) LocalityFraction() float64 {
	total := r.DataLocalMaps + r.RackLocalMaps + r.RemoteMaps
	if total == 0 {
		return math.NaN()
	}
	return float64(r.DataLocalMaps) / float64(total)
}

// Skew reports the imbalance of map executions across nodes: the ratio
// of the busiest node's map count to the mean. 1.0 is perfectly even.
func (r *JobReport) Skew() float64 {
	counts := make([]float64, 0, len(r.MapsPerNode))
	for _, n := range r.MapsPerNode {
		counts = append(counts, float64(n))
	}
	mean := stats.Mean(counts)
	if mean == 0 {
		return math.NaN()
	}
	return stats.Max(counts) / mean
}

// String renders a compact history summary.
func (r *JobReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "job %s: %d maps, %d reduces\n", r.Name, r.MapTasks, r.ReduceTasks)
	fmt.Fprintf(&b, "  submitted %.1f  started %.1f  barrier %.1f  finished %.1f\n",
		r.Submitted, r.Started, r.BarrierAt, r.FinishedAt)
	total := r.DataLocalMaps + r.RackLocalMaps + r.RemoteMaps
	if total > 0 {
		fmt.Fprintf(&b, "  locality: %d data-local, %d rack-local, %d remote (%.0f%% local)\n",
			r.DataLocalMaps, r.RackLocalMaps, r.RemoteMaps, 100*r.LocalityFraction())
	}
	if r.SpeculativeLaunched > 0 {
		fmt.Fprintf(&b, "  speculation: %d launched, %d won\n", r.SpeculativeLaunched, r.SpeculativeWins)
	}
	if skew := r.Skew(); !math.IsNaN(skew) {
		fmt.Fprintf(&b, "  map spread: busiest node at %.2fx the mean\n", skew)
	}
	if h := r.MapDurationHistogram(); h.N() > 0 {
		fmt.Fprintf(&b, "  map durations: %s (%.1f–%.1f s)\n", h, h.Min(), h.Max())
	}
	return b.String()
}

// SlowestTasks returns the n tasks with the latest start times among
// finished tasks — the stragglers a job-history reader looks for.
func (r *JobReport) SlowestTasks(n int) []TaskReport {
	done := make([]TaskReport, 0, len(r.Tasks))
	for _, t := range r.Tasks {
		if t.Done && t.Tracker >= 0 {
			done = append(done, t)
		}
	}
	// Total order: latest start first, ties broken by type then task id.
	// Reduce waves routinely launch several tasks at the same instant,
	// so without the tiebreakers sort.Slice (unstable) leaves the order
	// of equal-start tasks unspecified between runs.
	sort.Slice(done, func(i, k int) bool {
		if done[i].StartedAt != done[k].StartedAt {
			return done[i].StartedAt > done[k].StartedAt
		}
		if done[i].Type != done[k].Type {
			return done[i].Type < done[k].Type
		}
		return done[i].ID < done[k].ID
	})
	if n > len(done) {
		n = len(done)
	}
	return done[:n]
}
