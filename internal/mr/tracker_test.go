package mr

import (
	"math"
	"testing"

	"smapreduce/internal/puma"
)

func TestLazySlotSemantics(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = Dynamic
	c := MustNewCluster(cfg)
	tt := c.trackers[0]

	if got := tt.freeMapSlots(); got != cfg.MapSlots {
		t.Fatalf("free map slots = %d, want %d", got, cfg.MapSlots)
	}
	// Simulate running tasks beyond a shrunken target: free slots clamp
	// to zero instead of going negative — the lazy changer in action.
	for i := 0; i < 3; i++ {
		tt.runningMaps[&mapTask{id: i}] = struct{}{}
	}
	tt.setTargets(1, 1)
	if got := tt.freeMapSlots(); got != 0 {
		t.Fatalf("free map slots = %d, want 0 under lazy shrink", got)
	}
	// As tasks drain, capacity reappears only below the target.
	for m := range tt.runningMaps {
		delete(tt.runningMaps, m)
		break
	}
	if got := tt.freeMapSlots(); got != 0 {
		t.Fatalf("free map slots = %d, want 0 with 2 running and target 1", got)
	}
}

func TestSetTargetsPanicsOnNonPositive(t *testing.T) {
	c := MustNewCluster(smallConfig())
	tt := c.trackers[0]
	defer func() {
		if recover() == nil {
			t.Fatal("setTargets(0, 1) did not panic")
		}
	}()
	tt.setTargets(0, 1)
}

func TestSetTargetsNoopWhenUnchanged(t *testing.T) {
	c := MustNewCluster(smallConfig())
	tt := c.trackers[0]
	tt.setTargets(tt.mapTarget, tt.reduceTarget)
	if tt.disturbance != nil {
		t.Fatal("no-op target change applied a disturbance")
	}
}

func TestDisturbanceAppliedAndExpires(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = Dynamic
	c := MustNewCluster(cfg)
	tt := c.trackers[0]
	base := tt.node.PressureLevel()
	c.Mutate(func() { tt.setTargets(5, 2) })
	if tt.node.PressureLevel() <= base {
		t.Fatal("slot change did not perturb the node")
	}
	c.clock.RunUntilIdle(100)
	if math.Abs(tt.node.PressureLevel()-base) > 1e-12 {
		t.Fatalf("disturbance did not expire: %v", tt.node.PressureLevel())
	}
}

func TestDisturbanceExtendsOnRapidChanges(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = Dynamic
	c := MustNewCluster(cfg)
	tt := c.trackers[0]
	c.Mutate(func() { tt.setTargets(5, 2) })
	c.Mutate(func() { tt.setTargets(6, 2) })
	if tt.disturbance == nil {
		t.Fatal("disturbance missing after back-to-back changes")
	}
	// Exactly one phantom is registered despite two changes.
	if got := tt.node.Len(); got != 1 {
		t.Fatalf("node holds %d activities, want 1", got)
	}
	c.clock.RunUntilIdle(100)
	if tt.disturbance != nil {
		t.Fatal("disturbance not cleared")
	}
}

func TestYARNMemoryMath(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = YARN
	cfg.MapSlots, cfg.ReduceSlots = 3, 2
	cfg.MapContainerMB, cfg.ReduceContainerMB = 2048, 3072
	c := MustNewCluster(cfg)
	tt := c.trackers[0]

	// Pool = 3·2048 + 2·3072 = 12288 MB.
	if got := tt.freeMemMB(); got != 12288 {
		t.Fatalf("freeMem = %v, want 12288", got)
	}
	// Empty cluster, no reduce demand: maps may fill the whole pool.
	if got := tt.freeMapSlots(); got != 6 {
		t.Fatalf("map burst = %d, want 6", got)
	}
	// Occupy two reduce containers: 12288 − 6144 = 6144 → 3 maps.
	tt.runningReduces[&reduceTask{partition: 0}] = struct{}{}
	tt.runningReduces[&reduceTask{partition: 1}] = struct{}{}
	if got := tt.freeMapSlots(); got != 3 {
		t.Fatalf("maps with reduces = %d, want 3", got)
	}
	if got := tt.freeReduceSlots(); got != 2 {
		t.Fatalf("free reduces = %d, want 2 (6144/3072)", got)
	}
}

func TestEagerKillsSurplus(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = Dynamic
	cfg.EagerSlotChange = true
	c := MustNewCluster(cfg)
	ctrl := &shrinkController{}
	if err := c.SetController(ctrl); err != nil {
		t.Fatal(err)
	}
	jobs, err := c.Run(grepJob(2048))
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("unfinished")
	}
	if !ctrl.shrunk {
		t.Skip("controller never shrank; nothing to verify")
	}
	// The job still completes with every map run exactly to completion
	// (kills requeued, not lost).
	if jobs[0].MapsDone() != jobs[0].NumMaps() {
		t.Fatal("map accounting broken after eager kills")
	}
}

// shrinkController forces a drastic shrink mid-run to exercise the
// eager kill path.
type shrinkController struct {
	ticks  int
	shrunk bool
}

func (s *shrinkController) Interval() float64 { return 4 }
func (s *shrinkController) Tick(c *Cluster) {
	s.ticks++
	if s.ticks == 2 {
		for _, tt := range c.Trackers() {
			c.JobTracker().SetDesiredSlots(tt.ID(), 1, 1)
		}
		s.shrunk = true
	}
}

func TestEagerVsLazyDiffer(t *testing.T) {
	run := func(eager bool) float64 {
		cfg := smallConfig()
		cfg.Policy = Dynamic
		cfg.EagerSlotChange = eager
		c := MustNewCluster(cfg)
		if err := c.SetController(&shrinkController{}); err != nil {
			t.Fatal(err)
		}
		jobs, err := c.Run(grepJob(2048))
		if err != nil {
			t.Fatal(err)
		}
		return jobs[0].FinishedAt
	}
	lazy := run(false)
	eager := run(true)
	if lazy == eager {
		t.Fatal("eager and lazy slot changes produced identical timelines")
	}
	// Killing in-flight work must not be faster here: the shrink lands
	// mid-wave and eager pays re-execution.
	if eager < lazy {
		t.Fatalf("eager (%v) beat lazy (%v) on a mid-wave shrink", eager, lazy)
	}
}

func TestTrackerAccessors(t *testing.T) {
	c := MustNewCluster(smallConfig())
	tt := c.trackers[2]
	if tt.ID() != 2 {
		t.Fatal("ID")
	}
	if tt.MapSlots() != smallConfig().MapSlots || tt.ReduceSlots() != smallConfig().ReduceSlots {
		t.Fatal("slot accessors")
	}
	if tt.RunningMaps() != 0 || tt.RunningReduces() != 0 || tt.Failed() {
		t.Fatal("fresh tracker state")
	}
}

func TestSchedulerKindString(t *testing.T) {
	if FIFO.String() != "fifo" || Fair.String() != "fair" {
		t.Fatal("scheduler strings")
	}
	if SchedulerKind(7).String() == "" {
		t.Fatal("unknown kind")
	}
}

func TestFairSchedulerInterleaves(t *testing.T) {
	// Two same-size jobs submitted together: under FIFO the first
	// hogs the slots; under Fair both progress and finish closer
	// together.
	gap := func(kind SchedulerKind) float64 {
		cfg := smallConfig()
		cfg.Scheduler = kind
		c := MustNewCluster(cfg)
		specs := []JobSpec{
			{Name: "a", Profile: puma.MustGet("grep"), InputMB: 2048, Reduces: 4, SubmitAt: 0},
			{Name: "b", Profile: puma.MustGet("grep"), InputMB: 2048, Reduces: 4, SubmitAt: 0.5},
		}
		jobs, err := c.Run(specs...)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(jobs[1].FinishedAt - jobs[0].FinishedAt)
	}
	fifoGap := gap(FIFO)
	fairGap := gap(Fair)
	if fairGap >= fifoGap {
		t.Fatalf("fair gap (%v) not below FIFO gap (%v)", fairGap, fifoGap)
	}
}

func TestPrioritySchedulerOrder(t *testing.T) {
	cfg := smallConfig()
	cfg.Scheduler = Priority
	c := MustNewCluster(cfg)
	lowSpec := JobSpec{Name: "low", Profile: puma.MustGet("grep"), InputMB: 4 * 128, Reduces: 2, Priority: 1}
	highSpec := JobSpec{Name: "high", Profile: puma.MustGet("grep"), InputMB: 4 * 128, Reduces: 2, Priority: 5}
	fileLow, _ := c.fs.Create("input/low", lowSpec.InputMB)
	fileHigh, _ := c.fs.Create("input/high", highSpec.InputMB)
	low := newJob(0, lowSpec, fileLow, c.cfg.NodeSpec.Beta, c.cfg.Workers)
	high := newJob(1, highSpec, fileHigh, c.cfg.NodeSpec.Beta, c.cfg.Workers)
	c.Mutate(func() {
		c.jt.admit(low)
		c.jt.admit(high)
	})
	// Despite low being admitted first, the high-priority job's maps
	// are picked first.
	tt := c.trackers[0]
	for i := 0; i < 4; i++ {
		m := c.jt.nextMap(tt)
		if m.job != high {
			t.Fatalf("pick %d from %s, want high-priority job", i, m.job.Spec.Name)
		}
		m.state = TaskRunning
	}
	if m := c.jt.nextMap(tt); m == nil || m.job != low {
		t.Fatal("low-priority job starved even after high drained")
	}
}

func TestPrioritySchedulerEndToEnd(t *testing.T) {
	run := func(kind SchedulerKind) (highFinish, lowFinish float64) {
		cfg := smallConfig()
		cfg.Scheduler = kind
		c := MustNewCluster(cfg)
		specs := []JobSpec{
			{Name: "low", Profile: puma.MustGet("grep"), InputMB: 2048, Reduces: 4, Priority: 0},
			{Name: "high", Profile: puma.MustGet("grep"), InputMB: 2048, Reduces: 4, Priority: 9, SubmitAt: 1},
		}
		jobs, err := c.Run(specs...)
		if err != nil {
			t.Fatal(err)
		}
		return jobs[1].FinishedAt, jobs[0].FinishedAt
	}
	fifoHigh, _ := run(FIFO)
	prioHigh, prioLow := run(Priority)
	// Priority must pull the late-submitted high-priority job forward.
	if prioHigh >= fifoHigh {
		t.Fatalf("priority scheduling did not help the high job: %v vs FIFO %v", prioHigh, fifoHigh)
	}
	if prioHigh >= prioLow {
		t.Fatal("high-priority job finished after the low one")
	}
}

func TestTransientSlowdownAndSpeculation(t *testing.T) {
	// A transient noisy neighbour degrades one node mid-run; with
	// speculation enabled the job recovers most of the loss.
	run := func(slow, speculate bool) float64 {
		cfg := DefaultConfig()
		cfg.Workers = 8
		cfg.Net.Nodes = 8
		cfg.Speculation = speculate
		cfg.SpeculationMinRuntime = 3
		c := MustNewCluster(cfg)
		if slow {
			c.ScheduleSlowdown(3, 3.0, 5, 60)
		}
		jobs, err := c.Run(JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 8192, Reduces: 8})
		if err != nil {
			t.Fatal(err)
		}
		return jobs[0].FinishedAt
	}
	clean := run(false, false)
	degraded := run(true, false)
	rescued := run(true, true)
	if degraded <= clean {
		t.Fatalf("slowdown had no effect: %v vs %v", degraded, clean)
	}
	if rescued >= degraded {
		t.Fatalf("speculation did not rescue the transient straggler: %v vs %v", rescued, degraded)
	}
}

func TestScheduleSlowdownValidation(t *testing.T) {
	c := MustNewCluster(smallConfig())
	for _, f := range []func(){
		func() { c.ScheduleSlowdown(-1, 1, 0, 1) },
		func() { c.ScheduleSlowdown(0, 0, 0, 1) },
		func() { c.ScheduleSlowdown(0, 1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad ScheduleSlowdown did not panic")
				}
			}()
			f()
		}()
	}
}
