package mr

import (
	"math"
	"strings"
	"testing"

	"smapreduce/internal/puma"
)

func TestJobReportBasics(t *testing.T) {
	c := MustNewCluster(smallConfig())
	jobs, err := c.Run(grepJob(1024))
	if err != nil {
		t.Fatal(err)
	}
	r := jobs[0].Report(c)
	if r.MapTasks != 8 || r.ReduceTasks != 8 {
		t.Fatalf("task counts: %d/%d", r.MapTasks, r.ReduceTasks)
	}
	if len(r.Tasks) != 16 {
		t.Fatalf("tasks = %d, want 16", len(r.Tasks))
	}
	for _, task := range r.Tasks {
		if !task.Done {
			t.Fatalf("unfinished task in finished job: %+v", task)
		}
		if task.Tracker < 0 || task.Tracker >= smallConfig().Workers {
			t.Fatalf("bad tracker %d", task.Tracker)
		}
	}
	total := r.DataLocalMaps + r.RackLocalMaps + r.RemoteMaps
	if total != r.MapTasks {
		t.Fatalf("locality buckets sum %d, want %d", total, r.MapTasks)
	}
	// With 3x replication on 4 nodes, locality should be near-perfect.
	if r.LocalityFraction() < 0.5 {
		t.Fatalf("locality fraction %v suspiciously low", r.LocalityFraction())
	}
	out := r.String()
	for _, want := range []string{"job grep", "locality", "barrier"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestJobReportSkew(t *testing.T) {
	c := MustNewCluster(smallConfig())
	jobs, err := c.Run(grepJob(4096))
	if err != nil {
		t.Fatal(err)
	}
	r := jobs[0].Report(c)
	skew := r.Skew()
	if math.IsNaN(skew) || skew < 1 {
		t.Fatalf("skew = %v", skew)
	}
	if skew > 2.5 {
		t.Fatalf("map spread wildly uneven: %v", skew)
	}
	sum := 0
	for _, n := range r.MapsPerNode {
		sum += n
	}
	if sum != r.MapTasks {
		t.Fatalf("per-node counts sum %d, want %d", sum, r.MapTasks)
	}
}

func TestJobReportSlowestTasks(t *testing.T) {
	c := MustNewCluster(smallConfig())
	jobs, err := c.Run(grepJob(2048))
	if err != nil {
		t.Fatal(err)
	}
	r := jobs[0].Report(c)
	slow := r.SlowestTasks(3)
	if len(slow) != 3 {
		t.Fatalf("slowest = %d tasks", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].StartedAt > slow[i-1].StartedAt {
			t.Fatal("slowest tasks not sorted by start time")
		}
	}
	if got := r.SlowestTasks(10_000); len(got) != len(r.Tasks) {
		t.Fatalf("oversized n returned %d", len(got))
	}
}

func TestJobReportUnfinished(t *testing.T) {
	// A report on a never-run job has no localities and NaN skew.
	c := MustNewCluster(smallConfig())
	file, err := c.fs.Create("input/x", 1024)
	if err != nil {
		t.Fatal(err)
	}
	j := newJob(0, JobSpec{Name: "x", Profile: puma.MustGet("grep"), InputMB: 1024, Reduces: 4}, file, c.cfg.NodeSpec.Beta, c.cfg.Workers)
	r := j.Report(c)
	if !math.IsNaN(r.LocalityFraction()) || !math.IsNaN(r.Skew()) {
		t.Fatal("empty report produced numbers")
	}
	for _, task := range r.Tasks {
		if task.Done || task.Tracker != -1 {
			t.Fatalf("phantom execution in report: %+v", task)
		}
	}
}

func TestJobReportSpeculationCounters(t *testing.T) {
	cfg := stragglerConfig(true)
	c := MustNewCluster(cfg)
	jobs, err := c.Run(JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 8192, Reduces: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := jobs[0].Report(c)
	if r.SpeculativeLaunched == 0 {
		t.Fatal("speculation counters not propagated to report")
	}
	if !strings.Contains(r.String(), "speculation") {
		t.Fatal("report omits speculation line")
	}
}

func TestMapDurationHistogram(t *testing.T) {
	c := MustNewCluster(smallConfig())
	jobs, err := c.Run(grepJob(2048))
	if err != nil {
		t.Fatal(err)
	}
	r := jobs[0].Report(c)
	h := r.MapDurationHistogram()
	if h.N() != r.MapTasks {
		t.Fatalf("histogram has %d samples, want %d", h.N(), r.MapTasks)
	}
	if h.Mean() <= 0 {
		t.Fatal("non-positive mean duration")
	}
	// Jittered costs spread durations: min < max.
	if !(h.Min() < h.Max()) {
		t.Fatalf("durations degenerate: %v..%v", h.Min(), h.Max())
	}
	if !strings.Contains(r.String(), "map durations") {
		t.Fatal("report omits duration line")
	}
}
