package mr

import (
	"fmt"
	"math"
	"os"

	"smapreduce/internal/dfs"
	"smapreduce/internal/metrics"
	"smapreduce/internal/netsim"
	"smapreduce/internal/resource"
	"smapreduce/internal/sim"
	"smapreduce/internal/telemetry"
	"smapreduce/internal/trace"
)

// Controller retunes slot targets at runtime; SMapReduce's slot manager
// (internal/core) implements it. Tick runs on the job tracker under a
// mutation scope, so it may inspect Stats and call SetDesiredSlots but
// must not block.
type Controller interface {
	// Interval is the period between Tick calls, in virtual seconds.
	Interval() float64
	// Tick observes the cluster and may adjust per-tracker slot targets.
	Tick(c *Cluster)
}

// Cluster is one simulated MapReduce deployment: substrate, trackers,
// job tracker and the fluid-work engine.
type Cluster struct {
	cfg    Config
	clock  *sim.Clock
	rng    *sim.Rand
	nodes  []*resource.Node
	fabric *netsim.Fabric
	fs     *dfs.FS

	trackers []*TaskTracker
	jt       *JobTracker

	ops      []*fluidOp
	mutDepth int

	// Dirty-op tracking for incremental refresh: ops queued for the
	// next refreshDirty, per-node op lists, and the loose ops refreshed
	// every scope (test harness closures). Flow-bound ops are reached
	// through Flow.Userdata rather than a lookup table.
	dirtyOps []*fluidOp
	looseOps []*fluidOp
	nodeOps  [][]*fluidOp

	controller   Controller
	ctrlEvent    sim.EventRef
	sampleEvent  sim.EventRef
	activeJobs   int
	jobsToSubmit int
	started      bool
	stopped      bool
	nextJobID    int
	arrivalErr   error

	// Multi-tenant capacity management (capacity.go): the attached
	// policy, its periodic tick, the applied per-tenant task caps and
	// running counters, the sorted tenant name list and the decision log.
	capacity      CapacityPolicy
	capEvent      sim.EventRef
	capFn         func()
	tenantCaps        map[string]int
	tenantRunning     map[string]int
	tenantRunningMaps map[string]int
	tenantNames   []string
	capLog        []CapacityDecision

	// sampleFn/ctrlFn are the periodic tick callbacks, bound once so
	// re-arming the sampler and controller each tick does not allocate
	// a fresh closure.
	sampleFn func()
	ctrlFn   func()

	// Object pooling. opPool recycles retired fluidOps; flow recycling
	// lives on the fabric. noPool (Config.NoPooling or SMR_NO_POOL=1)
	// disables both for the pooled-vs-unpooled differential verifier.
	opPool []*fluidOp
	noPool bool

	// Trace, when non-nil, receives one line per notable runtime event
	// (slot changes, barriers, job completion). Used by the examples.
	Trace func(format string, args ...any)

	// onProgress, when set, receives aggregate Progress snapshots at
	// milestone instants (progress.go) — the serve mode's live stream.
	onProgress func(Progress)

	// events, when enabled, collects the structured runtime log.
	events *EventLog

	// util, when enabled, records cluster-wide utilisation series.
	util *Utilisation

	// telem, when enabled, samples the registered probe series on the
	// progress sampler's cadence.
	telem *telemetry.Collector

	// inv is the runtime invariant checker; nil unless invariant
	// checking is enabled (test binaries, SMR_INVARIANTS=1).
	inv *telemetry.Invariants

	// tracer records span/instant traces; nil when tracing is off
	// (every emit point no-ops on the nil receiver). flowSpans maps
	// live fabric flows to their open spans at VerbosityFlows+.
	tracer    *trace.Tracer
	flowSpans map[*netsim.Flow]trace.SpanRef
}

// Utilisation holds cluster-wide time series sampled on the progress
// sampler's cadence: occupied slots and heartbeat-smoothed rates.
type Utilisation struct {
	RunningMaps    *metrics.Series
	RunningReduces *metrics.Series
	MapInputMBps   *metrics.Series
	ShuffleMBps    *metrics.Series
}

// EnableUtilisation attaches utilisation recording. Call before Run.
func (c *Cluster) EnableUtilisation() *Utilisation {
	c.util = &Utilisation{
		RunningMaps:    metrics.NewSeries("running-maps"),
		RunningReduces: metrics.NewSeries("running-reduces"),
		MapInputMBps:   metrics.NewSeries("map-input-MBps"),
		ShuffleMBps:    metrics.NewSeries("shuffle-MBps"),
	}
	return c.util
}

// EnableTelemetry attaches a collector and registers the cluster's
// probe series: cluster-wide task counts and cumulative MB counters,
// per-tracker slot targets and occupancy, per-node CPU utilisation and
// the aggregate fabric throughput. Call before Run; every series is
// sampled on the progress sampler's cadence (Config.SampleInterval).
func (c *Cluster) EnableTelemetry(col *telemetry.Collector) {
	c.telem = col
	col.Register("cluster/running-maps", func() float64 {
		n := 0
		for _, tt := range c.trackers {
			n += len(tt.runningMaps)
		}
		return float64(n)
	})
	col.Register("cluster/running-reduces", func() float64 {
		n := 0
		for _, tt := range c.trackers {
			n += len(tt.runningReduces)
		}
		return float64(n)
	})
	col.Register("cluster/pending-maps", func() float64 { return float64(c.jt.PendingMapCount()) })
	col.Register("cluster/pending-reduces", func() float64 { return float64(c.jt.PendingReduceCount()) })
	col.Register("cluster/map-input-MB", func() float64 {
		s := 0.0
		for _, tt := range c.trackers {
			s += tt.mapInputDoneMB + tt.inFlightMapInputMB()
		}
		return s
	})
	col.Register("cluster/map-output-MB", func() float64 {
		s := 0.0
		for _, tt := range c.trackers {
			s += tt.mapOutputDoneMB + tt.inFlightMapOutputMB()
		}
		return s
	})
	col.Register("cluster/shuffle-MB", func() float64 {
		s := 0.0
		for _, tt := range c.trackers {
			s += tt.shuffleDoneMB + tt.inFlightShuffleMB()
		}
		return s
	})
	col.Register("cluster/map-input-MBps", func() float64 {
		s := 0.0
		for _, tt := range c.trackers {
			s += tt.mapInputRate.Value()
		}
		return s
	})
	col.Register("cluster/shuffle-MBps", func() float64 {
		s := 0.0
		for _, tt := range c.trackers {
			s += tt.shuffleRate.Value()
		}
		return s
	})
	col.Register("net/total-MBps", c.fabric.TotalRate)
	// Fault-model gauges (internal/chaos): how much of the cluster is
	// currently dead, silenced or running degraded.
	col.Register("cluster/failed-trackers", func() float64 {
		n := 0
		for _, tt := range c.trackers {
			if tt.failed {
				n++
			}
		}
		return float64(n)
	})
	col.Register("cluster/unschedulable-trackers", func() float64 {
		n := 0
		for _, tt := range c.trackers {
			if !tt.schedulable() {
				n++
			}
		}
		return float64(n)
	})
	col.Register("cluster/degraded-nodes", func() float64 {
		n := 0
		for _, node := range c.nodes {
			if cpu, disk := node.ServiceScale(); cpu != 1 || disk != 1 {
				n++
			}
		}
		return float64(n)
	})
	for i, tt := range c.trackers {
		tt := tt
		col.Register(fmt.Sprintf("tt%d/map-slots", i), func() float64 { return float64(tt.mapTarget) })
		col.Register(fmt.Sprintf("tt%d/reduce-slots", i), func() float64 { return float64(tt.reduceTarget) })
		col.Register(fmt.Sprintf("tt%d/running-maps", i), func() float64 { return float64(len(tt.runningMaps)) })
		col.Register(fmt.Sprintf("tt%d/running-reduces", i), func() float64 { return float64(len(tt.runningReduces)) })
	}
	for i, node := range c.nodes {
		node := node
		col.Register(fmt.Sprintf("node%d/cpu-util", i), node.Utilisation)
	}
}

// NewCluster builds a cluster from cfg. Invalid configs return an error.
func NewCluster(cfg Config) (*Cluster, error) {
	return newCluster(cfg, nil)
}

// newCluster builds a cluster, adopting st's recycled substrate when
// non-nil (see NewClusterReusing).
func newCluster(cfg Config, st *SimState) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net := cfg.Net
	net.Nodes = cfg.Workers
	// Heartbeat-loss handling defaults scale with the heartbeat period
	// so custom configs predating the fault model keep working.
	if cfg.BlacklistTimeout == 0 {
		cfg.BlacklistTimeout = 3 * cfg.HeartbeatPeriod
	}
	if cfg.ProbationPeriod == 0 {
		cfg.ProbationPeriod = 5 * cfg.HeartbeatPeriod
	}
	var clock *sim.Clock
	var fabric *netsim.Fabric
	if st == nil {
		clock, fabric = sim.NewClock(), netsim.NewFabric(net)
	} else {
		if st.clock == nil {
			st.clock = sim.NewClock()
		} else {
			st.clock.Reset()
		}
		if st.fabric == nil {
			st.fabric = netsim.NewFabric(net)
		} else {
			st.fabric.Reset(net)
		}
		clock, fabric = st.clock, st.fabric
	}
	rng := sim.NewRand(cfg.Seed)
	c := &Cluster{
		cfg:     cfg,
		clock:   clock,
		rng:     rng.Fork(0),
		fabric:  fabric,
		fs:      dfs.New(cfg.Workers, cfg.DFS, rng.Fork(1)),
		nodeOps: make([][]*fluidOp, cfg.Workers),
		inv:     telemetry.NewInvariants(),
	}
	// The runtime batches flow changes per mutation scope and resolves
	// perturbed components once in refreshDirty. The rate listener
	// marks the ops of flows whose allocation actually moved.
	c.fabric.SetAutoRecompute(false)
	c.fabric.SetRateListener(func(f *netsim.Flow) {
		if op, ok := f.Userdata.(*fluidOp); ok {
			c.markOpDirty(op)
		}
	})
	if cfg.FullResolve || os.Getenv("SMR_FULL_RESOLVE") == "1" {
		c.fabric.SetFullResolve(true)
	}
	if cfg.NoPooling || os.Getenv("SMR_NO_POOL") == "1" {
		c.noPool = true
	}
	c.clock.SetHeapOnly(cfg.HeapSched || os.Getenv("SMR_HEAP_SCHED") == "1")
	for i := 0; i < cfg.Workers; i++ {
		spec := cfg.NodeSpec
		if cfg.NodeSpecs != nil {
			spec = cfg.NodeSpecs[i]
		}
		node := resource.NewNode(i, spec)
		id := i
		node.SetChangeHook(func() { c.markNodeOpsDirty(id) })
		c.nodes = append(c.nodes, node)
		c.trackers = append(c.trackers, newTaskTracker(c, i, node))
	}
	c.jt = newJobTracker(c)
	return c, nil
}

// MustNewCluster is NewCluster for static experiment setup.
func MustNewCluster(cfg Config) *Cluster {
	c, err := NewCluster(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// newFlow builds a shuffle/read/replication flow, recycled from the
// fabric's pool unless pooling is disabled. The caller registers it
// with c.fabric.Add and must pair every removal with releaseFlow.
func (c *Cluster) newFlow(src, dst int, mb, capMBps float64, label string) *netsim.Flow {
	var f *netsim.Flow
	if c.noPool {
		f = &netsim.Flow{}
	} else {
		f = c.fabric.AcquireFlow()
	}
	f.Src, f.Dst = src, dst
	f.RemainingMB, f.CapMBps = mb, capMBps
	f.Label = label
	return f
}

// releaseFlow returns an unregistered flow to the fabric pool. The
// flow must already be Removed and unbound from its op (dropOp or
// completion), and the caller must clear its own pointer: the object
// may be reincarnated as an unrelated flow on the next acquire.
func (c *Cluster) releaseFlow(f *netsim.Flow) {
	if c.noPool {
		return
	}
	c.fabric.ReleaseFlow(f)
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Now returns the current virtual time.
func (c *Cluster) Now() float64 { return c.clock.Now() }

// FS exposes the simulated file system (input staging).
func (c *Cluster) FS() *dfs.FS { return c.fs }

// JobTracker exposes the master, primarily for SetDesiredSlots.
func (c *Cluster) JobTracker() *JobTracker { return c.jt }

// Trackers returns the task trackers.
func (c *Cluster) Trackers() []*TaskTracker { return c.trackers }

// NodeSpecOf returns the hardware spec of one worker.
func (c *Cluster) NodeSpecOf(i int) resource.Spec { return c.nodes[i].Spec() }

// Jobs returns every job admitted so far, in submission order.
func (c *Cluster) Jobs() []*Job { return c.jt.jobs }

// SetController attaches a slot controller. Only meaningful with the
// Dynamic policy; attaching one under another policy is rejected so a
// misconfigured experiment fails loudly.
func (c *Cluster) SetController(ctrl Controller) error {
	if c.cfg.Policy != Dynamic {
		return fmt.Errorf("mr: controller requires the Dynamic policy, have %v", c.cfg.Policy)
	}
	if ctrl.Interval() <= 0 {
		return fmt.Errorf("mr: controller interval %v must be positive", ctrl.Interval())
	}
	c.controller = ctrl
	return nil
}

// tracef emits a trace line if tracing is enabled.
func (c *Cluster) tracef(format string, args ...any) {
	if c.Trace != nil {
		c.Trace("[%9.2f] "+format, append([]any{c.clock.Now()}, args...)...)
	}
}

// Run submits the given jobs at their SubmitAt times and drives the
// simulation until all of them finish. It returns the completed jobs in
// submission order. Run may only be called once per cluster.
func (c *Cluster) Run(specs ...JobSpec) ([]*Job, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("mr: Run with no jobs")
	}
	if c.started || c.stopped || len(c.jt.jobs) > 0 {
		return nil, fmt.Errorf("mr: Run called twice")
	}
	for _, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
	}

	// Stage inputs up front, in spec order.
	jobs := make([]*Job, 0, len(specs))
	for _, spec := range specs {
		j, err := c.stageJob(spec)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}

	c.jobsToSubmit = len(jobs)
	c.activeJobs = 0
	for _, j := range jobs {
		j := j
		c.clock.Schedule(j.Spec.SubmitAt, "submit "+j.Spec.Name, func() {
			c.jobsToSubmit--
			c.submitJob(j)
		})
	}

	c.start()
	c.drive()

	for _, j := range jobs {
		if !j.Finished() {
			return jobs, fmt.Errorf("mr: job %s did not finish (maps %d/%d, reduces %d/%d)",
				j.Spec.Name, j.mapsDone, len(j.maps), j.reducesDone, len(j.reduces))
		}
	}
	return jobs, nil
}

// ArrivalSource produces an open-ended stream of job submissions for
// RunArrivals. Next returns the next job and its absolute submission
// time in virtual seconds; ok=false ends the stream. Times must be
// non-decreasing. Sources must be deterministic: all randomness drawn
// from seeded streams (internal/arrival reserves fork 3 of the cluster
// seed), never from the wall clock or the global RNG.
type ArrivalSource interface {
	Next() (spec JobSpec, at float64, ok bool)
}

// RunArrivals pulls jobs from src as the simulation advances — an open
// arrival process, in contrast to Run's fixed job list — and drives the
// simulation until the stream ends and every submitted job finishes.
// It returns the completed jobs in submission order. Like Run it may
// only be called once per cluster.
func (c *Cluster) RunArrivals(src ArrivalSource) ([]*Job, error) {
	if c.started || c.stopped || len(c.jt.jobs) > 0 {
		return nil, fmt.Errorf("mr: RunArrivals called twice")
	}
	spec, at, ok := src.Next()
	if !ok {
		return nil, fmt.Errorf("mr: RunArrivals with an empty arrival source")
	}
	c.jobsToSubmit = 1 // the staged next arrival keeps shutdown at bay
	c.activeJobs = 0
	c.scheduleArrival(src, spec, at)

	c.start()
	c.drive()

	jobs := append([]*Job(nil), c.jt.jobs...)
	if c.arrivalErr != nil {
		return jobs, c.arrivalErr
	}
	for _, j := range jobs {
		if !j.Finished() {
			return jobs, fmt.Errorf("mr: job %s did not finish (maps %d/%d, reduces %d/%d)",
				j.Spec.Name, j.mapsDone, len(j.maps), j.reducesDone, len(j.reduces))
		}
	}
	return jobs, nil
}

// scheduleArrival arms the submission of one arrived job and, when it
// fires, pulls the following arrival — a chained event per job, so the
// source is consumed lazily as virtual time reaches each arrival.
func (c *Cluster) scheduleArrival(src ArrivalSource, spec JobSpec, at float64) {
	if at < c.clock.Now() {
		at = c.clock.Now()
	}
	c.clock.Schedule(at, "arrival "+spec.Name, func() {
		c.jobsToSubmit--
		j, err := c.stageJob(spec)
		if err != nil {
			// A malformed arrival poisons the run: record the first
			// error, stop pulling, and let the admitted jobs drain.
			if c.arrivalErr == nil {
				c.arrivalErr = fmt.Errorf("mr: arrival %s: %w", spec.Name, err)
			}
			c.tracef("arrival %s rejected: %v", spec.Name, err)
			if c.activeJobs == 0 && c.jobsToSubmit == 0 {
				c.shutdown()
			}
			return
		}
		c.submitJob(j)
		if next, nextAt, ok := src.Next(); ok {
			c.jobsToSubmit++
			c.scheduleArrival(src, next, nextAt)
		}
	})
}

// Submit stages and admits one job at the current virtual time — the
// mid-simulation submission path used by arrival events and tests. It
// may be called from any scheduled callback while the simulation is
// live; once the cluster has shut down submissions are rejected.
func (c *Cluster) Submit(spec JobSpec) (*Job, error) {
	if c.stopped {
		return nil, fmt.Errorf("mr: Submit(%s) after cluster shutdown", spec.Name)
	}
	j, err := c.stageJob(spec)
	if err != nil {
		return nil, err
	}
	c.submitJob(j)
	return j, nil
}

// stageJob validates a spec, stages its input file and materialises the
// job's tasks. Job IDs count up in staging order.
func (c *Cluster) stageJob(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	id := c.nextJobID
	name := fmt.Sprintf("input/%s-%d", spec.Name, id)
	file, err := c.fs.Create(name, spec.InputMB)
	if err != nil {
		return nil, err
	}
	c.nextJobID++
	return newJob(id, spec, file, c.cfg.NodeSpec.Beta, c.cfg.Workers), nil
}

// submitJob admits a staged job at the current virtual time and kicks
// every tracker so assignment starts immediately rather than waiting up
// to a heartbeat period.
func (c *Cluster) submitJob(j *Job) {
	c.activeJobs++
	c.Mutate(func() {
		c.jt.admit(j)
		c.registerTenant(j)
		c.traceJobBegin(j)
		detail := fmt.Sprintf("%d maps, %d reduces", j.NumMaps(), j.NumReduces())
		if j.Spec.Tenant != "" {
			detail += ", tenant " + j.Spec.Tenant
		}
		c.emit(EvJobSubmitted, j.Spec.Name, "", -1, detail)
		c.tracef("submit job %s (%d maps, %d reduces, %.0f MB)",
			j.Spec.Name, j.NumMaps(), j.NumReduces(), j.Spec.InputMB)
		c.progressMilestone(MilestoneJobSubmit, j.Spec.Name)
		for _, tt := range c.trackers {
			c.jt.assign(tt)
		}
	})
}

// start arms the periodic machinery: staggered heartbeats, progress
// sampler, controller and capacity ticks. Each chain is one
// SchedulePeriodic event that re-arms in place — no alloc/free per
// beat and a stable ref for the chain's whole life.
func (c *Cluster) start() {
	c.started = true
	for i, tt := range c.trackers {
		offset := c.cfg.HeartbeatPeriod * float64(i) / float64(len(c.trackers))
		tt.lastHB = 0
		// Keep the ref: a fault injected before the first beat (crash,
		// heartbeat loss) must be able to cancel the pending chain.
		tt.hbEvent = c.clock.SchedulePeriodic(offset, c.cfg.HeartbeatPeriod, tt.hbLabel, tt.hbFn)
	}
	c.scheduleSampler()
	if c.controller != nil {
		c.scheduleController()
	}
	if c.capacity != nil {
		c.scheduleCapacity()
	}
}

// drive runs the event loop until the queue drains. The event bound is
// generous: a runaway simulation indicates a runtime bug and panics
// inside the clock.
func (c *Cluster) drive() {
	c.clock.RunUntilIdle(200_000_000)
}

// scheduleSampler records progress curves for all running jobs. One
// periodic event drives the whole chain: the clock re-arms it in place
// every SampleInterval, so steady-state sampling does not allocate and
// shutdown's Cancel stops the chain wherever it is.
func (c *Cluster) scheduleSampler() {
	if c.sampleFn == nil {
		c.sampleFn = c.sampleTick
	}
	c.sampleEvent = c.clock.SchedulePeriodic(
		c.clock.Now()+c.cfg.SampleInterval, c.cfg.SampleInterval, "sample", c.sampleFn)
}

func (c *Cluster) sampleTick() {
	// No settle pass needed: op fractions settle lazily on read.
	now := c.clock.Now()
	for _, j := range c.jt.jobs {
		if j.Submitted >= 0 && !j.Finished() {
			j.Progress.Sample(now, j.mapProgressPct(), j.reduceProgressPct())
		}
	}
	if c.util != nil {
		runningMaps, runningReduces := 0, 0
		inRate, shufRate := 0.0, 0.0
		for _, tt := range c.trackers {
			runningMaps += len(tt.runningMaps)
			runningReduces += len(tt.runningReduces)
			inRate += tt.mapInputRate.Value()
			shufRate += tt.shuffleRate.Value()
		}
		c.util.RunningMaps.Add(now, float64(runningMaps))
		c.util.RunningReduces.Add(now, float64(runningReduces))
		c.util.MapInputMBps.Add(now, inRate)
		c.util.ShuffleMBps.Add(now, shufRate)
	}
	if c.inv != nil {
		c.inv.CheckSample(now)
		for _, tt := range c.trackers {
			c.inv.CheckCounters(tt.id, tt.mapInputDoneMB, tt.mapOutputDoneMB, tt.shuffleDoneMB)
		}
	}
	if c.telem != nil {
		c.telem.Tick(now)
	}
	c.progressMilestone(MilestoneSample, "")
	// No explicit re-arm: the periodic event re-arms itself unless
	// shutdown cancelled it (possibly from inside this very tick).
}

// scheduleController runs controller ticks on their interval (read
// once here: a periodic event's cadence is fixed at arm time). Each
// tick gets a span on the controller track; Tick consumes no virtual
// time, so the spans render as zero-width markers whose args carry the
// tick ordinal — the decision instants between them are the payload.
func (c *Cluster) scheduleController() {
	if c.ctrlFn == nil {
		c.ctrlFn = c.ctrlTick
	}
	iv := c.controller.Interval()
	c.ctrlEvent = c.clock.SchedulePeriodic(c.clock.Now()+iv, iv, "controller", c.ctrlFn)
}

func (c *Cluster) ctrlTick() {
	var ref trace.SpanRef
	if c.tracer.Enabled() {
		ref = c.tracer.Begin(c.clock.Now(), trace.PIDController, "controller", "tick")
	}
	c.Mutate(func() { c.controller.Tick(c) })
	c.tracer.End(c.clock.Now(), ref)
	// The periodic event re-arms itself unless shutdown cancelled it.
}

// shutdown cancels periodic machinery so the event queue drains.
func (c *Cluster) shutdown() {
	if c.stopped {
		return
	}
	c.stopped = true
	for _, tt := range c.trackers {
		tt.stop()
	}
	c.clock.Cancel(c.ctrlEvent)
	c.clock.Cancel(c.sampleEvent)
	c.clock.Cancel(c.capEvent)
	c.tracef("all jobs finished; shutting down")
}

// Stats is an instantaneous snapshot of the runtime state the slot
// manager consumes — the aggregate of what trackers report in their
// heartbeats (§III-C).
type Stats struct {
	Now float64

	RunningMaps    int
	RunningReduces int
	PendingMaps    int
	PendingReduces int
	TotalMaps      int
	DoneMaps       int
	TotalReduces   int
	DoneReduces    int

	// Shuffling reducers (still in the copy phase).
	ShufflingReduces int

	// Rates aggregated over trackers (heartbeat EWMA), MB/s. These are
	// 1 s-window estimates and oscillate with task waves; controllers
	// needing stable rates should difference the cumulative counters
	// below over their own longer windows.
	MapInputMBps  float64
	MapOutputMBps float64
	ShuffleMBps   float64

	// Cumulative work counters (committed plus in-flight estimates),
	// MB. Monotone non-decreasing while a single workload runs.
	MapInputProcessedMB float64
	MapOutputProducedMB float64
	ShuffleMovedMB      float64

	// PotentialShuffleMBps estimates what the shuffle fabric could
	// absorb right now given the running reducers — the achievable
	// rate the balance factor compares against (§III-B1).
	PotentialShuffleMBps float64

	// ShufflePerReduceMB is the expected shuffle volume per reducer of
	// the job at the head of the queue (the tail-stretch guard input).
	ShufflePerReduceMB float64

	// HeadJobID identifies the job at the head of the FIFO queue, or -1
	// when the queue is empty. Controllers reset per-job learning (e.g.
	// thrashing history) when it changes.
	HeadJobID int

	// Front-stretch view: the first queued job whose maps have not all
	// committed is the one whose map/shuffle balance the slot manager
	// steers. With a single job these equal the cluster-wide counts.
	FrontJobID           int    // -1 when every queued job is past its barrier
	FrontJobName         string // profile name, keys per-workload learning
	FrontRunningReduces  int
	FrontTotalReduces    int
	FrontShuffleReduces  int
	FrontShufflePerRedMB float64

	// Per-tracker views.
	Trackers []TrackerStats
}

// TrackerStats is one tracker's heartbeat-reported state.
type TrackerStats struct {
	ID             int
	MapTarget      int
	ReduceTarget   int
	RunningMaps    int
	RunningReduces int
	MapInputMBps   float64
}

// Snapshot gathers Stats. Safe to call from controller Tick.
func (c *Cluster) Snapshot() Stats {
	s := Stats{Now: c.clock.Now(), HeadJobID: -1, FrontJobID: -1}
	for _, j := range c.jt.jobs {
		if j.Submitted < 0 {
			continue
		}
		s.TotalMaps += len(j.maps)
		s.DoneMaps += j.mapsDone
		s.TotalReduces += len(j.reduces)
		s.DoneReduces += j.reducesDone
	}
	for _, j := range c.jt.queue {
		s.ShufflePerReduceMB = j.expectedShufflePerReduceMB()
		s.HeadJobID = j.ID
		break
	}
	for _, j := range c.jt.queue {
		if j.BarrierReached() {
			continue
		}
		s.FrontJobID = j.ID
		s.FrontJobName = j.Spec.Profile.Name
		s.FrontTotalReduces = len(j.reduces)
		s.FrontShufflePerRedMB = j.expectedShufflePerReduceMB()
		for _, r := range j.reduces {
			if r.state != TaskRunning {
				continue
			}
			s.FrontRunningReduces++
			if r.phase == 0 {
				s.FrontShuffleReduces++
			}
		}
		break
	}
	perReducerCap := float64(c.cfg.Fetchers) * c.cfg.PerFetchMBps
	for _, tt := range c.trackers {
		s.RunningMaps += len(tt.runningMaps)
		s.RunningReduces += len(tt.runningReduces)
		s.MapInputMBps += tt.mapInputRate.Value()
		s.MapOutputMBps += tt.mapOutputRate.Value()
		s.ShuffleMBps += tt.shuffleRate.Value()
		s.MapInputProcessedMB += tt.mapInputDoneMB + tt.inFlightMapInputMB()
		s.MapOutputProducedMB += tt.mapOutputDoneMB + tt.inFlightMapOutputMB()
		s.ShuffleMovedMB += tt.shuffleDoneMB + tt.inFlightShuffleMB()
		shuffling := 0
		for r := range tt.runningReduces {
			if r.phase == 0 {
				shuffling++
			}
		}
		s.ShufflingReduces += shuffling
		if shuffling > 0 {
			s.PotentialShuffleMBps += math.Min(float64(shuffling)*perReducerCap, c.cfg.Net.IngressMBps)
		}
		s.Trackers = append(s.Trackers, TrackerStats{
			ID:             tt.id,
			MapTarget:      tt.mapTarget,
			ReduceTarget:   tt.reduceTarget,
			RunningMaps:    len(tt.runningMaps),
			RunningReduces: len(tt.runningReduces),
			MapInputMBps:   tt.mapInputRate.Value(),
		})
	}
	s.PendingMaps = c.jt.PendingMapCount()
	s.PendingReduces = c.jt.PendingReduceCount()
	return s
}
