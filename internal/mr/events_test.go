package mr

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestEventLogCollectsLifecycle(t *testing.T) {
	c := MustNewCluster(smallConfig())
	log := c.EnableEventLog(0)
	jobs, err := c.Run(grepJob(1024))
	if err != nil {
		t.Fatal(err)
	}
	j := jobs[0]
	if n := len(log.Filter(EvJobSubmitted)); n != 1 {
		t.Fatalf("submitted events = %d", n)
	}
	if n := len(log.Filter(EvJobFinished)); n != 1 {
		t.Fatalf("finished events = %d", n)
	}
	if n := len(log.Filter(EvBarrier)); n != 1 {
		t.Fatalf("barrier events = %d", n)
	}
	if n := len(log.Filter(EvTaskStarted)); n != j.NumMaps()+j.NumReduces() {
		t.Fatalf("task starts = %d, want %d", n, j.NumMaps()+j.NumReduces())
	}
	if n := len(log.Filter(EvTaskDone)); n != j.NumMaps()+j.NumReduces() {
		t.Fatalf("task dones = %d, want %d", n, j.NumMaps()+j.NumReduces())
	}
	// Events are time-ordered.
	evs := log.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("event log out of order")
		}
	}
}

func TestEventLogFailureEvents(t *testing.T) {
	cfg := failureConfig()
	c := MustNewCluster(cfg)
	log := c.EnableEventLog(0)
	c.ScheduleFailure(2, 10)
	if _, err := c.Run(JobSpec{Name: "ts", Profile: terasortJob(4096).Profile, InputMB: 4096, Reduces: 8}); err != nil {
		t.Fatal(err)
	}
	if len(log.Filter(EvTrackerDown)) != 1 {
		t.Fatal("no tracker-failed event")
	}
	if len(log.Filter(EvRequeued)) == 0 {
		t.Fatal("no requeue events after mid-run failure")
	}
}

func TestEventLogJSONL(t *testing.T) {
	c := MustNewCluster(smallConfig())
	log := c.EnableEventLog(0)
	if _, err := c.Run(grepJob(512)); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := log.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != len(log.Events()) {
		t.Fatalf("jsonl lines = %d, events = %d", len(lines), len(log.Events()))
	}
	if !strings.Contains(lines[0], `"kind":"job-submitted"`) {
		t.Fatalf("first line = %s", lines[0])
	}
}

func TestEventLogCapDropsOldest(t *testing.T) {
	c := MustNewCluster(smallConfig())
	log := c.EnableEventLog(16)
	if _, err := c.Run(grepJob(2048)); err != nil {
		t.Fatal(err)
	}
	if len(log.Events()) > 16 {
		t.Fatalf("log grew past cap: %d", len(log.Events()))
	}
	if log.Dropped == 0 {
		t.Fatal("cap never dropped despite many events")
	}
	// The tail must still end with job-finished.
	evs := log.Events()
	if evs[len(evs)-1].Kind != EvJobFinished {
		t.Fatalf("last event = %s", evs[len(evs)-1].Kind)
	}
}

// emitN emits n synthetic events with sequential Detail payloads so
// eviction tests can identify exactly which entries survived.
func emitN(c *Cluster, n int) {
	for i := 0; i < n; i++ {
		c.emit(EvSlotChange, "job", "", 0, strconv.Itoa(i))
	}
}

func TestEventLogLimitOneStillEvicts(t *testing.T) {
	c := MustNewCluster(smallConfig())
	log := c.EnableEventLog(1)
	emitN(c, 5)
	if n := len(log.Events()); n != 1 {
		t.Fatalf("log length = %d, want 1 (eviction was a no-op for limit 1)", n)
	}
	if log.Dropped != 4 {
		t.Fatalf("Dropped = %d, want 4", log.Dropped)
	}
	if got := log.Events()[0].Detail; got != "4" {
		t.Fatalf("surviving event = %q, want the newest (\"4\")", got)
	}
}

func TestEventLogDroppedAccounting(t *testing.T) {
	c := MustNewCluster(smallConfig())
	const limit, emitted = 8, 50
	log := c.EnableEventLog(limit)
	emitN(c, emitted)
	evs := log.Events()
	if len(evs) > limit {
		t.Fatalf("log length %d exceeds limit %d", len(evs), limit)
	}
	if log.Dropped+len(evs) != emitted {
		t.Fatalf("Dropped (%d) + retained (%d) != emitted (%d)", log.Dropped, len(evs), emitted)
	}
	// The retained window is the contiguous newest suffix.
	for i, e := range evs {
		if want := strconv.Itoa(log.Dropped + i); e.Detail != want {
			t.Fatalf("event %d detail = %q, want %q", i, e.Detail, want)
		}
	}
}

func TestEventLogJSONLAfterEviction(t *testing.T) {
	c := MustNewCluster(smallConfig())
	const limit, emitted = 8, 50
	log := c.EnableEventLog(limit)
	emitN(c, emitted)
	var b strings.Builder
	if err := log.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	evs := log.Events()
	if len(lines) != len(evs) {
		t.Fatalf("jsonl lines = %d, events = %d", len(lines), len(evs))
	}
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if e.Detail != evs[i].Detail {
			t.Fatalf("line %d detail = %q, events()[%d] = %q", i, e.Detail, i, evs[i].Detail)
		}
		if want := strconv.Itoa(log.Dropped + i); e.Detail != want {
			t.Fatalf("line %d detail = %q, want %q (ordering after eviction)", i, e.Detail, want)
		}
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	c := MustNewCluster(smallConfig())
	log := c.EnableEventLog(4)
	emitN(c, 4)
	snap := log.Events()
	before := fmt.Sprint(snap)
	// Trigger an in-place compaction plus further appends; a snapshot
	// aliasing the internal slice would see its entries rewritten.
	emitN(c, 10)
	if after := fmt.Sprint(snap); after != before {
		t.Fatalf("snapshot mutated by later events:\nbefore %s\nafter  %s", before, after)
	}
	// Mutating the snapshot must not leak into the log.
	snap2 := log.Events()
	snap2[0].Detail = "mutated"
	if log.Events()[0].Detail == "mutated" {
		t.Fatal("mutating the returned slice changed the log")
	}
}

func TestEventLogDisabledIsFree(t *testing.T) {
	c := MustNewCluster(smallConfig())
	if _, err := c.Run(grepJob(512)); err != nil {
		t.Fatal(err)
	}
	// No panic, no log: emit must be a no-op without EnableEventLog.
}

func TestUtilisationSeries(t *testing.T) {
	c := MustNewCluster(smallConfig())
	u := c.EnableUtilisation()
	if _, err := c.Run(grepJob(2048)); err != nil {
		t.Fatal(err)
	}
	if u.RunningMaps.Len() == 0 || u.MapInputMBps.Len() == 0 {
		t.Fatal("utilisation series empty")
	}
	// Peak concurrency is bounded by the slot configuration.
	if u.RunningMaps.MaxV() > float64(smallConfig().Workers*smallConfig().MaxMapSlots) {
		t.Fatalf("running maps peak %v exceeds slot capacity", u.RunningMaps.MaxV())
	}
	if u.RunningMaps.MaxV() <= 0 {
		t.Fatal("running maps never rose above zero")
	}
	if u.MapInputMBps.MaxV() <= 0 {
		t.Fatal("map rate never rose above zero")
	}
	// Series share the sampler cadence.
	if u.RunningMaps.Len() != u.ShuffleMBps.Len() {
		t.Fatal("series lengths diverge")
	}
}
