package mr

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"smapreduce/internal/puma"
	"smapreduce/internal/trace"
)

// tracedRun executes a two-job PUMA workload with tracing attached,
// under an adversarial controller so slot targets change mid-run.
func tracedRun(t *testing.T, tr *trace.Tracer) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = 4
	cfg.Net.Nodes = 4
	cfg.Policy = Dynamic
	cfg.Seed = 7
	c := MustNewCluster(cfg)
	c.EnableTracing(tr)
	if err := c.SetController(&jitterController{}); err != nil {
		t.Fatal(err)
	}
	jobs, err := c.Run(
		JobSpec{Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 512, Reduces: 4},
		JobSpec{Name: "g", Profile: puma.MustGet("grep"), InputMB: 256, Reduces: 2, SubmitAt: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !j.Finished() {
			t.Fatalf("job %s did not finish", j.Spec.Name)
		}
	}
	return c
}

// TestTracedRunProducesSpans runs a full workload with tracing and
// asserts the span inventory: job and task spans, controller ticks,
// slot-change instants, and no span left open at the end.
func TestTracedRunProducesSpans(t *testing.T) {
	tr := trace.New(trace.Options{})
	tracedRun(t, tr)

	if n := tr.OpenSpans(); n != 0 {
		t.Errorf("OpenSpans = %d after the run, want 0", n)
	}
	sum := tr.Summary()
	for _, cat := range []string{"job", "map", "reduce", "controller", "slot"} {
		if !strings.Contains(sum, cat) {
			t.Errorf("trace summary missing category %q:\n%s", cat, sum)
		}
	}
	// Default verbosity must not record flow spans.
	if strings.Contains(sum, "shuffle") {
		t.Errorf("flow spans recorded at verbosity 0:\n%s", sum)
	}

	// The export must be valid JSON in the Chrome trace shape.
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Ts   float64 `json:"ts"`
			Name string  `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no events")
	}
	phs := map[string]int{}
	sawJob := false
	for _, ev := range doc.TraceEvents {
		phs[ev.Ph]++
		if ev.Ph == "X" && ev.Pid == trace.PIDJobs && ev.Name == "ts" {
			sawJob = true
		}
	}
	if phs["X"] == 0 || phs["i"] == 0 || phs["M"] == 0 {
		t.Errorf("export lacks a phase: %v", phs)
	}
	if phs["B"] != 0 {
		t.Errorf("export holds %d unterminated spans", phs["B"])
	}
	if !sawJob {
		t.Error("job span for \"ts\" missing from export")
	}
}

// TestTracedRunFlowVerbosity asserts flow spans appear only at
// VerbosityFlows and also close by the end of the run.
func TestTracedRunFlowVerbosity(t *testing.T) {
	tr := trace.New(trace.Options{Verbosity: trace.VerbosityFlows})
	tracedRun(t, tr)
	if n := tr.OpenSpans(); n != 0 {
		t.Errorf("OpenSpans = %d after the run, want 0", n)
	}
	sum := tr.Summary()
	if !strings.Contains(sum, "shuffle") {
		t.Errorf("no shuffle flow spans at VerbosityFlows:\n%s", sum)
	}
	// DFS reads stay silent below VerbosityAllFlows.
	if strings.Contains(sum, "read") {
		t.Errorf("read flows recorded below VerbosityAllFlows:\n%s", sum)
	}
}

// TestTracedRunSurvivesFailure checks the abort paths close their
// spans: a mid-run tracker failure must not leave dangling task or
// drain spans.
func TestTracedRunSurvivesFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 5
	cfg.Net.Nodes = 5
	cfg.Seed = 11
	c := MustNewCluster(cfg)
	tr := trace.New(trace.Options{})
	c.EnableTracing(tr)
	c.ScheduleFailure(2, 20)
	jobs, err := c.Run(JobSpec{
		Name: "ts", Profile: puma.MustGet("terasort"), InputMB: 1024, Reduces: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !jobs[0].Finished() {
		t.Fatal("job did not finish after failure")
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Errorf("OpenSpans = %d after failure run, want 0", n)
	}
	if !strings.Contains(tr.Summary(), "failure") {
		t.Errorf("tracker failure left no instant:\n%s", tr.Summary())
	}
}
