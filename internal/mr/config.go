// Package mr implements the slot-based MapReduce runtime the paper
// modifies: a job tracker (task scheduler + heartbeat handler), task
// trackers with map/reduce working slots and lazy slot changing, map
// and reduce task phase machines with the map→reduce synchronisation
// barrier, a FIFO scheduler, and a YARN-style container policy.
//
// The runtime executes on the simulated substrates (internal/resource,
// internal/netsim, internal/dfs) under a virtual clock, so a 250 GB job
// on 16 nodes runs in milliseconds of wall time while preserving the
// rate dynamics the paper's evaluation measures.
package mr

import (
	"fmt"

	"smapreduce/internal/dfs"
	"smapreduce/internal/netsim"
	"smapreduce/internal/resource"
)

// SchedulerKind selects how the job tracker orders jobs when assigning
// tasks.
type SchedulerKind int

const (
	// FIFO serves jobs strictly in submission order (Hadoop 1 default,
	// used by the paper for HadoopV1 and SMapReduce).
	FIFO SchedulerKind = iota
	// Fair balances running tasks across jobs (a simplified Hadoop
	// Fair Scheduler): the job with the smallest running share is
	// served first.
	Fair
	// Priority serves the highest JobSpec.Priority first, ties broken
	// by submission order (the dynamic-priority schedulers of the
	// related work, reduced to static priorities).
	Priority
)

func (k SchedulerKind) String() string {
	switch k {
	case FIFO:
		return "fifo"
	case Fair:
		return "fair"
	case Priority:
		return "priority"
	}
	return fmt.Sprintf("SchedulerKind(%d)", int(k))
}

// Policy selects how trackers turn resources into runnable tasks.
type Policy int

const (
	// HadoopV1 uses statically configured map and reduce slot counts
	// per tracker (the paper's baseline #1).
	HadoopV1 Policy = iota
	// YARN pools each node's memory into fungible containers with
	// map-priority assignment and a reduce slow-start ramp (baseline #2).
	YARN
	// Dynamic is HadoopV1 slots whose targets are retuned at runtime by
	// an attached Controller — SMapReduce attaches its slot manager.
	Dynamic
)

func (p Policy) String() string {
	switch p {
	case HadoopV1:
		return "hadoopv1"
	case YARN:
		return "yarn"
	case Dynamic:
		return "smapreduce"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config describes one simulated cluster and runtime policy.
type Config struct {
	// Cluster geometry.
	Workers  int           // task trackers / data nodes (the paper uses 16)
	NodeSpec resource.Spec // per-node hardware
	Net      netsim.Config // fabric; Nodes is overridden with Workers
	DFS      dfs.Config    // block size, replication, racks

	// Slot configuration (initial values for Dynamic).
	MapSlots       int // per-tracker map slots (paper default 3)
	ReduceSlots    int // per-tracker reduce slots (paper default 2)
	MaxMapSlots    int // upper bound a controller may set
	MaxReduceSlots int // upper bound a controller may set

	// Runtime behaviour.
	HeartbeatPeriod float64 // tracker heartbeat interval, seconds
	SampleInterval  float64 // progress sampling interval, seconds
	ReduceSlowstart float64 // fraction of maps finished before reduces launch
	Fetchers        int     // parallel shuffle copiers per reduce task
	PerFetchMBps    float64 // per-copier transfer cap (HTTP fetch goodput)
	Jitter          float64 // relative task cost noise amplitude
	Seed            uint64  // master RNG seed

	// Slot-change disturbance: applying a slot command perturbs the
	// tracker for StabilizeTime seconds with this extra pressure (the
	// paper's "map processing rate ... will drop slightly at first").
	SlotChangePressure float64
	StabilizeTime      float64

	// Heartbeat-loss handling (fault injection): a tracker silent for
	// BlacklistTimeout seconds is blacklisted (no new work). When its
	// heartbeats resume it serves a probation of ProbationPeriod
	// seconds, doubled for every blacklisting incident it has accrued,
	// before receiving work again. Zero values take defaults derived
	// from HeartbeatPeriod in NewCluster.
	BlacklistTimeout float64
	ProbationPeriod  float64

	// Policy selection.
	Policy Policy
	// Scheduler orders jobs during assignment (default FIFO).
	Scheduler SchedulerKind
	// EagerSlotChange kills surplus running map tasks immediately when
	// a slot target shrinks, instead of the paper's lazy policy of
	// letting them finish. Exists for the lazy-vs-eager ablation; the
	// killed attempts are re-queued and re-executed from scratch.
	EagerSlotChange bool
	// OutputReplication is the HDFS replication factor of reduce
	// outputs. 1 (the default, and the common benchmark setting —
	// terasort jobs set dfs.replication=1 for exactly this reason)
	// writes only the local replica; higher values stream copies to
	// replica nodes over the fabric and write them to remote disks,
	// lengthening the reduce tail realistically.
	OutputReplication int

	// Shuffle compression (Hadoop's mapred.compress.map.output): map
	// outputs are compressed before the spill, shrinking disk and
	// network bytes by CompressionRatio at the cost of compress CPU in
	// the map's spill phase and decompress CPU in the reduce merge.
	CompressShuffle    bool
	CompressionRatio   float64 // compressed size / uncompressed size, in (0,1]
	CompressCPUPerMB   float64 // core-seconds per uncompressed MB (map side)
	DecompressCPUPerMB float64 // core-seconds per uncompressed MB (reduce side)

	// Speculative execution (maps only): when a running map's progress
	// falls SpeculationGap below the mean of its running peers after
	// SpeculationMinRuntime seconds, a backup attempt launches on a
	// different node; the first attempt to commit wins and the loser is
	// killed. Off by default — the paper's systems do not speculate.
	Speculation           bool
	SpeculationGap        float64
	SpeculationMinRuntime float64

	// NodeSpecs optionally gives every worker its own hardware spec
	// (heterogeneous clusters, the paper's future work). When nil all
	// workers use NodeSpec; when set its length must equal Workers.
	NodeSpecs []resource.Spec
	// YARN container sizes; the node memory pool is derived from the
	// equivalent slot configuration: MapSlots·MapContainerMB +
	// ReduceSlots·ReduceContainerMB, matching how the paper configures
	// "equivalently able to run 3 map containers and 2 reduce
	// containers concurrently".
	MapContainerMB    float64
	ReduceContainerMB float64

	// FullResolve arms the incremental-resolution verification mode:
	// every rate refresh additionally runs a from-scratch water-filling
	// pass and panics if any flow rate diverges from the incremental
	// result. Debug/CI knob (also enabled by SMR_FULL_RESOLVE=1);
	// roughly doubles network-resolution cost.
	FullResolve bool

	// NoPooling disables the Flow/fluidOp free-list recycling, so every
	// task attempt allocates fresh objects as it did before pooling.
	// Debug/CI knob (also enabled by SMR_NO_POOL=1): the differential
	// verifier runs the same seeded workload pooled and unpooled and
	// asserts identical stats and audit output.
	NoPooling bool

	// HeapSched runs the event scheduler in heap-only mode, bypassing
	// the timing wheel that normally stages near-future events in O(1)
	// buckets. The wheel never decides firing order (the heap always
	// arbitrates the (at, seq) total order), so event logs, stats,
	// traces and audits must be byte-identical either way. Debug/CI
	// knob (also enabled by SMR_HEAP_SCHED=1): the differential
	// verifier runs the same seeded workload in both modes and asserts
	// exactly that.
	HeapSched bool
}

// DefaultConfig mirrors the paper's workbench: 16 workers, 3 map +
// 2 reduce slots, 128 MB blocks, GbE fabric, 1 s heartbeats.
func DefaultConfig() Config {
	return Config{
		Workers:               16,
		NodeSpec:              resource.DefaultSpec(),
		Net:                   netsim.DefaultConfig(16),
		DFS:                   dfs.DefaultConfig(),
		MapSlots:              3,
		ReduceSlots:           2,
		MaxMapSlots:           16,
		MaxReduceSlots:        6,
		HeartbeatPeriod:       1.0,
		SampleInterval:        2.0,
		BlacklistTimeout:      3.0,
		ProbationPeriod:       5.0,
		ReduceSlowstart:       0.05,
		Fetchers:              5,
		PerFetchMBps:          3.5,
		Jitter:                0.08,
		Seed:                  1,
		SlotChangePressure:    0.15,
		StabilizeTime:         4,
		Policy:                HadoopV1,
		SpeculationGap:        0.2,
		SpeculationMinRuntime: 10,
		OutputReplication:     1,
		CompressionRatio:      0.45,
		CompressCPUPerMB:      0.012,
		DecompressCPUPerMB:    0.005,
		MapContainerMB:        2048,
		ReduceContainerMB:     3072,
	}
}

// Validate reports the first problem with the config, or nil.
func (c Config) Validate() error {
	switch {
	case c.Workers <= 0:
		return fmt.Errorf("mr: Workers = %d, must be positive", c.Workers)
	case c.MapSlots <= 0:
		return fmt.Errorf("mr: MapSlots = %d, must be positive", c.MapSlots)
	case c.ReduceSlots <= 0:
		return fmt.Errorf("mr: ReduceSlots = %d, must be positive", c.ReduceSlots)
	case c.MaxMapSlots < c.MapSlots:
		return fmt.Errorf("mr: MaxMapSlots = %d below MapSlots %d", c.MaxMapSlots, c.MapSlots)
	case c.MaxReduceSlots < c.ReduceSlots:
		return fmt.Errorf("mr: MaxReduceSlots = %d below ReduceSlots %d", c.MaxReduceSlots, c.ReduceSlots)
	case c.HeartbeatPeriod <= 0:
		return fmt.Errorf("mr: HeartbeatPeriod = %v, must be positive", c.HeartbeatPeriod)
	case c.SampleInterval <= 0:
		return fmt.Errorf("mr: SampleInterval = %v, must be positive", c.SampleInterval)
	case c.BlacklistTimeout < 0:
		return fmt.Errorf("mr: BlacklistTimeout = %v, must be >= 0", c.BlacklistTimeout)
	case c.ProbationPeriod < 0:
		return fmt.Errorf("mr: ProbationPeriod = %v, must be >= 0", c.ProbationPeriod)
	case c.ReduceSlowstart < 0 || c.ReduceSlowstart > 1:
		return fmt.Errorf("mr: ReduceSlowstart = %v, must be in [0,1]", c.ReduceSlowstart)
	case c.Fetchers <= 0:
		return fmt.Errorf("mr: Fetchers = %d, must be positive", c.Fetchers)
	case c.PerFetchMBps <= 0:
		return fmt.Errorf("mr: PerFetchMBps = %v, must be positive", c.PerFetchMBps)
	case c.Jitter < 0 || c.Jitter >= 1:
		return fmt.Errorf("mr: Jitter = %v, must be in [0,1)", c.Jitter)
	case c.SlotChangePressure < 0:
		return fmt.Errorf("mr: SlotChangePressure = %v, must be >= 0", c.SlotChangePressure)
	case c.StabilizeTime < 0:
		return fmt.Errorf("mr: StabilizeTime = %v, must be >= 0", c.StabilizeTime)
	case c.Policy == YARN && (c.MapContainerMB <= 0 || c.ReduceContainerMB <= 0):
		return fmt.Errorf("mr: YARN policy requires positive container sizes")
	case c.OutputReplication < 0 || c.OutputReplication > c.Workers:
		return fmt.Errorf("mr: OutputReplication = %d, must be in [0, Workers]", c.OutputReplication)
	case c.CompressShuffle && (c.CompressionRatio <= 0 || c.CompressionRatio > 1):
		return fmt.Errorf("mr: CompressionRatio = %v, must be in (0,1]", c.CompressionRatio)
	case c.CompressShuffle && (c.CompressCPUPerMB < 0 || c.DecompressCPUPerMB < 0):
		return fmt.Errorf("mr: compression CPU costs must be >= 0")
	case c.Speculation && (c.SpeculationGap <= 0 || c.SpeculationGap >= 1):
		return fmt.Errorf("mr: SpeculationGap = %v, must be in (0,1)", c.SpeculationGap)
	case c.Speculation && c.SpeculationMinRuntime < 0:
		return fmt.Errorf("mr: SpeculationMinRuntime = %v, must be >= 0", c.SpeculationMinRuntime)
	}
	if err := c.NodeSpec.Validate(); err != nil {
		return err
	}
	if c.NodeSpecs != nil {
		if len(c.NodeSpecs) != c.Workers {
			return fmt.Errorf("mr: NodeSpecs has %d entries for %d workers", len(c.NodeSpecs), c.Workers)
		}
		for i, spec := range c.NodeSpecs {
			if err := spec.Validate(); err != nil {
				return fmt.Errorf("mr: NodeSpecs[%d]: %w", i, err)
			}
		}
	}
	if c.Scheduler != FIFO && c.Scheduler != Fair && c.Scheduler != Priority {
		return fmt.Errorf("mr: unknown scheduler %v", c.Scheduler)
	}
	net := c.Net
	net.Nodes = c.Workers
	if err := net.Validate(); err != nil {
		return err
	}
	return c.DFS.Validate()
}
