package mr

import (
	"fmt"
	"sort"
)

// JobTracker is the master: it queues jobs, schedules their tasks onto
// tracker slots (FIFO across jobs, locality-aware within a job), and
// holds the per-tracker slot targets decided by an attached controller.
type JobTracker struct {
	c *Cluster

	jobs  []*Job // submission order
	queue []*Job // unfinished, FIFO

	// Pending map tasks indexed by job and by replica host for fast
	// node-local matching.
	pendingMaps   map[*Job][]*mapTask
	pendingByHost map[*Job]map[int][]*mapTask

	// Slot targets for the Dynamic policy, one pair per tracker,
	// delivered on the next heartbeat.
	desiredMaps    []int
	desiredReduces []int
}

func newJobTracker(c *Cluster) *JobTracker {
	jt := &JobTracker{
		c:              c,
		pendingMaps:    make(map[*Job][]*mapTask),
		pendingByHost:  make(map[*Job]map[int][]*mapTask),
		desiredMaps:    make([]int, c.cfg.Workers),
		desiredReduces: make([]int, c.cfg.Workers),
	}
	for i := range jt.desiredMaps {
		jt.desiredMaps[i] = c.cfg.MapSlots
		jt.desiredReduces[i] = c.cfg.ReduceSlots
	}
	return jt
}

// admit registers a job at its submission time.
func (jt *JobTracker) admit(j *Job) {
	j.Submitted = jt.c.clock.Now()
	jt.jobs = append(jt.jobs, j)
	jt.queue = append(jt.queue, j)
	jt.pendingMaps[j] = append([]*mapTask(nil), j.maps...)
	byHost := make(map[int][]*mapTask)
	for _, m := range j.maps {
		for _, h := range m.split.Hosts {
			byHost[h] = append(byHost[h], m)
		}
	}
	jt.pendingByHost[j] = byHost
}

// retire drops a finished job from the scheduling queue.
func (jt *JobTracker) retire(j *Job) {
	for i, q := range jt.queue {
		if q == j {
			jt.queue = append(jt.queue[:i], jt.queue[i+1:]...)
			return
		}
	}
}

// desiredSlots returns the controller-decided targets for a tracker.
func (jt *JobTracker) desiredSlots(tracker int) (maps, reduces int) {
	return jt.desiredMaps[tracker], jt.desiredReduces[tracker]
}

// SetDesiredSlotsProbe exposes the desired-slot table read-only, for
// tests and diagnostics.
func (jt *JobTracker) SetDesiredSlotsProbe(tracker int) (maps, reduces int) {
	return jt.desiredSlots(tracker)
}

// SetDesiredSlots records slot targets for one tracker; they take
// effect at that tracker's next heartbeat, mirroring the command-in-
// heartbeat-response protocol of §III-C.
func (jt *JobTracker) SetDesiredSlots(tracker, maps, reduces int) {
	if tracker < 0 || tracker >= len(jt.desiredMaps) {
		panic(fmt.Sprintf("mr: SetDesiredSlots for unknown tracker %d", tracker))
	}
	if maps < 1 || reduces < 1 {
		panic(fmt.Sprintf("mr: SetDesiredSlots non-positive targets %d/%d", maps, reduces))
	}
	if maps > jt.c.cfg.MaxMapSlots {
		maps = jt.c.cfg.MaxMapSlots
	}
	if reduces > jt.c.cfg.MaxReduceSlots {
		reduces = jt.c.cfg.MaxReduceSlots
	}
	jt.desiredMaps[tracker] = maps
	jt.desiredReduces[tracker] = reduces
}

// assign hands tasks to every free slot on tt. Maps are assigned before
// reduces: under the YARN policy this implements map priority over the
// shared memory pool, under the slot policies the two pools are
// independent so the order is immaterial. Caller must hold a mutation
// scope.
func (jt *JobTracker) assign(tt *TaskTracker) {
	if !tt.schedulable() {
		return
	}
	for n := tt.freeMapSlots(); n > 0; n-- {
		m := jt.nextMap(tt)
		if m == nil {
			if jt.c.cfg.Speculation {
				if orig := jt.pickSpeculative(tt); orig != nil {
					jt.c.launchBackup(tt, orig)
					continue
				}
			}
			break
		}
		jt.c.launchMap(tt, m)
	}
	for n := tt.freeReduceSlots(); n > 0; n-- {
		r := jt.nextReduce(tt)
		if r == nil {
			break
		}
		jt.c.launchReduce(tt, r)
	}
}

// taskFreed is called when a slot is released mid-heartbeat. Hadoop
// 1.0.4 supports out-of-band heartbeats for exactly this purpose
// (mapreduce.tasktracker.outofband.heartbeat); assigning immediately
// keeps slots hot without waiting for the next periodic beat.
func (jt *JobTracker) taskFreed(tt *TaskTracker) {
	tt.traceDrainCheck()
	jt.assign(tt)
}

// jobOrder returns the jobs in scheduling order: submission order for
// FIFO, fewest-running-tasks-first for Fair (ties by submission order,
// keeping the sort stable and deterministic).
func (jt *JobTracker) jobOrder() []*Job {
	if jt.c.cfg.Scheduler == FIFO || len(jt.queue) < 2 {
		return jt.queue
	}
	order := append([]*Job(nil), jt.queue...)
	switch jt.c.cfg.Scheduler {
	case Fair:
		running := func(j *Job) int {
			n := 0
			for _, m := range j.maps {
				if m.state == TaskRunning {
					n++
				}
			}
			for _, r := range j.reduces {
				if r.state == TaskRunning {
					n++
				}
			}
			return n
		}
		sort.SliceStable(order, func(a, b int) bool { return running(order[a]) < running(order[b]) })
	case Priority:
		sort.SliceStable(order, func(a, b int) bool {
			return order[a].Spec.Priority > order[b].Spec.Priority
		})
	}
	return order
}

// nextMap picks the next pending map task for tt: jobs in scheduler
// order; within a job node-local first, then rack-local, then any.
// Jobs of tenants at their capacity cap are skipped.
func (jt *JobTracker) nextMap(tt *TaskTracker) *mapTask {
	for _, j := range jt.jobOrder() {
		if jt.c.tenantMapBlocked(j) {
			continue
		}
		pend := jt.pendingMaps[j]
		if len(pend) == 0 {
			continue
		}
		// Node-local.
		byHost := jt.pendingByHost[j]
		for _, m := range byHost[tt.id] {
			if m.state == TaskPending {
				jt.take(j, m)
				return m
			}
		}
		// Rack-local, then any, in pending order.
		var rackPick, anyPick *mapTask
		rack := jt.c.fs.Rack(tt.id)
		for _, m := range pend {
			if m.state != TaskPending {
				continue
			}
			if anyPick == nil {
				anyPick = m
			}
			if rackPick == nil {
				for _, h := range m.split.Hosts {
					if jt.c.fs.Rack(h) == rack {
						rackPick = m
						break
					}
				}
			}
			if rackPick != nil {
				break
			}
		}
		if rackPick != nil {
			jt.take(j, rackPick)
			return rackPick
		}
		if anyPick != nil {
			jt.take(j, anyPick)
			return anyPick
		}
	}
	return nil
}

// requeueMap returns an aborted or invalidated map task to the pending
// queue. The by-host index still references the task (pending state is
// checked at pick time), so only the flat list needs the entry back.
func (jt *JobTracker) requeueMap(j *Job, m *mapTask) {
	jt.pendingMaps[j] = append(jt.pendingMaps[j], m)
}

// take removes a map task from the pending structures.
func (jt *JobTracker) take(j *Job, m *mapTask) {
	pend := jt.pendingMaps[j]
	for i, p := range pend {
		if p == m {
			jt.pendingMaps[j] = append(pend[:i], pend[i+1:]...)
			break
		}
	}
	// pendingByHost entries are lazily skipped via the state check.
}

// nextReduce picks the next pending reduce task for tt, gated by the
// reduce slow-start threshold.
func (jt *JobTracker) nextReduce(tt *TaskTracker) *reduceTask {
	for _, j := range jt.jobOrder() {
		if jt.c.tenantReduceBlocked(j) {
			continue
		}
		if j.mapsDone < int(jt.c.cfg.ReduceSlowstart*float64(len(j.maps))) {
			continue
		}
		if len(j.maps) > 0 && j.mapsDone == 0 && jt.c.cfg.ReduceSlowstart > 0 {
			continue
		}
		for _, r := range j.reduces {
			if r.state == TaskPending {
				return r
			}
		}
	}
	return nil
}

// reduceDemandExists reports whether some unfinished job is past its
// reduce slow-start with reduce tasks still pending — the condition
// under which YARN nodes reserve reduce-container memory.
func (jt *JobTracker) reduceDemandExists() bool {
	for _, j := range jt.queue {
		if len(j.maps) > 0 && j.mapsDone < int(jt.c.cfg.ReduceSlowstart*float64(len(j.maps))) {
			continue
		}
		if len(j.maps) > 0 && j.mapsDone == 0 && jt.c.cfg.ReduceSlowstart > 0 {
			continue
		}
		for _, r := range j.reduces {
			if r.state == TaskPending {
				return true
			}
		}
	}
	return false
}

// PendingMapCount reports unassigned maps of unfinished jobs.
func (jt *JobTracker) PendingMapCount() int {
	n := 0
	for _, j := range jt.queue {
		n += len(jt.pendingMaps[j])
	}
	return n
}

// PendingReduceCount reports unassigned reduces of unfinished jobs.
func (jt *JobTracker) PendingReduceCount() int {
	n := 0
	for _, j := range jt.queue {
		for _, r := range j.reduces {
			if r.state == TaskPending {
				n++
			}
		}
	}
	return n
}
