package mr

import (
	"fmt"
	"math"

	"smapreduce/internal/dfs"
	"smapreduce/internal/metrics"
	"smapreduce/internal/netsim"
	"smapreduce/internal/puma"
	"smapreduce/internal/resource"
	"smapreduce/internal/trace"
)

// JobSpec describes one MapReduce job submission.
type JobSpec struct {
	Name     string
	Profile  puma.Profile
	InputMB  float64
	Reduces  int
	SubmitAt float64 // virtual submission time

	// Tenant names the queue/organisation this job belongs to. Empty
	// means the shared default tenant. Capacity policies allocate task
	// caps per tenant; jobs of uncapped tenants schedule freely.
	Tenant string

	// SLOSeconds is the job's latency objective: it should finish within
	// this many seconds of submission. 0 means no SLO. The runtime does
	// not act on it — experiments count misses per tenant and policy.
	SLOSeconds float64

	// Priority orders jobs under the Priority scheduler; higher runs
	// first. Ignored by FIFO and Fair.
	Priority int

	// PartitionSkew makes reduce partition r receive a share
	// proportional to 1/(r+1)^PartitionSkew — the classic hot-key
	// pathology. 0 (the default) is the uniform split the paper
	// assumes ("the data are random in distribution", §VII).
	PartitionSkew float64
}

// Validate reports the first problem with the spec, or nil.
func (s JobSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("mr: job has empty name")
	case s.InputMB <= 0:
		return fmt.Errorf("mr: job %s: InputMB = %v, must be positive", s.Name, s.InputMB)
	case s.Reduces <= 0:
		return fmt.Errorf("mr: job %s: Reduces = %d, must be positive", s.Name, s.Reduces)
	case s.SubmitAt < 0:
		return fmt.Errorf("mr: job %s: SubmitAt = %v, must be >= 0", s.Name, s.SubmitAt)
	case s.PartitionSkew < 0 || s.PartitionSkew > 4:
		return fmt.Errorf("mr: job %s: PartitionSkew = %v, must be in [0,4]", s.Name, s.PartitionSkew)
	case s.SLOSeconds < 0:
		return fmt.Errorf("mr: job %s: SLOSeconds = %v, must be >= 0", s.Name, s.SLOSeconds)
	}
	return s.Profile.Validate()
}

// TaskState is the lifecycle of one task attempt.
type TaskState int

const (
	TaskPending TaskState = iota
	TaskRunning
	TaskDone
)

func (s TaskState) String() string {
	switch s {
	case TaskPending:
		return "pending"
	case TaskRunning:
		return "running"
	case TaskDone:
		return "done"
	}
	return fmt.Sprintf("TaskState(%d)", int(s))
}

// Job is one submitted job and its runtime state.
type Job struct {
	ID   int
	Spec JobSpec

	file    *dfs.File
	maps    []*mapTask
	reduces []*reduceTask

	mapsDone    int
	reducesDone int

	// Milestones (virtual seconds). Negative means "not yet" (zero is
	// a legitimate time for jobs submitted at simulation start).
	Submitted  float64
	Started    float64 // first task launched
	BarrierAt  float64 // last map committed
	FinishedAt float64

	// ShuffledMB accumulates the exact bytes committed for shuffling,
	// known in full at the barrier.
	ShuffledMB float64

	// Speculation counters (maps only; reduce speculation is not
	// implemented, matching common Hadoop practice of disabling it).
	SpeculativeLaunched int
	SpeculativeWins     int

	Progress *metrics.Progress

	mapPressure float64   // derived from Profile.MapPeakSlots
	partWeights []float64 // per-partition share of each map output, sums to 1

	span trace.SpanRef // open lifecycle span when tracing
}

// newJob materialises tasks for a spec whose input file already exists.
// workers sizes the per-source shuffle bookkeeping on each reducer.
func newJob(id int, spec JobSpec, file *dfs.File, beta float64, workers int) *Job {
	j := &Job{
		ID:          id,
		Spec:        spec,
		file:        file,
		Submitted:   -1,
		Started:     -1,
		BarrierAt:   -1,
		FinishedAt:  -1,
		Progress:    metrics.NewProgress(fmt.Sprintf("%s#%d", spec.Name, id)),
		mapPressure: resource.PressureForPeak(spec.Profile.MapPeakSlots, beta),
	}
	for i, split := range file.Splits() {
		j.maps = append(j.maps, &mapTask{job: j, id: i, split: split, outputHost: -1})
	}
	j.partWeights = partitionWeights(spec.Reduces, spec.PartitionSkew)
	for p := 0; p < spec.Reduces; p++ {
		j.reduces = append(j.reduces, &reduceTask{
			job:         j,
			partition:   p,
			pending:     make([]float64, workers),
			pendingMaps: make([][]*mapTask, workers),
			flows:       make([]*shuffleFlow, workers),
			flowMaps:    make([][]*mapTask, workers),
			got:         make([]bool, len(j.maps)),
		})
	}
	return j
}

// partitionWeights returns the Zipf(s) share vector over n partitions.
func partitionWeights(n int, skew float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -skew)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Tenant returns the job's tenant, normalising the empty spec value to
// the shared "default" tenant that capacity policies see.
func (j *Job) Tenant() string {
	if j.Spec.Tenant == "" {
		return "default"
	}
	return j.Spec.Tenant
}

// SLOMissed reports whether the job finished after its SLO deadline.
// Jobs without an SLO (or unfinished jobs) never count as missed.
func (j *Job) SLOMissed() bool {
	return j.Spec.SLOSeconds > 0 && j.Finished() && j.ExecutionTime() > j.Spec.SLOSeconds
}

// NumMaps returns the job's map task count (one per input split).
func (j *Job) NumMaps() int { return len(j.maps) }

// NumReduces returns the job's reduce task count.
func (j *Job) NumReduces() int { return len(j.reduces) }

// MapsDone returns how many map tasks have committed.
func (j *Job) MapsDone() int { return j.mapsDone }

// ReducesDone returns how many reduce tasks have finished.
func (j *Job) ReducesDone() int { return j.reducesDone }

// Finished reports whether every reduce task has completed.
func (j *Job) Finished() bool { return j.reducesDone == len(j.reduces) }

// BarrierReached reports whether all map tasks have committed.
func (j *Job) BarrierReached() bool { return j.mapsDone == len(j.maps) }

// MapTime returns the paper's "map time": job start to barrier. NaN
// until the barrier is reached.
func (j *Job) MapTime() float64 {
	if !j.BarrierReached() || j.Started < 0 {
		return math.NaN()
	}
	return j.BarrierAt - j.Started
}

// ReduceTime returns the paper's "reduce time": barrier to completion.
// NaN until the job finishes.
func (j *Job) ReduceTime() float64 {
	if !j.Finished() {
		return math.NaN()
	}
	return j.FinishedAt - j.BarrierAt
}

// ExecutionTime returns submission to completion. NaN until finished.
func (j *Job) ExecutionTime() float64 {
	if !j.Finished() {
		return math.NaN()
	}
	return j.FinishedAt - j.Submitted
}

// ThroughputMBps returns input MB per second of execution time.
func (j *Job) ThroughputMBps() float64 {
	et := j.ExecutionTime()
	if math.IsNaN(et) || et <= 0 {
		return math.NaN()
	}
	return j.Spec.InputMB / et
}

// mapProgressPct returns completed map work in [0,100].
func (j *Job) mapProgressPct() float64 {
	if len(j.maps) == 0 {
		return 100
	}
	sum := 0.0
	for _, m := range j.maps {
		sum += m.progressFraction()
	}
	return 100 * sum / float64(len(j.maps))
}

// reduceProgressPct returns completed reduce work in [0,100], weighting
// shuffle, sort and reduce each 1/3 as Hadoop reports it.
func (j *Job) reduceProgressPct() float64 {
	if len(j.reduces) == 0 {
		return 100
	}
	sum := 0.0
	for _, r := range j.reduces {
		sum += r.progressFraction()
	}
	return 100 * sum / float64(len(j.reduces))
}

// expectedShufflePerReduceMB estimates the shuffle volume the busiest
// reducer will receive, used for progress display and the tail-stretch
// guard (which must respect the hottest partition, not the mean).
func (j *Job) expectedShufflePerReduceMB() float64 {
	maxW := 0.0
	for _, w := range j.partWeights {
		if w > maxW {
			maxW = w
		}
	}
	return j.Spec.InputMB * j.Spec.Profile.ShuffleRatio() * maxW
}

// mapTask is one map task attempt.
type mapTask struct {
	job   *Job
	id    int
	split dfs.Split
	state TaskState

	tracker *TaskTracker

	// Costs drawn at launch (jittered).
	preCombineMB float64 // map output before the combiner
	shuffleMB    float64 // bytes that will cross the network
	outputHost   int     // node holding the committed output (-1 before)
	outputLost   bool    // committed output died with a crashed host that later rejoined

	// Phase ops. Phase 0 (map): compute plus an optional remote read;
	// phase 1 (spill): sort CPU plus disk write.
	phase      int
	pendingOps int
	computeOp  *fluidOp
	readOp     *fluidOp
	sortOp     *fluidOp
	spillOp    *fluidOp

	cpuAct   *resource.Activity
	diskAct  *resource.Activity
	readFlow *netsim.Flow // live remote read, for abort on failure

	// Speculative execution: an original task may have one backup
	// attempt racing it on another node; the first to commit wins and
	// the loser is killed. backupOf points from the clone to the
	// original; backup from the original to its clone.
	backupOf *mapTask
	backup   *mapTask

	started  float64 // launch time of this attempt, for straggler scoring
	finished float64 // commit time of the logical task (-1 until then)

	span trace.SpanRef // open attempt span when tracing
}

// original returns the logical task this attempt belongs to.
func (m *mapTask) original() *mapTask {
	if m.backupOf != nil {
		return m.backupOf
	}
	return m
}

// progressFraction reports this task's completed work in [0,1] with the
// map phase weighted 0.85 and the spill phase 0.15.
func (m *mapTask) progressFraction() float64 {
	switch m.state {
	case TaskPending:
		return 0
	case TaskDone:
		return 1
	}
	const mapWeight, spillWeight = 0.85, 0.15
	if m.phase == 0 {
		f := 1.0
		if m.computeOp != nil {
			f = m.computeOp.fraction()
		}
		if m.readOp != nil && m.readOp.fraction() < f {
			f = m.readOp.fraction()
		}
		return mapWeight * f
	}
	f := 1.0
	if m.sortOp != nil {
		f = m.sortOp.fraction()
	}
	if m.spillOp != nil && m.spillOp.fraction() < f {
		f = m.spillOp.fraction()
	}
	return mapWeight + spillWeight*f
}

// shuffleFlow tracks one reducer's transfer from one source node.
type shuffleFlow struct {
	op   *fluidOp
	flow *netsim.Flow
}

// reduceTask is one reduce task attempt.
type reduceTask struct {
	job       *Job
	partition int
	state     TaskState

	tracker *TaskTracker

	// Phase: 0 shuffle, 1 sort, 2 reduce.
	phase      int
	pendingOps int

	// Shuffle bookkeeping, indexed by source node: pending[src] holds
	// committed-but-not-yet-flowing MB; flows[src] is the live transfer
	// from src, nil when none (nflows counts the non-nil entries, kept
	// ≤ Fetchers). got marks map outputs fully received, by logical map
	// id (durable at the reducer — fetched segments survive the source
	// tracker's death, so only un-received outputs force map
	// re-execution). pendingMaps and flowMaps record which map outputs
	// each queue/flow covers. Dense slices rather than maps: sources
	// are small integers and these are the hottest structures in the
	// shuffle path.
	pending     []float64
	pendingMaps [][]*mapTask
	flows       []*shuffleFlow
	flowMaps    [][]*mapTask
	nflows      int
	got         []bool
	fetchedMB   float64

	// fetchLabel caches the "shuffle job/rN<-" label prefix shared by
	// every fetch this reducer starts.
	fetchLabel string

	phantom *resource.Activity
	cpuAct  *resource.Activity
	diskAct *resource.Activity
	sortOp  *fluidOp
	mergeOp *fluidOp
	redOp   *fluidOp
	writeOp *fluidOp

	// Output replication pipelines (flows to replica nodes and their
	// remote disk writes), tracked for teardown on failure.
	pipeFlows []*netsim.Flow
	pipeActs  []*resource.Activity
	pipeNodes []int
	pipeOps   []*fluidOp

	started  float64 // launch time of the surviving attempt
	finished float64 // completion time (0 until finished)

	span trace.SpanRef // open attempt span when tracing
}

// pendingTotal sums committed bytes not yet transferred.
func (r *reduceTask) pendingTotal() float64 {
	s := 0.0
	for _, mb := range r.pending {
		s += mb
	}
	return s
}

// shuffleSettled reports whether every committed byte has been fetched.
func (r *reduceTask) shuffleSettled() bool {
	return r.nflows == 0 && r.pendingTotal() <= opEpsilon
}

// progressFraction reports completed work in [0,1], one third per phase.
func (r *reduceTask) progressFraction() float64 {
	switch r.state {
	case TaskPending:
		return 0
	case TaskDone:
		return 1
	}
	expected := r.job.expectedShufflePerReduceMB()
	switch r.phase {
	case 0:
		if expected <= 0 {
			return 0
		}
		f := r.fetchedMB / expected
		if f > 1 {
			f = 1
		}
		return f / 3
	case 1:
		f := 1.0
		if r.sortOp != nil {
			f = r.sortOp.fraction()
		}
		if r.mergeOp != nil && r.mergeOp.fraction() < f {
			f = r.mergeOp.fraction()
		}
		return 1.0/3 + f/3
	default:
		f := 1.0
		if r.redOp != nil {
			f = r.redOp.fraction()
		}
		if r.writeOp != nil && r.writeOp.fraction() < f {
			f = r.writeOp.fraction()
		}
		return 2.0/3 + f/3
	}
}
