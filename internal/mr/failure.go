package mr

import (
	"fmt"
	"sort"

	"smapreduce/internal/resource"
	"smapreduce/internal/trace"
)

// FailTracker kills task tracker id at the current virtual time,
// reproducing Hadoop's failure semantics:
//
//   - the tracker stops heartbeating and never receives work again;
//   - its running map and reduce tasks are aborted and requeued;
//   - committed map outputs stored on its local disk are lost — any
//     map whose output some reducer has not yet received re-executes
//     on a live tracker (outputs already fetched by a reducer are
//     durable at the reducer and are not re-fetched);
//   - reducers lose nothing they have already copied; their pending
//     fetches from the dead node are re-queued against the map's new
//     execution.
//
// The method is the fault-injection hook used by the robustness tests;
// schedule it before Run with ScheduleFailure. Failing an unknown or
// already-failed tracker returns an error.
func (c *Cluster) FailTracker(id int) error {
	if id < 0 || id >= len(c.trackers) {
		return fmt.Errorf("mr: FailTracker(%d): no such tracker", id)
	}
	tt := c.trackers[id]
	if tt.failed {
		return fmt.Errorf("mr: tracker %d already failed", id)
	}
	c.Mutate(func() { c.failTracker(tt) })
	return nil
}

// ScheduleFailure arranges for FailTracker(id) to fire at virtual time
// at. Call before Run. A failure that cannot be applied when the event
// fires (unknown tracker, already failed) is recorded in the event log
// and trace as an erroring fault instant rather than panicking: two
// overlapping fault schedules naming the same tracker are an
// operational conflict, not a programming error.
func (c *Cluster) ScheduleFailure(id int, at float64) {
	c.clock.Schedule(at, fmt.Sprintf("fail tt%d", id), func() {
		c.faultErr(id, "crash", c.FailTracker(id))
	})
}

// faultErr routes a fault-application error into the event log and
// trace. A nil err is a no-op, so fault callbacks can wrap their action
// unconditionally.
func (c *Cluster) faultErr(tracker int, kind string, err error) {
	if err == nil {
		return
	}
	c.emit(EvFaultError, "", "", tracker, fmt.Sprintf("%s: %v", kind, err))
	if c.tracer.Enabled() {
		pid := trace.PIDController
		if tracker >= 0 && tracker < len(c.trackers) {
			pid = trackerPID(tracker)
		}
		c.tracer.Instant(c.clock.Now(), pid, "failure", "fault-error")
	}
	c.tracef("fault %s on tracker %d not applied: %v", kind, tracker, err)
}

// failTracker does the work inside a mutation scope.
func (c *Cluster) failTracker(tt *TaskTracker) {
	tt.failed = true
	tt.stop()
	tt.mapInputRate.Reset()
	tt.mapOutputRate.Reset()
	tt.shuffleRate.Reset()
	c.emit(EvTrackerDown, "", "", tt.id, "")
	if c.tracer.Enabled() {
		c.tracer.Instant(c.clock.Now(), trackerPID(tt.id), "failure", "tracker-down")
	}
	c.tracef("tracker %d failed", tt.id)

	// 1. Purge every reducer's shuffle state that references the dead
	// node: live flows are aborted without credit, queued bytes are
	// dropped (they will be re-delivered by re-executions).
	for _, j := range c.jt.queue {
		for _, r := range j.reduces {
			if r.state != TaskRunning {
				continue
			}
			if sf := r.flows[tt.id]; sf != nil {
				c.fabric.Remove(sf.flow)
				c.dropOp(sf.op) // unbinds first: Userdata must be clear before release
				c.releaseFlow(sf.flow)
				r.flows[tt.id] = nil
				r.nflows--
				r.flowMaps[tt.id] = nil
			}
			r.pending[tt.id] = 0
			r.pendingMaps[tt.id] = nil
		}
	}

	// 2. Abort and requeue the tasks running on the dead tracker, in
	// task order: map iteration order is randomised and would leak
	// nondeterminism into the requeue sequence.
	maps := make([]*mapTask, 0, len(tt.runningMaps))
	for m := range tt.runningMaps {
		maps = append(maps, m)
	}
	sort.Slice(maps, func(i, k int) bool { return mapAttemptLess(maps[i], maps[k]) })
	for _, m := range maps {
		// Speculation interplay: kill every attempt of the affected
		// logical task and requeue the logical task once. (Killing a
		// healthy sibling is slightly wasteful but keeps attempt state
		// two-valued; tracker failures are rare.)
		if m.backupOf != nil {
			orig := m.backupOf
			c.killAttempt(m)
			m.backupOf = nil
			orig.backup = nil
			continue
		}
		if m.backup != nil {
			if m.backup.state == TaskRunning {
				c.killAttempt(m.backup)
			}
			m.backup.backupOf = nil
			m.backup = nil
		}
		c.abortMap(m)
	}
	reduces := make([]*reduceTask, 0, len(tt.runningReduces))
	for r := range tt.runningReduces {
		reduces = append(reduces, r)
	}
	sort.Slice(reduces, func(i, k int) bool { return reduceAttemptLess(reduces[i], reduces[k]) })
	for _, r := range reduces {
		c.abortReduce(r)
	}

	// 3. Re-execute committed maps whose output lived on the dead node
	// and is still needed by some reducer.
	for _, j := range c.jt.queue {
		for _, m := range j.maps {
			if m.state != TaskDone || m.outputHost != tt.id {
				continue
			}
			if !c.outputStillNeeded(j, m) {
				continue
			}
			c.requeueCommittedMap(j, m)
		}
		// Reducers that were mid-shuffle may now be blocked on maps
		// that have to re-run; the barrier state is refreshed by the
		// requeue itself. Reducers already past shuffle are unaffected.
	}

	// The aborts emptied the dead tracker's slots; close any open
	// drain span rather than leaving it dangling past the failure.
	tt.traceDrainCheck()

	// 4. Wake the live trackers so freed work is picked up immediately
	// (assign itself skips the unschedulable ones).
	for _, live := range c.trackers {
		c.jt.assign(live)
	}
}

// mapAttemptLess is a total order over map task attempts: (job, task
// id, original-before-backup). The final key matters because an
// original and its speculative backup share job and task id — without
// it, two attempts of one logical task would compare equal and
// sort.Slice (which is not stable) could order victims differently
// between runs that are otherwise identical.
func mapAttemptLess(a, b *mapTask) bool {
	if a.job.ID != b.job.ID {
		return a.job.ID < b.job.ID
	}
	if a.id != b.id {
		return a.id < b.id
	}
	return a.backupOf == nil && b.backupOf != nil
}

// reduceAttemptLess is a total order over reduce task attempts:
// (job, partition). Reduce tasks are never speculated, so one attempt
// per partition exists and the pair is already unique.
func reduceAttemptLess(a, b *reduceTask) bool {
	if a.job.ID != b.job.ID {
		return a.job.ID < b.job.ID
	}
	return a.partition < b.partition
}

// outputStillNeeded reports whether any reducer has not received map
// m's output in full.
func (c *Cluster) outputStillNeeded(j *Job, m *mapTask) bool {
	if m.shuffleMB <= 0 {
		return false // nothing was published
	}
	for _, r := range j.reduces {
		if r.state == TaskDone {
			continue
		}
		if r.state == TaskRunning && r.phase > 0 {
			continue // fetched everything already
		}
		if !r.got[m.id] {
			return true
		}
	}
	return false
}

// abortMap tears a running map attempt down and returns the task to
// the pending queue.
func (c *Cluster) abortMap(m *mapTask) {
	tt := m.tracker
	if m.cpuAct != nil {
		tt.node.Remove(m.cpuAct)
		m.cpuAct = nil
	}
	if m.diskAct != nil {
		tt.node.Remove(m.diskAct)
		m.diskAct = nil
	}
	if m.readFlow != nil {
		c.fabric.Remove(m.readFlow)
	}
	c.dropOp(m.computeOp)
	c.dropOp(m.readOp) // unbinds the read flow before it goes back to the pool
	c.dropOp(m.sortOp)
	c.dropOp(m.spillOp)
	if m.readFlow != nil {
		c.releaseFlow(m.readFlow)
		m.readFlow = nil
	}
	m.computeOp, m.readOp, m.sortOp, m.spillOp = nil, nil, nil, nil
	delete(tt.runningMaps, m)
	c.tenantTaskStopped(m.job, true)
	c.traceMapEnd(m, "aborted")
	m.state = TaskPending
	m.tracker = nil
	m.phase = 0
	m.pendingOps = 0
	c.jt.requeueMap(m.job, m)
	c.emit(EvRequeued, m.job.Spec.Name, fmt.Sprintf("map/%d", m.id), tt.id, "attempt aborted")
}

// abortReduce tears a running reduce attempt down and returns the task
// to the pending queue. Everything it fetched dies with its local disk,
// so the attempt restarts from zero on the next tracker.
func (c *Cluster) abortReduce(r *reduceTask) {
	tt := r.tracker
	if r.phantom != nil {
		tt.node.Remove(r.phantom)
		r.phantom = nil
	}
	if r.cpuAct != nil {
		tt.node.Remove(r.cpuAct)
		r.cpuAct = nil
	}
	if r.diskAct != nil {
		tt.node.Remove(r.diskAct)
		r.diskAct = nil
	}
	for src, sf := range r.flows {
		if sf == nil {
			continue
		}
		c.fabric.Remove(sf.flow)
		c.dropOp(sf.op)
		c.releaseFlow(sf.flow)
		r.flows[src] = nil
	}
	r.nflows = 0
	c.dropOp(r.sortOp)
	c.dropOp(r.mergeOp)
	c.dropOp(r.redOp)
	c.dropOp(r.writeOp)
	r.sortOp, r.mergeOp, r.redOp, r.writeOp = nil, nil, nil, nil
	// Pipeline pieces retire individually (completions nil their own
	// slots), so teardown skips the already-gone entries. Ops drop
	// before flows release: dropping unbinds Flow.Userdata.
	for _, f := range r.pipeFlows {
		if f != nil {
			c.fabric.Remove(f)
		}
	}
	for i, a := range r.pipeActs {
		if a != nil {
			c.nodes[r.pipeNodes[i]].Remove(a)
		}
	}
	for _, op := range r.pipeOps {
		c.dropOp(op)
	}
	for _, f := range r.pipeFlows {
		if f != nil {
			c.releaseFlow(f)
		}
	}
	r.pipeFlows, r.pipeActs, r.pipeNodes, r.pipeOps = nil, nil, nil, nil
	delete(tt.runningReduces, r)
	c.tenantTaskStopped(r.job, false)
	c.traceReduceEnd(r, "aborted")

	r.state = TaskPending
	r.tracker = nil
	r.phase = 0
	r.pendingOps = 0
	r.started = 0
	r.fetchedMB = 0
	for i := range r.pending {
		r.pending[i] = 0
		r.pendingMaps[i] = nil
		r.flowMaps[i] = nil
	}
	for i := range r.got {
		r.got[i] = false
	}

	// Rebuild the fetch queue from the outputs that exist right now;
	// outputs lost in the same failure are re-queued separately and
	// will re-deliver on commit. An outputLost map's host is back up
	// but rejoined with an empty disk, so it cannot serve either.
	for _, m := range r.job.maps {
		if m.state != TaskDone || m.shuffleMB <= 0 {
			continue
		}
		if m.outputLost || c.trackers[m.outputHost].failed {
			continue
		}
		share := m.shuffleMB * r.job.partWeights[r.partition]
		r.pending[m.outputHost] += share
		r.pendingMaps[m.outputHost] = append(r.pendingMaps[m.outputHost], m)
	}
}

// requeueCommittedMap rolls a committed map back to pending because its
// output was lost. Milestones and counters are unwound so the barrier
// re-fires after the re-execution.
func (c *Cluster) requeueCommittedMap(j *Job, m *mapTask) {
	m.state = TaskPending
	m.tracker = nil
	m.outputHost = -1
	m.outputLost = false
	m.phase = 0
	m.pendingOps = 0
	j.mapsDone--
	j.ShuffledMB -= m.shuffleMB
	if j.BarrierAt >= 0 {
		j.BarrierAt = -1 // the barrier is no longer crossed
	}
	c.jt.requeueMap(j, m)
	c.emit(EvRequeued, j.Spec.Name, fmt.Sprintf("map/%d", m.id), -1, "output lost")
	c.tracef("map %s/%d re-queued: output lost", j.Spec.Name, m.id)
}

// DecommissionTracker drains tracker id gracefully: it stops receiving
// new tasks immediately, its running tasks finish in place, and its
// committed map outputs remain servable until the draining jobs
// complete. This is the administrative counterpart to FailTracker —
// Hadoop's "exclude file" / graceful decommission — and loses no work.
//
// The tracker is marked draining; once its last task finishes it is
// marked failed-equivalent for scheduling purposes but its outputs are
// still fetched (the node is up, only the tracker daemon is retiring).
func (c *Cluster) DecommissionTracker(id int) error {
	if id < 0 || id >= len(c.trackers) {
		return fmt.Errorf("mr: DecommissionTracker(%d): no such tracker", id)
	}
	tt := c.trackers[id]
	if tt.failed {
		return fmt.Errorf("mr: tracker %d already failed", id)
	}
	if tt.draining {
		return fmt.Errorf("mr: tracker %d already draining", id)
	}
	tt.draining = true
	c.emit(EvTrackerDrain, "", "", id, "")
	if c.tracer.Enabled() {
		c.tracer.Instant(c.clock.Now(), trackerPID(id), "failure", "tracker-drain")
	}
	c.tracef("tracker %d draining", tt.id)
	return nil
}

// ScheduleDecommission arranges DecommissionTracker(id) at virtual time
// at. Call before Run. Like ScheduleFailure, an inapplicable
// decommission is logged as a fault error rather than panicking.
func (c *Cluster) ScheduleDecommission(id int, at float64) {
	c.clock.Schedule(at, fmt.Sprintf("drain tt%d", id), func() {
		c.faultErr(id, "decommission", c.DecommissionTracker(id))
	})
}

// ScheduleSlowdown injects a transient degradation on node id: extra
// contention pressure (a noisy neighbour, a failing disk, a background
// scrub) during [at, at+duration). Unlike a heterogeneous NodeSpec this
// is temporary, which is exactly the situation speculative execution
// exists for. Call before Run.
func (c *Cluster) ScheduleSlowdown(id int, pressure, at, duration float64) {
	if id < 0 || id >= len(c.trackers) {
		panic(fmt.Sprintf("mr: ScheduleSlowdown(%d): no such tracker", id))
	}
	if pressure <= 0 || duration <= 0 {
		panic(fmt.Sprintf("mr: ScheduleSlowdown pressure %v duration %v must be positive", pressure, duration))
	}
	c.clock.Schedule(at, fmt.Sprintf("slowdown tt%d", id), func() {
		act := &resource.Activity{
			Kind:     resource.Phantom,
			Pressure: pressure,
			Label:    fmt.Sprintf("slowdown tt%d", id),
		}
		c.Mutate(func() { c.nodes[id].Add(act) })
		c.tracef("node %d slowdown begins (pressure %+.2f)", id, pressure)
		c.clock.After(duration, lazyLabel(&c.trackers[id].slowdownEndLabel, "slowdown-end tt%d", id), func() {
			c.Mutate(func() { c.nodes[id].Remove(act) })
			c.tracef("node %d slowdown ends", id)
		})
	})
}
