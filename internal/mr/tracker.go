package mr

import (
	"fmt"
	"slices"
	"sort"

	"smapreduce/internal/resource"
	"smapreduce/internal/sim"
	"smapreduce/internal/stats"
	"smapreduce/internal/trace"
)

// TaskTracker is one worker daemon: it owns the node's working slots,
// launches tasks into them, reports statistics to the job tracker on
// every heartbeat, and applies slot-change commands lazily.
type TaskTracker struct {
	c    *Cluster
	id   int
	node *resource.Node

	// Slot targets. The lazy changer never kills a running task: when a
	// target drops below the running count, launches simply stop until
	// enough tasks finish on their own (§III-D).
	mapTarget    int
	reduceTarget int

	runningMaps    map[*mapTask]struct{}
	runningReduces map[*reduceTask]struct{}

	// Cumulative counters and EWMA rate estimates sampled at heartbeats.
	mapInputDoneMB  float64
	mapOutputDoneMB float64
	shuffleDoneMB   float64

	mapInputRate  *stats.EWMA // MB/s of map input processed
	mapOutputRate *stats.EWMA // MB/s of shuffle-bound map output produced
	shuffleRate   *stats.EWMA // MB/s of shuffle bytes received

	failed   bool
	draining bool

	// Heartbeat-loss fault state (internal/chaos): a silent tracker is
	// blacklisted after BlacklistTimeout and serves an exponentially
	// backed-off probation once its heartbeats resume. Running tasks
	// keep executing throughout — only new assignment is gated.
	hbLost         bool
	blacklisted    bool
	probation      bool
	blacklistCount int // incidents, drives the probation backoff
	hbResume       sim.EventRef
	blacklistCheck sim.EventRef
	probationEnd   sim.EventRef

	lastHB            float64
	lastMapInputMB    float64
	lastMapOutputMB   float64
	lastShuffleMB     float64
	hbEvent           sim.EventRef
	disturbance       *resource.Activity
	disturbanceExpiry sim.EventRef

	// Heartbeat machinery, bound once at construction so the periodic
	// re-arm allocates nothing: the event label, the clock callback,
	// and the Mutate body it wraps.
	hbLabel  string
	hbFn     func()
	hbTickFn func()

	// Fault-event labels, formatted lazily on the first incident and
	// cached, so mid-run fault scheduling never pays fmt.Sprintf.
	blacklistLabel   string
	hbResumeLabel    string
	probationLabel   string
	slowdownEndLabel string

	// scratch backs the inFlight* summations between heartbeats.
	scratch []float64

	drainSpan trace.SpanRef // open lazy-drain span when tracing
}

func newTaskTracker(c *Cluster, id int, node *resource.Node) *TaskTracker {
	tt := &TaskTracker{
		c:              c,
		id:             id,
		node:           node,
		mapTarget:      c.cfg.MapSlots,
		reduceTarget:   c.cfg.ReduceSlots,
		runningMaps:    make(map[*mapTask]struct{}),
		runningReduces: make(map[*reduceTask]struct{}),
		mapInputRate:   stats.NewEWMA(0.3),
		mapOutputRate:  stats.NewEWMA(0.3),
		shuffleRate:    stats.NewEWMA(0.3),
		hbLabel:        fmt.Sprintf("hb tt%d", id),
	}
	tt.hbFn = tt.heartbeat
	tt.hbTickFn = tt.hbTick
	return tt
}

// lazyLabel formats a per-id event label on first use and caches it in
// *slot, so repeat incidents schedule with zero formatting.
func lazyLabel(slot *string, format string, id int) string {
	if *slot == "" {
		*slot = fmt.Sprintf(format, id)
	}
	return *slot
}

// ID returns the tracker's node ID.
func (tt *TaskTracker) ID() int { return tt.id }

// MapSlots returns the current map slot target.
func (tt *TaskTracker) MapSlots() int { return tt.mapTarget }

// ReduceSlots returns the current reduce slot target.
func (tt *TaskTracker) ReduceSlots() int { return tt.reduceTarget }

// RunningMaps returns the number of occupied map slots.
func (tt *TaskTracker) RunningMaps() int { return len(tt.runningMaps) }

// RunningReduces returns the number of occupied reduce slots.
func (tt *TaskTracker) RunningReduces() int { return len(tt.runningReduces) }

// Failed reports whether the tracker has been killed by fault injection.
func (tt *TaskTracker) Failed() bool { return tt.failed }

// Draining reports whether the tracker is being decommissioned.
func (tt *TaskTracker) Draining() bool { return tt.draining }

// HeartbeatLost reports whether the tracker is inside an injected
// heartbeat-loss window.
func (tt *TaskTracker) HeartbeatLost() bool { return tt.hbLost }

// Blacklisted reports whether the job tracker has blacklisted this
// tracker for prolonged heartbeat silence.
func (tt *TaskTracker) Blacklisted() bool { return tt.blacklisted }

// OnProbation reports whether the tracker is serving its post-blacklist
// probation.
func (tt *TaskTracker) OnProbation() bool { return tt.probation }

// schedulable reports whether the job tracker may hand this tracker new
// work. Failed, draining, silent, blacklisted and probation trackers
// all keep running what they have but receive nothing new.
func (tt *TaskTracker) schedulable() bool {
	return !tt.failed && !tt.draining && !tt.hbLost && !tt.blacklisted && !tt.probation
}

// freeMapSlots reports launchable map slots under the active policy.
// Under YARN, once the head job passes its reduce slow-start the node
// reserves the configured reduce-container share so the reduce ramp is
// not starved by map priority (the AM would otherwise never see its
// reduce requests granted); before that point maps may fill the whole
// memory pool — the early map burst that distinguishes YARN from V1.
func (tt *TaskTracker) freeMapSlots() int {
	if tt.c.cfg.Policy == YARN {
		mem := tt.freeMemMB()
		if tt.c.jt.reduceDemandExists() {
			reserve := float64(tt.c.cfg.ReduceSlots-len(tt.runningReduces)) * tt.c.cfg.ReduceContainerMB
			if reserve > 0 {
				mem -= reserve
			}
		}
		free := int(mem / tt.c.cfg.MapContainerMB)
		if free < 0 {
			return 0
		}
		return free
	}
	free := tt.mapTarget - len(tt.runningMaps)
	if free < 0 {
		return 0
	}
	return free
}

// freeReduceSlots reports launchable reduce slots under the active
// policy. Under YARN this must be called after map assignment so maps
// keep their priority claim on the memory pool.
func (tt *TaskTracker) freeReduceSlots() int {
	if tt.c.cfg.Policy == YARN {
		free := int(tt.freeMemMB() / tt.c.cfg.ReduceContainerMB)
		if free < 0 {
			return 0
		}
		return free
	}
	free := tt.reduceTarget - len(tt.runningReduces)
	if free < 0 {
		return 0
	}
	return free
}

// freeMemMB is the YARN policy's unallocated container memory.
func (tt *TaskTracker) freeMemMB() float64 {
	capMB := float64(tt.c.cfg.MapSlots)*tt.c.cfg.MapContainerMB +
		float64(tt.c.cfg.ReduceSlots)*tt.c.cfg.ReduceContainerMB
	used := float64(len(tt.runningMaps))*tt.c.cfg.MapContainerMB +
		float64(len(tt.runningReduces))*tt.c.cfg.ReduceContainerMB
	return capMB - used
}

// setTargets applies a slot-change command. The disturbance models the
// transient rate dip the paper observes right after a change; the lazy
// semantics are inherent in how freeMapSlots treats excess runners.
func (tt *TaskTracker) setTargets(maps, reduces int) {
	if maps == tt.mapTarget && reduces == tt.reduceTarget {
		return
	}
	if maps <= 0 || reduces <= 0 {
		panic(fmt.Sprintf("mr: tracker %d given non-positive slot targets %d/%d", tt.id, maps, reduces))
	}
	tt.c.inv.CheckSlotTargets(tt.id, maps, reduces, tt.c.cfg.MaxMapSlots, tt.c.cfg.MaxReduceSlots)
	tt.mapTarget = maps
	tt.reduceTarget = reduces
	tt.c.emit(EvSlotChange, "", "", tt.id, fmt.Sprintf("%d/%d", maps, reduces))
	if tt.c.tracer.Enabled() {
		tt.c.tracer.Instant(tt.c.clock.Now(), trackerPID(tt.id), "slot", "slot-change",
			trace.Num("maps", float64(maps)), trace.Num("reduces", float64(reduces)))
	}
	tt.applyDisturbance()
	if tt.c.cfg.EagerSlotChange {
		tt.killSurplusMaps()
	}
	tt.traceDrainCheck()
}

// killSurplusMaps implements the eager (non-paper) slot-shrink policy:
// the newest running map attempts beyond the target are killed and
// re-queued immediately, paying the re-execution cost the lazy policy
// avoids (§III-D). Reduce tasks are never killed — re-running a
// reducer forfeits its fetched data, which no policy would choose.
func (tt *TaskTracker) killSurplusMaps() {
	surplus := len(tt.runningMaps) - tt.mapTarget
	if surplus <= 0 {
		return
	}
	victims := make([]*mapTask, 0, len(tt.runningMaps))
	for m := range tt.runningMaps {
		victims = append(victims, m)
	}
	// Kill the least-progressed attempts first (cheapest to redo),
	// breaking ties by the total attempt order so the victim sequence
	// is pinned even between attempts of the same logical task.
	sort.Slice(victims, func(i, k int) bool {
		pi, pk := victims[i].progressFraction(), victims[k].progressFraction()
		if pi != pk {
			return pi < pk
		}
		return mapAttemptLess(victims[i], victims[k])
	})
	for _, m := range victims[:surplus] {
		tt.c.abortMap(m)
		tt.c.tracef("map %s/%d killed by eager slot change on tt%d", m.job.Spec.Name, m.id, tt.id)
	}
}

// applyDisturbance injects StabilizeTime seconds of extra pressure.
func (tt *TaskTracker) applyDisturbance() {
	c := tt.c
	if c.cfg.SlotChangePressure <= 0 || c.cfg.StabilizeTime <= 0 {
		return
	}
	if tt.disturbance != nil {
		// Already perturbed: extend the window.
		c.clock.Cancel(tt.disturbanceExpiry)
	} else {
		tt.disturbance = &resource.Activity{
			Kind:     resource.Phantom,
			Weight:   0,
			Pressure: c.cfg.SlotChangePressure,
			Label:    fmt.Sprintf("slot-change tt%d", tt.id),
		}
		tt.node.Add(tt.disturbance)
	}
	tt.disturbanceExpiry = c.clock.After(c.cfg.StabilizeTime, "stabilize", func() {
		c.Mutate(func() {
			if tt.disturbance != nil {
				tt.node.Remove(tt.disturbance)
				tt.disturbance = nil
			}
		})
	})
}

// heartbeat is the tracker's periodic exchange with the job tracker:
// sample statistics, pick up slot commands, and receive new tasks.
// The clock's periodic fast path re-arms the chain in place after this
// returns (same hbEvent ref for the chain's whole life), and the
// Mutate body is a cached closure, so a heartbeat on an idle tracker
// allocates nothing.
func (tt *TaskTracker) heartbeat() {
	tt.c.Mutate(tt.hbTickFn)
}

// hbTick is the heartbeat's mutation body.
func (tt *TaskTracker) hbTick() {
	c := tt.c
	now := c.clock.Now()

	// Sample window rates since the previous heartbeat. Op
	// fractions settle lazily on read, so they are current here.
	if dt := now - tt.lastHB; dt > 0 {
		tt.mapInputRate.Observe((tt.mapInputDoneMB + tt.inFlightMapInputMB() - tt.lastMapInputMB) / dt)
		tt.mapOutputRate.Observe((tt.mapOutputDoneMB + tt.inFlightMapOutputMB() - tt.lastMapOutputMB) / dt)
		tt.shuffleRate.Observe((tt.shuffleDoneMB + tt.inFlightShuffleMB() - tt.lastShuffleMB) / dt)
	}
	tt.lastHB = now
	tt.lastMapInputMB = tt.mapInputDoneMB + tt.inFlightMapInputMB()
	tt.lastMapOutputMB = tt.mapOutputDoneMB + tt.inFlightMapOutputMB()
	tt.lastShuffleMB = tt.shuffleDoneMB + tt.inFlightShuffleMB()

	// Heartbeat response: slot commands decided by the slot manager.
	if c.cfg.Policy == Dynamic {
		maps, reduces := c.jt.desiredSlots(tt.id)
		tt.setTargets(maps, reduces)
	}

	// Task assignment for free slots.
	c.jt.assign(tt)
}

// inFlightMapInputMB estimates input MB consumed by still-running map
// tasks, so window rates do not jump at task boundaries. The value
// slices behind the inFlight* estimators are tracker-owned scratch,
// reused call to call.
func (tt *TaskTracker) inFlightMapInputMB() float64 {
	vals := tt.scratch[:0]
	for m := range tt.runningMaps {
		if m.phase == 0 && m.computeOp != nil {
			vals = append(vals, m.split.SizeMB*m.computeOp.fraction())
		} else if m.phase > 0 {
			vals = append(vals, m.split.SizeMB)
		}
	}
	total := sumAscending(vals)
	tt.scratch = vals[:0]
	return total
}

// inFlightMapOutputMB mirrors inFlightMapInputMB for produced output.
func (tt *TaskTracker) inFlightMapOutputMB() float64 {
	vals := tt.scratch[:0]
	for m := range tt.runningMaps {
		if m.phase == 0 && m.computeOp != nil {
			vals = append(vals, m.shuffleMB*m.computeOp.fraction())
		} else if m.phase > 0 {
			vals = append(vals, m.shuffleMB)
		}
	}
	total := sumAscending(vals)
	tt.scratch = vals[:0]
	return total
}

// inFlightShuffleMB counts bytes moved by still-active fetch flows.
func (tt *TaskTracker) inFlightShuffleMB() float64 {
	vals := tt.scratch[:0]
	for r := range tt.runningReduces {
		for _, sf := range r.flows {
			if sf != nil {
				vals = append(vals, sf.op.movedMB())
			}
		}
	}
	total := sumAscending(vals)
	tt.scratch = vals[:0]
	return total
}

// sumAscending adds the values smallest-first, making the float result
// independent of map iteration order. The full-precision sums feed the
// audit records and trace export, which must be bit-reproducible
// run-to-run.
func sumAscending(vals []float64) float64 {
	slices.Sort(vals)
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total
}

// stop cancels the tracker's periodic machinery at simulation shutdown
// (and on crash: a failed tracker's pending fault timers must not fire
// against its carcass).
func (tt *TaskTracker) stop() {
	tt.c.clock.Cancel(tt.hbEvent)
	tt.c.clock.Cancel(tt.disturbanceExpiry)
	tt.c.clock.Cancel(tt.hbResume)
	tt.c.clock.Cancel(tt.blacklistCheck)
	tt.c.clock.Cancel(tt.probationEnd)
	tt.hbResume, tt.blacklistCheck, tt.probationEnd = 0, 0, 0
	if tt.disturbance != nil {
		tt.node.Remove(tt.disturbance)
		tt.disturbance = nil
	}
}
