package mr

import (
	"strconv"

	"smapreduce/internal/netsim"
	"smapreduce/internal/trace"
)

// Tracing wiring: the runtime's span and instant emit points. All of
// them guard with tracer.Enabled() before building names or fields, so
// a run without tracing pays one nil check per site (pinned by the
// zero-alloc guard in internal/trace).
//
// Track layout (see DESIGN.md trace schema):
//
//	PIDJobs         job lifecycle spans, barrier instants
//	PIDController   slot-manager tick spans and decision instants
//	PIDNetwork      flow spans (verbosity-gated)
//	PIDProgress     aggregate progress milestone instants (progress.go)
//	PIDTrackerBase+i  tracker i: task attempt spans on slot lanes,
//	                  drain spans, slot-change/speculation instants

// EnableTracing attaches a tracer and names the runtime's tracks. Call
// before Run. At VerbosityFlows and above, fabric flows get lifecycle
// spans on the network track (shuffle fetches at level 1; DFS reads
// and output replication too at level 2).
func (c *Cluster) EnableTracing(tr *trace.Tracer) {
	if !tr.Enabled() {
		return
	}
	c.tracer = tr
	tr.SetTrackName(trace.PIDJobs, "jobs")
	tr.SetTrackName(trace.PIDController, "controller")
	tr.SetTrackName(trace.PIDProgress, "progress")
	for i := range c.trackers {
		tr.SetTrackName(trace.PIDTrackerBase+i, "tt"+strconv.Itoa(i))
	}
	if tr.Verbosity() >= trace.VerbosityFlows {
		tr.SetTrackName(trace.PIDNetwork, "network")
		c.flowSpans = make(map[*netsim.Flow]trace.SpanRef)
		c.fabric.SetFlowObserver(c.traceFlowAdd, c.traceFlowRemove)
	}
}

// Tracer returns the attached tracer (nil when tracing is off).
func (c *Cluster) Tracer() *trace.Tracer { return c.tracer }

// trackerPID maps a tracker id to its trace track.
func trackerPID(id int) int { return trace.PIDTrackerBase + id }

// flowCategory classifies a fabric flow by its label prefix, mirroring
// how the runtime names its flows, and reports the verbosity level the
// span requires. Unknown labels trace at the highest level.
func flowCategory(label string) (cat string, minVerbosity int) {
	switch {
	case len(label) >= 8 && label[:8] == "shuffle ":
		return "shuffle", trace.VerbosityFlows
	case len(label) >= 5 && label[:5] == "read ":
		return "read", trace.VerbosityAllFlows
	case len(label) >= 5 && label[:5] == "repl ":
		return "repl", trace.VerbosityAllFlows
	}
	return "flow", trace.VerbosityAllFlows
}

// traceFlowAdd opens a span for a newly registered flow, if the
// verbosity admits its category.
func (c *Cluster) traceFlowAdd(f *netsim.Flow) {
	cat, min := flowCategory(f.Label)
	if c.tracer.Verbosity() < min {
		return
	}
	c.flowSpans[f] = c.tracer.Begin(c.clock.Now(), trace.PIDNetwork, cat, f.Label,
		trace.Num("src", float64(f.Src)), trace.Num("dst", float64(f.Dst)),
		trace.Num("MB", f.RemainingMB))
}

// traceFlowRemove closes a flow's span.
func (c *Cluster) traceFlowRemove(f *netsim.Flow) {
	if ref, ok := c.flowSpans[f]; ok {
		c.tracer.End(c.clock.Now(), ref)
		delete(c.flowSpans, f)
	}
}

// traceJobBegin opens the job's lifecycle span at admission.
func (c *Cluster) traceJobBegin(j *Job) {
	if !c.tracer.Enabled() {
		return
	}
	j.span = c.tracer.Begin(c.clock.Now(), trace.PIDJobs, "job", j.Spec.Name,
		trace.Num("maps", float64(j.NumMaps())), trace.Num("reduces", float64(j.NumReduces())),
		trace.Num("input-MB", j.Spec.InputMB))
}

// traceJobEnd closes the job span at completion.
func (c *Cluster) traceJobEnd(j *Job) {
	if !c.tracer.Enabled() {
		return
	}
	c.tracer.End(c.clock.Now(), j.span, trace.Num("shuffled-MB", j.ShuffledMB),
		trace.Num("speculative", float64(j.SpeculativeLaunched)))
	j.span = 0
}

// traceBarrier marks the job's map/reduce barrier on the jobs track.
func (c *Cluster) traceBarrier(j *Job) {
	if !c.tracer.Enabled() {
		return
	}
	c.tracer.Instant(c.clock.Now(), trace.PIDJobs, "job", "barrier "+j.Spec.Name)
}

// traceMapBegin opens a map attempt's span on its tracker's track. The
// lane the span lands on reads as the occupied working slot.
func (c *Cluster) traceMapBegin(tt *TaskTracker, m *mapTask) {
	if !c.tracer.Enabled() {
		return
	}
	name := m.job.Spec.Name + "/map/" + strconv.Itoa(m.id)
	if m.backupOf != nil {
		name += " (backup)"
	}
	m.span = c.tracer.Begin(c.clock.Now(), trackerPID(tt.id), "map", name,
		trace.Num("split-MB", m.split.SizeMB))
}

// traceMapEnd closes a map attempt's span with its outcome: "done",
// "duplicate" (lost a speculative race at commit), "killed" (lost it
// earlier, or eager slot shrink) or "aborted" (tracker failure).
func (c *Cluster) traceMapEnd(m *mapTask, outcome string) {
	if !c.tracer.Enabled() {
		return
	}
	c.tracer.End(c.clock.Now(), m.span, trace.Str("outcome", outcome))
	m.span = 0
}

// traceReduceBegin opens a reduce attempt's span on its tracker.
func (c *Cluster) traceReduceBegin(tt *TaskTracker, r *reduceTask) {
	if !c.tracer.Enabled() {
		return
	}
	r.span = c.tracer.Begin(c.clock.Now(), trackerPID(tt.id), "reduce",
		r.job.Spec.Name+"/reduce/"+strconv.Itoa(r.partition))
}

// traceReduceEnd closes a reduce attempt's span with its outcome.
func (c *Cluster) traceReduceEnd(r *reduceTask, outcome string) {
	if !c.tracer.Enabled() {
		return
	}
	c.tracer.End(c.clock.Now(), r.span,
		trace.Str("outcome", outcome), trace.Num("fetched-MB", r.fetchedMB))
	r.span = 0
}

// traceDrainCheck maintains the tracker's lazy-drain span: open while
// the running task count exceeds the (lowered) slot target — the
// window in which launches are suppressed and the surplus drains by
// attrition (§III-D). Called on every slot-target change and whenever
// a slot frees.
func (tt *TaskTracker) traceDrainCheck() {
	c := tt.c
	if !c.tracer.Enabled() {
		return
	}
	surplus := len(tt.runningMaps) - tt.mapTarget
	if s := len(tt.runningReduces) - tt.reduceTarget; s > surplus {
		surplus = s
	}
	if tt.failed {
		surplus = 0 // aborts empty the slots; close any open drain
	}
	switch {
	case surplus > 0 && tt.drainSpan == 0:
		tt.drainSpan = c.tracer.Begin(c.clock.Now(), trackerPID(tt.id), "drain", "slot-drain",
			trace.Num("surplus", float64(surplus)))
	case surplus <= 0 && tt.drainSpan != 0:
		c.tracer.End(c.clock.Now(), tt.drainSpan)
		tt.drainSpan = 0
	}
}
