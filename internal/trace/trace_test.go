package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestSpanLifecycleAndLanes(t *testing.T) {
	tr := New(Options{})
	tr.SetTrackName(PIDJobs, "jobs")
	// Two overlapping spans on one track must land on distinct lanes;
	// after both end, the lanes free and the next span reuses lane 0.
	a := tr.Begin(1.0, PIDJobs, "task", "m0")
	b := tr.Begin(1.5, PIDJobs, "task", "m1")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("bad refs a=%d b=%d", a, b)
	}
	tr.End(2.0, a)
	tr.End(3.0, b)
	c := tr.Begin(4.0, PIDJobs, "task", "m2")
	tr.End(5.0, c)
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := tr.OpenSpans(); got != 0 {
		t.Fatalf("OpenSpans = %d, want 0", got)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Cat  string  `json:"cat"`
			Name string  `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 metadata + 3 complete events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("traceEvents = %d, want 4", len(doc.TraceEvents))
	}
	lanes := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			lanes[e.Name] = e.Tid
			if e.Dur <= 0 {
				t.Errorf("span %s has dur %v", e.Name, e.Dur)
			}
		}
	}
	if lanes["m0"] == lanes["m1"] {
		t.Errorf("overlapping spans share lane %d", lanes["m0"])
	}
	if lanes["m2"] != 0 {
		t.Errorf("post-release span on lane %d, want 0 (reuse)", lanes["m2"])
	}
	// Seconds → microseconds scaling.
	for _, e := range doc.TraceEvents {
		if e.Name == "m0" && e.Ts != 1e6 {
			t.Errorf("m0 ts = %v, want 1e6", e.Ts)
		}
	}
}

func TestOpenSpansExportAsBegin(t *testing.T) {
	tr := New(Options{})
	tr.Begin(1.0, PIDJobs, "job", "running")
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ph":"B"`) {
		t.Fatalf("open span missing from export: %s", buf.String())
	}
	if got := tr.OpenSpans(); got != 1 {
		t.Fatalf("OpenSpans = %d, want 1", got)
	}
}

func TestEndIsIdempotentAndZeroRefSafe(t *testing.T) {
	tr := New(Options{})
	tr.End(1.0, 0) // zero ref: no-op
	a := tr.Begin(1.0, PIDJobs, "task", "m0")
	tr.End(2.0, a)
	tr.End(3.0, a) // double end: no-op
	if got := tr.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	// The freed slot must be reusable without corrupting the old ref.
	b := tr.Begin(4.0, PIDJobs, "task", "m1")
	tr.End(5.0, a) // stale ref now aliases b's slot? must not close b.
	if got := tr.OpenSpans(); got != 1 {
		t.Fatalf("OpenSpans after stale End = %d, want 1", got)
	}
	tr.End(6.0, b)
	if got := tr.OpenSpans(); got != 0 {
		t.Fatalf("OpenSpans = %d, want 0", got)
	}
}

func TestEvictionCountsDropped(t *testing.T) {
	tr := New(Options{Limit: 4})
	for i := 0; i < 6; i++ {
		tr.Instant(float64(i), PIDJobs, "x", "e")
	}
	if tr.Dropped() == 0 {
		t.Fatal("expected drops beyond limit")
	}
	if got := tr.Len(); got > 4 {
		t.Fatalf("Len = %d beyond limit 4", got)
	}
	if tr.Dropped()+tr.Len() != 6 {
		t.Fatalf("dropped %d + len %d != 6", tr.Dropped(), tr.Len())
	}
}

func TestFieldsExportAndNonFinite(t *testing.T) {
	tr := New(Options{})
	tr.Instant(1.0, PIDController, "decision", "d",
		Str("reason", "map-heavy"), Num("f", 1.25), Num("bad", math.NaN()), Num("inf", math.Inf(1)))
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	args := doc.TraceEvents[0].Args
	if args["reason"] != "map-heavy" {
		t.Errorf("reason = %v", args["reason"])
	}
	if args["f"] != 1.25 {
		t.Errorf("f = %v", args["f"])
	}
	if v, ok := args["bad"]; !ok || v != nil {
		t.Errorf("NaN field = %v, want null", v)
	}
	if v, ok := args["inf"]; !ok || v != nil {
		t.Errorf("Inf field = %v, want null", v)
	}
}

func TestSummary(t *testing.T) {
	tr := New(Options{})
	a := tr.Begin(0, PIDJobs, "map", "m0")
	tr.End(10, a)
	tr.Instant(5, PIDController, "decision", "d")
	s := tr.Summary()
	for _, want := range []string{"map", "decision", "events=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	if got := (*Tracer)(nil).Summary(); !strings.Contains(got, "disabled") {
		t.Errorf("nil summary = %q", got)
	}
}

// TestNilTracerZeroAlloc pins the disabled-tracing cost: every method
// on a nil *Tracer must be allocation-free. Arg-bearing call sites in
// the runtime additionally guard with Enabled() because building the
// variadic Field slice itself allocates.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			t.Fatal("nil tracer claims enabled")
		}
		ref := tr.Begin(1.0, PIDJobs, "task", "m")
		tr.End(2.0, ref)
		tr.Instant(1.5, PIDController, "decision", "d")
		tr.SetTrackName(PIDJobs, "jobs")
		_ = tr.Verbosity()
		_ = tr.Len()
		_ = tr.Dropped()
		_ = tr.OpenSpans()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocates %.1f per op, want 0", allocs)
	}
}

func TestVerbosity(t *testing.T) {
	if got := (*Tracer)(nil).Verbosity(); got != 0 {
		t.Fatalf("nil verbosity = %d", got)
	}
	if got := New(Options{Verbosity: VerbosityAllFlows}).Verbosity(); got != VerbosityAllFlows {
		t.Fatalf("verbosity = %d", got)
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	tr := New(Options{})
	a := tr.Begin(5.0, PIDJobs, "task", "m")
	tr.End(4.0, a) // clock never goes backwards, but clamp defensively
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"dur":-`) {
		t.Fatalf("negative dur exported: %s", buf.String())
	}
}
