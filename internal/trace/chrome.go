package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteChromeJSON exports the trace in Chrome trace-event JSON (the
// "JSON object format": {"traceEvents": [...]}), which Perfetto and
// chrome://tracing open directly. Virtual seconds scale to the
// format's microseconds, so one simulated second renders as one trace
// second. Still-open spans export as 'B' (begin-only) events, which
// the viewers render as running to the end of the trace — useful when
// downloading mid-run from the /trace endpoint.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	emit := func(e event) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		writeEvent(bw, e)
	}
	if t != nil {
		t.mu.Lock()
		for _, e := range t.meta {
			emit(e)
		}
		for _, e := range t.events {
			emit(e)
		}
		for i := range t.spans {
			sp := &t.spans[i]
			if sp.live {
				emit(event{ph: 'B', ts: sp.start, pid: sp.pid, tid: sp.tid, cat: sp.cat, name: sp.name, fields: sp.fields})
			}
		}
		t.mu.Unlock()
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

// writeEvent renders one trace event. Hand-rolled rather than
// encoding/json so export needs no intermediate map allocations and
// non-finite numbers degrade to null instead of erroring.
func writeEvent(bw *bufio.Writer, e event) {
	bw.WriteString("{\"ph\":\"")
	bw.WriteByte(e.ph)
	bw.WriteString("\",\"pid\":")
	bw.WriteString(strconv.Itoa(e.pid))
	bw.WriteString(",\"tid\":")
	bw.WriteString(strconv.Itoa(e.tid))
	if e.ph == 'M' {
		// Track metadata: name the "process".
		bw.WriteString(",\"name\":\"process_name\",\"args\":{\"name\":")
		bw.WriteString(strconv.Quote(e.name))
		bw.WriteString("}}")
		return
	}
	bw.WriteString(",\"ts\":")
	writeMicros(bw, e.ts)
	if e.ph == 'X' {
		bw.WriteString(",\"dur\":")
		writeMicros(bw, e.dur)
	}
	if e.ph == 'i' {
		// Global scope: draw the instant across the whole track group.
		bw.WriteString(",\"s\":\"g\"")
	}
	if e.cat != "" {
		bw.WriteString(",\"cat\":")
		bw.WriteString(strconv.Quote(e.cat))
	}
	bw.WriteString(",\"name\":")
	bw.WriteString(strconv.Quote(e.name))
	if len(e.fields) > 0 {
		bw.WriteString(",\"args\":{")
		for i, f := range e.fields {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(strconv.Quote(f.Key))
			bw.WriteByte(':')
			if f.isNum {
				if math.IsNaN(f.num) || math.IsInf(f.num, 0) {
					bw.WriteString("null")
				} else {
					bw.WriteString(strconv.FormatFloat(f.num, 'g', -1, 64))
				}
			} else {
				bw.WriteString(strconv.Quote(f.str))
			}
		}
		bw.WriteByte('}')
	}
	bw.WriteByte('}')
}

// writeMicros renders a virtual-seconds timestamp as integer
// microseconds (the trace-event format's unit).
func writeMicros(bw *bufio.Writer, sec float64) {
	if math.IsNaN(sec) || math.IsInf(sec, 0) {
		bw.WriteByte('0')
		return
	}
	bw.WriteString(strconv.FormatInt(int64(math.Round(sec*1e6)), 10))
}

// Summary renders a per-category table over closed spans and instants:
// event count, and for spans the total and mean duration. It is the
// quick no-Perfetto view printed by smrsim when tracing is on.
func (t *Tracer) Summary() string {
	if t == nil {
		return "trace: disabled\n"
	}
	type agg struct {
		spans    int
		instants int
		total    float64
	}
	t.mu.Lock()
	byCat := make(map[string]*agg)
	for _, e := range t.events {
		a := byCat[e.cat]
		if a == nil {
			a = &agg{}
			byCat[e.cat] = a
		}
		switch e.ph {
		case 'X':
			a.spans++
			a.total += e.dur
		case 'i':
			a.instants++
		}
	}
	open := 0
	for i := range t.spans {
		if t.spans[i].live {
			open++
		}
	}
	dropped := t.dropped
	n := len(t.events)
	t.mu.Unlock()

	cats := make([]string, 0, len(byCat))
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %9s %12s %10s\n", "category", "spans", "instants", "total(s)", "mean(s)")
	for _, c := range cats {
		a := byCat[c]
		mean := 0.0
		if a.spans > 0 {
			mean = a.total / float64(a.spans)
		}
		fmt.Fprintf(&b, "%-16s %8d %9d %12.1f %10.2f\n", c, a.spans, a.instants, a.total, mean)
	}
	fmt.Fprintf(&b, "events=%d dropped=%d open-spans=%d\n", n, dropped, open)
	return b.String()
}
