package trace

import (
	"strings"
	"testing"
)

func TestTracerResetMatchesFresh(t *testing.T) {
	drive := func(tr *Tracer) ([]SpanRef, string) {
		tr.SetTrackName(PIDJobs, "jobs")
		var refs []SpanRef
		r1 := tr.Begin(0, PIDJobs, "job", "j0")
		r2 := tr.Begin(1, PIDJobs, "job", "j1")
		refs = append(refs, r1, r2)
		tr.End(2, r1, Num("n", 1))
		r3 := tr.Begin(3, PIDJobs, "job", "j2") // reuses j0's lane and slot
		refs = append(refs, r3)
		tr.End(4, r2)
		tr.End(5, r3)
		tr.Instant(6, PIDController, "tick", "t")
		var b strings.Builder
		if err := tr.WriteChromeJSON(&b); err != nil {
			t.Fatal(err)
		}
		return refs, b.String() + tr.Summary()
	}
	reused := New(Options{Limit: 64})
	drive(reused)
	reused.Reset()
	fresh := New(Options{Limit: 64})
	wantRefs, wantSum := drive(fresh)
	gotRefs, gotSum := drive(reused)
	for i := range wantRefs {
		// A reset tracer must hand out the exact same refs as a fresh
		// one: span slots, generations and lanes all restart.
		if wantRefs[i] != gotRefs[i] {
			t.Fatalf("ref %d differs: fresh %#x, reused %#x", i, int64(wantRefs[i]), int64(gotRefs[i]))
		}
	}
	if wantSum != gotSum {
		t.Fatalf("summaries differ:\nfresh:\n%s\nreused:\n%s", wantSum, gotSum)
	}
}

func TestTracerResetClearsState(t *testing.T) {
	tr := New(Options{Limit: 8})
	ref := tr.Begin(0, PIDJobs, "job", "j")
	tr.Instant(1, PIDJobs, "i", "x")
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.OpenSpans() != 0 || tr.Began() != 0 {
		t.Fatalf("state after Reset: len=%d dropped=%d open=%d began=%d",
			tr.Len(), tr.Dropped(), tr.OpenSpans(), tr.Began())
	}
	// Ending a pre-reset ref is a harmless no-op: its slot is gone.
	tr.End(2, ref)
	if tr.Len() != 0 {
		t.Fatal("stale ref End recorded an event after Reset")
	}
}

func TestNilTracerReset(t *testing.T) {
	var tr *Tracer
	tr.Reset() // must not panic
}
