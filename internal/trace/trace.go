// Package trace records structured spans and instants of the runtime's
// causal sequences — job, task, shuffle-flow and slot-drain lifecycles,
// slot-manager ticks and decisions — and exports them as Chrome
// trace-event JSON, so a run opens directly in Perfetto or
// chrome://tracing, plus a plain-text per-category summary.
//
// The sampled telemetry layer (internal/telemetry) answers "what was
// the value at tick t"; this layer answers "what happened, caused by
// what, and how long did it take". The paper's mechanisms — slow start,
// balance-factor slot moves, thrashing confirmation over consecutive
// suspected periods, lazy tail-stretch shutdown — are exactly such
// causal sequences, which sampling cannot reconstruct.
//
// Cost model: like telemetry.Invariants, the tracer follows the
// nil-receiver pattern. A disabled tracer is a nil *Tracer; every
// method no-ops on it, so the instrumented hot paths pay one
// predictable branch and zero allocations (pinned by an AllocsPerRun
// guard in the tests). Call sites that must format names or build
// fields guard with Enabled() so even the argument construction is
// skipped when tracing is off.
//
// Timestamps are virtual-simulation seconds; the Chrome export scales
// them to microseconds, so one trace second renders as one simulated
// second.
package trace

import (
	"fmt"
	"math"
	"sync"
)

// Verbosity levels gate the high-volume span sources.
const (
	// VerbosityTasks records jobs, tasks, controller activity and
	// instants — the default.
	VerbosityTasks = 0
	// VerbosityFlows additionally records shuffle fetch flow spans.
	VerbosityFlows = 1
	// VerbosityAllFlows records every fabric flow (DFS reads and output
	// replication included).
	VerbosityAllFlows = 2
)

// Well-known track ids ("processes" in the Chrome trace model). The mr
// runtime registers its tracks under these ids; per-tracker tracks use
// PIDTrackerBase + tracker id. Documented as the trace schema contract
// in DESIGN.md.
const (
	PIDJobs        = 1
	PIDController  = 2
	PIDNetwork     = 3
	PIDProgress    = 4
	PIDTrackerBase = 10
)

// DefaultLimit bounds the retained event count when Options.Limit is
// non-positive. At roughly 100 bytes/event this caps memory near
// 100 MB for pathological runs; normal runs stay far below it.
const DefaultLimit = 1 << 20

// Field is one key/value argument attached to a span or instant. Build
// with Str or Num; the zero Field is skipped on export.
type Field struct {
	Key   string
	str   string
	num   float64
	isNum bool
}

// Str builds a string-valued field.
func Str(k, v string) Field { return Field{Key: k, str: v} }

// Num builds a numeric field. NaN and ±Inf export as null (JSON has no
// encoding for them).
func Num(k string, v float64) Field { return Field{Key: k, num: v, isNum: true} }

// SpanRef identifies an open span. The zero SpanRef is invalid (and is
// what a nil tracer returns), so span handles embed safely into structs
// without sentinels. The upper bits carry the slot's generation, so a
// stale ref held past End cannot close the slot's next occupant.
type SpanRef int64

// Options tunes a Tracer.
type Options struct {
	// Limit caps retained events; the oldest half is evicted beyond it
	// (counted in Dropped). Non-positive means DefaultLimit.
	Limit int
	// Verbosity selects which span sources record (Verbosity* consts).
	Verbosity int
}

// event is one recorded trace event: a completed span (ph 'X'), an
// instant (ph 'i') or track metadata (ph 'M').
type event struct {
	ph     byte
	ts     float64 // virtual seconds
	dur    float64 // span duration, seconds (ph 'X' only)
	pid    int
	tid    int
	cat    string
	name   string
	fields []Field
}

// openSpan is a begun-but-unfinished span.
type openSpan struct {
	start    float64
	pid, tid int
	cat      string
	name     string
	fields   []Field
	live     bool
	gen      int32
	nextFree int32
}

// laneSet allocates the lowest free lane ("thread" row) per track, so
// concurrent spans of one track render side by side — on a tracker
// track the lanes read as working slots in use.
type laneSet struct {
	used []bool
}

func (l *laneSet) alloc() int {
	for i, u := range l.used {
		if !u {
			l.used[i] = true
			return i
		}
	}
	l.used = append(l.used, true)
	return len(l.used) - 1
}

func (l *laneSet) release(i int) {
	if i >= 0 && i < len(l.used) {
		l.used[i] = false
	}
}

// Tracer records spans and instants. Safe for concurrent use: the
// serve mode's /trace endpoint snapshots a live run from another
// goroutine. A nil Tracer is the disabled tracer; every method no-ops.
type Tracer struct {
	mu       sync.Mutex
	opt      Options
	meta     []event // track-name metadata, never evicted
	events   []event
	dropped  int
	spans    []openSpan
	freeSpan int32 // free-list head into spans, -1 when empty
	lanes    map[int]*laneSet
	began    int
}

// New builds a tracer. To disable tracing, use a nil *Tracer instead.
func New(opt Options) *Tracer {
	if opt.Limit <= 0 {
		opt.Limit = DefaultLimit
	}
	return &Tracer{opt: opt, freeSpan: -1, lanes: make(map[int]*laneSet)}
}

// Reset discards all recorded events, track metadata, open spans and
// lane assignments while retaining every backing allocation, so a
// pooled worker can recycle the tracer across consecutive runs. Span
// generations restart, making a reset tracer observationally identical
// to a fresh one — including the exact SpanRef values it hands out.
// SpanRefs issued before the reset must be dropped by the caller. A
// nil tracer no-ops, like every other method.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	clear(t.events)
	t.events = t.events[:0]
	clear(t.meta)
	t.meta = t.meta[:0]
	t.dropped = 0
	clear(t.spans)
	t.spans = t.spans[:0]
	t.freeSpan = -1
	for _, ls := range t.lanes {
		ls.used = ls.used[:0]
	}
	t.began = 0
}

// Enabled reports whether the tracer records anything. Guard argument
// construction (fmt, Field building) behind it on hot paths.
func (t *Tracer) Enabled() bool { return t != nil }

// Verbosity returns the configured verbosity, 0 for a nil tracer.
func (t *Tracer) Verbosity() int {
	if t == nil {
		return 0
	}
	return t.opt.Verbosity
}

// SetTrackName names a track (pid) in the exported trace.
func (t *Tracer) SetTrackName(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.meta = append(t.meta, event{ph: 'M', pid: pid, name: name})
}

// Begin opens a span on track pid at virtual time now and returns its
// handle. The span occupies the lowest free lane of the track until
// End releases it. Fields passed here are exported with the completed
// span's args.
func (t *Tracer) Begin(now float64, pid int, cat, name string, fields ...Field) SpanRef {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ls := t.lanes[pid]
	if ls == nil {
		ls = &laneSet{}
		t.lanes[pid] = ls
	}
	lane := ls.alloc()
	var idx int32
	if t.freeSpan >= 0 {
		idx = t.freeSpan
		t.freeSpan = t.spans[idx].nextFree
	} else {
		t.spans = append(t.spans, openSpan{})
		idx = int32(len(t.spans) - 1)
	}
	gen := t.spans[idx].gen + 1
	t.spans[idx] = openSpan{start: now, pid: pid, tid: lane, cat: cat, name: name, fields: fields, live: true, gen: gen}
	t.began++
	return SpanRef(int64(gen)<<32 | int64(idx+1))
}

// End closes a span, emitting one complete event spanning begin→now.
// Fields passed here are appended to the begin fields. Ending the zero
// SpanRef (or double-ending) is a no-op, so teardown paths need no
// bookkeeping.
func (t *Tracer) End(now float64, ref SpanRef, fields ...Field) {
	if t == nil || ref <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := int32(ref&0xffffffff) - 1
	gen := int32(ref >> 32)
	if idx < 0 || int(idx) >= len(t.spans) || !t.spans[idx].live || t.spans[idx].gen != gen {
		return
	}
	sp := &t.spans[idx]
	f := sp.fields
	if len(fields) > 0 {
		f = append(append(make([]Field, 0, len(f)+len(fields)), f...), fields...)
	}
	dur := now - sp.start
	if dur < 0 {
		dur = 0
	}
	t.append(event{ph: 'X', ts: sp.start, dur: dur, pid: sp.pid, tid: sp.tid, cat: sp.cat, name: sp.name, fields: f})
	t.lanes[sp.pid].release(sp.tid)
	sp.live = false
	sp.fields = nil
	sp.nextFree = t.freeSpan
	t.freeSpan = idx
}

// Instant records a point event on track pid.
func (t *Tracer) Instant(now float64, pid int, cat, name string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.append(event{ph: 'i', ts: now, pid: pid, cat: cat, name: name, fields: fields})
}

// append stores one event, evicting the oldest half at the limit (the
// same amortised policy as mr.EventLog).
func (t *Tracer) append(e event) {
	if len(t.events) >= t.opt.Limit {
		half := t.opt.Limit / 2
		if half < 1 {
			half = 1
		}
		n := copy(t.events, t.events[half:])
		for i := n; i < len(t.events); i++ {
			t.events[i] = event{}
		}
		t.events = t.events[:n]
		t.dropped += half
	}
	t.events = append(t.events, e)
}

// Len returns the number of retained (closed or instant) events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events the limit evicted.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// OpenSpans returns the number of begun-but-unfinished spans. A clean
// run ends with zero; the invariant tests assert it.
func (t *Tracer) OpenSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.spans {
		if t.spans[i].live {
			n++
		}
	}
	return n
}

// Began returns how many spans were ever opened (for tests).
func (t *Tracer) Began() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.began
}

// value renders a field's value for human-readable output.
func (f Field) value() string {
	if !f.isNum {
		return f.str
	}
	if math.IsNaN(f.num) {
		return "NaN"
	}
	return fmt.Sprintf("%g", f.num)
}
