package sim

import "testing"

// driveClock runs a fixed schedule/cancel/fire scenario and returns
// the observable artefacts: every EventRef handed out and the firing
// order. Used to compare a reset clock against a fresh one.
func driveClock(c *Clock) (refs []EventRef, order []string) {
	log := func(tag string) func() { return func() { order = append(order, tag) } }
	refs = append(refs, c.Schedule(3, "c", log("c")))
	refs = append(refs, c.Schedule(1, "a", log("a")))
	refs = append(refs, c.Schedule(2, "b", log("b")))
	victim := c.Schedule(1.5, "victim", log("victim"))
	refs = append(refs, victim)
	c.Cancel(victim)
	refs = append(refs, c.Schedule(1.5, "d", log("d"))) // recycles victim's slot
	c.RunUntilIdle(100)
	return refs, order
}

func TestClockResetMatchesFresh(t *testing.T) {
	reused := NewClock()
	driveClock(reused) // first run grows the arena
	reused.Reset()

	fresh := NewClock()
	freshRefs, freshOrder := driveClock(fresh)
	reusedRefs, reusedOrder := driveClock(reused)

	if len(freshOrder) != len(reusedOrder) {
		t.Fatalf("firing counts differ: fresh %v, reused %v", freshOrder, reusedOrder)
	}
	for i := range freshOrder {
		if freshOrder[i] != reusedOrder[i] {
			t.Fatalf("firing order differs at %d: fresh %v, reused %v", i, freshOrder, reusedOrder)
		}
	}
	// The reset clock must hand out the exact same refs as a fresh one:
	// generations, slot indices and free-list order all restart.
	for i := range freshRefs {
		if freshRefs[i] != reusedRefs[i] {
			t.Fatalf("ref %d differs: fresh %#x, reused %#x", i, int64(freshRefs[i]), int64(reusedRefs[i]))
		}
	}
}

func TestClockResetClearsState(t *testing.T) {
	c := NewClock()
	c.Schedule(5, "pending", func() {})
	c.Schedule(1, "fired", func() {})
	c.Run(2)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Now = %v after Reset", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d after Reset", c.Pending())
	}
	if c.Fired() != 0 {
		t.Fatalf("Fired = %d after Reset", c.Fired())
	}
	// The stale pending event must never fire.
	c.Schedule(10, "fresh", func() {})
	if n := c.RunUntilIdle(100); n != 1 {
		t.Fatalf("fired %d events after Reset, want 1", n)
	}
}

func TestClockResetReusesArena(t *testing.T) {
	c := NewClock()
	for i := 0; i < 64; i++ {
		c.Schedule(float64(i), "e", func() {})
	}
	c.RunUntilIdle(1000)
	c.Reset()
	// Scheduling the same population again must not grow the slab.
	allocs := testing.AllocsPerRun(10, func() {
		c.Reset()
		for i := 0; i < 64; i++ {
			c.Schedule(float64(i), "e", func() {})
		}
		c.RunUntilIdle(1000)
	})
	if allocs > 0 {
		t.Fatalf("reset/schedule/run cycle allocated %.1f times, want 0", allocs)
	}
}
