package sim

import (
	"sort"
	"testing"
)

// Regression for the pre-arena bug: Cancel on an event that already
// fired used to mark it cancelled, so Cancelled() lied. Fired and
// cancelled are now distinct terminal states.
func TestCancelAfterFireIsNoOp(t *testing.T) {
	c := NewClock()
	ran := false
	e := c.Schedule(1, "x", func() { ran = true })
	c.Step()
	if !ran {
		t.Fatal("event did not fire")
	}
	c.Cancel(e)
	if c.EventCancelled(e) {
		t.Fatal("Cancel after fire reported the event as cancelled")
	}
	if !c.EventFired(e) {
		t.Fatal("EventFired() = false for a fired event")
	}
	if c.EventLive(e) {
		t.Fatal("EventLive() = true for a fired event")
	}
}

// A ref whose slot has been recycled must be inert: Cancel must not
// touch the slot's new occupant, and state queries report nothing.
func TestStaleRefIsInert(t *testing.T) {
	c := NewClock()
	stale := c.Schedule(1, "old", func() {})
	c.Cancel(stale) // slot goes to the free list
	fired := false
	fresh := c.Schedule(2, "new", func() { fired = true }) // recycles the slot
	if stale == fresh {
		t.Fatal("recycled slot produced an identical ref (generation not bumped)")
	}
	c.Cancel(stale) // must NOT cancel the new occupant
	if c.EventLive(stale) || c.EventFired(stale) || c.EventCancelled(stale) {
		t.Fatal("stale ref still reports event state")
	}
	c.RunUntilIdle(10)
	if !fired {
		t.Fatal("stale Cancel killed the slot's new occupant")
	}

	// Reschedule of a recycled ref panics: the callback is gone.
	defer func() {
		if recover() == nil {
			t.Fatal("Reschedule of a recycled ref did not panic")
		}
	}()
	c.Reschedule(stale, 5)
}

// Reschedule keeps the same ref for a pending event and bumps its
// sequence number, so among same-time events it fires as if newly
// scheduled — identical to the old cancel+schedule semantics.
func TestRescheduleInPlace(t *testing.T) {
	c := NewClock()
	var got []string
	e := c.Schedule(1, "moved", func() { got = append(got, "moved") })
	c.Schedule(5, "tie", func() { got = append(got, "tie") })
	e2 := c.Reschedule(e, 5)
	if e2 != e {
		t.Fatalf("in-place Reschedule changed the ref: %#x -> %#x", int64(e), int64(e2))
	}
	if !c.EventLive(e) {
		t.Fatal("rescheduled event not live")
	}
	c.RunUntilIdle(10)
	if len(got) != 2 || got[0] != "tie" || got[1] != "moved" {
		t.Fatalf("got %v, want [tie moved] (rescheduled event takes a fresh seq)", got)
	}
}

// Slab growth while the loop is running: callbacks that schedule
// cascades force repeated slab reallocation mid-Run, and every ref
// taken before a growth must stay valid after it.
func TestSlabGrowthMidRun(t *testing.T) {
	c := NewClock()
	fired := 0
	var refs []EventRef
	var cascade func(depth int)
	cascade = func(depth int) {
		fired++
		if depth == 0 {
			return
		}
		// Fan out wider than the current slab so append reallocates.
		for i := 0; i < 8; i++ {
			refs = append(refs, c.After(float64(i+1), "grow", func() { cascade(depth - 1) }))
		}
	}
	refs = append(refs, c.Schedule(0, "root", func() { cascade(3) }))
	c.RunUntilIdle(1_000_000)
	want := 1 + 8 + 64 + 512 // geometric cascade, depth 3
	if fired != want {
		t.Fatalf("fired %d events, want %d", fired, want)
	}
	for _, r := range refs {
		if c.EventLive(r) {
			t.Fatal("event still live after RunUntilIdle")
		}
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d after idle, want 0", c.Pending())
	}
}

// Differential churn: drive the arena clock and a trivial reference
// model (sorted slice of records) through the same seeded random
// schedule/cancel/reschedule/step sequence and demand identical firing
// order. This exercises free-list reuse, the 4-ary heap property, and
// in-place sift fix-up under adversarial interleavings — in both
// scheduler modes, so the timing wheel and the heap-only baseline are
// each pinned against the model independently.
func TestChurnDifferential(t *testing.T) {
	t.Run("wheel", func(t *testing.T) { churnDifferential(t, false) })
	t.Run("heap", func(t *testing.T) { churnDifferential(t, true) })
}

func churnDifferential(t *testing.T, heapOnly bool) {
	type refEvent struct {
		at  Time
		seq uint64
		id  int
	}
	rng := NewRand(1234)
	c := NewClock()
	c.SetHeapOnly(heapOnly)

	var model []refEvent // pending, unordered
	modelSeq := uint64(0)
	live := map[int]EventRef{} // id -> ref for events believed pending
	var gotOrder, wantOrder []int
	nextID := 0

	schedule := func() {
		at := c.Now() + rng.Float64()*10
		id := nextID
		nextID++
		live[id] = c.Schedule(at, "churn", func() { gotOrder = append(gotOrder, id) })
		modelSeq++
		model = append(model, refEvent{at, modelSeq, id})
	}
	cancel := func() {
		for id, ref := range live { // map order is fine: any victim will do
			c.Cancel(ref)
			delete(live, id)
			for i := range model {
				if model[i].id == id {
					model = append(model[:i], model[i+1:]...)
					break
				}
			}
			return
		}
	}
	reschedule := func() {
		for id, ref := range live {
			at := c.Now() + rng.Float64()*10
			live[id] = c.Reschedule(ref, at)
			modelSeq++
			for i := range model {
				if model[i].id == id {
					model[i].at = at
					model[i].seq = modelSeq
					break
				}
			}
			return
		}
	}
	step := func() {
		if len(model) == 0 {
			if c.Step() {
				t.Fatal("clock fired with empty model")
			}
			return
		}
		best := 0
		for i := 1; i < len(model); i++ {
			if model[i].at < model[best].at ||
				(model[i].at == model[best].at && model[i].seq < model[best].seq) {
				best = i
			}
		}
		wantOrder = append(wantOrder, model[best].id)
		delete(live, model[best].id)
		model = append(model[:best], model[best+1:]...)
		if !c.Step() {
			t.Fatal("clock idle with non-empty model")
		}
	}

	for i := 0; i < 5000; i++ {
		switch r := rng.Intn(10); {
		case r < 4:
			schedule()
		case r < 6:
			cancel()
		case r < 7:
			reschedule()
		default:
			step()
		}
		if c.Pending() != len(model) {
			t.Fatalf("iter %d: Pending() = %d, model has %d", i, c.Pending(), len(model))
		}
	}
	for len(model) > 0 {
		step()
	}
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("fired %d events, model fired %d", len(gotOrder), len(wantOrder))
	}
	for i := range gotOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("firing order diverged at %d: got id %d, want id %d", i, gotOrder[i], wantOrder[i])
		}
	}
}

// The steady-state event loop must be allocation-free: a warmed clock
// firing self-rescheduling events touches only recycled slots.
func TestEventLoopZeroAlloc(t *testing.T) {
	c := NewClock()
	var rearm func()
	count := 0
	rearm = func() {
		count++
		if count < 1<<20 {
			c.After(1, "tick", rearm)
		}
	}
	c.Schedule(0, "tick", rearm)
	// Warm up: grow the slab and heap to steady-state size.
	for i := 0; i < 64; i++ {
		c.Step()
	}
	allocs := testing.AllocsPerRun(512, func() {
		c.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocated %v allocs/op, want 0", allocs)
	}
}

// Heap invariant spot-check after heavy churn: draining the queue must
// yield non-decreasing times (unique seqs make the order total, so any
// heap corruption shows up as an inversion).
func TestDrainOrderAfterChurn(t *testing.T) {
	rng := NewRand(99)
	c := NewClock()
	var refs []EventRef
	for i := 0; i < 2000; i++ {
		refs = append(refs, c.Schedule(rng.Float64()*100, "x", func() {}))
	}
	for i := 0; i < 500; i++ {
		c.Cancel(refs[rng.Intn(len(refs))])
	}
	for i := 0; i < 500; i++ {
		r := refs[rng.Intn(len(refs))]
		if c.EventLive(r) {
			c.Reschedule(r, rng.Float64()*100)
		}
	}
	var times []Time
	for c.Pending() > 0 {
		c.Step()
		times = append(times, c.Now()) // Step lands exactly on the event time
	}
	if !sort.Float64sAreSorted(times) {
		t.Fatal("drain order not sorted after churn")
	}
}
