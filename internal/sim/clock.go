// Package sim provides the discrete-event simulation core used by every
// other simulated subsystem: a virtual clock, a cancellable event queue,
// and a deterministic pseudo-random source.
//
// All simulated time is expressed in seconds as float64. The event loop
// is strictly single-threaded; determinism is guaranteed by breaking
// time ties with a monotonically increasing sequence number.
//
// Events live in a slab-backed arena rather than as individually
// heap-allocated objects: Schedule hands out generation-stamped
// EventRef handles, retired slots are recycled through a free list, and
// the priority queue is an index heap over slot numbers. In steady
// state (schedule/fire/cancel churn at stable queue depth) the event
// loop performs zero allocations.
//
// A hierarchical timing wheel (wheel.go) sits in front of the heap:
// near-future events land in O(1) buckets and are staged into the heap
// only as the dispatch frontier reaches them, so the heap stays small
// while the firing order — always arbitrated by the heap — is
// byte-identical to a heap-only scheduler (selectable via SetHeapOnly
// for differential verification). Strictly periodic work should use
// SchedulePeriodic, which re-arms in place with no release/acquire
// cycle per beat.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time = float64

// EventRef is a generation-stamped handle to a scheduled event. The
// zero EventRef is invalid and safe to Cancel (a no-op), so callers can
// tear state down unconditionally. A ref outlives its event: state
// queries (EventLive, EventFired, EventCancelled) keep answering until
// the underlying arena slot is recycled by a later Schedule, and Cancel
// on a recycled slot is detected by generation mismatch instead of
// corrupting the slot's new occupant.
type EventRef int64

// Event slot states. A slot is exactly one of: free-and-never-used
// (zero state), pending (queued in the heap), fired, or cancelled.
// Fired and cancelled are distinct so Cancel after the event ran does
// not masquerade as a successful cancellation.
const (
	evPending uint8 = iota + 1
	evFired
	evCancelled
)

// eventSlot is one arena entry. fn and label survive fire/cancel so a
// terminal ref can still be re-armed by Reschedule; they are
// overwritten when the slot is recycled by a later Schedule.
type eventSlot struct {
	at      Time
	seq     uint64
	fn      func()
	label   string
	period  Time  // re-arm interval; 0 for one-shot events
	heapIdx int32 // position in Clock.heap; -1 when not queued there
	link    int32 // free-list link, or next entry in a wheel bucket
	prev    int32 // previous entry in a wheel bucket
	bucket  int32 // wheel bucket index; -1 when not in the wheel
	gen     int32 // bumped on every allocation; high half of the ref
	state   uint8
}

// Clock owns virtual time and the pending event set.
// The zero value is not usable; call NewClock.
type Clock struct {
	now   Time
	seq   uint64
	fired uint64

	// Event arena: a growable slab of slots, a LIFO free list threaded
	// through link, and a 4-ary index heap of pending slot numbers
	// ordered by (at, seq). 4-ary keeps the hot sift paths shallow and
	// the child scan within one cache line of int32 indices.
	slots    []eventSlot
	freeHead int32
	heap     []int32

	// Timing wheel (wheel.go): two levels of bucket list heads with
	// occupancy bitmaps, the dispatch frontier in wheel ticks, and the
	// wheel-resident event count. heapOnly bypasses the wheel entirely
	// (the SMR_HEAP_SCHED differential scheduler).
	heapOnly   bool
	disp       int64
	wheelCount int
	buckets    [2 * wheelSlots]int32
	occ        [2 * occWords]uint64
}

// NewClock returns a clock positioned at time zero with no pending events.
func NewClock() *Clock {
	c := &Clock{freeHead: -1}
	for i := range c.buckets {
		c.buckets[i] = -1
	}
	return c
}

// SetHeapOnly selects the heap-only differential scheduler: every
// event queues straight into the 4-ary heap and the timing wheel is
// bypassed. The firing order is identical by construction — the wheel
// only stages events into the heap, which always arbitrates the final
// (at, seq) order — so this mode exists to prove exactly that (it is
// what Config.HeapSched / SMR_HEAP_SCHED=1 select). The mode must be
// chosen while no events are pending and survives Reset.
func (c *Clock) SetHeapOnly(on bool) {
	if c.Pending() != 0 {
		panic("sim: SetHeapOnly with events pending")
	}
	c.heapOnly = on
}

// HeapOnly reports whether the heap-only differential scheduler is on.
func (c *Clock) HeapOnly() bool { return c.heapOnly }

// Reset returns the clock to time zero with no pending events,
// retaining the arena slab and heap capacity so a pooled worker can
// drive consecutive simulations without re-growing either. The slots
// are zeroed (releasing retained callbacks and labels to the GC) and
// the free list, sequence and generation counters restart, so a reset
// clock is observationally identical to a fresh one — including the
// exact EventRef values it hands out. EventRefs issued before the
// reset must be dropped by the caller: their slots are recycled, so
// state queries and Cancel on them are unreliable.
func (c *Clock) Reset() {
	c.now, c.seq, c.fired = 0, 0, 0
	clear(c.slots)
	c.slots = c.slots[:0]
	c.heap = c.heap[:0]
	c.freeHead = -1
	c.disp = 0
	c.wheelCount = 0
	for i := range c.buckets {
		c.buckets[i] = -1
	}
	clear(c.occ[:])
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Fired reports how many events have executed so far.
func (c *Clock) Fired() uint64 { return c.fired }

// Pending reports how many events are scheduled and not yet cancelled.
// O(1): cancelled events leave the heap and wheel eagerly, so the sum
// of the two populations is the pending count. A periodic event counts
// while queued for its next beat, but not during its own callback.
func (c *Clock) Pending() int { return len(c.heap) + c.wheelCount }

// makeRef packs a slot index and its generation into a handle. The +1
// keeps the zero EventRef invalid.
func makeRef(gen, idx int32) EventRef {
	return EventRef(int64(gen)<<32 | int64(idx)+1)
}

// slot resolves a ref to its arena slot, or nil when the ref is zero,
// out of range, or of an earlier generation than the slot's current
// occupant (the event's slot has been recycled).
func (c *Clock) slot(ref EventRef) *eventSlot {
	idx := int32(uint32(ref)) - 1
	if idx < 0 || int(idx) >= len(c.slots) {
		return nil
	}
	s := &c.slots[idx]
	if s.gen != int32(ref>>32) {
		return nil
	}
	return s
}

// EventLive reports whether ref's event is still queued to fire.
// False for fired, cancelled, recycled, and zero refs.
func (c *Clock) EventLive(ref EventRef) bool {
	s := c.slot(ref)
	return s != nil && s.state == evPending
}

// EventFired reports whether ref's event has run. Exact until the
// event's arena slot is recycled, after which it reports false.
func (c *Clock) EventFired(ref EventRef) bool {
	s := c.slot(ref)
	return s != nil && s.state == evFired
}

// EventCancelled reports whether ref's event was cancelled before
// firing. An event that ran is fired, never cancelled — Cancel after
// the fact is a no-op. Exact until the slot is recycled.
func (c *Clock) EventCancelled(ref EventRef) bool {
	s := c.slot(ref)
	return s != nil && s.state == evCancelled
}

// alloc takes a slot from the free list (or grows the slab), stamps a
// fresh generation, and returns its index.
func (c *Clock) alloc() int32 {
	var idx int32
	if c.freeHead >= 0 {
		idx = c.freeHead
		c.freeHead = c.slots[idx].link
	} else {
		idx = int32(len(c.slots))
		c.slots = append(c.slots, eventSlot{})
	}
	c.slots[idx].gen++
	return idx
}

// release pushes a terminal slot onto the free list. Its gen, state,
// fn and label are retained so outstanding refs keep resolving until
// the slot is recycled.
func (c *Clock) release(idx int32) {
	c.slots[idx].link = c.freeHead
	c.freeHead = idx
}

// Schedule registers fn to run at absolute virtual time at.
// Scheduling in the past (before Now) panics: it always indicates a
// logic error in a simulated component, and silently clamping would
// hide causality bugs. Scheduling exactly at Now is allowed and runs
// after all currently queued events at Now with smaller sequence.
func (c *Clock) Schedule(at Time, label string, fn func()) EventRef {
	if at < c.now {
		panic(fmt.Sprintf("sim: schedule %q at %v before now %v", label, at, c.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("sim: schedule %q at non-finite time %v", label, at))
	}
	c.seq++
	idx := c.alloc()
	s := &c.slots[idx]
	s.at = at
	s.seq = c.seq
	s.fn = fn
	s.label = label
	s.period = 0
	s.state = evPending
	c.enqueue(idx)
	return makeRef(s.gen, idx)
}

// SchedulePeriodic registers fn to run at absolute time at and then
// again period seconds after each firing. The chain re-arms in place —
// no slot release/acquire per beat — and the returned ref stays valid
// (and EventLive) for the chain's whole life. Each beat's next
// occurrence is Now()+period with a sequence number taken as fn
// returns, bit-identical in timing and ordering to a callback that
// ends with After(period, ...). Cancel stops the chain, including from
// inside fn; Reschedule moves only the next beat and keeps the chain
// going. A non-positive or non-finite period panics.
func (c *Clock) SchedulePeriodic(at, period Time, label string, fn func()) EventRef {
	if period <= 0 || math.IsNaN(period) || math.IsInf(period, 0) {
		panic(fmt.Sprintf("sim: periodic %q with invalid period %v", label, period))
	}
	ref := c.Schedule(at, label, fn)
	c.slots[int32(uint32(ref))-1].period = period
	return ref
}

// EventPeriod returns ref's re-arm period, or 0 for one-shot events
// and for refs that are terminal, recycled, or zero.
func (c *Clock) EventPeriod(ref EventRef) Time {
	if s := c.slot(ref); s != nil && s.state == evPending {
		return s.period
	}
	return 0
}

// After registers fn to run d seconds from now. Negative d panics.
func (c *Clock) After(d Time, label string, fn func()) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, label))
	}
	return c.Schedule(c.now+d, label, fn)
}

// Cancel removes an event from the queue without firing it. Cancelling
// a zero ref, an already-cancelled event, an event that already fired,
// or a ref whose slot has been recycled is a no-op, which lets callers
// cancel unconditionally when tearing state down. Cancelling a
// periodic event stops its chain, even from inside its own callback.
func (c *Clock) Cancel(ref EventRef) {
	s := c.slot(ref)
	if s == nil || s.state != evPending {
		return
	}
	idx := int32(uint32(ref)) - 1
	switch {
	case s.bucket >= 0:
		c.wheelUnlink(idx)
	case s.heapIdx >= 0:
		c.heapRemove(int(s.heapIdx))
	}
	// Queued in neither place: a periodic event cancelled from inside
	// its own callback — the terminal state alone stops the chain.
	s.state = evCancelled
	s.heapIdx = -1
	c.release(idx)
}

// Reschedule moves a pending event to a new absolute time by sifting
// it in place — no cancel/reallocate round trip. The event takes a
// fresh sequence number, so among events at the same instant it fires
// as if newly scheduled (exactly the old cancel+schedule semantics),
// and the same ref stays valid. If the event already fired or was
// cancelled (slot not yet recycled), its retained callback is
// scheduled as a fresh one-shot event and the new ref is returned.
// Rescheduling a zero ref or one whose slot was recycled panics: the
// callback is gone, so the caller's bookkeeping is broken. A pending
// periodic event keeps its period — only the next beat moves.
func (c *Clock) Reschedule(ref EventRef, at Time) EventRef {
	s := c.slot(ref)
	if s == nil {
		panic(fmt.Sprintf("sim: Reschedule of invalid or recycled EventRef %#x", int64(ref)))
	}
	if s.state != evPending {
		fn, label := s.fn, s.label // copy out: Schedule may recycle this very slot
		return c.Schedule(at, label, fn)
	}
	if at < c.now {
		panic(fmt.Sprintf("sim: reschedule %q at %v before now %v", s.label, at, c.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("sim: reschedule %q at non-finite time %v", s.label, at))
	}
	c.seq++
	s.at = at
	s.seq = c.seq
	idx := int32(uint32(ref)) - 1
	switch {
	case s.bucket >= 0:
		c.wheelUnlink(idx)
		c.enqueue(idx)
	case s.heapIdx >= 0:
		if c.placement(at) < 0 {
			c.heapFix(int(s.heapIdx)) // stays in the heap: sift in place
		} else {
			c.heapRemove(int(s.heapIdx))
			s.heapIdx = -1
			c.enqueue(idx)
		}
	default:
		// An in-flight periodic event rescheduling its own next beat:
		// queue it here; Step sees it queued and skips the auto re-arm.
		c.enqueue(idx)
	}
	return ref
}

// Step fires the single earliest pending event. It returns false when
// the queue is empty.
func (c *Clock) Step() bool {
	c.syncHeap()
	if len(c.heap) == 0 {
		return false
	}
	idx := c.heap[0]
	s := &c.slots[idx]
	if s.at < c.now {
		panic("sim: event queue time went backwards")
	}
	c.now = s.at
	fn := s.fn // copy out before release: fn may recycle the slot
	c.heapPop()
	s.heapIdx = -1
	if s.period > 0 {
		// Periodic fast path: the slot stays pending ("in flight")
		// while fn runs, then re-arms in place — no release/alloc
		// cycle, and the ref stays valid across beats. The re-arm
		// sequence number is taken after fn returns, exactly where a
		// self-rescheduling callback would have taken it, so the
		// firing order matches the one-shot chain bit for bit. The
		// guard skips the re-arm when fn cancelled the chain (possibly
		// recycling the slot) or queued the next beat via Reschedule.
		gen := s.gen
		c.fired++
		fn()
		s = &c.slots[idx] // re-take: fn may have grown the slab
		if s.gen == gen && s.state == evPending && s.heapIdx < 0 && s.bucket < 0 {
			c.seq++
			s.at = c.now + s.period
			s.seq = c.seq
			c.enqueue(idx)
		}
		return true
	}
	s.state = evFired
	c.release(idx)
	c.fired++
	fn()
	return true
}

// Run fires events until the queue drains or until the next event would
// be after limit. It returns the number of events fired. A limit of
// math.Inf(1) runs to quiescence.
func (c *Clock) Run(limit Time) uint64 {
	start := c.fired
	for {
		c.syncHeap() // the heap root is the global minimum afterwards
		if len(c.heap) == 0 || c.slots[c.heap[0]].at > limit {
			break
		}
		c.Step()
	}
	return c.fired - start
}

// RunUntilIdle fires events until no events remain. It guards against
// runaway simulations with maxEvents; exceeding it panics, since an
// unbounded event cascade is always a component bug.
func (c *Clock) RunUntilIdle(maxEvents uint64) uint64 {
	start := c.fired
	for c.Step() {
		if c.fired-start > maxEvents {
			panic(fmt.Sprintf("sim: exceeded %d events without quiescing (last time %v)", maxEvents, c.now))
		}
	}
	return c.fired - start
}

// Advance moves the clock forward by d without firing anything, used by
// tests that need to position the clock. It panics if events are
// pending before now+d, because skipping them would corrupt causality.
func (c *Clock) Advance(d Time) {
	target := c.now + d
	c.syncHeap() // the heap root is the global minimum afterwards
	if len(c.heap) > 0 {
		if s := &c.slots[c.heap[0]]; s.at <= target {
			panic(fmt.Sprintf("sim: Advance(%v) would skip event %q at %v", d, s.label, s.at))
		}
	}
	c.now = target
}

// less orders heap entries by (time, seq). The sequence number is
// unique per event, so the order is total — heap arity and sift order
// cannot change the firing sequence.
func (c *Clock) less(a, b int32) bool {
	sa, sb := &c.slots[a], &c.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	return sa.seq < sb.seq
}

// siftUp restores the heap property upward from i, hole-style: the
// moving entry is held out and written once at its final position.
func (c *Clock) siftUp(i int) {
	h := c.heap
	cur := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !c.less(cur, h[p]) {
			break
		}
		h[i] = h[p]
		c.slots[h[i]].heapIdx = int32(i)
		i = p
	}
	h[i] = cur
	c.slots[cur].heapIdx = int32(i)
}

// siftDown restores the heap property downward from i.
func (c *Clock) siftDown(i int) {
	h := c.heap
	n := len(h)
	cur := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for k := first + 1; k < end; k++ {
			if c.less(h[k], h[best]) {
				best = k
			}
		}
		if !c.less(h[best], cur) {
			break
		}
		h[i] = h[best]
		c.slots[h[i]].heapIdx = int32(i)
		i = best
	}
	h[i] = cur
	c.slots[cur].heapIdx = int32(i)
}

// heapFix re-establishes the heap property at i after its key changed
// in either direction. If siftDown moved a former descendant into i,
// that entry already satisfies the upward property (its relation to
// i's ancestors predates the change), so siftUp is needed only when
// the entry at i stayed put.
func (c *Clock) heapFix(i int) {
	cur := c.heap[i]
	c.siftDown(i)
	if c.heap[i] == cur {
		c.siftUp(i)
	}
}

// heapRemove deletes the entry at heap position i.
func (c *Clock) heapRemove(i int) {
	last := len(c.heap) - 1
	if i != last {
		moved := c.heap[last]
		c.heap[i] = moved
		c.slots[moved].heapIdx = int32(i)
		c.heap = c.heap[:last]
		c.heapFix(i)
	} else {
		c.heap = c.heap[:last]
	}
}

// heapPop removes the root (the earliest pending event).
func (c *Clock) heapPop() {
	last := len(c.heap) - 1
	if last > 0 {
		moved := c.heap[last]
		c.heap[0] = moved
		c.slots[moved].heapIdx = 0
		c.heap = c.heap[:last]
		c.siftDown(0)
	} else {
		c.heap = c.heap[:last]
	}
}
