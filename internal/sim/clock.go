// Package sim provides the discrete-event simulation core used by every
// other simulated subsystem: a virtual clock, a cancellable event queue,
// and a deterministic pseudo-random source.
//
// All simulated time is expressed in seconds as float64. The event loop
// is strictly single-threaded; determinism is guaranteed by breaking
// time ties with a monotonically increasing sequence number.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time = float64

// Event is a scheduled callback. Events are created by Clock.Schedule
// and may be cancelled before they fire.
type Event struct {
	at     Time
	seq    uint64
	index  int // heap index; -1 once popped or cancelled
	fn     func()
	label  string
	cancel bool
}

// At reports the virtual time the event is (or was) scheduled to fire.
func (e *Event) At() Time { return e.at }

// Label reports the diagnostic label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// Clock owns virtual time and the pending event set.
// The zero value is not usable; call NewClock.
type Clock struct {
	now   Time
	seq   uint64
	queue eventHeap
	fired uint64
}

// NewClock returns a clock positioned at time zero with no pending events.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Fired reports how many events have executed so far.
func (c *Clock) Fired() uint64 { return c.fired }

// Pending reports how many events are scheduled and not yet cancelled.
func (c *Clock) Pending() int {
	n := 0
	for _, e := range c.queue {
		if !e.cancel {
			n++
		}
	}
	return n
}

// Schedule registers fn to run at absolute virtual time at.
// Scheduling in the past (before Now) panics: it always indicates a
// logic error in a simulated component, and silently clamping would
// hide causality bugs. Scheduling exactly at Now is allowed and runs
// after all currently queued events at Now with smaller sequence.
func (c *Clock) Schedule(at Time, label string, fn func()) *Event {
	if at < c.now {
		panic(fmt.Sprintf("sim: schedule %q at %v before now %v", label, at, c.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("sim: schedule %q at non-finite time %v", label, at))
	}
	c.seq++
	e := &Event{at: at, seq: c.seq, fn: fn, label: label}
	heap.Push(&c.queue, e)
	return e
}

// After registers fn to run d seconds from now. Negative d panics.
func (c *Clock) After(d Time, label string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, label))
	}
	return c.Schedule(c.now+d, label, fn)
}

// Cancel removes an event from the queue without firing it. Cancelling
// an already-fired or already-cancelled event is a no-op, which lets
// callers cancel unconditionally when tearing state down.
func (c *Clock) Cancel(e *Event) {
	if e == nil || e.cancel || e.index < 0 {
		if e != nil {
			e.cancel = true
		}
		return
	}
	e.cancel = true
	heap.Remove(&c.queue, e.index)
	e.index = -1
}

// Reschedule moves a pending event to a new absolute time, preserving
// its callback. If the event already fired or was cancelled, a fresh
// event is scheduled instead. It returns the live event.
func (c *Clock) Reschedule(e *Event, at Time) *Event {
	fn, label := e.fn, e.label
	c.Cancel(e)
	return c.Schedule(at, label, fn)
}

// Step fires the single earliest pending event. It returns false when
// the queue is empty.
func (c *Clock) Step() bool {
	for c.queue.Len() > 0 {
		e := heap.Pop(&c.queue).(*Event)
		e.index = -1
		if e.cancel {
			continue
		}
		if e.at < c.now {
			panic("sim: event queue time went backwards")
		}
		c.now = e.at
		c.fired++
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or until the next event would
// be after limit. It returns the number of events fired. A limit of
// math.Inf(1) runs to quiescence.
func (c *Clock) Run(limit Time) uint64 {
	start := c.fired
	for c.queue.Len() > 0 {
		next := c.peek()
		if next == nil {
			break
		}
		if next.at > limit {
			break
		}
		c.Step()
	}
	return c.fired - start
}

// RunUntilIdle fires events until no events remain. It guards against
// runaway simulations with maxEvents; exceeding it panics, since an
// unbounded event cascade is always a component bug.
func (c *Clock) RunUntilIdle(maxEvents uint64) uint64 {
	start := c.fired
	for c.Step() {
		if c.fired-start > maxEvents {
			panic(fmt.Sprintf("sim: exceeded %d events without quiescing (last time %v)", maxEvents, c.now))
		}
	}
	return c.fired - start
}

// Advance moves the clock forward by d without firing anything, used by
// tests that need to position the clock. It panics if events are
// pending before now+d, because skipping them would corrupt causality.
func (c *Clock) Advance(d Time) {
	target := c.now + d
	if next := c.peek(); next != nil && next.at <= target {
		panic(fmt.Sprintf("sim: Advance(%v) would skip event %q at %v", d, next.label, next.at))
	}
	c.now = target
}

func (c *Clock) peek() *Event {
	for c.queue.Len() > 0 {
		e := c.queue[0]
		if e.cancel {
			heap.Pop(&c.queue)
			continue
		}
		return e
	}
	return nil
}

// eventHeap orders by (time, seq). seq breaks ties deterministically in
// scheduling order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
