package sim

import (
	"math"
	"sort"
	"testing"
)

// --- targeted wheel mechanics ---

// An event past the current 4-second level-0 block lands in level 1
// and must cascade down to its exact slot when the frontier reaches
// its block; ordering against near events and same-time ties holds.
func TestWheelCascade(t *testing.T) {
	c := NewClock()
	var got []string
	c.Schedule(10.5, "far-b", func() { got = append(got, "far-b") }) // level 1
	c.Schedule(10.5, "far-c", func() { got = append(got, "far-c") }) // same slot, later seq
	c.Schedule(0.5, "near", func() { got = append(got, "near") })    // level 0
	c.Schedule(10.25, "far-a", func() { got = append(got, "far-a") })
	c.RunUntilIdle(100)
	want := []string{"near", "far-a", "far-b", "far-c"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if c.Now() != 10.5 {
		t.Fatalf("Now() = %v after drain, want 10.5", c.Now())
	}
}

// Events beyond the 1024-second super-block spill to the heap and
// still fire in exact order once the wheel drains up to them.
func TestWheelFarFutureHeapSpill(t *testing.T) {
	c := NewClock()
	var got []Time
	for _, at := range []Time{2000, 0.5, 1023, 5000, 1500} {
		at := at
		c.Schedule(at, "spill", func() { got = append(got, at) })
	}
	c.RunUntilIdle(10_000)
	if !sort.Float64sAreSorted(got) || len(got) != 5 {
		t.Fatalf("spill firing order %v", got)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d", c.Pending())
	}
}

// An event scheduled at a tick the dispatch frontier has already
// passed (at == Now after dispatch advanced) bypasses the wheel, goes
// straight to the heap, and fires without moving time backwards.
func TestWheelDispatchedTickGoesToHeap(t *testing.T) {
	c := NewClock()
	var got []string
	c.Schedule(5, "later", func() { got = append(got, "later") })
	c.RunUntilIdle(100)
	c.Schedule(5, "same", func() { got = append(got, "same") }) // tick already dispatched
	c.RunUntilIdle(100)
	if len(got) != 2 || got[1] != "same" {
		t.Fatalf("got %v", got)
	}
	if c.Now() != 5 {
		t.Fatalf("Now() = %v, want 5", c.Now())
	}
}

// --- periodic fast path ---

// A periodic event re-arms itself with its stable ref until cancelled;
// EventPeriod reports the interval while pending.
func TestSchedulePeriodicBasics(t *testing.T) {
	c := NewClock()
	var times []Time
	e := c.SchedulePeriodic(1, 2, "beat", func() { times = append(times, c.Now()) })
	if p := c.EventPeriod(e); p != 2 {
		t.Fatalf("EventPeriod = %v, want 2", p)
	}
	c.Run(8)
	want := []Time{1, 3, 5, 7}
	if len(times) != len(want) {
		t.Fatalf("fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
	if !c.EventLive(e) {
		t.Fatal("periodic event not live between beats")
	}
	c.Cancel(e)
	c.Run(20)
	if len(times) != len(want) {
		t.Fatal("periodic event fired after Cancel")
	}
	if c.EventPeriod(e) != 0 {
		t.Fatal("EventPeriod nonzero after Cancel")
	}
}

// Cancel from inside the event's own callback stops the chain: the
// in-flight slot is terminal and Step must not re-arm it.
func TestPeriodicCancelMidChain(t *testing.T) {
	c := NewClock()
	fired := 0
	var e EventRef
	e = c.SchedulePeriodic(1, 1, "self-stop", func() {
		fired++
		if fired == 3 {
			c.Cancel(e)
		}
	})
	c.RunUntilIdle(100)
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
	if c.Pending() != 0 || c.EventLive(e) {
		t.Fatal("cancelled periodic chain still pending")
	}
}

// Reschedule from inside the callback overrides the automatic re-arm:
// the event moves to the explicit time (keeping its period thereafter).
func TestPeriodicRescheduleInFlight(t *testing.T) {
	c := NewClock()
	var times []Time
	var e EventRef
	e = c.SchedulePeriodic(1, 1, "jump", func() {
		times = append(times, c.Now())
		if len(times) == 2 {
			c.Reschedule(e, c.Now()+5)
		}
	})
	c.Run(10)
	want := []Time{1, 2, 7, 8, 9, 10}
	if len(times) != len(want) {
		t.Fatalf("fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
	c.Cancel(e)
}

// A cancelled-and-recycled slot must not be re-armed by a stale
// in-flight periodic fire: the generation guard catches it.
func TestPeriodicCancelRecycleInFlight(t *testing.T) {
	c := NewClock()
	var e EventRef
	otherFired := false
	e = c.SchedulePeriodic(1, 1, "victim", func() {
		c.Cancel(e) // slot goes to the free list mid-flight
		// Recycle the slot immediately with a fresh one-shot.
		c.Schedule(c.Now()+0.5, "fresh", func() { otherFired = true })
	})
	c.RunUntilIdle(100)
	if !otherFired {
		t.Fatal("recycled slot's occupant never fired")
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d: stale periodic re-arm resurrected a recycled slot", c.Pending())
	}
}

func TestSchedulePeriodicValidation(t *testing.T) {
	c := NewClock()
	for _, period := range []Time{0, -1, math.NaN(), math.Inf(1)} {
		period := period
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SchedulePeriodic(period=%v) did not panic", period)
				}
			}()
			c.SchedulePeriodic(1, period, "bad", func() {})
		}()
	}
}

// The steady periodic beat allocates nothing: the slot re-arms in
// place without free-list churn.
func TestPeriodicZeroAlloc(t *testing.T) {
	c := NewClock()
	c.SchedulePeriodic(0, 1, "beat", func() {})
	for i := 0; i < 64; i++ {
		c.Step()
	}
	if allocs := testing.AllocsPerRun(512, func() { c.Step() }); allocs != 0 {
		t.Fatalf("periodic Step allocated %v allocs/op, want 0", allocs)
	}
}

// --- mode switching and reset ---

func TestSetHeapOnlyWithPendingPanics(t *testing.T) {
	c := NewClock()
	c.Schedule(1, "x", func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetHeapOnly with pending events did not panic")
		}
	}()
	c.SetHeapOnly(true)
}

// Reset clears wheel occupancy and survives mode: a reset clock
// schedules into clean buckets and heap-only mode persists.
func TestResetClearsWheelState(t *testing.T) {
	c := NewClock()
	for i := 0; i < 100; i++ {
		c.Schedule(Time(i)*0.7, "pre", func() {})
	}
	c.Run(20) // leave some events pending in wheel and heap
	c.Reset()
	if c.Pending() != 0 || c.Now() != 0 {
		t.Fatalf("Pending=%d Now=%v after Reset", c.Pending(), c.Now())
	}
	fired := 0
	for i := 0; i < 100; i++ {
		c.Schedule(Time(i)*0.7, "post", func() { fired++ })
	}
	c.RunUntilIdle(1000)
	if fired != 100 {
		t.Fatalf("fired %d, want 100 (stale wheel state after Reset)", fired)
	}

	h := NewClock()
	h.SetHeapOnly(true)
	h.Reset()
	if !h.HeapOnly() {
		t.Fatal("Reset cleared heap-only mode")
	}
}

// --- wheel vs heap differential driver (shared by test and fuzz) ---

// runSchedDiff decodes a byte stream into a scripted interleaving of
// Schedule / SchedulePeriodic / Cancel / Reschedule / Step and drives a
// wheel clock and a heap-only clock through it in lockstep. The two
// must agree on Pending, Now and the exact firing sequence at every
// step — the wheel only stages events, the heap arbitrates order.
func runSchedDiff(t *testing.T, data []byte) {
	t.Helper()
	w := NewClock()
	h := NewClock()
	h.SetHeapOnly(true)

	type pair struct{ w, h EventRef }
	refs := map[int]pair{}
	var liveIDs []int // sorted, for deterministic victim selection
	var firedW, firedH []int
	nextID := 0

	// delta maps a byte onto a delay exercising level 0 (sub-block),
	// level 1 (sub-super-block), and the far-future heap spill.
	delta := func(b byte) Time {
		d := Time(b%64) * 0.23
		switch {
		case b >= 224:
			d += 1100 // beyond the 1024 s super-block: heap spill
		case b >= 160:
			d += 50 // level 1
		}
		return d
	}
	dropID := func(id int) {
		i := sort.SearchInts(liveIDs, id)
		if i < len(liveIDs) && liveIDs[i] == id {
			liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
		}
		delete(refs, id)
	}

	for i := 0; i+2 < len(data); i += 3 {
		op, b1, b2 := data[i], data[i+1], data[i+2]
		switch op % 8 {
		case 0, 1: // one-shot
			id := nextID
			nextID++
			at := w.Now() + delta(b1)
			refs[id] = pair{
				w: w.Schedule(at, "d", func() { firedW = append(firedW, id); dropID(id) }),
				h: h.Schedule(at, "d", func() { firedH = append(firedH, id) }),
			}
			liveIDs = append(liveIDs, id)
		case 2: // periodic
			id := nextID
			nextID++
			at := w.Now() + delta(b1)
			period := Time(b2%32+1) * 0.11
			refs[id] = pair{
				w: w.SchedulePeriodic(at, period, "p", func() { firedW = append(firedW, id) }),
				h: h.SchedulePeriodic(at, period, "p", func() { firedH = append(firedH, id) }),
			}
			liveIDs = append(liveIDs, id)
		case 3: // cancel
			if len(liveIDs) == 0 {
				continue
			}
			id := liveIDs[int(b1)%len(liveIDs)]
			p := refs[id]
			w.Cancel(p.w)
			h.Cancel(p.h)
			dropID(id)
		case 4: // reschedule
			if len(liveIDs) == 0 {
				continue
			}
			id := liveIDs[int(b1)%len(liveIDs)]
			p := refs[id]
			at := w.Now() + delta(b2)
			w.Reschedule(p.w, at)
			h.Reschedule(p.h, at)
		default: // step
			fw := w.Step()
			fh := h.Step()
			if fw != fh {
				t.Fatalf("op %d: wheel Step fired=%v, heap fired=%v", i, fw, fh)
			}
			if len(firedW) != len(firedH) ||
				(len(firedW) > 0 && firedW[len(firedW)-1] != firedH[len(firedH)-1]) {
				t.Fatalf("op %d: firing sequences diverge: wheel %v heap %v", i, firedW, firedH)
			}
		}
		if w.Pending() != h.Pending() {
			t.Fatalf("op %d: Pending diverges: wheel %d heap %d", i, w.Pending(), h.Pending())
		}
		if w.Now() != h.Now() {
			t.Fatalf("op %d: Now diverges: wheel %v heap %v", i, w.Now(), h.Now())
		}
	}
	// Drain: cancel periodics (they never end), then fire out the rest.
	for _, id := range liveIDs {
		p := refs[id]
		if w.EventPeriod(p.w) > 0 {
			w.Cancel(p.w)
			h.Cancel(p.h)
		}
	}
	for steps := 0; w.Pending() > 0 || h.Pending() > 0; steps++ {
		if steps > 1<<20 {
			t.Fatal("drain did not terminate")
		}
		if w.Step() != h.Step() || w.Now() != h.Now() {
			t.Fatal("drain diverged between wheel and heap")
		}
	}
	if len(firedW) != len(firedH) {
		t.Fatalf("fired %d on wheel, %d on heap", len(firedW), len(firedH))
	}
	for i := range firedW {
		if firedW[i] != firedH[i] {
			t.Fatalf("firing order diverged at %d: wheel id %d, heap id %d", i, firedW[i], firedH[i])
		}
	}
}

// TestSchedDiffSeeded runs the wheel-vs-heap differential on seeded
// random op streams, long enough to cross block and super-block
// boundaries and cascade repeatedly.
func TestSchedDiffSeeded(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := NewRand(seed)
		data := make([]byte, 6000)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		runSchedDiff(t, data)
	}
}

func FuzzClockSchedule(f *testing.F) {
	f.Add([]byte{0, 10, 0, 7, 0, 0, 2, 200, 5, 7, 0, 0, 7, 0, 0})
	f.Add([]byte{2, 3, 9, 7, 0, 0, 3, 0, 0, 0, 230, 0, 7, 0, 0, 7, 0, 0})
	f.Add([]byte{0, 255, 0, 4, 0, 128, 7, 0, 0, 2, 1, 1, 7, 0, 0, 7, 0, 0, 7, 0, 0})
	rng := NewRand(42)
	long := make([]byte, 600)
	for i := range long {
		long[i] = byte(rng.Uint64())
	}
	f.Add(long)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 30_000 {
			t.Skip("cap op-stream length")
		}
		runSchedDiff(t, data)
	})
}
