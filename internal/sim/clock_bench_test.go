package sim

import "testing"

// BenchmarkScheduleFire measures raw event queue throughput: one
// schedule plus one fire per iteration at a queue depth of ~1000.
func BenchmarkScheduleFire(b *testing.B) {
	c := NewClock()
	depth := 1000
	for i := 0; i < depth; i++ {
		c.Schedule(float64(i), "seed", func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	at := float64(depth)
	for i := 0; i < b.N; i++ {
		c.Schedule(at, "bench", func() {})
		c.Step()
		at++
	}
}

// BenchmarkCancel measures cancel cost at depth ~1000.
func BenchmarkCancel(b *testing.B) {
	c := NewClock()
	for i := 0; i < 1000; i++ {
		c.Schedule(float64(i+1), "seed", func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := c.Schedule(2000, "victim", func() {})
		c.Cancel(e)
	}
}

// BenchmarkRandUint64 measures the PRNG.
func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
