package sim

import "testing"

// BenchmarkScheduleFire measures raw event queue throughput: one
// schedule plus one fire per iteration at a queue depth of ~1000.
func BenchmarkScheduleFire(b *testing.B) {
	c := NewClock()
	depth := 1000
	for i := 0; i < depth; i++ {
		c.Schedule(float64(i), "seed", func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	at := float64(depth)
	for i := 0; i < b.N; i++ {
		c.Schedule(at, "bench", func() {})
		c.Step()
		at++
	}
}

// BenchmarkCancel measures cancel cost at depth ~1000.
func BenchmarkCancel(b *testing.B) {
	c := NewClock()
	for i := 0; i < 1000; i++ {
		c.Schedule(float64(i+1), "seed", func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := c.Schedule(2000, "victim", func() {})
		c.Cancel(e)
	}
}

// benchModes runs fn once on the timing wheel and once heap-only, so
// every scheduler benchmark reports both backends side by side.
func benchModes(b *testing.B, fn func(b *testing.B, c *Clock)) {
	b.Run("wheel", func(b *testing.B) { fn(b, NewClock()) })
	b.Run("heap", func(b *testing.B) {
		c := NewClock()
		c.SetHeapOnly(true)
		fn(b, c)
	})
}

// BenchmarkPeriodicBeat measures the periodic fast path: 64 staggered
// periodic events (the heartbeat shape) firing steadily. The wheel
// re-arms in place; heap-only pays a full push per beat.
func BenchmarkPeriodicBeat(b *testing.B) {
	benchModes(b, func(b *testing.B, c *Clock) {
		const chains = 64
		for i := 0; i < chains; i++ {
			c.SchedulePeriodic(float64(i)/chains, 1.0, "beat", func() {})
		}
		for i := 0; i < 4*chains; i++ {
			c.Step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Step()
		}
	})
}

// BenchmarkChurnMix measures a scheduler-realistic mix at depth ~1000:
// per iteration one schedule, one reschedule, one cancel and one fire,
// with delays spread across level 0, level 1 and the heap spill.
func BenchmarkChurnMix(b *testing.B) {
	benchModes(b, func(b *testing.B, c *Clock) {
		rng := NewRand(7)
		const depth = 1024
		var refs [depth]EventRef
		delay := func() float64 {
			switch v := rng.Float64(); {
			case v < 0.70:
				return rng.Float64() * 3 // level 0
			case v < 0.95:
				return 4 + rng.Float64()*200 // level 1
			default:
				return 1100 + rng.Float64()*1000 // heap spill
			}
		}
		for i := range refs {
			refs[i] = c.Schedule(c.Now()+delay(), "seed", func() {})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := i % depth
			if c.EventLive(refs[k]) {
				c.Reschedule(refs[k], c.Now()+delay())
			} else {
				refs[k] = c.Schedule(c.Now()+delay(), "re", func() {})
			}
			j := (i * 31) % depth
			if j != k && c.EventLive(refs[j]) {
				c.Cancel(refs[j])
			}
			c.Step()
		}
	})
}

// BenchmarkRandUint64 measures the PRNG.
func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
