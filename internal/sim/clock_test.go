package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", c.Pending())
	}
}

func TestScheduleOrdering(t *testing.T) {
	c := NewClock()
	var got []string
	c.Schedule(2, "b", func() { got = append(got, "b") })
	c.Schedule(1, "a", func() { got = append(got, "a") })
	c.Schedule(3, "c", func() { got = append(got, "c") })
	c.RunUntilIdle(100)
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", c.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	c := NewClock()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(5, "tie", func() { got = append(got, i) })
	}
	c.RunUntilIdle(100)
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending scheduling order", got)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	c := NewClock()
	c.Schedule(5, "x", func() {})
	c.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	c.Schedule(1, "past", func() {})
}

func TestScheduleNonFinitePanics(t *testing.T) {
	c := NewClock()
	for _, at := range []float64{math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Schedule(%v) did not panic", at)
				}
			}()
			c.Schedule(at, "bad", func() {})
		}()
	}
}

func TestCancel(t *testing.T) {
	c := NewClock()
	fired := false
	e := c.Schedule(1, "x", func() { fired = true })
	c.Cancel(e)
	c.RunUntilIdle(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !c.EventCancelled(e) {
		t.Fatal("EventCancelled() = false after Cancel")
	}
	// Cancelling twice must be a no-op, as must the zero ref.
	c.Cancel(e)
	c.Cancel(0)
}

func TestCancelOneOfMany(t *testing.T) {
	c := NewClock()
	var got []string
	a := c.Schedule(1, "a", func() { got = append(got, "a") })
	c.Schedule(2, "b", func() { got = append(got, "b") })
	c.Schedule(3, "c", func() { got = append(got, "c") })
	c.Cancel(a)
	c.RunUntilIdle(10)
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("got %v, want [b c]", got)
	}
}

func TestReschedule(t *testing.T) {
	c := NewClock()
	var at Time
	e := c.Schedule(10, "x", func() { at = c.Now() })
	e = c.Reschedule(e, 4)
	c.RunUntilIdle(10)
	if at != 4 {
		t.Fatalf("fired at %v, want 4", at)
	}
	// Rescheduling a fired event schedules anew.
	e = c.Reschedule(e, 7)
	fired := c.RunUntilIdle(10)
	if fired != 1 || c.Now() != 7 {
		t.Fatalf("re-fire: fired=%d now=%v, want 1 at 7", fired, c.Now())
	}
}

func TestAfterNegativePanics(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	c.After(-1, "neg", func() {})
}

func TestRunRespectsLimit(t *testing.T) {
	c := NewClock()
	var got []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		c.Schedule(at, "t", func() { got = append(got, at) })
	}
	n := c.Run(3)
	if n != 3 {
		t.Fatalf("Run(3) fired %d, want 3", n)
	}
	if c.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", c.Now())
	}
	if c.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", c.Pending())
	}
}

func TestRunUntilIdleGuard(t *testing.T) {
	c := NewClock()
	var rearm func()
	rearm = func() { c.After(1, "loop", rearm) }
	rearm()
	defer func() {
		if recover() == nil {
			t.Fatal("runaway loop did not panic")
		}
	}()
	c.RunUntilIdle(50)
}

func TestAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(5)
	if c.Now() != 5 {
		t.Fatalf("Now() = %v, want 5", c.Now())
	}
	c.Schedule(7, "x", func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("Advance over a pending event did not panic")
		}
	}()
	c.Advance(10)
}

func TestNestedScheduling(t *testing.T) {
	c := NewClock()
	var got []Time
	c.Schedule(1, "outer", func() {
		got = append(got, c.Now())
		c.After(1, "inner", func() { got = append(got, c.Now()) })
	})
	c.RunUntilIdle(10)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

// Property: for any set of non-negative offsets, events fire in
// non-decreasing time order and the clock ends at the max offset.
func TestQuickFiringOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		c := NewClock()
		var fired []Time
		for _, r := range raw {
			at := Time(r) / 16
			c.Schedule(at, "q", func() { fired = append(fired, c.Now()) })
		}
		c.RunUntilIdle(uint64(len(raw) + 1))
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		return len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset removes exactly that subset.
func TestQuickCancelSubset(t *testing.T) {
	f := func(raw []uint16, mask uint32) bool {
		c := NewClock()
		fired := 0
		var events []EventRef
		for _, r := range raw {
			events = append(events, c.Schedule(Time(r), "q", func() { fired++ }))
		}
		cancelled := 0
		for i, e := range events {
			if mask&(1<<(uint(i)%32)) != 0 {
				if !c.EventCancelled(e) {
					cancelled++
				}
				c.Cancel(e)
			}
		}
		c.RunUntilIdle(uint64(len(raw) + 1))
		return fired == len(raw)-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRandZeroSeedUsable(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == r.Uint64() {
		t.Fatal("degenerate stream from zero seed")
	}
}

func TestRandFloatRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) covered %d values, want 5", len(seen))
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandJitterRange(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(0.1)
		if v < 0.9 || v > 1.1 {
			t.Fatalf("Jitter(0.1) = %v out of [0.9,1.1]", v)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRandForkIndependence(t *testing.T) {
	r := NewRand(5)
	f1 := r.Fork(1)
	f2 := r.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forks with different tags produced identical first values")
	}
	// Forking must not perturb the parent stream.
	r2 := NewRand(5)
	r2.Fork(1)
	r2.Fork(2)
	if r.Uint64() != r2.Uint64() {
		t.Fatal("Fork perturbed the parent stream")
	}
}
