package sim

// Rand is a small, fast, deterministic PRNG (splitmix64 core feeding an
// xorshift-style output) used everywhere the simulation needs noise.
// math/rand would also do, but owning the generator keeps the stream
// stable across Go releases, which matters for golden-value tests.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Seed 0 is remapped so
// the zero value still produces a usable stream.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Jitter returns a value uniform in [1-amp, 1+amp], used to perturb
// deterministic task costs so waves do not complete in lockstep.
func (r *Rand) Jitter(amp float64) float64 {
	return 1 + amp*(2*r.Float64()-1)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent generator whose stream is a pure function
// of the parent state and the tag, so adding consumers does not shift
// existing streams.
func (r *Rand) Fork(tag uint64) *Rand {
	mix := r.state ^ (tag+1)*0xd1342543de82ef95
	mix = (mix ^ (mix >> 29)) * 0xff51afd7ed558ccd
	return NewRand(mix ^ (mix >> 32))
}
