// Hierarchical timing wheel staged in front of the 4-ary heap.
//
// The event population in every simulated workload is dominated by
// near-future work (heartbeats, sampler/controller/capacity ticks, op
// completions a few seconds out), so most Schedule calls can skip the
// O(log n) heap sift: virtual time is quantised into 1/64 s ticks and
// near-future events are pushed onto unordered per-tick bucket lists in
// O(1). The wheel never decides firing order. As the dispatch frontier
// advances, each bucket is dumped wholesale into the heap, and the heap
// arbitrates the exact (at, seq) total order — so the firing sequence
// is identical to a heap-only scheduler by construction, which is what
// the SMR_HEAP_SCHED differential mode (SetHeapOnly) pins.
//
// Geometry: two levels of 256 buckets over aligned tick blocks.
// Level 0 covers the frontier's current 256-tick block (4 s of virtual
// time) at one-tick resolution; level 1 covers the current 65536-tick
// super-block (1024 s) at one-block resolution. An event is placed by
// its tick t relative to the frontier disp (the first undispatched
// tick):
//
//	t >> 8 == disp >> 8   -> level 0, slot t & 255
//	t >> 16 == disp >> 16 -> level 1, slot (t >> 8) & 255
//	otherwise             -> heap (already-dispatched tick, or
//	                         far-future spill past the super-block)
//
// Cascade rule: when the frontier enters a block, that block's level-1
// bucket is re-placed — every event in it lands in its exact level-0
// slot. Level-1 buckets of the frontier's own block are empty by
// placement (those events go straight to level 0), and a super-block
// crossing needs no level-2: events past the current super-block were
// spilled to the heap at Schedule time, and heap residents never
// migrate back — the heap is always correct, just slower.
package sim

import "math/bits"

const (
	// wheelBits is log2 of the slot count per wheel level.
	wheelBits  = 8
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
	// tickHz is the wheel resolution: 64 ticks per virtual second.
	// Bucketing only — firing times and order stay exact floats.
	tickHz = 64.0
	// occWords is the occupancy bitmap length per level.
	occWords = wheelSlots / 64
)

// tickOf quantises an absolute time to a wheel tick. Callers must
// bound the value in float space first: converting a float beyond the
// int64 range is implementation-defined.
func tickOf(at Time) int64 { return int64(at * tickHz) }

// superEnd returns the first tick past the frontier's current
// super-block; events at or beyond it spill to the heap.
func (c *Clock) superEnd() int64 {
	return (c.disp>>(2*wheelBits) + 1) << (2 * wheelBits)
}

// placement maps an absolute event time to a wheel bucket index, or -1
// when the event belongs in the heap: heap-only mode, a tick already
// behind the dispatch frontier, or past the current super-block.
func (c *Clock) placement(at Time) int32 {
	if c.heapOnly || at*tickHz >= float64(c.superEnd()) {
		return -1
	}
	t := tickOf(at)
	if t < c.disp {
		return -1
	}
	if t>>wheelBits == c.disp>>wheelBits {
		return int32(t & wheelMask)
	}
	return wheelSlots + int32(t>>wheelBits&wheelMask)
}

// enqueue places a pending slot into the wheel or the heap according
// to placement. The slot's at, seq and state must already be set.
func (c *Clock) enqueue(idx int32) {
	s := &c.slots[idx]
	if b := c.placement(s.at); b >= 0 {
		s.heapIdx = -1
		c.wheelLink(idx, b)
		return
	}
	s.bucket = -1
	s.heapIdx = int32(len(c.heap))
	c.heap = append(c.heap, idx)
	c.siftUp(len(c.heap) - 1)
}

// wheelLink pushes slot idx onto bucket b's intrusive list. LIFO and
// unordered: the heap re-establishes order when the bucket is dumped.
func (c *Clock) wheelLink(idx, b int32) {
	s := &c.slots[idx]
	s.bucket = b
	s.prev = -1
	s.link = c.buckets[b]
	if s.link >= 0 {
		c.slots[s.link].prev = idx
	}
	c.buckets[b] = idx
	c.occ[b>>6] |= 1 << (b & 63)
	c.wheelCount++
}

// wheelUnlink removes slot idx from its bucket list in O(1).
func (c *Clock) wheelUnlink(idx int32) {
	s := &c.slots[idx]
	b := s.bucket
	if s.prev >= 0 {
		c.slots[s.prev].link = s.link
	} else {
		c.buckets[b] = s.link
		if s.link < 0 {
			c.occ[b>>6] &^= 1 << (b & 63)
		}
	}
	if s.link >= 0 {
		c.slots[s.link].prev = s.prev
	}
	s.bucket = -1
	c.wheelCount--
}

// dumpBucket stages every event in bucket b into the heap.
func (c *Clock) dumpBucket(b int32) {
	idx := c.buckets[b]
	c.buckets[b] = -1
	c.occ[b>>6] &^= 1 << (b & 63)
	for idx >= 0 {
		s := &c.slots[idx]
		next := s.link
		s.bucket = -1
		s.heapIdx = int32(len(c.heap))
		c.heap = append(c.heap, idx)
		c.siftUp(len(c.heap) - 1)
		c.wheelCount--
		idx = next
	}
}

// cascade re-places every event in level-1 bucket b now that the
// frontier has entered its block: each lands in its exact level-0 slot
// (placement re-derives the bucket from the event time).
func (c *Clock) cascade(b int32) {
	idx := c.buckets[b]
	if idx < 0 {
		return
	}
	c.buckets[b] = -1
	c.occ[b>>6] &^= 1 << (b & 63)
	for idx >= 0 {
		next := c.slots[idx].link
		c.wheelCount--
		c.enqueue(idx)
		idx = next
	}
}

// nextOcc scans level's occupancy bitmap for the first occupied slot
// in [lo, hi], returning the slot number or -1.
func (c *Clock) nextOcc(level, lo, hi int32) int32 {
	base := level << (wheelBits - 6)
	for w := lo >> 6; w <= hi>>6; w++ {
		word := c.occ[base+w]
		if w == lo>>6 {
			word &= ^uint64(0) << (lo & 63)
		}
		if w == hi>>6 {
			word &= ^uint64(0) >> (63 - hi&63)
		}
		if word != 0 {
			return w<<6 | int32(bits.TrailingZeros64(word))
		}
	}
	return -1
}

// dispatchThrough stages every wheel event with tick <= target into
// the heap and advances the frontier to target+1, cascading each
// block's level-1 bucket as the frontier enters it.
func (c *Clock) dispatchThrough(target int64) {
	for c.disp <= target {
		if c.wheelCount == 0 {
			c.disp = target + 1
			return
		}
		if c.disp&wheelMask == 0 {
			c.cascade(wheelSlots + int32(c.disp>>wheelBits&wheelMask))
		}
		blockEnd := c.disp | wheelMask
		upto := min(target, blockEnd)
		lo, hi := int32(c.disp&wheelMask), int32(upto&wheelMask)
		for {
			s := c.nextOcc(0, lo, hi)
			if s < 0 {
				break
			}
			c.dumpBucket(s)
			lo = s
		}
		c.disp = upto + 1
	}
}

// syncHeap stages wheel events into the heap until the heap root is
// the global minimum (or the wheel is empty), so Step, Run and Advance
// can treat the heap as the single source of earliest-event truth.
// Remaining wheel events then have strictly greater ticks than the
// root, hence strictly later times.
func (c *Clock) syncHeap() {
	for c.wheelCount > 0 {
		if c.disp&wheelMask == 0 {
			// Frontier at a block start: the block's level-1 bucket may
			// not have cascaded yet, and the scans below assume the
			// current block's events are all in level 0.
			c.cascade(wheelSlots + int32(c.disp>>wheelBits&wheelMask))
		}
		if len(c.heap) > 0 {
			at := c.slots[c.heap[0]].at
			target := c.superEnd() - 1 // root past the wheel horizon: drain it all
			if f := at * tickHz; f < float64(target+1) {
				target = tickOf(at)
			}
			c.dispatchThrough(target)
			return
		}
		// Heap empty: pull the earliest occupied bucket. Level-0 events
		// always live in the frontier's current block, so scan it
		// first, then jump the frontier to the next occupied level-1
		// block within the super-block.
		if s := c.nextOcc(0, int32(c.disp&wheelMask), wheelMask); s >= 0 {
			c.dispatchThrough(c.disp&^wheelMask | int64(s))
			return
		}
		block := c.disp >> wheelBits
		if int32(block&wheelMask) == wheelMask {
			panic("sim: wheel events beyond the dispatch super-block")
		}
		s := c.nextOcc(1, int32(block&wheelMask)+1, wheelMask)
		if s < 0 {
			panic("sim: wheel count positive but no occupied bucket")
		}
		c.disp = (block&^wheelMask | int64(s)) << wheelBits
		c.cascade(wheelSlots + s)
	}
}
