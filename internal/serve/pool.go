package serve

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"smapreduce/internal/core"
	"smapreduce/internal/mr"
	"smapreduce/internal/telemetry"
	"smapreduce/internal/trace"
)

// ErrSaturated is returned by submit when the queue is full: the
// service answers 429 with Retry-After rather than queueing unbounded.
var ErrSaturated = errors.New("serve: run queue saturated")

// ErrDraining is returned by submit once shutdown has begun.
var ErrDraining = errors.New("serve: server draining, not accepting runs")

// pool executes queued runs on a fixed set of workers, each owning
// recycled simulation substrate (mr.SimState, telemetry collector,
// tracer) in the fleet runner's reuse pattern — steady-state service
// throughput allocates no per-run arenas.
type pool struct {
	queue chan *Run
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool

	// finish runs after a run reaches a terminal state (artifact
	// persistence + ledger append live behind it, supplied by Server).
	finish func(r *Run, arts map[string][]byte) error

	// hold, when non-nil, gates every execution start: each worker
	// receives one token before running. Tests use it to pin workers
	// mid-run and drive the queue into saturation deterministically.
	hold chan struct{}
}

// worker is one executor's recycled substrate.
type worker struct {
	sim       *mr.SimState
	col       *telemetry.Collector
	tracer    *trace.Tracer
	verbosity int
}

func newPool(workers, queueDepth int, finish func(*Run, map[string][]byte) error) *pool {
	if workers <= 0 {
		workers = 2
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	p := &pool{
		queue:  make(chan *Run, queueDepth),
		finish: finish,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.loop()
	}
	return p
}

// submit enqueues a run without blocking: a full queue sheds the run
// with ErrSaturated, a draining pool with ErrDraining.
func (p *pool) submit(r *Run) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return ErrDraining
	}
	select {
	case p.queue <- r:
		return nil
	default:
		return ErrSaturated
	}
}

// drain stops intake and blocks until every queued and running run has
// finished. Idempotent.
func (p *pool) drain() {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *pool) loop() {
	defer p.wg.Done()
	w := &worker{
		sim: mr.NewSimState(),
		col: telemetry.NewCollector(0),
	}
	for r := range p.queue {
		p.execute(w, r)
	}
}

// execute runs one scenario on the worker's substrate and drives the
// run to a terminal state — StateDone with artifacts and a ledger
// entry, or StateFailed. Panics in the engine become failures; the
// worker survives because its substrate is rebuilt from Reset on the
// next run anyway.
func (p *pool) execute(w *worker, r *Run) {
	r.setState(StateRunning)
	if p.hold != nil {
		// StateRunning is already visible, so tests can wait for a
		// worker to be pinned here before driving the queue full.
		<-p.hold
	}
	defer func() {
		if v := recover(); v != nil {
			err := fmt.Sprintf("panic: %v\n%s", v, debug.Stack())
			r.fail(err)
			r.hub.terminate("failed", failedEvent{Error: fmt.Sprintf("panic: %v", v)})
		}
	}()

	arts, err := p.runScenario(w, r)
	if err != nil {
		r.fail(err.Error())
		r.hub.terminate("failed", failedEvent{Error: err.Error()})
		return
	}
	if err := p.finish(r, arts); err != nil {
		r.fail(err.Error())
		r.hub.terminate("failed", failedEvent{Error: err.Error()})
		return
	}
	entry := r.LedgerEntry()
	done := doneEvent{Artifacts: ArtifactNames()}
	if entry != nil {
		done.LedgerIndex = entry.Index
		done.MerkleRoot = entry.Root
		done.EntryHash = entry.Hash
	}
	r.hub.terminate("done", done)
}

// runScenario executes the simulation and assembles the artifact set.
func (p *pool) runScenario(w *worker, r *Run) (map[string][]byte, error) {
	plan := r.Scenario.build()
	cfg, err := plan.clusterConfig()
	if err != nil {
		return nil, err
	}
	specs, err := plan.jobSpecs()
	if err != nil {
		return nil, err
	}
	arrivals, err := plan.arrivalSource(cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Recycle the tracer across runs; only a verbosity change forces a
	// rebuild (verbosity is fixed at construction).
	if w.tracer == nil || w.verbosity != r.Scenario.TraceVerbosity {
		w.tracer = trace.New(trace.Options{Verbosity: r.Scenario.TraceVerbosity})
		w.verbosity = r.Scenario.TraceVerbosity
	} else {
		w.tracer.Reset()
	}
	w.col.Reset()

	r.hub.publish("started", startedEvent{
		Engine:  r.Scenario.engineName(),
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
		Jobs:    len(specs),
	})

	// Stream telemetry ticks into the hub while the run executes. The
	// forwarder drains the subscription so the collector's publish path
	// stays non-blocking; Cancel closes sub.C and joins it.
	sub := w.col.Subscribe(0)
	var fwd sync.WaitGroup
	fwd.Add(1)
	go func() {
		defer fwd.Done()
		for s := range sub.C {
			r.hub.publish("telemetry", telemetryEvent{
				Seq:    s.Seq,
				T:      s.T,
				Names:  s.Names,
				Values: jsonFloats(s.Values),
			})
		}
	}()

	opts := core.Options{
		Cluster:   cfg,
		Telemetry: w.col,
		Tracer:    w.tracer,
		Sim:       w.sim,
		Events:    true,
		Tenants:   plan.tenants(),
		Arrivals:  arrivals,
		Prepare: func(c *mr.Cluster) error {
			if sched, ok := plan.chaosSchedule(); ok {
				if err := sched.Apply(c); err != nil {
					return err
				}
			}
			c.SetOnProgress(func(pr mr.Progress) {
				r.hub.publish("progress", progressEvent{
					T:             pr.At,
					Milestone:     pr.Milestone,
					Job:           pr.Job,
					JobsSubmitted: pr.JobsSubmitted,
					JobsFinished:  pr.JobsFinished,
					JobsActive:    pr.JobsActive,
					MapPct:        jsonFloat(pr.MapPct),
					ReducePct:     jsonFloat(pr.ReducePct),
				})
			})
			return nil
		},
	}
	res, runErr := core.Run(plan.engine(), opts, specs...)
	sub.Cancel()
	fwd.Wait()
	if runErr != nil {
		return nil, runErr
	}
	return assembleArtifacts(r, res, w.col, w.tracer)
}
