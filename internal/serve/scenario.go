package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	"smapreduce/internal/arrival"
	"smapreduce/internal/chaos"
	"smapreduce/internal/cli"
	"smapreduce/internal/core"
	"smapreduce/internal/mr"
	"smapreduce/internal/policy"
)

// JobSet describes a batch of identical jobs in a scenario, mirroring
// smrsim's -bench/-input-gb/-reduces/-jobs/-stagger flags.
type JobSet struct {
	// Bench names the PUMA profile.
	Bench string `json:"bench"`
	// InputGB is the per-job input size in GB.
	InputGB float64 `json:"input_gb"`
	// Reduces is the reduce task count per job (default 4).
	Reduces int `json:"reduces,omitempty"`
	// Count is how many identical jobs to submit (default 1).
	Count int `json:"count,omitempty"`
	// Stagger is the gap between submissions in virtual seconds.
	Stagger float64 `json:"stagger,omitempty"`
	// SubmitAt offsets the set's first submission.
	SubmitAt float64 `json:"submit_at,omitempty"`
}

// Scenario is the POST /runs request body: one complete simulation
// description — engine, cluster shape, workload (a fixed job list or
// an open arrival stream) and an optional chaos schedule. Unknown
// fields are rejected so typos fail loudly, like every other config
// parser in this repo.
type Scenario struct {
	// Engine names the evaluated system (cli.ParseEngine vocabulary);
	// empty means "smapreduce".
	Engine string `json:"engine,omitempty"`
	// Seed is the cluster seed; 0 keeps the default (1).
	Seed uint64 `json:"seed,omitempty"`

	// Cluster shape; zero values keep mr.DefaultConfig.
	Workers     int    `json:"workers,omitempty"`
	MapSlots    int    `json:"map_slots,omitempty"`
	ReduceSlots int    `json:"reduce_slots,omitempty"`
	Scheduler   string `json:"scheduler,omitempty"`
	Speculate   bool   `json:"speculate,omitempty"`
	SlowNodes   int    `json:"slow_nodes,omitempty"`

	// Jobs is the fixed workload; exactly one of Jobs and Arrivals must
	// be set.
	Jobs []JobSet `json:"jobs,omitempty"`
	// Arrivals is an open multi-tenant arrival config
	// (arrival.ParseConfig schema).
	Arrivals *arrival.Config `json:"arrivals,omitempty"`

	// Chaos is a fault schedule in the chaos text format, applied
	// before the run starts.
	Chaos string `json:"chaos,omitempty"`

	// TraceVerbosity selects the span sources recorded into the trace
	// artifact (trace.Verbosity* levels).
	TraceVerbosity int `json:"trace_verbosity,omitempty"`
}

// ParseScenario decodes and validates a scenario document.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	if dec.More() {
		return Scenario{}, fmt.Errorf("scenario: trailing data after document")
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// Validate reports the first problem with the scenario, or nil.
func (s *Scenario) Validate() error {
	if _, err := cli.ParseEngine(s.engineName()); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if (len(s.Jobs) == 0) == (s.Arrivals == nil) {
		return fmt.Errorf("scenario: exactly one of jobs and arrivals must be set")
	}
	if s.Arrivals != nil {
		if err := s.Arrivals.Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	b := s.build()
	if _, err := b.clusterConfig(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if _, err := b.jobSpecs(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if s.Chaos != "" {
		sched, err := chaos.ParseSchedule(s.Chaos)
		if err != nil {
			return fmt.Errorf("scenario chaos: %w", err)
		}
		if len(sched.Faults) == 0 {
			return fmt.Errorf("scenario chaos: schedule contains no faults")
		}
		workers := s.Workers
		if workers <= 0 {
			workers = mr.DefaultConfig().Workers
		}
		if err := sched.Validate(workers); err != nil {
			return fmt.Errorf("scenario chaos: %w", err)
		}
	}
	return nil
}

// Canonical renders the validated scenario in canonical bytes — the
// scenario.json artifact and the document the ledger's input hash
// covers. Two submissions differing only in whitespace or key order
// hash identically.
func (s *Scenario) Canonical() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (s *Scenario) engineName() string {
	if s.Engine == "" {
		return "smapreduce"
	}
	return s.Engine
}

// build returns the scenario's runnable projection.
func (s *Scenario) build() *buildPlan { return &buildPlan{s: s} }

// buildPlan turns a validated scenario into core.Run inputs. Split
// from Scenario so validation and execution share one translation.
type buildPlan struct{ s *Scenario }

func (b *buildPlan) engine() core.Engine {
	e, _ := cli.ParseEngine(b.s.engineName())
	return e
}

func (b *buildPlan) clusterConfig() (mr.Config, error) {
	return cli.BuildCluster(cli.ClusterOptions{
		Workers:     b.s.Workers,
		MapSlots:    b.s.MapSlots,
		ReduceSlots: b.s.ReduceSlots,
		Seed:        b.s.Seed,
		Scheduler:   b.s.Scheduler,
		Speculate:   b.s.Speculate,
		SlowNodes:   b.s.SlowNodes,
	})
}

func (b *buildPlan) jobSpecs() ([]mr.JobSpec, error) {
	var specs []mr.JobSpec
	for i, set := range b.s.Jobs {
		count := set.Count
		if count <= 0 {
			count = 1
		}
		reduces := set.Reduces
		if reduces <= 0 {
			reduces = 4
		}
		batch, err := cli.BuildJobs(set.Bench, set.InputGB, reduces, count, set.Stagger)
		if err != nil {
			return nil, fmt.Errorf("jobs[%d]: %w", i, err)
		}
		for j := range batch {
			batch[j].SubmitAt += set.SubmitAt
			if count > 1 || len(b.s.Jobs) > 1 {
				batch[j].Name = fmt.Sprintf("s%d-%s", i, batch[j].Name)
			}
		}
		specs = append(specs, batch...)
	}
	return specs, nil
}

// tenants derives capacity-policy tenants for the capacity engines
// from the arrival config, mirroring smrsim's wiring.
func (b *buildPlan) tenants() []policy.Tenant {
	if b.s.Arrivals == nil {
		return nil
	}
	return cli.PolicyTenants(*b.s.Arrivals)
}

// chaosSchedule parses the scenario's fault schedule (validated
// earlier; empty when none).
func (b *buildPlan) chaosSchedule() (chaos.Schedule, bool) {
	if b.s.Chaos == "" {
		return chaos.Schedule{}, false
	}
	sched, err := chaos.ParseSchedule(b.s.Chaos)
	if err != nil {
		return chaos.Schedule{}, false
	}
	return sched, true
}

// arrivalSource builds the scenario's arrival stream for the given
// cluster seed, pure in the seed like the fleet runner's streams.
func (b *buildPlan) arrivalSource(seed uint64) (mr.ArrivalSource, error) {
	if b.s.Arrivals == nil {
		return nil, nil
	}
	return arrival.New(*b.s.Arrivals, arrival.RNG(seed))
}
