// Package ledger is the tamper-evident run ledger behind the
// simulation service: every completed run's artifact set is
// content-hashed, the hashes are batched into a Merkle tree, and the
// tree's root is appended to a hash-linked chain of entries. Any
// published number can then be verified byte-for-byte against its
// recorded inputs — re-hash the artifacts, rebuild the root, walk the
// chain — with nothing trusted but the chain head.
//
// The design follows the Merkle-batching audit-log pipeline referenced
// in SNIPPETS.md: leaves are sha256 digests of whole artifacts (the
// scenario document first, so the recorded *inputs* are part of every
// proof), the tree duplicates the last node at odd levels, and each
// entry's hash covers the previous entry's hash, giving an
// append-only chain whose every prefix is independently checkable.
//
// Determinism contract: the leaf hashes and the Merkle root are pure
// functions of the artifact bytes, which are themselves pure functions
// of the scenario (the simulation is deterministic), so resubmitting a
// scenario reproduces its leaves and root bit-for-bit. Only the entry
// hash differs across resubmissions — it chains the run's position in
// history, not its content.
package ledger

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
)

// Genesis is the Prev value of the first entry: 32 zero bytes, hex.
const Genesis = "0000000000000000000000000000000000000000000000000000000000000000"

// Artifact records one named artifact's content digest and size.
type Artifact struct {
	Name   string `json:"name"`
	SHA256 string `json:"sha256"`
	Size   int64  `json:"size"`
}

// Entry is one ledger record: a run's artifact digests batched under a
// Merkle root and chained to the previous entry.
type Entry struct {
	// Index is the entry's position in the chain, from 0.
	Index int `json:"index"`
	// RunID names the run in the service registry.
	RunID string `json:"run_id"`
	// Artifacts lists the run's artifact digests in the fixed artifact
	// order; Artifacts[0] is the scenario document (the recorded input).
	Artifacts []Artifact `json:"artifacts"`
	// Root is the Merkle root over the artifact digests, hex.
	Root string `json:"merkle_root"`
	// Prev is the previous entry's Hash (Genesis for entry 0), hex.
	Prev string `json:"prev"`
	// Hash is this entry's digest over every field above, hex.
	Hash string `json:"hash"`
}

// MerkleRoot folds the leaf digests into a root: pairs are hashed
// together level by level, an odd node is paired with itself (the
// Bitcoin convention), and a single leaf hashes once more so a root is
// never confused with a leaf. Panics on zero leaves — an empty
// artifact set is a caller bug, not a verifiable state.
func MerkleRoot(leaves [][sha256.Size]byte) [sha256.Size]byte {
	if len(leaves) == 0 {
		panic("ledger: MerkleRoot of zero leaves")
	}
	level := make([][sha256.Size]byte, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			a := level[i]
			b := a
			if i+1 < len(level) {
				b = level[i+1]
			}
			next = append(next, hashPair(a, b))
		}
		level = next
	}
	if len(leaves) == 1 {
		return hashPair(level[0], level[0])
	}
	return level[0]
}

func hashPair(a, b [sha256.Size]byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(a[:])
	h.Write(b[:])
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// entryHash computes an entry's chain digest: a canonical,
// field-delimited rendering of everything except Hash itself. The
// rendering is versioned by its leading tag so a future schema change
// cannot silently collide with v1 digests.
func entryHash(e Entry) string {
	h := sha256.New()
	io.WriteString(h, "smr-ledger-v1\x00")
	io.WriteString(h, strconv.Itoa(e.Index))
	io.WriteString(h, "\x00")
	io.WriteString(h, e.RunID)
	io.WriteString(h, "\x00")
	for _, a := range e.Artifacts {
		io.WriteString(h, a.Name)
		io.WriteString(h, "\x01")
		io.WriteString(h, a.SHA256)
		io.WriteString(h, "\x01")
		io.WriteString(h, strconv.FormatInt(a.Size, 10))
		io.WriteString(h, "\x00")
	}
	io.WriteString(h, e.Root)
	io.WriteString(h, "\x00")
	io.WriteString(h, e.Prev)
	return hex.EncodeToString(h.Sum(nil))
}

// Ledger is an append-only, hash-linked chain of run entries, safe for
// concurrent use. With a persistence path set, every appended entry is
// also written (and fsync'd) as one JSONL line, so the on-disk chain
// survives the process and cmd/ledgercheck can verify it offline.
type Ledger struct {
	mu      sync.Mutex
	entries []Entry
	file    *os.File
}

// New returns an empty in-memory ledger.
func New() *Ledger { return &Ledger{} }

// Open returns a ledger persisted to path (JSONL, one entry per
// line). An existing file is loaded and becomes the chain's prefix —
// after verifying it, so a tampered file refuses to extend.
func Open(path string) (*Ledger, error) {
	l := &Ledger{}
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		entries, err := ParseJSONL(data)
		if err != nil {
			return nil, fmt.Errorf("ledger: %s: %w", path, err)
		}
		if err := VerifyChain(entries); err != nil {
			return nil, fmt.Errorf("ledger: %s fails verification: %w", path, err)
		}
		l.entries = entries
	} else if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l.file = f
	return l, nil
}

// Append hashes the artifact contents, builds the Merkle root and
// chains a new entry. The artifact order given is the recorded order;
// callers must keep it fixed per schema (scenario first).
func (l *Ledger) Append(runID string, names []string, contents [][]byte) (Entry, error) {
	if len(names) == 0 || len(names) != len(contents) {
		return Entry{}, fmt.Errorf("ledger: %d names for %d artifact bodies", len(names), len(contents))
	}
	arts := make([]Artifact, len(names))
	leaves := make([][sha256.Size]byte, len(names))
	for i, name := range names {
		leaves[i] = sha256.Sum256(contents[i])
		arts[i] = Artifact{Name: name, SHA256: hex.EncodeToString(leaves[i][:]), Size: int64(len(contents[i]))}
	}
	root := MerkleRoot(leaves)

	l.mu.Lock()
	defer l.mu.Unlock()
	e := Entry{
		Index:     len(l.entries),
		RunID:     runID,
		Artifacts: arts,
		Root:      hex.EncodeToString(root[:]),
		Prev:      Genesis,
	}
	if n := len(l.entries); n > 0 {
		e.Prev = l.entries[n-1].Hash
	}
	e.Hash = entryHash(e)
	if l.file != nil {
		line, err := json.Marshal(e)
		if err != nil {
			return Entry{}, err
		}
		if _, err := l.file.Write(append(line, '\n')); err != nil {
			return Entry{}, fmt.Errorf("ledger: appending entry %d: %w", e.Index, err)
		}
		if err := l.file.Sync(); err != nil {
			return Entry{}, err
		}
	}
	l.entries = append(l.entries, e)
	return e, nil
}

// Entries returns a copy of the chain.
func (l *Ledger) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Len returns the chain length.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Head returns the newest entry and true, or a zero Entry and false
// for an empty ledger.
func (l *Ledger) Head() (Entry, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == 0 {
		return Entry{}, false
	}
	return l.entries[len(l.entries)-1], true
}

// Close releases the persistence file, if any.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	err := l.file.Close()
	l.file = nil
	return err
}

// WriteJSON renders the chain as a JSON array — the GET /ledger body.
func (l *Ledger) WriteJSON(w io.Writer) error {
	l.mu.Lock()
	entries := make([]Entry, len(l.entries))
	copy(entries, l.entries)
	l.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		return err
	}
	return bw.Flush()
}

// ParseJSONL decodes a JSONL chain as persisted by Open/Append.
func ParseJSONL(data []byte) ([]Entry, error) {
	var entries []Entry
	dec := json.NewDecoder(bytes.NewReader(data))
	for {
		var e Entry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("entry %d: %w", len(entries), err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// VerifyChain checks a chain's internal consistency: contiguous
// indices from 0, each Prev matching the previous Hash (Genesis
// first), every entry's Hash and Merkle root recomputing from its
// recorded fields. It does not touch artifact bodies — pair with
// VerifyArtifacts for byte-level verification.
func VerifyChain(entries []Entry) error {
	prev := Genesis
	for i, e := range entries {
		if e.Index != i {
			return fmt.Errorf("entry %d: recorded index %d", i, e.Index)
		}
		if e.Prev != prev {
			return fmt.Errorf("entry %d: prev hash %.12s does not match predecessor %.12s", i, e.Prev, prev)
		}
		if len(e.Artifacts) == 0 {
			return fmt.Errorf("entry %d: no artifacts", i)
		}
		leaves, err := leafDigests(e)
		if err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
		root := MerkleRoot(leaves)
		if got := hex.EncodeToString(root[:]); got != e.Root {
			return fmt.Errorf("entry %d: merkle root %.12s does not recompute (got %.12s)", i, e.Root, got)
		}
		if got := entryHash(e); got != e.Hash {
			return fmt.Errorf("entry %d: entry hash %.12s does not recompute (got %.12s)", i, e.Hash, got)
		}
		prev = e.Hash
	}
	return nil
}

// VerifyArtifacts checks one entry's recorded digests against the
// artifact bodies fetch returns — the byte-for-byte half of
// verification. fetch is called once per artifact name.
func VerifyArtifacts(e Entry, fetch func(name string) ([]byte, error)) error {
	for _, a := range e.Artifacts {
		body, err := fetch(a.Name)
		if err != nil {
			return fmt.Errorf("run %s: artifact %s: %w", e.RunID, a.Name, err)
		}
		if int64(len(body)) != a.Size {
			return fmt.Errorf("run %s: artifact %s: %d bytes, ledger records %d", e.RunID, a.Name, len(body), a.Size)
		}
		sum := sha256.Sum256(body)
		if got := hex.EncodeToString(sum[:]); got != a.SHA256 {
			return fmt.Errorf("run %s: artifact %s: content hash %.12s does not match ledger %.12s",
				e.RunID, a.Name, got, a.SHA256)
		}
	}
	return nil
}

// leafDigests decodes an entry's recorded artifact digests.
func leafDigests(e Entry) ([][sha256.Size]byte, error) {
	leaves := make([][sha256.Size]byte, len(e.Artifacts))
	for i, a := range e.Artifacts {
		raw, err := hex.DecodeString(a.SHA256)
		if err != nil || len(raw) != sha256.Size {
			return nil, fmt.Errorf("artifact %s: bad digest %q", a.Name, a.SHA256)
		}
		copy(leaves[i][:], raw)
	}
	return leaves, nil
}
