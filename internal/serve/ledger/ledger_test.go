package ledger

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func leaf(s string) [sha256.Size]byte { return sha256.Sum256([]byte(s)) }

// TestMerkleRootShape pins structural properties of the tree: root
// depends on every leaf, on leaf order, and a single leaf is rehashed
// so it cannot impersonate its own root.
func TestMerkleRootShape(t *testing.T) {
	a, b, c := leaf("a"), leaf("b"), leaf("c")

	r2 := MerkleRoot([][sha256.Size]byte{a, b})
	if r2 == hashPair(b, a) || r2 != hashPair(a, b) {
		t.Error("two-leaf root must be H(a||b), order-sensitive")
	}
	// Odd level duplicates the last node.
	r3 := MerkleRoot([][sha256.Size]byte{a, b, c})
	if want := hashPair(hashPair(a, b), hashPair(c, c)); r3 != want {
		t.Error("three-leaf root must duplicate the odd node")
	}
	// A single leaf is domain-separated from its content hash.
	r1 := MerkleRoot([][sha256.Size]byte{a})
	if r1 == a {
		t.Error("single-leaf root equals the leaf")
	}
	if r1 != hashPair(a, a) {
		t.Error("single-leaf root must be H(a||a)")
	}
	// Changing any leaf changes the root.
	if MerkleRoot([][sha256.Size]byte{a, b, leaf("c'")}) == r3 {
		t.Error("root insensitive to last leaf")
	}

	defer func() {
		if recover() == nil {
			t.Error("MerkleRoot of zero leaves did not panic")
		}
	}()
	MerkleRoot(nil)
}

// buildChain appends n runs of deterministic artifacts.
func buildChain(t *testing.T, l *Ledger, n int) []Entry {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := l.Append(fmt.Sprintf("r%06d", i),
			[]string{"scenario.json", "stats.json"},
			[][]byte{[]byte(fmt.Sprintf(`{"seed":%d}`, i)), []byte(`{"ok":true}`)})
		if err != nil {
			t.Fatal(err)
		}
	}
	return l.Entries()
}

func TestChainVerifies(t *testing.T) {
	l := New()
	entries := buildChain(t, l, 5)
	if err := VerifyChain(entries); err != nil {
		t.Fatalf("honest chain failed verification: %v", err)
	}
	if entries[0].Prev != Genesis {
		t.Errorf("entry 0 prev = %s", entries[0].Prev)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Prev != entries[i-1].Hash {
			t.Errorf("entry %d not linked", i)
		}
	}
	head, ok := l.Head()
	if !ok || head.Index != 4 {
		t.Errorf("Head = %+v, %v", head, ok)
	}
}

// TestChainDetectsTampering flips one field at a time and expects
// verification to fail each way.
func TestChainDetectsTampering(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(e []Entry)
	}{
		{"artifact digest", func(e []Entry) { e[2].Artifacts[1].SHA256 = strings.Repeat("ab", 32) }},
		{"artifact size", func(e []Entry) { e[2].Artifacts[0].Size++ }},
		{"merkle root", func(e []Entry) { e[1].Root = e[0].Root }},
		{"run id", func(e []Entry) { e[3].RunID = "r999999" }},
		{"dropped entry", func(e []Entry) { copy(e[1:], e[2:]) }},
		{"reordered link", func(e []Entry) { e[1], e[2] = e[2], e[1] }},
		{"rewritten history", func(e []Entry) { e[0].Hash = entryHash(e[0]) }}, // stale: mutate first
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			entries := buildChain(t, New(), 5)
			if tc.name == "rewritten history" {
				entries[0].RunID = "forged"
			}
			tc.mutate(entries)
			if err := VerifyChain(entries); err == nil {
				t.Fatalf("%s: tampered chain verified", tc.name)
			}
		})
	}
}

func TestVerifyArtifacts(t *testing.T) {
	l := New()
	bodies := map[string][]byte{
		"scenario.json": []byte(`{"seed":7}`),
		"stats.json":    []byte(`{"jobs":2}`),
	}
	e, err := l.Append("r000000", []string{"scenario.json", "stats.json"},
		[][]byte{bodies["scenario.json"], bodies["stats.json"]})
	if err != nil {
		t.Fatal(err)
	}
	fetch := func(name string) ([]byte, error) { return bodies[name], nil }
	if err := VerifyArtifacts(e, fetch); err != nil {
		t.Fatalf("honest artifacts failed: %v", err)
	}
	bodies["stats.json"] = []byte(`{"jobs":3}`)
	if err := VerifyArtifacts(e, fetch); err == nil {
		t.Fatal("tampered artifact verified")
	}
}

// TestOpenPersistsAndReloads exercises the JSONL persistence loop:
// append, reopen, extend, verify — and refuse a tampered file.
func TestOpenPersistsAndReloads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	buildChain(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.Len() != 3 {
		t.Fatalf("reloaded %d entries, want 3", l2.Len())
	}
	if _, err := l2.Append("r000003", []string{"scenario.json"}, [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := ParseJSONL(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("file holds %d entries, want 4", len(entries))
	}
	if err := VerifyChain(entries); err != nil {
		t.Fatalf("persisted chain failed verification: %v", err)
	}

	// A tampered file must refuse to open for appending.
	tampered := strings.Replace(string(data), "r000003", "r999999", 1)
	bad := filepath.Join(t.TempDir(), "ledger.jsonl")
	os.WriteFile(bad, []byte(tampered), 0o644)
	if _, err := Open(bad); err == nil {
		t.Fatal("tampered ledger opened for appending")
	}
}

func TestAppendRejectsBadInput(t *testing.T) {
	l := New()
	if _, err := l.Append("r0", nil, nil); err == nil {
		t.Error("empty artifact set accepted")
	}
	if _, err := l.Append("r0", []string{"a"}, [][]byte{[]byte("x"), []byte("y")}); err == nil {
		t.Error("mismatched names/bodies accepted")
	}
}

func TestWriteJSON(t *testing.T) {
	l := New()
	buildChain(t, l, 2)
	var b strings.Builder
	if err := l.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"run_id": "r000000"`) || !strings.Contains(out, `"merkle_root"`) {
		t.Errorf("WriteJSON output unexpected:\n%s", out)
	}
}
