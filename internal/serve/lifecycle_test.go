package serve

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"smapreduce/internal/serve/ledger"
	"smapreduce/internal/telemetry"
	"smapreduce/internal/trace"
)

// TestRealServerLifecycle exercises the production path the httptest
// suite bypasses: a real listener via Start, /metrics and /trace with
// a live collector and tracer attached, then Shutdown and Wait.
func TestRealServerLifecycle(t *testing.T) {
	col := telemetry.NewCollector(8)
	col.Register("cluster/running-maps", func() float64 { return 3 })
	col.Tick(1)
	tr := trace.New(trace.Options{})
	tr.Instant(1, 1, "test", "marker")

	s, err := New(Options{Workers: 1, Collector: col, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != "" {
		t.Errorf("Addr before Start = %q", s.Addr())
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	code, body, hdr := getBody(t, base+"/metrics")
	if code != http.StatusOK || !bytes.Contains(body, []byte("smr_build_info")) {
		t.Errorf("/metrics = %d: %.120s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	code, body, _ = getBody(t, base+"/trace")
	if code != http.StatusOK || !bytes.Contains(body, []byte("marker")) {
		t.Errorf("/trace = %d: %.120s", code, body)
	}

	resp, err := http.Post(base+"/runs", "application/json", strings.NewReader(smallScenario))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /runs over real listener = %d", resp.StatusCode)
	}
	waitState(t, s, "r000000", StateDone)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := s.Wait(); err != nil {
		t.Fatalf("wait after shutdown: %v", err)
	}
}

// TestPanicBecomesFailure pins the worker's recover path: a panic
// while finishing a run must fail that run (with a terminal failed
// event), not kill the worker.
func TestPanicBecomesFailure(t *testing.T) {
	calls := 0
	p := newPool(1, 1, func(r *Run, arts map[string][]byte) error {
		calls++
		if calls == 1 {
			panic("ledger exploded")
		}
		r.complete(arts, ledger.Entry{})
		return nil
	})
	defer p.drain()
	g := newRegistry()
	sc, err := ParseScenario([]byte(smallScenario))
	if err != nil {
		t.Fatal(err)
	}
	canonical, _ := sc.Canonical()

	a := g.add(sc, canonical)
	if err := p.submit(a); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, a)
	if st, msg := a.State(); st != StateFailed || !strings.Contains(msg, "ledger exploded") {
		t.Fatalf("after panic: state %s, err %q", st, msg)
	}
	replay, _, cancel := a.hub.subscribe()
	cancel()
	if last := replay[len(replay)-1]; last.Name != "failed" {
		t.Errorf("terminal event %q", last.Name)
	}

	// The worker survived: the next run completes.
	b := g.add(sc, canonical)
	if err := p.submit(b); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, b)
	if st, msg := b.State(); st != StateDone {
		t.Fatalf("run after panic: state %s, err %q", st, msg)
	}
}

// TestFinishErrorFailsRun pins the non-panic finish failure path.
func TestFinishErrorFailsRun(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	run := s.reg.add(Scenario{}, nil)
	if err := s.finishRun(run, map[string][]byte{}); err == nil ||
		!strings.Contains(err.Error(), "missing artifact") {
		t.Errorf("finishRun with no artifacts: %v", err)
	}
	_ = ts
}

// TestShutdownAbandonsStuckDrain bounds the drain: an expired context
// reports the abandonment instead of hanging.
func TestShutdownAbandonsStuckDrain(t *testing.T) {
	s, _ := newTestServer(t, Options{Workers: 1})
	hold := make(chan struct{})
	s.pool.hold = hold
	sc, _ := ParseScenario([]byte(smallScenario))
	canonical, _ := sc.Canonical()
	run := s.reg.add(sc, canonical)
	if err := s.pool.submit(run); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, run.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	if err == nil || !strings.Contains(err.Error(), "drain abandoned") {
		t.Fatalf("shutdown with pinned worker: %v", err)
	}
	close(hold) // release the worker so the test process drains cleanly
}

// TestOversizedScenarioRejected pins the request body cap.
func TestOversizedScenarioRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	huge := `{"jobs":[{"bench":"grep","input_gb":1}],"chaos":"` +
		strings.Repeat("#", maxScenarioBytes) + `"}`
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized POST = %d, want 413", resp.StatusCode)
	}
}

// waitTerminal polls a run until done or failed.
func waitTerminal(t *testing.T, r *Run) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if st, _ := r.State(); st == StateDone || st == StateFailed {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s never terminated", r.ID)
}
