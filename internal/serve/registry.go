package serve

import (
	"fmt"
	"sync"

	"smapreduce/internal/serve/ledger"
)

// RunState is a run's lifecycle phase.
type RunState string

const (
	// StateQueued: accepted, waiting for a pool worker.
	StateQueued RunState = "queued"
	// StateRunning: executing on a worker.
	StateRunning RunState = "running"
	// StateDone: finished; artifacts stored and ledger entry appended.
	StateDone RunState = "done"
	// StateFailed: the run errored; no ledger entry is written.
	StateFailed RunState = "failed"
)

// Artifact names in their fixed schema order — the order the ledger
// records leaves in. scenario.json comes first: it is the recorded
// input everything else is verified against.
const (
	ArtifactScenario  = "scenario.json"
	ArtifactEvents    = "events.jsonl"
	ArtifactTrace     = "trace.json"
	ArtifactAudit     = "audit.log"
	ArtifactTelemetry = "telemetry.jsonl"
	ArtifactStats     = "stats.json"
)

// ArtifactNames lists the artifact schema in ledger leaf order.
func ArtifactNames() []string {
	return []string{ArtifactScenario, ArtifactEvents, ArtifactTrace,
		ArtifactAudit, ArtifactTelemetry, ArtifactStats}
}

// Run is one registered simulation: its scenario, live event stream
// and, once finished, its artifact set and ledger entry.
type Run struct {
	// ID is the registry-assigned identifier ("r000000"...), also the
	// run's artifact directory name under the store root.
	ID string
	// Scenario is the validated request.
	Scenario Scenario
	// ScenarioJSON is the canonical scenario document — the
	// scenario.json artifact.
	ScenarioJSON []byte

	hub *hub

	mu        sync.Mutex
	state     RunState
	err       string
	artifacts map[string][]byte
	entry     *ledger.Entry
}

// State returns the run's current phase (and error for StateFailed).
func (r *Run) State() (RunState, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state, r.err
}

// Artifact returns a finished run's named artifact, or nil.
func (r *Run) Artifact(name string) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.artifacts[name]
}

// LedgerEntry returns the run's ledger entry, or nil before StateDone.
func (r *Run) LedgerEntry() *ledger.Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entry
}

func (r *Run) setState(s RunState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state = s
}

func (r *Run) fail(err string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state = StateFailed
	r.err = err
}

func (r *Run) complete(artifacts map[string][]byte, entry ledger.Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state = StateDone
	r.artifacts = artifacts
	r.entry = &entry
}

// RunInfo is the JSON projection served by GET /runs and /runs/{id}.
type RunInfo struct {
	ID        string   `json:"id"`
	State     RunState `json:"state"`
	Engine    string   `json:"engine"`
	Error     string   `json:"error,omitempty"`
	Artifacts []string `json:"artifacts,omitempty"`
	// LedgerIndex is the run's chain position, -1 before completion.
	LedgerIndex int    `json:"ledger_index"`
	MerkleRoot  string `json:"merkle_root,omitempty"`
}

// Info snapshots the run for listing.
func (r *Run) Info() RunInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	info := RunInfo{
		ID:          r.ID,
		State:       r.state,
		Engine:      r.Scenario.engineName(),
		Error:       r.err,
		LedgerIndex: -1,
	}
	if r.state == StateDone {
		info.Artifacts = ArtifactNames()
	}
	if r.entry != nil {
		info.LedgerIndex = r.entry.Index
		info.MerkleRoot = r.entry.Root
	}
	return info
}

// registry assigns run IDs and resolves them, insertion-ordered.
type registry struct {
	mu   sync.Mutex
	runs map[string]*Run
	seq  []*Run
	next int
}

func newRegistry() *registry {
	return &registry{runs: make(map[string]*Run)}
}

// add registers a new queued run for the given scenario. IDs come from
// a monotone counter, never reused — a run removed after a shed
// submission leaves a gap, not an aliased identifier.
func (g *registry) add(s Scenario, canonical []byte) *Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := &Run{
		ID:           fmt.Sprintf("r%06d", g.next),
		Scenario:     s,
		ScenarioJSON: canonical,
		hub:          newHub(),
		state:        StateQueued,
	}
	g.next++
	g.runs[r.ID] = r
	g.seq = append(g.seq, r)
	return r
}

// remove forgets a run that never entered the queue (shed submission).
func (g *registry) remove(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.runs, id)
	for i, r := range g.seq {
		if r.ID == id {
			g.seq = append(g.seq[:i], g.seq[i+1:]...)
			break
		}
	}
}

// get resolves a run by ID.
func (g *registry) get(id string) *Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.runs[id]
}

// list snapshots every run in submission order.
func (g *registry) list() []RunInfo {
	g.mu.Lock()
	runs := make([]*Run, len(g.seq))
	copy(runs, g.seq)
	g.mu.Unlock()
	out := make([]RunInfo, len(runs))
	for i, r := range runs {
		out[i] = r.Info()
	}
	return out
}
