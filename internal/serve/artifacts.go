package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"smapreduce/internal/core"
	"smapreduce/internal/telemetry"
	"smapreduce/internal/trace"
)

// jsonFloat marshals like float64 but renders non-finite values as
// null — several run statistics (execution time before finish, the
// balance factor) are legitimately NaN/Inf, which JSON cannot encode.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

func jsonFloats(vs []float64) []jsonFloat {
	out := make([]jsonFloat, len(vs))
	for i, v := range vs {
		out[i] = jsonFloat(v)
	}
	return out
}

// SSE payload types. Every stream a run emits is one of these, in
// order: started, then interleaved telemetry/progress, then exactly
// one done or failed (the terminal event seals the stream).

type startedEvent struct {
	Engine  string `json:"engine"`
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`
	Jobs    int    `json:"jobs"`
}

type telemetryEvent struct {
	Seq    int         `json:"seq"`
	T      float64     `json:"t"`
	Names  []string    `json:"names"`
	Values []jsonFloat `json:"values"`
}

type progressEvent struct {
	T             float64   `json:"t"`
	Milestone     string    `json:"milestone"`
	Job           string    `json:"job,omitempty"`
	JobsSubmitted int       `json:"jobs_submitted"`
	JobsFinished  int       `json:"jobs_finished"`
	JobsActive    int       `json:"jobs_active"`
	MapPct        jsonFloat `json:"map_pct"`
	ReducePct     jsonFloat `json:"reduce_pct"`
}

type doneEvent struct {
	LedgerIndex int      `json:"ledger_index"`
	MerkleRoot  string   `json:"merkle_root"`
	EntryHash   string   `json:"entry_hash"`
	Artifacts   []string `json:"artifacts"`
}

type failedEvent struct {
	Error string `json:"error"`
}

// statsJob is one job's row in the stats.json artifact.
type statsJob struct {
	Name           string    `json:"name"`
	Tenant         string    `json:"tenant"`
	SubmittedAt    jsonFloat `json:"submitted_at"`
	FinishedAt     jsonFloat `json:"finished_at"`
	ExecutionS     jsonFloat `json:"execution_s"`
	ThroughputMBps jsonFloat `json:"throughput_mbps"`
	SLOMissed      bool      `json:"slo_missed"`
}

// runStats is the stats.json artifact: the run's headline numbers plus
// a per-job table, field order fixed for byte-stable output.
type runStats struct {
	Engine            string     `json:"engine"`
	Seed              uint64     `json:"seed"`
	Workers           int        `json:"workers"`
	Jobs              int        `json:"jobs"`
	MeanExecutionS    jsonFloat  `json:"mean_execution_s"`
	P95ExecutionS     jsonFloat  `json:"p95_execution_s"`
	LastFinishS       jsonFloat  `json:"last_finish_s"`
	SLOMisses         int        `json:"slo_misses"`
	Decisions         int        `json:"decisions"`
	CapacityDecisions int        `json:"capacity_decisions"`
	TraceEvents       int        `json:"trace_events"`
	JobDetails        []statsJob `json:"job_details"`
}

// assembleArtifacts renders the run's six artifacts in ledger leaf
// order. Every byte is a pure function of the scenario: writers are
// deterministic, non-finite floats render as null, and nothing here
// reads the wall clock — resubmitting the scenario reproduces the set
// bit-for-bit.
func assembleArtifacts(r *Run, res *core.Result, col *telemetry.Collector, tr *trace.Tracer) (map[string][]byte, error) {
	arts := make(map[string][]byte, 6)
	arts[ArtifactScenario] = r.ScenarioJSON

	var events bytes.Buffer
	if res.Events != nil {
		if err := res.Events.WriteJSONL(&events); err != nil {
			return nil, fmt.Errorf("events artifact: %w", err)
		}
	}
	arts[ArtifactEvents] = events.Bytes()

	var tj bytes.Buffer
	if err := tr.WriteChromeJSON(&tj); err != nil {
		return nil, fmt.Errorf("trace artifact: %w", err)
	}
	arts[ArtifactTrace] = tj.Bytes()

	arts[ArtifactAudit] = renderAudit(res)

	var tel bytes.Buffer
	if err := col.WriteJSONL(&tel); err != nil {
		return nil, fmt.Errorf("telemetry artifact: %w", err)
	}
	arts[ArtifactTelemetry] = tel.Bytes()

	stats, err := renderStats(r, res, tr)
	if err != nil {
		return nil, fmt.Errorf("stats artifact: %w", err)
	}
	arts[ArtifactStats] = stats
	return arts, nil
}

// renderAudit renders the slot manager's per-decision audit records as
// text (AuditRecord.String), one line each — the explainability trail
// for every resize the controller made. Engines without a slot manager
// record an empty trail under the header.
func renderAudit(res *core.Result) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# smapreduce audit log: engine %s, %d decisions\n",
		res.Engine, len(res.Audits))
	for _, a := range res.Audits {
		fmt.Fprintln(&b, a.String())
	}
	return b.Bytes()
}

// renderStats builds the stats.json artifact. Jobs sort by submission
// time then name so arrival-driven runs stay byte-stable.
func renderStats(r *Run, res *core.Result, tr *trace.Tracer) ([]byte, error) {
	jobs := make([]statsJob, 0, len(res.Jobs))
	for _, j := range res.Jobs {
		jobs = append(jobs, statsJob{
			Name:           j.Spec.Name,
			Tenant:         j.Tenant(),
			SubmittedAt:    jsonFloat(j.Submitted),
			FinishedAt:     jsonFloat(j.FinishedAt),
			ExecutionS:     jsonFloat(j.ExecutionTime()),
			ThroughputMBps: jsonFloat(j.ThroughputMBps()),
			SLOMissed:      j.SLOMissed(),
		})
	}
	sort.SliceStable(jobs, func(i, k int) bool {
		if jobs[i].SubmittedAt != jobs[k].SubmittedAt {
			return jobs[i].SubmittedAt < jobs[k].SubmittedAt
		}
		return jobs[i].Name < jobs[k].Name
	})
	s := runStats{
		Engine:            res.Engine.String(),
		Seed:              res.Cluster.Config().Seed,
		Workers:           res.Cluster.Config().Workers,
		Jobs:              len(res.Jobs),
		MeanExecutionS:    jsonFloat(res.MeanExecutionTime()),
		P95ExecutionS:     jsonFloat(res.LatencyPercentile(95)),
		LastFinishS:       jsonFloat(res.LastFinish()),
		SLOMisses:         res.SLOMisses(),
		Decisions:         len(res.Decisions),
		CapacityDecisions: len(res.Capacity),
		TraceEvents:       tr.Len(),
		JobDetails:        jobs,
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
