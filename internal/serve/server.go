// Package serve runs simulations as a service: scenarios POSTed to a
// run registry execute on a bounded worker pool (recycled substrate
// per worker, fleet-runner style), stream progress and telemetry live
// over SSE while they run, and publish their artifact set — scenario,
// event log, trace, audit trail, telemetry, stats — once finished.
// Every completed run's artifacts are content-hashed, Merkle-batched
// and appended to the hash-linked ledger, so any served number can be
// re-verified offline (cmd/ledgercheck) against the recorded inputs.
//
// The HTTP surface:
//
//	POST /runs              submit a scenario; 202 + run id, or 429 when saturated
//	GET  /runs              list the registry
//	GET  /runs/{id}         one run's state
//	GET  /runs/{id}/events  SSE stream: started, telemetry, progress, done|failed
//	GET  /runs/{id}/{artifact}  scenario|log|trace|audit|telemetry|stats
//	GET  /ledger            the hash-linked run ledger (JSON array)
//	GET  /version           build identity of the serving binary
//	GET  /healthz           {"status":"running"|"done"}
//	GET  /metrics           Prometheus text for the attached live collector
//	GET  /trace             Chrome trace JSON for the attached live tracer
//	GET  /debug/pprof/      the standard Go profiler endpoints
//
// Simulations stay single-threaded and deterministic; the service adds
// concurrency only between runs, never inside one.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"smapreduce/internal/serve/ledger"
	"smapreduce/internal/telemetry"
	"smapreduce/internal/trace"
)

// maxScenarioBytes bounds a POST /runs body.
const maxScenarioBytes = 1 << 20

// Options configures a Server.
type Options struct {
	// Workers is the pool size — how many simulations run concurrently
	// (default 2).
	Workers int
	// Queue is the accepted-but-not-running depth beyond the workers;
	// a full queue sheds new runs with 429 (default: Workers).
	Queue int
	// ArtifactDir, when set, mirrors every finished run's artifacts to
	// ArtifactDir/<runID>/<name> and persists the ledger to
	// ArtifactDir/ledger.jsonl for offline verification.
	ArtifactDir string
	// Collector, when non-nil, serves live Prometheus text on /metrics
	// (the in-process run's collector in smrsim's -serve mode).
	Collector *telemetry.Collector
	// Tracer, when non-nil, serves Chrome trace JSON on /trace.
	Tracer *trace.Tracer
}

// Server is the simulation service: registry + pool + ledger behind
// the HTTP API.
type Server struct {
	opts   Options
	reg    *registry
	pool   *pool
	ledger *ledger.Ledger

	submitMu sync.Mutex

	ln   net.Listener
	hs   *http.Server
	errc chan error
	done atomic.Bool

	shutdownOnce sync.Once
}

// New assembles a server. With Options.ArtifactDir set, an existing
// ledger file is verified and extended; a tampered one refuses.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.Queue <= 0 {
		opts.Queue = opts.Workers
	}
	s := &Server{
		opts: opts,
		reg:  newRegistry(),
		errc: make(chan error, 1),
	}
	if opts.ArtifactDir != "" {
		if err := os.MkdirAll(opts.ArtifactDir, 0o755); err != nil {
			return nil, err
		}
		l, err := ledger.Open(filepath.Join(opts.ArtifactDir, "ledger.jsonl"))
		if err != nil {
			return nil, err
		}
		s.ledger = l
	} else {
		s.ledger = ledger.New()
	}
	s.pool = newPool(opts.Workers, opts.Queue, s.finishRun)
	s.hs = &http.Server{Handler: s.mux()}
	return s, nil
}

// finishRun persists a completed run's artifacts, appends its ledger
// entry and flips it to StateDone. Runs finish one at a time through
// here, so ledger order matches completion order.
func (s *Server) finishRun(r *Run, arts map[string][]byte) error {
	names := ArtifactNames()
	contents := make([][]byte, len(names))
	for i, name := range names {
		body, ok := arts[name]
		if !ok {
			return fmt.Errorf("serve: run %s missing artifact %s", r.ID, name)
		}
		contents[i] = body
	}
	if s.opts.ArtifactDir != "" {
		dir := filepath.Join(s.opts.ArtifactDir, r.ID)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for i, name := range names {
			if err := os.WriteFile(filepath.Join(dir, name), contents[i], 0o644); err != nil {
				return err
			}
		}
	}
	entry, err := s.ledger.Append(r.ID, names, contents)
	if err != nil {
		return err
	}
	r.complete(arts, entry)
	return nil
}

func (s *Server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleRun)
	mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /runs/{id}/{artifact}", s.handleArtifact)
	mux.HandleFunc("GET /ledger", s.handleLedger)
	mux.HandleFunc("GET /version", s.handleVersion)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (":0" for an ephemeral port) and serves until
// Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() {
		err := s.hs.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.errc <- err
	}()
	return nil
}

// Addr returns the bound address after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Wait blocks until the serve loop exits (after Shutdown) and returns
// its error.
func (s *Server) Wait() error { return <-s.errc }

// MarkDone flips /healthz to "done" — smrsim's signal that the
// in-process simulation finished while the server keeps serving.
func (s *Server) MarkDone() { s.done.Store(true) }

// Shutdown gracefully stops the service: intake closes (submissions
// shed with 503), queued and running simulations drain, the ledger
// flushes, and the HTTP listener closes. The context bounds the whole
// drain — an expired context abandons in-flight runs and closes
// anyway. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.shutdownOnce.Do(func() {
		drained := make(chan struct{})
		go func() {
			s.pool.drain()
			close(drained)
		}()
		select {
		case <-drained:
		case <-ctx.Done():
			err = fmt.Errorf("serve: drain abandoned: %w", ctx.Err())
		}
		if cerr := s.ledger.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if herr := s.hs.Shutdown(ctx); herr != nil && err == nil {
			err = herr
		}
	})
	return err
}

// ---- handlers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxScenarioBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading scenario: %v", err)
		return
	}
	sc, err := ParseScenario(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	canonical, err := sc.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, "scenario: %v", err)
		return
	}
	// Registration and submission are atomic together so a shed run
	// never lingers in the registry.
	s.submitMu.Lock()
	run := s.reg.add(sc, canonical)
	err = s.pool.submit(run)
	if err != nil {
		s.reg.remove(run.ID)
	}
	s.submitMu.Unlock()
	switch err {
	case nil:
	case ErrSaturated:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case ErrDraining:
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, run.Info())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.list())
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	run := s.reg.get(r.PathValue("id"))
	if run == nil {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	writeJSON(w, http.StatusOK, run.Info())
}

// artifactRoutes maps URL artifact segments to artifact names. The
// event log serves as "log" because /runs/{id}/events is the SSE
// stream.
var artifactRoutes = map[string]string{
	"scenario":  ArtifactScenario,
	"log":       ArtifactEvents,
	"trace":     ArtifactTrace,
	"audit":     ArtifactAudit,
	"telemetry": ArtifactTelemetry,
	"stats":     ArtifactStats,
}

// artifactContentType returns the MIME type for an artifact name.
func artifactContentType(name string) string {
	switch filepath.Ext(name) {
	case ".json":
		return "application/json"
	case ".jsonl":
		return "application/x-ndjson"
	default:
		return "text/plain; charset=utf-8"
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	run := s.reg.get(r.PathValue("id"))
	if run == nil {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	name, ok := artifactRoutes[r.PathValue("artifact")]
	if !ok {
		writeError(w, http.StatusNotFound, "no such artifact (want one of scenario, log, trace, audit, telemetry, stats)")
		return
	}
	state, errMsg := run.State()
	switch state {
	case StateDone:
	case StateFailed:
		writeError(w, http.StatusConflict, "run failed: %s", errMsg)
		return
	default:
		writeError(w, http.StatusConflict, "run is %s; artifacts appear at done", state)
		return
	}
	w.Header().Set("Content-Type", artifactContentType(name))
	w.WriteHeader(http.StatusOK)
	w.Write(run.Artifact(name))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	run := s.reg.get(r.PathValue("id"))
	if run == nil {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	replay, live, cancel := run.hub.subscribe()
	defer cancel()
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	fl.Flush()
	ctx := r.Context()
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return // stream sealed by the terminal event
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-ctx.Done():
			return
		}
	}
}

// writeSSE renders one event in SSE wire format. Payloads are
// single-line JSON, so one data: line suffices.
func writeSSE(w io.Writer, ev StreamEvent) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Name, ev.Data)
}

func (s *Server) handleLedger(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	s.ledger.WriteJSON(w)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"version":   telemetry.BuildVersion(),
		"goversion": runtime.Version(),
		"goos":      runtime.GOOS,
		"goarch":    runtime.GOARCH,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "running"
	if s.done.Load() {
		status = "done"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.opts.Collector == nil {
		writeError(w, http.StatusNotFound, "no live collector attached")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.opts.Collector.WritePrometheus(w)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !s.opts.Tracer.Enabled() {
		writeError(w, http.StatusNotFound, "tracing not enabled")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	s.opts.Tracer.WriteChromeJSON(w)
}
