package serve

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestCanonicalStable pins the canonicalisation contract: documents
// differing only in whitespace or key order render identical bytes.
func TestCanonicalStable(t *testing.T) {
	a, err := ParseScenario([]byte(`{"seed":3,"workers":4,"jobs":[{"bench":"grep","input_gb":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseScenario([]byte("{\n  \"jobs\": [ {\"input_gb\": 1, \"bench\": \"grep\"} ],\n  \"workers\": 4,\n  \"seed\": 3\n}"))
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := a.Canonical()
	cb, _ := b.Canonical()
	if !bytes.Equal(ca, cb) {
		t.Errorf("canonical forms differ:\n%s\n---\n%s", ca, cb)
	}
	// Canonical output re-parses to the same scenario.
	again, err := ParseScenario(ca)
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v", err)
	}
	cc, _ := again.Canonical()
	if !bytes.Equal(ca, cc) {
		t.Error("canonicalisation is not idempotent")
	}
}

func TestParseScenarioErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"unknown field", `{"jobs":[{"bench":"grep","input_gb":1}],"typo":1}`, "unknown field"},
		{"trailing data", `{"jobs":[{"bench":"grep","input_gb":1}]} {"x":1}`, "trailing data"},
		{"no workload", `{}`, "exactly one of"},
		{"both workloads", `{"jobs":[{"bench":"grep","input_gb":1}],"arrivals":{"horizon":10,"tenants":[{"name":"a","benchmarks":["grep"],"mean_interarrival":5,"input_mb_min":64,"input_mb_max":128}]}}`, "exactly one of"},
		{"bad engine", `{"engine":"spark","jobs":[{"bench":"grep","input_gb":1}]}`, "engine"},
		{"bad bench", `{"jobs":[{"bench":"wordfrequency","input_gb":1}]}`, "jobs[0]"},
		{"bad chaos", `{"jobs":[{"bench":"grep","input_gb":1}],"chaos":"crash @nonsense"}`, "chaos"},
		{"empty chaos", `{"jobs":[{"bench":"grep","input_gb":1}],"chaos":"# only a comment"}`, "no faults"},
		{"chaos out of range", `{"workers":4,"jobs":[{"bench":"grep","input_gb":1}],"chaos":"crash tt9 @5"}`, "chaos"},
		{"bad arrivals", `{"arrivals":{"horizon":10,"tenants":[]}}`, "scenario"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario([]byte(tc.doc))
			if err == nil {
				t.Fatalf("accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestJobSpecNaming pins the per-set prefixing rules: a single
// one-job set keeps the bare benchmark name, multi-set scenarios
// prefix with the set index.
func TestJobSpecNaming(t *testing.T) {
	single, err := ParseScenario([]byte(`{"jobs":[{"bench":"grep","input_gb":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := single.build().jobSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "grep-1" {
		t.Errorf("single-set specs: %+v", specs)
	}

	multi, err := ParseScenario([]byte(`{"jobs":[
		{"bench":"grep","input_gb":1,"submit_at":10},
		{"bench":"terasort","input_gb":1,"count":2,"stagger":5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	specs, err = multi.build().jobSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("multi-set spec count = %d", len(specs))
	}
	wantNames := []string{"s0-grep-1", "s1-terasort-1", "s1-terasort-2"}
	wantAt := []float64{10, 0, 5}
	for i, sp := range specs {
		if sp.Name != wantNames[i] || sp.SubmitAt != wantAt[i] {
			t.Errorf("spec %d = %s@%.0f, want %s@%.0f", i, sp.Name, sp.SubmitAt, wantNames[i], wantAt[i])
		}
	}
}

// TestHubReplayAndSeal covers the stream lifecycle outside HTTP: late
// subscription replays the sealed stream, publish after terminate is
// a no-op, and cancel is idempotent.
func TestHubReplayAndSeal(t *testing.T) {
	h := newHub()
	h.publish("started", map[string]int{"n": 1})
	replay, live, cancel := h.subscribe()
	if len(replay) != 1 {
		t.Fatalf("replay %d events", len(replay))
	}
	h.publish("progress", map[string]int{"n": 2})
	h.terminate("done", map[string]int{"n": 3})
	var got []string
	for ev := range live {
		got = append(got, ev.Name)
	}
	if len(got) != 2 || got[0] != "progress" || got[1] != "done" {
		t.Fatalf("live events: %v", got)
	}
	cancel()
	cancel() // idempotent after stream end

	if !h.terminated() {
		t.Error("hub not terminated")
	}
	h.publish("progress", map[string]int{"n": 4}) // sealed: dropped
	replay, live, cancel = h.subscribe()
	defer cancel()
	if len(replay) != 3 {
		t.Errorf("post-seal replay has %d events", len(replay))
	}
	if _, ok := <-live; ok {
		t.Error("live channel open after seal")
	}
	for i, want := range []int{0, 1, 2} {
		if replay[i].ID != want {
			t.Errorf("replay[%d].ID = %d", i, replay[i].ID)
		}
	}
}

// TestHubEviction fills the replay buffer past its limit and checks
// the oldest half is evicted while IDs stay monotone.
func TestHubEviction(t *testing.T) {
	h := newHub()
	total := hubReplayLimit + 10
	for i := 0; i < total; i++ {
		h.publish("progress", i)
	}
	replay, _, cancel := h.subscribe()
	defer cancel()
	if len(replay) > hubReplayLimit {
		t.Fatalf("replay holds %d events, limit %d", len(replay), hubReplayLimit)
	}
	if h.dropped == 0 {
		t.Error("eviction not counted")
	}
	for i := 1; i < len(replay); i++ {
		if replay[i].ID != replay[i-1].ID+1 {
			t.Fatalf("IDs not contiguous at %d", i)
		}
	}
	if last := replay[len(replay)-1].ID; last != total-1 {
		t.Errorf("newest replay ID = %d, want %d", last, total-1)
	}
}

// TestRegistryRemove pins that removal only forgets the given run and
// IDs never recycle.
func TestRegistryRemove(t *testing.T) {
	g := newRegistry()
	sc, err := ParseScenario([]byte(smallScenario))
	if err != nil {
		t.Fatal(err)
	}
	canonical, _ := sc.Canonical()
	a := g.add(sc, canonical)
	b := g.add(sc, canonical)
	g.remove(b.ID)
	c := g.add(sc, canonical)
	if c.ID == b.ID {
		t.Errorf("ID %s recycled", c.ID)
	}
	if g.get(b.ID) != nil {
		t.Error("removed run still resolvable")
	}
	list := g.list()
	if len(list) != 2 || list[0].ID != a.ID || list[1].ID != c.ID {
		t.Errorf("listing after remove: %+v", list)
	}
}

// TestJSONFloatNulls pins NaN/Inf rendering in artifacts and stream
// payloads.
func TestJSONFloatNulls(t *testing.T) {
	if got, err := jsonFloat(1.5).MarshalJSON(); err != nil || string(got) != "1.5" {
		t.Errorf("jsonFloat(1.5) = %s, %v", got, err)
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		got, err := jsonFloat(v).MarshalJSON()
		if err != nil || string(got) != "null" {
			t.Errorf("jsonFloat(%v) = %s, %v", v, got, err)
		}
	}
}
