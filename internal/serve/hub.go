package serve

import (
	"encoding/json"
	"sync"
)

// hubReplayLimit bounds each run's replay buffer. Beyond it the oldest
// half is evicted (counted in dropped), mirroring the event log's
// amortised compaction — a pathological run cannot hold the service's
// memory hostage, and late subscribers still see the stream's tail
// plus every terminal event.
const hubReplayLimit = 16384

// subBuffer is a subscriber channel's depth; a consumer further than
// this behind loses intermediate events (never the terminal one, which
// is delivered by channel close + replay).
const subBuffer = 1024

// StreamEvent is one SSE frame: a named event with a JSON body and a
// stream-unique increasing id.
type StreamEvent struct {
	ID   int
	Name string
	Data []byte
}

// hub is one run's event stream: an append-only replay buffer plus
// live fan-out to any number of concurrent subscribers. Publishers
// never block — a slow subscriber drops intermediate events rather
// than pacing the simulation.
type hub struct {
	mu      sync.Mutex
	events  []StreamEvent
	nextID  int
	dropped int
	subs    map[chan StreamEvent]*hubSub
	done    bool
}

type hubSub struct {
	ch      chan StreamEvent
	dropped int
}

func newHub() *hub {
	return &hub{subs: make(map[chan StreamEvent]*hubSub)}
}

// publish appends one event (v is JSON-marshalled) and fans it out.
// Marshal failures are programming errors on our own payload types and
// panic rather than silently truncating the stream.
func (h *hub) publish(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		panic("serve: marshalling stream event " + name + ": " + err.Error())
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.done {
		return // terminal event already sealed the stream
	}
	ev := StreamEvent{ID: h.nextID, Name: name, Data: data}
	h.nextID++
	if len(h.events) >= hubReplayLimit {
		half := hubReplayLimit / 2
		n := copy(h.events, h.events[half:])
		h.events = h.events[:n]
		h.dropped += half
	}
	h.events = append(h.events, ev)
	for _, sub := range h.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped++
		}
	}
}

// terminate publishes the stream's final event and seals the hub:
// every subscriber channel closes after the terminal event, and later
// subscribers replay the buffer and close immediately.
func (h *hub) terminate(name string, v any) {
	h.publish(name, v)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.done = true
	for ch, sub := range h.subs {
		close(sub.ch)
		delete(h.subs, ch)
	}
}

// subscribe returns the replay of everything published so far plus a
// live channel for what follows. The channel is closed at stream end
// (or by cancel). For an already-terminated run, live is closed and
// the replay is the whole stream.
func (h *hub) subscribe() (replay []StreamEvent, live <-chan StreamEvent, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = make([]StreamEvent, len(h.events))
	copy(replay, h.events)
	ch := make(chan StreamEvent, subBuffer)
	if h.done {
		close(ch)
		return replay, ch, func() {}
	}
	sub := &hubSub{ch: ch}
	h.subs[ch] = sub
	return replay, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if s, ok := h.subs[ch]; ok {
			close(s.ch)
			delete(h.subs, ch)
		}
	}
}

// terminated reports whether the stream has ended.
func (h *hub) terminated() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.done
}
