package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"smapreduce/internal/serve/ledger"
)

// smallScenario is the suite's workhorse: tiny input so a run takes
// milliseconds of wall clock.
const smallScenario = `{"seed":3,"workers":4,"jobs":[{"bench":"grep","input_gb":1,"reduces":2}]}`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.mux())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	return s, ts
}

func submitRun(t *testing.T, ts *httptest.Server, scenario string) RunInfo {
	t.Helper()
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(scenario))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /runs = %d: %s", resp.StatusCode, body)
	}
	var info RunInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("submit response: %v\n%s", err, body)
	}
	return info
}

// waitState polls until the run reaches the wanted state.
func waitState(t *testing.T, s *Server, id string, want RunState) *Run {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		run := s.reg.get(id)
		if run == nil {
			t.Fatalf("run %s vanished from registry", id)
		}
		if st, errMsg := run.State(); st == want {
			return run
		} else if st == StateFailed && want != StateFailed {
			t.Fatalf("run %s failed: %s", id, errMsg)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s never reached %s", id, want)
	return nil
}

func getBody(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id   int
	name string
	data []byte
}

func parseSSE(t *testing.T, body []byte) []sseEvent {
	t.Helper()
	var out []sseEvent
	for _, block := range bytes.Split(bytes.TrimSpace(body), []byte("\n\n")) {
		if len(block) == 0 {
			continue
		}
		var ev sseEvent
		for _, line := range bytes.Split(block, []byte("\n")) {
			switch {
			case bytes.HasPrefix(line, []byte("id: ")):
				n, err := strconv.Atoi(string(line[4:]))
				if err != nil {
					t.Fatalf("bad SSE id line %q", line)
				}
				ev.id = n
			case bytes.HasPrefix(line, []byte("event: ")):
				ev.name = string(line[7:])
			case bytes.HasPrefix(line, []byte("data: ")):
				ev.data = append([]byte(nil), line[6:]...)
			default:
				t.Fatalf("unexpected SSE line %q", line)
			}
		}
		out = append(out, ev)
	}
	return out
}

// TestRunLifecycle drives the whole POST → run → artifacts → ledger
// path over HTTP.
func TestRunLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	info := submitRun(t, ts, smallScenario)
	if info.ID != "r000000" {
		t.Errorf("first run id = %s", info.ID)
	}
	waitState(t, s, info.ID, StateDone)

	code, body, _ := getBody(t, ts.URL+"/runs/"+info.ID)
	if code != http.StatusOK {
		t.Fatalf("GET run = %d", code)
	}
	var done RunInfo
	json.Unmarshal(body, &done)
	if done.State != StateDone || done.LedgerIndex != 0 || done.MerkleRoot == "" {
		t.Fatalf("run info after done: %+v", done)
	}

	// Every artifact serves with the right content type and non-empty
	// body; stats.json parses and matches the scenario.
	wantTypes := map[string]string{
		"scenario": "application/json", "log": "application/x-ndjson",
		"trace": "application/json", "audit": "text/plain; charset=utf-8",
		"telemetry": "application/x-ndjson", "stats": "application/json",
	}
	for route, ct := range wantTypes {
		code, body, hdr := getBody(t, ts.URL+"/runs/"+info.ID+"/"+route)
		if code != http.StatusOK || len(body) == 0 {
			t.Errorf("artifact %s: code %d, %d bytes", route, code, len(body))
		}
		if got := hdr.Get("Content-Type"); got != ct {
			t.Errorf("artifact %s content type = %q, want %q", route, got, ct)
		}
	}
	_, statsBody, _ := getBody(t, ts.URL+"/runs/"+info.ID+"/stats")
	var st runStats
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatalf("stats.json: %v", err)
	}
	if st.Engine != "SMapReduce" || st.Jobs != 1 || st.Workers != 4 || st.Seed != 3 {
		t.Errorf("stats header: %+v", st)
	}
	if len(st.JobDetails) != 1 || st.JobDetails[0].ExecutionS <= 0 {
		t.Errorf("stats job details: %+v", st.JobDetails)
	}

	// The scenario artifact is the canonical form of what we posted.
	_, scBody, _ := getBody(t, ts.URL+"/runs/"+info.ID+"/scenario")
	sc, err := ParseScenario([]byte(smallScenario))
	if err != nil {
		t.Fatal(err)
	}
	canonical, _ := sc.Canonical()
	if !bytes.Equal(scBody, canonical) {
		t.Error("scenario artifact is not the canonical document")
	}

	// GET /ledger returns a verifiable chain whose artifact digests
	// match the bytes the artifact endpoints serve.
	code, ledgerBody, _ := getBody(t, ts.URL+"/ledger")
	if code != http.StatusOK {
		t.Fatalf("GET /ledger = %d", code)
	}
	var entries []ledger.Entry
	if err := json.Unmarshal(ledgerBody, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("ledger has %d entries", len(entries))
	}
	if err := ledger.VerifyChain(entries); err != nil {
		t.Fatalf("served chain fails verification: %v", err)
	}
	routeOf := map[string]string{
		ArtifactScenario: "scenario", ArtifactEvents: "log", ArtifactTrace: "trace",
		ArtifactAudit: "audit", ArtifactTelemetry: "telemetry", ArtifactStats: "stats",
	}
	err = ledger.VerifyArtifacts(entries[0], func(name string) ([]byte, error) {
		_, b, _ := getBody(t, ts.URL+"/runs/"+info.ID+"/"+routeOf[name])
		return b, nil
	})
	if err != nil {
		t.Fatalf("served artifacts do not match ledger: %v", err)
	}

	// Registry listing includes the run.
	code, listBody, _ := getBody(t, ts.URL+"/runs")
	var list []RunInfo
	json.Unmarshal(listBody, &list)
	if code != http.StatusOK || len(list) != 1 || list[0].ID != info.ID {
		t.Errorf("GET /runs = %d: %s", code, listBody)
	}
}

// TestSSEStream checks the stream shape: ids monotone from 0, started
// first, exactly one terminal done, progress counters monotone, and
// telemetry ticks present and row-aligned.
func TestSSEStream(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	info := submitRun(t, ts, smallScenario)
	waitState(t, s, info.ID, StateDone)

	code, body, hdr := getBody(t, ts.URL+"/runs/"+info.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("GET events = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type %q", ct)
	}
	events := parseSSE(t, body)
	if len(events) < 4 {
		t.Fatalf("only %d events", len(events))
	}
	if events[0].name != "started" {
		t.Errorf("first event %q", events[0].name)
	}
	if last := events[len(events)-1]; last.name != "done" {
		t.Errorf("last event %q", last.name)
	}
	var telemetrySeen, progressSeen int
	lastFinished := 0
	for i, ev := range events {
		if ev.id != i {
			t.Fatalf("event %d has id %d", i, ev.id)
		}
		switch ev.name {
		case "progress":
			var p progressEvent
			if err := json.Unmarshal(ev.data, &p); err != nil {
				t.Fatal(err)
			}
			if p.JobsFinished < lastFinished {
				t.Errorf("jobs_finished regressed: %d after %d", p.JobsFinished, lastFinished)
			}
			lastFinished = p.JobsFinished
			progressSeen++
		case "telemetry":
			var te telemetryEvent
			if err := json.Unmarshal(ev.data, &te); err != nil {
				t.Fatal(err)
			}
			if len(te.Names) == 0 || len(te.Names) != len(te.Values) {
				t.Errorf("telemetry tick %d: %d names, %d values", te.Seq, len(te.Names), len(te.Values))
			}
			telemetrySeen++
		case "done":
			var d doneEvent
			json.Unmarshal(ev.data, &d)
			if d.MerkleRoot == "" || len(d.Artifacts) != 6 {
				t.Errorf("done event: %s", ev.data)
			}
		}
	}
	if telemetrySeen == 0 || progressSeen == 0 {
		t.Errorf("stream had %d telemetry, %d progress events", telemetrySeen, progressSeen)
	}
	if lastFinished != 1 {
		t.Errorf("final jobs_finished = %d", lastFinished)
	}
}

// TestConcurrentSSESubscribers attaches several streams to a run
// pinned mid-execution; every subscriber must read the identical
// sealed stream.
func TestConcurrentSSESubscribers(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	hold := make(chan struct{})
	s.pool.hold = hold
	info := submitRun(t, ts, smallScenario)
	waitState(t, s, info.ID, StateRunning)

	const subscribers = 5
	bodies := make([][]byte, subscribers)
	var wg sync.WaitGroup
	wg.Add(subscribers)
	for i := 0; i < subscribers; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/runs/" + info.ID + "/events")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	close(hold)
	wg.Wait()
	for i := 1; i < subscribers; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("subscriber %d read a different stream (%d vs %d bytes)",
				i, len(bodies[i]), len(bodies[0]))
		}
	}
	events := parseSSE(t, bodies[0])
	if events[len(events)-1].name != "done" {
		t.Errorf("shared stream does not end in done")
	}
}

// TestSaturationSheds pins both workers mid-run, fills the queue, and
// expects the next submission to shed with 429 + Retry-After while the
// pinned runs still complete.
func TestSaturationSheds(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, Queue: 2})
	hold := make(chan struct{})
	s.pool.hold = hold

	a := submitRun(t, ts, smallScenario)
	b := submitRun(t, ts, smallScenario)
	waitState(t, s, a.ID, StateRunning)
	waitState(t, s, b.ID, StateRunning)
	submitRun(t, ts, smallScenario) // queue slot 1
	submitRun(t, ts, smallScenario) // queue slot 2

	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(smallScenario))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST = %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(hold)
	waitState(t, s, a.ID, StateDone)
	waitState(t, s, b.ID, StateDone)
	// The shed run must not linger in the registry.
	if n := len(s.reg.list()); n != 4 {
		t.Errorf("registry holds %d runs, want 4", n)
	}
}

// TestDeterministicArtifacts resubmits one scenario and requires
// byte-identical artifacts and identical ledger leaf hashes and Merkle
// roots; only the chain-position entry hashes differ.
func TestDeterministicArtifacts(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	scenario := `{"engine":"smapreduce","seed":11,"workers":6,
		"jobs":[{"bench":"terasort","input_gb":2,"reduces":4},{"bench":"grep","input_gb":1,"count":2,"stagger":3}],
		"chaos":"crash tt2 @15; rejoin tt2 @40"}`
	a := submitRun(t, ts, scenario)
	waitState(t, s, a.ID, StateDone)
	b := submitRun(t, ts, scenario)
	waitState(t, s, b.ID, StateDone)

	runA, runB := s.reg.get(a.ID), s.reg.get(b.ID)
	for _, name := range ArtifactNames() {
		if !bytes.Equal(runA.Artifact(name), runB.Artifact(name)) {
			t.Errorf("artifact %s differs across identical submissions", name)
		}
	}
	ea, eb := runA.LedgerEntry(), runB.LedgerEntry()
	for i := range ea.Artifacts {
		if ea.Artifacts[i].SHA256 != eb.Artifacts[i].SHA256 {
			t.Errorf("leaf %s hash differs", ea.Artifacts[i].Name)
		}
	}
	if ea.Root != eb.Root {
		t.Error("merkle roots differ for identical scenarios")
	}
	if ea.Hash == eb.Hash {
		t.Error("entry hashes collide across chain positions")
	}
	if eb.Prev != ea.Hash {
		t.Error("second entry not chained to the first")
	}
}

// TestArrivalScenario runs an open multi-tenant arrival stream on a
// capacity engine through the service.
func TestArrivalScenario(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	scenario := `{"engine":"fairshare","seed":5,"workers":6,"arrivals":{
		"horizon":120,"max_jobs":4,
		"tenants":[{"name":"etl","benchmarks":["grep"],"mean_interarrival":30,"input_mb_min":512,"input_mb_max":1024,"reduces":2},
		           {"name":"ads","benchmarks":["terasort"],"mean_interarrival":45,"input_mb_min":512,"input_mb_max":1024,"reduces":2}]}}`
	info := submitRun(t, ts, scenario)
	run := waitState(t, s, info.ID, StateDone)
	var st runStats
	if err := json.Unmarshal(run.Artifact(ArtifactStats), &st); err != nil {
		t.Fatal(err)
	}
	if st.Engine != "FairShare" || st.Jobs == 0 {
		t.Errorf("arrival stats: %+v", st)
	}
	for _, j := range st.JobDetails {
		if j.Tenant != "etl" && j.Tenant != "ads" {
			t.Errorf("job %s has tenant %q", j.Name, j.Tenant)
		}
	}
}

// TestSubmitRejections exercises the 4xx paths.
func TestSubmitRejections(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	bad := []string{
		`{"jobs":[{"bench":"no-such-bench","input_gb":1}]}`,
		`{"engine":"mapreduce2","jobs":[{"bench":"grep","input_gb":1}]}`,
		`{}`, // no workload
		`{"jobs":[{"bench":"grep","input_gb":1}],"arrivals":{"horizon":10,"tenants":[{"name":"a","benchmarks":["grep"],"mean_interarrival":5,"input_mb_min":64,"input_mb_max":128}]}}`,
		`{"jobs":[{"bench":"grep","input_gb":1}],"typo_field":1}`,
		`{"jobs":[{"bench":"grep","input_gb":1}],"chaos":"crash tt99 @5"}`,
		`not json`,
	}
	for _, scenario := range bad {
		resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(scenario))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("scenario %.40q = %d, want 400", scenario, resp.StatusCode)
		}
	}
}

// TestNotFoundAndConflict covers unknown runs/artifacts and artifact
// fetches before completion.
func TestNotFoundAndConflict(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	for _, url := range []string{"/runs/r999999", "/runs/r999999/events", "/runs/r999999/stats"} {
		if code, _, _ := getBody(t, ts.URL+url); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", url, code)
		}
	}
	hold := make(chan struct{})
	s.pool.hold = hold
	info := submitRun(t, ts, smallScenario)
	waitState(t, s, info.ID, StateRunning)
	if code, _, _ := getBody(t, ts.URL+"/runs/"+info.ID+"/stats"); code != http.StatusConflict {
		t.Errorf("artifact of a running run = %d, want 409", code)
	}
	if code, _, _ := getBody(t, ts.URL+"/runs/"+info.ID+"/nonsense"); code != http.StatusNotFound {
		t.Errorf("unknown artifact = %d, want 404", code)
	}
	close(hold)
	waitState(t, s, info.ID, StateDone)
}

// TestAuxEndpoints covers /version, /healthz, and the legacy /metrics
// and /trace 404s when nothing is attached.
func TestAuxEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	code, body, _ := getBody(t, ts.URL+"/version")
	var v map[string]string
	json.Unmarshal(body, &v)
	if code != http.StatusOK || v["goversion"] == "" || v["version"] == "" {
		t.Errorf("/version = %d: %s", code, body)
	}
	code, body, _ = getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte("running")) {
		t.Errorf("/healthz = %d: %s", code, body)
	}
	s.MarkDone()
	_, body, _ = getBody(t, ts.URL+"/healthz")
	if !bytes.Contains(body, []byte("done")) {
		t.Errorf("/healthz after MarkDone: %s", body)
	}
	if code, _, _ := getBody(t, ts.URL+"/metrics"); code != http.StatusNotFound {
		t.Errorf("/metrics without collector = %d", code)
	}
	if code, _, _ := getBody(t, ts.URL+"/trace"); code != http.StatusNotFound {
		t.Errorf("/trace without tracer = %d", code)
	}
}

// TestShutdownDrains verifies graceful shutdown: intake sheds with
// 503, queued runs still finish, and Shutdown is idempotent.
func TestShutdownDrains(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	info := submitRun(t, ts, smallScenario)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st, _ := s.reg.get(info.ID).State(); st != StateDone {
		t.Errorf("run state after drain = %s, want done", st)
	}
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(smallScenario))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST while draining = %d, want 503", resp.StatusCode)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestArtifactDirPersistence checks the on-disk mirror: artifacts and
// ledger land under the store root, the persisted chain verifies, and
// a second server extends (not restarts) the chain.
func TestArtifactDirPersistence(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{Workers: 1, ArtifactDir: dir})
	info := submitRun(t, ts, smallScenario)
	run := waitState(t, s, info.ID, StateDone)

	fetch := func(name string) ([]byte, error) {
		return os.ReadFile(filepath.Join(dir, info.ID, name))
	}
	if err := ledger.VerifyArtifacts(*run.LedgerEntry(), fetch); err != nil {
		t.Fatalf("on-disk artifacts: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Shutdown(ctx)

	s2, ts2 := newTestServer(t, Options{Workers: 1, ArtifactDir: dir})
	if s2.ledger.Len() != 1 {
		t.Fatalf("reopened ledger has %d entries", s2.ledger.Len())
	}
	info2 := submitRun(t, ts2, smallScenario)
	waitState(t, s2, info2.ID, StateDone)
	entries := s2.ledger.Entries()
	if len(entries) != 2 || entries[1].Prev != entries[0].Hash {
		t.Fatalf("chain did not extend across restart: %+v", entries)
	}
}
