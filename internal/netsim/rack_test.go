package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

// rackCfg builds an 8-node fabric in two racks of 4 with a constrained
// uplink.
func rackCfg(uplink float64) Config {
	c := cfg(8)
	c.NodesPerRack = 4
	c.RackUplinkMBps = uplink
	return c
}

func TestRackConfigValidation(t *testing.T) {
	c := cfg(8)
	c.RackUplinkMBps = -1
	if c.Validate() == nil {
		t.Fatal("negative uplink accepted")
	}
	c.RackUplinkMBps = 100
	c.NodesPerRack = 0
	if c.Validate() == nil {
		t.Fatal("uplink without rack size accepted")
	}
	c.NodesPerRack = 4
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIntraRackUnaffectedByUplink(t *testing.T) {
	fb := NewFabric(rackCfg(10)) // tiny uplink
	f := &Flow{Src: 0, Dst: 1}   // same rack
	fb.Add(f)
	if math.Abs(f.Rate()-117) > 1e-9 {
		t.Fatalf("intra-rack rate = %v, want full NIC 117", f.Rate())
	}
}

func TestInterRackBoundByUplink(t *testing.T) {
	fb := NewFabric(rackCfg(50))
	f := &Flow{Src: 0, Dst: 5} // rack 0 → rack 1
	fb.Add(f)
	if math.Abs(f.Rate()-50) > 1e-9 {
		t.Fatalf("inter-rack rate = %v, want uplink 50", f.Rate())
	}
}

func TestUplinkSharedAcrossFlows(t *testing.T) {
	fb := NewFabric(rackCfg(60))
	a := &Flow{Src: 0, Dst: 5}
	b := &Flow{Src: 1, Dst: 6}
	fb.Add(a)
	fb.Add(b)
	// Both cross rack 0's uplink: 30 each.
	if math.Abs(a.Rate()-30) > 1e-6 || math.Abs(b.Rate()-30) > 1e-6 {
		t.Fatalf("uplink shares = %v/%v, want 30 each", a.Rate(), b.Rate())
	}
	// An intra-rack flow still gets full NIC headroom minus its node's use.
	c := &Flow{Src: 2, Dst: 3}
	fb.Add(c)
	if math.Abs(c.Rate()-117) > 1e-6 {
		t.Fatalf("intra-rack flow rate = %v", c.Rate())
	}
}

func TestDownlinkBindsToo(t *testing.T) {
	// Two flows from different racks into rack 1: its downlink binds.
	cfg3 := cfg(12)
	cfg3.NodesPerRack = 4
	cfg3.RackUplinkMBps = 80
	fb := NewFabric(cfg3)
	a := &Flow{Src: 0, Dst: 4} // rack0 → rack1
	b := &Flow{Src: 8, Dst: 5} // rack2 → rack1
	fb.Add(a)
	fb.Add(b)
	if math.Abs(a.Rate()-40) > 1e-6 || math.Abs(b.Rate()-40) > 1e-6 {
		t.Fatalf("downlink shares = %v/%v, want 40 each", a.Rate(), b.Rate())
	}
}

func TestNonBlockingWhenDisabled(t *testing.T) {
	fb := NewFabric(cfg(8)) // RackUplinkMBps = 0 → single switch
	f := &Flow{Src: 0, Dst: 7}
	fb.Add(f)
	if math.Abs(f.Rate()-117) > 1e-9 {
		t.Fatalf("rate = %v with racks off", f.Rate())
	}
}

// Property: with racks enabled, aggregate inter-rack traffic never
// exceeds any uplink or downlink, and NIC limits still hold.
func TestQuickRackFeasibility(t *testing.T) {
	const n, perRack = 8, 4
	f := func(pairs []uint16, uplinkRaw uint8) bool {
		uplink := float64(uplinkRaw%200) + 20
		c := cfg(n)
		c.NodesPerRack = perRack
		c.RackUplinkMBps = uplink
		fb := NewFabric(c)
		var flows []*Flow
		for _, p := range pairs {
			if len(flows) >= 40 {
				break
			}
			src, dst := int(p%n), int((p/n)%n)
			if src == dst {
				continue
			}
			fl := &Flow{Src: src, Dst: dst}
			fb.Add(fl)
			flows = append(flows, fl)
		}
		out := make([]float64, n)
		in := make([]float64, n)
		up := make([]float64, 2)
		down := make([]float64, 2)
		for _, fl := range flows {
			if fl.Rate() <= 0 {
				return false
			}
			out[fl.Src] += fl.Rate()
			in[fl.Dst] += fl.Rate()
			rs, rd := fl.Src/perRack, fl.Dst/perRack
			if rs != rd {
				up[rs] += fl.Rate()
				down[rd] += fl.Rate()
			}
		}
		for i := 0; i < n; i++ {
			if out[i] > 117+1e-6 || in[i] > 117+1e-6 {
				return false
			}
		}
		for r := 0; r < 2; r++ {
			if up[r] > uplink+1e-6 || down[r] > uplink+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
