package netsim

import (
	"math"
	"testing"
)

// driveFabric runs a fixed churn scenario against fb and returns the
// rate of every flow after each step, bit-comparable between a fresh
// and a reset fabric.
func driveFabric(fb *Fabric) []float64 {
	var rates []float64
	snap := func(fs ...*Flow) {
		for _, f := range fs {
			rates = append(rates, f.Rate())
		}
	}
	a := fb.AcquireFlow()
	*a = Flow{Src: 0, Dst: 1, RemainingMB: 100, Label: "a"}
	b := fb.AcquireFlow()
	*b = Flow{Src: 2, Dst: 1, RemainingMB: 100, Label: "b"}
	c := fb.AcquireFlow()
	*c = Flow{Src: 0, Dst: 3, RemainingMB: 100, CapMBps: 5, Label: "c"}
	fb.Add(a)
	snap(a)
	fb.Add(b)
	snap(a, b)
	fb.Add(c)
	snap(a, b, c)
	fb.SetNodeLinkScale(1, 1, 0.5)
	snap(a, b, c)
	fb.Remove(b)
	snap(a, c)
	fb.SetNodeLinkScale(1, 1, 1)
	snap(a, c)
	fb.Remove(a)
	fb.Remove(c)
	fb.ReleaseFlow(a)
	fb.ReleaseFlow(b)
	fb.ReleaseFlow(c)
	return rates
}

func TestFabricResetMatchesFresh(t *testing.T) {
	cfg := DefaultConfig(8)
	reused := NewFabric(cfg)
	driveFabric(reused)
	reused.Reset(cfg)

	fresh := NewFabric(cfg)
	want := driveFabric(fresh)
	got := driveFabric(reused)
	if len(want) != len(got) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("rate %d differs: fresh %v, reused %v", i, want[i], got[i])
		}
	}
}

func TestFabricResetClearsState(t *testing.T) {
	fb := NewFabric(DefaultConfig(4))
	fb.SetAutoRecompute(false)
	fb.SetFullResolve(true)
	rateCalls := 0
	fb.SetRateListener(func(*Flow) { rateCalls++ })
	adds := 0
	fb.SetFlowObserver(func(*Flow) { adds++ }, nil)
	f := &Flow{Src: 0, Dst: 1, RemainingMB: 10}
	fb.Add(f)
	fb.SetNodeLinkScale(2, 0.5, 0.5)
	fb.Reset(DefaultConfig(4))

	if fb.Len() != 0 {
		t.Fatalf("Len = %d after Reset", fb.Len())
	}
	if fb.DirtyLinks() != 0 {
		t.Fatalf("DirtyLinks = %d after Reset", fb.DirtyLinks())
	}
	if eg, in := fb.NodeLinkScale(2); eg != 1 || in != 1 {
		t.Fatalf("link scale (%v,%v) after Reset, want (1,1)", eg, in)
	}
	// Listeners must be gone and auto-recompute restored: a new add
	// resolves immediately without invoking the old callbacks.
	rateCalls, adds = 0, 0
	g := &Flow{Src: 0, Dst: 1, RemainingMB: 10}
	fb.Add(g)
	if rateCalls != 0 || adds != 0 {
		t.Fatalf("old listeners fired after Reset (rate=%d add=%d)", rateCalls, adds)
	}
	if g.Rate() <= 0 {
		t.Fatalf("auto-recompute not restored: rate %v", g.Rate())
	}
}

func TestFabricResetChangesGeometry(t *testing.T) {
	fb := NewFabric(DefaultConfig(2))
	fb.Add(&Flow{Src: 0, Dst: 1, RemainingMB: 10})
	// Grow, including racks this time.
	cfg := DefaultConfig(16)
	cfg.NodesPerRack = 4
	cfg.RackUplinkMBps = 200
	fb.Reset(cfg)
	want := NewFabric(cfg)
	wf := &Flow{Src: 0, Dst: 5, RemainingMB: 10} // crosses racks
	gf := &Flow{Src: 0, Dst: 5, RemainingMB: 10}
	want.Add(wf)
	fb.Add(gf)
	if math.Float64bits(wf.Rate()) != math.Float64bits(gf.Rate()) {
		t.Fatalf("cross-rack rate differs after growth: fresh %v, reused %v", wf.Rate(), gf.Rate())
	}
	// Shrink back down.
	fb.Reset(DefaultConfig(2))
	h := &Flow{Src: 0, Dst: 1, RemainingMB: 10}
	fb.Add(h)
	if h.Rate() <= 0 {
		t.Fatalf("rate %v after shrink", h.Rate())
	}
}

func TestFabricResetKeepsFlowPool(t *testing.T) {
	fb := NewFabric(DefaultConfig(4))
	f := fb.AcquireFlow()
	fb.ReleaseFlow(f)
	fb.Reset(DefaultConfig(4))
	if got := fb.AcquireFlow(); got != f {
		t.Fatal("Reset dropped the flow free list")
	}
}

func TestFabricResetInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Reset with invalid config did not panic")
		}
	}()
	NewFabric(DefaultConfig(4)).Reset(Config{Nodes: -1})
}
