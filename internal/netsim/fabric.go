// Package netsim models the cluster network as a fluid-flow fabric.
//
// Every node has a NIC with an egress and an ingress capacity; the
// switch core is assumed non-blocking (the paper's 16-port GbE switch).
// Active flows receive the max-min fair allocation computed by
// progressive water-filling over the per-NIC link constraints.
//
// TCP incast: when many senders converge on one receiver, synchronised
// losses and retransmission timeouts collapse goodput. The paper tunes
// RTOmin from 200 ms to 1 ms to tame this; we model the residual effect
// by shrinking a receiver's effective ingress capacity once its
// concurrent flow count exceeds IncastThreshold. IncastSeverity ≈ 0
// corresponds to the tuned cluster, larger values to an untuned one.
//
// Rate resolution is incremental. Add and Remove record the links they
// perturb in a dirty set, and per-link flow lists (maintained on every
// membership change) let ResolveDirty walk only the connected
// components reachable from dirty links: water-filling re-runs on those
// components and every other flow keeps its cached rate. This is exact,
// not approximate — max-min water-filling decomposes over link-disjoint
// components, so a component whose flow set and link capacities are
// unchanged resolves to the same rates. The walk costs O(size of the
// perturbed components), independent of total fabric population.
// Recompute still performs a full resolve, and SetFullResolve arms a
// verification mode that runs both paths and panics on divergence.
package netsim

import (
	"fmt"
	"math"
	"slices"
)

// Config describes the fabric.
type Config struct {
	Nodes           int
	EgressMBps      float64 // per-node NIC send capacity
	IngressMBps     float64 // per-node NIC receive capacity
	IncastThreshold int     // concurrent flows per receiver before goodput degrades
	IncastSeverity  float64 // per-extra-flow degradation factor (0 disables)

	// Rack oversubscription. When RackUplinkMBps > 0, nodes are grouped
	// into racks of NodesPerRack and every inter-rack flow additionally
	// crosses the source rack's uplink and the destination rack's
	// downlink, each capped at RackUplinkMBps. Zero models the paper's
	// single non-blocking switch.
	NodesPerRack   int
	RackUplinkMBps float64
}

// DefaultConfig mirrors the paper's GbE workbench with RTOmin tuned to
// 1 ms: ≈117 MB/s TCP goodput on a 1 GbE NIC, mild residual incast.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:           nodes,
		EgressMBps:      117,
		IngressMBps:     117,
		IncastThreshold: 24,
		IncastSeverity:  0.01,
	}
}

// Validate reports the first problem with the config, or nil.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("netsim: Nodes = %d, must be positive", c.Nodes)
	case c.EgressMBps <= 0:
		return fmt.Errorf("netsim: EgressMBps = %v, must be positive", c.EgressMBps)
	case c.IngressMBps <= 0:
		return fmt.Errorf("netsim: IngressMBps = %v, must be positive", c.IngressMBps)
	case c.IncastThreshold < 0:
		return fmt.Errorf("netsim: IncastThreshold = %d, must be >= 0", c.IncastThreshold)
	case c.IncastSeverity < 0:
		return fmt.Errorf("netsim: IncastSeverity = %v, must be >= 0", c.IncastSeverity)
	case c.RackUplinkMBps < 0:
		return fmt.Errorf("netsim: RackUplinkMBps = %v, must be >= 0", c.RackUplinkMBps)
	case c.RackUplinkMBps > 0 && c.NodesPerRack <= 0:
		return fmt.Errorf("netsim: RackUplinkMBps set but NodesPerRack = %d", c.NodesPerRack)
	}
	return nil
}

// racks returns the rack count, or 0 when rack modelling is off.
func (c Config) racks() int {
	if c.RackUplinkMBps <= 0 {
		return 0
	}
	return (c.Nodes + c.NodesPerRack - 1) / c.NodesPerRack
}

// rackOf returns a node's rack index (only meaningful when racks are on).
func (c Config) rackOf(node int) int { return node / c.NodesPerRack }

// Flow is one fluid transfer between two nodes. RemainingMB may be
// topped up while the flow is active (a shuffle fetch gains bytes every
// time another map output commits).
type Flow struct {
	Src, Dst    int
	RemainingMB float64
	// CapMBps, when positive, bounds the flow's rate regardless of NIC
	// headroom. Shuffle fetches use it to model the slow per-copier
	// HTTP transfers of Hadoop's shuffle (disk seeks at the server,
	// segment-at-a-time requests). Zero means uncapped.
	CapMBps float64
	Label   string

	// Userdata is an opaque slot for the embedding simulation (the mr
	// runtime stores the fluid op driven by this flow here, so the rate
	// listener needs no side lookup table). The fabric never reads it.
	Userdata any

	fabric *Fabric
	rate   float64

	// Fabric bookkeeping, valid while registered. idx is the flow's
	// position in Fabric.flows (registration order — the water-filling
	// tie-break order). links holds the nlinks link indices the flow
	// crosses (egress, ingress, and a rack uplink/downlink pair when it
	// crosses racks; loopbacks cross none) and slots the flow's
	// positions in those links' flow lists. visit marks BFS traversal.
	idx    int
	nlinks int8
	links  [4]int32
	slots  [4]int32
	visit  uint32

	// pooled marks a flow sitting on its fabric's free list. It guards
	// against double-release and use-after-release: Add and ReleaseFlow
	// panic on a pooled flow.
	pooled bool
}

// Rate returns the flow's current allocation in MB/s, valid until the
// next membership change.
func (f *Flow) Rate() float64 { return f.rate }

// Fabric owns the set of active flows and allocates rates.
//
// Flows are kept in a slice in registration order so the water-filling
// tie-breaks are deterministic run-to-run (map iteration order is not).
// Links are indexed 0..n-1 for node egress, n..2n-1 for node ingress,
// then 2n..2n+R-1 for rack uplinks and 2n+R..2n+2R-1 for rack
// downlinks.
type Fabric struct {
	cfg   Config
	flows []*Flow

	outCount []int // active flows per sender
	inCount  []int // active flows per receiver

	// auto controls whether Add/Remove resolve immediately. The mr
	// runtime batches many flow changes per event and resolves once.
	auto bool

	// onRateChange, when set, is invoked for every flow whose allocated
	// rate actually changed value during a resolve. The mr runtime uses
	// it to mark only the affected fluid ops dirty.
	onRateChange func(*Flow)

	// onFlowAdd/onFlowRemove, when set, observe flow registration and
	// removal — the tracing layer's hook for flow lifecycle spans.
	// onFlowAdd fires after the flow is fully registered; onFlowRemove
	// fires on real removals only (not the foreign-flow no-op), before
	// the flow's state is torn down.
	onFlowAdd    func(*Flow)
	onFlowRemove func(*Flow)

	// fullResolve arms the verification mode: every incremental resolve
	// is followed by a from-scratch full resolve and the two rate
	// vectors are compared (panic on divergence > fullResolveTol).
	fullResolve bool

	// Per-link flow lists, maintained by Add/Remove, so component
	// discovery can walk outward from a dirty link without touching the
	// rest of the flow population.
	linkFlows [][]*Flow

	// Dirty-link set, filled by Add/Remove and drained by resolve.
	dirtyMark  []bool
	dirtyLinks []int32

	// linkScale multiplies each link's capacity — the fault-injection
	// hook for degraded or severed links. 1.0 everywhere on a healthy
	// fabric; 0 severs the link (its flows drop to rate zero until the
	// scale is restored and the dirty-set resolve reruns).
	linkScale []float64

	// linkSlack is each link's remaining capacity after the last
	// water-fill touching it, kept current across the O(1) fast paths
	// (which move flows at exactly their caps, so the updates cancel
	// exactly). It gates those fast paths: a link with slack is binding
	// for no flow, so cap-bottlenecked churn on it cannot perturb
	// anyone else's rate.
	linkSlack []float64

	// BFS state for component discovery. linkVisit is versioned by
	// visitSeq (bumped once per resolve) so links are walked at most
	// once per resolve; flow visit marks are versioned by compSeq
	// (bumped once per component) so a component's flows can be
	// re-identified by stamp after the walk.
	linkVisit []uint32
	visitSeq  uint32
	compSeq   uint32
	bfsQ      []int32
	comp      []*Flow

	// Water-filling scratch: lazily stamped per-link capacity and
	// unfixed-count buffers plus the active-link list of the component
	// being filled.
	capBuf     []float64
	cntBuf     []int
	linkStamp  []uint32
	stampCur   uint32
	scopeLinks []int32
	rateSnap   []float64

	// flowPool is the free list behind AcquireFlow/ReleaseFlow. Flows
	// are reset on release, so steady-state churn (the dominant
	// allocation source in long runs) recycles instead of allocating.
	flowPool []*Flow
}

// NewFabric builds a fabric. Invalid configs panic (static configuration).
func NewFabric(cfg Config) *Fabric {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	links := 2*cfg.Nodes + 2*cfg.racks()
	fb := &Fabric{
		cfg:       cfg,
		outCount:  make([]int, cfg.Nodes),
		inCount:   make([]int, cfg.Nodes),
		auto:      true,
		linkFlows: make([][]*Flow, links),
		dirtyMark: make([]bool, links),
		linkVisit: make([]uint32, links),
		linkScale: make([]float64, links),
		linkSlack: make([]float64, links),
		capBuf:    make([]float64, links),
		cntBuf:    make([]int, links),
		linkStamp: make([]uint32, links),
	}
	for l := range fb.linkSlack {
		fb.linkScale[l] = 1
		fb.linkSlack[l] = fb.linkCapacity(l)
	}
	return fb
}

// Reset returns the fabric to the freshly constructed state for the
// given config (which may change the geometry), retaining every backing
// allocation that fits — per-link slices, flow lists, BFS and
// water-filling scratch, and the flow free list — so a pooled worker
// can drive consecutive simulations without re-growing them. Listeners
// are dropped (they close over the previous owner), auto-recompute is
// restored and the verification mode disarmed. All registered flows
// are discarded without notification: the caller owns their lifecycle
// and must be done with them. Invalid configs panic, as in NewFabric.
//
// A reset fabric is observationally identical to NewFabric(cfg): every
// counter and stamp restarts, so a simulation driven on it computes
// bit-identical rates to one driven on a fresh fabric.
func (fb *Fabric) Reset(cfg Config) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	links := 2*cfg.Nodes + 2*cfg.racks()
	fb.cfg = cfg
	clear(fb.flows)
	fb.flows = fb.flows[:0]
	fb.outCount = resize(fb.outCount, cfg.Nodes)
	fb.inCount = resize(fb.inCount, cfg.Nodes)
	fb.auto = true
	fb.onRateChange, fb.onFlowAdd, fb.onFlowRemove = nil, nil, nil
	fb.fullResolve = false
	// Empty the inner flow lists before resizing the outer slice, so
	// lists hidden by a shrink are already empty if a later Reset grows
	// the geometry back.
	for i := range fb.linkFlows {
		clear(fb.linkFlows[i])
		fb.linkFlows[i] = fb.linkFlows[i][:0]
	}
	if cap(fb.linkFlows) < links {
		grown := make([][]*Flow, links)
		copy(grown, fb.linkFlows)
		fb.linkFlows = grown
	} else {
		fb.linkFlows = fb.linkFlows[:links]
	}
	fb.dirtyMark = resize(fb.dirtyMark, links)
	fb.dirtyLinks = fb.dirtyLinks[:0]
	fb.linkScale = resize(fb.linkScale, links)
	fb.linkSlack = resize(fb.linkSlack, links)
	fb.linkVisit = resize(fb.linkVisit, links)
	fb.visitSeq, fb.compSeq, fb.stampCur = 0, 0, 0
	fb.bfsQ = fb.bfsQ[:0]
	clear(fb.comp)
	fb.comp = fb.comp[:0]
	fb.capBuf = resize(fb.capBuf, links)
	fb.cntBuf = resize(fb.cntBuf, links)
	fb.linkStamp = resize(fb.linkStamp, links)
	fb.scopeLinks = fb.scopeLinks[:0]
	fb.rateSnap = fb.rateSnap[:0]
	for l := range fb.linkSlack {
		fb.linkScale[l] = 1
		fb.linkSlack[l] = fb.linkCapacity(l)
	}
}

// resize returns s with length n and all elements zeroed, reusing the
// backing array when it is large enough.
func resize[T bool | int | int32 | uint32 | float64](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// SetAutoRecompute controls whether Add and Remove resolve rates
// immediately (the default). Batch users disable it and call Recompute
// (or ResolveDirty) once per batch; rates are stale in between.
func (fb *Fabric) SetAutoRecompute(auto bool) {
	fb.auto = auto
	if auto {
		fb.Recompute()
	}
}

// SetRateListener registers fn to be called for every flow whose rate
// changes value during a resolve. Pass nil to disable.
func (fb *Fabric) SetRateListener(fn func(*Flow)) { fb.onRateChange = fn }

// SetFlowObserver registers lifecycle callbacks: onAdd after a flow is
// registered, onRemove when a registered flow is removed. Either may be
// nil.
func (fb *Fabric) SetFlowObserver(onAdd, onRemove func(*Flow)) {
	fb.onFlowAdd, fb.onFlowRemove = onAdd, onRemove
}

// fullResolveTol is the maximum per-flow rate divergence (MB/s) the
// verification mode tolerates between the incremental and the full
// resolve. The two paths perform identical arithmetic per component, so
// any real staleness bug exceeds this immediately; sub-ULP noise from
// flow-order changes after swap-removes stays far below it.
const fullResolveTol = 1e-9

// SetFullResolve arms (or disarms) the verification mode: every
// ResolveDirty additionally runs a from-scratch resolve and panics if
// any flow's rate diverges by more than fullResolveTol.
func (fb *Fabric) SetFullResolve(on bool) { fb.fullResolve = on }

// Config returns the fabric configuration.
func (fb *Fabric) Config() Config { return fb.cfg }

// Len reports the number of active flows.
func (fb *Fabric) Len() int { return len(fb.flows) }

// InFlows reports the number of active flows converging on node dst.
func (fb *Fabric) InFlows(dst int) int { return fb.inCount[dst] }

// DirtyLinks reports how many links are currently marked dirty —
// pending incremental work. Diagnostics and tests only.
func (fb *Fabric) DirtyLinks() int { return len(fb.dirtyLinks) }

// markLinkDirty records one perturbed link for the next resolve.
func (fb *Fabric) markLinkDirty(l int32) {
	if !fb.dirtyMark[l] {
		fb.dirtyMark[l] = true
		fb.dirtyLinks = append(fb.dirtyLinks, l)
	}
}

// setFlowLinks computes the link set a non-loopback flow crosses.
func (fb *Fabric) setFlowLinks(f *Flow) {
	n := fb.cfg.Nodes
	f.links[0] = int32(f.Src)
	f.links[1] = int32(n + f.Dst)
	f.nlinks = 2
	if racks := fb.cfg.racks(); racks > 0 {
		if rs, rd := fb.cfg.rackOf(f.Src), fb.cfg.rackOf(f.Dst); rs != rd {
			f.links[2] = int32(2*n + rs)
			f.links[3] = int32(2*n + racks + rd)
			f.nlinks = 4
		}
	}
}

// attach inserts f into the flow list of every link it crosses.
func (fb *Fabric) attach(f *Flow) {
	for i := 0; i < int(f.nlinks); i++ {
		l := f.links[i]
		f.slots[i] = int32(len(fb.linkFlows[l]))
		fb.linkFlows[l] = append(fb.linkFlows[l], f)
	}
}

// detach removes f from its links' flow lists (swap-remove, fixing the
// moved flow's slot).
func (fb *Fabric) detach(f *Flow) {
	for i := 0; i < int(f.nlinks); i++ {
		l := f.links[i]
		list := fb.linkFlows[l]
		s := f.slots[i]
		last := len(list) - 1
		moved := list[last]
		list[s] = moved
		for j := 0; j < int(moved.nlinks); j++ {
			if moved.links[j] == l {
				moved.slots[j] = s
				break
			}
		}
		list[last] = nil
		fb.linkFlows[l] = list[:last]
	}
}

// markFlowLinksDirty queues every link of f for the next resolve.
func (fb *Fabric) markFlowLinksDirty(f *Flow) {
	for i := 0; i < int(f.nlinks); i++ {
		fb.markLinkDirty(f.links[i])
	}
}

// slackMargin is the per-link slack (MB/s) the O(1) churn fast paths
// require beyond the moved flow's own cap. It keeps the saturation
// test far above floating-point noise: near-saturated links simply
// take the component re-fill path instead.
const slackMargin = 1e-3

// fastAdd handles the dominant churn event in O(1): a new flow that is
// bottlenecked by its own cap on links that all keep slack beyond it.
// Such a flow changes nobody else's allocation — every other flow's
// bottleneck link is saturated, hence disjoint from these links, so
// the old rates plus the new flow at its cap satisfy the max-min
// conditions, and the max-min allocation is unique. The receiver's
// incast state must not shift, since that would change the ingress
// capacity under everyone already converging there. Returns false to
// send the add down the dirty-resolve path.
func (fb *Fabric) fastAdd(f *Flow) bool {
	if f.CapMBps <= 0 {
		return false
	}
	if fb.cfg.IncastSeverity > 0 && fb.inCount[f.Dst] > fb.cfg.IncastThreshold {
		return false // this add shrinks the receiver's ingress capacity
	}
	for i := 0; i < int(f.nlinks); i++ {
		if fb.linkSlack[f.links[i]] < f.CapMBps+slackMargin {
			return false
		}
	}
	for i := 0; i < int(f.nlinks); i++ {
		fb.linkSlack[f.links[i]] -= f.CapMBps
	}
	return true
}

// fastRemove is fastAdd's mirror: a flow sitting exactly at its cap on
// links that all retain slack binds nobody, so removing it releases
// capacity no other flow was waiting for. The slack updates restore
// exactly what fastAdd (or a cap-fix round) deducted, so repeated
// fast churn cannot drift the slack accounting.
func (fb *Fabric) fastRemove(f *Flow) bool {
	if f.CapMBps <= 0 || f.rate != f.CapMBps {
		return false
	}
	if fb.cfg.IncastSeverity > 0 && fb.inCount[f.Dst] > fb.cfg.IncastThreshold {
		return false // this remove grows the receiver's ingress capacity
	}
	for i := 0; i < int(f.nlinks); i++ {
		if fb.linkSlack[f.links[i]] < slackMargin {
			return false
		}
	}
	for i := 0; i < int(f.nlinks); i++ {
		fb.linkSlack[f.links[i]] += f.CapMBps
	}
	return true
}

// Add registers a flow and resolves the rates of its component.
// Loopback transfers (Src == Dst) are legal and treated as local copies
// bounded only by the NIC loopback, modelled as unconstrained: they get
// rate +Inf and callers should complete them with their own local-copy
// cost; most callers simply never create them (local shuffle partitions
// are read from disk).
func (fb *Fabric) Add(f *Flow) {
	if f.fabric != nil {
		panic(fmt.Sprintf("netsim: flow %q already registered", f.Label))
	}
	if f.pooled {
		panic(fmt.Sprintf("netsim: flow %q used after release to pool", f.Label))
	}
	if f.Src < 0 || f.Src >= fb.cfg.Nodes || f.Dst < 0 || f.Dst >= fb.cfg.Nodes {
		panic(fmt.Sprintf("netsim: flow %q endpoints (%d,%d) out of range", f.Label, f.Src, f.Dst))
	}
	if f.RemainingMB < 0 {
		panic(fmt.Sprintf("netsim: flow %q negative remaining", f.Label))
	}
	if f.CapMBps < 0 {
		panic(fmt.Sprintf("netsim: flow %q negative cap", f.Label))
	}
	f.fabric = fb
	f.idx = len(fb.flows)
	f.visit = 0
	fb.flows = append(fb.flows, f)
	if f.Src != f.Dst {
		fb.outCount[f.Src]++
		fb.inCount[f.Dst]++
		fb.setFlowLinks(f)
		fb.attach(f)
		if fb.fastAdd(f) {
			fb.setRate(f, f.CapMBps)
		} else {
			fb.markFlowLinksDirty(f)
		}
	} else {
		f.nlinks = 0
		f.rate = math.Inf(1)
	}
	if fb.onFlowAdd != nil {
		fb.onFlowAdd(f)
	}
	if fb.auto {
		fb.ResolveDirty()
	}
}

// Remove unregisters a flow. Removing a foreign or already-removed
// flow is a no-op.
func (fb *Fabric) Remove(f *Flow) {
	if f.fabric != fb {
		return
	}
	if fb.onFlowRemove != nil {
		fb.onFlowRemove(f)
	}
	last := len(fb.flows) - 1
	fb.flows[f.idx] = fb.flows[last]
	fb.flows[f.idx].idx = f.idx
	fb.flows[last] = nil
	fb.flows = fb.flows[:last]
	if f.Src != f.Dst {
		fast := fb.fastRemove(f)
		fb.outCount[f.Src]--
		fb.inCount[f.Dst]--
		fb.detach(f)
		if !fast {
			fb.markFlowLinksDirty(f)
		}
	}
	f.fabric = nil
	f.rate = 0
	if fb.auto {
		fb.ResolveDirty()
	}
}

// AcquireFlow returns a zeroed Flow, recycled from the fabric's free
// list when one is available. Callers fill the public fields and pass
// it to Add as usual; a flow obtained here must eventually go back via
// ReleaseFlow (or be dropped to the GC — the pool never requires
// return, it only rewards it).
func (fb *Fabric) AcquireFlow() *Flow {
	if n := len(fb.flowPool); n > 0 {
		f := fb.flowPool[n-1]
		fb.flowPool[n-1] = nil
		fb.flowPool = fb.flowPool[:n-1]
		f.pooled = false
		return f
	}
	return &Flow{}
}

// ReleaseFlow resets f and pushes it onto the free list. The flow must
// be unregistered (Remove it first) and must not be released twice;
// both misuses panic because a recycled-while-live flow corrupts rate
// state in ways that surface far from the bug. The reset clears every
// field including Userdata, so no caller state leaks across reuse.
func (fb *Fabric) ReleaseFlow(f *Flow) {
	if f.fabric != nil {
		panic(fmt.Sprintf("netsim: release of still-registered flow %q", f.Label))
	}
	if f.pooled {
		panic(fmt.Sprintf("netsim: double release of flow %q", f.Label))
	}
	*f = Flow{pooled: true}
	fb.flowPool = append(fb.flowPool, f)
}

// ingressCap returns node dst's effective receive capacity under the
// incast model given its current converging flow count.
func (fb *Fabric) ingressCap(dst int) float64 {
	k := fb.inCount[dst]
	cap := fb.cfg.IngressMBps
	if extra := k - fb.cfg.IncastThreshold; extra > 0 && fb.cfg.IncastSeverity > 0 {
		cap /= 1 + fb.cfg.IncastSeverity*float64(extra)
	}
	return cap
}

// linkCapacity returns link l's current capacity. Ingress capacities
// vary with the receiver's live incast state, so they are read at
// water-filling time, never cached.
func (fb *Fabric) linkCapacity(l int) float64 {
	n := fb.cfg.Nodes
	switch {
	case l < n:
		return fb.cfg.EgressMBps * fb.linkScale[l]
	case l < 2*n:
		return fb.ingressCap(l-n) * fb.linkScale[l]
	default:
		return fb.cfg.RackUplinkMBps * fb.linkScale[l]
	}
}

// SetNodeLinkScale degrades (or restores) one node's access links:
// egress and ingress capacities are multiplied by the given factors in
// [0, 1]. A factor of 0 severs the direction — its flows stall at rate
// zero until the scale is restored. The affected links enter the dirty
// set; under auto-recompute the resolve runs immediately, otherwise it
// folds into the caller's next ResolveDirty, exactly like flow churn.
// Loopback traffic (src == dst) never crosses the fabric and is
// unaffected, matching a NIC/ToR fault that leaves the host alive.
func (fb *Fabric) SetNodeLinkScale(node int, egress, ingress float64) {
	if node < 0 || node >= fb.cfg.Nodes {
		panic(fmt.Sprintf("netsim: SetNodeLinkScale(%d): no such node", node))
	}
	if !(egress >= 0 && egress <= 1) || !(ingress >= 0 && ingress <= 1) { // negated form rejects NaN too
		panic(fmt.Sprintf("netsim: SetNodeLinkScale(%d, %v, %v): scales must be in [0,1]", node, egress, ingress))
	}
	eg, in := int32(node), int32(fb.cfg.Nodes+node)
	if fb.linkScale[eg] == egress && fb.linkScale[in] == ingress {
		return
	}
	fb.linkScale[eg] = egress
	fb.linkScale[in] = ingress
	fb.markLinkDirty(eg)
	fb.markLinkDirty(in)
	if fb.auto {
		fb.ResolveDirty()
	}
}

// NodeLinkScale returns node's current (egress, ingress) capacity
// factors; (1, 1) when healthy.
func (fb *Fabric) NodeLinkScale(node int) (egress, ingress float64) {
	return fb.linkScale[node], fb.linkScale[fb.cfg.Nodes+node]
}

// Recompute reruns water-filling over every active flow, ignoring the
// dirty set. It is the full-resolve path: callers that mutate
// IncastThreshold or flow endpoints directly (tests) must call it
// explicitly, since those edits bypass the dirty tracking.
func (fb *Fabric) Recompute() {
	// One global water-fill over every link-crossing flow, already in
	// registration order. Component discovery is skipped: disjoint
	// components share no links, so a joint pass performs exactly the
	// per-component arithmetic. Idle links reset their slack to full
	// capacity so stale post-waterfill leftovers (whose flows have
	// since departed) cannot depress the fast-path saturation test;
	// active links get theirs from the water-fill itself.
	for l := range fb.linkFlows {
		if len(fb.linkFlows[l]) == 0 {
			fb.linkSlack[l] = fb.linkCapacity(l)
		}
	}
	comp := fb.comp[:0]
	for _, f := range fb.flows {
		if f.nlinks > 0 {
			comp = append(comp, f)
		}
	}
	fb.waterfill(comp)
	fb.comp = comp[:0]
	fb.clearDirty()
}

// ResolveDirty reruns water-filling only on connected components
// reachable from a dirty link, keeping cached rates everywhere else.
// With an empty dirty set it is a no-op. Under SetFullResolve it
// additionally runs a full resolve and panics if any rate diverges.
func (fb *Fabric) ResolveDirty() {
	if len(fb.dirtyLinks) > 0 {
		fb.visitSeq++
		for _, l := range fb.dirtyLinks {
			fb.resolveComponentAt(l)
		}
		fb.clearDirty()
	}
	if fb.fullResolve {
		fb.verifyAgainstFull()
	}
}

// verifyAgainstFull snapshots the incrementally resolved rates, reruns
// a full resolve, and panics on any divergence beyond fullResolveTol.
func (fb *Fabric) verifyAgainstFull() {
	snap := fb.rateSnap[:0]
	for _, f := range fb.flows {
		snap = append(snap, f.rate)
	}
	fb.rateSnap = snap
	fb.Recompute()
	for i, f := range fb.flows {
		d := f.rate - snap[i]
		if d > fullResolveTol || d < -fullResolveTol {
			panic(fmt.Sprintf("netsim: incremental resolve diverged on flow %q (%d->%d): incremental %v, full %v",
				f.Label, f.Src, f.Dst, snap[i], f.rate))
		}
	}
}

// resolveComponentAt water-fills the connected component containing
// link l, unless it is empty or already visited this resolve (the
// caller advances visitSeq once per resolve). Component discovery is a
// BFS over the per-link flow lists; the collected flows are then
// ordered by registration index so tie-breaks and floating-point
// accumulation are independent of which link seeded the walk — an
// incremental resolve performs arithmetic identical to a full one.
func (fb *Fabric) resolveComponentAt(l int32) {
	seq := fb.visitSeq
	if fb.linkVisit[l] == seq || len(fb.linkFlows[l]) == 0 {
		if len(fb.linkFlows[l]) == 0 {
			// An idle link's slack is its full capacity; reset it here
			// so stale post-waterfill leftovers (whose flows have since
			// departed) cannot depress the fast-path saturation test.
			fb.linkSlack[l] = fb.linkCapacity(int(l))
		}
		fb.linkVisit[l] = seq
		return
	}
	fb.linkVisit[l] = seq
	fb.compSeq++
	cseq := fb.compSeq
	comp := fb.comp[:0]
	q := append(fb.bfsQ[:0], l)
	for len(q) > 0 {
		cur := q[len(q)-1]
		q = q[:len(q)-1]
		for _, f := range fb.linkFlows[cur] {
			if f.visit == cseq {
				continue
			}
			f.visit = cseq
			comp = append(comp, f)
			for i := 0; i < int(f.nlinks); i++ {
				nl := f.links[i]
				if fb.linkVisit[nl] != seq {
					fb.linkVisit[nl] = seq
					q = append(q, nl)
				}
			}
		}
	}
	// Order the component by registration index. A dense component
	// covering most of the fabric (the all-to-all shuffle graph) is
	// rebuilt by a stamp-filtered scan of the registration-ordered flow
	// list — O(fabric) with a tiny constant, cheaper than re-sorting
	// hundreds of pointers every event. Sparse components sort locally
	// so the scan cost stays off the many-small-components fast path.
	if k := len(comp); k > 16 && len(fb.flows) < 8*k {
		comp = comp[:0]
		for _, f := range fb.flows {
			if f.visit == cseq {
				comp = append(comp, f)
				if len(comp) == k {
					break
				}
			}
		}
	} else {
		sortFlowsByIdx(comp)
	}
	fb.waterfill(comp)
	fb.comp = comp[:0]
	fb.bfsQ = q[:0]
}

// sortFlowsByIdx orders a component's flows by registration index.
// Small components (the churn fast path) use insertion sort to skip
// the generic sort's indirection; anything larger goes through the
// stdlib's pdqsort — a dense shuffle graph can be one component with
// hundreds of flows, where quadratic insertion would dominate the
// whole resolve.
func sortFlowsByIdx(comp []*Flow) {
	if len(comp) > 16 {
		slices.SortFunc(comp, func(a, b *Flow) int { return a.idx - b.idx })
		return
	}
	for i := 1; i < len(comp); i++ {
		f := comp[i]
		j := i - 1
		if comp[j].idx <= f.idx {
			continue
		}
		for j >= 0 && comp[j].idx > f.idx {
			comp[j+1] = comp[j]
			j--
		}
		comp[j+1] = f
	}
}

// clearDirty resets the dirty-link set after a resolve.
func (fb *Fabric) clearDirty() {
	for _, l := range fb.dirtyLinks {
		fb.dirtyMark[l] = false
	}
	fb.dirtyLinks = fb.dirtyLinks[:0]
}

// setRate records a flow's allocation, notifying the listener when the
// value actually changed.
func (fb *Fabric) setRate(f *Flow, rate float64) {
	if f.rate != rate {
		f.rate = rate
		if fb.onRateChange != nil {
			fb.onRateChange(f)
		}
	}
}

// waterfill runs progressive max-min water-filling over the flows of
// one connected component. Only the component's own links are touched:
// their remaining capacity and unfixed-flow count live in capBuf/cntBuf
// entries stamped for this call, and every round scans the component's
// active-link list instead of all 2n+2R fabric links.
func (fb *Fabric) waterfill(flows []*Flow) {
	caps := fb.capBuf
	cnts := fb.cntBuf
	fb.stampCur++
	stamp := fb.stampCur
	scope := fb.scopeLinks[:0]
	for _, f := range flows {
		for i := 0; i < int(f.nlinks); i++ {
			l := f.links[i]
			if fb.linkStamp[l] != stamp {
				fb.linkStamp[l] = stamp
				caps[l] = fb.linkCapacity(int(l))
				cnts[l] = 0
				scope = append(scope, l)
			}
			cnts[l]++
		}
	}

	// waterfill owns the flows slice: the round loop compacts it in
	// place as flows get fixed. Callers pass scratch they reuse after.
	unfixed := flows
	for len(unfixed) > 0 {
		// Find the tightest link: min fair share among the component's
		// links with unfixed flows, lowest index breaking ties.
		var best int32 = -1
		bestShare := math.Inf(1)
		for _, l := range scope {
			if cnts[l] == 0 {
				continue
			}
			share := caps[l] / float64(cnts[l])
			if share < bestShare || (share == bestShare && l < best) {
				best, bestShare = l, share
			}
		}
		if best < 0 {
			break
		}
		// Flows whose own cap is below the tightest fair share are
		// bottlenecked by their caps, not by any link: fix ALL of them
		// this round (each deduction only loosens the remaining links)
		// and water-fill the rest with the leftover.
		fixedCapped := false
		next := unfixed[:0]
		for _, f := range unfixed {
			if f.CapMBps > 0 && f.CapMBps < bestShare {
				fb.setRate(f, f.CapMBps)
				fb.deduct(caps, cnts, f, f.CapMBps)
				fixedCapped = true
			} else {
				next = append(next, f)
			}
		}
		if fixedCapped {
			unfixed = next
			continue
		}
		// Fix every unfixed flow crossing the tightest link at the
		// fair share; deduct from all its links.
		next = unfixed[:0]
		for _, f := range unfixed {
			if f.crossesLink(best) {
				fb.setRate(f, bestShare)
				fb.deduct(caps, cnts, f, bestShare)
			} else {
				next = append(next, f)
			}
		}
		// Numerical guard, restricted to the component's links (the
		// only ones a round can touch): capacities must never go
		// (meaningfully) negative.
		for _, l := range scope {
			if caps[l] < 0 {
				if caps[l] < -1e-6 {
					panic(fmt.Sprintf("netsim: link %d capacity went negative: %v", l, caps[l]))
				}
				caps[l] = 0
			}
		}
		unfixed = next
	}
	// Persist each touched link's leftover capacity for the churn fast
	// paths' saturation test.
	for _, l := range scope {
		fb.linkSlack[l] = caps[l]
	}
	fb.scopeLinks = scope[:0]
}

// TopUp adds mb to the flow's remaining volume. The caller is
// responsible for settling elapsed transfer first (the mr runtime does
// this inside its mutation scope). Volume does not enter the rate
// allocation, so TopUp never dirties any link. Negative mb panics.
func (fb *Fabric) TopUp(f *Flow, mb float64) {
	if mb < 0 {
		panic(fmt.Sprintf("netsim: TopUp %q with negative volume %v", f.Label, mb))
	}
	if f.fabric != fb {
		panic(fmt.Sprintf("netsim: TopUp on foreign flow %q", f.Label))
	}
	f.RemainingMB += mb
}

// crossesLink reports whether the flow uses link l.
func (f *Flow) crossesLink(l int32) bool {
	for i := 0; i < int(f.nlinks); i++ {
		if f.links[i] == l {
			return true
		}
	}
	return false
}

// deduct removes a fixed flow's rate and presence from all its links.
func (fb *Fabric) deduct(caps []float64, cnts []int, f *Flow, rate float64) {
	for i := 0; i < int(f.nlinks); i++ {
		l := f.links[i]
		caps[l] -= rate
		cnts[l]--
	}
}

// TotalIngress returns the sum of rates currently converging on dst,
// a diagnostic used by the shuffle-rate statistics.
func (fb *Fabric) TotalIngress(dst int) float64 {
	s := 0.0
	for _, f := range fb.flows {
		if f.Dst == dst && f.Src != f.Dst {
			s += f.rate
		}
	}
	return s
}

// TotalRate returns the sum of all flow rates (MB/s) in the fabric.
func (fb *Fabric) TotalRate() float64 {
	s := 0.0
	for _, f := range fb.flows {
		if f.Src != f.Dst {
			s += f.rate
		}
	}
	return s
}
