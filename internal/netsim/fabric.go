// Package netsim models the cluster network as a fluid-flow fabric.
//
// Every node has a NIC with an egress and an ingress capacity; the
// switch core is assumed non-blocking (the paper's 16-port GbE switch).
// Active flows receive the max-min fair allocation computed by
// progressive water-filling over the per-NIC link constraints.
//
// TCP incast: when many senders converge on one receiver, synchronised
// losses and retransmission timeouts collapse goodput. The paper tunes
// RTOmin from 200 ms to 1 ms to tame this; we model the residual effect
// by shrinking a receiver's effective ingress capacity once its
// concurrent flow count exceeds IncastThreshold. IncastSeverity ≈ 0
// corresponds to the tuned cluster, larger values to an untuned one.
package netsim

import (
	"fmt"
	"math"
)

// Config describes the fabric.
type Config struct {
	Nodes           int
	EgressMBps      float64 // per-node NIC send capacity
	IngressMBps     float64 // per-node NIC receive capacity
	IncastThreshold int     // concurrent flows per receiver before goodput degrades
	IncastSeverity  float64 // per-extra-flow degradation factor (0 disables)

	// Rack oversubscription. When RackUplinkMBps > 0, nodes are grouped
	// into racks of NodesPerRack and every inter-rack flow additionally
	// crosses the source rack's uplink and the destination rack's
	// downlink, each capped at RackUplinkMBps. Zero models the paper's
	// single non-blocking switch.
	NodesPerRack   int
	RackUplinkMBps float64
}

// DefaultConfig mirrors the paper's GbE workbench with RTOmin tuned to
// 1 ms: ≈117 MB/s TCP goodput on a 1 GbE NIC, mild residual incast.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:           nodes,
		EgressMBps:      117,
		IngressMBps:     117,
		IncastThreshold: 24,
		IncastSeverity:  0.01,
	}
}

// Validate reports the first problem with the config, or nil.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("netsim: Nodes = %d, must be positive", c.Nodes)
	case c.EgressMBps <= 0:
		return fmt.Errorf("netsim: EgressMBps = %v, must be positive", c.EgressMBps)
	case c.IngressMBps <= 0:
		return fmt.Errorf("netsim: IngressMBps = %v, must be positive", c.IngressMBps)
	case c.IncastThreshold < 0:
		return fmt.Errorf("netsim: IncastThreshold = %d, must be >= 0", c.IncastThreshold)
	case c.IncastSeverity < 0:
		return fmt.Errorf("netsim: IncastSeverity = %v, must be >= 0", c.IncastSeverity)
	case c.RackUplinkMBps < 0:
		return fmt.Errorf("netsim: RackUplinkMBps = %v, must be >= 0", c.RackUplinkMBps)
	case c.RackUplinkMBps > 0 && c.NodesPerRack <= 0:
		return fmt.Errorf("netsim: RackUplinkMBps set but NodesPerRack = %d", c.NodesPerRack)
	}
	return nil
}

// racks returns the rack count, or 0 when rack modelling is off.
func (c Config) racks() int {
	if c.RackUplinkMBps <= 0 {
		return 0
	}
	return (c.Nodes + c.NodesPerRack - 1) / c.NodesPerRack
}

// rackOf returns a node's rack index (only meaningful when racks are on).
func (c Config) rackOf(node int) int { return node / c.NodesPerRack }

// Flow is one fluid transfer between two nodes. RemainingMB may be
// topped up while the flow is active (a shuffle fetch gains bytes every
// time another map output commits).
type Flow struct {
	Src, Dst    int
	RemainingMB float64
	// CapMBps, when positive, bounds the flow's rate regardless of NIC
	// headroom. Shuffle fetches use it to model the slow per-copier
	// HTTP transfers of Hadoop's shuffle (disk seeks at the server,
	// segment-at-a-time requests). Zero means uncapped.
	CapMBps float64
	Label   string

	fabric *Fabric
	rate   float64
}

// Rate returns the flow's current allocation in MB/s, valid until the
// next membership change.
func (f *Flow) Rate() float64 { return f.rate }

// Fabric owns the set of active flows and allocates rates.
//
// Flows are kept in a slice in registration order so the water-filling
// tie-breaks are deterministic run-to-run (map iteration order is not).
type Fabric struct {
	cfg   Config
	flows []*Flow
	pos   map[*Flow]int

	outCount []int // active flows per sender
	inCount  []int // active flows per receiver

	// auto controls whether Add/Remove recompute immediately. The mr
	// runtime batches many flow changes per event and recomputes once.
	auto bool

	// Scratch buffers reused across Recompute calls.
	capBuf      []float64
	cntBuf      []int
	flowScratch []*Flow
}

// NewFabric builds a fabric. Invalid configs panic (static configuration).
func NewFabric(cfg Config) *Fabric {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	links := 2*cfg.Nodes + 2*cfg.racks()
	return &Fabric{
		cfg:      cfg,
		pos:      make(map[*Flow]int),
		outCount: make([]int, cfg.Nodes),
		inCount:  make([]int, cfg.Nodes),
		auto:     true,
		capBuf:   make([]float64, links),
		cntBuf:   make([]int, links),
	}
}

// SetAutoRecompute controls whether Add and Remove recompute rates
// immediately (the default). Batch users disable it and call Recompute
// once per batch; rates are stale in between.
func (fb *Fabric) SetAutoRecompute(auto bool) {
	fb.auto = auto
	if auto {
		fb.Recompute()
	}
}

// Config returns the fabric configuration.
func (fb *Fabric) Config() Config { return fb.cfg }

// Len reports the number of active flows.
func (fb *Fabric) Len() int { return len(fb.flows) }

// InFlows reports the number of active flows converging on node dst.
func (fb *Fabric) InFlows(dst int) int { return fb.inCount[dst] }

// Add registers a flow and recomputes all rates. Loopback transfers
// (Src == Dst) are legal and treated as local copies bounded only by
// the NIC loopback, modelled as unconstrained: they get rate +Inf and
// callers should complete them with their own local-copy cost; most
// callers simply never create them (local shuffle partitions are read
// from disk).
func (fb *Fabric) Add(f *Flow) {
	if f.fabric != nil {
		panic(fmt.Sprintf("netsim: flow %q already registered", f.Label))
	}
	if f.Src < 0 || f.Src >= fb.cfg.Nodes || f.Dst < 0 || f.Dst >= fb.cfg.Nodes {
		panic(fmt.Sprintf("netsim: flow %q endpoints (%d,%d) out of range", f.Label, f.Src, f.Dst))
	}
	if f.RemainingMB < 0 {
		panic(fmt.Sprintf("netsim: flow %q negative remaining", f.Label))
	}
	if f.CapMBps < 0 {
		panic(fmt.Sprintf("netsim: flow %q negative cap", f.Label))
	}
	f.fabric = fb
	fb.pos[f] = len(fb.flows)
	fb.flows = append(fb.flows, f)
	if f.Src != f.Dst {
		fb.outCount[f.Src]++
		fb.inCount[f.Dst]++
	}
	if fb.auto {
		fb.Recompute()
	}
}

// Remove unregisters a flow. Removing a foreign or already-removed
// flow is a no-op.
func (fb *Fabric) Remove(f *Flow) {
	if f.fabric != fb {
		return
	}
	i := fb.pos[f]
	last := len(fb.flows) - 1
	fb.flows[i] = fb.flows[last]
	fb.pos[fb.flows[i]] = i
	fb.flows[last] = nil
	fb.flows = fb.flows[:last]
	delete(fb.pos, f)
	f.fabric = nil
	f.rate = 0
	if f.Src != f.Dst {
		fb.outCount[f.Src]--
		fb.inCount[f.Dst]--
	}
	if fb.auto {
		fb.Recompute()
	}
}

// ingressCap returns node dst's effective receive capacity under the
// incast model given its current converging flow count.
func (fb *Fabric) ingressCap(dst int) float64 {
	k := fb.inCount[dst]
	cap := fb.cfg.IngressMBps
	if extra := k - fb.cfg.IncastThreshold; extra > 0 && fb.cfg.IncastSeverity > 0 {
		cap /= 1 + fb.cfg.IncastSeverity*float64(extra)
	}
	return cap
}

// Recompute reruns water-filling over the active flows. It is called
// automatically on Add/Remove; callers that mutate IncastThreshold or
// flow endpoints directly (tests) may call it explicitly.
func (fb *Fabric) Recompute() {
	n := fb.cfg.Nodes
	racks := fb.cfg.racks()
	links := 2*n + 2*racks
	// Remaining capacity and unfixed-flow count per link. Links are
	// indexed 0..n-1 for node egress, n..2n-1 for node ingress, then
	// 2n..2n+R-1 for rack uplinks and 2n+R..2n+2R-1 for rack downlinks.
	cap := fb.capBuf
	cnt := fb.cntBuf
	for i := 0; i < n; i++ {
		cap[i] = fb.cfg.EgressMBps
		cap[n+i] = fb.ingressCap(i)
		cnt[i], cnt[n+i] = 0, 0
	}
	for r := 0; r < racks; r++ {
		cap[2*n+r] = fb.cfg.RackUplinkMBps
		cap[2*n+racks+r] = fb.cfg.RackUplinkMBps
		cnt[2*n+r], cnt[2*n+racks+r] = 0, 0
	}
	unfixed := fb.makeUnfixed()
	for len(unfixed) > 0 {
		// Find the tightest link: min fair share among links with
		// unfixed flows.
		best, bestShare := -1, math.Inf(1)
		for l := 0; l < links; l++ {
			if cnt[l] == 0 {
				continue
			}
			share := cap[l] / float64(cnt[l])
			if share < bestShare {
				best, bestShare = l, share
			}
		}
		if best < 0 {
			break
		}
		// Flows whose own cap is below the tightest fair share are
		// bottlenecked by their caps, not by any link: fix ALL of them
		// this round (each deduction only loosens the remaining links)
		// and water-fill the rest with the leftover.
		fixedCapped := false
		next := unfixed[:0]
		for _, f := range unfixed {
			if f.CapMBps > 0 && f.CapMBps < bestShare {
				f.rate = f.CapMBps
				fb.deduct(cap, cnt, f, f.rate)
				fixedCapped = true
			} else {
				next = append(next, f)
			}
		}
		if fixedCapped {
			unfixed = next
			continue
		}
		// Fix every unfixed flow crossing the tightest link at the
		// fair share; deduct from all its links.
		next = unfixed[:0]
		for _, f := range unfixed {
			if fb.crossesLink(f, best) {
				f.rate = bestShare
				fb.deduct(cap, cnt, f, bestShare)
			} else {
				next = append(next, f)
			}
		}
		// Numerical guard: capacities must never go (meaningfully)
		// negative.
		for l := range cap {
			if cap[l] < 0 {
				if cap[l] < -1e-6 {
					panic(fmt.Sprintf("netsim: link %d capacity went negative: %v", l, cap[l]))
				}
				cap[l] = 0
			}
		}
		unfixed = next
	}
}

// TopUp adds mb to the flow's remaining volume. The caller is
// responsible for settling elapsed transfer first (the mr runtime does
// this inside its mutation scope). Negative mb panics.
func (fb *Fabric) TopUp(f *Flow, mb float64) {
	if mb < 0 {
		panic(fmt.Sprintf("netsim: TopUp %q with negative volume %v", f.Label, mb))
	}
	if f.fabric != fb {
		panic(fmt.Sprintf("netsim: TopUp on foreign flow %q", f.Label))
	}
	f.RemainingMB += mb
}

// makeUnfixed seeds the water-filling round: loopbacks get infinite
// rate immediately, everything else joins the unfixed set and its link
// counters.
func (fb *Fabric) makeUnfixed() []*Flow {
	n := fb.cfg.Nodes
	racks := fb.cfg.racks()
	unfixed := fb.scratchFlows()
	for _, f := range fb.flows {
		if f.Src == f.Dst {
			f.rate = math.Inf(1)
			continue
		}
		fb.cntBuf[f.Src]++
		fb.cntBuf[n+f.Dst]++
		if racks > 0 {
			if rs, rd := fb.cfg.rackOf(f.Src), fb.cfg.rackOf(f.Dst); rs != rd {
				fb.cntBuf[2*n+rs]++
				fb.cntBuf[2*n+racks+rd]++
			}
		}
		unfixed = append(unfixed, f)
	}
	return unfixed
}

// crossesLink reports whether flow f uses link l.
func (fb *Fabric) crossesLink(f *Flow, l int) bool {
	n := fb.cfg.Nodes
	racks := fb.cfg.racks()
	switch {
	case l < n:
		return f.Src == l
	case l < 2*n:
		return f.Dst == l-n
	default:
		rs, rd := fb.cfg.rackOf(f.Src), fb.cfg.rackOf(f.Dst)
		if rs == rd {
			return false
		}
		if l < 2*n+racks {
			return rs == l-2*n
		}
		return rd == l-2*n-racks
	}
}

// deduct removes a fixed flow's rate and presence from all its links.
func (fb *Fabric) deduct(cap []float64, cnt []int, f *Flow, rate float64) {
	n := fb.cfg.Nodes
	racks := fb.cfg.racks()
	cap[f.Src] -= rate
	cap[n+f.Dst] -= rate
	cnt[f.Src]--
	cnt[n+f.Dst]--
	if racks > 0 {
		if rs, rd := fb.cfg.rackOf(f.Src), fb.cfg.rackOf(f.Dst); rs != rd {
			cap[2*n+rs] -= rate
			cap[2*n+racks+rd] -= rate
			cnt[2*n+rs]--
			cnt[2*n+racks+rd]--
		}
	}
}

// scratchFlows returns a reusable zero-length flow buffer.
func (fb *Fabric) scratchFlows() []*Flow {
	if cap(fb.flowScratch) < len(fb.flows) {
		fb.flowScratch = make([]*Flow, 0, len(fb.flows)*2)
	}
	return fb.flowScratch[:0]
}

// TotalIngress returns the sum of rates currently converging on dst,
// a diagnostic used by the shuffle-rate statistics.
func (fb *Fabric) TotalIngress(dst int) float64 {
	s := 0.0
	for _, f := range fb.flows {
		if f.Dst == dst && f.Src != f.Dst {
			s += f.rate
		}
	}
	return s
}

// TotalRate returns the sum of all flow rates (MB/s) in the fabric.
func (fb *Fabric) TotalRate() float64 {
	s := 0.0
	for _, f := range fb.flows {
		if f.Src != f.Dst {
			s += f.rate
		}
	}
	return s
}
