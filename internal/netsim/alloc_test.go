package netsim

import "testing"

// TestChurnResolveDirtyAllocFree guards the resolver hot path's
// steady-state allocation behaviour: one churn cycle (remove a flow,
// add its replacement, ResolveDirty) on the benchmark topology — 32
// link-disjoint reducer fan-ins on a 128-node fabric — must allocate
// nothing beyond the replacement Flow the harness itself constructs.
// The telemetry/invariant layer must not regress this: when disabled
// it adds no work here at all.
func TestChurnResolveDirtyAllocFree(t *testing.T) {
	fb := NewFabric(DefaultConfig(128))
	fb.SetAutoRecompute(false)
	var live []*Flow
	for g := 0; g < 32; g++ {
		dst := 4 * g
		for k := 0; k < 5; k++ {
			f := &Flow{Src: dst + 1 + k%3, Dst: dst, RemainingMB: 100, CapMBps: 3.5}
			fb.Add(f)
			live = append(live, f)
		}
	}
	fb.Recompute()

	i := 0
	churn := func() {
		j := i % len(live)
		i++
		old := live[j]
		fb.Remove(old)
		nf := &Flow{Src: old.Src, Dst: old.Dst, RemainingMB: 100, CapMBps: 3.5}
		fb.Add(nf)
		live[j] = nf
		fb.ResolveDirty()
	}
	// Warm up so internal scratch buffers reach steady-state capacity.
	for k := 0; k < 2000; k++ {
		churn()
	}
	avg := testing.AllocsPerRun(2000, churn)
	// Exactly one allocation per cycle: the harness's replacement Flow.
	if avg > 1 {
		t.Fatalf("churn cycle allocates %.2f objects/op, want 1 (the Flow itself)", avg)
	}
}
