package netsim

import "testing"

// TestChurnResolveDirtyAllocFree guards the resolver hot path's
// steady-state allocation behaviour: one churn cycle (remove a flow,
// release it, acquire+add its replacement, ResolveDirty) on the
// benchmark topology — 32 link-disjoint reducer fan-ins on a 128-node
// fabric — must allocate nothing: the flow pool recycles the removed
// flow and the resolver's scratch is hoisted. The telemetry/invariant
// layer must not regress this: when disabled it adds no work here.
func TestChurnResolveDirtyAllocFree(t *testing.T) {
	fb := NewFabric(DefaultConfig(128))
	fb.SetAutoRecompute(false)
	var live []*Flow
	for g := 0; g < 32; g++ {
		dst := 4 * g
		for k := 0; k < 5; k++ {
			f := fb.AcquireFlow()
			f.Src, f.Dst = dst+1+k%3, dst
			f.RemainingMB, f.CapMBps = 100, 3.5
			fb.Add(f)
			live = append(live, f)
		}
	}
	fb.Recompute()

	i := 0
	churn := func() {
		j := i % len(live)
		i++
		old := live[j]
		src, dst := old.Src, old.Dst
		fb.Remove(old)
		fb.ReleaseFlow(old)
		nf := fb.AcquireFlow()
		nf.Src, nf.Dst = src, dst
		nf.RemainingMB, nf.CapMBps = 100, 3.5
		fb.Add(nf)
		live[j] = nf
		fb.ResolveDirty()
	}
	// Warm up so internal scratch buffers reach steady-state capacity.
	for k := 0; k < 2000; k++ {
		churn()
	}
	avg := testing.AllocsPerRun(2000, churn)
	if avg != 0 {
		t.Fatalf("churn cycle allocates %.2f objects/op, want 0", avg)
	}
}

// TestFlowPoolReuseAndGuards pins the pool contract: release resets
// every field (Userdata included), acquire hands the same object back,
// and misuse (double release, release while registered, Add after
// release) panics.
func TestFlowPoolReuseAndGuards(t *testing.T) {
	fb := NewFabric(DefaultConfig(8))
	f := fb.AcquireFlow()
	f.Src, f.Dst, f.RemainingMB, f.Label, f.Userdata = 1, 2, 50, "x", "payload"
	fb.Add(f)

	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("release while registered", func() { fb.ReleaseFlow(f) })

	fb.Remove(f)
	fb.ReleaseFlow(f)
	if f.Userdata != nil || f.Label != "" || f.RemainingMB != 0 {
		t.Fatal("release did not reset the flow")
	}
	mustPanic("double release", func() { fb.ReleaseFlow(f) })
	mustPanic("Add after release", func() { fb.Add(f) })

	got := fb.AcquireFlow()
	if got != f {
		t.Fatal("pool did not recycle the released flow")
	}
	got.Src, got.Dst, got.RemainingMB = 3, 4, 10
	fb.Add(got) // must be fully usable again
	fb.Remove(got)
}
