package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func cfg(nodes int) Config {
	c := DefaultConfig(nodes)
	c.IncastSeverity = 0 // most tests want the pure max-min fabric
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(4).Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	bad := []Config{
		{Nodes: 0, EgressMBps: 1, IngressMBps: 1},
		{Nodes: 2, EgressMBps: 0, IngressMBps: 1},
		{Nodes: 2, EgressMBps: 1, IngressMBps: 0},
		{Nodes: 2, EgressMBps: 1, IngressMBps: 1, IncastThreshold: -1},
		{Nodes: 2, EgressMBps: 1, IngressMBps: 1, IncastSeverity: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("case %d: invalid config passed", i)
		}
	}
}

func TestSingleFlowGetsNICRate(t *testing.T) {
	fb := NewFabric(cfg(4))
	f := &Flow{Src: 0, Dst: 1, RemainingMB: 100}
	fb.Add(f)
	if math.Abs(f.Rate()-117) > 1e-9 {
		t.Fatalf("rate = %v, want 117", f.Rate())
	}
	fb.Remove(f)
	if f.Rate() != 0 || fb.Len() != 0 {
		t.Fatal("Remove did not clear")
	}
}

func TestEgressSharing(t *testing.T) {
	fb := NewFabric(cfg(4))
	f1 := &Flow{Src: 0, Dst: 1}
	f2 := &Flow{Src: 0, Dst: 2}
	fb.Add(f1)
	fb.Add(f2)
	if math.Abs(f1.Rate()-58.5) > 1e-9 || math.Abs(f2.Rate()-58.5) > 1e-9 {
		t.Fatalf("egress shares = %v/%v, want 58.5 each", f1.Rate(), f2.Rate())
	}
}

func TestIngressSharing(t *testing.T) {
	fb := NewFabric(cfg(4))
	f1 := &Flow{Src: 0, Dst: 2}
	f2 := &Flow{Src: 1, Dst: 2}
	fb.Add(f1)
	fb.Add(f2)
	if math.Abs(f1.Rate()-58.5) > 1e-9 || math.Abs(f2.Rate()-58.5) > 1e-9 {
		t.Fatalf("ingress shares = %v/%v, want 58.5 each", f1.Rate(), f2.Rate())
	}
	if math.Abs(fb.TotalIngress(2)-117) > 1e-9 {
		t.Fatalf("TotalIngress = %v, want 117", fb.TotalIngress(2))
	}
}

func TestMaxMinBottleneckShift(t *testing.T) {
	// Flows: A:0→2, B:1→2, C:1→3. Receiver 2 is the bottleneck for A
	// and B (58.5 each). C then water-fills the rest of sender 1's
	// egress: min(117−58.5, 117) = 58.5.
	fb := NewFabric(cfg(4))
	a := &Flow{Src: 0, Dst: 2}
	b := &Flow{Src: 1, Dst: 2}
	c := &Flow{Src: 1, Dst: 3}
	fb.Add(a)
	fb.Add(b)
	fb.Add(c)
	if math.Abs(a.Rate()-58.5) > 1e-6 || math.Abs(b.Rate()-58.5) > 1e-6 {
		t.Fatalf("a=%v b=%v, want 58.5", a.Rate(), b.Rate())
	}
	if math.Abs(c.Rate()-58.5) > 1e-6 {
		t.Fatalf("c=%v, want 58.5", c.Rate())
	}
}

func TestMaxMinAsymmetric(t *testing.T) {
	// 3 flows into node 0, one of whose senders also sends elsewhere.
	// Receiver 0: three flows → 39 each. Sender 3's second flow gets
	// the leftover egress 117−39 = 78.
	fb := NewFabric(cfg(5))
	flows := []*Flow{
		{Src: 1, Dst: 0}, {Src: 2, Dst: 0}, {Src: 3, Dst: 0},
		{Src: 3, Dst: 4},
	}
	for _, f := range flows {
		fb.Add(f)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(flows[i].Rate()-39) > 1e-6 {
			t.Fatalf("flow %d rate = %v, want 39", i, flows[i].Rate())
		}
	}
	if math.Abs(flows[3].Rate()-78) > 1e-6 {
		t.Fatalf("leftover flow rate = %v, want 78", flows[3].Rate())
	}
}

func TestIncastPenalty(t *testing.T) {
	c := DefaultConfig(20)
	c.IncastThreshold = 4
	c.IncastSeverity = 0.5
	fb := NewFabric(c)
	var flows []*Flow
	for s := 1; s <= 8; s++ {
		f := &Flow{Src: s, Dst: 0}
		fb.Add(f)
		flows = append(flows, f)
	}
	// 8 flows, threshold 4: cap = 117/(1+0.5*4) = 39 → 4.875 each.
	want := 117.0 / 3 / 8
	if math.Abs(flows[0].Rate()-want) > 1e-6 {
		t.Fatalf("incast rate = %v, want %v", flows[0].Rate(), want)
	}
	// Compare against no-penalty fabric.
	if fb.TotalIngress(0) >= 117 {
		t.Fatal("incast did not reduce aggregate ingress")
	}
}

func TestIncastBelowThresholdUnaffected(t *testing.T) {
	c := DefaultConfig(10)
	c.IncastThreshold = 4
	c.IncastSeverity = 0.5
	fb := NewFabric(c)
	for s := 1; s <= 4; s++ {
		fb.Add(&Flow{Src: s, Dst: 0})
	}
	if math.Abs(fb.TotalIngress(0)-117) > 1e-6 {
		t.Fatalf("ingress = %v, want full 117 at threshold", fb.TotalIngress(0))
	}
}

func TestLoopbackUnconstrained(t *testing.T) {
	fb := NewFabric(cfg(4))
	f := &Flow{Src: 2, Dst: 2}
	g := &Flow{Src: 0, Dst: 2}
	fb.Add(f)
	fb.Add(g)
	if !math.IsInf(f.Rate(), 1) {
		t.Fatalf("loopback rate = %v, want +Inf", f.Rate())
	}
	if math.Abs(g.Rate()-117) > 1e-9 {
		t.Fatalf("loopback consumed NIC capacity: %v", g.Rate())
	}
}

func TestDoubleAddPanics(t *testing.T) {
	fb := NewFabric(cfg(2))
	f := &Flow{Src: 0, Dst: 1}
	fb.Add(f)
	defer func() {
		if recover() == nil {
			t.Fatal("double Add did not panic")
		}
	}()
	fb.Add(f)
}

func TestOutOfRangePanics(t *testing.T) {
	fb := NewFabric(cfg(2))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range endpoint did not panic")
		}
	}()
	fb.Add(&Flow{Src: 0, Dst: 5})
}

func TestRemoveForeignNoop(t *testing.T) {
	fb1 := NewFabric(cfg(2))
	fb2 := NewFabric(cfg(2))
	f := &Flow{Src: 0, Dst: 1}
	fb1.Add(f)
	fb2.Remove(f)
	if f.Rate() == 0 {
		t.Fatal("foreign Remove detached flow")
	}
}

func TestRemoveRestoresRates(t *testing.T) {
	fb := NewFabric(cfg(4))
	f1 := &Flow{Src: 0, Dst: 1}
	f2 := &Flow{Src: 0, Dst: 2}
	fb.Add(f1)
	fb.Add(f2)
	fb.Remove(f2)
	if math.Abs(f1.Rate()-117) > 1e-9 {
		t.Fatalf("rate after Remove = %v, want 117", f1.Rate())
	}
}

// Property: the max-min allocation never violates any link capacity and
// every flow gets a strictly positive rate.
func TestQuickFeasibility(t *testing.T) {
	const n = 8
	f := func(pairs []uint16) bool {
		fb := NewFabric(cfg(n))
		var flows []*Flow
		for _, p := range pairs {
			if len(flows) >= 60 {
				break
			}
			src, dst := int(p%n), int((p/n)%n)
			if src == dst {
				continue
			}
			fl := &Flow{Src: src, Dst: dst}
			fb.Add(fl)
			flows = append(flows, fl)
		}
		out := make([]float64, n)
		in := make([]float64, n)
		for _, fl := range flows {
			if fl.Rate() <= 0 {
				return false
			}
			out[fl.Src] += fl.Rate()
			in[fl.Dst] += fl.Rate()
		}
		for i := 0; i < n; i++ {
			if out[i] > 117+1e-6 || in[i] > 117+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: max-min fairness — no flow can be increased without
// decreasing another flow with an equal or smaller rate. Equivalent
// check: every flow is bottlenecked at some saturated link where it has
// the maximum rate among flows crossing that link.
func TestQuickMaxMinProperty(t *testing.T) {
	const n = 6
	f := func(pairs []uint16) bool {
		fb := NewFabric(cfg(n))
		var flows []*Flow
		for _, p := range pairs {
			if len(flows) >= 40 {
				break
			}
			src, dst := int(p%n), int((p/n)%n)
			if src == dst {
				continue
			}
			fl := &Flow{Src: src, Dst: dst}
			fb.Add(fl)
			flows = append(flows, fl)
		}
		if len(flows) == 0 {
			return true
		}
		out := make([]float64, n)
		in := make([]float64, n)
		for _, fl := range flows {
			out[fl.Src] += fl.Rate()
			in[fl.Dst] += fl.Rate()
		}
		for _, fl := range flows {
			egSat := out[fl.Src] > 117-1e-6
			inSat := in[fl.Dst] > 117-1e-6
			okEg, okIn := false, false
			if egSat {
				okEg = true
				for _, g := range flows {
					if g.Src == fl.Src && g.Rate() > fl.Rate()+1e-6 {
						okEg = false
					}
				}
			}
			if inSat {
				okIn = true
				for _, g := range flows {
					if g.Dst == fl.Dst && g.Rate() > fl.Rate()+1e-6 {
						okIn = false
					}
				}
			}
			if !okEg && !okIn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCapBoundsFlow(t *testing.T) {
	fb := NewFabric(cfg(4))
	f := &Flow{Src: 0, Dst: 1, CapMBps: 10}
	fb.Add(f)
	if math.Abs(f.Rate()-10) > 1e-9 {
		t.Fatalf("capped rate = %v, want 10", f.Rate())
	}
}

func TestCapLeavesHeadroomForOthers(t *testing.T) {
	fb := NewFabric(cfg(4))
	capped := &Flow{Src: 0, Dst: 2, CapMBps: 10}
	free := &Flow{Src: 1, Dst: 2}
	fb.Add(capped)
	fb.Add(free)
	// Receiver 2 has 117; capped takes 10, free water-fills 107.
	if math.Abs(capped.Rate()-10) > 1e-6 || math.Abs(free.Rate()-107) > 1e-6 {
		t.Fatalf("rates = %v/%v, want 10/107", capped.Rate(), free.Rate())
	}
}

func TestCapAboveShareIsInert(t *testing.T) {
	fb := NewFabric(cfg(4))
	a := &Flow{Src: 0, Dst: 2, CapMBps: 1000}
	b := &Flow{Src: 1, Dst: 2, CapMBps: 1000}
	fb.Add(a)
	fb.Add(b)
	if math.Abs(a.Rate()-58.5) > 1e-6 || math.Abs(b.Rate()-58.5) > 1e-6 {
		t.Fatalf("rates = %v/%v, want 58.5 each", a.Rate(), b.Rate())
	}
}

func TestManyCappedFlowsAggregate(t *testing.T) {
	// 8 capped fetches into one receiver: aggregate is 8×10 = 80 < 117,
	// so every flow runs at its cap.
	fb := NewFabric(cfg(10))
	var flows []*Flow
	for s := 1; s <= 8; s++ {
		f := &Flow{Src: s, Dst: 0, CapMBps: 10}
		fb.Add(f)
		flows = append(flows, f)
	}
	for _, f := range flows {
		if math.Abs(f.Rate()-10) > 1e-6 {
			t.Fatalf("rate = %v, want 10", f.Rate())
		}
	}
	// 16 such flows exceed the NIC: shares drop below the cap.
	for s := 1; s <= 8; s++ {
		fb.Add(&Flow{Src: s, Dst: 0, CapMBps: 10})
	}
	if fb.TotalIngress(0) > 117+1e-6 {
		t.Fatalf("ingress exceeded NIC: %v", fb.TotalIngress(0))
	}
}

func TestNegativeCapPanics(t *testing.T) {
	fb := NewFabric(cfg(2))
	defer func() {
		if recover() == nil {
			t.Fatal("negative cap did not panic")
		}
	}()
	fb.Add(&Flow{Src: 0, Dst: 1, CapMBps: -1})
}

func TestTopUp(t *testing.T) {
	fb := NewFabric(cfg(2))
	f := &Flow{Src: 0, Dst: 1, RemainingMB: 5}
	fb.Add(f)
	fb.TopUp(f, 7)
	if f.RemainingMB != 12 {
		t.Fatalf("RemainingMB = %v, want 12", f.RemainingMB)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative TopUp did not panic")
			}
		}()
		fb.TopUp(f, -1)
	}()
	g := &Flow{Src: 0, Dst: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("foreign TopUp did not panic")
		}
	}()
	fb.TopUp(g, 1)
}

// Property: with caps, no flow ever exceeds its cap and link limits hold.
func TestQuickCapFeasibility(t *testing.T) {
	const n = 6
	f := func(pairs []uint16) bool {
		fb := NewFabric(cfg(n))
		var flows []*Flow
		for _, p := range pairs {
			if len(flows) >= 40 {
				break
			}
			src, dst := int(p%n), int((p/n)%n)
			if src == dst {
				continue
			}
			fl := &Flow{Src: src, Dst: dst, CapMBps: float64(p%97) + 1}
			fb.Add(fl)
			flows = append(flows, fl)
		}
		out := make([]float64, n)
		in := make([]float64, n)
		for _, fl := range flows {
			if fl.Rate() <= 0 || fl.Rate() > fl.CapMBps+1e-6 {
				return false
			}
			out[fl.Src] += fl.Rate()
			in[fl.Dst] += fl.Rate()
		}
		for i := 0; i < n; i++ {
			if out[i] > 117+1e-6 || in[i] > 117+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestFlowObserverSeesLifecycle pins the observer contract: onAdd fires
// after the flow is fully registered (rate already meaningful once the
// fabric resolves), onRemove fires exactly once per removed flow, and
// flows foreign to the fabric trigger neither callback.
func TestFlowObserverSeesLifecycle(t *testing.T) {
	fb := NewFabric(cfg(4))
	var added, removed []*Flow
	fb.SetFlowObserver(
		func(f *Flow) { added = append(added, f) },
		func(f *Flow) { removed = append(removed, f) },
	)

	f1 := &Flow{Src: 0, Dst: 1, RemainingMB: 10}
	f2 := &Flow{Src: 2, Dst: 3, RemainingMB: 20}
	fb.Add(f1)
	fb.Add(f2)
	if len(added) != 2 || added[0] != f1 || added[1] != f2 {
		t.Fatalf("onAdd saw %d flows, want f1 then f2", len(added))
	}
	if len(removed) != 0 {
		t.Fatalf("onRemove fired before any Remove")
	}

	// A flow belonging to a different fabric must not leak through.
	other := NewFabric(cfg(4))
	foreign := &Flow{Src: 0, Dst: 1}
	other.Add(foreign)
	fb.Remove(foreign)
	if len(removed) != 0 {
		t.Fatal("onRemove fired for a foreign flow")
	}

	fb.Remove(f1)
	fb.Remove(f1) // second Remove is a no-op
	if len(removed) != 1 || removed[0] != f1 {
		t.Fatalf("onRemove fired %d times for f1, want once", len(removed))
	}
	fb.Remove(f2)
	if len(removed) != 2 || removed[1] != f2 {
		t.Fatalf("onRemove total = %d, want 2", len(removed))
	}
	if fb.Len() != 0 {
		t.Fatalf("fabric still holds %d flows", fb.Len())
	}
}
