package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// churnConfig names one fabric shape the differential churn test runs.
type churnConfig struct {
	name string
	cfg  Config
	// capMode: 0 = uncapped, 1 = uniform cap (the shuffle-fetch shape),
	// 2 = mixed per-flow caps.
	capMode int
}

func churnConfigs() []churnConfig {
	flat := DefaultConfig(16)
	flat.IncastSeverity = 0

	incast := DefaultConfig(16)
	incast.IncastThreshold = 4
	incast.IncastSeverity = 0.3

	racked := DefaultConfig(24)
	racked.IncastSeverity = 0
	racked.NodesPerRack = 8
	racked.RackUplinkMBps = 468

	return []churnConfig{
		{"flat-uncapped", flat, 0},
		{"flat-uniform-cap", flat, 1},
		{"incast-mixed-cap", incast, 2},
		{"racked-uniform-cap", racked, 1},
		{"racked-mixed-cap", racked, 2},
	}
}

// mirrored is one logical flow registered in both fabrics under test.
type mirrored struct {
	inc, full *Flow
}

func newMirrored(rng *rand.Rand, nodes, capMode int) mirrored {
	src := rng.Intn(nodes)
	dst := rng.Intn(nodes - 1)
	if dst >= src {
		dst++ // never loopback: churn targets the constrained graph
	}
	capMBps := 0.0
	switch capMode {
	case 1:
		capMBps = 3.5
	case 2:
		if rng.Intn(2) == 0 {
			capMBps = 1 + rng.Float64()*60
		}
	}
	mk := func() *Flow {
		return &Flow{Src: src, Dst: dst, RemainingMB: 100, CapMBps: capMBps}
	}
	return mirrored{inc: mk(), full: mk()}
}

// TestChurnIncrementalMatchesFull drives seeded random add/remove/top-up
// churn through two fabrics — one resolved incrementally (ResolveDirty
// after each mutation batch), one from scratch (Recompute) — and
// asserts every flow's rate matches within 1e-9 after every batch.
func TestChurnIncrementalMatchesFull(t *testing.T) {
	seeds := []int64{1, 2, 3, 17, 99, 12345}
	for _, cc := range churnConfigs() {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", cc.name, seed), func(t *testing.T) {
				runChurnDifferential(t, cc, seed)
			})
		}
	}
}

func runChurnDifferential(t *testing.T, cc churnConfig, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fbInc := NewFabric(cc.cfg)
	fbFull := NewFabric(cc.cfg)
	fbInc.SetAutoRecompute(false)
	fbFull.SetAutoRecompute(false)
	var live []mirrored

	const batches = 120
	for b := 0; b < batches; b++ {
		// Each batch applies 1–4 mutations then resolves once, the same
		// shape as one mr mutation scope.
		nMut := 1 + rng.Intn(4)
		for m := 0; m < nMut; m++ {
			switch op := rng.Intn(10); {
			case op < 5 || len(live) == 0: // add (biased so the fabric fills up)
				mf := newMirrored(rng, cc.cfg.Nodes, cc.capMode)
				fbInc.Add(mf.inc)
				fbFull.Add(mf.full)
				live = append(live, mf)
			case op < 8: // remove
				i := rng.Intn(len(live))
				fbInc.Remove(live[i].inc)
				fbFull.Remove(live[i].full)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			default: // top-up (must not perturb any rate)
				i := rng.Intn(len(live))
				mb := rng.Float64() * 50
				fbInc.TopUp(live[i].inc, mb)
				fbFull.TopUp(live[i].full, mb)
			}
		}
		fbInc.ResolveDirty()
		fbFull.Recompute()
		for i, mf := range live {
			if d := mf.inc.Rate() - mf.full.Rate(); math.Abs(d) > 1e-9 {
				t.Fatalf("batch %d flow %d (%d->%d cap %v): incremental %v, full %v",
					b, i, mf.inc.Src, mf.inc.Dst, mf.inc.CapMBps, mf.inc.Rate(), mf.full.Rate())
			}
		}
		checkMaxMin(t, fbInc, live, b)
	}
	if fbInc.DirtyLinks() != 0 {
		t.Fatalf("dirty links not drained after resolve: %d", fbInc.DirtyLinks())
	}
}

// checkMaxMin re-verifies the max-min property on the incrementally
// resolved fabric: every uncapped flow is bottlenecked at some
// saturated link where no co-user has a higher rate, and no capped
// flow exceeds its cap.
func checkMaxMin(t *testing.T, fb *Fabric, live []mirrored, batch int) {
	t.Helper()
	n := fb.Config().Nodes
	out := make([]float64, n)
	in := make([]float64, n)
	for _, mf := range live {
		f := mf.inc
		if f.CapMBps > 0 && f.Rate() > f.CapMBps+1e-6 {
			t.Fatalf("batch %d: flow exceeds cap: %v > %v", batch, f.Rate(), f.CapMBps)
		}
		if f.Rate() <= 0 {
			t.Fatalf("batch %d: flow starved: %v", batch, f.Rate())
		}
		out[f.Src] += f.Rate()
		in[f.Dst] += f.Rate()
	}
	egCap := fb.Config().EgressMBps
	for i := 0; i < n; i++ {
		if out[i] > egCap+1e-6 {
			t.Fatalf("batch %d: egress %d overcommitted: %v", batch, i, out[i])
		}
		if in[i] > fb.ingressCap(i)+1e-6 {
			t.Fatalf("batch %d: ingress %d overcommitted: %v", batch, i, in[i])
		}
	}
	for _, mf := range live {
		f := mf.inc
		if f.CapMBps > 0 && f.Rate() > f.CapMBps-1e-6 {
			continue // bottlenecked by its own cap
		}
		egSat := out[f.Src] > egCap-1e-6
		inSat := in[f.Dst] > fb.ingressCap(f.Dst)-1e-6
		okEg, okIn := egSat, inSat
		for _, mg := range live {
			g := mg.inc
			if egSat && g.Src == f.Src && g.Rate() > f.Rate()+1e-6 {
				okEg = false
			}
			if inSat && g.Dst == f.Dst && g.Rate() > f.Rate()+1e-6 {
				okIn = false
			}
		}
		// Racked fabrics may bottleneck on an uplink instead; only
		// enforce the NIC-level check when rack modelling is off.
		if fb.Config().RackUplinkMBps == 0 && !okEg && !okIn {
			t.Fatalf("batch %d: flow %d->%d rate %v not max-min bottlenecked",
				batch, f.Src, f.Dst, f.Rate())
		}
	}
}

// TestFullResolveVerifierRuns exercises the SetFullResolve escape
// hatch: the fabric itself compares incremental against from-scratch
// resolution on every ResolveDirty and panics on divergence, so a
// clean run of seeded churn is the assertion.
func TestFullResolveVerifierRuns(t *testing.T) {
	cfg := DefaultConfig(12)
	cfg.IncastThreshold = 3
	cfg.IncastSeverity = 0.2
	fb := NewFabric(cfg)
	fb.SetAutoRecompute(false)
	fb.SetFullResolve(true)
	rng := rand.New(rand.NewSource(7))
	var live []*Flow
	for b := 0; b < 200; b++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			f := &Flow{Src: rng.Intn(12), Dst: rng.Intn(12), CapMBps: 3.5}
			if f.Src == f.Dst {
				f.CapMBps = 0 // exercise loopbacks through the verifier too
			}
			fb.Add(f)
			live = append(live, f)
		} else {
			i := rng.Intn(len(live))
			fb.Remove(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		fb.ResolveDirty()
	}
}

// TestTopUpDoesNotDirty pins the design invariant that volume changes
// never enter rate allocation: a TopUp alone must leave the dirty set
// empty, so the next resolve is free.
func TestTopUpDoesNotDirty(t *testing.T) {
	fb := NewFabric(cfg(4))
	f := &Flow{Src: 0, Dst: 1, RemainingMB: 10}
	fb.Add(f)
	if fb.DirtyLinks() != 0 {
		t.Fatalf("dirty links after resolved Add: %d", fb.DirtyLinks())
	}
	fb.TopUp(f, 100)
	if fb.DirtyLinks() != 0 {
		t.Fatalf("TopUp dirtied links: %d", fb.DirtyLinks())
	}
}

// TestRecomputeGuardRatesUnchanged is the regression companion to
// hoisting the numerical guard: allocations on a saturated fabric must
// be exactly the analytic shares, i.e. the guard's placement cannot
// perturb results.
func TestRecomputeGuardRatesUnchanged(t *testing.T) {
	fb := NewFabric(cfg(8))
	var flows []*Flow
	// 4 flows out of node 0 (egress-bound at 29.25 each), plus 3 into
	// node 5 from distinct senders (ingress-bound at 39 each).
	for d := 1; d <= 4; d++ {
		f := &Flow{Src: 0, Dst: d}
		fb.Add(f)
		flows = append(flows, f)
	}
	for s := 1; s <= 3; s++ {
		f := &Flow{Src: s, Dst: 5}
		fb.Add(f)
		flows = append(flows, f)
	}
	for i := 0; i < 4; i++ {
		if got := flows[i].Rate(); math.Abs(got-29.25) > 1e-12 {
			t.Fatalf("egress share = %v, want 29.25 exactly", got)
		}
	}
	// Senders 1..3 each have ample egress headroom, so receiver 5's
	// ingress splits 117 three ways.
	for i := 4; i < 7; i++ {
		if got := flows[i].Rate(); math.Abs(got-39) > 1e-12 {
			t.Fatalf("ingress share = %v, want 39 exactly", got)
		}
	}
}

// BenchmarkChurnIncremental measures the steady-state cost of one
// remove+add+resolve cycle with incremental resolution on a fabric
// with many independent components — the workload shape of a running
// cluster where one event perturbs one reducer's fan-in.
func BenchmarkChurnIncremental(b *testing.B) {
	benchmarkChurn(b, false)
}

// BenchmarkChurnFull is the same cycle with a from-scratch Recompute,
// the pre-optimisation behaviour.
func BenchmarkChurnFull(b *testing.B) {
	benchmarkChurn(b, true)
}

func benchmarkChurn(b *testing.B, full bool) {
	cfg := DefaultConfig(128)
	fb := NewFabric(cfg)
	fb.SetAutoRecompute(false)
	// Steady state: 32 reducers, each fetching from 3 dedicated senders
	// in its own 4-node group, so the flow graph splits into 32
	// link-disjoint components. One churn event (a fetch finishing and
	// its successor starting) perturbs exactly one reducer's fan-in;
	// the other 31 components keep their cached rates — the incremental
	// path's cost stays O(one component) while a full resolve scales
	// with the whole fabric population.
	var live []*Flow
	for g := 0; g < 32; g++ {
		dst := 4 * g
		for k := 0; k < 5; k++ {
			f := &Flow{Src: dst + 1 + k%3, Dst: dst, RemainingMB: 100, CapMBps: 3.5}
			fb.Add(f)
			live = append(live, f)
		}
	}
	fb.Recompute()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(live)
		old := live[j]
		fb.Remove(old)
		nf := &Flow{Src: old.Src, Dst: old.Dst, RemainingMB: 100, CapMBps: 3.5}
		fb.Add(nf)
		live[j] = nf
		if full {
			fb.Recompute()
		} else {
			fb.ResolveDirty()
		}
	}
}
