package netsim

import "testing"

// BenchmarkRecompute measures water-filling over a shuffle-like flow
// population: 30 reducers × 5 fetchers on a 16-node fabric.
func BenchmarkRecompute(b *testing.B) {
	fb := NewFabric(DefaultConfig(16))
	fb.SetAutoRecompute(false)
	for r := 0; r < 30; r++ {
		for f := 0; f < 5; f++ {
			src := (r*5 + f) % 16
			dst := r % 16
			if src == dst {
				src = (src + 1) % 16
			}
			fb.Add(&Flow{Src: src, Dst: dst, CapMBps: 3.5})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.Recompute()
	}
}

// BenchmarkAddRemove measures flow churn with batched recompute.
func BenchmarkAddRemove(b *testing.B) {
	fb := NewFabric(DefaultConfig(16))
	fb.SetAutoRecompute(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := &Flow{Src: i % 16, Dst: (i + 1) % 16}
		fb.Add(f)
		fb.Remove(f)
	}
}

// BenchmarkRecomputeRacked measures the oversubscribed-fabric variant.
func BenchmarkRecomputeRacked(b *testing.B) {
	cfg := DefaultConfig(16)
	cfg.NodesPerRack = 8
	cfg.RackUplinkMBps = 468
	fb := NewFabric(cfg)
	fb.SetAutoRecompute(false)
	for i := 0; i < 100; i++ {
		fb.Add(&Flow{Src: i % 16, Dst: (i + 7) % 16, CapMBps: 10})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.Recompute()
	}
}
