package netsim

import (
	"math"
	"testing"
)

// Link scaling is the fabric's fault-injection hook (internal/chaos):
// a factor in [0,1] multiplies a node's egress/ingress capacity, 0
// severs the direction entirely.

func TestLinkScaleThrottlesEgress(t *testing.T) {
	fb := NewFabric(cfg(4))
	f := &Flow{Src: 0, Dst: 1}
	fb.Add(f)
	if math.Abs(f.Rate()-117) > 1e-9 {
		t.Fatalf("baseline rate = %v, want 117", f.Rate())
	}
	fb.SetNodeLinkScale(0, 0.5, 1)
	if math.Abs(f.Rate()-58.5) > 1e-9 {
		t.Fatalf("half egress: rate = %v, want 58.5", f.Rate())
	}
	eg, in := fb.NodeLinkScale(0)
	if eg != 0.5 || in != 1 {
		t.Fatalf("NodeLinkScale = %v/%v, want 0.5/1", eg, in)
	}
	fb.SetNodeLinkScale(0, 1, 1)
	if math.Abs(f.Rate()-117) > 1e-9 {
		t.Fatalf("restored rate = %v, want 117", f.Rate())
	}
}

func TestLinkScaleThrottlesIngress(t *testing.T) {
	fb := NewFabric(cfg(4))
	f := &Flow{Src: 0, Dst: 2}
	fb.Add(f)
	fb.SetNodeLinkScale(2, 1, 0.25)
	if math.Abs(f.Rate()-117*0.25) > 1e-9 {
		t.Fatalf("quarter ingress: rate = %v, want %v", f.Rate(), 117*0.25)
	}
}

func TestLinkScaleSeverStallsOnlyAffectedFlows(t *testing.T) {
	fb := NewFabric(cfg(4))
	severed := &Flow{Src: 0, Dst: 1}
	bystander := &Flow{Src: 2, Dst: 3}
	fb.Add(severed)
	fb.Add(bystander)
	fb.SetNodeLinkScale(0, 0, 0)
	if severed.Rate() != 0 {
		t.Fatalf("severed flow still runs at %v", severed.Rate())
	}
	if math.Abs(bystander.Rate()-117) > 1e-9 {
		t.Fatalf("bystander flow disturbed: %v", bystander.Rate())
	}
	// Healing the partition re-enters the water-filling resolver.
	fb.SetNodeLinkScale(0, 1, 1)
	if math.Abs(severed.Rate()-117) > 1e-9 {
		t.Fatalf("healed flow rate = %v, want 117", severed.Rate())
	}
}

func TestLinkScaleSeveredIngressBlocksAllSenders(t *testing.T) {
	fb := NewFabric(cfg(4))
	f1 := &Flow{Src: 0, Dst: 3}
	f2 := &Flow{Src: 1, Dst: 3}
	fb.Add(f1)
	fb.Add(f2)
	fb.SetNodeLinkScale(3, 1, 0)
	if f1.Rate() != 0 || f2.Rate() != 0 {
		t.Fatalf("flows into partitioned node run at %v/%v", f1.Rate(), f2.Rate())
	}
}

func TestSetNodeLinkScalePanicsOnBadArgs(t *testing.T) {
	fb := NewFabric(cfg(4))
	cases := []func(){
		func() { fb.SetNodeLinkScale(-1, 1, 1) },
		func() { fb.SetNodeLinkScale(4, 1, 1) },
		func() { fb.SetNodeLinkScale(0, -0.1, 1) },
		func() { fb.SetNodeLinkScale(0, 1, 1.1) },
		func() { fb.SetNodeLinkScale(0, math.NaN(), 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}
