package experiments

import (
	"strings"
	"testing"
)

// chartCfg is a fast configuration: chart rendering is pure formatting,
// so tiny inputs suffice.
func chartCfg() Config {
	return Config{Scale: 0.05, Workers: 8, Reduces: 8, Seed: 1}
}

func TestFig1Chart(t *testing.T) {
	r, err := Figure1(chartCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Chart()
	for _, bench := range []string{"terasort", "term-vector", "grep"} {
		if !strings.Contains(out, bench) {
			t.Fatalf("chart missing %s:\n%s", bench, out)
		}
	}
	if !strings.Contains(out, "peak at") {
		t.Fatalf("chart missing peak annotation:\n%s", out)
	}
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 3 {
		t.Fatalf("chart lines = %d", len(lines))
	}
}

func TestFig4Chart(t *testing.T) {
	r, err := Figure4(chartCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Chart()
	if !strings.Contains(out, "SMapReduce") || !strings.Contains(out, "barrier at") {
		t.Fatalf("chart incomplete:\n%s", out)
	}
}

func TestTimelineCaptureAndChart(t *testing.T) {
	col, err := CaptureTimeline(chartCfg(), "histogram-ratings", 20)
	if err != nil {
		t.Fatal(err)
	}
	mt := col.Get("slotmgr/map-target")
	if mt == nil || mt.Len() == 0 {
		t.Fatal("slotmgr/map-target series missing or empty")
	}
	cfg := chartCfg().normalize().cluster()
	for _, p := range mt.Points() {
		// 0 before the manager's first tick, then within [1, max].
		if p.V < 0 || p.V > float64(cfg.MaxMapSlots) {
			t.Fatalf("map target %v outside [0,%d]", p.V, cfg.MaxMapSlots)
		}
	}
	run := col.Get("cluster/running-maps")
	if run == nil || run.Len() != mt.Len() {
		t.Fatalf("cluster/running-maps misaligned: %v vs %v", run.Len(), mt.Len())
	}
	if run.Len() > 0 {
		max := 0.0
		for _, p := range run.Points() {
			if p.V > max {
				max = p.V
			}
		}
		if max <= 0 {
			t.Fatal("running maps never rose above zero")
		}
	}
	out := TimelineChart(col)
	for _, want := range []string{"slotmgr/map-target", "cluster/running-maps", "slotmgr/balance-f"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline chart missing %s:\n%s", want, out)
		}
	}
	tbl := TimelineTable(col)
	if len(tbl.Rows) != mt.Len() {
		t.Fatalf("timeline table rows = %d, want %d", len(tbl.Rows), mt.Len())
	}
}

func TestMultiJobChart(t *testing.T) {
	r, err := Figure8(chartCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Chart()
	if !strings.Contains(out, "mean exec") || !strings.Contains(out, "█") {
		t.Fatalf("bars missing:\n%s", out)
	}
}
