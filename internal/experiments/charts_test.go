package experiments

import (
	"strings"
	"testing"
)

// chartCfg is a fast configuration: chart rendering is pure formatting,
// so tiny inputs suffice.
func chartCfg() Config {
	return Config{Scale: 0.05, Workers: 8, Reduces: 8, Seed: 1}
}

func TestFig1Chart(t *testing.T) {
	r, err := Figure1(chartCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Chart()
	for _, bench := range []string{"terasort", "term-vector", "grep"} {
		if !strings.Contains(out, bench) {
			t.Fatalf("chart missing %s:\n%s", bench, out)
		}
	}
	if !strings.Contains(out, "peak at") {
		t.Fatalf("chart missing peak annotation:\n%s", out)
	}
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 3 {
		t.Fatalf("chart lines = %d", len(lines))
	}
}

func TestFig4Chart(t *testing.T) {
	r, err := Figure4(chartCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Chart()
	if !strings.Contains(out, "SMapReduce") || !strings.Contains(out, "barrier at") {
		t.Fatalf("chart incomplete:\n%s", out)
	}
}

func TestMultiJobChart(t *testing.T) {
	r, err := Figure8(chartCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Chart()
	if !strings.Contains(out, "mean exec") || !strings.Contains(out, "█") {
		t.Fatalf("bars missing:\n%s", out)
	}
}
