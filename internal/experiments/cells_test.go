package experiments

import (
	"strings"
	"testing"
)

func TestClusterConfigAppliesConfig(t *testing.T) {
	cfg := (Config{Workers: 7, Seed: 99}).ClusterConfig()
	if cfg.Workers != 7 || cfg.Net.Nodes != 7 || cfg.Seed != 99 {
		t.Errorf("workers/nodes/seed = %d/%d/%d, want 7/7/99", cfg.Workers, cfg.Net.Nodes, cfg.Seed)
	}
	// Zero fields default like the figure harnesses'.
	d := Default()
	cfg = (Config{}).ClusterConfig()
	if cfg.Workers != d.Workers || cfg.Seed != d.Seed {
		t.Errorf("zero config: workers/seed = %d/%d, want defaults %d/%d", cfg.Workers, cfg.Seed, d.Workers, d.Seed)
	}
}

func TestCellSpecInputArithmetic(t *testing.T) {
	spec, err := (Config{Scale: 0.5}).CellSpec("grep", 4, 8)
	if err != nil {
		t.Fatalf("CellSpec: %v", err)
	}
	if want := 4.0 * 1024 * 0.5; spec.InputMB != want {
		t.Errorf("InputMB = %v, want %v (input_gb × 1024 × scale)", spec.InputMB, want)
	}
	if spec.Reduces != 8 || spec.Name != "grep" || spec.Profile.Name == "" {
		t.Errorf("spec = %+v, want reduces 8, name grep, a resolved profile", spec)
	}
}

func TestCellSpecErrors(t *testing.T) {
	if _, err := (Config{}).CellSpec("sort-of-grep", 1, 1); err == nil || !strings.Contains(err.Error(), "sort-of-grep") {
		t.Errorf("unknown benchmark: err = %v, want a naming error", err)
	}
	if _, err := (Config{}).CellSpec("grep", 1, 0); err == nil {
		t.Error("reduces = 0 accepted")
	}
}
