package experiments

import (
	"strings"
	"testing"

	"smapreduce/internal/mr"
	"smapreduce/internal/resource"
)

func TestAblationBounds(t *testing.T) {
	shape(t)
	r, err := AblationBounds(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ExecTime <= 0 || row.MapTime <= 0 {
			t.Fatalf("bad row %+v", row)
		}
	}
	if !strings.Contains(r.Table().String(), "bounds") {
		t.Error("table missing settings")
	}
}

func TestAblationSlowStart(t *testing.T) {
	shape(t)
	r, err := AblationSlowStart(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// A very late slow start wastes adaptation time: 30% must not beat
	// the paper's 10% by any meaningful margin.
	if r.Get("slow start 30%") < 0.98*r.Get("slow start 10%") {
		t.Errorf("late slow start (%v) beat the paper default (%v)",
			r.Get("slow start 30%"), r.Get("slow start 10%"))
	}
}

func TestAblationConfirmations(t *testing.T) {
	shape(t)
	r, err := AblationConfirmations(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestAblationLazyVsEager(t *testing.T) {
	shape(t)
	r, err := AblationLazyVsEager(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	lazy := r.Get("lazy (paper)")
	eager := r.Get("eager (kill and reschedule)")
	if lazy <= 0 || eager <= 0 {
		t.Fatal("missing arms")
	}
	// On a shuffle-bound decrement the wasted map work is nearly free,
	// so eager may edge ahead — but never by a large factor, and the
	// two must genuinely diverge (the decrement path must execute).
	if lazy > 1.10*eager {
		t.Errorf("lazy (%v) far behind eager (%v)", lazy, eager)
	}
	if lazy == eager {
		t.Error("lazy and eager produced identical runs; decrement path never executed")
	}
}

func TestAblationTailBoost(t *testing.T) {
	shape(t)
	r, err := AblationTailBoost(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	on := r.Get("boost on (paper)")
	off := r.Get("boost off")
	// With 64 reducers on 32 default slots the boost removes a whole
	// reduce wave: it must deliver a real speedup.
	if on >= 0.98*off {
		t.Errorf("tail boost ineffective: on %v vs off %v", on, off)
	}
}

func TestHeterogeneous(t *testing.T) {
	shape(t)
	r, err := Heterogeneous(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	v1 := r.Get("HadoopV1 static")
	uniform := r.Get("SMapReduce uniform targets")
	scaled := r.Get("SMapReduce per-node scaling")
	if v1 <= 0 || uniform <= 0 || scaled <= 0 {
		t.Fatal("missing arms")
	}
	// Uniform targets stall on mixed hardware: the slow nodes' thrashing
	// cancels the fast nodes' gains, so uniform SMR lands near V1.
	if uniform < 0.85*v1 || uniform > 1.15*v1 {
		t.Errorf("uniform SMR (%v) expected ≈V1 (%v) on hetero cluster", uniform, v1)
	}
	// Per-node scaling is the fix: it must clearly beat both.
	if scaled >= 0.9*v1 {
		t.Errorf("per-node scaling (%v) not well below V1 (%v)", scaled, v1)
	}
	if scaled >= uniform {
		t.Errorf("per-node scaling (%v) not better than uniform (%v)", scaled, uniform)
	}
}

func TestSchedulers(t *testing.T) {
	shape(t)
	r, err := Schedulers(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	var fifo, fair SchedulerRow
	for _, row := range r.Rows {
		switch row.Scheduler {
		case "fifo":
			fifo = row
		case "fair":
			fair = row
		}
	}
	if fifo.MeanExec == 0 || fair.MeanExec == 0 {
		t.Fatal("missing schedulers")
	}
	// Fair lets the short jobs through the long one: mean drops.
	if fair.MeanExec >= fifo.MeanExec {
		t.Errorf("fair mean (%v) not below FIFO mean (%v)", fair.MeanExec, fifo.MeanExec)
	}
}

func TestHeteroConfigValidation(t *testing.T) {
	cfg := mr.DefaultConfig()
	cfg.NodeSpecs = make([]resource.Spec, 3) // wrong length, zero specs
	if cfg.Validate() == nil {
		t.Fatal("mismatched NodeSpecs length accepted")
	}
	cfg.NodeSpecs = make([]resource.Spec, cfg.Workers)
	if cfg.Validate() == nil {
		t.Fatal("zero-valued NodeSpecs accepted")
	}
	for i := range cfg.NodeSpecs {
		cfg.NodeSpecs[i] = resource.DefaultSpec()
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid hetero config rejected: %v", err)
	}
	cfg.Scheduler = mr.SchedulerKind(9)
	if cfg.Validate() == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestSpeculationExperiment(t *testing.T) {
	shape(t)
	r, err := Speculation(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	off := r.Get("no speculation")
	on := r.Get("speculation on")
	if off <= 0 || on <= 0 {
		t.Fatal("missing arms")
	}
	if on >= off {
		t.Errorf("speculation (%v) did not beat the straggler cluster baseline (%v)", on, off)
	}
	if r.Launched == 0 || r.Wins == 0 {
		t.Errorf("no speculative activity recorded: launched=%d wins=%d", r.Launched, r.Wins)
	}
}
